#include "local/vnode.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace slackvm::local {

VNode::VNode(VNodeId id, core::OversubLevel level, std::size_t cpu_universe)
    : id_(id), level_(level), effective_level_(level), cpus_(cpu_universe) {}

void VNode::set_effective_level(core::OversubLevel level) {
  // Effective ratio may only tighten (or relax back toward) the contract:
  // never expose more contention than the customers bought.
  SLACKVM_ASSERT(level <= level_);
  effective_level_ = level;
}

core::OversubLevel VNode::strictest_hosted_level() const {
  core::OversubLevel strictest = level_;
  for (const auto& [id, spec] : vms_) {
    strictest = std::min(strictest, spec.level);
  }
  return strictest;
}

const core::VmSpec& VNode::spec_of(core::VmId vm) const {
  const auto it = vms_.find(vm);
  SLACKVM_ASSERT(it != vms_.end());
  return it->second;
}

void VNode::add_vm(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!vms_.contains(id));
  // Pooled VMs may have a *laxer* level than the node (they get upgraded to
  // the node's stricter guarantee, §V-B); never a stricter one.
  SLACKVM_ASSERT(!spec.level.stricter_than(level_));
  vms_.emplace(id, spec);
  sorted_ids_.insert(std::ranges::lower_bound(sorted_ids_, id), id);
  committed_vcpus_ += spec.vcpus;
  committed_mem_ += spec.mem_mib;
}

void VNode::remove_vm(core::VmId id) {
  const auto it = vms_.find(id);
  SLACKVM_ASSERT(it != vms_.end());
  committed_vcpus_ -= it->second.vcpus;
  committed_mem_ -= it->second.mem_mib;
  vms_.erase(it);
  const auto pos = std::ranges::lower_bound(sorted_ids_, id);
  SLACKVM_ASSERT(pos != sorted_ids_.end() && *pos == id);
  sorted_ids_.erase(pos);
}

void VNode::assign_cpus(topo::CpuSet cpus) {
  SLACKVM_ASSERT(cpus.universe() == cpus_.universe());
  cpus_ = std::move(cpus);
}

}  // namespace slackvm::local
