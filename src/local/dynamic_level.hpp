// Dynamic oversubscription-level controller (paper §VIII perspective).
//
// The paper's vNodes adopt static levels but note they "could potentially
// benefit from dynamically computed levels". This controller closes that
// loop: from a window of observed per-vCPU usage it predicts the peak (via
// core::PeakPredictor) and retunes each oversubscribed vNode to the laxest
// ratio that keeps predicted contention below one runnable vCPU per thread
// — bounded above by the node's contract level (customers never get less
// than they bought) and below by 1:1.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/oversub.hpp"
#include "core/peak_prediction.hpp"
#include "local/vnode_manager.hpp"

namespace slackvm::local {

/// Provides the recent per-vCPU usage samples of a vNode's VM population
/// (values in [0, 1]); typically backed by hypervisor telemetry, here by
/// workload::UsageSignal in tests and benches.
using UsageWindowFn = std::function<std::vector<double>(const VNode&)>;

/// Outcome of one retuning decision.
struct RetuneOutcome {
  VNodeId vnode = 0;
  core::OversubLevel contract{};
  core::OversubLevel previous{};
  core::OversubLevel target{};
  bool applied = false;  ///< false when the PM lacked free CPUs to tighten
};

class DynamicLevelController {
 public:
  /// The controller borrows the predictor; it must outlive the controller.
  explicit DynamicLevelController(const core::PeakPredictor& predictor)
      : predictor_(&predictor) {}

  /// Recommend an effective level for a node with the given usage window
  /// and contract level. An empty window recommends the strictest 1:1
  /// (fail-safe: unknown usage is treated as full usage).
  [[nodiscard]] core::OversubLevel recommend(std::span<const double> usage,
                                             core::OversubLevel contract) const;

  /// Retune every oversubscribed vNode of `manager` according to the usage
  /// provided by `window`. Premium (1:1) nodes are never touched. Returns
  /// one outcome per considered node.
  std::vector<RetuneOutcome> retune_all(VNodeManager& manager,
                                        const UsageWindowFn& window) const;

 private:
  const core::PeakPredictor* predictor_;
};

}  // namespace slackvm::local
