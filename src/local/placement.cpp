#include "local/placement.hpp"

#include <algorithm>
#include <span>

#include "core/error.hpp"

namespace slackvm::local {

namespace naive {

namespace {

/// Greedily move `count` CPUs from `pool` into `acc`, each step taking the
/// pool CPU with the smallest min-distance to `acc` (lowest id on ties).
void grow_nearest(const topo::DistanceMatrix& dm, topo::CpuSet& pool, topo::CpuSet& acc,
                  std::size_t count) {
  for (std::size_t step = 0; step < count; ++step) {
    std::optional<topo::CpuId> best;
    std::uint32_t best_dist = topo::DistanceMatrix::kUnreachable;
    for (topo::CpuId cpu : pool.as_vector()) {
      const std::uint32_t dist = dm.min_distance_to(cpu, acc);
      if (dist < best_dist) {
        best_dist = dist;
        best = cpu;
      }
    }
    SLACKVM_ASSERT(best.has_value());
    pool.reset(*best);
    acc.set(*best);
  }
}

}  // namespace

std::optional<topo::CpuSet> choose_extension_cpus(const topo::DistanceMatrix& dm,
                                                  const topo::CpuSet& free_cpus,
                                                  const topo::CpuSet& current,
                                                  std::size_t count) {
  if (free_cpus.count() < count) {
    return std::nullopt;
  }
  topo::CpuSet pool = free_cpus;
  topo::CpuSet acc = current;
  grow_nearest(dm, pool, acc, count);
  return acc - current;
}

std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                             const topo::CpuSet& free_cpus,
                                             const topo::CpuSet& occupied,
                                             std::size_t count) {
  if (count == 0 || free_cpus.count() < count) {
    return std::nullopt;
  }
  topo::CpuSet pool = free_cpus;

  // Seed: farthest from every other vNode, so distinct oversubscription
  // levels land on separate sockets / cache zones whenever possible.
  topo::CpuId seed = pool.first();
  if (!occupied.empty()) {
    std::uint32_t best_dist = 0;
    bool found = false;
    for (topo::CpuId cpu : pool.as_vector()) {
      const std::uint32_t dist = dm.min_distance_to(cpu, occupied);
      if (!found || dist > best_dist) {
        best_dist = dist;
        seed = cpu;
        found = true;
      }
    }
  }
  topo::CpuSet acc(free_cpus.universe());
  acc.set(seed);
  pool.reset(seed);
  grow_nearest(dm, pool, acc, count - 1);
  return acc;
}

topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm, const topo::CpuSet& current,
                                 std::size_t count) {
  SLACKVM_ASSERT(count <= current.count());
  topo::CpuSet keep = current;
  topo::CpuSet released(current.universe());
  for (std::size_t step = 0; step < count; ++step) {
    // Release the CPU whose removal keeps the survivors most compact, i.e.
    // the one with the largest total distance to the rest.
    std::optional<topo::CpuId> worst;
    std::uint64_t worst_total = 0;
    for (topo::CpuId cpu : keep.as_vector()) {
      topo::CpuSet others = keep;
      others.reset(cpu);
      const std::uint64_t total = dm.total_distance_to(cpu, others);
      if (!worst.has_value() || total > worst_total) {
        worst_total = total;
        worst = cpu;
      }
    }
    SLACKVM_ASSERT(worst.has_value());
    keep.reset(*worst);
    released.set(*worst);
  }
  return released;
}

}  // namespace naive

namespace {

constexpr std::uint32_t kUnreachable = topo::DistanceMatrix::kUnreachable;

// Incremental grow: best_dist[cpu] holds the min distance from `cpu` to the
// growing set. Each step scans the pool for the frontier minimum (ascending
// iteration + strict '<' reproduces the naive lowest-id tie-break) and
// relaxes the frontier with only the matrix row of the CPU just added —
// O(n) per step, no allocation.

/// Relax the whole frontier with one matrix row. Dense on purpose: the
/// branch-free full-width loop auto-vectorizes, and relaxing entries outside
/// the candidate pool is harmless — the selection scans only read pool
/// members.
void relax_min(std::vector<std::uint32_t>& frontier,
               std::span<const std::uint32_t> row) {
  // __restrict lets -O2 vectorize without an alias-versioning check (the
  // frontier buffer never overlaps the immutable matrix row).
  std::uint32_t* __restrict dst = frontier.data();
  const std::uint32_t* __restrict src = row.data();
  const std::size_t n = frontier.size();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = std::min(dst[i], src[i]);
  }
}

void add_row(std::vector<std::uint64_t>& totals, std::span<const std::uint32_t> row) {
  std::uint64_t* __restrict dst = totals.data();
  const std::uint32_t* __restrict src = row.data();
  const std::size_t n = totals.size();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] += src[i];
  }
}

void sub_row(std::vector<std::uint64_t>& totals, std::span<const std::uint32_t> row) {
  std::uint64_t* __restrict dst = totals.data();
  const std::uint32_t* __restrict src = row.data();
  const std::size_t n = totals.size();
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] -= src[i];
  }
}

/// Greedy grow over a plain (uncounted) min frontier — the per-call scratch
/// path.
void grow_nearest_fast(const topo::DistanceMatrix& dm, topo::CpuSet& pool,
                       topo::CpuSet& acc, std::size_t count,
                       std::vector<std::uint32_t>& best_dist) {
  for (std::size_t step = 0; step < count; ++step) {
    bool found = false;
    topo::CpuId best = 0;
    std::uint32_t best_d = kUnreachable;
    pool.for_each_cpu([&](topo::CpuId cpu) {
      if (best_dist[cpu] < best_d) {
        best_d = best_dist[cpu];
        best = cpu;
        found = true;
      }
    });
    SLACKVM_ASSERT(found);
    pool.reset(best);
    acc.set(best);
    relax_min(best_dist, dm.row(best));
  }
}

/// Build min_dist for `acc` from scratch.
void build_min_frontier(const topo::DistanceMatrix& dm, const topo::CpuSet& acc,
                        std::vector<std::uint32_t>& best_dist) {
  best_dist.assign(dm.size(), kUnreachable);
  acc.for_each_cpu([&](topo::CpuId member) { relax_min(best_dist, dm.row(member)); });
}

/// Relax a counted min frontier with one row: a strictly smaller distance
/// resets the witness count to one, an equal distance adds a witness.
/// Branchless selects so the loop vectorizes.
void relax_min_count(std::vector<std::uint32_t>& min_dist,
                     std::vector<std::uint32_t>& min_count,
                     std::span<const std::uint32_t> row) {
  std::uint32_t* __restrict mins = min_dist.data();
  std::uint32_t* __restrict counts = min_count.data();
  const std::uint32_t* __restrict src = row.data();
  const std::size_t n = min_dist.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t d = src[i];
    const std::uint32_t m = mins[i];
    counts[i] = d < m ? 1U : counts[i] + (d == m ? 1U : 0U);
    mins[i] = d < m ? d : m;
  }
}

/// Build the counted min frontier of `acc` from scratch.
void build_min_frontier_counted(const topo::DistanceMatrix& dm, const topo::CpuSet& acc,
                                DistanceFrontier& frontier) {
  frontier.min_dist.assign(dm.size(), kUnreachable);
  frontier.min_count.assign(dm.size(), 0);
  acc.for_each_cpu([&](topo::CpuId member) {
    relax_min_count(frontier.min_dist, frontier.min_count, dm.row(member));
  });
  frontier.min_valid = true;
}

/// Greedy grow over a persistent counted frontier; keeps the sum frontier
/// in sync when it is valid.
void grow_nearest_frontier(const topo::DistanceMatrix& dm, topo::CpuSet& pool,
                           topo::CpuSet& acc, std::size_t count,
                           DistanceFrontier& frontier) {
  for (std::size_t step = 0; step < count; ++step) {
    bool found = false;
    topo::CpuId best = 0;
    std::uint32_t best_d = kUnreachable;
    pool.for_each_cpu([&](topo::CpuId cpu) {
      if (frontier.min_dist[cpu] < best_d) {
        best_d = frontier.min_dist[cpu];
        best = cpu;
        found = true;
      }
    });
    SLACKVM_ASSERT(found);
    pool.reset(best);
    acc.set(best);
    relax_min_count(frontier.min_dist, frontier.min_count, dm.row(best));
    if (frontier.total_valid) {
      add_row(frontier.total_dist, dm.row(best));
    }
  }
}

/// Withdraw `removed` from a counted min frontier over the surviving set
/// `keep`: entries the removed CPU witnessed lose a count; the (rare)
/// entries losing their last witness are recomputed over `keep`.
void withdraw_min_witness(const topo::DistanceMatrix& dm, const topo::CpuSet& keep,
                          topo::CpuId removed, DistanceFrontier& frontier) {
  const std::span<const std::uint32_t> row = dm.row(removed);
  const std::size_t n = frontier.min_dist.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] == frontier.min_dist[i] && --frontier.min_count[i] == 0) {
      // The matrix is symmetric, so the column of `i` is its row: one
      // contiguous pass over the survivors re-derives min and count.
      const std::span<const std::uint32_t> row_i = dm.row(static_cast<topo::CpuId>(i));
      std::uint32_t min = kUnreachable;
      std::uint32_t witnesses = 0;
      keep.for_each_cpu([&](topo::CpuId member) {
        const std::uint32_t d = row_i[member];
        if (d < min) {
          min = d;
          witnesses = 1;
        } else if (d == min) {
          ++witnesses;
        }
      });
      frontier.min_dist[i] = min;
      frontier.min_count[i] = witnesses;
    }
  }
}

}  // namespace

std::optional<topo::CpuSet> choose_extension_cpus(const topo::DistanceMatrix& dm,
                                                  const topo::CpuSet& free_cpus,
                                                  const topo::CpuSet& current,
                                                  std::size_t count,
                                                  PlacementScratch& scratch,
                                                  DistanceFrontier* frontier) {
  if (free_cpus.count() < count) {
    return std::nullopt;
  }
  scratch.pool = free_cpus;
  scratch.acc = current;
  if (frontier != nullptr) {
    // Persistent frontier: reuse the counted min array when it still
    // describes `current` (withdraw_min_witness keeps it exact across
    // releases); keep the sum array in sync so releases skip their rebuild.
    if (!frontier->min_valid) {
      build_min_frontier_counted(dm, current, *frontier);
    }
    grow_nearest_frontier(dm, scratch.pool, scratch.acc, count, *frontier);
  } else {
    build_min_frontier(dm, current, scratch.best_dist);
    grow_nearest_fast(dm, scratch.pool, scratch.acc, count, scratch.best_dist);
  }
  return scratch.acc - current;
}

std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                             const topo::CpuSet& free_cpus,
                                             const topo::CpuSet& occupied,
                                             std::size_t count,
                                             PlacementScratch& scratch) {
  if (count == 0 || free_cpus.count() < count) {
    return std::nullopt;
  }
  scratch.pool = free_cpus;
  topo::CpuId seed = scratch.pool.first();
  if (!occupied.empty()) {
    // One frontier pass over the occupied rows replaces the per-candidate
    // min_distance_to rescans; ascending iteration + strict '>' keeps the
    // lowest-id tie-break among the maxima.
    scratch.best_dist.assign(dm.size(), kUnreachable);
    occupied.for_each_cpu(
        [&](topo::CpuId member) { relax_min(scratch.best_dist, dm.row(member)); });
    bool found = false;
    std::uint32_t best_d = 0;
    scratch.pool.for_each_cpu([&](topo::CpuId cpu) {
      if (!found || scratch.best_dist[cpu] > best_d) {
        best_d = scratch.best_dist[cpu];
        seed = cpu;
        found = true;
      }
    });
  }
  if (scratch.acc.universe() != free_cpus.universe()) {
    scratch.acc = topo::CpuSet(free_cpus.universe());
  } else {
    scratch.acc.clear();
  }
  scratch.acc.set(seed);
  scratch.pool.reset(seed);
  build_min_frontier(dm, scratch.acc, scratch.best_dist);
  grow_nearest_fast(dm, scratch.pool, scratch.acc, count - 1, scratch.best_dist);
  return scratch.acc;
}

topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm, const topo::CpuSet& current,
                                 std::size_t count, PlacementScratch& scratch,
                                 DistanceFrontier* frontier) {
  SLACKVM_ASSERT(count <= current.count());
  scratch.pool = current;  // the surviving set, shrunk step by step
  if (scratch.acc.universe() != current.universe()) {
    scratch.acc = topo::CpuSet(current.universe());
  } else {
    scratch.acc.clear();
  }
  // total_dist[cpu] = sum of distances from cpu to every member of the
  // surviving set (self-distance is zero, so including it changes nothing).
  // Each step evicts the frontier maximum (ascending iteration + strict '>'
  // keeps the lowest-id tie-break) and subtracts the removed CPU's row.
  // With a persistent frontier the sum is already exact — it survives every
  // grow and release — so the O(|current|·n) rebuild is skipped.
  std::vector<std::uint64_t>& totals =
      frontier != nullptr ? frontier->total_dist : scratch.total_dist;
  if (frontier == nullptr || !frontier->total_valid) {
    totals.assign(dm.size(), 0);
    scratch.pool.for_each_cpu(
        [&](topo::CpuId member) { add_row(totals, dm.row(member)); });
    if (frontier != nullptr) {
      frontier->total_valid = true;
    }
  }
  for (std::size_t step = 0; step < count; ++step) {
    bool found = false;
    topo::CpuId worst = 0;
    std::uint64_t worst_total = 0;
    scratch.pool.for_each_cpu([&](topo::CpuId cpu) {
      if (!found || totals[cpu] > worst_total) {
        worst_total = totals[cpu];
        worst = cpu;
        found = true;
      }
    });
    SLACKVM_ASSERT(found);
    scratch.pool.reset(worst);
    scratch.acc.set(worst);
    sub_row(totals, dm.row(worst));
    if (frontier != nullptr && frontier->min_valid) {
      withdraw_min_witness(dm, scratch.pool, worst, *frontier);
    }
  }
  return scratch.acc;
}

std::optional<topo::CpuSet> choose_extension_cpus(const topo::DistanceMatrix& dm,
                                                  const topo::CpuSet& free_cpus,
                                                  const topo::CpuSet& current,
                                                  std::size_t count) {
  PlacementScratch scratch;
  return choose_extension_cpus(dm, free_cpus, current, count, scratch);
}

std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                             const topo::CpuSet& free_cpus,
                                             const topo::CpuSet& occupied,
                                             std::size_t count) {
  PlacementScratch scratch;
  return choose_seed_cpus(dm, free_cpus, occupied, count, scratch);
}

topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm, const topo::CpuSet& current,
                                 std::size_t count) {
  PlacementScratch scratch;
  return choose_release_cpus(dm, current, count, scratch);
}

}  // namespace slackvm::local
