#include "local/placement.hpp"

#include "core/error.hpp"

namespace slackvm::local {

namespace {

/// Greedily move `count` CPUs from `pool` into `acc`, each step taking the
/// pool CPU with the smallest min-distance to `acc` (lowest id on ties).
void grow_nearest(const topo::DistanceMatrix& dm, topo::CpuSet& pool, topo::CpuSet& acc,
                  std::size_t count) {
  for (std::size_t step = 0; step < count; ++step) {
    std::optional<topo::CpuId> best;
    std::uint32_t best_dist = topo::DistanceMatrix::kUnreachable;
    for (topo::CpuId cpu : pool.as_vector()) {
      const std::uint32_t dist = dm.min_distance_to(cpu, acc);
      if (dist < best_dist) {
        best_dist = dist;
        best = cpu;
      }
    }
    SLACKVM_ASSERT(best.has_value());
    pool.reset(*best);
    acc.set(*best);
  }
}

}  // namespace

std::optional<topo::CpuSet> choose_extension_cpus(const topo::DistanceMatrix& dm,
                                                  const topo::CpuSet& free_cpus,
                                                  const topo::CpuSet& current,
                                                  std::size_t count) {
  if (free_cpus.count() < count) {
    return std::nullopt;
  }
  topo::CpuSet pool = free_cpus;
  topo::CpuSet acc = current;
  grow_nearest(dm, pool, acc, count);
  return acc - current;
}

std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                             const topo::CpuSet& free_cpus,
                                             const topo::CpuSet& occupied,
                                             std::size_t count) {
  if (count == 0 || free_cpus.count() < count) {
    return std::nullopt;
  }
  topo::CpuSet pool = free_cpus;

  // Seed: farthest from every other vNode, so distinct oversubscription
  // levels land on separate sockets / cache zones whenever possible.
  topo::CpuId seed = pool.first();
  if (!occupied.empty()) {
    std::uint32_t best_dist = 0;
    bool found = false;
    for (topo::CpuId cpu : pool.as_vector()) {
      const std::uint32_t dist = dm.min_distance_to(cpu, occupied);
      if (!found || dist > best_dist) {
        best_dist = dist;
        seed = cpu;
        found = true;
      }
    }
  }
  topo::CpuSet acc(free_cpus.universe());
  acc.set(seed);
  pool.reset(seed);
  grow_nearest(dm, pool, acc, count - 1);
  return acc;
}

topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm, const topo::CpuSet& current,
                                 std::size_t count) {
  SLACKVM_ASSERT(count <= current.count());
  topo::CpuSet keep = current;
  topo::CpuSet released(current.universe());
  for (std::size_t step = 0; step < count; ++step) {
    // Release the CPU whose removal keeps the survivors most compact, i.e.
    // the one with the largest total distance to the rest.
    std::optional<topo::CpuId> worst;
    std::uint64_t worst_total = 0;
    for (topo::CpuId cpu : keep.as_vector()) {
      topo::CpuSet others = keep;
      others.reset(cpu);
      const std::uint64_t total = dm.total_distance_to(cpu, others);
      if (!worst.has_value() || total > worst_total) {
        worst_total = total;
        worst = cpu;
      }
    }
    SLACKVM_ASSERT(worst.has_value());
    keep.reset(*worst);
    released.set(*worst);
  }
  return released;
}

}  // namespace slackvm::local
