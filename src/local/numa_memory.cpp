#include "local/numa_memory.hpp"

#include <algorithm>
#include <set>

#include "core/error.hpp"

namespace slackvm::local {

core::MemMib MemPlacement::total() const {
  core::MemMib sum = 0;
  for (const auto& [node, amount] : per_node) {
    sum += amount;
  }
  return sum;
}

NumaMemoryMap::NumaMemoryMap(const topo::CpuTopology& topo) : topo_(&topo) {
  const std::size_t nodes = topo.numa_count();
  const core::MemMib per_node = topo.total_mem() / static_cast<core::MemMib>(nodes);
  capacity_.assign(nodes, per_node);
  capacity_[0] += topo.total_mem() - per_node * static_cast<core::MemMib>(nodes);
  used_.assign(nodes, 0);
}

std::vector<std::uint32_t> NumaMemoryMap::nodes_by_preference(
    const topo::CpuSet& vnode_cpus) const {
  // Local nodes: those hosting any of the vNode's CPUs.
  std::set<std::uint32_t> local;
  for (topo::CpuId cpu : vnode_cpus) {
    local.insert(topo_->cpu(cpu).numa);
  }
  std::vector<std::uint32_t> order(local.begin(), local.end());
  if (order.empty()) {
    order.push_back(0);  // no CPUs yet: fall back to node 0
  }
  // Remote nodes follow, ascending min-distance to the local set.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> remote;  // (distance, node)
  for (std::uint32_t node = 0; node < topo_->numa_count(); ++node) {
    if (local.contains(node)) {
      continue;
    }
    std::uint32_t best = 0xffffffff;
    for (std::uint32_t l : order) {
      best = std::min(best, topo_->numa_distance(l, node));
    }
    remote.emplace_back(best, node);
  }
  std::ranges::sort(remote);
  for (const auto& [distance, node] : remote) {
    order.push_back(node);
  }
  return order;
}

std::optional<MemPlacement> NumaMemoryMap::commit(core::VmId vm, core::MemMib mem,
                                                  const topo::CpuSet& vnode_cpus) {
  SLACKVM_ASSERT(!placements_.contains(vm));
  SLACKVM_ASSERT(mem >= 0);
  if (mem > total_free()) {
    return std::nullopt;
  }
  MemPlacement placement;
  core::MemMib remaining = mem;
  for (std::uint32_t node : nodes_by_preference(vnode_cpus)) {
    if (remaining == 0) {
      break;
    }
    const core::MemMib take = std::min(remaining, free_on(node));
    if (take > 0) {
      placement.per_node[node] = take;
      used_[node] += take;
      remaining -= take;
    }
  }
  SLACKVM_ASSERT(remaining == 0);  // total_free() guaranteed fit
  placements_.emplace(vm, placement);
  return placement;
}

void NumaMemoryMap::release(core::VmId vm) {
  const auto it = placements_.find(vm);
  if (it == placements_.end()) {
    SLACKVM_THROW("NumaMemoryMap::release: unknown VM");
  }
  for (const auto& [node, amount] : it->second.per_node) {
    used_[node] -= amount;
  }
  placements_.erase(it);
}

MemPlacement NumaMemoryMap::rebalance(core::VmId vm, const topo::CpuSet& vnode_cpus) {
  const core::MemMib mem = placement_of(vm).total();
  release(vm);
  const auto placement = commit(vm, mem, vnode_cpus);
  SLACKVM_ASSERT(placement.has_value());  // same total fits by construction
  return *placement;
}

core::MemMib NumaMemoryMap::free_on(std::uint32_t node) const {
  SLACKVM_ASSERT(node < capacity_.size());
  return capacity_[node] - used_[node];
}

core::MemMib NumaMemoryMap::capacity_of(std::uint32_t node) const {
  SLACKVM_ASSERT(node < capacity_.size());
  return capacity_[node];
}

core::MemMib NumaMemoryMap::total_free() const {
  core::MemMib total = 0;
  for (std::size_t node = 0; node < capacity_.size(); ++node) {
    total += capacity_[node] - used_[node];
  }
  return total;
}

const MemPlacement& NumaMemoryMap::placement_of(core::VmId vm) const {
  const auto it = placements_.find(vm);
  if (it == placements_.end()) {
    SLACKVM_THROW("NumaMemoryMap::placement_of: unknown VM");
  }
  return it->second;
}

double NumaMemoryMap::locality(core::VmId vm, const topo::CpuSet& cpus) const {
  const MemPlacement& placement = placement_of(vm);
  const core::MemMib total = placement.total();
  if (total == 0) {
    return 1.0;
  }
  std::set<std::uint32_t> local;
  for (topo::CpuId cpu : cpus) {
    local.insert(topo_->cpu(cpu).numa);
  }
  core::MemMib local_mem = 0;
  for (const auto& [node, amount] : placement.per_node) {
    if (local.contains(node)) {
      local_mem += amount;
    }
  }
  return static_cast<double>(local_mem) / static_cast<double>(total);
}

}  // namespace slackvm::local
