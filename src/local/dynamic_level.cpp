#include "local/dynamic_level.hpp"

#include <algorithm>

namespace slackvm::local {

core::OversubLevel DynamicLevelController::recommend(std::span<const double> usage,
                                                     core::OversubLevel contract) const {
  const double peak = predictor_->predict(usage);
  return core::OversubLevel{core::safe_ratio_for_peak(peak, contract.ratio())};
}

std::vector<RetuneOutcome> DynamicLevelController::retune_all(
    VNodeManager& manager, const UsageWindowFn& window) const {
  // Collect targets first: retune() mutates the node map's values (never
  // the keys), but gathering up-front keeps the pass order-independent.
  std::vector<RetuneOutcome> outcomes;
  std::vector<std::pair<VNodeId, core::OversubLevel>> plan;
  for (const auto& [id, node] : manager.vnodes()) {
    if (!node.level().oversubscribed()) {
      continue;  // premium nodes already run at 1:1
    }
    RetuneOutcome outcome;
    outcome.vnode = id;
    outcome.contract = node.level();
    outcome.previous = node.effective_level();
    outcome.target = recommend(window(node), node.level());
    outcome.applied = outcome.target == outcome.previous;  // no-op counts as met
    outcomes.push_back(outcome);
    if (outcome.target != outcome.previous) {
      plan.emplace_back(id, outcome.target);
    }
  }
  // Apply relaxations first: they free CPUs that tightenings may need.
  std::ranges::stable_sort(plan, [&manager](const auto& a, const auto& b) {
    const auto need = [&manager](const auto& entry) {
      const VNode& node = manager.vnodes().at(entry.first);
      const auto needed = entry.second.cores_for(node.committed_vcpus());
      return static_cast<long>(needed) - static_cast<long>(node.core_count());
    };
    return need(a) < need(b);
  });
  for (const auto& [id, target] : plan) {
    const bool applied = manager.retune(id, target).has_value();
    for (RetuneOutcome& outcome : outcomes) {
      if (outcome.vnode == id) {
        outcome.applied = applied;
      }
    }
  }
  return outcomes;
}

}  // namespace slackvm::local
