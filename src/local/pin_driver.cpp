#include "local/pin_driver.hpp"

#include "core/error.hpp"

namespace slackvm::local {

void RecordingPinBackend::apply_pin(core::VmId vm, const topo::CpuSet& cpus) {
  SLACKVM_ASSERT(!cpus.empty());
  const auto it = pins_.find(vm);
  if (it != pins_.end() && it->second == cpus) {
    ++skipped_ops_;
    return;
  }
  pins_.insert_or_assign(vm, cpus);
  ++pin_ops_;
}

void RecordingPinBackend::clear_pin(core::VmId vm) {
  const auto erased = pins_.erase(vm);
  SLACKVM_ASSERT(erased == 1);
}

const topo::CpuSet& RecordingPinBackend::pin_of(core::VmId vm) const {
  const auto it = pins_.find(vm);
  if (it == pins_.end()) {
    SLACKVM_THROW("RecordingPinBackend::pin_of: unknown VM");
  }
  return it->second;
}

bool PinDriver::deploy(core::VmId id, const core::VmSpec& spec) {
  const auto result = manager_->deploy(id, spec);
  if (!result) {
    return false;
  }
  apply(result->repins);
  return true;
}

void PinDriver::remove(core::VmId id) {
  const auto repins = manager_->remove(id);
  backend_->clear_pin(id);
  apply(repins);
}

void PinDriver::apply(std::span<const PinUpdate> repins) {
  for (const PinUpdate& pin : repins) {
    backend_->apply_pin(pin.vm, pin.cpus);
  }
}

}  // namespace slackvm::local
