// Per-NUMA-node memory accounting (paper §VIII: "the isolation of memory
// resources for distinct VMs ... represents a compelling area for further
// exploration").
//
// The PM's memory is split across its NUMA nodes (evenly, as on typical
// balanced DIMM populations). A VM's memory is committed local-first: nodes
// hosting the VM's vNode CPUs are filled before spilling to remote nodes,
// in ascending NUMA-distance order. The map reports a locality metric —
// the fraction of committed bytes resident on the nodes of the consuming
// CPUs — quantifying how much the topology-aware vNode placement buys for
// memory locality.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/units.hpp"
#include "core/vm.hpp"
#include "topology/cpu_topology.hpp"
#include "topology/cpuset.hpp"

namespace slackvm::local {

/// How a VM's memory is spread over NUMA nodes.
struct MemPlacement {
  /// amount committed per node (node -> MiB), only non-zero entries.
  std::map<std::uint32_t, core::MemMib> per_node;

  [[nodiscard]] core::MemMib total() const;
};

class NumaMemoryMap {
 public:
  /// Splits topo.total_mem() evenly across its NUMA nodes (remainder goes
  /// to node 0).
  explicit NumaMemoryMap(const topo::CpuTopology& topo);

  /// Commit `mem` MiB for `vm` whose vNode owns `vnode_cpus`: local nodes
  /// first, then remote nodes by ascending NUMA distance. Fails (and
  /// changes nothing) if the PM lacks `mem` free MiB overall.
  std::optional<MemPlacement> commit(core::VmId vm, core::MemMib mem,
                                     const topo::CpuSet& vnode_cpus);

  /// Release a VM's memory; throws for unknown VMs.
  void release(core::VmId vm);

  /// Re-evaluate a VM's placement after its vNode moved to `vnode_cpus`
  /// (e.g. after a resize): releases and re-commits. Never fails — the
  /// memory fit is unchanged.
  MemPlacement rebalance(core::VmId vm, const topo::CpuSet& vnode_cpus);

  [[nodiscard]] core::MemMib free_on(std::uint32_t node) const;
  [[nodiscard]] core::MemMib capacity_of(std::uint32_t node) const;
  [[nodiscard]] core::MemMib total_free() const;
  [[nodiscard]] const MemPlacement& placement_of(core::VmId vm) const;
  [[nodiscard]] bool tracks(core::VmId vm) const { return placements_.contains(vm); }

  /// Fraction of `vm`'s memory resident on the NUMA nodes of `cpus`
  /// (1.0 = fully local).
  [[nodiscard]] double locality(core::VmId vm, const topo::CpuSet& cpus) const;

  /// Capacity-weighted locality across all tracked VMs given a pin lookup.
  [[nodiscard]] std::size_t vm_count() const noexcept { return placements_.size(); }

 private:
  [[nodiscard]] std::vector<std::uint32_t> nodes_by_preference(
      const topo::CpuSet& vnode_cpus) const;

  const topo::CpuTopology* topo_;
  std::vector<core::MemMib> capacity_;  // per node
  std::vector<core::MemMib> used_;      // per node
  std::map<core::VmId, MemPlacement> placements_;
};

}  // namespace slackvm::local
