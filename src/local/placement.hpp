// Topology-driven CPU selection policies for vNode resizing (paper §V-A).
//
//  * Growing an existing vNode picks free CPUs *closest* (Algorithm 1
//    distance) to the current allocation, so sibling cores integrate
//    gradually and the node keeps resembling a smaller CPU.
//  * Creating a vNode seeds it with the free CPU *farthest* from all CPUs
//    already owned by other vNodes (ideally a separate socket), maximizing
//    isolation between oversubscription levels.
//  * Shrinking releases the CPUs that are least compact with respect to the
//    surviving set.
//
// All selections are deterministic: ties break on the lowest CPU id.
#pragma once

#include <optional>
#include <vector>

#include "topology/cpuset.hpp"
#include "topology/distance.hpp"

namespace slackvm::local {

/// Pick `count` CPUs from `free_cpus` to extend `current`, greedily
/// minimizing the Algorithm-1 distance to the growing set. Returns
/// std::nullopt when `free_cpus` has fewer than `count` members.
[[nodiscard]] std::optional<topo::CpuSet> choose_extension_cpus(
    const topo::DistanceMatrix& dm, const topo::CpuSet& free_cpus,
    const topo::CpuSet& current, std::size_t count);

/// Pick `count` CPUs from `free_cpus` for a brand-new vNode: the seed CPU
/// maximizes the distance to `occupied` (CPUs of all other vNodes); remaining
/// CPUs are chosen as the closest to the new node. With nothing occupied the
/// seed is the lowest free CPU.
[[nodiscard]] std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                                           const topo::CpuSet& free_cpus,
                                                           const topo::CpuSet& occupied,
                                                           std::size_t count);

/// Pick `count` CPUs of `current` to release, greedily removing the CPU with
/// the largest total distance to the CPUs that remain. Returns the CPUs to
/// release; `count` must not exceed |current|.
[[nodiscard]] topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm,
                                               const topo::CpuSet& current, std::size_t count);

}  // namespace slackvm::local
