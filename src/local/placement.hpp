// Topology-driven CPU selection policies for vNode resizing (paper §V-A).
//
//  * Growing an existing vNode picks free CPUs *closest* (Algorithm 1
//    distance) to the current allocation, so sibling cores integrate
//    gradually and the node keeps resembling a smaller CPU.
//  * Creating a vNode seeds it with the free CPU *farthest* from all CPUs
//    already owned by other vNodes (ideally a separate socket), maximizing
//    isolation between oversubscription levels.
//  * Shrinking releases the CPUs that are least compact with respect to the
//    surviving set.
//
// All selections are deterministic: ties break on the lowest CPU id. This
// tie-break is part of the engine's contract — the incremental fast path
// below and the naive reference (namespace naive) must agree bit-for-bit,
// which the differential churn tests assert.
//
// The default implementations are incremental: instead of rescanning every
// pool CPU against the whole accumulated set at each greedy step
// (O(steps·|pool|·|acc|), one heap allocation per inner iteration), they
// maintain Prim-style distance frontiers — min_dist[cpu] = min distance to
// the growing set, total_dist[cpu] = sum of distances to the surviving set —
// relaxed with only the one matrix row of the CPU added or removed per step
// (O(steps·n), zero allocations in the inner loops when a PlacementScratch
// is reused). A caller that owns a DistanceFrontier per vNode (VNodeManager
// does) carries the frontiers across calls, so steady-state resizes skip
// the O(|set|·n) rebuild entirely: the sum frontier is exact under both
// additions and removals, the min frontier under additions by relaxation
// and under removals through per-entry witness counts. The original
// implementations live on in namespace naive as the differential reference.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/cpuset.hpp"
#include "topology/distance.hpp"

namespace slackvm::local {

/// Reusable frontier buffers for the incremental fast path. A caller that
/// holds one across invocations (VNodeManager does) makes the selection
/// loops allocation-free at steady state; the buffers are resized to the
/// CPU universe on first use and never shrink. Treat the contents as opaque
/// scratch — they carry no state between calls.
struct PlacementScratch {
  std::vector<std::uint32_t> best_dist;   ///< grow frontier: min distance to set
  std::vector<std::uint64_t> total_dist;  ///< release frontier: total distance
  topo::CpuSet pool;                      ///< working copy of the candidate pool
  topo::CpuSet acc;                       ///< working copy of the growing set
};

/// Persistent distance frontier of one vNode, carried across selection
/// calls by the owner (VNodeManager keeps one per vNode). Both arrays are
/// dense over the CPU universe and describe the node's *current* CPU set:
///
///   min_dist[cpu]   = min Algorithm-1 distance from `cpu` to the set
///   total_dist[cpu] = sum of distances from `cpu` to the set
///
/// The sum stays exact under additions (+= row) and removals (-= row), so
/// `total_valid` survives every resize once built. The min survives
/// additions by relaxation, and removals through `min_count[cpu]` — the
/// number of set members achieving the minimum: removing a member only
/// forces an O(|set|) recompute for the entries whose count drops to zero,
/// which Algorithm-1's heavily tied distance values make rare. Selection
/// results are bit-identical with or without a frontier — it is purely a
/// work-avoidance cache (audited by VNodeManager::check_invariants against
/// a from-scratch recomputation).
struct DistanceFrontier {
  std::vector<std::uint32_t> min_dist;
  std::vector<std::uint32_t> min_count;
  std::vector<std::uint64_t> total_dist;
  bool min_valid = false;
  bool total_valid = false;
};

/// Pick `count` CPUs from `free_cpus` to extend `current`, greedily
/// minimizing the Algorithm-1 distance to the growing set (lowest CPU id on
/// equal distance). Returns std::nullopt when `free_cpus` has fewer than
/// `count` members.
/// `frontier`, when given, must describe `current` (or be invalid, in which
/// case it is rebuilt); it is updated to describe the grown set.
[[nodiscard]] std::optional<topo::CpuSet> choose_extension_cpus(
    const topo::DistanceMatrix& dm, const topo::CpuSet& free_cpus,
    const topo::CpuSet& current, std::size_t count, PlacementScratch& scratch,
    DistanceFrontier* frontier = nullptr);

/// Pick `count` CPUs from `free_cpus` for a brand-new vNode: the seed CPU
/// maximizes the distance to `occupied` (CPUs of all other vNodes; lowest
/// CPU id on equal distance); remaining CPUs are chosen as the closest to
/// the new node. With nothing occupied the seed is the lowest free CPU.
[[nodiscard]] std::optional<topo::CpuSet> choose_seed_cpus(
    const topo::DistanceMatrix& dm, const topo::CpuSet& free_cpus,
    const topo::CpuSet& occupied, std::size_t count, PlacementScratch& scratch);

/// Pick `count` CPUs of `current` to release, greedily removing the CPU with
/// the largest total distance to the CPUs that remain (lowest CPU id on
/// equal total). Returns the CPUs to release; `count` must not exceed
/// |current|.
/// `frontier`, when given, must describe `current` (or have an invalid sum,
/// in which case it is rebuilt); it is updated to describe the surviving
/// set.
[[nodiscard]] topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm,
                                               const topo::CpuSet& current,
                                               std::size_t count,
                                               PlacementScratch& scratch,
                                               DistanceFrontier* frontier = nullptr);

// Convenience overloads with a per-call scratch (tests, one-off callers).
[[nodiscard]] std::optional<topo::CpuSet> choose_extension_cpus(
    const topo::DistanceMatrix& dm, const topo::CpuSet& free_cpus,
    const topo::CpuSet& current, std::size_t count);
[[nodiscard]] std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                                           const topo::CpuSet& free_cpus,
                                                           const topo::CpuSet& occupied,
                                                           std::size_t count);
[[nodiscard]] topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm,
                                               const topo::CpuSet& current, std::size_t count);

/// The original per-step-rescan implementations, kept verbatim as the
/// differential reference the fast path is proven against (the same pattern
/// the placement index uses for host selection, DESIGN.md §5). Semantics —
/// including the lowest-CPU-id tie-break — are the specification.
namespace naive {

[[nodiscard]] std::optional<topo::CpuSet> choose_extension_cpus(
    const topo::DistanceMatrix& dm, const topo::CpuSet& free_cpus,
    const topo::CpuSet& current, std::size_t count);

[[nodiscard]] std::optional<topo::CpuSet> choose_seed_cpus(const topo::DistanceMatrix& dm,
                                                           const topo::CpuSet& free_cpus,
                                                           const topo::CpuSet& occupied,
                                                           std::size_t count);

[[nodiscard]] topo::CpuSet choose_release_cpus(const topo::DistanceMatrix& dm,
                                               const topo::CpuSet& current, std::size_t count);

}  // namespace naive

}  // namespace slackvm::local
