// Hypervisor pinning shim.
//
// On a live host SlackVM's local scheduler talks to QEMU/KVM through libvirt
// to (re)pin vCPU threads (paper §VII-A1). This module provides that last
// mile as an interface plus an in-memory recording backend, so the rest of
// the stack is hypervisor-agnostic and the repin traffic — the paper argues
// it is negligible because it only happens on deploy/destroy (§V-A) — can
// be measured by tests and the ablation bench.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/vm.hpp"
#include "local/vnode_manager.hpp"
#include "topology/cpuset.hpp"

namespace slackvm::local {

/// Applies affinity changes to a hypervisor. Implementations must be
/// idempotent: re-applying an identical pin is a no-op upstream.
class PinBackend {
 public:
  virtual ~PinBackend() = default;

  /// Pin all vCPUs of `vm` to `cpus` (non-empty).
  virtual void apply_pin(core::VmId vm, const topo::CpuSet& cpus) = 0;

  /// Remove any pinning state for `vm` (VM destroyed).
  virtual void clear_pin(core::VmId vm) = 0;
};

/// In-memory backend: tracks current pins and counts operations, skipping
/// redundant re-pins the way a libvirt driver would.
class RecordingPinBackend final : public PinBackend {
 public:
  void apply_pin(core::VmId vm, const topo::CpuSet& cpus) override;
  void clear_pin(core::VmId vm) override;

  /// Current affinity of a VM; throws for unknown VMs.
  [[nodiscard]] const topo::CpuSet& pin_of(core::VmId vm) const;
  [[nodiscard]] bool has_pin(core::VmId vm) const { return pins_.contains(vm); }
  [[nodiscard]] std::size_t pinned_vms() const noexcept { return pins_.size(); }

  /// Number of effective (non-redundant) pin changes applied.
  [[nodiscard]] std::uint64_t pin_ops() const noexcept { return pin_ops_; }
  /// Number of redundant pin requests skipped.
  [[nodiscard]] std::uint64_t skipped_ops() const noexcept { return skipped_ops_; }

 private:
  std::map<core::VmId, topo::CpuSet> pins_;
  std::uint64_t pin_ops_ = 0;
  std::uint64_t skipped_ops_ = 0;
};

/// Glues a VNodeManager to a PinBackend: forwards deploy/remove through the
/// manager and pushes the resulting pin updates to the hypervisor.
class PinDriver {
 public:
  PinDriver(VNodeManager& manager, PinBackend& backend)
      : manager_(&manager), backend_(&backend) {}

  /// Deploy and pin; returns false (no state change) when the PM is full.
  bool deploy(core::VmId id, const core::VmSpec& spec);

  /// Remove, clear the VM's pin and re-pin its former neighbours.
  void remove(core::VmId id);

  /// Apply a batch of pin updates (e.g. from VNodeManager::retune).
  void apply(std::span<const PinUpdate> repins);

  [[nodiscard]] VNodeManager& manager() noexcept { return *manager_; }

 private:
  VNodeManager* manager_;
  PinBackend* backend_;
};

}  // namespace slackvm::local
