#include "local/vnode_manager.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "local/placement.hpp"

namespace slackvm::local {

VNodeManager::VNodeManager(const topo::CpuTopology& topo, PoolingPolicy pooling,
                           double mem_oversub)
    : topo_(topo),
      distances_(topo),
      pooling_(pooling),
      mem_oversub_(mem_oversub),
      free_cpus_(topo.all_cpus()) {
  SLACKVM_ASSERT(mem_oversub >= 1.0);
}

bool VNodeManager::can_host(const core::VmSpec& spec) const {
  if (draining_) {
    return false;
  }
  if (committed_mem_ + spec.mem_mib > mem_capacity()) {
    return false;
  }
  return pick_target(spec).has_value();
}

bool VNodeManager::node_can_take(const VNode& node, const core::VmSpec& spec,
                                 bool as_pool) const {
  if (as_pool) {
    // §V-B pooling: only among oversubscribed nodes, and only by upgrading a
    // laxer VM into a stricter node (the stricter guarantee subsumes the
    // laxer one — never the other way around).
    if (!node.level().oversubscribed() || !node.level().stricter_than(spec.level)) {
      return false;
    }
  } else if (node.level() != spec.level) {
    return false;
  }
  const core::CoreCount needed = node.required_cores_with(spec.vcpus);
  const core::CoreCount have = node.core_count();
  const core::CoreCount delta = needed > have ? needed - have : 0;
  return delta <= free_cpus_.count();
}

std::optional<VNodeManager::Target> VNodeManager::pick_target(
    const core::VmSpec& spec) const {
  SLACKVM_ASSERT(spec.vcpus > 0);
  // 1. Grow the vNode of the VM's own level.
  for (const auto& [id, node] : vnodes_) {
    if (node.level() == spec.level) {
      if (node_can_take(node, spec, /*as_pool=*/false)) {
        return Target{id, false};
      }
      break;  // at most one node per level
    }
  }
  // 2. Create a fresh vNode for this level if none exists yet.
  if (find_level(spec.level) == nullptr &&
      spec.level.cores_for(spec.vcpus) <= free_cpus_.count()) {
    return Target{next_id_, false};
  }
  // 3. Pooling upgrade (§V-B): prefer the laxest stricter node so the VM's
  // effective upgrade — and the core over-allocation it causes — is minimal.
  if (pooling_ == PoolingPolicy::kUpgrade) {
    std::optional<Target> best;
    core::OversubLevel best_level{1};
    for (const auto& [id, node] : vnodes_) {
      if (node_can_take(node, spec, /*as_pool=*/true)) {
        if (!best || best_level.stricter_than(node.level())) {
          best = Target{id, true};
          best_level = node.level();
        }
      }
    }
    if (best) {
      return best;
    }
  }
  return std::nullopt;
}

std::optional<DeployResult> VNodeManager::deploy(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!vm_to_vnode_.contains(id));
  if (draining_ || committed_mem_ + spec.mem_mib > mem_capacity()) {
    return std::nullopt;
  }
  const auto target = pick_target(spec);
  if (!target) {
    return std::nullopt;
  }

  auto it = vnodes_.find(target->vnode);
  if (it == vnodes_.end()) {
    // Create a new vNode seeded as far as possible from existing ones.
    const core::CoreCount needed = spec.level.cores_for(spec.vcpus);
    auto seed = choose_seed_cpus(distances_, free_cpus_, occupied_cpus(), needed);
    SLACKVM_ASSERT(seed.has_value());
    VNode node(next_id_, spec.level, topo_.cpu_count());
    node.assign_cpus(*seed);
    free_cpus_ -= *seed;
    it = vnodes_.emplace(next_id_, std::move(node)).first;
    ++next_id_;
  }

  VNode& node = it->second;
  node.add_vm(id, spec);
  vm_to_vnode_.emplace(id, node.id());
  committed_mem_ += spec.mem_mib;

  DeployResult result;
  result.vnode = node.id();
  result.pooled = target->pooled;
  result.repins = resize_node(node);
  return result;
}

std::vector<PinUpdate> VNodeManager::remove(core::VmId id) {
  const auto it = vm_to_vnode_.find(id);
  if (it == vm_to_vnode_.end()) {
    SLACKVM_THROW("VNodeManager::remove: unknown VM");
  }
  auto node_it = vnodes_.find(it->second);
  SLACKVM_ASSERT(node_it != vnodes_.end());
  VNode& node = node_it->second;

  committed_mem_ -= node.spec_of(id).mem_mib;
  node.remove_vm(id);
  vm_to_vnode_.erase(it);

  if (node.empty()) {
    free_cpus_ |= node.cpus();
    vnodes_.erase(node_it);
    return {};
  }
  return resize_node(node);
}

std::optional<std::vector<PinUpdate>> VNodeManager::retune(VNodeId vnode,
                                                           core::OversubLevel effective) {
  const auto it = vnodes_.find(vnode);
  if (it == vnodes_.end()) {
    SLACKVM_THROW("VNodeManager::retune: unknown vNode");
  }
  VNode& node = it->second;
  if (node.level().stricter_than(effective)) {
    SLACKVM_THROW("VNodeManager::retune: effective level laxer than contract");
  }
  const core::CoreCount needed = effective.cores_for(node.committed_vcpus());
  const core::CoreCount have = node.core_count();
  if (needed > have && needed - have > free_cpus_.count()) {
    return std::nullopt;  // cannot tighten: not enough free CPUs
  }
  node.set_effective_level(effective);
  return resize_node(node);
}

std::vector<PinUpdate> VNodeManager::resize_node(VNode& node) {
  const core::CoreCount needed = node.required_cores();
  const core::CoreCount have = node.core_count();
  if (needed > have) {
    auto extension =
        choose_extension_cpus(distances_, free_cpus_, node.cpus(), needed - have);
    SLACKVM_ASSERT(extension.has_value());  // pick_target guaranteed room
    free_cpus_ -= *extension;
    node.assign_cpus(node.cpus() | *extension);
  } else if (needed < have) {
    const topo::CpuSet released = choose_release_cpus(distances_, node.cpus(), have - needed);
    free_cpus_ |= released;
    node.assign_cpus(node.cpus() - released);
  }
  return repins_for(node);
}

std::vector<PinUpdate> VNodeManager::repins_for(const VNode& node) const {
  // Every VM of a resized vNode is (re)pinned to the node's full CPU range —
  // the in-node choice of a specific thread is left to the OS scheduler.
  std::vector<PinUpdate> repins;
  auto ids = node.vm_ids();
  std::ranges::sort(ids);
  repins.reserve(ids.size());
  for (core::VmId vm : ids) {
    repins.push_back(PinUpdate{vm, node.cpus()});
  }
  return repins;
}

topo::CpuSet VNodeManager::occupied_cpus() const {
  topo::CpuSet occupied(topo_.cpu_count());
  for (const auto& [id, node] : vnodes_) {
    occupied |= node.cpus();
  }
  return occupied;
}

core::Resources VNodeManager::alloc() const {
  core::CoreCount cores = 0;
  for (const auto& [id, node] : vnodes_) {
    cores += node.core_count();
  }
  return core::Resources{cores, committed_mem_};
}

const VNode* VNodeManager::find_level(core::OversubLevel level) const {
  for (const auto& [id, node] : vnodes_) {
    if (node.level() == level) {
      return &node;
    }
  }
  return nullptr;
}

const topo::CpuSet& VNodeManager::pin_of(core::VmId vm) const {
  const auto it = vm_to_vnode_.find(vm);
  if (it == vm_to_vnode_.end()) {
    SLACKVM_THROW("VNodeManager::pin_of: unknown VM");
  }
  return vnodes_.at(it->second).cpus();
}

void VNodeManager::check_invariants() const {
  topo::CpuSet seen = free_cpus_;
  core::MemMib mem = 0;
  std::size_t vms = 0;
  for (const auto& [id, node] : vnodes_) {
    SLACKVM_ASSERT(!node.empty());
    SLACKVM_ASSERT(node.capacity_ok());
    SLACKVM_ASSERT(node.core_count() == node.required_cores());
    SLACKVM_ASSERT(!seen.intersects(node.cpus()));
    seen |= node.cpus();
    mem += node.committed_mem();
    vms += node.vm_count();
    for (core::VmId vm : node.vm_ids()) {
      SLACKVM_ASSERT(vm_to_vnode_.at(vm) == id);
    }
  }
  SLACKVM_ASSERT(seen == topo_.all_cpus());
  SLACKVM_ASSERT(mem == committed_mem_);
  SLACKVM_ASSERT(mem <= mem_capacity());
  SLACKVM_ASSERT(vms == vm_to_vnode_.size());
}

}  // namespace slackvm::local
