#include "local/vnode_manager.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace slackvm::local {

VNodeManager::VNodeManager(const topo::CpuTopology& topo, PoolingPolicy pooling,
                           double mem_oversub, PlacementEngine engine)
    : topo_(topo),
      distances_(topo::DistanceMatrixCache::shared(topo)),
      pooling_(pooling),
      mem_oversub_(mem_oversub),
      engine_(engine),
      free_cpus_(topo.all_cpus()),
      occupied_cpus_(topo.cpu_count()) {
  SLACKVM_ASSERT(mem_oversub >= 1.0);
}

bool VNodeManager::can_host(const core::VmSpec& spec) const {
  if (draining_) {
    return false;
  }
  if (committed_mem_ + spec.mem_mib > mem_capacity()) {
    return false;
  }
  return target_for(spec).has_value();
}

std::optional<VNodeManager::Target> VNodeManager::target_for(
    const core::VmSpec& spec) const {
  if (cache_valid_ && cache_epoch_ == state_epoch_ && cached_spec_ == spec) {
    return cached_target_;
  }
  ++pick_target_calls_;
  cached_target_ = pick_target(spec);
  cached_spec_ = spec;
  cache_epoch_ = state_epoch_;
  cache_valid_ = true;
  return cached_target_;
}

bool VNodeManager::node_can_take(const VNode& node, const core::VmSpec& spec,
                                 bool as_pool) const {
  if (as_pool) {
    // §V-B pooling: only among oversubscribed nodes, and only by upgrading a
    // laxer VM into a stricter node (the stricter guarantee subsumes the
    // laxer one — never the other way around).
    if (!node.level().oversubscribed() || !node.level().stricter_than(spec.level)) {
      return false;
    }
  } else if (node.level() != spec.level) {
    return false;
  }
  const core::CoreCount needed = node.required_cores_with(spec.vcpus);
  const core::CoreCount have = node.core_count();
  const core::CoreCount delta = needed > have ? needed - have : 0;
  return delta <= free_cpus_.count();
}

std::optional<VNodeManager::Target> VNodeManager::pick_target(
    const core::VmSpec& spec) const {
  SLACKVM_ASSERT(spec.vcpus > 0);
  // 1. Grow the vNode of the VM's own level (at most one node per level,
  // found through the maintained level map).
  const auto own = level_to_vnode_.find(spec.level);
  if (own != level_to_vnode_.end() &&
      node_can_take(vnodes_.at(own->second), spec, /*as_pool=*/false)) {
    return Target{own->second, false};
  }
  // 2. Create a fresh vNode for this level if none exists yet.
  if (own == level_to_vnode_.end() &&
      spec.level.cores_for(spec.vcpus) <= free_cpus_.count()) {
    return Target{next_id_, false};
  }
  // 3. Pooling upgrade (§V-B): prefer the laxest stricter node so the VM's
  // effective upgrade — and the core over-allocation it causes — is minimal.
  // Walking the level map downwards from the VM's level visits stricter
  // nodes laxest-first, so the first feasible one wins.
  if (pooling_ == PoolingPolicy::kUpgrade) {
    for (auto it = level_to_vnode_.lower_bound(spec.level);
         it != level_to_vnode_.begin();) {
      --it;
      if (node_can_take(vnodes_.at(it->second), spec, /*as_pool=*/true)) {
        return Target{it->second, true};
      }
    }
  }
  return std::nullopt;
}

void VNodeManager::claim_cpus(const topo::CpuSet& cpus) {
  free_cpus_ -= cpus;
  occupied_cpus_ |= cpus;
}

void VNodeManager::release_cpus(const topo::CpuSet& cpus) {
  free_cpus_ |= cpus;
  occupied_cpus_ -= cpus;
}

std::optional<DeployResult> VNodeManager::deploy(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!vm_to_vnode_.contains(id));
  if (draining_ || committed_mem_ + spec.mem_mib > mem_capacity()) {
    return std::nullopt;
  }
  const auto target = target_for(spec);
  if (!target) {
    return std::nullopt;
  }
  ++state_epoch_;

  auto it = vnodes_.find(target->vnode);
  if (it == vnodes_.end()) {
    // Create a new vNode seeded as far as possible from existing ones.
    const core::CoreCount needed = spec.level.cores_for(spec.vcpus);
    const auto seed =
        engine_ == PlacementEngine::kFast
            ? choose_seed_cpus(*distances_, free_cpus_, occupied_cpus_, needed, scratch_)
            : naive::choose_seed_cpus(*distances_, free_cpus_, occupied_cpus_, needed);
    SLACKVM_ASSERT(seed.has_value());
    VNode node(next_id_, spec.level, topo_.cpu_count());
    node.assign_cpus(*seed);
    claim_cpus(*seed);
    it = vnodes_.emplace(next_id_, std::move(node)).first;
    level_to_vnode_.emplace(spec.level, next_id_);
    ++next_id_;
  }

  VNode& node = it->second;
  node.add_vm(id, spec);
  vm_to_vnode_.emplace(id, node.id());
  committed_mem_ += spec.mem_mib;

  DeployResult result;
  result.vnode = node.id();
  result.pooled = target->pooled;
  result.repins = resize_node(node);
  return result;
}

std::vector<PinUpdate> VNodeManager::remove(core::VmId id) {
  const auto it = vm_to_vnode_.find(id);
  if (it == vm_to_vnode_.end()) {
    SLACKVM_THROW("VNodeManager::remove: unknown VM");
  }
  auto node_it = vnodes_.find(it->second);
  SLACKVM_ASSERT(node_it != vnodes_.end());
  VNode& node = node_it->second;
  ++state_epoch_;

  committed_mem_ -= node.spec_of(id).mem_mib;
  node.remove_vm(id);
  vm_to_vnode_.erase(it);

  if (node.empty()) {
    release_cpus(node.cpus());
    level_to_vnode_.erase(node.level());
    frontiers_.erase(node_it->first);
    vnodes_.erase(node_it);
    return {};
  }
  return resize_node(node);
}

std::optional<std::vector<PinUpdate>> VNodeManager::retune(VNodeId vnode,
                                                           core::OversubLevel effective) {
  const auto it = vnodes_.find(vnode);
  if (it == vnodes_.end()) {
    SLACKVM_THROW("VNodeManager::retune: unknown vNode");
  }
  VNode& node = it->second;
  if (node.level().stricter_than(effective)) {
    SLACKVM_THROW("VNodeManager::retune: effective level laxer than contract");
  }
  const core::CoreCount needed = effective.cores_for(node.committed_vcpus());
  const core::CoreCount have = node.core_count();
  if (needed > have && needed - have > free_cpus_.count()) {
    return std::nullopt;  // cannot tighten: not enough free CPUs
  }
  ++state_epoch_;
  node.set_effective_level(effective);
  return resize_node(node);
}

std::vector<PinUpdate> VNodeManager::resize_node(VNode& node) {
  const core::CoreCount needed = node.required_cores();
  const core::CoreCount have = node.core_count();
  // The persistent frontier of this vNode (fast engine only): built lazily
  // on the node's first resize, then carried across every grow/release so
  // steady-state resizes cost O(steps·n) with no rebuild.
  DistanceFrontier* frontier =
      engine_ == PlacementEngine::kFast ? &frontiers_[node.id()] : nullptr;
  if (needed > have) {
    const auto extension =
        engine_ == PlacementEngine::kFast
            ? choose_extension_cpus(*distances_, free_cpus_, node.cpus(),
                                    needed - have, scratch_, frontier)
            : naive::choose_extension_cpus(*distances_, free_cpus_, node.cpus(),
                                           needed - have);
    SLACKVM_ASSERT(extension.has_value());  // pick_target guaranteed room
    claim_cpus(*extension);
    node.assign_cpus(node.cpus() | *extension);
  } else if (needed < have) {
    const topo::CpuSet released =
        engine_ == PlacementEngine::kFast
            ? choose_release_cpus(*distances_, node.cpus(), have - needed, scratch_,
                                  frontier)
            : naive::choose_release_cpus(*distances_, node.cpus(), have - needed);
    release_cpus(released);
    node.assign_cpus(node.cpus() - released);
  }
  return repins_for(node);
}

std::vector<PinUpdate> VNodeManager::repins_for(const VNode& node) const {
  // Every VM of a resized vNode is (re)pinned to the node's full CPU range —
  // the in-node choice of a specific thread is left to the OS scheduler.
  // vm_ids() is maintained sorted, so the update order is deterministic
  // without a per-resize sort.
  std::vector<PinUpdate> repins;
  repins.reserve(node.vm_ids().size());
  for (core::VmId vm : node.vm_ids()) {
    repins.push_back(PinUpdate{vm, node.cpus()});
  }
  return repins;
}

core::Resources VNodeManager::alloc() const {
  core::CoreCount cores = 0;
  for (const auto& [id, node] : vnodes_) {
    cores += node.core_count();
  }
  return core::Resources{cores, committed_mem_};
}

const VNode* VNodeManager::find_level(core::OversubLevel level) const {
  const auto it = level_to_vnode_.find(level);
  return it == level_to_vnode_.end() ? nullptr : &vnodes_.at(it->second);
}

const topo::CpuSet& VNodeManager::pin_of(core::VmId vm) const {
  const auto it = vm_to_vnode_.find(vm);
  if (it == vm_to_vnode_.end()) {
    SLACKVM_THROW("VNodeManager::pin_of: unknown VM");
  }
  return vnodes_.at(it->second).cpus();
}

void VNodeManager::check_invariants() const {
  topo::CpuSet seen = free_cpus_;
  core::MemMib mem = 0;
  std::size_t vms = 0;
  for (const auto& [id, node] : vnodes_) {
    SLACKVM_ASSERT(!node.empty());
    SLACKVM_ASSERT(node.capacity_ok());
    SLACKVM_ASSERT(node.core_count() == node.required_cores());
    SLACKVM_ASSERT(!seen.intersects(node.cpus()));
    seen |= node.cpus();
    mem += node.committed_mem();
    vms += node.vm_count();
    SLACKVM_ASSERT(level_to_vnode_.contains(node.level()));
    SLACKVM_ASSERT(level_to_vnode_.at(node.level()) == id);
    SLACKVM_ASSERT(std::ranges::is_sorted(node.vm_ids()));
    for (core::VmId vm : node.vm_ids()) {
      SLACKVM_ASSERT(vm_to_vnode_.at(vm) == id);
    }
    // A valid persistent frontier must match a from-scratch recomputation —
    // the work-avoidance cache may never drift from the node's CPU set.
    const auto frontier_it = frontiers_.find(id);
    if (frontier_it != frontiers_.end()) {
      const DistanceFrontier& frontier = frontier_it->second;
      if (frontier.min_valid) {
        SLACKVM_ASSERT(frontier.min_dist.size() == topo_.cpu_count());
        SLACKVM_ASSERT(frontier.min_count.size() == topo_.cpu_count());
        for (std::size_t cpu = 0; cpu < topo_.cpu_count(); ++cpu) {
          const auto min =
              distances_->min_distance_to(static_cast<topo::CpuId>(cpu), node.cpus());
          SLACKVM_ASSERT(frontier.min_dist[cpu] == min);
          std::uint32_t witnesses = 0;
          node.cpus().for_each_cpu([&](topo::CpuId member) {
            if ((*distances_)(static_cast<topo::CpuId>(cpu), member) == min) {
              ++witnesses;
            }
          });
          SLACKVM_ASSERT(frontier.min_count[cpu] == witnesses);
        }
      }
      if (frontier.total_valid) {
        SLACKVM_ASSERT(frontier.total_dist.size() == topo_.cpu_count());
        for (std::size_t cpu = 0; cpu < topo_.cpu_count(); ++cpu) {
          SLACKVM_ASSERT(frontier.total_dist[cpu] ==
                         distances_->total_distance_to(static_cast<topo::CpuId>(cpu),
                                                       node.cpus()));
        }
      }
    }
  }
  SLACKVM_ASSERT(seen == topo_.all_cpus());
  SLACKVM_ASSERT(occupied_cpus_ == topo_.all_cpus() - free_cpus_);
  SLACKVM_ASSERT(level_to_vnode_.size() == vnodes_.size());
  SLACKVM_ASSERT(mem == committed_mem_);
  SLACKVM_ASSERT(mem <= mem_capacity());
  SLACKVM_ASSERT(vms == vm_to_vnode_.size());
}

}  // namespace slackvm::local
