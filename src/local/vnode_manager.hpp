// The SlackVM local scheduler (paper §V): manages the vNodes of one PM.
//
// Responsibilities:
//  * translate VM deployments/removals into vNode create/grow/shrink/destroy
//    operations with topology-aware CPU selection;
//  * enforce the per-level capacity invariant (no more than n vCPUs per
//    physical thread in an n:1 vNode) and the PM-wide memory bound (memory
//    is not oversubscribed by default; a limited DRAM ratio is optional);
//  * emit pinning updates so a hypervisor shim (or the QoS model) can re-pin
//    every VM of a resized vNode to the node's new CPU range;
//  * optionally pool oversubscribed levels (§V-B): a VM of level n may join
//    a stricter vNode m:1 (m < n) — an "upgrade" — when its own level's
//    vNode cannot grow, as long as the stricter ratio still holds.
//
// Hot-path bookkeeping is incremental: the Algorithm-1 distance matrix is
// interned per hardware model (topo::DistanceMatrixCache) instead of rebuilt
// per manager, occupied CPUs and the level→vNode map are maintained across
// operations rather than recomputed, and CPU selection runs the frontier
// fast path in local/placement.hpp with a reused scratch. The naive
// selection functions remain available as a differential reference
// (PlacementEngine::kNaive) and must produce bit-identical pin decisions.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/resources.hpp"
#include "core/vm.hpp"
#include "local/placement.hpp"
#include "local/vnode.hpp"
#include "topology/cpu_topology.hpp"
#include "topology/distance.hpp"

namespace slackvm::local {

/// How the manager reacts when the natural vNode for a VM cannot grow.
enum class PoolingPolicy : std::uint8_t {
  kNone,     ///< strict: one level per vNode, fail if it cannot grow
  kUpgrade,  ///< §V-B: place into a stricter existing vNode when feasible
};

/// Which CPU-selection implementation the manager drives (local/placement.hpp).
enum class PlacementEngine : std::uint8_t {
  kFast,   ///< incremental distance frontiers (default)
  kNaive,  ///< per-step rescans — the differential reference
};

/// New pinning for one VM (all CPUs of its — possibly resized — vNode).
struct PinUpdate {
  core::VmId vm{};
  topo::CpuSet cpus;
};

/// Outcome of a successful deployment.
struct DeployResult {
  VNodeId vnode = 0;
  bool pooled = false;            ///< true when the VM was upgraded into a stricter node
  std::vector<PinUpdate> repins;  ///< includes the new VM itself
};

class VNodeManager {
 public:
  /// `mem_oversub` >= 1 allows committed memory up to total_mem * ratio
  /// (limited DRAM oversubscription, paper footnote 2 / §VIII).
  explicit VNodeManager(const topo::CpuTopology& topo,
                        PoolingPolicy pooling = PoolingPolicy::kNone,
                        double mem_oversub = 1.0,
                        PlacementEngine engine = PlacementEngine::kFast);

  /// Memory admission bound of this PM.
  [[nodiscard]] core::MemMib mem_capacity() const noexcept {
    return static_cast<core::MemMib>(static_cast<double>(topo_.total_mem()) *
                                     mem_oversub_);
  }

  /// Non-mutating feasibility check mirroring deploy()'s logic. The computed
  /// target is cached against the manager's state epoch, so an immediately
  /// following deploy() of the same spec reuses it instead of re-running the
  /// placement engine.
  [[nodiscard]] bool can_host(const core::VmSpec& spec) const;

  /// Deploy a VM; returns std::nullopt if it does not fit.
  std::optional<DeployResult> deploy(core::VmId id, const core::VmSpec& spec);

  /// Drain mode (the local half of the cluster-level host lifecycle,
  /// sched/host_state.hpp): while set, admission stops — can_host is false
  /// and deploy refuses — but removals proceed and keep shrinking vNodes,
  /// so an emptying PM releases its CPUs as the evacuation progresses.
  void set_draining(bool draining) noexcept { draining_ = draining; }
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  /// Remove a VM; returns the pin updates of the surviving VMs of its vNode.
  /// Throws if the VM is unknown.
  std::vector<PinUpdate> remove(core::VmId id);

  /// Dynamic oversubscription (§VIII): retune a vNode's effective level
  /// within [1, contract]. Tightening may grow the node's CPU set and
  /// returns std::nullopt — state unchanged — when the PM lacks free CPUs;
  /// relaxing shrinks it. On success returns the node's pin updates.
  /// Throws for unknown vNode ids or levels laxer than the contract.
  std::optional<std::vector<PinUpdate>> retune(VNodeId vnode,
                                               core::OversubLevel effective);

  // --- observers -----------------------------------------------------------
  [[nodiscard]] const topo::CpuTopology& topology() const noexcept { return topo_; }
  [[nodiscard]] const std::map<VNodeId, VNode>& vnodes() const noexcept { return vnodes_; }
  [[nodiscard]] const topo::CpuSet& free_cpus() const noexcept { return free_cpus_; }
  /// CPUs owned by any vNode — the complement of free_cpus(), maintained
  /// incrementally (seed selection reads it on every new-vNode deploy).
  [[nodiscard]] const topo::CpuSet& occupied_cpus() const noexcept {
    return occupied_cpus_;
  }
  [[nodiscard]] core::MemMib committed_mem() const noexcept { return committed_mem_; }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vm_to_vnode_.size(); }
  [[nodiscard]] bool hosts(core::VmId vm) const { return vm_to_vnode_.contains(vm); }
  [[nodiscard]] PlacementEngine engine() const noexcept { return engine_; }

  /// Times the placement engine (pick_target) actually ran — cache hits from
  /// a can_host()/deploy() pair count once. Test/diagnostic instrumentation.
  [[nodiscard]] std::size_t pick_target_calls() const noexcept {
    return pick_target_calls_;
  }

  /// PM allocation in Algorithm-2 currency: physical threads owned by vNodes
  /// and committed memory.
  [[nodiscard]] core::Resources alloc() const;

  /// PM hardware configuration.
  [[nodiscard]] core::Resources config() const noexcept { return topo_.config(); }

  /// Existing vNode at exactly this (contract) level, if any. O(log levels)
  /// via the maintained level map.
  [[nodiscard]] const VNode* find_level(core::OversubLevel level) const;

  /// CPUs of the vNode hosting `vm`; throws for unknown VMs.
  [[nodiscard]] const topo::CpuSet& pin_of(core::VmId vm) const;

  /// Validate all internal invariants (tests / debugging); throws on
  /// violation. Cheap enough to run after every operation in tests.
  void check_invariants() const;

 private:
  struct Target {
    VNodeId vnode;
    bool pooled;
  };

  [[nodiscard]] std::optional<Target> pick_target(const core::VmSpec& spec) const;
  /// pick_target behind the state-epoch memo shared by can_host and deploy.
  [[nodiscard]] std::optional<Target> target_for(const core::VmSpec& spec) const;
  [[nodiscard]] bool node_can_take(const VNode& node, const core::VmSpec& spec,
                                   bool as_pool) const;
  void claim_cpus(const topo::CpuSet& cpus);
  void release_cpus(const topo::CpuSet& cpus);
  std::vector<PinUpdate> resize_node(VNode& node);
  std::vector<PinUpdate> repins_for(const VNode& node) const;

  const topo::CpuTopology& topo_;
  std::shared_ptr<const topo::DistanceMatrix> distances_;
  PoolingPolicy pooling_;
  double mem_oversub_ = 1.0;
  PlacementEngine engine_ = PlacementEngine::kFast;
  bool draining_ = false;
  std::map<VNodeId, VNode> vnodes_;  // ordered for deterministic iteration
  std::map<core::VmId, VNodeId> vm_to_vnode_;
  std::map<core::OversubLevel, VNodeId> level_to_vnode_;  // contract level → node
  topo::CpuSet free_cpus_;
  topo::CpuSet occupied_cpus_;
  core::MemMib committed_mem_ = 0;
  VNodeId next_id_ = 0;
  PlacementScratch scratch_;
  // Persistent per-vNode distance frontiers (fast engine only): the sum
  // frontier survives every resize, the min frontier every grow — see
  // placement.hpp. Audited against recomputation by check_invariants.
  std::map<VNodeId, DistanceFrontier> frontiers_;

  // Target memo: valid while nothing mutated since it was computed.
  std::uint64_t state_epoch_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::uint64_t cache_epoch_ = 0;
  mutable core::VmSpec cached_spec_{};
  mutable std::optional<Target> cached_target_;
  mutable std::size_t pick_target_calls_ = 0;
};

}  // namespace slackvm::local
