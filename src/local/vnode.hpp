// vNode: a dynamically sized, exclusive partition of a PM's hardware threads
// hosting VMs of a single oversubscription level (paper §IV-V).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/oversub.hpp"
#include "core/resources.hpp"
#include "core/vm.hpp"
#include "topology/cpuset.hpp"

namespace slackvm::local {

using VNodeId = std::uint32_t;

/// Resource partition at a fixed *contract* oversubscription level. The
/// VNodeManager owns resizing; VNode itself only tracks membership and
/// commitments and enforces the capacity invariant.
///
/// Dynamic oversubscription (paper §VIII): a node may temporarily run at a
/// stricter *effective* level than its contract — customers bought n:1 but
/// currently contend at most m:1 (m <= n) because observed usage is high.
/// The effective level drives core sizing; the contract level is what new
/// VMs are admitted against.
class VNode {
 public:
  VNode(VNodeId id, core::OversubLevel level, std::size_t cpu_universe);

  [[nodiscard]] VNodeId id() const noexcept { return id_; }
  /// The advertised (maximum) oversubscription ratio of this node.
  [[nodiscard]] core::OversubLevel level() const noexcept { return level_; }
  /// The ratio the node currently sizes its cores for; defaults to the
  /// contract level, never laxer than it.
  [[nodiscard]] core::OversubLevel effective_level() const noexcept {
    return effective_level_;
  }
  /// Retune the effective ratio within [1, contract]; the caller
  /// (VNodeManager::retune) resizes the CPU set afterwards.
  void set_effective_level(core::OversubLevel level);
  [[nodiscard]] const topo::CpuSet& cpus() const noexcept { return cpus_; }
  [[nodiscard]] core::CoreCount core_count() const noexcept {
    return static_cast<core::CoreCount>(cpus_.count());
  }

  /// Total vCPUs committed by hosted VMs.
  [[nodiscard]] core::VcpuCount committed_vcpus() const noexcept { return committed_vcpus_; }
  /// Total memory committed by hosted VMs.
  [[nodiscard]] core::MemMib committed_mem() const noexcept { return committed_mem_; }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }
  [[nodiscard]] bool hosts(core::VmId vm) const { return vms_.contains(vm); }

  /// Cores this vNode must own to satisfy its effective level.
  [[nodiscard]] core::CoreCount required_cores() const noexcept {
    return effective_level_.cores_for(committed_vcpus_);
  }

  /// Cores required if `extra_vcpus` more vCPUs were committed.
  [[nodiscard]] core::CoreCount required_cores_with(core::VcpuCount extra_vcpus) const noexcept {
    return effective_level_.cores_for(committed_vcpus_ + extra_vcpus);
  }

  /// Capacity invariant: exposed vCPUs never exceed effective ratio * cores.
  [[nodiscard]] bool capacity_ok() const noexcept {
    return committed_vcpus_ <= effective_level_.vcpus_for(core_count());
  }

  /// Strictest level present among hosted VMs (== level() unless the node is
  /// pooled, see VNodeManager). Returns level() when empty.
  [[nodiscard]] core::OversubLevel strictest_hosted_level() const;

  /// Hosted VM ids, ascending. Maintained sorted on add/remove so hot-path
  /// consumers (repins_for re-pins after every resize) never re-sort.
  [[nodiscard]] const std::vector<core::VmId>& vm_ids() const noexcept {
    return sorted_ids_;
  }

  [[nodiscard]] const core::VmSpec& spec_of(core::VmId vm) const;

  // --- mutation (VNodeManager only in practice) ---
  void add_vm(core::VmId id, const core::VmSpec& spec);
  void remove_vm(core::VmId id);
  void assign_cpus(topo::CpuSet cpus);

 private:
  VNodeId id_;
  core::OversubLevel level_;            ///< contract (maximum) ratio
  core::OversubLevel effective_level_;  ///< current sizing ratio, <= contract
  topo::CpuSet cpus_;
  std::unordered_map<core::VmId, core::VmSpec> vms_;
  std::vector<core::VmId> sorted_ids_;  ///< keys of vms_, ascending
  core::VcpuCount committed_vcpus_ = 0;
  core::MemMib committed_mem_ = 0;
};

}  // namespace slackvm::local
