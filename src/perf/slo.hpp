// Service-Level Objectives over the QoS measurements.
//
// The paper's premise (§VII-A2): oversubscribed tiers are "less prone to
// enforcing performance guarantees with strict SLOs" while premium tiers
// must be preserved. This module turns the testbed's p90 series into SLO
// violation rates so that claim is quantified rather than eyeballed.
#pragma once

#include <map>
#include <span>

#include "perf/testbed.hpp"

namespace slackvm::perf {

/// A response-time objective for one tier.
struct Slo {
  double p90_target_ms = 0.0;  ///< each window's p90 must stay below this
};

/// Violation statistics of one (tier, scenario) measurement series.
struct SloSeries {
  std::size_t windows = 0;
  std::size_t violations = 0;

  [[nodiscard]] double violation_rate() const {
    return windows > 0 ? static_cast<double>(violations) / static_cast<double>(windows)
                       : 0.0;
  }
};

/// Per-level violation rates for both scenarios.
struct SloReport {
  std::map<std::uint8_t, SloSeries> baseline;  ///< keyed by level ratio
  std::map<std::uint8_t, SloSeries> slackvm;
};

/// Count violations of `series` against `slo`.
[[nodiscard]] SloSeries evaluate_series(std::span<const double> p90_ms, const Slo& slo);

/// Evaluate a full testbed result against per-level SLOs. Levels without a
/// configured SLO are skipped.
[[nodiscard]] SloReport evaluate(const TestbedResult& result,
                                 const std::map<std::uint8_t, Slo>& slos);

/// SLO defaults anchored on the paper's Table IV: each tier's target is its
/// baseline median times `headroom` (e.g. 2.0 = "no worse than twice the
/// dedicated-cluster median").
[[nodiscard]] std::map<std::uint8_t, Slo> paper_slos(double headroom = 2.0);

}  // namespace slackvm::perf
