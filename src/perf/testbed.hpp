// Reproduction of the paper's physical experiment (§VII-A, Fig 2, Table IV).
//
// Scenarios on the Table-III machine (2x EPYC 7662, 256 threads, 1 TB):
//  * Baseline: three dedicated PMs, each filled with VMs of one
//    oversubscription level, no pinning (the whole machine is the CPU set);
//  * SlackVM: one PM co-hosting all three levels in vNodes managed by the
//    real local scheduler (deployment cycles 1:1, 2:1, 3:1 until full).
//
// Interactive VMs play the DeathStarBench social-network role: every
// measurement window, each samples request response times from the
// contention model of its CPU set; the window's p90 is recorded. Fig 2
// plots the p90 distributions, Table IV their medians.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "local/vnode_manager.hpp"
#include "perf/contention.hpp"
#include "topology/builders.hpp"
#include "workload/catalog.hpp"

namespace slackvm::perf {

struct TestbedConfig {
  std::uint64_t seed = 42;
  core::SimTime duration = 2.0 * 3600;  ///< measurement campaign length
  core::SimTime window = 30.0;          ///< wrk2-style measurement window
  std::size_t requests_per_window = 24;
  double idle_share = 0.10;             ///< §VII-A1 usage mix
  double steady_share = 0.60;
  CalibrationParams calibration{};
  local::PoolingPolicy pooling = local::PoolingPolicy::kNone;
};

/// Per-level measurement series.
struct LevelSeries {
  std::size_t baseline_vms = 0;  ///< VMs the dedicated PM hosted
  std::size_t slackvm_vms = 0;   ///< VMs of this level on the shared PM
  std::vector<double> baseline_p90_ms;
  std::vector<double> slackvm_p90_ms;
  double baseline_median_ms = 0.0;
  double slackvm_median_ms = 0.0;

  /// SlackVM / baseline median ratio (Table IV's parenthesized factor).
  [[nodiscard]] double overhead_factor() const {
    return baseline_median_ms > 0 ? slackvm_median_ms / baseline_median_ms : 0.0;
  }
};

struct TestbedResult {
  std::map<std::uint8_t, LevelSeries> levels;  ///< keyed by level ratio
  std::size_t slackvm_total_vms = 0;
};

/// Run both scenarios; deterministic for a given config.
[[nodiscard]] TestbedResult run_testbed(const TestbedConfig& config = {});

/// Cache-zone fragmentation of a CPU set in [0, 1]: 0 when the set occupies
/// the fewest possible L3 zones, approaching 1 when it is maximally spread.
[[nodiscard]] double hetero_fraction(const topo::CpuTopology& topo,
                                     const topo::CpuSet& cpus);

}  // namespace slackvm::perf
