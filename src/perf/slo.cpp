#include "perf/slo.hpp"

#include "core/error.hpp"

namespace slackvm::perf {

SloSeries evaluate_series(std::span<const double> p90_ms, const Slo& slo) {
  SLACKVM_ASSERT(slo.p90_target_ms > 0.0);
  SloSeries series;
  series.windows = p90_ms.size();
  for (double p90 : p90_ms) {
    if (p90 > slo.p90_target_ms) {
      ++series.violations;
    }
  }
  return series;
}

SloReport evaluate(const TestbedResult& result, const std::map<std::uint8_t, Slo>& slos) {
  SloReport report;
  for (const auto& [ratio, series] : result.levels) {
    const auto slo = slos.find(ratio);
    if (slo == slos.end()) {
      continue;
    }
    report.baseline.emplace(ratio, evaluate_series(series.baseline_p90_ms, slo->second));
    report.slackvm.emplace(ratio, evaluate_series(series.slackvm_p90_ms, slo->second));
  }
  return report;
}

std::map<std::uint8_t, Slo> paper_slos(double headroom) {
  SLACKVM_ASSERT(headroom > 0.0);
  // Table IV baseline medians (ms).
  return {
      {1, Slo{1.16 * headroom}},
      {2, Slo{1.46 * headroom}},
      {3, Slo{3.47 * headroom}},
  };
}

}  // namespace slackvm::perf
