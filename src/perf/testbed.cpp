#include "perf/testbed.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <unordered_map>

#include "core/stats.hpp"
#include "workload/usage.hpp"

namespace slackvm::perf {

namespace {

/// A VM placed in one scenario with its usage signal.
struct PlacedVm {
  core::VmId id{};
  core::VmSpec spec{};
  workload::UsageSignal signal;
};

core::VmSpec sample_spec(const workload::Catalog& full, const workload::Catalog& capped,
                         core::OversubLevel level, const TestbedConfig& cfg,
                         core::SplitMix64& rng) {
  core::VmSpec spec;
  spec.level = level;
  const workload::Flavor& flavor =
      (level.oversubscribed() ? capped : full).sample(rng);
  spec.vcpus = flavor.vcpus;
  spec.mem_mib = flavor.mem_mib;
  const double u = rng.uniform();
  if (u < cfg.idle_share) {
    spec.usage = core::UsageClass::kIdle;
  } else if (u < cfg.idle_share + cfg.steady_share) {
    spec.usage = core::UsageClass::kSteady;
  } else {
    spec.usage = core::UsageClass::kInteractive;
  }
  return spec;
}

/// Runnable vCPU demand per core-equivalent of the set at time t. Capacity
/// is the set's fair silicon entitlement: each hardware thread is worth
/// 1/smt_width of a physical core (on a packed PM the sibling thread of a
/// fragmented vNode belongs to another, also-busy vNode, so a lone thread
/// cannot count as a full core).
double demand_per_core(const topo::CpuTopology& topo, const topo::CpuSet& cpus,
                       const std::vector<const PlacedVm*>& vms, core::SimTime t) {
  double demand = 0.0;
  for (const PlacedVm* vm : vms) {
    demand += static_cast<double>(vm->spec.vcpus) * vm->signal.at(t);
  }
  const double capacity =
      static_cast<double>(cpus.count()) / static_cast<double>(topo.smt_width());
  return capacity > 0 ? demand / capacity : 0.0;
}

}  // namespace

double hetero_fraction(const topo::CpuTopology& topo, const topo::CpuSet& cpus) {
  if (cpus.empty()) {
    return 0.0;
  }
  // Zone capacity (threads per L3 zone) of this machine.
  std::unordered_map<std::uint32_t, std::size_t> zone_threads;
  for (std::size_t cpu = 0; cpu < topo.cpu_count(); ++cpu) {
    ++zone_threads[topo.cpu(static_cast<topo::CpuId>(cpu)).l3];
  }
  std::size_t max_zone = 1;
  for (const auto& [zone, threads] : zone_threads) {
    max_zone = std::max(max_zone, threads);
  }

  std::set<std::uint32_t> spanned;
  for (topo::CpuId cpu : cpus) {
    spanned.insert(topo.cpu(cpu).l3);
  }
  const std::size_t needed = core::ceil_div(cpus.count(), max_zone);
  if (spanned.size() <= needed) {
    return 0.0;
  }
  const double excess = static_cast<double>(spanned.size() - needed);
  return std::min(1.0, excess / static_cast<double>(needed));
}

TestbedResult run_testbed(const TestbedConfig& config) {
  const topo::CpuTopology machine = topo::make_dual_epyc_7662();
  const workload::Catalog& full = workload::azure_catalog();
  const workload::Catalog capped = full.truncated(workload::kOversubMemCap);
  const ContentionModel model(config.calibration);

  TestbedResult result;
  core::SplitMix64 rng(config.seed);
  std::uint64_t next_id = 1;

  // ---- Baseline: one dedicated, unpinned PM per level -----------------
  // Each dedicated PM admits VMs while the level's vCPU budget
  // (ratio * threads) and the memory both hold.
  std::map<std::uint8_t, std::vector<PlacedVm>> baseline;
  for (std::uint8_t ratio : core::kPaperLevelRatios) {
    const core::OversubLevel level{ratio};
    core::SplitMix64 level_rng = rng.fork();
    std::vector<PlacedVm>& vms = baseline[ratio];
    core::VcpuCount vcpus = 0;
    core::MemMib mem = 0;
    const auto vcpu_budget = level.vcpus_for(machine.config().cores);
    while (true) {
      const core::VmSpec spec = sample_spec(full, capped, level, config, level_rng);
      if (vcpus + spec.vcpus > vcpu_budget || mem + spec.mem_mib > machine.total_mem()) {
        break;
      }
      vcpus += spec.vcpus;
      mem += spec.mem_mib;
      const core::VmId id{next_id++};
      vms.push_back(PlacedVm{id, spec, workload::UsageSignal(id, spec.usage)});
    }
    result.levels[ratio].baseline_vms = vms.size();
  }

  // ---- SlackVM: one PM, three vNodes via the real local scheduler -----
  local::VNodeManager manager(machine, config.pooling);
  std::vector<PlacedVm> shared;
  {
    core::SplitMix64 shared_rng = rng.fork();
    bool any_fit = true;
    std::size_t level_cursor = 0;
    std::array<bool, 3> level_open{true, true, true};
    while (any_fit) {
      const std::uint8_t ratio = core::kPaperLevelRatios[level_cursor % 3];
      ++level_cursor;
      if (!level_open[(ratio - 1)]) {
        any_fit = level_open[0] || level_open[1] || level_open[2];
        continue;
      }
      const core::VmSpec spec =
          sample_spec(full, capped, core::OversubLevel{ratio}, config, shared_rng);
      const core::VmId id{next_id++};
      if (manager.deploy(id, spec).has_value()) {
        shared.push_back(PlacedVm{id, spec, workload::UsageSignal(id, spec.usage)});
        ++result.levels[ratio].slackvm_vms;
      } else {
        level_open[(ratio - 1)] = false;
        any_fit = level_open[0] || level_open[1] || level_open[2];
      }
    }
  }
  result.slackvm_total_vms = shared.size();

  // ---- Measurement campaign -------------------------------------------
  const topo::CpuSet whole_machine = machine.all_cpus();
  core::SplitMix64 noise_rng = rng.fork();

  auto measure = [&](const topo::CpuSet& cpus, const std::vector<const PlacedVm*>& cohort,
                     const PlacedVm& vm, bool constrained,
                     std::vector<double>& out_p90) {
    const double hetero = constrained ? hetero_fraction(machine, cpus) : 0.0;
    for (core::SimTime t = config.window / 2; t < config.duration; t += config.window) {
      const double q = demand_per_core(machine, cpus, cohort, t);
      std::vector<double> responses;
      responses.reserve(config.requests_per_window);
      for (std::size_t r = 0; r < config.requests_per_window; ++r) {
        responses.push_back(model.sample_response_ms(q, hetero, constrained, noise_rng));
      }
      out_p90.push_back(core::percentile(responses, 90.0) *
                        model.p90_calibration_scale());
    }
    (void)vm;
  };

  // Baseline: cohort = every VM of the dedicated PM, set = whole machine.
  for (auto& [ratio, vms] : baseline) {
    std::vector<const PlacedVm*> cohort;
    cohort.reserve(vms.size());
    for (const PlacedVm& vm : vms) {
      cohort.push_back(&vm);
    }
    LevelSeries& series = result.levels[ratio];
    for (const PlacedVm& vm : vms) {
      if (vm.spec.usage == core::UsageClass::kInteractive) {
        measure(whole_machine, cohort, vm, /*constrained=*/false, series.baseline_p90_ms);
      }
    }
  }

  // SlackVM: cohort = the VMs sharing the vNode, set = the vNode's CPUs.
  for (const auto& [vnode_id, node] : manager.vnodes()) {
    std::vector<const PlacedVm*> cohort;
    for (const PlacedVm& vm : shared) {
      if (node.hosts(vm.id)) {
        cohort.push_back(&vm);
      }
    }
    LevelSeries& series = result.levels[node.level().ratio()];
    for (const PlacedVm* vm : cohort) {
      if (vm->spec.usage == core::UsageClass::kInteractive) {
        measure(node.cpus(), cohort, *vm, /*constrained=*/true, series.slackvm_p90_ms);
      }
    }
  }

  for (auto& [ratio, series] : result.levels) {
    if (!series.baseline_p90_ms.empty()) {
      series.baseline_median_ms = core::median(series.baseline_p90_ms);
    }
    if (!series.slackvm_p90_ms.empty()) {
      series.slackvm_median_ms = core::median(series.slackvm_p90_ms);
    }
  }
  return result;
}

}  // namespace slackvm::perf
