// QoS model: response-time inflation under CPU contention.
//
// Substitute for the paper's physical testbed (DeathStarBench social network
// + wrk2 on a dual EPYC 7662). The model reproduces the mechanisms the paper
// reports (§VII-A2):
//  * fair time-slice sharing (EEVDF): response time grows with the runnable
//    vCPU demand per physical core, q, and degrades sharply as q approaches
//    the saturation knee;
//  * constrained core sets (SlackVM vNodes) engage SMT earlier than a free
//    whole-machine scheduler, adding a penalty that grows steeply with the
//    oversubscription pressure beyond one runnable thread per core;
//  * dynamically resized vNodes span heterogeneous cache zones, adding a
//    small constant overhead.
//
// The contention curve parameters are calibrated once against Table IV's
// *baseline* column (medians 1.16 / 1.46 / 3.47 ms at 1:1 / 2:1 / 3:1); the
// SlackVM column is then produced by the model, not fitted per scenario.
#pragma once

#include "core/rng.hpp"

namespace slackvm::perf {

/// Model parameters. Defaults are the Table-IV calibration (see DESIGN.md).
struct CalibrationParams {
  // Baseline contention curve R(q) = base_service_ms * (1 + linear*q)
  //                                   / (1 - (q/q_max)^knee_power).
  double base_service_ms = 1.0941;
  double linear = 0.03;
  double q_max = 3.5441;
  double knee_power = 2.8756;

  // Constrained-set (vNode) penalty:
  //   1 + pinning_coeff + hetero_coeff*hetero_frac
  //     + smt_coeff*max(0, q-1)^smt_power.
  // pinning_coeff is the flat cost of restricting the OS scheduler to a
  // core subset; the smt term models SMT engaging earlier on constrained
  // sets; the hetero term charges cache-zone fragmentation of resized
  // vNodes. Calibrated at the testbed's realized vNode operating points
  // (q, hetero) = (0.94, 0.4) / (2.10, 1.0) / (3.00, 1.0) against Table
  // IV's overhead factors x1.09 / x1.13 / x2.21 (the 3:1 factor also
  // includes the density mismatch between the memory-capped dedicated PM
  // and the fully dense vNode; see perf_contention_test.cpp).
  double pinning_coeff = 0.08;
  double smt_coeff = 0.0155;
  double smt_power = 5.03;
  double hetero_coeff = 0.025;

  // Lognormal request noise (sigma); the p90 shift it induces is
  // compensated so medians stay on the calibrated curve.
  double noise_sigma = 0.25;
};

class ContentionModel {
 public:
  explicit ContentionModel(CalibrationParams params = {});

  [[nodiscard]] const CalibrationParams& params() const noexcept { return params_; }

  /// Fair-share contention inflation at per-core runnable demand q (>= 0).
  /// Saturates smoothly near q_max instead of diverging.
  [[nodiscard]] double contention_inflation(double q) const;

  /// Extra multiplicative penalty for a constrained (pinned vNode) set.
  /// `hetero_frac` in [0, 1] measures cache-zone fragmentation of the set.
  [[nodiscard]] double constrained_penalty(double q, double hetero_frac) const;

  /// Deterministic expected response time in ms.
  [[nodiscard]] double expected_response_ms(double q, double hetero_frac,
                                            bool constrained) const;

  /// One noisy request sample (lognormal multiplicative noise, median equal
  /// to the deterministic response).
  [[nodiscard]] double sample_response_ms(double q, double hetero_frac, bool constrained,
                                          core::SplitMix64& rng) const;

  /// The calibration constants are expressed in p90-of-window units (Table
  /// IV reports medians of windowed p90s). A window p90 over lognormal
  /// request noise sits exp(z90 * sigma) above the median, so measured
  /// window p90s are multiplied by this factor to land back on the
  /// calibrated curve.
  [[nodiscard]] double p90_calibration_scale() const;

 private:
  CalibrationParams params_;
};

}  // namespace slackvm::perf
