#include "perf/contention.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace slackvm::perf {

ContentionModel::ContentionModel(CalibrationParams params) : params_(params) {
  SLACKVM_ASSERT(params_.base_service_ms > 0);
  SLACKVM_ASSERT(params_.q_max > 0 && params_.knee_power > 0);
}

double ContentionModel::contention_inflation(double q) const {
  SLACKVM_ASSERT(q >= 0);
  // Clamp below the knee so the curve saturates instead of diverging: real
  // schedulers throttle rather than queue unboundedly.
  const double x = std::min(q / params_.q_max, 0.97);
  return (1.0 + params_.linear * q) / (1.0 - std::pow(x, params_.knee_power));
}

double ContentionModel::constrained_penalty(double q, double hetero_frac) const {
  SLACKVM_ASSERT(hetero_frac >= 0.0 && hetero_frac <= 1.0);
  const double smt_pressure = std::max(0.0, q - 1.0);
  return 1.0 + params_.pinning_coeff + params_.hetero_coeff * hetero_frac +
         params_.smt_coeff * std::pow(smt_pressure, params_.smt_power);
}

double ContentionModel::expected_response_ms(double q, double hetero_frac,
                                             bool constrained) const {
  double response = params_.base_service_ms * contention_inflation(q);
  if (constrained) {
    response *= constrained_penalty(q, hetero_frac);
  }
  return response;
}

double ContentionModel::p90_calibration_scale() const {
  constexpr double kZ90 = 1.2815515655446004;  // standard normal 90th quantile
  return std::exp(-kZ90 * params_.noise_sigma);
}

double ContentionModel::sample_response_ms(double q, double hetero_frac, bool constrained,
                                           core::SplitMix64& rng) const {
  const double expected = expected_response_ms(q, hetero_frac, constrained);
  // Box-Muller; the lognormal's median equals `expected`.
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return expected * std::exp(params_.noise_sigma * z);
}

}  // namespace slackvm::perf
