#include "sched/host_arena.hpp"

#include <sstream>

#include "core/error.hpp"

namespace slackvm::sched {

void HostArena::copy_row(const HostState& host) {
  const HostId id = host.id();
  epoch_[id] = host.epoch();
  phase_[id] = static_cast<std::uint8_t>(host.phase());
  alloc_cores_[id] = host.alloc().cores;
  committed_mem_[id] = host.alloc().mem_mib;
  mem_capacity_[id] = host.mem_capacity();
  config_cores_[id] = host.config().cores;
  config_mem_[id] = host.config().mem_mib;
  vm_count_[id] = static_cast<std::uint32_t>(host.vm_count());
  heat_[id] = host.heat();
  heat_bucket_[id] = host.heat_bucket();
  heat_bucket_width_[id] = host.heat_bucket_width();
  core::VcpuCount* levels = &vcpus_per_level_[std::size_t{id} * kLevels];
  levels[0] = 0;
  for (std::uint8_t ratio = 1; ratio <= core::OversubLevel::kMaxRatio; ++ratio) {
    levels[ratio] = host.committed_vcpus(core::OversubLevel{ratio});
  }
}

void HostArena::push_host(const HostState& host) {
  SLACKVM_ASSERT(host.id() == size());
  epoch_.emplace_back();
  phase_.emplace_back();
  alloc_cores_.emplace_back();
  committed_mem_.emplace_back();
  mem_capacity_.emplace_back();
  config_cores_.emplace_back();
  config_mem_.emplace_back();
  vm_count_.emplace_back();
  heat_.emplace_back();
  heat_bucket_.emplace_back();
  heat_bucket_width_.emplace_back();
  vcpus_per_level_.resize(vcpus_per_level_.size() + kLevels);
  copy_row(host);
  total_alloc_ += host.alloc();
  total_config_ += host.config();
  if (!host.empty()) {
    ++nonempty_;
  }
}

void HostArena::pop_host() {
  SLACKVM_ASSERT(!epoch_.empty());
  const std::size_t id = size() - 1;
  // Only empty openings are ever rolled back.
  SLACKVM_ASSERT(vm_count_[id] == 0);
  total_alloc_ -= core::Resources{alloc_cores_[id], committed_mem_[id]};
  total_config_ -= core::Resources{config_cores_[id], config_mem_[id]};
  epoch_.pop_back();
  phase_.pop_back();
  alloc_cores_.pop_back();
  committed_mem_.pop_back();
  mem_capacity_.pop_back();
  config_cores_.pop_back();
  config_mem_.pop_back();
  vm_count_.pop_back();
  heat_.pop_back();
  heat_bucket_.pop_back();
  heat_bucket_width_.pop_back();
  vcpus_per_level_.resize(vcpus_per_level_.size() - kLevels);
}

void HostArena::refresh(const HostState& host) {
  const HostId id = host.id();
  SLACKVM_ASSERT(id < size());
  total_alloc_.cores += host.alloc().cores - alloc_cores_[id];
  total_alloc_.mem_mib += host.alloc().mem_mib - committed_mem_[id];
  total_config_.cores += host.config().cores - config_cores_[id];
  total_config_.mem_mib += host.config().mem_mib - config_mem_[id];
  const bool was_empty = vm_count_[id] == 0;
  const bool is_empty = host.empty();
  if (was_empty && !is_empty) {
    ++nonempty_;
  } else if (!was_empty && is_empty) {
    --nonempty_;
  }
  copy_row(host);
}

void HostArena::reserve(std::size_t hosts) {
  epoch_.reserve(hosts);
  phase_.reserve(hosts);
  alloc_cores_.reserve(hosts);
  committed_mem_.reserve(hosts);
  mem_capacity_.reserve(hosts);
  config_cores_.reserve(hosts);
  config_mem_.reserve(hosts);
  vm_count_.reserve(hosts);
  heat_.reserve(hosts);
  heat_bucket_.reserve(hosts);
  heat_bucket_width_.reserve(hosts);
  vcpus_per_level_.reserve(hosts * kLevels);
}

bool HostArena::can_host(HostId host, const core::VmSpec& spec) const noexcept {
  if (static_cast<HostPhase>(phase_[host]) != HostPhase::kUp) {
    return false;
  }
  if (committed_mem_[host] + spec.mem_mib > mem_capacity_[host]) {
    return false;
  }
  // Incremental integer-core rule, identical to HostState::cores_with: only
  // the VM's own level changes its vNode's ceil-rounded core count.
  const std::uint8_t ratio = spec.level.ratio();
  const core::VcpuCount committed =
      vcpus_per_level_[std::size_t{host} * kLevels + ratio];
  const core::CoreCount cores =
      alloc_cores_[host] - core::ceil_div<core::CoreCount>(committed, ratio) +
      core::ceil_div<core::CoreCount>(committed + spec.vcpus, ratio);
  return cores <= config_cores_[host];
}

std::vector<std::string> HostArena::check(std::span<const HostState> hosts) const {
  std::vector<std::string> out;
  const auto fail = [&out](HostId id, const std::string& message) {
    std::ostringstream os;
    os << "arena host " << id << ": " << message;
    out.push_back(os.str());
  };
  if (hosts.size() != size()) {
    out.push_back("arena mirrors " + std::to_string(size()) + " hosts but cluster has " +
                  std::to_string(hosts.size()));
    return out;
  }
  core::Resources alloc;
  core::Resources config;
  std::size_t nonempty = 0;
  for (const HostState& host : hosts) {
    const HostId id = host.id();
    if (epoch_[id] != host.epoch()) {
      fail(id, "epoch " + std::to_string(epoch_[id]) + " != " +
                   std::to_string(host.epoch()));
    }
    if (static_cast<HostPhase>(phase_[id]) != host.phase()) {
      fail(id, std::string("phase ") + to_string(static_cast<HostPhase>(phase_[id])) +
                   " != " + to_string(host.phase()));
    }
    if (alloc_cores_[id] != host.alloc().cores ||
        committed_mem_[id] != host.alloc().mem_mib) {
      fail(id, "alloc mirror drift");
    }
    if (mem_capacity_[id] != host.mem_capacity()) {
      fail(id, "mem_capacity mirror drift");
    }
    if (config_cores_[id] != host.config().cores ||
        config_mem_[id] != host.config().mem_mib) {
      fail(id, "config mirror drift");
    }
    if (vm_count_[id] != host.vm_count()) {
      fail(id, "vm_count " + std::to_string(vm_count_[id]) + " != " +
                   std::to_string(host.vm_count()));
    }
    // Exact comparison on purpose: the column is copied verbatim, so any
    // difference at all is mirror drift, not floating-point noise.
    if (heat_[id] != host.heat()) {
      fail(id, "heat " + std::to_string(heat_[id]) + " != " +
                   std::to_string(host.heat()));
    }
    if (heat_bucket_[id] != host.heat_bucket()) {
      fail(id, "heat bucket " + std::to_string(heat_bucket_[id]) + " != " +
                   std::to_string(host.heat_bucket()));
    }
    if (heat_bucket_width_[id] != host.heat_bucket_width()) {
      fail(id, "heat bucket width " + std::to_string(heat_bucket_width_[id]) +
                   " != " + std::to_string(host.heat_bucket_width()));
    }
    for (std::uint8_t ratio = 1; ratio <= core::OversubLevel::kMaxRatio; ++ratio) {
      const core::VcpuCount mirrored =
          vcpus_per_level_[std::size_t{id} * kLevels + ratio];
      if (mirrored != host.committed_vcpus(core::OversubLevel{ratio})) {
        fail(id, "level " + std::to_string(ratio) + " vCPU mirror drift");
      }
    }
    alloc += host.alloc();
    config += host.config();
    if (!host.empty()) {
      ++nonempty;
    }
  }
  if (alloc != total_alloc_) {
    out.push_back("arena total_alloc drift");
  }
  if (config != total_config_) {
    out.push_back("arena total_config drift");
  }
  if (nonempty != nonempty_) {
    out.push_back("arena nonempty count " + std::to_string(nonempty_) + " != " +
                  std::to_string(nonempty));
  }
  return out;
}

}  // namespace slackvm::sched
