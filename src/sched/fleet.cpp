#include "sched/fleet.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace slackvm::sched {

FleetSpec::FleetSpec(std::vector<core::Resources> cycle) : cycle_(std::move(cycle)) {
  SLACKVM_ASSERT(!cycle_.empty());
  for (const core::Resources& config : cycle_) {
    SLACKVM_ASSERT(config.cores > 0 && config.mem_mib > 0);
  }
}

FleetSpec FleetSpec::uniform(core::Resources config) {
  return FleetSpec(std::vector<core::Resources>{config});
}

const core::Resources& FleetSpec::config_for(HostId id) const {
  return cycle_[id % cycle_.size()];
}

core::Resources FleetSpec::max_config() const {
  core::Resources best = cycle_.front();
  for (const core::Resources& config : cycle_) {
    best.cores = std::max(best.cores, config.cores);
    best.mem_mib = std::max(best.mem_mib, config.mem_mib);
  }
  return best;
}

std::string FleetSpec::to_string() const {
  std::ostringstream os;
  os << "fleet[";
  for (std::size_t i = 0; i < cycle_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << cycle_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace slackvm::sched
