// Hard-constraint filters (paper §II-B): production schedulers first filter
// candidate hosts on hard constraints, then score the survivors. The
// built-in capacity check is always applied by the policies; these filters
// express *additional* operator constraints and compose into a chain.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/host_state.hpp"

namespace slackvm::sched {

/// A hard constraint on (host, vm) pairs. Stateless and reusable.
class Filter {
 public:
  virtual ~Filter() = default;
  [[nodiscard]] virtual bool admits(const HostState& host,
                                    const core::VmSpec& spec) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Caps the number of VMs per host (blast-radius limit).
class MaxVmsFilter final : public Filter {
 public:
  explicit MaxVmsFilter(std::size_t max_vms);
  [[nodiscard]] bool admits(const HostState& host,
                            const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t max_vms_;
};

/// Restricts each host to a single oversubscription level — expressing the
/// traditional dedicated-cluster constraint *inside* a shared pool (useful
/// as an ablation: shared scheduling minus level co-hosting).
class LevelExclusiveFilter final : public Filter {
 public:
  [[nodiscard]] bool admits(const HostState& host,
                            const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override { return "level-exclusive"; }
};

/// Keeps a CPU (or memory) headroom fraction free on every host.
class HeadroomFilter final : public Filter {
 public:
  /// Fractions in [0, 1): e.g. 0.1 keeps 10% of cores and memory free.
  HeadroomFilter(double cpu_headroom, double mem_headroom);
  [[nodiscard]] bool admits(const HostState& host,
                            const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double cpu_headroom_;
  double mem_headroom_;
};

/// Conjunction of filters; an empty chain admits everything.
class FilterChain final : public Filter {
 public:
  FilterChain() = default;

  FilterChain& add(std::unique_ptr<Filter> filter);

  [[nodiscard]] bool admits(const HostState& host,
                            const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t size() const noexcept { return filters_.size(); }

 private:
  std::vector<std::unique_ptr<Filter>> filters_;
};

}  // namespace slackvm::sched
