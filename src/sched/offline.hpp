// Offline vector bin packing (paper §II-B): VM scheduling is a vector
// bin-packing problem; classical decreasing heuristics and a capacity lower
// bound let the evaluation report how far the *online* policies are from
// optimal on a workload snapshot.
#pragma once

#include <span>
#include <vector>

#include "core/resources.hpp"
#include "core/vm.hpp"
#include "sched/host_state.hpp"

namespace slackvm::sched {

/// Size measure used to order VMs in decreasing heuristics.
enum class SizeMeasure : std::uint8_t {
  kCores,          ///< physical cores at the VM's level
  kMemory,         ///< memory footprint
  kMaxNormalized,  ///< max of (cores/host cores, mem/host mem) — the classic
                   ///< vector-bin-packing choice
  kSumNormalized,  ///< sum of the normalized dimensions
};

/// LP-style lower bound on the PMs needed for `vms` on identical `host`
/// PMs: each dimension's aggregate demand divided by the per-PM capacity,
/// with vCPUs translated to *fractional* cores (vcpus / ratio) — more
/// optimistic than any feasible integer-core packing, hence a true bound.
[[nodiscard]] std::size_t lower_bound_pms(std::span<const core::VmSpec> vms,
                                          const core::Resources& host);

/// First-Fit-Decreasing onto identical `host` PMs; returns PMs used.
[[nodiscard]] std::size_t pack_ffd(std::span<const core::VmSpec> vms,
                                   const core::Resources& host,
                                   SizeMeasure measure = SizeMeasure::kMaxNormalized);

/// Best-Fit-Decreasing (fullest feasible PM wins) onto identical PMs.
[[nodiscard]] std::size_t pack_bfd(std::span<const core::VmSpec> vms,
                                   const core::Resources& host,
                                   SizeMeasure measure = SizeMeasure::kMaxNormalized);

/// The ordering key behind the decreasing heuristics (exposed for tests).
[[nodiscard]] double size_key(const core::VmSpec& vm, const core::Resources& host,
                              SizeMeasure measure);

}  // namespace slackvm::sched
