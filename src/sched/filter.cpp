#include "sched/filter.hpp"

#include "core/error.hpp"

namespace slackvm::sched {

MaxVmsFilter::MaxVmsFilter(std::size_t max_vms) : max_vms_(max_vms) {
  SLACKVM_ASSERT(max_vms >= 1);
}

bool MaxVmsFilter::admits(const HostState& host, const core::VmSpec& spec) const {
  (void)spec;
  return host.vm_count() < max_vms_;
}

std::string MaxVmsFilter::name() const {
  return "max-vms(" + std::to_string(max_vms_) + ")";
}

bool LevelExclusiveFilter::admits(const HostState& host,
                                  const core::VmSpec& spec) const {
  const auto commitments = host.level_commitments();
  if (commitments.empty()) {
    return true;
  }
  return commitments.size() == 1 && commitments.begin()->first == spec.level;
}

HeadroomFilter::HeadroomFilter(double cpu_headroom, double mem_headroom)
    : cpu_headroom_(cpu_headroom), mem_headroom_(mem_headroom) {
  SLACKVM_ASSERT(cpu_headroom >= 0.0 && cpu_headroom < 1.0);
  SLACKVM_ASSERT(mem_headroom >= 0.0 && mem_headroom < 1.0);
}

bool HeadroomFilter::admits(const HostState& host, const core::VmSpec& spec) const {
  const auto cpu_cap = static_cast<double>(host.config().cores) * (1.0 - cpu_headroom_);
  const auto mem_cap = static_cast<double>(host.config().mem_mib) * (1.0 - mem_headroom_);
  return static_cast<double>(host.cores_with(spec)) <= cpu_cap &&
         static_cast<double>(host.alloc().mem_mib + spec.mem_mib) <= mem_cap;
}

std::string HeadroomFilter::name() const {
  return "headroom(cpu=" + std::to_string(cpu_headroom_) +
         ",mem=" + std::to_string(mem_headroom_) + ")";
}

FilterChain& FilterChain::add(std::unique_ptr<Filter> filter) {
  SLACKVM_ASSERT(filter != nullptr);
  filters_.push_back(std::move(filter));
  return *this;
}

bool FilterChain::admits(const HostState& host, const core::VmSpec& spec) const {
  for (const auto& filter : filters_) {
    if (!filter->admits(host, spec)) {
      return false;
    }
  }
  return true;
}

std::string FilterChain::name() const {
  std::string out = "chain(";
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (i > 0) {
      out += '+';
    }
    out += filters_[i]->name();
  }
  out += ')';
  return out;
}

}  // namespace slackvm::sched
