// Quantized-heat bucket index: O(1) hottest/coolest candidate streams for
// the polluter pass.
//
// Rebalancer::plan_interference needs, per eviction, the hottest untried UP
// host and the coolest strictly-cooler host that fits the victim. The naive
// pass answers both with O(hosts) scans of a fleet copy. This index keeps
// every host filed under its quantized heat bucket (HostState::heat_bucket)
// in an ordered map of ordered id sets, so the planner streams buckets from
// either end and stops at the first bucket that yields an eligible host —
// raw heats within a bucket span [b*w, (b+1)*w), so no host in a farther
// bucket can beat a candidate found in a nearer one, and equal heats always
// share a bucket (ties stay id-ordered).
//
// Maintenance rides the exact epoch + dirty-log protocol of
// sched/placement_index.hpp:
//
//  1. every epoch bump of a host is reported through touch() — an O(1)
//     append to a dirty log (VCluster funnels add/remove/phase/heat here,
//     and set_heat bumps the epoch precisely on bucket crossings);
//  2. sync() replays the log tail: a host whose cached epoch still matches
//     is untouched (its bucket cannot have moved), otherwise it is refiled;
//  3. dirty ids >= hosts.size() are rolled-back openings and are dropped,
//     exactly like PlacementIndex::sync.
//
// The index is owned by VCluster behind the same --index escape hatch as
// the placement index: disabling it restores the verbatim naive
// plan_interference scan, which is what keeps the incremental path
// differentially tested by the index {on,off} acceptance matrix.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "sched/host_state.hpp"

namespace slackvm::sched {

class HeatIndex {
 public:
  using Bucket = std::uint32_t;

  /// Record a host epoch bump: O(1) append to the dirty log consumed by the
  /// next sync(). Every epoch bump must be reported, including no-op
  /// round-trips.
  void touch(HostId host);

  /// Replay the dirty log: refile hosts whose quantized bucket crossed since
  /// their last sync, drop rolled-back openings (ids >= hosts.size()).
  /// Amortized O(dirty).
  void sync(std::span<const HostState> hosts);

  /// Seed (or re-seed) from live state, discarding everything cached.
  void rebuild(std::span<const HostState> hosts);

  /// Bucket -> ascending host ids; exact after sync(). Ascending map order
  /// == coolest first; reverse iteration == hottest first.
  [[nodiscard]] const std::map<Bucket, std::set<HostId>>& buckets() const noexcept {
    return buckets_;
  }

  /// Hosts currently filed.
  [[nodiscard]] std::size_t size() const noexcept { return indexed_; }

  /// Unconsumed dirty-log entries (VCluster bounds this between passes).
  [[nodiscard]] std::size_t dirty_size() const noexcept { return dirty_.size(); }

  /// True while every filed host has been quantized with one common bucket
  /// width (hosts never heated — width 0, heat 0, bucket 0 — are trivially
  /// consistent with any width). Cross-bucket heat comparisons are only
  /// sound then: bucket b spans raw heats [b*w, (b+1)*w) and equal heats
  /// share a bucket. Planners must fall back to the naive scan when false.
  /// Sticky once tripped (conservative: correctness over speed). Detection
  /// rides the epoch protocol, so it covers exactly the writes the index
  /// hears about; the supported contract is the one the heat feeder
  /// implements — a single bucket width per cluster run.
  [[nodiscard]] bool uniform_width() const noexcept { return !mixed_width_; }

  /// Audit against the authoritative rows (call after sync): every host
  /// filed exactly once under its current bucket. One line per divergence.
  [[nodiscard]] std::vector<std::string> check(
      std::span<const HostState> hosts) const;

 private:
  /// Valid while hosts[host].epoch() == epoch (the set_heat contract: the
  /// bucket cannot move without an epoch bump).
  struct Cached {
    std::uint64_t epoch = 0;
    Bucket bucket = 0;
    bool present = false;
  };

  void update(const HostState& host);
  void erase(HostId host);

  std::vector<Cached> cached_;
  std::map<Bucket, std::set<HostId>> buckets_;
  std::vector<HostId> dirty_;
  std::size_t indexed_ = 0;
  double width_ = 0.0;  ///< first positive bucket width seen
  bool mixed_width_ = false;
};

}  // namespace slackvm::sched
