#include "sched/heat_index.hpp"

namespace slackvm::sched {

void HeatIndex::touch(HostId host) { dirty_.push_back(host); }

void HeatIndex::sync(std::span<const HostState> hosts) {
  for (const HostId id : dirty_) {
    if (id >= hosts.size()) {
      // Rolled-back opening: the touch outlived the host.
      erase(id);
      continue;
    }
    update(hosts[id]);
  }
  dirty_.clear();
}

void HeatIndex::rebuild(std::span<const HostState> hosts) {
  cached_.clear();
  buckets_.clear();
  dirty_.clear();
  indexed_ = 0;
  width_ = 0.0;
  mixed_width_ = false;
  for (const HostState& host : hosts) {
    update(host);
  }
}

void HeatIndex::update(const HostState& host) {
  const double width = host.heat_bucket_width();
  if (width > 0.0) {
    if (width_ == 0.0) {
      width_ = width;
    } else if (width_ != width) {
      mixed_width_ = true;
    }
  } else if (host.heat() != 0.0) {
    // Heat written with quantization disabled: the bucket (pinned at 0) no
    // longer bounds the raw value.
    mixed_width_ = true;
  }
  const HostId id = host.id();
  if (id >= cached_.size()) {
    cached_.resize(std::size_t{id} + 1);
  }
  Cached& cached = cached_[id];
  if (cached.present && cached.epoch == host.epoch()) {
    return;  // the bucket cannot have moved without an epoch bump
  }
  const Bucket bucket = host.heat_bucket();
  if (cached.present && cached.bucket == bucket) {
    cached.epoch = host.epoch();  // epoch moved, bucket did not: refile-free
    return;
  }
  if (cached.present) {
    const auto it = buckets_.find(cached.bucket);
    it->second.erase(id);
    if (it->second.empty()) {
      buckets_.erase(it);
    }
  } else {
    ++indexed_;
  }
  buckets_[bucket].insert(id);
  cached = Cached{host.epoch(), bucket, true};
}

void HeatIndex::erase(HostId host) {
  if (host >= cached_.size() || !cached_[host].present) {
    return;
  }
  const auto it = buckets_.find(cached_[host].bucket);
  it->second.erase(host);
  if (it->second.empty()) {
    buckets_.erase(it);
  }
  cached_[host].present = false;
  --indexed_;
}

std::vector<std::string> HeatIndex::check(std::span<const HostState> hosts) const {
  std::vector<std::string> out;
  if (indexed_ != hosts.size()) {
    out.push_back("heat index files " + std::to_string(indexed_) +
                  " hosts but cluster has " + std::to_string(hosts.size()));
  }
  std::size_t filed = 0;
  for (const auto& [bucket, ids] : buckets_) {
    filed += ids.size();
    for (const HostId id : ids) {
      if (id >= hosts.size()) {
        out.push_back("heat index bucket " + std::to_string(bucket) +
                      " files unknown host " + std::to_string(id));
        continue;
      }
      if (hosts[id].heat_bucket() != bucket) {
        out.push_back("heat index host " + std::to_string(id) + ": bucket " +
                      std::to_string(bucket) + " != " +
                      std::to_string(hosts[id].heat_bucket()));
      }
    }
  }
  if (filed != indexed_) {
    out.push_back("heat index size " + std::to_string(indexed_) +
                  " != filed entries " + std::to_string(filed));
  }
  return out;
}

}  // namespace slackvm::sched
