// Host scoring for score-based global schedulers (paper §II-B, §VI).
//
// Production control planes (OpenStack, Protean, Borg) filter hosts on hard
// constraints and rank survivors with weighted soft-constraint scores.
// SlackVM's contribution is ProgressScorer — Algorithm 2 — which rewards
// placements that move a host's allocated M/C ratio toward its hardware
// target ratio. The other scorers are classical packing heuristics used as
// baselines and for weighted composition.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/mc_ratio.hpp"
#include "sched/host_state.hpp"

namespace slackvm::sched {

/// Columnar projection of one host: exactly the fields the in-tree scorers
/// read, laid out as plain values so planners working on HostArena-style
/// columns (Rebalancer::PlanScratch) can score candidates without
/// materializing a HostState. Every field must be copied verbatim from the
/// row it mirrors; then score(HostCols) is bit-identical to score(HostState).
struct HostCols {
  core::CoreCount config_cores = 0;
  core::MemMib config_mem = 0;
  core::CoreCount alloc_cores = 0;
  core::MemMib committed_mem = 0;
  /// HostState::quantized_heat() — bucket * width, never the raw EWMA.
  double quantized_heat = 0.0;
  /// Per-ratio vCPU commitments (OversubLevel::kMaxRatio + 1 entries,
  /// index 0 unused), same layout as one HostArena row.
  const core::VcpuCount* vcpus_per_level = nullptr;

  /// HostState::cores_with computed from the columns: only the spec's own
  /// vNode changes, same incremental integer-core rule.
  [[nodiscard]] core::CoreCount cores_with(const core::VmSpec& spec) const noexcept {
    const std::uint8_t ratio = spec.level.ratio();
    const core::VcpuCount vcpus = vcpus_per_level[ratio];
    return alloc_cores - core::ceil_div<core::CoreCount>(vcpus, ratio) +
           core::ceil_div<core::CoreCount>(vcpus + spec.vcpus, ratio);
  }
};

/// Interface of a soft-constraint scorer; higher is better. Implementations
/// may assume the host already passed the capacity filter.
class Scorer {
 public:
  virtual ~Scorer() = default;
  [[nodiscard]] virtual double score(const HostState& host,
                                     const core::VmSpec& spec) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when the columnar overload below is implemented and returns the
  /// bit-identical double score(HostState) would for the host the columns
  /// mirror. Planners fall back to the naive HostState path otherwise
  /// (the same discipline as the PlacementIndex bypass).
  [[nodiscard]] virtual bool supports_cols() const noexcept { return false; }

  /// Columnar twin of score(); only callable when supports_cols().
  [[nodiscard]] virtual double score(const HostCols& host,
                                     const core::VmSpec& spec) const;
};

/// Paper Algorithm 2. The candidate VM footprint is host-aware: the cores
/// input is the *incremental* physical-core demand on this host (integer
/// vNode rounding means a VM may be absorbed by slack in its level's vNode).
class ProgressScorer final : public Scorer {
 public:
  [[nodiscard]] double score(const HostState& host,
                             const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override { return "progress-to-target-ratio"; }

  [[nodiscard]] bool supports_cols() const noexcept override { return true; }
  [[nodiscard]] double score(const HostCols& host,
                             const core::VmSpec& spec) const override;
};

/// Classical best-fit: prefer the host with the least normalized residual
/// capacity after placement (sum of the core and memory residual fractions).
class BestFitScorer final : public Scorer {
 public:
  [[nodiscard]] double score(const HostState& host,
                             const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override { return "best-fit"; }

  [[nodiscard]] bool supports_cols() const noexcept override { return true; }
  [[nodiscard]] double score(const HostCols& host,
                             const core::VmSpec& spec) const override;
};

/// Classical worst-fit: prefer the emptiest host (load spreading).
class WorstFitScorer final : public Scorer {
 public:
  [[nodiscard]] double score(const HostState& host,
                             const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override { return "worst-fit"; }

  [[nodiscard]] bool supports_cols() const noexcept override { return true; }
  [[nodiscard]] double score(const HostCols& host,
                             const core::VmSpec& spec) const override;

 private:
  BestFitScorer best_;  ///< negated per call; held, not rebuilt per score
};

/// Interference-aware scorer: Algorithm 2's progress score minus a penalty
/// proportional to the host's *quantized* heat (HostState::quantized_heat).
/// Reading the quantized value — never the raw EWMA — is what keeps this
/// scorer inside the PlacementIndex lazy-deletion protocol: the score of a
/// host can only change when its epoch does (heat-bucket crossings bump it),
/// so cached heap entries stay exact within a bucket.
class InterferenceScorer final : public Scorer {
 public:
  explicit InterferenceScorer(double heat_weight = 1.0);

  [[nodiscard]] double score(const HostState& host,
                             const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] bool supports_cols() const noexcept override { return true; }
  [[nodiscard]] double score(const HostCols& host,
                             const core::VmSpec& spec) const override;

  [[nodiscard]] double heat_weight() const noexcept { return heat_weight_; }

 private:
  ProgressScorer progress_;
  double heat_weight_ = 1.0;
};

/// Weighted sum of scorers, mirroring how providers compose dozens of rules;
/// used by the ablation bench to mix Algorithm 2 with packing pressure.
class CompositeScorer final : public Scorer {
 public:
  void add(std::unique_ptr<Scorer> scorer, double weight);

  [[nodiscard]] double score(const HostState& host,
                             const core::VmSpec& spec) const override;
  [[nodiscard]] std::string name() const override;

  /// Columnar when every part is (the weighted sum runs in part order, so
  /// the float result matches the HostState overload exactly).
  [[nodiscard]] bool supports_cols() const noexcept override;
  [[nodiscard]] double score(const HostCols& host,
                             const core::VmSpec& spec) const override;

  [[nodiscard]] std::size_t size() const noexcept { return parts_.size(); }

 private:
  struct Part {
    std::unique_ptr<Scorer> scorer;
    double weight;
  };
  std::vector<Part> parts_;
};

}  // namespace slackvm::sched
