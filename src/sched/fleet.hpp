// Hardware fleet descriptions.
//
// The paper stresses that Algorithm 2 "computes the target ratio on an
// individual PM basis, thereby accommodating variations in hardware settings
// within a given cluster" (§VI) — providers run heterogeneous fleets,
// extending PM lifespans instead of refreshing uniformly (§III-B). A
// FleetSpec describes what hardware the i-th opened PM has: a cycling
// pattern of configurations models mixed machine generations
// deterministically.
#pragma once

#include <string>
#include <vector>

#include "core/resources.hpp"
#include "sched/host_state.hpp"

namespace slackvm::sched {

class FleetSpec {
 public:
  /// PMs are opened following `cycle` round-robin: PM i gets
  /// cycle[i % cycle.size()].
  explicit FleetSpec(std::vector<core::Resources> cycle);

  /// The common case: every PM identical.
  [[nodiscard]] static FleetSpec uniform(core::Resources config);

  /// Configuration of the i-th opened PM.
  [[nodiscard]] const core::Resources& config_for(HostId id) const;

  [[nodiscard]] bool heterogeneous() const noexcept { return cycle_.size() > 1; }
  [[nodiscard]] const std::vector<core::Resources>& cycle() const noexcept {
    return cycle_;
  }

  /// Largest single-PM footprint the fleet can host (used to validate that
  /// a VM is placeable at all).
  [[nodiscard]] core::Resources max_config() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<core::Resources> cycle_;
};

}  // namespace slackvm::sched
