// Elastic cluster of hosts driven by a placement policy.
//
// In the paper's protocol (§VII-B1) a cluster starts empty and a new PM is
// opened only when no open PM passes the capacity filter; the minimal
// cluster size for a policy is the number of PMs ever opened. A VCluster
// implements exactly that. In baseline mode the datacenter holds one
// VCluster per oversubscription level (dedicated clusters); in SlackVM mode
// it holds a single shared VCluster whose hosts co-host all levels.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/filter.hpp"
#include "sched/fleet.hpp"
#include "sched/heat_index.hpp"
#include "sched/host_arena.hpp"
#include "sched/host_state.hpp"
#include "sched/placement_index.hpp"
#include "sched/policy.hpp"

namespace slackvm::sched {

/// One journaled membership mutation (see VCluster::arm_membership_log).
/// kAdd/kRemove carry the VM; kWipe marks a host whose whole population
/// changed at once (fail_host evictions) — consumers drop their cached view
/// of that host and re-derive it.
struct MembershipDelta {
  enum class Op : std::uint8_t { kAdd, kRemove, kWipe };
  Op op = Op::kAdd;
  HostId host = 0;
  core::VmId vm{0};        ///< kAdd/kRemove
  core::VmSpec spec;       ///< kAdd only
};

class VCluster {
 public:
  VCluster(std::string name, core::Resources host_config,
           std::unique_ptr<PlacementPolicy> policy, double mem_oversub = 1.0);

  /// Heterogeneous fleet: the i-th opened PM follows the fleet's cycle.
  VCluster(std::string name, FleetSpec fleet, std::unique_ptr<PlacementPolicy> policy,
           double mem_oversub = 1.0);

  /// Install an additional hard-constraint filter applied to every
  /// placement (paper §II-B). Pass nullptr to clear. The incremental index
  /// only models the built-in capacity filter, so it is dropped while an
  /// extra filter is installed (placements fall back to the naive scan)
  /// and lazily rebuilt once the filter is cleared.
  void set_filter(std::unique_ptr<Filter> filter) {
    filter_ = std::move(filter);
    index_.reset();
  }

  /// Incremental candidate index (placement_index.hpp), on by default:
  /// try_place consults it instead of the naive O(hosts) policy scan, with
  /// provably identical selection (differential-tested). Disabling it is
  /// the --index=off escape hatch that preserves the exact pre-index code
  /// path; re-enabling rebuilds the index from live state.
  void set_index_enabled(bool enabled) {
    index_enabled_ = enabled;
    if (!enabled) {
      index_.reset();
      heat_index_.reset();
    }
  }
  [[nodiscard]] bool index_enabled() const noexcept { return index_enabled_; }

  /// Pre-size the placement containers for an expected number of VMs (a
  /// trace-size hint). Purely a capacity hint — never required.
  void reserve(std::size_t expected_vms);

  /// Live-migrate a VM to a specific open host; returns false (no state
  /// change) when the target cannot host it. Throws for unknown VMs/hosts.
  bool migrate(core::VmId vm, HostId to);

  // --- in-flight migration reservations (sim/migration.hpp) ----------------

  /// Book migration capacity for `vm` on `host`: returns false (no state
  /// change) unless the host is UP and the spec fits on top of everything
  /// already hosted *and* reserved there. The booking is visible to every
  /// placement path (can_host, the placement index, the arena aggregates)
  /// until released or committed. Throws for unknown hosts.
  bool try_reserve(HostId host, core::VmId vm, const core::VmSpec& spec);

  /// Roll back a reservation booked earlier; throws when absent.
  void release_reservation(HostId host, core::VmId vm);

  /// Commit an in-flight migration: atomically swap the reservation on `to`
  /// for the VM itself and detach it from its source. The reserved capacity
  /// is exact, so the move cannot fail; throws when `vm` has no reservation
  /// on `to` or is not placed here.
  void commit_migration(core::VmId vm, HostId to);

  /// Place a VM, opening a new host when no open one fits. Throws when the
  /// VM cannot fit even on an empty host (spec larger than the PM) or when
  /// the host cap is exhausted.
  HostId place(core::VmId id, const core::VmSpec& spec);

  /// Like place(), but returns std::nullopt (state unchanged) instead of
  /// throwing when the VM cannot be placed within the host cap.
  std::optional<HostId> try_place(core::VmId id, const core::VmSpec& spec);

  /// Cap the number of PMs this cluster may open (fixed-fleet mode); by
  /// default growth is unbounded (the paper's elastic protocol).
  void set_max_hosts(std::size_t max_hosts) { max_hosts_ = max_hosts; }
  [[nodiscard]] std::optional<std::size_t> max_hosts() const noexcept {
    return max_hosts_;
  }

  /// Remove a VM placed earlier; throws for unknown ids. Emptied hosts stay
  /// open (they were provisioned) and are reused by later placements.
  void remove(core::VmId id);

  // --- availability lifecycle (sim/fault.hpp drives these) -----------------

  /// Current phase of an opened host; throws for unknown hosts.
  [[nodiscard]] HostPhase host_phase(HostId host) const;

  /// UP → DRAINING: stop admitting VMs on `host` while the existing ones are
  /// migrated off (migrate_off) or depart naturally. No-op when already
  /// draining; throws for unknown or failed hosts.
  void drain_host(HostId host);

  /// Any phase → FAILED: evict every VM the host ran and return the victims
  /// in ascending VmId order (the deterministic evacuation order). The host
  /// stays in the fleet (opened_hosts is unchanged) but admits nothing until
  /// repaired. Throws for unknown hosts; no-op victims list when already
  /// failed.
  [[nodiscard]] std::vector<std::pair<core::VmId, core::VmSpec>> fail_host(HostId host);

  /// DRAINING|FAILED → UP: the host admits placements again. No-op when
  /// already up; throws for unknown hosts.
  void repair_host(HostId host);

  /// Move as many VMs as possible off a draining host through the normal
  /// policy/index placement path (ascending VmId order). VMs with no
  /// feasible target are restored in place and returned by a later
  /// fail_host. Returns the number of VMs moved. Throws unless the host is
  /// draining.
  std::size_t migrate_off(HostId host);

  // --- interference heat (sim/usage_monitor.hpp feeds it) ------------------

  /// Update a host's interference-heat EWMA through the index-safe funnel:
  /// the arena row is re-mirrored always, the placement index is touched
  /// only when the quantized bucket crossed (== the epoch bumped). Throws
  /// for unknown hosts.
  void set_host_heat(HostId host, double heat, double bucket_width);

  /// Raw heat of an opened host; throws for unknown hosts.
  [[nodiscard]] double host_heat(HostId host) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const PlacementPolicy& policy() const noexcept { return *policy_; }

  /// Number of PMs ever opened == minimal cluster size for this policy.
  [[nodiscard]] std::size_t opened_hosts() const noexcept { return hosts_.size(); }

  [[nodiscard]] const std::vector<HostState>& hosts() const noexcept { return hosts_; }

  [[nodiscard]] std::size_t vm_count() const noexcept { return placements_.size(); }

  /// True when `vm` is currently placed here.
  [[nodiscard]] bool contains(core::VmId vm) const noexcept {
    return placements_.contains(vm);
  }

  /// Host currently running `vm`; throws for unknown ids.
  [[nodiscard]] HostId host_of(core::VmId vm) const;

  /// Aggregate allocation over all opened hosts — O(1): a running total of
  /// the struct-of-arrays mirror (host_arena.hpp).
  [[nodiscard]] const core::Resources& total_alloc() const noexcept {
    return arena_.total_alloc();
  }

  /// Aggregate capacity over all opened hosts — O(1) (see total_alloc).
  [[nodiscard]] const core::Resources& total_config() const noexcept {
    return arena_.total_config();
  }

  /// Hosts currently running at least one VM — O(1) (see total_alloc).
  [[nodiscard]] std::size_t nonempty_hosts() const noexcept {
    return arena_.nonempty_hosts();
  }

  /// The struct-of-arrays mirror of the fleet (audits cross-check it).
  [[nodiscard]] const HostArena& arena() const noexcept { return arena_; }

  /// The quantized-heat bucket index serving plan_interference, its dirty
  /// log replayed, or nullptr while the index machinery is disabled
  /// (--index=off escape hatch: the rebalancer then falls back to the
  /// verbatim naive scans). Created lazily on first use, like the
  /// placement index; logically const (the member is a mutable cache).
  [[nodiscard]] const HeatIndex* synced_heat_index() const;

  /// Replay the placement index's whole dirty log now (batched at shard
  /// barriers so per-event touches stay O(1) appends). No-op while naive.
  void flush_index();

  // --- membership journal (sim::DemandCache rides it) -----------------------

  /// Start journaling every membership mutation (place/remove/migrate/
  /// commit/fail) as MembershipDelta records. Idempotent; journaling stays
  /// on for the cluster's lifetime. Records appended before arming are
  /// reported as lost by the first take_membership_log.
  void arm_membership_log() { membership_armed_ = true; }

  /// Move the journaled deltas since the last take into `out` (replacing
  /// its contents; capacities are swapped, so a reused `out` keeps the
  /// steady state allocation-free). Returns false when records were dropped
  /// (pre-arming mutations or journal overflow) — the deltas in `out` are
  /// then incomplete and the consumer must fall back to full invalidation.
  bool take_membership_log(std::vector<MembershipDelta>& out) {
    out.swap(membership_log_);
    membership_log_.clear();
    const bool complete = !membership_lost_;
    membership_lost_ = false;
    return complete;
  }

 private:
  /// The index serving the current placement path, or nullptr when the
  /// naive scan must be used (index disabled, extra filter installed, or
  /// the policy needs full candidate lists). Created lazily.
  [[nodiscard]] PlacementIndex* active_index();

  /// Report a host epoch bump to the indexes (no-op while naive).
  void touch(HostId host) {
    if (index_ != nullptr) {
      index_->touch(host);
    }
    if (heat_index_ != nullptr) {
      heat_index_->touch(host);
    }
  }

  /// Bound the heat index's dirty log between polluter passes: touch() is an
  /// O(1) append, but if plan_interference stops being called the log must
  /// not grow with every mutation forever. Only called from settled contexts
  /// (never inside try_place's opening-rollback window), so a sync here can
  /// never file a host that is about to be popped.
  void bound_heat_log() {
    if (heat_index_ != nullptr &&
        heat_index_->dirty_size() > 8 * hosts_.size() + 1024) {
      heat_index_->sync(hosts_);
    }
  }

  /// Every mutation of hosts_[host] funnels through here: re-mirror the row
  /// into the arena, then report the epoch bump to the indexes.
  void note(HostId host) {
    arena_.refresh(hosts_[host]);
    touch(host);
    bound_heat_log();
  }

  /// Append one membership record (no-op until armed). A full journal stops
  /// recording and flags the loss instead of growing unboundedly — the next
  /// take_membership_log then reports incompleteness and the consumer falls
  /// back to epoch-based invalidation, so overflow only costs speed.
  static constexpr std::size_t kMembershipLogCap = 4096;
  void journal(MembershipDelta::Op op, HostId host, core::VmId vm,
               const core::VmSpec& spec) {
    if (!membership_armed_ || membership_lost_) {
      return;
    }
    if (membership_log_.size() >= kMembershipLogCap) {
      membership_log_.clear();
      membership_lost_ = true;
      return;
    }
    membership_log_.push_back(MembershipDelta{op, host, vm, spec});
  }

  std::string name_;
  FleetSpec fleet_;
  double mem_oversub_ = 1.0;
  std::unique_ptr<PlacementPolicy> policy_;
  std::unique_ptr<Filter> filter_;
  std::optional<std::size_t> max_hosts_;
  std::vector<HostState> hosts_;
  HostArena arena_;  ///< SoA mirror of hosts_, maintained by note()
  std::unordered_map<core::VmId, HostId> placements_;
  bool index_enabled_ = true;
  /// Membership journal (arm_membership_log). lost_ starts true so the
  /// first take after arming reports the pre-arming history as dropped.
  std::vector<MembershipDelta> membership_log_;
  bool membership_armed_ = false;
  bool membership_lost_ = true;
  std::unique_ptr<PlacementIndex> index_;
  /// Lazily created cache (see synced_heat_index); reset with the index.
  mutable std::unique_ptr<HeatIndex> heat_index_;
};

}  // namespace slackvm::sched
