#include "sched/vcluster.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace slackvm::sched {

VCluster::VCluster(std::string name, core::Resources host_config,
                   std::unique_ptr<PlacementPolicy> policy, double mem_oversub)
    : VCluster(std::move(name), FleetSpec::uniform(host_config), std::move(policy),
               mem_oversub) {}

VCluster::VCluster(std::string name, FleetSpec fleet,
                   std::unique_ptr<PlacementPolicy> policy, double mem_oversub)
    : name_(std::move(name)),
      fleet_(std::move(fleet)),
      mem_oversub_(mem_oversub),
      policy_(std::move(policy)) {
  SLACKVM_ASSERT(policy_ != nullptr);
}

HostId VCluster::place(core::VmId id, const core::VmSpec& spec) {
  const auto chosen = try_place(id, spec);
  if (!chosen) {
    SLACKVM_THROW("VCluster::place: cannot place VM (" + name_ + ")");
  }
  return *chosen;
}

void VCluster::reserve(std::size_t expected_vms) {
  placements_.reserve(expected_vms);
  // Hosts are bounded by live VMs but usually far fewer; cap the up-front
  // vector footprint — growth past the cap stays amortized either way.
  hosts_.reserve(std::min<std::size_t>(expected_vms, 4096));
  arena_.reserve(std::min<std::size_t>(expected_vms, 4096));
}

void VCluster::flush_index() {
  if (index_ != nullptr) {
    index_->sync_all(hosts_, &arena_);
  }
  if (heat_index_ != nullptr) {
    heat_index_->sync(hosts_);
  }
}

const HeatIndex* VCluster::synced_heat_index() const {
  if (!index_enabled_) {
    return nullptr;
  }
  if (heat_index_ == nullptr) {
    heat_index_ = std::make_unique<HeatIndex>();
    heat_index_->rebuild(hosts_);
  } else {
    heat_index_->sync(hosts_);
  }
  return heat_index_.get();
}

PlacementIndex* VCluster::active_index() {
  if (!index_enabled_ || filter_ != nullptr) {
    return nullptr;
  }
  if (index_ == nullptr) {
    switch (policy_->index_mode()) {
      case PlacementPolicy::IndexMode::kNone:
        return nullptr;
      case PlacementPolicy::IndexMode::kFirstFit:
        index_ = std::make_unique<PlacementIndex>(PlacementIndex::Mode::kFirstFit,
                                                  nullptr);
        break;
      case PlacementPolicy::IndexMode::kScore:
        index_ = std::make_unique<PlacementIndex>(PlacementIndex::Mode::kScore,
                                                  policy_->index_scorer());
        break;
    }
    // A fresh index seeds each spec class from live host state on first
    // use, so mid-run (re)builds need no backfill here.
  }
  return index_.get();
}

std::optional<HostId> VCluster::try_place(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!placements_.contains(id));
  PlacementIndex* index = active_index();
  auto chosen = index != nullptr ? index->select(hosts_, spec, &arena_)
                                 : policy_->select(hosts_, spec, filter_.get());
  if (!chosen) {
    // Open the next PM of the fleet cycle (within the host cap, if any —
    // elastic growth is the paper's protocol). A heterogeneous fleet may
    // open a PM the VM does not fit; keep opening (the PMs were provisioned
    // in cycle order anyway) until one fits, bounded by the cycle length.
    const std::size_t opened_before = hosts_.size();
    for (std::size_t attempt = 0; attempt <= fleet_.cycle().size(); ++attempt) {
      if (max_hosts_ && hosts_.size() >= *max_hosts_) {
        break;
      }
      const auto host_id = static_cast<HostId>(hosts_.size());
      hosts_.emplace_back(host_id, fleet_.config_for(host_id), mem_oversub_);
      arena_.push_host(hosts_.back());
      touch(host_id);
      if (hosts_.back().can_host(spec)) {
        chosen = host_id;
        break;
      }
    }
    if (!chosen) {
      // Roll back the empty PMs a failed attempt opened so a rejection
      // leaves the cluster unchanged.
      while (hosts_.size() > opened_before) {
        SLACKVM_ASSERT(hosts_.back().empty());
        hosts_.pop_back();
        arena_.pop_host();
      }
      return std::nullopt;
    }
  }
  hosts_[*chosen].add(id, spec);
  journal(MembershipDelta::Op::kAdd, *chosen, id, spec);
  note(*chosen);
  placements_.emplace(id, *chosen);
  return *chosen;
}

void VCluster::remove(core::VmId id) {
  const auto it = placements_.find(id);
  if (it == placements_.end()) {
    SLACKVM_THROW("VCluster::remove: unknown VM");
  }
  hosts_[it->second].remove(id);
  journal(MembershipDelta::Op::kRemove, it->second, id, core::VmSpec{});
  note(it->second);
  placements_.erase(it);
}

bool VCluster::migrate(core::VmId vm, HostId to) {
  const auto it = placements_.find(vm);
  if (it == placements_.end()) {
    SLACKVM_THROW("VCluster::migrate: unknown VM");
  }
  if (to >= hosts_.size()) {
    SLACKVM_THROW("VCluster::migrate: unknown target host");
  }
  const HostId from = it->second;
  if (from == to) {
    return true;
  }
  // Look the spec up before detaching so a rejected move changes nothing.
  const core::VmSpec spec = hosts_[from].spec_of(vm);
  hosts_[from].remove(vm);
  if (!hosts_[to].can_host(spec)) {
    hosts_[from].add(vm, spec);
    // State is unchanged but the epoch advanced twice; the index must hear
    // about every bump or its cached entries for `from` would stay stale.
    note(from);
    return false;
  }
  hosts_[to].add(vm, spec);
  journal(MembershipDelta::Op::kRemove, from, vm, core::VmSpec{});
  journal(MembershipDelta::Op::kAdd, to, vm, spec);
  note(from);
  note(to);
  it->second = to;
  return true;
}

void VCluster::set_host_heat(HostId host, double heat, double bucket_width) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::set_host_heat: unknown host");
  }
  const std::uint64_t before = hosts_[host].epoch();
  hosts_[host].set_heat(heat, bucket_width);
  // Within a bucket the epoch is unchanged and every cached index score is
  // still exact — refresh the arena mirror but spare the index a touch.
  arena_.refresh(hosts_[host]);
  if (hosts_[host].epoch() != before) {
    touch(host);
    bound_heat_log();
  }
}

double VCluster::host_heat(HostId host) const {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::host_heat: unknown host");
  }
  return hosts_[host].heat();
}

bool VCluster::try_reserve(HostId host, core::VmId vm, const core::VmSpec& spec) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::try_reserve: unknown host");
  }
  if (!hosts_[host].can_host(spec)) {
    return false;  // not UP, or the double-booked capacity does not fit
  }
  hosts_[host].reserve(vm, spec);
  note(host);
  return true;
}

void VCluster::release_reservation(HostId host, core::VmId vm) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::release_reservation: unknown host");
  }
  hosts_[host].release_reservation(vm);
  note(host);
}

void VCluster::commit_migration(core::VmId vm, HostId to) {
  const auto it = placements_.find(vm);
  if (it == placements_.end()) {
    SLACKVM_THROW("VCluster::commit_migration: unknown VM");
  }
  if (to >= hosts_.size() || !hosts_[to].has_reservation(vm)) {
    SLACKVM_THROW("VCluster::commit_migration: no reservation held");
  }
  const HostId from = it->second;
  SLACKVM_ASSERT(from != to);
  // The engine aborts flights before their destination leaves UP; a commit
  // onto a draining or failed host means a missed notification.
  SLACKVM_ASSERT(hosts_[to].phase() == HostPhase::kUp);
  const core::VmSpec spec = hosts_[from].spec_of(vm);
  // Swap reservation for residency inside one event: the freed booking is
  // exactly the VM's footprint, so the add can never fail, and no placement
  // can run between the release and the add.
  hosts_[to].release_reservation(vm);
  hosts_[from].remove(vm);
  SLACKVM_ASSERT(hosts_[to].fits(spec));
  hosts_[to].add(vm, spec);
  journal(MembershipDelta::Op::kRemove, from, vm, core::VmSpec{});
  journal(MembershipDelta::Op::kAdd, to, vm, spec);
  note(from);
  note(to);
  it->second = to;
}

HostPhase VCluster::host_phase(HostId host) const {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::host_phase: unknown host");
  }
  return hosts_[host].phase();
}

void VCluster::drain_host(HostId host) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::drain_host: unknown host");
  }
  if (hosts_[host].phase() == HostPhase::kFailed) {
    SLACKVM_THROW("VCluster::drain_host: cannot drain a failed host");
  }
  hosts_[host].set_phase(HostPhase::kDraining);
  note(host);
}

std::vector<std::pair<core::VmId, core::VmSpec>> VCluster::fail_host(HostId host) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::fail_host: unknown host");
  }
  HostState& state = hosts_[host];
  // Ascending VmId order: the evacuation engine re-places victims in this
  // order, so it must not depend on unordered_map iteration.
  std::vector<std::pair<core::VmId, core::VmSpec>> victims(state.vms().begin(),
                                                           state.vms().end());
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [vm, spec] : victims) {
    state.remove(vm);
    placements_.erase(vm);
  }
  state.set_phase(HostPhase::kFailed);
  // One wipe record covers the whole eviction batch for journal consumers.
  journal(MembershipDelta::Op::kWipe, host, core::VmId{0}, core::VmSpec{});
  // One dirty-log entry covers the whole eviction batch: sync() re-evaluates
  // the host at its latest epoch, and no select() can run mid-batch.
  note(host);
  return victims;
}

void VCluster::repair_host(HostId host) {
  if (host >= hosts_.size()) {
    SLACKVM_THROW("VCluster::repair_host: unknown host");
  }
  hosts_[host].set_phase(HostPhase::kUp);
  note(host);
}

std::size_t VCluster::migrate_off(HostId host) {
  if (host >= hosts_.size() || hosts_[host].phase() != HostPhase::kDraining) {
    SLACKVM_THROW("VCluster::migrate_off: host is not draining");
  }
  std::vector<core::VmId> vms;
  vms.reserve(hosts_[host].vm_count());
  for (const auto& [vm, spec] : hosts_[host].vms()) {
    vms.push_back(vm);
  }
  std::sort(vms.begin(), vms.end());
  std::size_t moved = 0;
  for (const core::VmId vm : vms) {
    const core::VmSpec spec = hosts_[host].spec_of(vm);
    // Detach, then re-place through the regular policy/index path; the
    // draining source cannot be re-chosen (can_host is false off-UP).
    hosts_[host].remove(vm);
    journal(MembershipDelta::Op::kRemove, host, vm, core::VmSpec{});
    placements_.erase(vm);
    note(host);
    if (try_place(vm, spec)) {
      ++moved;
    } else {
      // No feasible target: restore in place (capacity trivially holds) and
      // leave the VM for a later fail_host eviction or natural departure.
      hosts_[host].add(vm, spec);
      journal(MembershipDelta::Op::kAdd, host, vm, spec);
      placements_.emplace(vm, host);
      note(host);
    }
  }
  return moved;
}

HostId VCluster::host_of(core::VmId vm) const {
  const auto it = placements_.find(vm);
  if (it == placements_.end()) {
    SLACKVM_THROW("VCluster::host_of: unknown VM");
  }
  return it->second;
}


}  // namespace slackvm::sched
