#include "sched/scorer.hpp"

#include <sstream>

#include "core/error.hpp"

namespace slackvm::sched {

double Scorer::score(const HostCols& /*host*/, const core::VmSpec& /*spec*/) const {
  SLACKVM_THROW("Scorer::score(HostCols): scorer '" + name() +
                "' does not support columnar scoring");
}

double ProgressScorer::score(const HostState& host, const core::VmSpec& spec) const {
  const core::Resources alloc = host.alloc();
  const core::CoreCount delta_cores = host.cores_with(spec) - alloc.cores;
  core::ProgressInputs in;
  in.config = host.config();
  in.alloc = alloc;
  in.vm = core::Resources{delta_cores, spec.mem_mib};
  return core::progress_towards_target_ratio(in);
}

double ProgressScorer::score(const HostCols& host, const core::VmSpec& spec) const {
  const core::Resources alloc{host.alloc_cores, host.committed_mem};
  const core::CoreCount delta_cores = host.cores_with(spec) - alloc.cores;
  core::ProgressInputs in;
  in.config = core::Resources{host.config_cores, host.config_mem};
  in.alloc = alloc;
  in.vm = core::Resources{delta_cores, spec.mem_mib};
  return core::progress_towards_target_ratio(in);
}

double BestFitScorer::score(const HostState& host, const core::VmSpec& spec) const {
  const double residual_cores =
      static_cast<double>(host.config().cores - host.cores_with(spec)) /
      static_cast<double>(host.config().cores);
  const double residual_mem =
      static_cast<double>(host.config().mem_mib - host.alloc().mem_mib - spec.mem_mib) /
      static_cast<double>(host.config().mem_mib);
  return -(residual_cores + residual_mem);  // fuller host -> higher score
}

double BestFitScorer::score(const HostCols& host, const core::VmSpec& spec) const {
  const double residual_cores =
      static_cast<double>(host.config_cores - host.cores_with(spec)) /
      static_cast<double>(host.config_cores);
  const double residual_mem =
      static_cast<double>(host.config_mem - host.committed_mem - spec.mem_mib) /
      static_cast<double>(host.config_mem);
  return -(residual_cores + residual_mem);  // fuller host -> higher score
}

double WorstFitScorer::score(const HostState& host, const core::VmSpec& spec) const {
  return -best_.score(host, spec);
}

double WorstFitScorer::score(const HostCols& host, const core::VmSpec& spec) const {
  return -best_.score(host, spec);
}

InterferenceScorer::InterferenceScorer(double heat_weight)
    : heat_weight_(heat_weight) {
  SLACKVM_ASSERT(heat_weight >= 0.0);
}

double InterferenceScorer::score(const HostState& host,
                                 const core::VmSpec& spec) const {
  return progress_.score(host, spec) - heat_weight_ * host.quantized_heat();
}

double InterferenceScorer::score(const HostCols& host,
                                 const core::VmSpec& spec) const {
  return progress_.score(host, spec) - heat_weight_ * host.quantized_heat;
}

std::string InterferenceScorer::name() const {
  std::ostringstream os;
  os << "interference-aware(w=" << heat_weight_ << ')';
  return os.str();
}

void CompositeScorer::add(std::unique_ptr<Scorer> scorer, double weight) {
  SLACKVM_ASSERT(scorer != nullptr);
  parts_.push_back(Part{std::move(scorer), weight});
}

double CompositeScorer::score(const HostState& host, const core::VmSpec& spec) const {
  double total = 0.0;
  for (const Part& part : parts_) {
    total += part.weight * part.scorer->score(host, spec);
  }
  return total;
}

bool CompositeScorer::supports_cols() const noexcept {
  for (const Part& part : parts_) {
    if (!part.scorer->supports_cols()) {
      return false;
    }
  }
  return true;
}

double CompositeScorer::score(const HostCols& host, const core::VmSpec& spec) const {
  double total = 0.0;
  for (const Part& part : parts_) {
    total += part.weight * part.scorer->score(host, spec);
  }
  return total;
}

std::string CompositeScorer::name() const {
  std::ostringstream os;
  os << "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) {
      os << '+';
    }
    os << parts_[i].weight << '*' << parts_[i].scorer->name();
  }
  os << ')';
  return os.str();
}

}  // namespace slackvm::sched
