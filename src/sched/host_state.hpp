// Global-scheduler view of one PM.
//
// This is the fast accounting model used for cluster-scale simulation: it
// tracks, per oversubscription level, the vCPUs committed on the host, and
// derives the physical-core allocation with the same integer-core rule as
// the local scheduler (one vNode per level, `ceil(vcpus / ratio)` cores).
// tests/integration_local_sched_test.cpp cross-checks that HostState accepts
// a VM if and only if a real VNodeManager on the same hardware does.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "core/oversub.hpp"
#include "core/resources.hpp"
#include "core/vm.hpp"

namespace slackvm::sched {

using HostId = std::uint32_t;

/// Availability lifecycle of a PM (sim/fault.hpp drives the transitions):
///
///   kUp ──drain──▶ kDraining ──fail──▶ kFailed ──repair──▶ kUp
///    └────────────────fail─────────────────▲   (◀─repair── kDraining too)
///
/// kUp admits placements; kDraining stops admission while existing VMs are
/// migrated off (or simply depart); kFailed holds no VMs at all — failing a
/// host evicts everything it ran (VCluster::fail_host). "Repaired" is not a
/// distinct state: a repaired host is kUp again.
enum class HostPhase : std::uint8_t { kUp, kDraining, kFailed };

[[nodiscard]] const char* to_string(HostPhase phase) noexcept;

class HostState {
 public:
  /// `mem_oversub` >= 1 enables limited memory oversubscription (paper
  /// footnote 2: OpenStack defaults to 16:1 CPU and 1.5:1 DRAM): committed
  /// memory may reach config.mem_mib * mem_oversub.
  HostState(HostId id, core::Resources config, double mem_oversub = 1.0);

  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] const core::Resources& config() const noexcept { return config_; }
  [[nodiscard]] double mem_oversub() const noexcept { return mem_oversub_; }

  /// Modification epoch: bumped by every add()/remove() *and* every phase
  /// transition. Cached derived state (sched::PlacementIndex
  /// score/feasibility entries) is valid exactly as long as the epoch it was
  /// computed at still matches. Phase changes must participate: an empty
  /// host that fails and repairs without the epoch advancing would leave a
  /// "valid" index entry pointing at a host the naive scan rejects
  /// (regression-tested in tests/sim_fault_test.cpp).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] HostPhase phase() const noexcept { return phase_; }

  /// Transition the availability phase (no-op when already there). Bumps the
  /// epoch so every PlacementIndex entry cached for the old phase is
  /// invalidated. Transition legality is enforced by VCluster.
  void set_phase(HostPhase phase) noexcept {
    if (phase_ != phase) {
      phase_ = phase;
      ++epoch_;
    }
  }

  // --- interference heat (sim/usage_monitor.hpp feeds it) ------------------
  //
  // `heat` is an EWMA of runnable vCPU demand per physical core — the q that
  // perf::ContentionModel maps to response inflation. The raw value moves a
  // little on every sample; caching layers must not see every wiggle, so the
  // value the scorers read is *quantized*: bucket = floor(heat / width), and
  // the epoch advances only when the bucket changes (same contract as
  // set_phase above). Within a bucket every cached PlacementIndex entry
  // stays exact; a crossing invalidates them all.

  /// Update the heat EWMA. Negative inputs clamp to zero; `bucket_width <= 0`
  /// disables quantization (bucket pinned at 0, epoch never bumped by heat).
  void set_heat(double heat, double bucket_width) noexcept {
    heat_ = std::max(heat, 0.0);
    heat_bucket_width_ = bucket_width;
    const std::uint32_t bucket =
        bucket_width > 0.0 ? static_cast<std::uint32_t>(heat_ / bucket_width) : 0;
    if (heat_bucket_ != bucket) {
      heat_bucket_ = bucket;
      ++epoch_;
    }
  }

  /// Raw EWMA heat (runnable demand / physical cores).
  [[nodiscard]] double heat() const noexcept { return heat_; }

  /// Quantization bucket index of the current heat.
  [[nodiscard]] std::uint32_t heat_bucket() const noexcept { return heat_bucket_; }

  [[nodiscard]] double heat_bucket_width() const noexcept {
    return heat_bucket_width_;
  }

  /// The heat value scorers are allowed to read: the lower edge of the
  /// current bucket. Changes only when the epoch does, which is what keeps
  /// index-cached scores valid (sched/placement_index.hpp purity contract).
  [[nodiscard]] double quantized_heat() const noexcept {
    return static_cast<double>(heat_bucket_) * heat_bucket_width_;
  }

  /// Memory admission bound: config.mem_mib * mem_oversub.
  [[nodiscard]] core::MemMib mem_capacity() const noexcept {
    return static_cast<core::MemMib>(static_cast<double>(config_.mem_mib) *
                                     mem_oversub_);
  }

  /// Physical cores consumed by the per-level vNodes plus committed memory.
  /// This is Algorithm 2's allocPM.
  [[nodiscard]] core::Resources alloc() const noexcept {
    return core::Resources{alloc_cores_, committed_mem_};
  }

  /// Unallocated resources (config - alloc); memory clamps at zero when
  /// oversubscribed beyond the physical configuration.
  [[nodiscard]] core::Resources unallocated() const noexcept {
    return core::Resources{config_.cores - alloc_cores_,
                           std::max<core::MemMib>(0, config_.mem_mib - committed_mem_)};
  }

  /// Physical cores the host would allocate if `spec` were added.
  [[nodiscard]] core::CoreCount cores_with(const core::VmSpec& spec) const noexcept;

  /// Pure capacity check: both dimensions fit after adding `spec`,
  /// regardless of the availability phase.
  [[nodiscard]] bool fits(const core::VmSpec& spec) const noexcept;

  /// Admission filter: the host is UP and `spec` fits. Draining and failed
  /// hosts admit nothing, on the naive and the indexed path alike.
  [[nodiscard]] bool can_host(const core::VmSpec& spec) const noexcept {
    return phase_ == HostPhase::kUp && fits(spec);
  }

  /// Commit a VM. Callers must have checked capacity (fits); admission by
  /// phase is the placement path's responsibility — a draining host must
  /// still accept the restore of a VM whose evacuation found no target.
  void add(core::VmId id, const core::VmSpec& spec);

  /// Release a VM; throws for unknown ids.
  void remove(core::VmId id);

  // --- migration reservations (sim/migration.hpp holds them in flight) -----
  //
  // A reservation double-books the capacity of a VM that is still running on
  // its *source* host while its pre-copy is in flight: the spec participates
  // in every accounting column (per-level vCPUs, committed memory, alloc
  // cores, epoch) exactly like a hosted VM, so fits()/can_host(), the
  // placement index and the HostArena aggregates all see the booked space —
  // but the VM is not in vms() and the host does not count as non-empty.

  /// Book `spec` for an in-flight migration. Callers must have checked
  /// capacity (fits); throws when `id` is already reserved here.
  void reserve(core::VmId id, const core::VmSpec& spec);

  /// Release a reservation booked earlier; throws for unknown ids.
  void release_reservation(core::VmId id);

  [[nodiscard]] std::size_t reservation_count() const noexcept {
    return reservations_.size();
  }

  [[nodiscard]] bool has_reservation(core::VmId id) const noexcept {
    return reservations_.contains(id);
  }

  /// All in-flight reservations (unordered).
  [[nodiscard]] const std::unordered_map<core::VmId, core::VmSpec>& reservations()
      const noexcept {
    return reservations_;
  }

  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }

  /// vCPUs committed at a given level (0 when the level is absent).
  [[nodiscard]] core::VcpuCount committed_vcpus(core::OversubLevel level) const noexcept;

  /// Levels currently present with a non-zero commitment.
  [[nodiscard]] std::map<core::OversubLevel, core::VcpuCount> level_commitments() const;

  /// Spec of a hosted VM; throws for unknown ids.
  [[nodiscard]] const core::VmSpec& spec_of(core::VmId id) const;

  /// All hosted VMs (unordered).
  [[nodiscard]] const std::unordered_map<core::VmId, core::VmSpec>& vms() const noexcept {
    return vms_;
  }

 private:
  void recompute_alloc_cores() noexcept;

  HostId id_;
  core::Resources config_;
  double mem_oversub_ = 1.0;
  HostPhase phase_ = HostPhase::kUp;
  // vCPUs committed per level ratio (index = ratio, 0 unused).
  std::array<core::VcpuCount, core::OversubLevel::kMaxRatio + 1> vcpus_per_level_{};
  core::CoreCount alloc_cores_ = 0;
  core::MemMib committed_mem_ = 0;
  double heat_ = 0.0;
  double heat_bucket_width_ = 0.0;
  std::uint32_t heat_bucket_ = 0;
  std::uint64_t epoch_ = 0;
  std::unordered_map<core::VmId, core::VmSpec> vms_;
  /// In-flight migration reservations; booked in the accounting columns
  /// above but not in vms_.
  std::unordered_map<core::VmId, core::VmSpec> reservations_;
};

}  // namespace slackvm::sched
