#include "sched/offline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/error.hpp"

namespace slackvm::sched {

namespace {

/// Pack in the given order with a target-selection callback.
template <typename PickHost>
std::size_t pack_ordered(std::vector<core::VmSpec> vms, const core::Resources& host,
                         SizeMeasure measure, PickHost pick) {
  std::ranges::stable_sort(vms, [&host, measure](const auto& a, const auto& b) {
    return size_key(a, host, measure) > size_key(b, host, measure);
  });
  std::vector<HostState> hosts;
  std::uint64_t next_id = 1;
  for (const core::VmSpec& vm : vms) {
    std::optional<std::size_t> target = pick(hosts, vm);
    if (!target) {
      hosts.emplace_back(static_cast<HostId>(hosts.size()), host);
      if (!hosts.back().can_host(vm)) {
        SLACKVM_THROW("offline packing: VM exceeds an empty PM");
      }
      target = hosts.size() - 1;
    }
    hosts[*target].add(core::VmId{next_id++}, vm);
  }
  return hosts.size();
}

}  // namespace

double size_key(const core::VmSpec& vm, const core::Resources& host,
                SizeMeasure measure) {
  const double cores = static_cast<double>(vm.physical_cores()) /
                       static_cast<double>(host.cores);
  const double mem =
      static_cast<double>(vm.mem_mib) / static_cast<double>(host.mem_mib);
  switch (measure) {
    case SizeMeasure::kCores:
      return cores;
    case SizeMeasure::kMemory:
      return mem;
    case SizeMeasure::kMaxNormalized:
      return std::max(cores, mem);
    case SizeMeasure::kSumNormalized:
      return cores + mem;
  }
  SLACKVM_THROW("invalid SizeMeasure");
}

std::size_t lower_bound_pms(std::span<const core::VmSpec> vms,
                            const core::Resources& host) {
  SLACKVM_ASSERT(host.cores > 0 && host.mem_mib > 0);
  double frac_cores = 0.0;
  double mem = 0.0;
  for (const core::VmSpec& vm : vms) {
    frac_cores += static_cast<double>(vm.vcpus) / vm.level.ratio();
    mem += static_cast<double>(vm.mem_mib);
  }
  const double by_cpu = frac_cores / static_cast<double>(host.cores);
  const double by_mem = mem / static_cast<double>(host.mem_mib);
  return static_cast<std::size_t>(std::ceil(std::max(by_cpu, by_mem) - 1e-9));
}

std::size_t pack_ffd(std::span<const core::VmSpec> vms, const core::Resources& host,
                     SizeMeasure measure) {
  return pack_ordered(
      std::vector<core::VmSpec>(vms.begin(), vms.end()), host, measure,
      [](const std::vector<HostState>& hosts,
         const core::VmSpec& vm) -> std::optional<std::size_t> {
        for (std::size_t h = 0; h < hosts.size(); ++h) {
          if (hosts[h].can_host(vm)) {
            return h;
          }
        }
        return std::nullopt;
      });
}

std::size_t pack_bfd(std::span<const core::VmSpec> vms, const core::Resources& host,
                     SizeMeasure measure) {
  return pack_ordered(
      std::vector<core::VmSpec>(vms.begin(), vms.end()), host, measure,
      [&host](const std::vector<HostState>& hosts,
              const core::VmSpec& vm) -> std::optional<std::size_t> {
        std::optional<std::size_t> best;
        double best_residual = 0.0;
        for (std::size_t h = 0; h < hosts.size(); ++h) {
          if (!hosts[h].can_host(vm)) {
            continue;
          }
          const double residual =
              static_cast<double>(host.cores - hosts[h].cores_with(vm)) /
                  static_cast<double>(host.cores) +
              static_cast<double>(host.mem_mib - hosts[h].alloc().mem_mib -
                                  vm.mem_mib) /
                  static_cast<double>(host.mem_mib);
          if (!best || residual < best_residual) {
            best = h;
            best_residual = residual;
          }
        }
        return best;
      });
}

}  // namespace slackvm::sched
