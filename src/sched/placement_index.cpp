#include "sched/placement_index.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace slackvm::sched {

std::size_t PlacementIndex::KeyHash::operator()(const Key& k) const noexcept {
  std::uint64_t h = k.vcpus;
  h = h * 1000003ULL ^ static_cast<std::uint64_t>(k.mem_mib);
  h = h * 1000003ULL ^ static_cast<std::uint64_t>(k.ratio);
  return std::hash<std::uint64_t>{}(h);
}

PlacementIndex::PlacementIndex(Mode mode, const Scorer* scorer)
    : mode_(mode), scorer_(scorer) {
  SLACKVM_ASSERT(mode_ != Mode::kScore || scorer_ != nullptr);
}

void PlacementIndex::touch(HostId host) { dirty_log_.push_back(host); }

std::optional<HostId> PlacementIndex::select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const HostArena* arena) {
  compact_log(hosts, arena);
  PerClass& pc = class_for(hosts, spec, arena);
  sync(pc, hosts, arena);

  if (mode_ == Mode::kFirstFit) {
    if (pc.feasible.empty()) {
      return std::nullopt;
    }
    // The set is exact after sync(): lowest feasible id == First-Fit.
    const HostId chosen = *pc.feasible.begin();
    SLACKVM_ASSERT(chosen < hosts.size());
    return chosen;
  }

  // kScore: pop stale entries (the host changed since the push; sync()
  // already pushed a fresh entry if it is still feasible). A fresh top is
  // feasible by construction — only feasible hosts are ever pushed.
  while (!pc.heap.empty()) {
    const Entry top = pc.heap.front();
    if (top.host < hosts.size() && hosts[top.host].epoch() == top.epoch) {
      return top.host;
    }
    std::pop_heap(pc.heap.begin(), pc.heap.end(), entry_less);
    pc.heap.pop_back();
  }
  return std::nullopt;
}

void PlacementIndex::sync_all(std::span<const HostState> hosts,
                              const HostArena* arena) {
  for (PerClass& pc : classes_) {
    sync(pc, hosts, arena);
    pc.cursor = 0;
  }
  dirty_log_.clear();
}

PlacementIndex::PerClass& PlacementIndex::class_for(std::span<const HostState> hosts,
                                                    const core::VmSpec& spec,
                                                    const HostArena* arena) {
  const Key key{spec.vcpus, spec.mem_mib, spec.level.ratio()};
  const auto [it, inserted] =
      ids_.try_emplace(key, static_cast<SpecClassId>(classes_.size()));
  if (inserted) {
    // New shape: one full scan seeds its structure; afterwards only dirty
    // hosts are ever revisited (cursor starts at the log's current end).
    classes_.emplace_back();
    PerClass& pc = classes_.back();
    pc.spec = spec;
    pc.cursor = dirty_log_.size();
    for (const HostState& host : hosts) {
      update_host(pc, host, arena);
    }
  }
  return classes_[it->second];
}

void PlacementIndex::sync(PerClass& pc, std::span<const HostState> hosts,
                          const HostArena* arena) {
  while (pc.cursor < dirty_log_.size()) {
    const HostId host = dirty_log_[pc.cursor++];
    // Ids at or past the live range belong to rolled-back host openings
    // (VCluster::try_place); if the id is ever reopened a fresh log entry
    // re-evaluates it from its live state.
    if (host < hosts.size()) {
      update_host(pc, hosts[host], arena);
    }
  }
  if (mode_ == Mode::kScore) {
    compact_heap(pc, hosts);
  }
}

void PlacementIndex::update_host(PerClass& pc, const HostState& host,
                                 const HostArena* arena) {
  // The arena mirrors the host exactly, so both branches answer the same;
  // the columnar one streams linearly during class seeding and batch syncs.
  const bool feasible =
      arena != nullptr ? arena->can_host(host.id(), pc.spec) : host.can_host(pc.spec);
  if (mode_ == Mode::kFirstFit) {
    if (feasible) {
      pc.feasible.insert(host.id());
    } else {
      pc.feasible.erase(host.id());
    }
    return;
  }
  if (!feasible) {
    // No push: any older entries are stale (their epoch no longer matches)
    // and get dropped when they surface at the heap top.
    return;
  }
  const auto [it, inserted] = pc.pushed.try_emplace(host.id(), host.epoch());
  if (!inserted) {
    if (it->second == host.epoch()) {
      return;  // an entry for this exact state is already in the heap
    }
    it->second = host.epoch();
  }
  pc.heap.push_back(Entry{scorer_->score(host, pc.spec), host.id(), host.epoch()});
  std::push_heap(pc.heap.begin(), pc.heap.end(), entry_less);
}

void PlacementIndex::compact_log(std::span<const HostState> hosts,
                                 const HostArena* arena) {
  // Mutations append forever; once the log dwarfs the fleet, bring every
  // class up to date and drop it. Amortized O(classes) per mutation.
  if (dirty_log_.size() < 1024 || dirty_log_.size() < 8 * hosts.size()) {
    return;
  }
  sync_all(hosts, arena);
}

void PlacementIndex::compact_heap(PerClass& pc, std::span<const HostState> hosts) {
  // Lazy deletion only removes stale entries that reach the top; bound the
  // bottom garbage by rebuilding once stale entries dominate.
  if (pc.heap.size() <= 64 || pc.heap.size() <= 4 * hosts.size()) {
    return;
  }
  std::erase_if(pc.heap, [&hosts](const Entry& e) {
    return e.host >= hosts.size() || hosts[e.host].epoch() != e.epoch;
  });
  std::make_heap(pc.heap.begin(), pc.heap.end(), entry_less);
}

}  // namespace slackvm::sched
