#include "sched/policy.hpp"

#include "core/error.hpp"

namespace slackvm::sched {

std::optional<HostId> FirstFitPolicy::select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra) const {
  for (const HostState& host : hosts) {
    if (admits(host, spec, extra)) {
      return host.id();
    }
  }
  return std::nullopt;
}

ScorePolicy::ScorePolicy(std::unique_ptr<Scorer> scorer) : scorer_(std::move(scorer)) {
  SLACKVM_ASSERT(scorer_ != nullptr);
}

std::optional<HostId> ScorePolicy::select(std::span<const HostState> hosts,
                                          const core::VmSpec& spec,
                                          const Filter* extra) const {
  std::optional<HostId> best;
  double best_score = 0.0;
  for (const HostState& host : hosts) {
    if (!admits(host, spec, extra)) {
      continue;
    }
    const double s = scorer_->score(host, spec);
    if (!best || s > best_score) {
      best = host.id();
      best_score = s;
    }
  }
  return best;
}

std::string ScorePolicy::name() const { return "score(" + scorer_->name() + ")"; }

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

std::optional<HostId> RandomPolicy::select(std::span<const HostState> hosts,
                                           const core::VmSpec& spec,
                                           const Filter* extra) const {
  std::vector<HostId> feasible;
  for (const HostState& host : hosts) {
    if (admits(host, spec, extra)) {
      feasible.push_back(host.id());
    }
  }
  if (feasible.empty()) {
    return std::nullopt;
  }
  return feasible[rng_.below(feasible.size())];
}

std::unique_ptr<PlacementPolicy> make_first_fit() {
  return std::make_unique<FirstFitPolicy>();
}

std::unique_ptr<PlacementPolicy> make_progress_policy() {
  return std::make_unique<ScorePolicy>(std::make_unique<ProgressScorer>());
}

std::unique_ptr<PlacementPolicy> make_best_fit() {
  return std::make_unique<ScorePolicy>(std::make_unique<BestFitScorer>());
}

std::unique_ptr<PlacementPolicy> make_worst_fit() {
  return std::make_unique<ScorePolicy>(std::make_unique<WorstFitScorer>());
}

std::unique_ptr<PlacementPolicy> make_random_fit(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}

std::unique_ptr<PlacementPolicy> make_interference_policy(double heat_weight) {
  return std::make_unique<ScorePolicy>(
      std::make_unique<InterferenceScorer>(heat_weight));
}

std::unique_ptr<PlacementPolicy> make_slackvm_policy(double packing_weight) {
  auto composite = std::make_unique<CompositeScorer>();
  composite->add(std::make_unique<ProgressScorer>(), 1.0);
  composite->add(std::make_unique<BestFitScorer>(), packing_weight);
  return std::make_unique<ScorePolicy>(std::move(composite));
}

}  // namespace slackvm::sched
