// Struct-of-arrays mirror of a VCluster's host fleet.
//
// The authoritative per-host record stays HostState (AoS: one object per PM
// with its own VM map). That layout is right for mutation but wrong for the
// two scans the sharded simulator hammers: per-event cluster aggregates
// (total allocation / capacity / non-empty count) and the linear feasibility
// sweeps of PlacementIndex seeding and compaction. HostArena keeps every
// scan-relevant field of every host in a dense column, maintained in O(1)
// per mutation by VCluster, so:
//
//  * cluster aggregates become O(1) reads of running totals (the per-event
//    observe() of a 100k-host shard no longer walks 100k hosts);
//  * feasibility checks stream over flat arrays (epoch, phase, committed
//    memory, per-level vCPU columns) instead of chasing one heap-allocated
//    HostState per candidate;
//  * audits can cross-check the mirror field-for-field against the
//    authoritative rows (check()), which the shard test suite does at every
//    barrier.
//
// Every column value is copied verbatim from the HostState it mirrors —
// including mem_capacity(), whose double-rounded value is materialized once
// per refresh — so any answer computed from the arena is bit-identical to
// the same answer computed from the host object.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/oversub.hpp"
#include "core/resources.hpp"
#include "core/vm.hpp"
#include "sched/host_state.hpp"

namespace slackvm::sched {

class HostArena {
 public:
  /// Mirror a newly opened host (ids are dense: host.id() == size()).
  void push_host(const HostState& host);

  /// Roll back the most recent push_host (VCluster undoes empty openings
  /// when a placement attempt fails).
  void pop_host();

  /// Re-copy one host's row and adjust the running totals by the delta.
  /// Must be called after every mutation of the host (add/remove/phase).
  void refresh(const HostState& host);

  void reserve(std::size_t hosts);

  [[nodiscard]] std::size_t size() const noexcept { return epoch_.size(); }

  // --- O(1) cluster aggregates -------------------------------------------
  [[nodiscard]] const core::Resources& total_alloc() const noexcept {
    return total_alloc_;
  }
  [[nodiscard]] const core::Resources& total_config() const noexcept {
    return total_config_;
  }
  /// Hosts currently running at least one VM.
  [[nodiscard]] std::size_t nonempty_hosts() const noexcept { return nonempty_; }

  // --- columnar per-host reads -------------------------------------------
  [[nodiscard]] std::uint64_t epoch(HostId host) const noexcept {
    return epoch_[host];
  }
  [[nodiscard]] HostPhase phase(HostId host) const noexcept {
    return static_cast<HostPhase>(phase_[host]);
  }
  /// Raw interference heat EWMA mirrored from HostState::heat().
  [[nodiscard]] double heat(HostId host) const noexcept { return heat_[host]; }
  /// Quantization bucket mirrored from HostState::heat_bucket().
  [[nodiscard]] std::uint32_t heat_bucket(HostId host) const noexcept {
    return heat_bucket_[host];
  }
  /// HostState::quantized_heat() from the columns — the identical
  /// bucket * width expression, so the double is bit-identical.
  [[nodiscard]] double quantized_heat(HostId host) const noexcept {
    return static_cast<double>(heat_bucket_[host]) * heat_bucket_width_[host];
  }

  // --- whole-column views (Rebalancer::PlanScratch copies these) -----------
  [[nodiscard]] std::span<const std::uint8_t> phase_col() const noexcept {
    return phase_;
  }
  [[nodiscard]] std::span<const core::CoreCount> alloc_cores_col() const noexcept {
    return alloc_cores_;
  }
  [[nodiscard]] std::span<const core::MemMib> committed_mem_col() const noexcept {
    return committed_mem_;
  }
  [[nodiscard]] std::span<const core::MemMib> mem_capacity_col() const noexcept {
    return mem_capacity_;
  }
  [[nodiscard]] std::span<const core::CoreCount> config_cores_col() const noexcept {
    return config_cores_;
  }
  [[nodiscard]] std::span<const core::MemMib> config_mem_col() const noexcept {
    return config_mem_;
  }
  [[nodiscard]] std::span<const std::uint32_t> vm_count_col() const noexcept {
    return vm_count_;
  }
  [[nodiscard]] std::span<const double> heat_col() const noexcept { return heat_; }
  /// Flattened [host][ratio] vCPU commitments, kLevels entries per host.
  [[nodiscard]] std::span<const core::VcpuCount> vcpus_per_level_col() const noexcept {
    return vcpus_per_level_;
  }

  /// Same admission answer as hosts[host].can_host(spec), computed from the
  /// columns: UP phase, memory within the (oversubscribed) bound, and the
  /// incremental integer-core rule cores_with(spec) <= config.cores.
  [[nodiscard]] bool can_host(HostId host, const core::VmSpec& spec) const noexcept;

  /// Field-for-field comparison against the authoritative rows; returns one
  /// human-readable line per divergence (empty == the mirror is exact).
  [[nodiscard]] std::vector<std::string> check(
      std::span<const HostState> hosts) const;

  static constexpr std::size_t kLevels = core::OversubLevel::kMaxRatio + 1;

 private:
  void copy_row(const HostState& host);

  std::vector<std::uint64_t> epoch_;
  std::vector<std::uint8_t> phase_;
  std::vector<core::CoreCount> alloc_cores_;
  std::vector<core::MemMib> committed_mem_;
  std::vector<core::MemMib> mem_capacity_;
  std::vector<core::CoreCount> config_cores_;
  std::vector<core::MemMib> config_mem_;
  std::vector<std::uint32_t> vm_count_;
  std::vector<double> heat_;
  std::vector<std::uint32_t> heat_bucket_;
  std::vector<double> heat_bucket_width_;
  /// Flattened [host][ratio] vCPU commitments, kLevels entries per host.
  std::vector<core::VcpuCount> vcpus_per_level_;

  core::Resources total_alloc_{};
  core::Resources total_config_{};
  std::size_t nonempty_ = 0;
};

}  // namespace slackvm::sched
