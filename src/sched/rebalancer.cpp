#include "sched/rebalancer.hpp"

#include <algorithm>
#include <optional>

namespace slackvm::sched {

Rebalancer::Rebalancer(std::unique_ptr<Scorer> scorer) : scorer_(std::move(scorer)) {
  if (!scorer_) {
    scorer_ = std::make_unique<ProgressScorer>();
  }
}

MigrationPlan Rebalancer::plan(const VCluster& cluster,
                               std::size_t max_migrations) const {
  MigrationPlan plan;
  // Work on a scratch copy of the host states. Each host is attempted as a
  // drain source at most once, and emptied hosts never receive migrations —
  // otherwise two light hosts would ping-pong their VMs forever.
  std::vector<HostState> hosts = cluster.hosts();
  std::vector<bool> attempted(hosts.size(), false);
  std::vector<bool> emptied(hosts.size(), false);

  while (plan.migrations.size() < max_migrations) {
    // Pick the untried non-empty host with the fewest VMs — the cheapest
    // host to empty entirely.
    std::optional<std::size_t> candidate;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (hosts[h].empty() || attempted[h]) {
        continue;
      }
      if (!candidate || hosts[h].vm_count() < hosts[*candidate].vm_count()) {
        candidate = h;
      }
    }
    if (!candidate) {
      break;  // nothing left to try
    }
    attempted[*candidate] = true;
    HostState& source = hosts[*candidate];
    if (source.vm_count() > max_migrations - plan.migrations.size()) {
      break;  // even the cheapest drain exceeds the budget
    }

    // Tentatively migrate every VM of the source, best target first.
    std::vector<Migration> drain;
    std::vector<HostState> snapshot = hosts;  // rollback point
    bool drained = true;
    // Deterministic VM order.
    std::vector<core::VmId> vms;
    for (const auto& [id, spec] : source.vms()) {
      vms.push_back(id);
    }
    std::ranges::sort(vms);
    for (core::VmId vm : vms) {
      const core::VmSpec spec = source.spec_of(vm);
      std::optional<std::size_t> best;
      double best_score = 0.0;
      for (std::size_t h = 0; h < hosts.size(); ++h) {
        if (h == *candidate || emptied[h] || !hosts[h].can_host(spec)) {
          continue;
        }
        const double score = scorer_->score(hosts[h], spec);
        if (!best || score > best_score) {
          best = h;
          best_score = score;
        }
      }
      if (!best) {
        drained = false;
        break;
      }
      source.remove(vm);
      hosts[*best].add(vm, spec);
      drain.push_back(Migration{vm, static_cast<HostId>(*candidate),
                                static_cast<HostId>(*best)});
    }

    if (!drained) {
      hosts = std::move(snapshot);  // undo the partial drain, try next host
      continue;
    }
    emptied[*candidate] = true;
    plan.migrations.insert(plan.migrations.end(), drain.begin(), drain.end());
    ++plan.hosts_emptied;
  }
  return plan;
}

std::size_t Rebalancer::apply_plan(VCluster& cluster, const MigrationPlan& plan) {
  std::size_t applied = 0;
  for (const Migration& m : plan.migrations) {
    if (cluster.migrate(m.vm, m.to)) {
      ++applied;
    }
  }
  return applied;
}

}  // namespace slackvm::sched
