#include "sched/rebalancer.hpp"

#include <algorithm>
#include <optional>

#include "core/error.hpp"
#include "perf/contention.hpp"
#include "workload/usage.hpp"

namespace slackvm::sched {

void InterferenceOptions::validate() const {
  if (!enabled) {
    return;
  }
  SLACKVM_ASSERT(heat_interval > 0.0);
  SLACKVM_ASSERT(heat_alpha > 0.0 && heat_alpha <= 1.0);
  SLACKVM_ASSERT(heat_bucket > 0.0);
  SLACKVM_ASSERT(heat_weight >= 0.0);
  SLACKVM_ASSERT(threshold >= 1.0);
  SLACKVM_ASSERT(evictions_per_pass > 0);
}

Rebalancer::Rebalancer(std::unique_ptr<Scorer> scorer) : scorer_(std::move(scorer)) {
  if (!scorer_) {
    scorer_ = std::make_unique<ProgressScorer>();
  }
}

MigrationPlan Rebalancer::plan(const VCluster& cluster,
                               std::size_t max_migrations) const {
  // The incremental path needs columnar scores; a scorer that cannot provide
  // them (or the --index=off escape hatch) falls back to the verbatim naive
  // pass, keeping both differentially comparable.
  if (cluster.index_enabled() && scorer_->supports_cols()) {
    return plan_incremental(cluster, max_migrations);
  }
  return plan_naive(cluster, max_migrations);
}

MigrationPlan Rebalancer::plan_naive(const VCluster& cluster,
                                     std::size_t max_migrations) const {
  MigrationPlan plan;
  // Work on a scratch copy of the host states. Each host is attempted as a
  // drain source at most once, and emptied hosts never receive migrations —
  // otherwise two light hosts would ping-pong their VMs forever.
  std::vector<HostState> hosts = cluster.hosts();
  std::vector<bool> attempted(hosts.size(), false);
  std::vector<bool> emptied(hosts.size(), false);
  // Deterministic VM order, collected once per drain attempt into a reused
  // buffer (the map itself is unordered).
  std::vector<core::VmId> vms;

  while (plan.migrations.size() < max_migrations) {
    // Pick the untried non-empty host with the fewest VMs — the cheapest
    // host to empty entirely.
    std::optional<std::size_t> candidate;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (hosts[h].empty() || attempted[h]) {
        continue;
      }
      if (!candidate || hosts[h].vm_count() < hosts[*candidate].vm_count()) {
        candidate = h;
      }
    }
    if (!candidate) {
      break;  // nothing left to try
    }
    attempted[*candidate] = true;
    HostState& source = hosts[*candidate];
    if (source.vm_count() > max_migrations - plan.migrations.size()) {
      break;  // even the cheapest drain exceeds the budget
    }

    // Tentatively migrate every VM of the source, best target first.
    std::vector<Migration> drain;
    std::vector<HostState> snapshot = hosts;  // rollback point
    bool drained = true;
    vms.clear();
    for (const auto& [id, spec] : source.vms()) {
      vms.push_back(id);
    }
    std::ranges::sort(vms);
    for (core::VmId vm : vms) {
      const core::VmSpec spec = source.spec_of(vm);
      std::optional<std::size_t> best;
      double best_score = 0.0;
      for (std::size_t h = 0; h < hosts.size(); ++h) {
        if (h == *candidate || emptied[h] || !hosts[h].can_host(spec)) {
          continue;
        }
        const double score = scorer_->score(hosts[h], spec);
        if (!best || score > best_score) {
          best = h;
          best_score = score;
        }
      }
      if (!best) {
        drained = false;
        break;
      }
      source.remove(vm);
      hosts[*best].add(vm, spec);
      drain.push_back(Migration{vm, static_cast<HostId>(*candidate),
                                static_cast<HostId>(*best)});
    }

    if (!drained) {
      hosts = std::move(snapshot);  // undo the partial drain, try next host
      continue;
    }
    emptied[*candidate] = true;
    plan.migrations.insert(plan.migrations.end(), drain.begin(), drain.end());
    ++plan.hosts_emptied;
  }
  return plan;
}

MigrationPlan Rebalancer::plan_interference(const VCluster& cluster,
                                            const perf::ContentionModel& model,
                                            const InterferenceOptions& options) const {
  if (!options.enabled) {
    return MigrationPlan{};
  }
  // The cluster's heat index carries the --index escape hatch: nullptr
  // means the verbatim naive scan must run. Mixed quantization widths void
  // the cross-bucket ordering the incremental scans rely on.
  const HeatIndex* index = cluster.synced_heat_index();
  if (index != nullptr && index->uniform_width()) {
    return plan_interference_incremental(cluster, *index, model, options);
  }
  return plan_interference_naive(cluster, model, options);
}

MigrationPlan Rebalancer::plan_interference_naive(
    const VCluster& cluster, const perf::ContentionModel& model,
    const InterferenceOptions& options) const {
  MigrationPlan plan;
  if (!options.enabled) {
    return plan;
  }
  // Scratch copy: planned evictions adjust the copies' heat so one pass
  // spreads its moves instead of dogpiling the coolest host. Each host is
  // considered as a polluter source at most once per pass.
  std::vector<HostState> hosts = cluster.hosts();
  std::vector<bool> attempted(hosts.size(), false);
  // Victim ranking order, collected once per source into a reused buffer.
  std::vector<core::VmId> vms;

  while (plan.migrations.size() < options.evictions_per_pass) {
    // Hottest untried UP host with at least two VMs (evicting the only VM
    // of a host just moves the whole load somewhere cooler — polluter
    // separation needs co-located victims to split).
    std::optional<std::size_t> source;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (attempted[h] || hosts[h].phase() != HostPhase::kUp ||
          hosts[h].vm_count() < 2) {
        continue;
      }
      if (!source || hosts[h].heat() > hosts[*source].heat()) {
        source = h;  // strict > keeps ties on the lowest id
      }
    }
    if (!source) {
      break;
    }
    // The fleet is scanned hottest-first, so once the hottest candidate sits
    // below the threshold every other host does too.
    if (model.contention_inflation(hosts[*source].heat()) <= options.threshold) {
      break;
    }
    attempted[*source] = true;
    ++plan.hot_hosts;
    HostState& src = hosts[*source];

    // Heaviest contributor: max expected physical-core demand, i.e. vCPUs
    // weighted by the VM's long-run mean usage. Deterministic: candidates
    // are ranked in ascending VmId order and replaced only on strictly
    // higher demand, so ties keep the lowest id.
    vms.clear();
    vms.reserve(src.vm_count());
    for (const auto& [id, spec] : src.vms()) {
      vms.push_back(id);
    }
    std::ranges::sort(vms);
    std::optional<core::VmId> victim;
    double victim_demand = 0.0;
    for (const core::VmId vm : vms) {
      const core::VmSpec& spec = src.spec_of(vm);
      const double demand = static_cast<double>(spec.vcpus) *
                            workload::UsageSignal(vm, spec.usage).mean();
      if (!victim || demand > victim_demand) {
        victim = vm;
        victim_demand = demand;
      }
    }
    const core::VmSpec spec = src.spec_of(*victim);

    // Coolest strictly-cooler UP host that fits the victim; ties to the
    // lowest id via strict <.
    std::optional<std::size_t> target;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (h == *source || hosts[h].heat() >= src.heat() ||
          !hosts[h].can_host(spec)) {
        continue;
      }
      if (!target || hosts[h].heat() < hosts[*target].heat()) {
        target = h;
      }
    }
    if (!target) {
      continue;  // hottest host is stuck; try the next-hottest
    }

    // Move the victim in scratch and shift its expected demand share
    // between the two heat columns (the EWMA re-converges on the real
    // values at the next heat refresh; this only guides within-pass
    // decisions).
    src.remove(*victim);
    hosts[*target].add(*victim, spec);
    const double src_cores = static_cast<double>(src.config().cores);
    const double dst_cores = static_cast<double>(hosts[*target].config().cores);
    src.set_heat(src.heat() - victim_demand / src_cores, options.heat_bucket);
    hosts[*target].set_heat(hosts[*target].heat() + victim_demand / dst_cores,
                            options.heat_bucket);
    plan.migrations.push_back(Migration{*victim, static_cast<HostId>(*source),
                                        static_cast<HostId>(*target)});
  }
  return plan;
}

// --- PlanScratch: columnar planning state ----------------------------------

void Rebalancer::PlanScratch::load(const HostArena& arena) {
  const auto assign = [](auto& dst, auto src) { dst.assign(src.begin(), src.end()); };
  assign(phase, arena.phase_col());
  assign(alloc_cores, arena.alloc_cores_col());
  assign(committed_mem, arena.committed_mem_col());
  assign(mem_capacity, arena.mem_capacity_col());
  assign(config_cores, arena.config_cores_col());
  assign(config_mem, arena.config_mem_col());
  assign(vm_count, arena.vm_count_col());
  assign(heat, arena.heat_col());
  assign(vcpus_per_level, arena.vcpus_per_level_col());
  const std::size_t n = arena.size();
  quantized_heat.resize(n);
  for (HostId h = 0; h < n; ++h) {
    quantized_heat[h] = arena.quantized_heat(h);
  }
  attempted.assign(n, 0);
  emptied.assign(n, 0);
  // Reset only what the previous pass touched; everything else is already
  // clear, so a warm pass does no O(fleet) flag sweeps beyond the assigns.
  for (const HostId h : shifted_list) {
    if (h < shifted.size()) {
      shifted[h] = 0;
    }
  }
  shifted_list.clear();
  shifted.resize(n, 0);
  for (const HostId h : gained_list) {
    if (h < gained.size()) {
      gained[h].clear();
    }
  }
  gained_list.clear();
  gained.resize(n);
  source_vms.clear();
  drain.clear();
  undo.clear();
  count_heap.clear();
}

bool Rebalancer::PlanScratch::can_host(HostId host,
                                       const core::VmSpec& spec) const noexcept {
  if (static_cast<HostPhase>(phase[host]) != HostPhase::kUp) {
    return false;
  }
  if (committed_mem[host] + spec.mem_mib > mem_capacity[host]) {
    return false;
  }
  const std::uint8_t ratio = spec.level.ratio();
  const core::VcpuCount committed =
      vcpus_per_level[std::size_t{host} * kLevels + ratio];
  const core::CoreCount cores =
      alloc_cores[host] - core::ceil_div<core::CoreCount>(committed, ratio) +
      core::ceil_div<core::CoreCount>(committed + spec.vcpus, ratio);
  return cores <= config_cores[host];
}

HostCols Rebalancer::PlanScratch::cols(HostId host) const noexcept {
  return HostCols{config_cores[host],
                  config_mem[host],
                  alloc_cores[host],
                  committed_mem[host],
                  quantized_heat[host],
                  &vcpus_per_level[std::size_t{host} * kLevels]};
}

void Rebalancer::PlanScratch::apply_move_cols(const core::VmSpec& spec,
                                              HostId from, HostId to) noexcept {
  const std::uint8_t ratio = spec.level.ratio();
  {
    core::VcpuCount& level = vcpus_per_level[std::size_t{from} * kLevels + ratio];
    const auto before = core::ceil_div<core::CoreCount>(level, ratio);
    level -= spec.vcpus;
    alloc_cores[from] += core::ceil_div<core::CoreCount>(level, ratio) - before;
    committed_mem[from] -= spec.mem_mib;
    --vm_count[from];
  }
  {
    core::VcpuCount& level = vcpus_per_level[std::size_t{to} * kLevels + ratio];
    const auto before = core::ceil_div<core::CoreCount>(level, ratio);
    level += spec.vcpus;
    alloc_cores[to] += core::ceil_div<core::CoreCount>(level, ratio) - before;
    committed_mem[to] += spec.mem_mib;
    ++vm_count[to];
  }
}

void Rebalancer::PlanScratch::move_vm(core::VmId vm, const core::VmSpec& spec,
                                      HostId from, HostId to) {
  apply_move_cols(spec, from, to);
  if (gained[to].empty()) {
    gained_list.push_back(to);
  }
  gained[to].emplace_back(vm, spec);
  undo.push_back(Undo{vm, spec, from, to});
}

void Rebalancer::PlanScratch::roll_back_to(std::size_t mark) {
  while (undo.size() > mark) {
    const Undo& last = undo.back();
    apply_move_cols(last.spec, last.to, last.from);
    gained[last.to].pop_back();  // LIFO: the entry this very move appended
    undo.pop_back();
  }
}

void Rebalancer::PlanScratch::collect_source_vms(const HostState& source) {
  source_vms.clear();
  for (const auto& [vm, spec] : source.vms()) {
    source_vms.emplace_back(vm, spec);
  }
  const auto& extra = gained[source.id()];
  source_vms.insert(source_vms.end(), extra.begin(), extra.end());
  std::ranges::sort(source_vms, {},
                    &std::pair<core::VmId, core::VmSpec>::first);
}

void Rebalancer::PlanScratch::mark_shifted(HostId host) {
  if (!shifted[host]) {
    shifted[host] = 1;
    shifted_list.push_back(host);
  }
}

// --- incremental passes -----------------------------------------------------

MigrationPlan Rebalancer::plan_incremental(const VCluster& cluster,
                                           std::size_t max_migrations) const {
  MigrationPlan plan;
  PlanScratch& s = scratch_;
  s.load(cluster.arena());
  const std::vector<HostState>& live = cluster.hosts();
  const std::size_t n = s.size();

  // Seed the lazy candidate min-heap with every non-empty host.
  for (HostId h = 0; h < n; ++h) {
    if (s.vm_count[h] > 0) {
      s.count_heap.push_back(PlanScratch::CountEntry{s.vm_count[h], h});
    }
  }
  std::ranges::make_heap(s.count_heap, PlanScratch::count_entry_after);

  while (plan.migrations.size() < max_migrations) {
    // Lazy-deletion pop: entries whose count moved on (or whose host was
    // already tried) are dropped as they surface. Committed drains only ever
    // *grow* a host's count — failed ones roll back to a count whose entry
    // is still heaped — so every untried non-empty host keeps a live entry
    // and the first valid top is exactly the naive scan's fewest-VMs
    // candidate, ties to the lowest id.
    std::optional<HostId> candidate;
    while (!s.count_heap.empty()) {
      const PlanScratch::CountEntry top = s.count_heap.front();
      std::ranges::pop_heap(s.count_heap, PlanScratch::count_entry_after);
      s.count_heap.pop_back();
      if (s.attempted[top.host] || s.emptied[top.host] ||
          s.vm_count[top.host] != top.count) {
        continue;
      }
      candidate = top.host;
      break;
    }
    if (!candidate) {
      break;  // nothing left to try
    }
    const HostId source = *candidate;
    s.attempted[source] = 1;
    if (s.vm_count[source] > max_migrations - plan.migrations.size()) {
      break;  // even the cheapest drain exceeds the budget
    }

    // A host drains as a source at most once and planning is the only
    // writer, so its membership is the live map plus whatever this pass
    // already moved in.
    s.collect_source_vms(live[source]);
    const std::size_t undo_mark = s.undo.size();
    s.drain.clear();
    bool drained = true;
    for (const auto& [vm, spec] : s.source_vms) {
      std::optional<HostId> best;
      double best_score = 0.0;
      for (HostId h = 0; h < static_cast<HostId>(n); ++h) {
        if (h == source || s.emptied[h] || !s.can_host(h, spec)) {
          continue;
        }
        const double score = scorer_->score(s.cols(h), spec);
        if (!best || score > best_score) {
          best = h;
          best_score = score;
        }
      }
      if (!best) {
        drained = false;
        break;
      }
      s.move_vm(vm, spec, source, *best);
      s.count_heap.push_back(PlanScratch::CountEntry{s.vm_count[*best], *best});
      std::ranges::push_heap(s.count_heap, PlanScratch::count_entry_after);
      s.drain.push_back(Migration{vm, source, *best});
    }
    if (!drained) {
      s.roll_back_to(undo_mark);  // undo the partial drain, try next host
      continue;
    }
    s.emptied[source] = 1;
    plan.migrations.insert(plan.migrations.end(), s.drain.begin(), s.drain.end());
    ++plan.hosts_emptied;
  }
  return plan;
}

MigrationPlan Rebalancer::plan_interference_incremental(
    const VCluster& cluster, const HeatIndex& index,
    const perf::ContentionModel& model, const InterferenceOptions& options) const {
  MigrationPlan plan;
  PlanScratch& s = scratch_;
  s.load(cluster.arena());
  const std::vector<HostState>& live = cluster.hosts();
  const auto& buckets = index.buckets();

  while (plan.migrations.size() < options.evictions_per_pass) {
    // Hottest untried UP host with >= 2 VMs. The few hosts this pass
    // already mutated (`shifted`) are overlaid from the scratch columns;
    // everyone else is streamed from the index, hottest bucket first. Raw
    // heats in bucket b span [b*w, (b+1)*w) and equal heats share a bucket,
    // so once some bucket yields an eligible unshifted host, no cooler
    // bucket can beat the running best — the scan stops there. The
    // comparators reproduce the naive ascending strict-> scan: higher heat
    // wins, ties to the lower id.
    std::optional<HostId> source;
    const auto eligible_source = [&s](HostId h) {
      return !s.attempted[h] && s.up(h) && s.vm_count[h] >= 2;
    };
    const auto hotter = [&s](HostId h, HostId best) {
      return s.heat[h] != s.heat[best] ? s.heat[h] > s.heat[best] : h < best;
    };
    for (const HostId h : s.shifted_list) {
      if (eligible_source(h) && (!source || hotter(h, *source))) {
        source = h;
      }
    }
    bool bucket_hit = false;
    for (auto it = buckets.rbegin(); it != buckets.rend() && !bucket_hit; ++it) {
      for (const HostId h : it->second) {
        if (s.shifted[h] || !eligible_source(h)) {
          continue;
        }
        bucket_hit = true;
        if (!source || hotter(h, *source)) {
          source = h;
        }
      }
    }
    if (!source) {
      break;
    }
    // Hottest-first: once the hottest candidate sits below the threshold
    // every other host does too.
    if (model.contention_inflation(s.heat[*source]) <= options.threshold) {
      break;
    }
    const HostId src = *source;
    s.attempted[src] = 1;
    ++plan.hot_hosts;

    // Heaviest contributor: max vcpus x mean usage, ascending-VmId ranking
    // keeps ties on the lowest id (collect_source_vms sorts).
    s.collect_source_vms(live[src]);
    std::optional<std::size_t> victim;
    double victim_demand = 0.0;
    for (std::size_t i = 0; i < s.source_vms.size(); ++i) {
      const auto& [vm, spec] = s.source_vms[i];
      const double demand = static_cast<double>(spec.vcpus) *
                            workload::UsageSignal(vm, spec.usage).mean();
      if (!victim || demand > victim_demand) {
        victim = i;
        victim_demand = demand;
      }
    }
    const core::VmId victim_vm = s.source_vms[*victim].first;
    const core::VmSpec victim_spec = s.source_vms[*victim].second;

    // Coolest strictly-cooler UP host that fits the victim: same overlay,
    // coolest bucket first, ties to the lowest id via the symmetric
    // comparator; the stop rule mirrors the source scan (no hotter bucket
    // can undercut a hit).
    const double src_heat = s.heat[src];
    std::optional<HostId> target;
    const auto eligible_target = [&](HostId h) {
      return h != src && s.heat[h] < src_heat && s.can_host(h, victim_spec);
    };
    const auto cooler = [&s](HostId h, HostId best) {
      return s.heat[h] != s.heat[best] ? s.heat[h] < s.heat[best] : h < best;
    };
    for (const HostId h : s.shifted_list) {
      if (eligible_target(h) && (!target || cooler(h, *target))) {
        target = h;
      }
    }
    bucket_hit = false;
    for (auto it = buckets.begin(); it != buckets.end() && !bucket_hit; ++it) {
      for (const HostId h : it->second) {
        if (s.shifted[h] || !eligible_target(h)) {
          continue;
        }
        bucket_hit = true;
        if (!target || cooler(h, *target)) {
          target = h;
        }
      }
    }
    if (!target) {
      continue;  // hottest host is stuck; try the next-hottest
    }

    // Move the victim in the scratch columns and shift its expected demand
    // share between the two heat entries (same clamp as HostState::set_heat;
    // scratch buckets are not maintained — nothing in this pass reads them).
    s.move_vm(victim_vm, victim_spec, src, *target);
    const double src_cores = static_cast<double>(s.config_cores[src]);
    const double dst_cores = static_cast<double>(s.config_cores[*target]);
    s.heat[src] = std::max(s.heat[src] - victim_demand / src_cores, 0.0);
    s.heat[*target] =
        std::max(s.heat[*target] + victim_demand / dst_cores, 0.0);
    s.mark_shifted(src);
    s.mark_shifted(*target);
    plan.migrations.push_back(Migration{victim_vm, src, *target});
  }
  return plan;
}

std::size_t Rebalancer::apply_plan(VCluster& cluster, const MigrationPlan& plan) {
  std::size_t applied = 0;
  for (const Migration& m : plan.migrations) {
    if (cluster.migrate(m.vm, m.to)) {
      ++applied;
    }
  }
  return applied;
}

}  // namespace slackvm::sched
