#include "sched/rebalancer.hpp"

#include <algorithm>
#include <optional>

#include "core/error.hpp"
#include "perf/contention.hpp"
#include "workload/usage.hpp"

namespace slackvm::sched {

void InterferenceOptions::validate() const {
  if (!enabled) {
    return;
  }
  SLACKVM_ASSERT(heat_interval > 0.0);
  SLACKVM_ASSERT(heat_alpha > 0.0 && heat_alpha <= 1.0);
  SLACKVM_ASSERT(heat_bucket > 0.0);
  SLACKVM_ASSERT(heat_weight >= 0.0);
  SLACKVM_ASSERT(threshold >= 1.0);
  SLACKVM_ASSERT(evictions_per_pass > 0);
}

Rebalancer::Rebalancer(std::unique_ptr<Scorer> scorer) : scorer_(std::move(scorer)) {
  if (!scorer_) {
    scorer_ = std::make_unique<ProgressScorer>();
  }
}

MigrationPlan Rebalancer::plan(const VCluster& cluster,
                               std::size_t max_migrations) const {
  MigrationPlan plan;
  // Work on a scratch copy of the host states. Each host is attempted as a
  // drain source at most once, and emptied hosts never receive migrations —
  // otherwise two light hosts would ping-pong their VMs forever.
  std::vector<HostState> hosts = cluster.hosts();
  std::vector<bool> attempted(hosts.size(), false);
  std::vector<bool> emptied(hosts.size(), false);

  while (plan.migrations.size() < max_migrations) {
    // Pick the untried non-empty host with the fewest VMs — the cheapest
    // host to empty entirely.
    std::optional<std::size_t> candidate;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (hosts[h].empty() || attempted[h]) {
        continue;
      }
      if (!candidate || hosts[h].vm_count() < hosts[*candidate].vm_count()) {
        candidate = h;
      }
    }
    if (!candidate) {
      break;  // nothing left to try
    }
    attempted[*candidate] = true;
    HostState& source = hosts[*candidate];
    if (source.vm_count() > max_migrations - plan.migrations.size()) {
      break;  // even the cheapest drain exceeds the budget
    }

    // Tentatively migrate every VM of the source, best target first.
    std::vector<Migration> drain;
    std::vector<HostState> snapshot = hosts;  // rollback point
    bool drained = true;
    // Deterministic VM order.
    std::vector<core::VmId> vms;
    for (const auto& [id, spec] : source.vms()) {
      vms.push_back(id);
    }
    std::ranges::sort(vms);
    for (core::VmId vm : vms) {
      const core::VmSpec spec = source.spec_of(vm);
      std::optional<std::size_t> best;
      double best_score = 0.0;
      for (std::size_t h = 0; h < hosts.size(); ++h) {
        if (h == *candidate || emptied[h] || !hosts[h].can_host(spec)) {
          continue;
        }
        const double score = scorer_->score(hosts[h], spec);
        if (!best || score > best_score) {
          best = h;
          best_score = score;
        }
      }
      if (!best) {
        drained = false;
        break;
      }
      source.remove(vm);
      hosts[*best].add(vm, spec);
      drain.push_back(Migration{vm, static_cast<HostId>(*candidate),
                                static_cast<HostId>(*best)});
    }

    if (!drained) {
      hosts = std::move(snapshot);  // undo the partial drain, try next host
      continue;
    }
    emptied[*candidate] = true;
    plan.migrations.insert(plan.migrations.end(), drain.begin(), drain.end());
    ++plan.hosts_emptied;
  }
  return plan;
}

MigrationPlan Rebalancer::plan_interference(const VCluster& cluster,
                                            const perf::ContentionModel& model,
                                            const InterferenceOptions& options) const {
  MigrationPlan plan;
  if (!options.enabled) {
    return plan;
  }
  // Scratch copy: planned evictions adjust the copies' heat so one pass
  // spreads its moves instead of dogpiling the coolest host. Each host is
  // considered as a polluter source at most once per pass.
  std::vector<HostState> hosts = cluster.hosts();
  std::vector<bool> attempted(hosts.size(), false);

  while (plan.migrations.size() < options.evictions_per_pass) {
    // Hottest untried UP host with at least two VMs (evicting the only VM
    // of a host just moves the whole load somewhere cooler — polluter
    // separation needs co-located victims to split).
    std::optional<std::size_t> source;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (attempted[h] || hosts[h].phase() != HostPhase::kUp ||
          hosts[h].vm_count() < 2) {
        continue;
      }
      if (!source || hosts[h].heat() > hosts[*source].heat()) {
        source = h;  // strict > keeps ties on the lowest id
      }
    }
    if (!source) {
      break;
    }
    // The fleet is scanned hottest-first, so once the hottest candidate sits
    // below the threshold every other host does too.
    if (model.contention_inflation(hosts[*source].heat()) <= options.threshold) {
      break;
    }
    attempted[*source] = true;
    ++plan.hot_hosts;
    HostState& src = hosts[*source];

    // Heaviest contributor: max expected physical-core demand, i.e. vCPUs
    // weighted by the VM's long-run mean usage. Deterministic: candidates
    // are ranked in ascending VmId order and replaced only on strictly
    // higher demand, so ties keep the lowest id.
    std::vector<core::VmId> vms;
    vms.reserve(src.vm_count());
    for (const auto& [id, spec] : src.vms()) {
      vms.push_back(id);
    }
    std::ranges::sort(vms);
    std::optional<core::VmId> victim;
    double victim_demand = 0.0;
    for (const core::VmId vm : vms) {
      const core::VmSpec& spec = src.spec_of(vm);
      const double demand = static_cast<double>(spec.vcpus) *
                            workload::UsageSignal(vm, spec.usage).mean();
      if (!victim || demand > victim_demand) {
        victim = vm;
        victim_demand = demand;
      }
    }
    const core::VmSpec spec = src.spec_of(*victim);

    // Coolest strictly-cooler UP host that fits the victim; ties to the
    // lowest id via strict <.
    std::optional<std::size_t> target;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (h == *source || hosts[h].heat() >= src.heat() ||
          !hosts[h].can_host(spec)) {
        continue;
      }
      if (!target || hosts[h].heat() < hosts[*target].heat()) {
        target = h;
      }
    }
    if (!target) {
      continue;  // hottest host is stuck; try the next-hottest
    }

    // Move the victim in scratch and shift its expected demand share
    // between the two heat columns (the EWMA re-converges on the real
    // values at the next heat refresh; this only guides within-pass
    // decisions).
    src.remove(*victim);
    hosts[*target].add(*victim, spec);
    const double src_cores = static_cast<double>(src.config().cores);
    const double dst_cores = static_cast<double>(hosts[*target].config().cores);
    src.set_heat(src.heat() - victim_demand / src_cores, options.heat_bucket);
    hosts[*target].set_heat(hosts[*target].heat() + victim_demand / dst_cores,
                            options.heat_bucket);
    plan.migrations.push_back(Migration{*victim, static_cast<HostId>(*source),
                                        static_cast<HostId>(*target)});
  }
  return plan;
}

std::size_t Rebalancer::apply_plan(VCluster& cluster, const MigrationPlan& plan) {
  std::size_t applied = 0;
  for (const Migration& m : plan.migrations) {
    if (cluster.migrate(m.vm, m.to)) {
      ++applied;
    }
  }
  return applied;
}

}  // namespace slackvm::sched
