// Incremental candidate index: O(log N) host selection for VCluster.
//
// The naive global scheduler (PlacementPolicy::select) rescans — and for
// score policies rescores — every open PM on every placement, so a trace
// replay costs O(VMs x hosts). Production placement services precompute
// feasibility structures instead (cf. Gudkov et al., "Efficient calculation
// of available space for multi-NUMA virtual machines"). This index is that
// fix for the repo's hottest path, built on three invariants:
//
//  1. *Epoch protocol* — HostState::epoch() is bumped by every add/remove,
//     so any cached per-host datum tagged with the epoch it was computed at
//     can be validated in O(1) without touching the host's VM map.
//  2. *Spec-class interning* — the workload catalogs emit a small closed
//     set of distinct (vcpus, mem_mib, level) shapes; each gets a dense
//     SpecClassId and its own candidate structure. UsageClass is excluded
//     on purpose: neither the capacity filter nor any in-tree Scorer reads
//     it, so two specs differing only in usage are placement-equivalent.
//  3. *Lazy deletion* — mutations only append the host id to a dirty log
//     (O(1)); each class replays the log tail on its next select and stale
//     heap entries (epoch mismatch) are discarded when they surface at the
//     top. Selection is therefore amortized O(dirty hosts + log N).
//
// The index answers exactly the built-in capacity-filtered question the
// naive policies answer; extra hard-constraint Filters are not indexed —
// VCluster bypasses the index entirely while one is installed.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/vm.hpp"
#include "sched/host_arena.hpp"
#include "sched/host_state.hpp"
#include "sched/scorer.hpp"

namespace slackvm::sched {

/// Dense id of a distinct (vcpus, mem_mib, level) request shape.
using SpecClassId = std::uint32_t;

class PlacementIndex {
 public:
  enum class Mode {
    kFirstFit,  ///< lowest feasible host id (ordered feasibility set)
    kScore,     ///< argmax cached score, ties to lowest id (lazy max-heap)
  };

  /// `scorer` is required (and only read) in kScore mode; it must be pure
  /// in (host state, spec) — true of every in-tree Scorer. The pointer is
  /// borrowed and must outlive the index.
  PlacementIndex(Mode mode, const Scorer* scorer);

  /// Record a host mutation (VM added/removed, host opened): O(1) append
  /// to the dirty log consumed by the next select(). Every epoch bump of a
  /// host owned by the cluster must be reported here, including no-op
  /// round-trips (a rejected migration removes and re-adds).
  void touch(HostId host);

  /// The host the matching naive policy scan would pick for `spec`, or
  /// nullopt when no open host admits it. `hosts` must be the cluster's
  /// live host vector (ids == indices). Amortized O(dirty + log N). When
  /// `arena` (the cluster's SoA mirror of the same hosts) is passed,
  /// feasibility checks stream over its columns instead of the host
  /// objects; the mirror is exact, so the selection is identical.
  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const HostArena* arena = nullptr);

  /// Replay the whole dirty log into every spec class and drop it — the
  /// compact_log body without its amortization threshold. VCluster batches
  /// this at shard barriers so per-event mutations stay O(1) appends while
  /// the log never outlives a barrier window.
  void sync_all(std::span<const HostState> hosts, const HostArena* arena = nullptr);

  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t spec_class_count() const noexcept { return ids_.size(); }

 private:
  /// Cached score heap entry; valid while hosts[host].epoch() == epoch.
  struct Entry {
    double score = 0.0;
    HostId host = 0;
    std::uint64_t epoch = 0;
  };

  struct Key {
    core::VcpuCount vcpus;
    core::MemMib mem_mib;
    std::uint8_t ratio;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  struct PerClass {
    core::VmSpec spec;        ///< representative shape (usage irrelevant)
    std::size_t cursor = 0;   ///< first unconsumed dirty-log entry
    std::set<HostId> feasible;                          ///< kFirstFit
    std::vector<Entry> heap;                            ///< kScore max-heap
    std::unordered_map<HostId, std::uint64_t> pushed;   ///< newest epoch pushed
  };

  /// Max-heap order matching the naive ScorePolicy scan: that scan keeps
  /// the first strictly-greater score while iterating ids in ascending
  /// order, so the winner is the lowest id among the maximal scores. Score
  /// doubles compare exactly — both paths run the identical Scorer on the
  /// identical HostState, so equal means bitwise equal.
  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    return a.score != b.score ? a.score < b.score : a.host > b.host;
  }

  [[nodiscard]] PerClass& class_for(std::span<const HostState> hosts,
                                    const core::VmSpec& spec, const HostArena* arena);
  void sync(PerClass& pc, std::span<const HostState> hosts, const HostArena* arena);
  void update_host(PerClass& pc, const HostState& host, const HostArena* arena);
  void compact_log(std::span<const HostState> hosts, const HostArena* arena);
  void compact_heap(PerClass& pc, std::span<const HostState> hosts);

  Mode mode_;
  const Scorer* scorer_;
  std::unordered_map<Key, SpecClassId, KeyHash> ids_;
  std::vector<PerClass> classes_;
  std::vector<HostId> dirty_log_;
};

}  // namespace slackvm::sched
