// Placement policies: filter + select, the final stage of a global scheduler.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/rng.hpp"
#include "sched/filter.hpp"
#include "sched/host_state.hpp"
#include "sched/scorer.hpp"

namespace slackvm::sched {

/// Selects a host for a VM from an ordered candidate list. Candidates that
/// fail the built-in capacity filter — or the optional extra hard-constraint
/// filter (paper §II-B) — are skipped by every policy.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Returns the chosen host id, or std::nullopt when no candidate fits.
  [[nodiscard]] virtual std::optional<HostId> select(std::span<const HostState> hosts,
                                                     const core::VmSpec& spec,
                                                     const Filter* extra = nullptr) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Built-in admission: capacity plus the optional extra filter.
  [[nodiscard]] static bool admits(const HostState& host, const core::VmSpec& spec,
                                   const Filter* extra) {
    return host.can_host(spec) && (extra == nullptr || extra->admits(host, spec));
  }
};

/// First-Fit: the first (lowest-index) host that fits — the packing baseline
/// used throughout the paper's evaluation (§VII-B).
class FirstFitPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "first-fit"; }
};

/// Score-based selection: the feasible host with the strictly highest score;
/// ties break on the lowest host index, matching First-Fit's determinism.
class ScorePolicy final : public PlacementPolicy {
 public:
  explicit ScorePolicy(std::unique_ptr<Scorer> scorer);

  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::unique_ptr<Scorer> scorer_;
};

/// Uniform random choice among feasible hosts (seeded, deterministic) — the
/// weakest sensible baseline for the policy ablation.
class RandomPolicy final : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 42);

  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "random-fit"; }

 private:
  mutable core::SplitMix64 rng_;
};

/// Factory helpers for the experiment harness.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_first_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_progress_policy();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_best_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_worst_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_random_fit(std::uint64_t seed = 42);

/// The production-shaped SlackVM policy (paper §VII-B2: "providers may guide
/// workload packing by adjusting the weight of our metric in their scoring
/// mechanism, alongside their other criteria"): the Algorithm-2 progress
/// score blended with a light best-fit packing pressure that breaks
/// near-ties toward fuller PMs.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_slackvm_policy(
    double packing_weight = 0.25);

}  // namespace slackvm::sched
