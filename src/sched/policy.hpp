// Placement policies: filter + select, the final stage of a global scheduler.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/rng.hpp"
#include "sched/filter.hpp"
#include "sched/host_state.hpp"
#include "sched/scorer.hpp"

namespace slackvm::sched {

/// Selects a host for a VM from an ordered candidate list. Candidates that
/// fail the built-in capacity filter — or the optional extra hard-constraint
/// filter (paper §II-B) — are skipped by every policy.
///
/// select() is the *naive reference path*: a full linear scan over the
/// candidate list. VCluster's incremental PlacementIndex answers the same
/// question in O(log N) for policies that advertise an IndexMode; the
/// differential tests (tests/sched_placement_index_test.cpp) assert both
/// paths pick the identical host for every placement.
class PlacementPolicy {
 public:
  /// How sched::PlacementIndex can serve this policy: kNone — the policy
  /// needs the full candidate list each time (e.g. RandomPolicy), the index
  /// is bypassed; kFirstFit — lowest feasible id; kScore — argmax of
  /// index_scorer() with ties to the lowest id.
  enum class IndexMode { kNone, kFirstFit, kScore };

  virtual ~PlacementPolicy() = default;

  /// Returns the chosen host id, or std::nullopt when no candidate fits.
  /// Tie-breaking contract (guaranteed, relied upon by the index): when
  /// several feasible hosts are equally preferred, the lowest HostId wins.
  [[nodiscard]] virtual std::optional<HostId> select(std::span<const HostState> hosts,
                                                     const core::VmSpec& spec,
                                                     const Filter* extra = nullptr) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual IndexMode index_mode() const noexcept { return IndexMode::kNone; }

  /// Scorer the index caches per host in kScore mode; must be pure in
  /// (host state, spec). nullptr unless index_mode() == kScore.
  [[nodiscard]] virtual const Scorer* index_scorer() const noexcept { return nullptr; }

 protected:
  /// Built-in admission: capacity plus the optional extra filter.
  [[nodiscard]] static bool admits(const HostState& host, const core::VmSpec& spec,
                                   const Filter* extra) {
    return host.can_host(spec) && (extra == nullptr || extra->admits(host, spec));
  }
};

/// First-Fit: the first (lowest-index) host that fits — the packing baseline
/// used throughout the paper's evaluation (§VII-B).
class FirstFitPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "first-fit"; }
  [[nodiscard]] IndexMode index_mode() const noexcept override {
    return IndexMode::kFirstFit;
  }
};

/// Score-based selection: the feasible host with the strictly highest score;
/// ties break on the lowest host index (the scan only replaces the incumbent
/// on a *strictly* greater score), matching First-Fit's determinism. The
/// indexed path orders its heap by (score desc, id asc) to guarantee the
/// same winner; tests/sched_policy_test.cpp pins the contract.
class ScorePolicy final : public PlacementPolicy {
 public:
  explicit ScorePolicy(std::unique_ptr<Scorer> scorer);

  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] IndexMode index_mode() const noexcept override {
    return IndexMode::kScore;
  }
  [[nodiscard]] const Scorer* index_scorer() const noexcept override {
    return scorer_.get();
  }

 private:
  std::unique_ptr<Scorer> scorer_;
};

/// Uniform random choice among feasible hosts (seeded, deterministic) — the
/// weakest sensible baseline for the policy ablation.
class RandomPolicy final : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 42);

  [[nodiscard]] std::optional<HostId> select(std::span<const HostState> hosts,
                                             const core::VmSpec& spec,
                                             const Filter* extra = nullptr) const override;
  [[nodiscard]] std::string name() const override { return "random-fit"; }

 private:
  mutable core::SplitMix64 rng_;
};

/// Factory helpers for the experiment harness.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_first_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_progress_policy();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_best_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_worst_fit();
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_random_fit(std::uint64_t seed = 42);

/// Interference-aware placement: Algorithm 2's progress score stacked with a
/// penalty on the host's quantized heat (scorer.hpp InterferenceScorer).
/// Serves the index in kScore mode like every other ScorePolicy.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_interference_policy(
    double heat_weight = 1.0);

/// The production-shaped SlackVM policy (paper §VII-B2: "providers may guide
/// workload packing by adjusting the weight of our metric in their scoring
/// mechanism, alongside their other criteria"): the Algorithm-2 progress
/// score blended with a light best-fit packing pressure that breaks
/// near-ties toward fuller PMs.
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_slackvm_policy(
    double packing_weight = 0.25);

}  // namespace slackvm::sched
