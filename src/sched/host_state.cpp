#include "sched/host_state.hpp"

#include "core/error.hpp"

namespace slackvm::sched {

const char* to_string(HostPhase phase) noexcept {
  switch (phase) {
    case HostPhase::kUp:
      return "up";
    case HostPhase::kDraining:
      return "draining";
    case HostPhase::kFailed:
      return "failed";
  }
  return "?";
}

HostState::HostState(HostId id, core::Resources config, double mem_oversub)
    : id_(id), config_(config), mem_oversub_(mem_oversub) {
  SLACKVM_ASSERT(config.cores > 0 && config.mem_mib > 0);
  SLACKVM_ASSERT(mem_oversub >= 1.0);
}

core::CoreCount HostState::cores_with(const core::VmSpec& spec) const noexcept {
  // Only the spec's own vNode changes, so the incremental ceil-rounded
  // demand is O(1) instead of a sweep over all levels.
  const std::uint8_t ratio = spec.level.ratio();
  const core::VcpuCount vcpus = vcpus_per_level_[ratio];
  return alloc_cores_ - core::ceil_div<core::CoreCount>(vcpus, ratio) +
         core::ceil_div<core::CoreCount>(vcpus + spec.vcpus, ratio);
}

bool HostState::fits(const core::VmSpec& spec) const noexcept {
  if (committed_mem_ + spec.mem_mib > mem_capacity()) {
    return false;
  }
  return cores_with(spec) <= config_.cores;
}

void HostState::add(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!vms_.contains(id));
  SLACKVM_ASSERT(fits(spec));
  vms_.emplace(id, spec);
  vcpus_per_level_[spec.level.ratio()] += spec.vcpus;
  committed_mem_ += spec.mem_mib;
  recompute_alloc_cores();
  ++epoch_;
}

void HostState::remove(core::VmId id) {
  const auto it = vms_.find(id);
  if (it == vms_.end()) {
    SLACKVM_THROW("HostState::remove: unknown VM");
  }
  const core::VmSpec& spec = it->second;
  vcpus_per_level_[spec.level.ratio()] -= spec.vcpus;
  committed_mem_ -= spec.mem_mib;
  vms_.erase(it);
  recompute_alloc_cores();
  ++epoch_;
}

void HostState::reserve(core::VmId id, const core::VmSpec& spec) {
  SLACKVM_ASSERT(!reservations_.contains(id));
  SLACKVM_ASSERT(fits(spec));
  reservations_.emplace(id, spec);
  vcpus_per_level_[spec.level.ratio()] += spec.vcpus;
  committed_mem_ += spec.mem_mib;
  recompute_alloc_cores();
  ++epoch_;
}

void HostState::release_reservation(core::VmId id) {
  const auto it = reservations_.find(id);
  if (it == reservations_.end()) {
    SLACKVM_THROW("HostState::release_reservation: unknown VM");
  }
  const core::VmSpec& spec = it->second;
  vcpus_per_level_[spec.level.ratio()] -= spec.vcpus;
  committed_mem_ -= spec.mem_mib;
  reservations_.erase(it);
  recompute_alloc_cores();
  ++epoch_;
}

core::VcpuCount HostState::committed_vcpus(core::OversubLevel level) const noexcept {
  return vcpus_per_level_[level.ratio()];
}

std::map<core::OversubLevel, core::VcpuCount> HostState::level_commitments() const {
  std::map<core::OversubLevel, core::VcpuCount> out;
  for (std::uint8_t ratio = 1; ratio <= core::OversubLevel::kMaxRatio; ++ratio) {
    if (vcpus_per_level_[ratio] > 0) {
      out.emplace(core::OversubLevel{ratio}, vcpus_per_level_[ratio]);
    }
  }
  return out;
}

const core::VmSpec& HostState::spec_of(core::VmId id) const {
  const auto it = vms_.find(id);
  if (it == vms_.end()) {
    SLACKVM_THROW("HostState::spec_of: unknown VM");
  }
  return it->second;
}

void HostState::recompute_alloc_cores() noexcept {
  core::CoreCount total = 0;
  for (std::uint8_t ratio = 1; ratio <= core::OversubLevel::kMaxRatio; ++ratio) {
    if (vcpus_per_level_[ratio] > 0) {
      total += core::ceil_div<core::CoreCount>(vcpus_per_level_[ratio], ratio);
    }
  }
  alloc_cores_ = total;
}

}  // namespace slackvm::sched
