// Live-migration rebalancer (the future work of paper §VII-B2a:
// "considering live migration to further balance the packing of our vNodes
// is left as a future work").
//
// Strategy: drain-and-consolidate. The rebalancer repeatedly tries to empty
// the host with the fewest VMs by migrating each of its VMs to another open
// host (chosen by a scorer — the Algorithm-2 progress score by default). A
// host is drained atomically: if any of its VMs has no feasible target the
// whole drain is abandoned, so the plan never leaves a host half-emptied
// for nothing. Planning runs against a copy of the cluster state; the
// caller applies the plan with apply_plan().
// A second, orthogonal pass — plan_interference — closes the QoS loop: it
// picks the hottest host whose contention inflation (perf::ContentionModel
// applied to the host's heat EWMA) exceeds a threshold and evicts the
// heaviest contributor toward a cool host (Angelou et al.'s
// interference-aware rescheduling cycle: monitor → decide → live-migrate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/scorer.hpp"
#include "sched/vcluster.hpp"

namespace slackvm::perf {
class ContentionModel;
}  // namespace slackvm::perf

namespace slackvm::sched {

/// One planned live migration.
struct Migration {
  core::VmId vm{};
  HostId from = 0;
  HostId to = 0;
};

struct MigrationPlan {
  std::vector<Migration> migrations;
  std::size_t hosts_emptied = 0;
  /// Hosts found above the interference threshold (plan_interference only).
  std::size_t hot_hosts = 0;

  [[nodiscard]] bool empty() const noexcept { return migrations.empty(); }
};

/// Knobs of the interference loop: how heat is accumulated and quantized
/// (consumed by sim::update_cluster_heat and HostState::set_heat), how the
/// InterferenceScorer weighs it, and when the polluter pass fires. Lives
/// here so sim::RebalanceOptions and the scenario/CLI layers share one
/// source of truth.
struct InterferenceOptions {
  bool enabled = false;
  /// Seconds between heat EWMA refreshes (replay schedules one per cluster).
  double heat_interval = 900.0;
  /// EWMA smoothing factor in (0, 1]: heat' = alpha*q + (1-alpha)*heat.
  double heat_alpha = 0.3;
  /// Quantization bucket width (epoch bumps only on bucket crossings).
  double heat_bucket = 0.25;
  /// InterferenceScorer penalty weight per unit of quantized heat.
  double heat_weight = 4.0;
  /// Polluter pass fires on hosts whose contention_inflation(heat) exceeds
  /// this (1.0 == no inflation; Table IV's 2:1 operating point is ~1.26).
  double threshold = 1.25;
  /// Max polluter evictions planned per rebalance pass.
  std::size_t evictions_per_pass = 4;

  /// Validate the knobs (throws core::SlackError); no-op when disabled.
  void validate() const;
};

class Rebalancer {
 public:
  /// Uses the given scorer to pick migration targets; defaults to the
  /// Algorithm-2 progress scorer.
  explicit Rebalancer(std::unique_ptr<Scorer> scorer = nullptr);

  /// Plan up to `max_migrations` migrations on the cluster's current state.
  /// The cluster is not modified.
  ///
  /// Runs the incremental PlanScratch path (columnar copy of the arena,
  /// per-attempt undo logs, lazy vm-count min-heap — allocation-free once
  /// warm) when the cluster's index machinery is enabled and the scorer
  /// supports columnar scoring; otherwise the verbatim naive pass below.
  /// Both produce the bit-identical plan (differential-tested).
  [[nodiscard]] MigrationPlan plan(const VCluster& cluster,
                                   std::size_t max_migrations) const;

  /// The original O(fleet-copy) pass, kept verbatim as the differential
  /// reference for plan() (the --index=off escape hatch also lands here).
  [[nodiscard]] MigrationPlan plan_naive(const VCluster& cluster,
                                         std::size_t max_migrations) const;

  /// Polluter-detection pass. Repeatedly picks the hottest untried UP host
  /// with >= 2 VMs whose contention inflation model(heat) exceeds
  /// options.threshold, and plans the eviction of its heaviest contributor
  /// (max expected core demand: vcpus x mean usage, ties to the lowest
  /// VmId) toward the coolest UP host that fits it and is strictly cooler
  /// than the source (ties to the lowest HostId). Scratch heats are
  /// adjusted after each planned move so one pass does not dogpile a single
  /// cool target. The cluster is not modified; fully deterministic.
  ///
  /// Hottest/coolest selection streams the cluster's HeatIndex buckets when
  /// available (hosts this pass already shifted are overlaid from the
  /// scratch columns); with the index disabled the verbatim naive scan
  /// below runs. Both produce the bit-identical plan.
  [[nodiscard]] MigrationPlan plan_interference(
      const VCluster& cluster, const perf::ContentionModel& model,
      const InterferenceOptions& options) const;

  /// The original O(fleet-copy) polluter pass, kept verbatim as the
  /// differential reference for plan_interference.
  [[nodiscard]] MigrationPlan plan_interference_naive(
      const VCluster& cluster, const perf::ContentionModel& model,
      const InterferenceOptions& options) const;

  /// Execute a plan. Returns the number of migrations actually performed
  /// (a migration may be skipped if the cluster changed since planning).
  static std::size_t apply_plan(VCluster& cluster, const MigrationPlan& plan);

 private:
  /// Reusable columnar planning state. One pass copies the arena columns in
  /// (vector assigns into retained capacity — no allocations once warm) and
  /// plans against them; rollback replays a per-attempt undo log instead of
  /// re-copying the fleet. `gained` tracks VMs planning moved *onto* a host
  /// so source enumeration stays live-map ∪ gained (a host is drained as a
  /// source at most once, so nothing ever needs to be subtracted).
  struct PlanScratch {
    static constexpr std::size_t kLevels = HostArena::kLevels;

    /// One tentative move, reversed in LIFO order on a failed drain.
    struct Undo {
      core::VmId vm{};
      core::VmSpec spec;
      HostId from = 0;
      HostId to = 0;
    };
    /// Lazy min-heap entry: valid while vm_count[host] == count.
    struct CountEntry {
      std::uint32_t count = 0;
      HostId host = 0;
    };

    // Columns copied from the arena at the top of every pass.
    std::vector<std::uint8_t> phase;
    std::vector<core::CoreCount> alloc_cores;
    std::vector<core::MemMib> committed_mem;
    std::vector<core::MemMib> mem_capacity;
    std::vector<core::CoreCount> config_cores;
    std::vector<core::MemMib> config_mem;
    std::vector<std::uint32_t> vm_count;
    std::vector<double> heat;
    std::vector<double> quantized_heat;
    std::vector<core::VcpuCount> vcpus_per_level;  // flattened, kLevels/host

    // Per-pass planning state (capacity reused across passes).
    std::vector<std::uint8_t> attempted;
    std::vector<std::uint8_t> emptied;
    std::vector<std::uint8_t> shifted;  ///< heat/cols diverged from the index view
    std::vector<HostId> shifted_list;
    std::vector<std::vector<std::pair<core::VmId, core::VmSpec>>> gained;
    std::vector<HostId> gained_list;  ///< hosts with non-empty gained entries
    std::vector<std::pair<core::VmId, core::VmSpec>> source_vms;
    std::vector<Migration> drain;
    std::vector<Undo> undo;
    std::vector<CountEntry> count_heap;

    /// Min-heap "after" relation: lowest (count, host) surfaces first —
    /// exactly the naive scan's fewest-VMs-ties-to-lowest-id candidate.
    static bool count_entry_after(const CountEntry& a,
                                  const CountEntry& b) noexcept {
      return a.count != b.count ? a.count > b.count : a.host > b.host;
    }

    void load(const HostArena& arena);
    [[nodiscard]] std::size_t size() const noexcept { return phase.size(); }
    [[nodiscard]] bool up(HostId host) const noexcept {
      return static_cast<HostPhase>(phase[host]) == HostPhase::kUp;
    }
    /// HostState::can_host from the columns (same rule as HostArena).
    [[nodiscard]] bool can_host(HostId host, const core::VmSpec& spec) const noexcept;
    [[nodiscard]] HostCols cols(HostId host) const noexcept;
    /// Shift one spec between two hosts' columns (the exact incremental
    /// integer-core arithmetic of HostState::add/remove).
    void apply_move_cols(const core::VmSpec& spec, HostId from, HostId to) noexcept;
    /// Apply one tentative move to the columns + gained lists; logs an Undo.
    void move_vm(core::VmId vm, const core::VmSpec& spec, HostId from, HostId to);
    /// Reverse every move logged past `mark`, restoring columns and gained.
    void roll_back_to(std::size_t mark);
    /// Live-map ∪ gained membership of `source`, ascending VmId.
    void collect_source_vms(const HostState& source);
    void mark_shifted(HostId host);
  };

  [[nodiscard]] MigrationPlan plan_incremental(const VCluster& cluster,
                                               std::size_t max_migrations) const;
  [[nodiscard]] MigrationPlan plan_interference_incremental(
      const VCluster& cluster, const HeatIndex& index,
      const perf::ContentionModel& model, const InterferenceOptions& options) const;

  std::unique_ptr<Scorer> scorer_;
  /// Planning never mutates the cluster, so Rebalancer stays const at the
  /// call sites; the scratch is a per-pass cache. Not synchronized: replay()
  /// owns one serial Rebalancer and every shard owns its own, so a scratch
  /// is only ever used by one thread.
  mutable PlanScratch scratch_;
};

}  // namespace slackvm::sched
