// Live-migration rebalancer (the future work of paper §VII-B2a:
// "considering live migration to further balance the packing of our vNodes
// is left as a future work").
//
// Strategy: drain-and-consolidate. The rebalancer repeatedly tries to empty
// the host with the fewest VMs by migrating each of its VMs to another open
// host (chosen by a scorer — the Algorithm-2 progress score by default). A
// host is drained atomically: if any of its VMs has no feasible target the
// whole drain is abandoned, so the plan never leaves a host half-emptied
// for nothing. Planning runs against a copy of the cluster state; the
// caller applies the plan with apply_plan().
// A second, orthogonal pass — plan_interference — closes the QoS loop: it
// picks the hottest host whose contention inflation (perf::ContentionModel
// applied to the host's heat EWMA) exceeds a threshold and evicts the
// heaviest contributor toward a cool host (Angelou et al.'s
// interference-aware rescheduling cycle: monitor → decide → live-migrate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/scorer.hpp"
#include "sched/vcluster.hpp"

namespace slackvm::perf {
class ContentionModel;
}  // namespace slackvm::perf

namespace slackvm::sched {

/// One planned live migration.
struct Migration {
  core::VmId vm{};
  HostId from = 0;
  HostId to = 0;
};

struct MigrationPlan {
  std::vector<Migration> migrations;
  std::size_t hosts_emptied = 0;
  /// Hosts found above the interference threshold (plan_interference only).
  std::size_t hot_hosts = 0;

  [[nodiscard]] bool empty() const noexcept { return migrations.empty(); }
};

/// Knobs of the interference loop: how heat is accumulated and quantized
/// (consumed by sim::update_cluster_heat and HostState::set_heat), how the
/// InterferenceScorer weighs it, and when the polluter pass fires. Lives
/// here so sim::RebalanceOptions and the scenario/CLI layers share one
/// source of truth.
struct InterferenceOptions {
  bool enabled = false;
  /// Seconds between heat EWMA refreshes (replay schedules one per cluster).
  double heat_interval = 900.0;
  /// EWMA smoothing factor in (0, 1]: heat' = alpha*q + (1-alpha)*heat.
  double heat_alpha = 0.3;
  /// Quantization bucket width (epoch bumps only on bucket crossings).
  double heat_bucket = 0.25;
  /// InterferenceScorer penalty weight per unit of quantized heat.
  double heat_weight = 4.0;
  /// Polluter pass fires on hosts whose contention_inflation(heat) exceeds
  /// this (1.0 == no inflation; Table IV's 2:1 operating point is ~1.26).
  double threshold = 1.25;
  /// Max polluter evictions planned per rebalance pass.
  std::size_t evictions_per_pass = 4;

  /// Validate the knobs (throws core::SlackError); no-op when disabled.
  void validate() const;
};

class Rebalancer {
 public:
  /// Uses the given scorer to pick migration targets; defaults to the
  /// Algorithm-2 progress scorer.
  explicit Rebalancer(std::unique_ptr<Scorer> scorer = nullptr);

  /// Plan up to `max_migrations` migrations on the cluster's current state.
  /// The cluster is not modified.
  [[nodiscard]] MigrationPlan plan(const VCluster& cluster,
                                   std::size_t max_migrations) const;

  /// Polluter-detection pass. Repeatedly picks the hottest untried UP host
  /// with >= 2 VMs whose contention inflation model(heat) exceeds
  /// options.threshold, and plans the eviction of its heaviest contributor
  /// (max expected core demand: vcpus x mean usage, ties to the lowest
  /// VmId) toward the coolest UP host that fits it and is strictly cooler
  /// than the source (ties to the lowest HostId). Scratch heats are
  /// adjusted after each planned move so one pass does not dogpile a single
  /// cool target. The cluster is not modified; fully deterministic.
  [[nodiscard]] MigrationPlan plan_interference(
      const VCluster& cluster, const perf::ContentionModel& model,
      const InterferenceOptions& options) const;

  /// Execute a plan. Returns the number of migrations actually performed
  /// (a migration may be skipped if the cluster changed since planning).
  static std::size_t apply_plan(VCluster& cluster, const MigrationPlan& plan);

 private:
  std::unique_ptr<Scorer> scorer_;
};

}  // namespace slackvm::sched
