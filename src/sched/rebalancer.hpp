// Live-migration rebalancer (the future work of paper §VII-B2a:
// "considering live migration to further balance the packing of our vNodes
// is left as a future work").
//
// Strategy: drain-and-consolidate. The rebalancer repeatedly tries to empty
// the host with the fewest VMs by migrating each of its VMs to another open
// host (chosen by a scorer — the Algorithm-2 progress score by default). A
// host is drained atomically: if any of its VMs has no feasible target the
// whole drain is abandoned, so the plan never leaves a host half-emptied
// for nothing. Planning runs against a copy of the cluster state; the
// caller applies the plan with apply_plan().
#pragma once

#include <memory>
#include <vector>

#include "sched/scorer.hpp"
#include "sched/vcluster.hpp"

namespace slackvm::sched {

/// One planned live migration.
struct Migration {
  core::VmId vm{};
  HostId from = 0;
  HostId to = 0;
};

struct MigrationPlan {
  std::vector<Migration> migrations;
  std::size_t hosts_emptied = 0;

  [[nodiscard]] bool empty() const noexcept { return migrations.empty(); }
};

class Rebalancer {
 public:
  /// Uses the given scorer to pick migration targets; defaults to the
  /// Algorithm-2 progress scorer.
  explicit Rebalancer(std::unique_ptr<Scorer> scorer = nullptr);

  /// Plan up to `max_migrations` migrations on the cluster's current state.
  /// The cluster is not modified.
  [[nodiscard]] MigrationPlan plan(const VCluster& cluster,
                                   std::size_t max_migrations) const;

  /// Execute a plan. Returns the number of migrations actually performed
  /// (a migration may be skipped if the cluster changed since planning).
  static std::size_t apply_plan(VCluster& cluster, const MigrationPlan& plan);

 private:
  std::unique_ptr<Scorer> scorer_;
};

}  // namespace slackvm::sched
