#include "core/log.hpp"

namespace slackvm::core {

namespace {
LogLevel g_level = LogLevel::kWarn;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

namespace detail {
void emit(LogLevel level, std::string_view msg) {
  std::clog << "[slackvm " << level_tag(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace slackvm::core
