#include "core/vm.hpp"

#include <ostream>

namespace slackvm::core {

std::string to_string(UsageClass c) {
  switch (c) {
    case UsageClass::kIdle:
      return "idle";
    case UsageClass::kSteady:
      return "steady";
    case UsageClass::kBursty:
      return "bursty";
    case UsageClass::kInteractive:
      return "interactive";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const VmSpec& spec) {
  os << spec.vcpus << "vCPU/" << mib_to_gib(spec.mem_mib) << "GiB@" << spec.level << "/"
     << to_string(spec.usage);
  return os;
}

}  // namespace slackvm::core
