// Virtual machine identity and specification.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "core/oversub.hpp"
#include "core/resources.hpp"
#include "core/units.hpp"

namespace slackvm::core {

/// Opaque VM identifier, unique within a trace / datacenter run.
struct VmId {
  std::uint64_t value = 0;
  friend constexpr auto operator<=>(VmId, VmId) noexcept = default;
};

/// Coarse CPU behaviour class of the tenant workload; drives the QoS model
/// (perf::) and mirrors the paper's physical experiment mix: 10% idle, 60%
/// CPU benchmark, 30% interactive micro-services (§VII-A1).
enum class UsageClass : std::uint8_t {
  kIdle,         ///< near-zero CPU usage
  kSteady,       ///< constant medium CPU usage (stress-ng style)
  kBursty,       ///< alternating high/low phases
  kInteractive,  ///< request-driven (DeathStarBench social network proxy)
};

[[nodiscard]] std::string to_string(UsageClass c);

/// Immutable deployment request: what the customer asked for.
struct VmSpec {
  VcpuCount vcpus = 1;
  MemMib mem_mib = gib(1);
  OversubLevel level{};
  UsageClass usage = UsageClass::kSteady;

  friend constexpr bool operator==(const VmSpec&, const VmSpec&) = default;

  /// Physical cores this VM consumes at its own oversubscription level.
  [[nodiscard]] constexpr CoreCount physical_cores() const noexcept {
    return level.cores_for(vcpus);
  }

  /// Footprint in PM currency (physical cores at the VM's level, memory).
  [[nodiscard]] constexpr Resources footprint() const noexcept {
    return Resources{physical_cores(), mem_mib};
  }

  /// Requested memory-per-vCPU ratio in GiB (catalog M/C, before
  /// oversubscription is applied).
  [[nodiscard]] double mem_per_vcpu_gib() const noexcept {
    return mib_to_gib(mem_mib) / static_cast<double>(vcpus);
  }
};

std::ostream& operator<<(std::ostream& os, const VmSpec& spec);

/// A VM instance as it exists in a trace: spec plus lifecycle timestamps.
struct VmInstance {
  VmId id{};
  VmSpec spec{};
  SimTime arrival = 0;
  SimTime departure = 0;  ///< strictly greater than arrival

  [[nodiscard]] SimTime lifetime() const noexcept { return departure - arrival; }
};

}  // namespace slackvm::core

template <>
struct std::hash<slackvm::core::VmId> {
  std::size_t operator()(slackvm::core::VmId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
