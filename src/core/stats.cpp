#include "core/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace slackvm::core {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedMean::record(SimTime time, double value) {
  if (!started_) {
    started_ = true;
    first_time_ = time;
  } else {
    SLACKVM_ASSERT(time >= last_time_);
    weighted_sum_ += last_value_ * (time - last_time_);
  }
  last_time_ = time;
  last_value_ = value;
}

double TimeWeightedMean::finish(SimTime end_time) const {
  if (!started_) {
    return 0.0;
  }
  SLACKVM_ASSERT(end_time >= last_time_);
  const double total = weighted_sum_ + last_value_ * (end_time - last_time_);
  const SimTime span = end_time - first_time_;
  return span > 0 ? total / span : last_value_;
}

double percentile(std::span<const double> samples, double q) {
  SLACKVM_ASSERT(!samples.empty());
  SLACKVM_ASSERT(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::ranges::sort(sorted);
  const double rank = (q / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> samples) { return percentile(samples, 50.0); }

double mean(std::span<const double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double s : samples) {
    total += s;
  }
  return total / static_cast<double>(samples.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  SLACKVM_ASSERT(hi > lo && bins > 0);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins + 1, 0);  // +1 overflow bucket
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++counts_.front();
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace slackvm::core
