// Basic units and integer helpers shared across the library.
//
// Conventions:
//  * memory is tracked in MiB as a signed 64-bit integer (negative values are
//    reserved for deltas);
//  * CPU capacity is tracked in physical cores (hardware threads, see
//    topo::CpuTopology) as unsigned 32-bit integers;
//  * virtual CPUs (vCPUs) are also 32-bit unsigned integers;
//  * ratios (e.g. memory-per-core) are doubles in GiB per core.
#pragma once

#include <cstdint>

namespace slackvm::core {

/// Memory quantity in MiB.
using MemMib = std::int64_t;

/// Count of physical cores (or hardware threads).
using CoreCount = std::uint32_t;

/// Count of virtual CPUs.
using VcpuCount = std::uint32_t;

/// Simulation time in seconds.
using SimTime = double;

/// One GiB expressed in MiB.
inline constexpr MemMib kMibPerGib = 1024;

/// Convert a GiB quantity to MiB.
[[nodiscard]] constexpr MemMib gib(std::int64_t g) noexcept { return g * kMibPerGib; }

/// Convert MiB to (fractional) GiB.
[[nodiscard]] constexpr double mib_to_gib(MemMib m) noexcept {
  return static_cast<double>(m) / static_cast<double>(kMibPerGib);
}

/// Ceiling division for non-negative integers.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T num, T den) noexcept {
  return den == 0 ? T{0} : static_cast<T>((num + den - 1) / den);
}

}  // namespace slackvm::core
