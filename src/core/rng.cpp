#include "core/rng.hpp"

#include <algorithm>
#include <cmath>

namespace slackvm::core {

double SplitMix64::exponential(double mean) noexcept {
  // Inverse transform on (0,1]; uniform() returns [0,1) so flip it.
  const double u = 1.0 - uniform();
  return -mean * std::log(u);
}

std::size_t SplitMix64::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    SLACKVM_ASSERT(w >= 0.0);
    total += w;
  }
  SLACKVM_ASSERT(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // numerical tail
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  SLACKVM_ASSERT(!weights.empty());
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    SLACKVM_ASSERT(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  SLACKVM_ASSERT(total > 0.0);
  for (double& c : cumulative_) {
    c /= total;
  }
  cumulative_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(SplitMix64& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::ranges::lower_bound(cumulative_, u);
  return static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
}

double DiscreteSampler::probability(std::size_t i) const {
  SLACKVM_ASSERT(i < cumulative_.size());
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

}  // namespace slackvm::core
