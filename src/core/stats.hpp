// Streaming and batch statistics used by the metrics and QoS subsystems.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/units.hpp"

namespace slackvm::core {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted mean of a piecewise-constant signal (e.g. the unallocated
/// resource share of a cluster over a simulated week).
class TimeWeightedMean {
 public:
  /// Record that the signal holds `value` starting at `time`. Times must be
  /// non-decreasing.
  void record(SimTime time, double value);

  /// Close the signal at `end_time` and return the time-weighted mean.
  /// Returns 0 when no interval was observed.
  [[nodiscard]] double finish(SimTime end_time) const;

  [[nodiscard]] bool started() const noexcept { return started_; }

 private:
  bool started_ = false;
  SimTime last_time_ = 0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  SimTime first_time_ = 0;
};

/// Percentile of a sample set with linear interpolation (type-7 / numpy
/// default). `q` in [0, 100]. The input is copied and sorted.
[[nodiscard]] double percentile(std::span<const double> samples, double q);

/// Convenience: median.
[[nodiscard]] double median(std::span<const double> samples);

/// Mean of a sample set (0 for empty input).
[[nodiscard]] double mean(std::span<const double> samples);

/// Fixed-width histogram over [lo, hi) with `bins` buckets plus an overflow
/// bucket; used to render Fig 2-style distributions as text.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_high(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;  // last bucket = overflow
  std::size_t total_ = 0;
};

}  // namespace slackvm::core
