#include "core/peak_prediction.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace slackvm::core {

double MaxPredictor::predict(std::span<const double> usage) const {
  if (usage.empty()) {
    return 1.0;
  }
  return std::clamp(*std::ranges::max_element(usage), 0.0, 1.0);
}

PercentilePredictor::PercentilePredictor(double q) : q_(q) {
  SLACKVM_ASSERT(q > 0.0 && q <= 100.0);
}

double PercentilePredictor::predict(std::span<const double> usage) const {
  if (usage.empty()) {
    return 1.0;
  }
  return std::clamp(percentile(usage, q_), 0.0, 1.0);
}

std::string PercentilePredictor::name() const {
  return "p" + std::to_string(static_cast<int>(q_));
}

MeanStdDevPredictor::MeanStdDevPredictor(double k) : k_(k) {
  SLACKVM_ASSERT(k >= 0.0);
}

double MeanStdDevPredictor::predict(std::span<const double> usage) const {
  if (usage.empty()) {
    return 1.0;
  }
  RunningStats stats;
  for (double u : usage) {
    stats.add(u);
  }
  return std::clamp(stats.mean() + k_ * stats.stddev(), 0.0, 1.0);
}

std::string MeanStdDevPredictor::name() const {
  return "mean+" + std::to_string(static_cast<int>(k_)) + "sd";
}

std::uint8_t safe_ratio_for_peak(double predicted_peak, std::uint8_t max_ratio) {
  SLACKVM_ASSERT(max_ratio >= 1);
  if (predicted_peak <= 0.0) {
    return max_ratio;
  }
  const double raw = 1.0 / predicted_peak;
  const double clamped = std::clamp(raw, 1.0, static_cast<double>(max_ratio));
  return static_cast<std::uint8_t>(clamped);
}

}  // namespace slackvm::core
