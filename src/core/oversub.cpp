#include "core/oversub.hpp"

#include <ostream>

namespace slackvm::core {

std::string to_string(OversubLevel level) {
  return std::to_string(static_cast<int>(level.ratio())) + ":1";
}

std::ostream& operator<<(std::ostream& os, OversubLevel level) {
  return os << to_string(level);
}

}  // namespace slackvm::core
