// Oversubscription levels.
//
// A level n:1 exposes n vCPUs per physical core (paper §II-A). Level 1:1 is
// the premium, non-oversubscribed tier. Memory is never oversubscribed in
// this reproduction, matching the paper's second hypothesis (§III-A).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::core {

/// CPU oversubscription ratio n:1, n in [1, 16].
class OversubLevel {
 public:
  static constexpr std::uint8_t kMaxRatio = 16;

  constexpr OversubLevel() = default;

  constexpr explicit OversubLevel(std::uint8_t ratio) : ratio_(ratio) {
    if (ratio < 1 || ratio > kMaxRatio) {
      SLACKVM_THROW("OversubLevel ratio out of range [1,16]");
    }
  }

  /// vCPUs exposed per physical core.
  [[nodiscard]] constexpr std::uint8_t ratio() const noexcept { return ratio_; }

  [[nodiscard]] constexpr bool oversubscribed() const noexcept { return ratio_ > 1; }

  /// Physical cores needed to host `vcpus` at this level (integer-core
  /// accounting: a vNode always owns whole cores).
  [[nodiscard]] constexpr CoreCount cores_for(VcpuCount vcpus) const noexcept {
    return ceil_div<CoreCount>(vcpus, ratio_);
  }

  /// vCPUs a pool of `cores` physical cores may expose at this level.
  [[nodiscard]] constexpr VcpuCount vcpus_for(CoreCount cores) const noexcept {
    return cores * ratio_;
  }

  /// A level `a` is *stricter* than `b` when it promises less contention
  /// (lower ratio). Pooling (§V-B) requires the pooled set to honour the
  /// strictest member level.
  [[nodiscard]] constexpr bool stricter_than(OversubLevel other) const noexcept {
    return ratio_ < other.ratio_;
  }

  friend constexpr auto operator<=>(OversubLevel a, OversubLevel b) noexcept {
    return a.ratio_ <=> b.ratio_;
  }
  friend constexpr bool operator==(OversubLevel, OversubLevel) noexcept = default;

 private:
  std::uint8_t ratio_ = 1;
};

/// The three levels studied throughout the paper's evaluation.
inline constexpr std::array<std::uint8_t, 3> kPaperLevelRatios{1, 2, 3};

[[nodiscard]] std::string to_string(OversubLevel level);
std::ostream& operator<<(std::ostream& os, OversubLevel level);

}  // namespace slackvm::core
