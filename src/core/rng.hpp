// Deterministic random number generation.
//
// Every stochastic component of the library (workload sampling, arrival
// processes, the QoS model) draws from SplitMix64 streams derived from a
// single experiment seed, so all tables and figures are reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace slackvm::core {

/// SplitMix64: tiny, fast, well-distributed 64-bit PRNG (Steele et al.).
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Derive an independent child stream (used to give each subsystem its own
  /// stream so adding draws in one place does not perturb another).
  [[nodiscard]] constexpr SplitMix64 fork() noexcept {
    return SplitMix64((*this)() ^ 0xd6e8feb86659fd93ULL);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0. Maps a 53-bit uniform double
  /// onto the range; bias is negligible for simulation purposes.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n)) % n;
  }

  /// Exponentially distributed sample with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Index sampled from unnormalized non-negative weights (at least one
  /// strictly positive).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights);

 private:
  std::uint64_t state_;
};

/// Canonical derivation of an independent per-task seed from a base seed and
/// a stable task index. Used by the parallel experiment engine so that the
/// stream a task draws from depends only on (base, index) — never on the
/// thread that happens to execute it or on pool scheduling order. The
/// mapping is pinned by golden constants in tests/core_rng_test.cpp: a
/// change here silently shifts every benchmark number, so it must be
/// deliberate.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) noexcept {
  // Decorrelate the index with a Weyl step before mixing so that adjacent
  // indices land far apart in the seed space, then run one SplitMix64 draw.
  SplitMix64 mixer(base ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  return mixer();
}

/// Precomputed cumulative table for repeated weighted sampling.
class DiscreteSampler {
 public:
  /// Weights must be non-negative with a strictly positive sum.
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(SplitMix64& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cumulative_.size(); }

  /// Normalized probability of index i.
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> cumulative_;  // normalized, non-decreasing, back()==1
};

}  // namespace slackvm::core
