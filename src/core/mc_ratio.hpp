// Memory-per-Core (M/C) ratio machinery, including the paper's Algorithm 2.
//
// Algorithm 2 ("Progress towards target ratio computation") is the new
// scoring metric SlackVM adds to score-based global schedulers. Given the PM
// hardware configuration, its current allocation (both in physical cores /
// MiB) and a candidate VM footprint, it returns a signed *progress* value:
//  > 0  — deploying the VM moves the hosted M/C ratio toward the PM's target
//         (hardware) ratio;
//  < 0  — the deployment moves the ratio away; the magnitude is additionally
//         amplified by how full the PM already is (lines 12-15), so that
//         unavoidable unbalanced VMs land on lightly loaded PMs where the
//         bias can still be counterbalanced later.
// An idle PM is treated as already sitting at the ideal ratio (line 6), which
// makes busy PMs more attractive than empty ones and thus consolidates.
#pragma once

#include "core/oversub.hpp"
#include "core/resources.hpp"

namespace slackvm::core {

/// Inputs of Algorithm 2 expressed in PM currency.
struct ProgressInputs {
  Resources config;  ///< PM hardware configuration (total cores, total MiB)
  Resources alloc;   ///< current PM allocation (vNode cores, committed MiB)
  Resources vm;      ///< candidate VM footprint at its oversubscription level
};

/// Paper Algorithm 2, line by line. `config.cores` must be non-zero.
[[nodiscard]] double progress_towards_target_ratio(const ProgressInputs& in);

/// |current - target| distance helper used by tests and diagnostics.
[[nodiscard]] double ratio_delta(const Resources& alloc, const Resources& config);

/// Classify the oversubscription tier of a VM *request* from its requested
/// memory-per-vCPU ratio (GiB per vCPU, before oversubscription).
///
/// Real-world traces (SAP Cloud Infrastructure, Azure Packing) carry sizes
/// and lifetimes but no oversubscription contract, so the streaming trace
/// frontend (workload::TraceReader, real format) must infer one. The rule
/// mirrors the paper's catalog tiering: oversubscribable offers are capped
/// at 8 GB total (§III-A) and skew toward low per-vCPU memory, while
/// memory-heavy requests are premium —
///
///   ratio >= 4 GiB/vCPU  -> 1:1  (premium; the b2-/r2-style tiers)
///   ratio >= 2 GiB/vCPU  -> 2:1
///   otherwise            -> 3:1  (cheapest burst tier)
///
/// Deterministic and total: every finite non-negative ratio maps to exactly
/// one of the three paper levels (kPaperLevelRatios).
[[nodiscard]] OversubLevel classify_level(double mem_per_vcpu_gib);

}  // namespace slackvm::core
