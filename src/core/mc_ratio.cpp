#include "core/mc_ratio.hpp"

#include <cmath>

#include "core/error.hpp"

namespace slackvm::core {

double progress_towards_target_ratio(const ProgressInputs& in) {
  SLACKVM_ASSERT(in.config.cores > 0);
  SLACKVM_ASSERT(in.vm.cores > 0 || in.vm.mem_mib > 0);

  // Line 1: targetRatio <- configPM(mem) / configPM(cpu)
  const double target_ratio = mc_ratio_gib_per_core(in.config);

  double current_ratio = 0.0;
  double next_ratio = 0.0;
  if (in.alloc.cores > 0) {
    // Lines 3-4: ratios of the current workload and of the workload with the
    // candidate VM added.
    current_ratio = mc_ratio_gib_per_core(in.alloc);
    next_ratio = mc_ratio_gib_per_core(in.alloc + in.vm);
  } else {
    // Lines 6-7: an idle PM is regarded as having an ideal ratio, so the
    // first deployment's progress is -|vmRatio - target| (<= 0), and busy
    // PMs whose bias the VM corrects are preferred over idle ones.
    current_ratio = target_ratio;
    next_ratio = in.vm.cores > 0 ? mc_ratio_gib_per_core(in.vm)
                                 : target_ratio + mib_to_gib(in.vm.mem_mib);
  }

  // Lines 9-11.
  const double current_delta = std::abs(current_ratio - target_ratio);
  const double next_delta = std::abs(next_ratio - target_ratio);
  double progress = current_delta - next_delta;

  // Lines 12-15: negative progress is amplified on loaded PMs so large
  // unbalanced VMs are steered toward lightly loaded PMs.
  if (progress < 0) {
    const double factor =
        1.0 + static_cast<double>(in.alloc.cores) / static_cast<double>(in.config.cores);
    progress *= factor;
  }
  return progress;
}

double ratio_delta(const Resources& alloc, const Resources& config) {
  const double target = mc_ratio_gib_per_core(config);
  if (alloc.cores == 0) {
    return 0.0;
  }
  return std::abs(mc_ratio_gib_per_core(alloc) - target);
}

OversubLevel classify_level(double mem_per_vcpu_gib) {
  SLACKVM_ASSERT(mem_per_vcpu_gib >= 0.0);
  if (mem_per_vcpu_gib >= 4.0) {
    return OversubLevel{1};
  }
  if (mem_per_vcpu_gib >= 2.0) {
    return OversubLevel{2};
  }
  return OversubLevel{3};
}

}  // namespace slackvm::core
