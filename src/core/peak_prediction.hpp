// Peak-usage prediction.
//
// Dynamic oversubscription (paper §VIII perspective; Bashir et al. [1] and
// Resource Central [24] in §II-A) sizes resources against a *predicted peak*
// of observed usage rather than the allocation. This module provides the
// classical predictor family: max, percentile, and mean + k*stddev.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace slackvm::core {

/// Predicts the near-future peak of a usage signal (values in [0, 1] per
/// vCPU) from a window of past samples. Implementations are pure functions
/// of the window; an empty window predicts 1.0 (fail-safe: assume full use).
class PeakPredictor {
 public:
  virtual ~PeakPredictor() = default;
  [[nodiscard]] virtual double predict(std::span<const double> usage) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// The observed maximum — the most conservative predictor.
class MaxPredictor final : public PeakPredictor {
 public:
  [[nodiscard]] double predict(std::span<const double> usage) const override;
  [[nodiscard]] std::string name() const override { return "max"; }
};

/// A high percentile of the window (Resource Central-style [24]).
class PercentilePredictor final : public PeakPredictor {
 public:
  explicit PercentilePredictor(double q = 95.0);
  [[nodiscard]] double predict(std::span<const double> usage) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double q_;
};

/// mean + k * stddev (Take-it-to-the-limit-style [1]).
class MeanStdDevPredictor final : public PeakPredictor {
 public:
  explicit MeanStdDevPredictor(double k = 3.0);
  [[nodiscard]] double predict(std::span<const double> usage) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double k_;
};

/// Largest oversubscription ratio (clamped to [1, max_ratio]) that keeps
/// predicted_peak * ratio <= 1 per thread, i.e. the safe dynamic level for
/// a pool whose per-vCPU peak is `predicted_peak`.
[[nodiscard]] std::uint8_t safe_ratio_for_peak(double predicted_peak,
                                               std::uint8_t max_ratio);

}  // namespace slackvm::core
