#include "core/resources.hpp"

#include <ostream>
#include <sstream>

namespace slackvm::core {

double mc_ratio_gib_per_core(const Resources& r) {
  if (r.cores == 0) {
    SLACKVM_THROW("mc_ratio_gib_per_core: zero cores");
  }
  return mib_to_gib(r.mem_mib) / static_cast<double>(r.cores);
}

std::string to_string(const Resources& r) {
  std::ostringstream os;
  os << r;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Resources& r) {
  os << r.cores << "c/" << mib_to_gib(r.mem_mib) << "GiB";
  return os;
}

}  // namespace slackvm::core
