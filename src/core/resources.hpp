// Two-dimensional resource vectors (physical cores, memory).
//
// `Resources` is the currency of the packing problem: a PM configuration, a
// PM allocation and a VM footprint are all Resources. CPU is counted in
// *physical cores* — oversubscription translates exposed vCPUs into physical
// cores before any Resources arithmetic happens (see oversub.hpp), which is
// exactly how the paper's Algorithm 2 accounts allocations ("oversubscribed
// vNodes are considered through the PM allocation, not the sum of exposed
// vCPUs", §VI).
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::core {

/// A (cores, memory) pair with saturating-free exact integer arithmetic.
struct Resources {
  CoreCount cores = 0;
  MemMib mem_mib = 0;

  friend constexpr bool operator==(const Resources&, const Resources&) = default;

  /// True when both dimensions fit inside `other`.
  [[nodiscard]] constexpr bool fits_within(const Resources& other) const noexcept {
    return cores <= other.cores && mem_mib <= other.mem_mib;
  }

  /// True when both dimensions are zero.
  [[nodiscard]] constexpr bool empty() const noexcept { return cores == 0 && mem_mib == 0; }

  constexpr Resources& operator+=(const Resources& rhs) noexcept {
    cores += rhs.cores;
    mem_mib += rhs.mem_mib;
    return *this;
  }

  /// Component-wise subtraction; throws if it would underflow.
  Resources& operator-=(const Resources& rhs) {
    SLACKVM_ASSERT(rhs.cores <= cores && rhs.mem_mib <= mem_mib);
    cores -= rhs.cores;
    mem_mib -= rhs.mem_mib;
    return *this;
  }

  friend constexpr Resources operator+(Resources lhs, const Resources& rhs) noexcept {
    lhs += rhs;
    return lhs;
  }

  friend Resources operator-(Resources lhs, const Resources& rhs) {
    lhs -= rhs;
    return lhs;
  }
};

/// Memory-per-core ratio in GiB per core; the PM "target ratio" of the paper.
/// A zero-core input has no meaningful ratio and throws.
[[nodiscard]] double mc_ratio_gib_per_core(const Resources& r);

/// Render as e.g. "16c/64.0GiB".
[[nodiscard]] std::string to_string(const Resources& r);

std::ostream& operator<<(std::ostream& os, const Resources& r);

}  // namespace slackvm::core
