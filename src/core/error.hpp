// Error handling utilities.
//
// The library throws `SlackError` for API misuse and unrecoverable state
// violations. Cheap internal invariants are checked with SLACKVM_ASSERT which
// is active in all build types (the checks guard scheduling correctness and
// are far from any hot loop).
#pragma once

#include <stdexcept>
#include <string>

namespace slackvm::core {

/// Exception thrown on API misuse or broken invariants.
class SlackError : public std::runtime_error {
 public:
  explicit SlackError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  throw SlackError(std::string("assertion failed: ") + expr + " at " + file + ":" +
                   std::to_string(line));
}
}  // namespace detail

}  // namespace slackvm::core

/// Always-on assertion used for scheduler invariants.
#define SLACKVM_ASSERT(expr)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::slackvm::core::detail::assert_fail(#expr, __FILE__, __LINE__);     \
    }                                                                      \
  } while (false)

/// Throw a SlackError with the given message.
#define SLACKVM_THROW(msg) throw ::slackvm::core::SlackError(msg)
