// Minimal leveled logger. Off by default; benches and examples raise the
// level via --verbose-style flags. Not thread-safe by design: the simulator
// is single-threaded and deterministic.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace slackvm::core {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view msg);
}

/// Stream-style log statement: SLACKVM_LOG(kInfo) << "opened PM " << id;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace slackvm::core

#define SLACKVM_LOG(level)                                                  \
  if (static_cast<int>(::slackvm::core::LogLevel::level) <=                 \
      static_cast<int>(::slackvm::core::log_level()))                       \
  ::slackvm::core::LogLine(::slackvm::core::LogLevel::level)
