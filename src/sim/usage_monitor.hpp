// Effective-usage monitoring during a replay.
//
// Oversubscription exists because *usage* sits far below *allocation* (§I:
// "hosted VMs are unlikely to fully utilize all their allocated resources
// simultaneously"). This monitor samples the runnable CPU demand of every
// host — derived from each hosted VM's deterministic usage signal — and
// aggregates: how hot allocated cores actually run, the whole fleet's
// effective utilization, and overload exposure (a host whose demand exceeds
// its physical capacity is time-slicing, the §II-A overload situation).
#pragma once

#include <cstddef>

#include "core/units.hpp"
#include "sim/datacenter.hpp"

namespace slackvm::sim {

/// One cluster-wide sample.
struct UsageSample {
  core::SimTime time = 0;
  double demand_cores = 0.0;       ///< sum over VMs of vcpus * usage(t)
  core::CoreCount alloc_cores = 0;  ///< vNode-allocated physical cores
  core::CoreCount capacity_cores = 0;  ///< cores of all opened PMs
  std::size_t overloaded_hosts = 0;    ///< hosts with demand > capacity
  std::size_t opened_hosts = 0;
};

/// Aggregated usage statistics over a run.
struct UsageReport {
  std::size_t samples = 0;
  /// Mean of demand / capacity over samples (effective fleet utilization).
  double avg_fleet_utilization = 0.0;
  /// Mean of demand / alloc over samples (how hot allocated cores run);
  /// > 1 means oversubscribed cores are contended on average.
  double avg_alloc_heat = 0.0;
  /// Integral of overloaded-host time, in host-hours.
  double overload_host_hours = 0.0;
  /// Peak fleet utilization observed.
  double peak_fleet_utilization = 0.0;
};

/// Take one sample of the datacenter's demand at time `t`.
[[nodiscard]] UsageSample sample_usage(const Datacenter& dc, core::SimTime t);

/// Accumulates samples into a report.
class UsageMonitor {
 public:
  /// `interval` seconds between samples (> 0).
  explicit UsageMonitor(core::SimTime interval);

  [[nodiscard]] core::SimTime interval() const noexcept { return interval_; }

  void record(const UsageSample& sample);

  [[nodiscard]] UsageReport report() const;

 private:
  core::SimTime interval_;
  UsageReport report_;
  double fleet_sum_ = 0.0;
  double heat_sum_ = 0.0;
  std::size_t heat_samples_ = 0;
};

}  // namespace slackvm::sim
