// Effective-usage monitoring during a replay.
//
// Oversubscription exists because *usage* sits far below *allocation* (§I:
// "hosted VMs are unlikely to fully utilize all their allocated resources
// simultaneously"). This monitor samples the runnable CPU demand of every
// host — derived from each hosted VM's deterministic usage signal — and
// aggregates: how hot allocated cores actually run, the whole fleet's
// effective utilization, and overload exposure (a host whose demand exceeds
// its physical capacity is time-slicing, the §II-A overload situation).
//
// The per-host breakdown (sample_host_usage) and the EWMA feeder
// (update_cluster_heat) close the interference loop: they turn the same
// usage signals into the per-host *heat* column that
// sched::InterferenceScorer and the polluter pass consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/units.hpp"
#include "sim/datacenter.hpp"
#include "workload/usage.hpp"

namespace slackvm::perf {
class ContentionModel;
}  // namespace slackvm::perf

namespace slackvm::sim {

/// One cluster-wide sample.
struct UsageSample {
  core::SimTime time = 0;
  double demand_cores = 0.0;       ///< sum over VMs of vcpus * usage(t)
  core::CoreCount alloc_cores = 0;  ///< vNode-allocated physical cores
  core::CoreCount capacity_cores = 0;  ///< cores of all opened PMs
  std::size_t overloaded_hosts = 0;    ///< hosts with demand > capacity
  std::size_t opened_hosts = 0;
  /// Per-host runnable demand per physical core (q), in datacenter host
  /// iteration order (clusters, then hosts) — the input of the perf::
  /// contention curve per host.
  std::vector<double> host_q;
};

/// Per-host instantaneous demand breakdown of one cluster.
struct HostUsage {
  double demand_cores = 0.0;  ///< sum over the host's VMs of vcpus * usage(t)
  core::CoreCount capacity_cores = 0;  ///< physical cores of the PM
};

/// Aggregated usage statistics over a run.
struct UsageReport {
  std::size_t samples = 0;
  /// Mean of demand / capacity over samples (effective fleet utilization).
  double avg_fleet_utilization = 0.0;
  /// Mean of demand / alloc over samples (how hot allocated cores run);
  /// > 1 means oversubscribed cores are contended on average.
  double avg_alloc_heat = 0.0;
  /// Integral of overloaded-host time, in host-hours.
  double overload_host_hours = 0.0;
  /// Peak fleet utilization observed.
  double peak_fleet_utilization = 0.0;
  /// p90 of per-host-sample response inflation (contention model applied to
  /// every host_q of every sample); 0 unless track_inflation() was armed.
  double p90_inflation = 0.0;
  /// Host-samples behind p90_inflation.
  std::size_t inflation_samples = 0;
};

/// Take one sample of the datacenter's demand at time `t`.
[[nodiscard]] UsageSample sample_usage(const Datacenter& dc, core::SimTime t);

/// Per-host demand breakdown of one cluster at time `t`, indexed by HostId.
/// Each host's demand sums its VMs in ascending VmId order, so the
/// floating-point result is independent of placement-map iteration order.
[[nodiscard]] std::vector<HostUsage> sample_host_usage(
    const sched::VCluster& cluster, core::SimTime t);

/// Incremental demand terms behind update_cluster_heat: per host, the
/// cached (ascending-VmId) list of vcpus x UsageSignal terms whose sum is
/// exactly sample_host_usage's demand. A heat tick re-derives a host's term
/// list — the unordered-map walk, sort, and spec lookups — only when its
/// epoch moved since the last tick; every other host just replays its
/// cached terms, in the same stored order and with the same float ops, so
/// the result is bit-identical to the naive sample.
///
/// Epoch protocol: sample() rebuilds on epoch mismatch; restamp() adopts
/// the post-set_heat epochs without rebuilding (the EWMA write itself bumps
/// epochs on bucket crossings, which is heat churn, not membership churn).
/// Ids dropped by a shrink of the hosts vector (rolled-back openings) are
/// discarded with their entries, so a later regrow starts from a clean
/// rebuild.
class DemandCache {
 public:
  /// Per-host demand breakdown at `t`, bit-identical to sample_host_usage.
  /// The reference is invalidated by the next sample() call.
  ///
  /// The first call arms the cluster's membership journal; from then on the
  /// term lists are patched in place from the exact place/remove/migrate
  /// deltas, so a churned host costs one sorted insert/erase instead of a
  /// full re-derivation. Whenever the journal reports loss (overflow,
  /// pre-arming history) the cache falls back to epoch-based invalidation
  /// for that round — the same rebuild-on-dirty protocol, just coarser.
  [[nodiscard]] const std::vector<HostUsage>& sample(sched::VCluster& cluster,
                                                     core::SimTime t);

  /// Adopt the hosts' current epochs without rebuilding. Only sound while
  /// membership is unchanged since the last sample() — i.e. right after the
  /// set_heat loop of a heat tick.
  void restamp(const sched::VCluster& cluster);

  /// Term-list re-derivations so far (differential/telemetry hook).
  [[nodiscard]] std::size_t rebuilds() const noexcept { return rebuilds_; }

 private:
  struct Term {
    core::VmId vm{0};    ///< sort/patch key (terms stay ascending-VmId)
    double vcpus = 0.0;  ///< static_cast<double>(spec.vcpus), as the naive sum casts
    workload::UsageSignal signal;
  };
  struct Entry {
    std::uint64_t epoch = 0;
    bool present = false;
    std::vector<Term> terms;  ///< ascending VmId
  };

  /// Patch one journaled delta into the cached term lists; deltas for hosts
  /// without a present entry are ignored (the rebuild re-derives them).
  void apply(const sched::MembershipDelta& delta);

  std::vector<Entry> entries_;
  std::vector<HostUsage> usage_;
  std::vector<sched::MembershipDelta> log_;  ///< journal drain buffer
  /// Rebuild scratch: (id, spec) captured in one map walk, sorted by id.
  std::vector<std::pair<core::VmId, const core::VmSpec*>> vms_;
  std::size_t rebuilds_ = 0;
};

/// Refresh every host's interference-heat EWMA from the instantaneous
/// demand breakdown:  heat' = alpha * (demand / cores) + (1 - alpha) * heat,
/// quantized into `bucket_width` buckets (sched::HostState::set_heat — the
/// epoch, and with it the placement index, only reacts to bucket
/// crossings). Returns the number of hosts refreshed.
///
/// With a `cache`, the demand breakdown comes from DemandCache::sample —
/// bit-identical, but only epoch-dirtied hosts re-derive their term lists —
/// and the cache is restamped afterwards. Replay paths hand the cache over
/// exactly when the cluster's index machinery is enabled, so the --index
/// escape hatch keeps the naive sample differentially covered.
std::size_t update_cluster_heat(sched::VCluster& cluster, core::SimTime t,
                                double alpha, double bucket_width,
                                DemandCache* cache = nullptr);

/// Accumulates samples into a report.
class UsageMonitor {
 public:
  /// `interval` seconds between samples (> 0).
  explicit UsageMonitor(core::SimTime interval);

  [[nodiscard]] core::SimTime interval() const noexcept { return interval_; }

  /// Arm per-host response-inflation tracking: every recorded sample's
  /// host_q values are mapped through `model` (borrowed, may not dangle)
  /// and the report gains their p90. Pass nullptr to disarm.
  void track_inflation(const perf::ContentionModel* model) { model_ = model; }

  void record(const UsageSample& sample);

  [[nodiscard]] UsageReport report() const;

 private:
  core::SimTime interval_;
  UsageReport report_;
  double fleet_sum_ = 0.0;
  double heat_sum_ = 0.0;
  std::size_t heat_samples_ = 0;
  const perf::ContentionModel* model_ = nullptr;
  std::vector<double> inflations_;
};

}  // namespace slackvm::sim
