// Effective-usage monitoring during a replay.
//
// Oversubscription exists because *usage* sits far below *allocation* (§I:
// "hosted VMs are unlikely to fully utilize all their allocated resources
// simultaneously"). This monitor samples the runnable CPU demand of every
// host — derived from each hosted VM's deterministic usage signal — and
// aggregates: how hot allocated cores actually run, the whole fleet's
// effective utilization, and overload exposure (a host whose demand exceeds
// its physical capacity is time-slicing, the §II-A overload situation).
//
// The per-host breakdown (sample_host_usage) and the EWMA feeder
// (update_cluster_heat) close the interference loop: they turn the same
// usage signals into the per-host *heat* column that
// sched::InterferenceScorer and the polluter pass consume.
#pragma once

#include <cstddef>
#include <vector>

#include "core/units.hpp"
#include "sim/datacenter.hpp"

namespace slackvm::perf {
class ContentionModel;
}  // namespace slackvm::perf

namespace slackvm::sim {

/// One cluster-wide sample.
struct UsageSample {
  core::SimTime time = 0;
  double demand_cores = 0.0;       ///< sum over VMs of vcpus * usage(t)
  core::CoreCount alloc_cores = 0;  ///< vNode-allocated physical cores
  core::CoreCount capacity_cores = 0;  ///< cores of all opened PMs
  std::size_t overloaded_hosts = 0;    ///< hosts with demand > capacity
  std::size_t opened_hosts = 0;
  /// Per-host runnable demand per physical core (q), in datacenter host
  /// iteration order (clusters, then hosts) — the input of the perf::
  /// contention curve per host.
  std::vector<double> host_q;
};

/// Per-host instantaneous demand breakdown of one cluster.
struct HostUsage {
  double demand_cores = 0.0;  ///< sum over the host's VMs of vcpus * usage(t)
  core::CoreCount capacity_cores = 0;  ///< physical cores of the PM
};

/// Aggregated usage statistics over a run.
struct UsageReport {
  std::size_t samples = 0;
  /// Mean of demand / capacity over samples (effective fleet utilization).
  double avg_fleet_utilization = 0.0;
  /// Mean of demand / alloc over samples (how hot allocated cores run);
  /// > 1 means oversubscribed cores are contended on average.
  double avg_alloc_heat = 0.0;
  /// Integral of overloaded-host time, in host-hours.
  double overload_host_hours = 0.0;
  /// Peak fleet utilization observed.
  double peak_fleet_utilization = 0.0;
  /// p90 of per-host-sample response inflation (contention model applied to
  /// every host_q of every sample); 0 unless track_inflation() was armed.
  double p90_inflation = 0.0;
  /// Host-samples behind p90_inflation.
  std::size_t inflation_samples = 0;
};

/// Take one sample of the datacenter's demand at time `t`.
[[nodiscard]] UsageSample sample_usage(const Datacenter& dc, core::SimTime t);

/// Per-host demand breakdown of one cluster at time `t`, indexed by HostId.
/// Each host's demand sums its VMs in ascending VmId order, so the
/// floating-point result is independent of placement-map iteration order.
[[nodiscard]] std::vector<HostUsage> sample_host_usage(
    const sched::VCluster& cluster, core::SimTime t);

/// Refresh every host's interference-heat EWMA from the instantaneous
/// demand breakdown:  heat' = alpha * (demand / cores) + (1 - alpha) * heat,
/// quantized into `bucket_width` buckets (sched::HostState::set_heat — the
/// epoch, and with it the placement index, only reacts to bucket
/// crossings). Returns the number of hosts refreshed.
std::size_t update_cluster_heat(sched::VCluster& cluster, core::SimTime t,
                                double alpha, double bucket_width);

/// Accumulates samples into a report.
class UsageMonitor {
 public:
  /// `interval` seconds between samples (> 0).
  explicit UsageMonitor(core::SimTime interval);

  [[nodiscard]] core::SimTime interval() const noexcept { return interval_; }

  /// Arm per-host response-inflation tracking: every recorded sample's
  /// host_q values are mapped through `model` (borrowed, may not dangle)
  /// and the report gains their p90. Pass nullptr to disarm.
  void track_inflation(const perf::ContentionModel* model) { model_ = model; }

  void record(const UsageSample& sample);

  [[nodiscard]] UsageReport report() const;

 private:
  core::SimTime interval_;
  UsageReport report_;
  double fleet_sum_ = 0.0;
  double heat_sum_ = 0.0;
  std::size_t heat_samples_ = 0;
  const perf::ContentionModel* model_ = nullptr;
  std::vector<double> inflations_;
};

}  // namespace slackvm::sim
