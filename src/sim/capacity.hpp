// Minimal-fleet capacity search — the paper's protocol taken literally:
// "a CLOUDSIMPLUS simulation was initiated, starting from an empty cluster
// and progressively increased until the minimal number of PMs was
// determined" (§VII-B1).
//
// The elastic replay (VCluster growth) gives an upper bound: the PM count a
// greedy open-on-demand operator ends up with. The true minimum for a
// policy may be lower — with a *fixed* fleet the policy is forced to pack
// into existing PMs instead of opening a fresh one. find_min_fleet binary
// searches the smallest fixed fleet under which the whole trace replays
// without a single rejection.
#pragma once

#include <functional>

#include "sim/datacenter.hpp"
#include "workload/trace.hpp"

namespace slackvm::sim {

/// Builds a fresh datacenter for each feasibility probe.
using DatacenterFactory = std::function<Datacenter()>;

/// Replay `trace` against a fresh datacenter capped at `max_hosts` PMs per
/// cluster; true iff every VM was placed.
[[nodiscard]] bool feasible_with(const DatacenterFactory& factory,
                                 const workload::Trace& trace, std::size_t max_hosts);

struct MinFleetResult {
  std::size_t elastic_pms = 0;  ///< PMs the elastic protocol opened
  std::size_t min_pms = 0;      ///< smallest feasible fixed fleet
  std::size_t probes = 0;       ///< feasibility replays performed
};

/// Binary search the minimal feasible fixed fleet in [1, elastic count].
/// In dedicated mode the cap applies per level cluster, so min_pms is the
/// per-cluster cap times the cluster count (an upper envelope).
[[nodiscard]] MinFleetResult find_min_fleet(const DatacenterFactory& factory,
                                            const workload::Trace& trace);

}  // namespace slackvm::sim
