// Sharded datacenter execution: run one Datacenter's clusters concurrently
// on the ThreadPool, bit-identically to the serial replay.
//
// The unit of parallelism is the VCluster (Stillwell et al.'s per-cluster
// decomposition): shard k owns the clusters whose index is k modulo the
// shard count, and — because placement routing (Datacenter::route) is a
// pure function of (VmId, spec) — no event of one shard ever reads or
// writes another shard's state. Each shard therefore gets its own
// EventQueue, its own partial RunResult counters, its own FaultInjector
// (scoped so the per-shard timetables partition the serial one), and its
// own sample log of metric observations.
//
// Determinism comes from two disciplines, both inherited from
// sim/parallel.hpp rather than invented here:
//
//  * *Grid-seeded schedules* — everything stochastic (the fault timetable)
//    is a pure function of (seed, k), never of thread scheduling; within a
//    shard the EventQueue's insertion-order tie-break applies unchanged.
//  * *Fixed-order reduction* — per-shard sample logs are merged into the
//    single MetricsCollector in the documented cross-shard order: ascending
//    time, ties to the lowest shard index, within a shard in log order
//    (shard_merge_order is that comparator, exposed for tests). The merged
//    stream feeds the collector the exact global aggregates, so the
//    floating-point sequence — and hence every RunResult field — is
//    bit-identical at every thread count.
//
// Execution alternates parallel windows with serial barriers: the horizon
// is cut into `barriers` windows; within a window every shard runs
// independently (EventQueue::run_until); at each barrier the sample logs
// are merged and dropped (bounding memory), every cluster's placement-index
// dirty log is replayed in one batch (VCluster::flush_index), and — when
// the debug-audit flag is set — the full datacenter audit runs. After the
// last window each shard drains its queue completely (fault repairs and
// retries may fire past the horizon).
//
// With shards == 1 and the same Datacenter, replay_sharded is structurally
// the serial replay(): same event schedule, same observation tuples, same
// collector call sequence — proven bit-identical by tests/sim_shard_test.cpp.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "sim/datacenter.hpp"
#include "sim/metrics.hpp"
#include "sim/replay.hpp"
#include "workload/trace.hpp"

namespace slackvm::sim {

/// Knobs of a sharded replay. The defaults run the serial reference (one
/// shard, inline on the calling thread).
struct ShardOptions {
  /// Shard count: clusters are dealt round-robin across shards. May exceed
  /// the cluster count (excess shards simply own nothing).
  std::size_t shards = 1;
  /// Worker threads driving the shards (sim/parallel.hpp semantics: 1 =
  /// inline serial, 0 = all hardware threads). Results are bit-identical at
  /// every value; only wall-clock time changes.
  std::size_t threads = 1;
  /// Barrier windows the horizon is cut into (>= 1). More barriers bound
  /// sample-log memory tighter and refresh placement indexes more often;
  /// fewer maximize the parallel stretches. Results are identical either
  /// way — barriers only batch work, they never reorder it.
  std::size_t barriers = 8;
  /// Periodic consolidation, as in replay().
  std::optional<RebalanceOptions> rebalance;
  /// Fault injection, as in replay(); each shard owns the timetable events
  /// that target its clusters.
  const FaultConfig* faults = nullptr;
  /// Stall watchdog over every barrier wait (sim/parallel.hpp): when a
  /// window makes no progress for this long, per-shard progress (clusters
  /// owned, events fired, simulated time, in-flight migrations) is dumped
  /// to stderr and — with `watchdog_fatal` — the process aborts instead of
  /// hanging. 0 disables. Ignored on the serial path (threads <= 1), where
  /// no cross-thread wait exists.
  std::size_t watchdog_ms = 0;
  bool watchdog_fatal = true;
};

/// One metric observation recorded by a shard after one of its events:
/// the aggregates over the shard's own clusters at `time`.
struct ShardSample {
  core::SimTime time = 0;
  core::Resources alloc;
  core::Resources config;
  std::size_t vms = 0;
  std::size_t active = 0;
};

/// The documented cross-shard ordering, as a standalone function over
/// per-shard sample logs (each log ascending in time): returns the merged
/// (shard, index-within-log) sequence — ascending time, ties across shards
/// to the lowest shard index, within a shard in log order. The engine's
/// streaming merge follows exactly this comparator; the shard test suite
/// pins it.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> shard_merge_order(
    std::span<const std::vector<ShardSample>> logs);

/// Drain `source` (sim/event_source.hpp) against `dc` (which must be
/// fresh) with the clusters sharded per `options`. Rows are pulled
/// incrementally: at each barrier the serial demux routes every row
/// arriving before the next window's deadline to the shard owning its
/// routed cluster (Datacenter::route — the same pure function the
/// materialized path uses), in row order, on the workload lane; the final
/// window drains the source completely. Resident memory is therefore
/// O(active window + one window's arrivals), never O(trace). The source
/// must provide a horizon hint (barrier windows and the fault timetable
/// need it up-front) — pre-scan streaming files with TraceReader::scan, or
/// materialize. Deterministic and bit-identical to replay() when
/// options.shards == 1; bit-identical across options.threads always.
[[nodiscard]] RunResult replay_sharded(Datacenter& dc, EventSource& source,
                                       const ShardOptions& options = {});

/// Replay a materialized trace: wraps it in a MaterializedSource and runs
/// the engine above, so the two paths are bit-identical by construction.
[[nodiscard]] RunResult replay_sharded(Datacenter& dc, const workload::Trace& trace,
                                       const ShardOptions& options = {});

}  // namespace slackvm::sim
