// Time-extended live migration: flights, reservations, rollback.
//
// sched::Rebalancer's apply_plan moves VMs instantaneously — the right
// differential reference, but it sidesteps everything that makes migration
// hard in production (and everything the paper defers in §VII-B2a):
// migrations take time, consume bandwidth, fail mid-flight, and race with
// host failures. The MigrationEngine makes each planned migration a
// *flight* on the event queue:
//
//  * *Pre-copy duration* — a flight takes spec.mem_mib / bandwidth_mibps
//    seconds (the dominant cost of pre-copy live migration is shipping the
//    guest's memory), bounded by per-host concurrency caps on both the
//    source and the destination (the bandwidth budget of a single NIC).
//  * *Reservation* — for the whole flight the destination double-books the
//    VM's footprint (HostState::reserve): fits()/can_host(), the placement
//    index and the HostArena aggregates all see the booked capacity, so no
//    concurrent placement can strand the flight. Commit atomically swaps
//    the booking for the VM (VCluster::commit_migration).
//  * *Failure semantics* — deterministic, audited:
//      - destination fails or drains mid-flight → the flight aborts, the
//        reservation rolls back, and the intent retries with bounded
//        exponential backoff (backoff_base * 2^k, max_retries), then parks;
//      - source fails → the intent is cancelled and the VM takes the PR 3
//        evacuation path (the FaultInjector re-places it);
//      - source drains → the intent is cancelled; migrate_off owns the VM;
//      - the VM departs → the intent is cancelled wherever it stood;
//      - pre-copy exceeds `timeout` → the flight aborts terminally
//        (durations are deterministic, so a retry would time out again).
//  * *Accounting identity* — every accepted intent ends in exactly one
//    terminal bucket; once the queue drains,
//      mig_planned == mig_committed + mig_cancelled + mig_rolled_back
//                     + mig_timed_out + mig_degraded
//    which sim::audit() re-checks through MigrationEngine::audit().
//
// Determinism: all engine state is per-cluster (waiting FIFO, in-flight
// set, per-host busy counts), every decision happens inside a queue event,
// and flights are scanned in ascending VmId order on fault notifications —
// so a sharded run (one engine per shard, scoped to its clusters) schedules
// exactly the serial per-cluster event sequence, and results are
// bit-identical across shards x index x faults x threads
// (tests/sim_migration_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/vm.hpp"
#include "sched/rebalancer.hpp"
#include "sched/scorer.hpp"
#include "sim/datacenter.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"

namespace slackvm::sim {

/// Knobs of the time-extended migration engine (RebalanceOptions::migration;
/// scenario keys in sim/scenario.hpp). Default-constructed == disabled: the
/// rebalance loop then applies plans instantaneously through
/// sched::Rebalancer::apply_plan — the PR 3 reference path (--migration=instant).
struct MigrationConfig {
  /// Run migrations as time-extended flights. Off = instant apply_plan.
  bool enabled = false;
  /// Pre-copy bandwidth per flight: a flight lasts spec.mem_mib /
  /// bandwidth_mibps seconds.
  double bandwidth_mibps = 1024.0;
  /// Concurrent flights a single host may source *or* sink (its NIC budget).
  std::size_t max_concurrent_per_host = 2;
  /// In-flight budget per cluster: further intents queue FIFO. Per cluster —
  /// never global — so the sharded engines evolve exactly like the serial one.
  std::size_t max_in_flight = 16;
  /// Abort a flight whose pre-copy has not completed after this long
  /// (0 = never). Timeouts are terminal: durations are deterministic, so a
  /// retry of the same VM would time out again.
  core::SimTime timeout = 0.0;
  /// Bounded retry/backoff after a destination-side abort or a launch that
  /// found no destination: backoff_base, 2x, 4x, ... at most max_retries
  /// times, then the intent parks (mig_degraded / mig_rolled_back).
  std::size_t max_retries = 3;
  core::SimTime backoff_base = 60.0;
};

/// Drives every in-flight migration of one replay (or one shard of it: pass
/// the shard's scope and the engine ignores clusters it does not own).
/// Owned by replay()/replay_sharded(); all mutation happens inside queue
/// events, so the engine is exactly as deterministic as the queue.
class MigrationEngine {
 public:
  /// `observe` is the replay's metrics observation callback, invoked after
  /// every state-changing migration event. All references must outlive the
  /// engine (replay scope).
  MigrationEngine(Datacenter& dc, EventQueue& queue, const MigrationConfig& config,
                  RunResult& result, std::function<void(core::SimTime)> observe,
                  ShardScope scope = {});

  /// Accept one planned migration as an intent. Returns false — and does
  /// not count it as planned — when the VM already has an active intent, is
  /// parked, is not placed in `cluster`, or would move onto its own host.
  /// Accepted intents join the cluster's FIFO and launch as soon as the
  /// in-flight budget and the per-host caps allow.
  bool request(std::size_t cluster, const sched::Migration& migration,
               core::SimTime now);

  /// The host is about to FAIL (called by the FaultInjector *before*
  /// fail_host): flights sourcing from it convert into evacuations
  /// (cancelled — the eviction re-places the VM), flights targeting it roll
  /// back their reservation and retry elsewhere.
  void on_host_failing(std::size_t cluster, sched::HostId host, core::SimTime now);

  /// The host is about to DRAIN (called before drain_host + migrate_off):
  /// flights sourcing from it are cancelled (migrate_off owns the VMs now),
  /// flights targeting it roll back and retry elsewhere.
  void on_host_draining(std::size_t cluster, sched::HostId host, core::SimTime now);

  /// The VM is departing: cancel its intent (rolling back an in-flight
  /// reservation) and forget any parked state. The caller still removes the
  /// VM from the datacenter as usual.
  void on_departure(core::VmId id, core::SimTime now);

  /// Flights currently in the air, summed over this engine's clusters.
  /// Lock-free — the stall watchdog reads it from another thread.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return in_flight_total_.load(std::memory_order_relaxed);
  }

  /// Intents waiting or backing off (0 once the queue has drained).
  [[nodiscard]] std::size_t pending_intents() const noexcept {
    return intents_.size() - in_flight();
  }

  /// Re-derive the engine's invariants: the counter identity (with the
  /// still-active intents as the balancing term mid-run) and the
  /// reservation <-> flight bijection over the owned clusters. Returns one
  /// human-readable line per violation; sim::audit-style.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  enum class Phase : std::uint8_t { kWaiting, kInFlight, kBackoff };

  struct Intent {
    std::size_t cluster = 0;
    Phase phase = Phase::kWaiting;
    std::size_t attempts = 0;       ///< failed launch/flight attempts so far
    sched::HostId hint = 0;         ///< planner's destination (first choice)
    // In-flight only:
    sched::HostId source = 0;
    sched::HostId dest = 0;
    core::VmSpec spec{};
    std::uint64_t ticket = 0;       ///< matches completion/timeout/retry events
  };

  /// Per-cluster launch state; index == cluster index.
  struct Lane {
    std::deque<core::VmId> waiting;  ///< FIFO of intents not yet launched
    std::size_t in_flight = 0;
    /// Flights sourced from / targeting each host (dense, grown on demand).
    std::vector<std::size_t> src_busy;
    std::vector<std::size_t> dst_busy;
  };

  /// Launch as many waiting intents as the budget and caps allow. The head
  /// may block on a saturated source host — progress is guaranteed because
  /// a saturated cap implies a flight whose completion pumps again.
  void pump(std::size_t cluster, core::SimTime now);

  /// Try to put the queue head in the air. Returns false when the head must
  /// stay queued (source cap saturated); everything else pops the head.
  bool launch_head(std::size_t cluster, core::SimTime now);

  /// Best destination by the scorer among UP hosts that can take the spec on
  /// top of their bookings, excluding the source and dst-saturated hosts;
  /// ties to the lowest HostId (the documented index tie-break).
  [[nodiscard]] std::optional<sched::HostId> pick_dest(const sched::VCluster& cl,
                                                       const Lane& lane,
                                                       sched::HostId source,
                                                       sched::HostId hint,
                                                       const core::VmSpec& spec) const;

  void complete(core::VmId vm, std::uint64_t ticket, core::SimTime now);
  void flight_timeout(core::VmId vm, std::uint64_t ticket, core::SimTime now);
  void retry(core::VmId vm, std::uint64_t ticket, core::SimTime now);

  /// Abort an in-flight intent: roll back the reservation and free the
  /// caps. The intent stays in intents_ for the caller to re-route.
  void abort_flight(core::VmId vm, Intent& intent);

  /// Dest-side abort: back off and retry, or roll back terminally once the
  /// retry budget is spent.
  void retry_or_roll_back(core::VmId vm, Intent& intent, core::SimTime now);

  /// No destination admitted the spec: back off and retry, or park
  /// (mig_degraded) once the retry budget is spent.
  void retry_or_degrade(core::VmId vm, Intent& intent, core::SimTime now);

  void erase_waiting(std::size_t cluster, core::VmId vm);
  [[nodiscard]] std::size_t& src_slot(std::size_t cluster, sched::HostId host);
  [[nodiscard]] std::size_t& dst_slot(std::size_t cluster, sched::HostId host);

  Datacenter& dc_;
  EventQueue& queue_;
  MigrationConfig config_;
  ShardScope scope_;
  RunResult& result_;
  std::function<void(core::SimTime)> observe_;
  std::unique_ptr<sched::Scorer> scorer_;  ///< destination re-pick at launch
  /// Ordered by VmId so fault notifications scan intents deterministically.
  std::map<core::VmId, Intent> intents_;
  /// Terminally failed intents (timed out / degraded / rolled back): no new
  /// intent is accepted for these VMs until they depart.
  std::unordered_set<core::VmId> parked_;
  std::vector<Lane> lanes_;  ///< index == cluster index (unowned stay empty)
  std::uint64_t next_ticket_ = 0;
  std::atomic<std::size_t> in_flight_total_{0};
};

}  // namespace slackvm::sim
