#include "sim/scenario.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace slackvm::sim {

const workload::Catalog& Scenario::catalog() const {
  return workload::catalog_by_name(provider);
}

const workload::LevelMix& Scenario::mix() const {
  return workload::distribution(distribution);
}

PackingComparison Scenario::run() const { return compare_packing(catalog(), mix(), config); }

Scenario parse_scenario(std::istream& input) {
  Scenario scenario;
  std::string line;
  std::size_t line_no = 0;
  // First-seen line per scalar key: every scalar key may appear at most
  // once, so a stale duplicate (the classic copy-paste edit that silently
  // loses) is a parse error, not a last-one-wins surprise. Directives
  // (fail/drain/repair) are events and stay repeatable.
  std::map<std::string, std::size_t> seen;
  while (std::getline(input, line)) {
    ++line_no;
    // Strip trailing comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream in(line);
    std::string key;
    if (!(in >> key)) {
      continue;  // blank
    }
    const auto fail = [&](const std::string& message) {
      SLACKVM_THROW("scenario line " + std::to_string(line_no) + ": " + message);
    };
    const bool directive = key == "fail" || key == "drain" || key == "repair";
    if (!directive) {
      const auto [first, inserted] = seen.emplace(key, line_no);
      if (!inserted) {
        fail("duplicate key '" + key + "' (first set on line " +
             std::to_string(first->second) + ")");
      }
    }
    std::string value;
    if (!(in >> value)) {
      fail("missing value for '" + key + "'");
    }
    try {
      if (key == "name") {
        scenario.name = value;
      } else if (key == "provider") {
        scenario.provider = value;
      } else if (key == "distribution") {
        if (value.size() != 1) {
          fail("distribution must be a single letter A..O");
        }
        scenario.distribution = value[0];
      } else if (key == "population") {
        scenario.config.generator.target_population = std::stoull(value);
      } else if (key == "seed") {
        scenario.config.generator.seed = std::stoull(value);
      } else if (key == "repetitions") {
        scenario.config.repetitions = std::stoull(value);
      } else if (key == "parallelism") {
        scenario.config.parallelism = std::stoull(value);
      } else if (key == "shards") {
        scenario.config.shards = std::stoull(value);
        if (scenario.config.shards == 0) {
          fail("shards must be >= 1");
        }
      } else if (key == "index") {
        if (value == "on" || value == "1") {
          scenario.config.use_index = true;
        } else if (value == "off" || value == "0") {
          scenario.config.use_index = false;
        } else {
          fail("index must be on|off");
        }
      } else if (key == "mem_oversub") {
        scenario.config.mem_oversub = std::stod(value);
      } else if (key == "horizon_days") {
        scenario.config.generator.horizon = std::stod(value) * 24 * 3600;
      } else if (key == "lifetime_days") {
        scenario.config.generator.mean_lifetime = std::stod(value) * 24 * 3600;
      } else if (key == "diurnal") {
        scenario.config.generator.diurnal_amplitude = std::stod(value);
      } else if (key == "faults") {
        scenario.config.faults.count = std::stoull(value);
      } else if (key == "fault_seed") {
        scenario.config.faults.seed = std::stoull(value);
      } else if (key == "repair_delay_s") {
        scenario.config.faults.repair_delay = std::stod(value);
      } else if (key == "drain_lead_s") {
        scenario.config.faults.drain_lead = std::stod(value);
      } else if (key == "evac_retries") {
        scenario.config.faults.max_retries = std::stoull(value);
      } else if (key == "evac_backoff_s") {
        scenario.config.faults.backoff_base = std::stod(value);
      } else if (key == "rebalance_s") {
        scenario.config.rebalance_interval = std::stod(value);
        if (scenario.config.rebalance_interval < 0) {
          fail("rebalance_s must be >= 0");
        }
      } else if (key == "rebalance_budget") {
        scenario.config.rebalance_budget = std::stoull(value);
      } else if (key == "migration") {
        if (value == "engine") {
          scenario.config.migration.enabled = true;
        } else if (value == "instant") {
          scenario.config.migration.enabled = false;
        } else {
          fail("migration must be engine|instant");
        }
      } else if (key == "mig_bw_mibps") {
        scenario.config.migration.bandwidth_mibps = std::stod(value);
        if (!(scenario.config.migration.bandwidth_mibps > 0)) {
          fail("mig_bw_mibps must be > 0");
        }
      } else if (key == "mig_cap") {
        scenario.config.migration.max_concurrent_per_host = std::stoull(value);
        if (scenario.config.migration.max_concurrent_per_host == 0) {
          fail("mig_cap must be >= 1");
        }
      } else if (key == "mig_in_flight") {
        scenario.config.migration.max_in_flight = std::stoull(value);
        if (scenario.config.migration.max_in_flight == 0) {
          fail("mig_in_flight must be >= 1");
        }
      } else if (key == "mig_timeout_s") {
        scenario.config.migration.timeout = std::stod(value);
        if (scenario.config.migration.timeout < 0) {
          fail("mig_timeout_s must be >= 0");
        }
      } else if (key == "mig_retries") {
        scenario.config.migration.max_retries = std::stoull(value);
      } else if (key == "mig_backoff_s") {
        scenario.config.migration.backoff_base = std::stod(value);
        if (scenario.config.migration.backoff_base < 0) {
          fail("mig_backoff_s must be >= 0");
        }
      } else if (key == "interference") {
        if (value == "on" || value == "1") {
          scenario.config.interference.enabled = true;
        } else if (value == "off" || value == "0") {
          scenario.config.interference.enabled = false;
        } else {
          fail("interference must be on|off");
        }
      } else if (key == "heat_interval_s") {
        scenario.config.interference.heat_interval = std::stod(value);
        if (!(scenario.config.interference.heat_interval > 0)) {
          fail("heat_interval_s must be > 0");
        }
      } else if (key == "heat_alpha") {
        scenario.config.interference.heat_alpha = std::stod(value);
        if (!(scenario.config.interference.heat_alpha > 0) ||
            scenario.config.interference.heat_alpha > 1.0) {
          fail("heat_alpha must be in (0, 1]");
        }
      } else if (key == "heat_bucket") {
        scenario.config.interference.heat_bucket = std::stod(value);
        if (!(scenario.config.interference.heat_bucket > 0)) {
          fail("heat_bucket must be > 0");
        }
      } else if (key == "heat_weight") {
        scenario.config.interference.heat_weight = std::stod(value);
        if (scenario.config.interference.heat_weight < 0) {
          fail("heat_weight must be >= 0");
        }
      } else if (key == "itf_threshold") {
        scenario.config.interference.threshold = std::stod(value);
        if (scenario.config.interference.threshold < 1.0) {
          fail("itf_threshold must be >= 1");
        }
      } else if (key == "itf_evictions") {
        scenario.config.interference.evictions_per_pass = std::stoull(value);
        if (scenario.config.interference.evictions_per_pass == 0) {
          fail("itf_evictions must be >= 1");
        }
      } else if (key == "fail" || key == "drain" || key == "repair") {
        FaultDirective event;
        event.kind = key == "fail"    ? FaultDirective::Kind::kFail
                     : key == "drain" ? FaultDirective::Kind::kDrain
                                      : FaultDirective::Kind::kRepair;
        bool have_host = false;
        bool have_at = false;
        // `value` holds the first field; the rest stream in.
        std::string token = value;
        do {
          const auto eq = token.find('=');
          if (eq == std::string::npos) {
            fail("directive fields are key=value, got '" + token + "'");
          }
          const std::string field = token.substr(0, eq);
          const std::string field_value = token.substr(eq + 1);
          if (field == "host") {
            event.host = static_cast<sched::HostId>(std::stoul(field_value));
            have_host = true;
          } else if (field == "at") {
            event.at = std::stod(field_value);
            have_at = true;
          } else if (field == "cluster") {
            event.cluster = std::stoull(field_value);
          } else {
            fail("unknown directive field '" + field + "'");
          }
        } while (in >> token);
        if (!have_host || !have_at) {
          fail("'" + key + "' needs host= and at=");
        }
        scenario.config.faults.directives.push_back(event);
      } else if (key == "trace") {
        scenario.config.trace_path = value;
      } else if (key == "host_cores") {
        scenario.config.host_config.cores =
            static_cast<core::CoreCount>(std::stoul(value));
      } else if (key == "host_mem_gib") {
        scenario.config.host_config.mem_mib = core::gib(std::stoll(value));
      } else {
        fail("unknown key '" + key + "'");
      }
      // Scalar keys take exactly one value: leftover tokens are either a
      // forgotten '#' or a mangled line, so reject them with the position
      // instead of silently dropping them. Directives consumed the whole
      // line themselves above.
      if (!directive) {
        std::string extra;
        if (in >> extra) {
          fail("trailing token '" + extra + "' after '" + key + " " + value + "'");
        }
      }
    } catch (const std::invalid_argument&) {
      fail("invalid value '" + value + "' for '" + key + "'");
    } catch (const std::out_of_range&) {
      fail("out-of-range value '" + value + "' for '" + key + "'");
    }
  }
  // Validate eagerly so errors surface at parse time, not mid-run.
  (void)scenario.catalog();
  (void)scenario.mix();
  if (scenario.config.generator.target_population == 0) {
    SLACKVM_THROW("scenario: population must be positive");
  }
  return scenario;
}

void write_scenario(const Scenario& scenario, std::ostream& output) {
  output << "name " << scenario.name << '\n';
  output << "provider " << scenario.provider << '\n';
  output << "distribution " << scenario.distribution << '\n';
  output << "population " << scenario.config.generator.target_population << '\n';
  output << "seed " << scenario.config.generator.seed << '\n';
  output << "repetitions " << scenario.config.repetitions << '\n';
  output << "parallelism " << scenario.config.parallelism << '\n';
  output << "shards " << scenario.config.shards << '\n';
  output << "index " << (scenario.config.use_index ? "on" : "off") << '\n';
  output << "mem_oversub " << scenario.config.mem_oversub << '\n';
  output << "horizon_days " << scenario.config.generator.horizon / (24 * 3600) << '\n';
  output << "lifetime_days " << scenario.config.generator.mean_lifetime / (24 * 3600)
         << '\n';
  output << "diurnal " << scenario.config.generator.diurnal_amplitude << '\n';
  if (!scenario.config.trace_path.empty()) {
    output << "trace " << scenario.config.trace_path << '\n';
  }
  output << "host_cores " << scenario.config.host_config.cores << '\n';
  output << "host_mem_gib " << scenario.config.host_config.mem_mib / core::kMibPerGib
         << '\n';
  const FaultConfig& faults = scenario.config.faults;
  output << "faults " << faults.count << '\n';
  output << "fault_seed " << faults.seed << '\n';
  output << "repair_delay_s " << faults.repair_delay << '\n';
  output << "drain_lead_s " << faults.drain_lead << '\n';
  output << "evac_retries " << faults.max_retries << '\n';
  output << "evac_backoff_s " << faults.backoff_base << '\n';
  output << "rebalance_s " << scenario.config.rebalance_interval << '\n';
  output << "rebalance_budget " << scenario.config.rebalance_budget << '\n';
  const MigrationConfig& migration = scenario.config.migration;
  output << "migration " << (migration.enabled ? "engine" : "instant") << '\n';
  output << "mig_bw_mibps " << migration.bandwidth_mibps << '\n';
  output << "mig_cap " << migration.max_concurrent_per_host << '\n';
  output << "mig_in_flight " << migration.max_in_flight << '\n';
  output << "mig_timeout_s " << migration.timeout << '\n';
  output << "mig_retries " << migration.max_retries << '\n';
  output << "mig_backoff_s " << migration.backoff_base << '\n';
  const sched::InterferenceOptions& itf = scenario.config.interference;
  output << "interference " << (itf.enabled ? "on" : "off") << '\n';
  output << "heat_interval_s " << itf.heat_interval << '\n';
  output << "heat_alpha " << itf.heat_alpha << '\n';
  output << "heat_bucket " << itf.heat_bucket << '\n';
  output << "heat_weight " << itf.heat_weight << '\n';
  output << "itf_threshold " << itf.threshold << '\n';
  output << "itf_evictions " << itf.evictions_per_pass << '\n';
  for (const FaultDirective& directive : faults.directives) {
    const char* kind = directive.kind == FaultDirective::Kind::kFail    ? "fail"
                       : directive.kind == FaultDirective::Kind::kDrain ? "drain"
                                                                        : "repair";
    output << kind << " host=" << directive.host << " at=" << directive.at
           << " cluster=" << directive.cluster << '\n';
  }
}

}  // namespace slackvm::sim
