#include "sim/datacenter.hpp"

#include <optional>

#include "core/error.hpp"

namespace slackvm::sim {

Datacenter Datacenter::dedicated(core::Resources host_config,
                                 std::vector<core::OversubLevel> levels,
                                 const PolicyFactory& factory, double mem_oversub) {
  return dedicated_fleet(sched::FleetSpec::uniform(host_config), std::move(levels),
                         factory, mem_oversub);
}

Datacenter Datacenter::dedicated_fleet(const sched::FleetSpec& fleet,
                                       std::vector<core::OversubLevel> levels,
                                       const PolicyFactory& factory,
                                       double mem_oversub) {
  SLACKVM_ASSERT(!levels.empty());
  Datacenter dc;
  dc.shared_ = false;
  for (core::OversubLevel level : levels) {
    SLACKVM_ASSERT(!dc.level_to_cluster_.contains(level.ratio()));
    dc.level_to_cluster_.emplace(level.ratio(), dc.clusters_.size());
    dc.clusters_.push_back(std::make_unique<sched::VCluster>(
        "dedicated-" + core::to_string(level), fleet, factory(), mem_oversub));
  }
  return dc;
}

Datacenter Datacenter::shared(core::Resources host_config, const PolicyFactory& factory,
                              double mem_oversub) {
  return shared_fleet(sched::FleetSpec::uniform(host_config), factory, mem_oversub);
}

Datacenter Datacenter::shared_fleet(const sched::FleetSpec& fleet,
                                    const PolicyFactory& factory, double mem_oversub) {
  Datacenter dc;
  dc.shared_ = true;
  dc.clusters_.push_back(std::make_unique<sched::VCluster>("slackvm-shared", fleet,
                                                           factory(), mem_oversub));
  return dc;
}

Datacenter Datacenter::shared_sharded(core::Resources host_config,
                                      const PolicyFactory& factory, std::size_t shards,
                                      double mem_oversub) {
  return shared_sharded_fleet(sched::FleetSpec::uniform(host_config), factory, shards,
                              mem_oversub);
}

Datacenter Datacenter::shared_sharded_fleet(const sched::FleetSpec& fleet,
                                            const PolicyFactory& factory,
                                            std::size_t shards, double mem_oversub) {
  SLACKVM_ASSERT(shards >= 1);
  if (shards == 1) {
    return shared_fleet(fleet, factory, mem_oversub);
  }
  Datacenter dc;
  dc.shared_ = true;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    dc.clusters_.push_back(std::make_unique<sched::VCluster>(
        "slackvm-shard-" + std::to_string(shard), fleet, factory(), mem_oversub));
  }
  return dc;
}

std::size_t Datacenter::route(core::VmId id, const core::VmSpec& spec) const {
  if (shared_) {
    // Single shared cluster routes everything to 0; the cell-partitioned
    // variant spreads VMs by id — a pure function, never by load, so shards
    // can route concurrently without coordination.
    return clusters_.size() == 1 ? 0
                                 : static_cast<std::size_t>(id.value % clusters_.size());
  }
  const auto it = level_to_cluster_.find(spec.level.ratio());
  if (it == level_to_cluster_.end()) {
    SLACKVM_THROW("Datacenter: no dedicated cluster for level " +
                  core::to_string(spec.level));
  }
  return it->second;
}

sched::HostId Datacenter::deploy(core::VmId id, const core::VmSpec& spec) {
  const auto host = try_deploy(id, spec);
  if (!host) {
    SLACKVM_THROW("Datacenter::deploy: cannot place VM");
  }
  return *host;
}

std::optional<sched::HostId> Datacenter::try_deploy(core::VmId id,
                                                    const core::VmSpec& spec) {
  // Routing is pure and the mutation touches only the routed cluster, so
  // concurrent shards may deploy into disjoint clusters without races.
  return clusters_[route(id, spec)]->try_place(id, spec);
}

void Datacenter::set_max_hosts_per_cluster(std::size_t max_hosts) {
  for (const auto& cluster : clusters_) {
    cluster->set_max_hosts(max_hosts);
  }
}

void Datacenter::set_index_enabled(bool enabled) {
  for (const auto& cluster : clusters_) {
    cluster->set_index_enabled(enabled);
  }
}

void Datacenter::reserve(std::size_t expected_vms) {
  // Dedicated mode splits the trace across level clusters; per-cluster
  // shares are unknown up front, so hint the even split (under-reserving
  // just leaves growth amortized, as before).
  const std::size_t per_cluster = expected_vms / clusters_.size() + 1;
  for (const auto& cluster : clusters_) {
    cluster->reserve(per_cluster);
  }
}

void Datacenter::remove(core::VmId id) {
  for (const auto& cluster : clusters_) {
    if (cluster->contains(id)) {
      cluster->remove(id);
      return;
    }
  }
  SLACKVM_THROW("Datacenter::remove: unknown VM");
}

std::vector<std::pair<core::VmId, core::VmSpec>> Datacenter::fail_host(
    std::size_t cluster_index, sched::HostId host) {
  return clusters_.at(cluster_index)->fail_host(host);
}

std::size_t Datacenter::opened_pms() const {
  std::size_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->opened_hosts();
  }
  return total;
}

std::size_t Datacenter::active_pms() const {
  // O(clusters): each cluster's arena keeps a running non-empty count, so
  // the per-event metrics observation no longer walks the whole fleet.
  std::size_t active = 0;
  for (const auto& cluster : clusters_) {
    active += cluster->nonempty_hosts();
  }
  return active;
}

std::size_t Datacenter::rebalance(const sched::Rebalancer& rebalancer,
                                  std::size_t max_migrations_per_cluster) {
  std::size_t applied = 0;
  for (const auto& cluster : clusters_) {
    const sched::MigrationPlan plan =
        rebalancer.plan(*cluster, max_migrations_per_cluster);
    applied += sched::Rebalancer::apply_plan(*cluster, plan);
  }
  return applied;
}

const std::map<std::string, std::size_t>& Datacenter::opened_per_cluster() const {
  if (opened_cache_.size() != clusters_.size()) {
    opened_cache_.clear();
    for (const auto& cluster : clusters_) {
      opened_cache_.emplace(cluster->name(), 0);
    }
  }
  for (const auto& cluster : clusters_) {
    opened_cache_.find(cluster->name())->second = cluster->opened_hosts();
  }
  return opened_cache_;
}

core::Resources Datacenter::total_alloc() const {
  core::Resources total;
  for (const auto& cluster : clusters_) {
    total += cluster->total_alloc();
  }
  return total;
}

core::Resources Datacenter::total_config() const {
  core::Resources total;
  for (const auto& cluster : clusters_) {
    total += cluster->total_config();
  }
  return total;
}

std::size_t Datacenter::vm_count() const {
  std::size_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->vm_count();
  }
  return total;
}

}  // namespace slackvm::sim
