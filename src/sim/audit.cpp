#include "sim/audit.hpp"

#include <array>
#include <atomic>
#include <sstream>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::sim {

namespace {

std::atomic<bool> g_debug_audit{false};

void audit_host(const sched::HostState& host, const std::string& where,
                std::vector<std::string>& out) {
  const auto fail = [&](const std::string& message) {
    std::ostringstream os;
    os << where << " host " << host.id() << " (" << to_string(host.phase())
       << "): " << message;
    out.push_back(os.str());
  };

  if (host.phase() == sched::HostPhase::kFailed && !host.empty()) {
    fail("FAILED host still runs " + std::to_string(host.vm_count()) + " VMs");
  }

  // Migration flights abort before their destination leaves UP, so a booking
  // on a draining or failed host means the engine missed a notification.
  if (host.phase() != sched::HostPhase::kUp && host.reservation_count() > 0) {
    fail("non-UP host holds " + std::to_string(host.reservation_count()) +
         " migration reservations");
  }

  // Recompute the per-level commitments and the resource totals from the
  // per-VM maps — the structures the fast accounting is derived from. A
  // migration reservation double-books exactly like a hosted VM, so both
  // maps feed the recomputation.
  std::array<core::VcpuCount, core::OversubLevel::kMaxRatio + 1> vcpus{};
  core::MemMib mem = 0;
  for (const auto& [vm, spec] : host.vms()) {
    vcpus[spec.level.ratio()] += spec.vcpus;
    mem += spec.mem_mib;
  }
  for (const auto& [vm, spec] : host.reservations()) {
    if (host.vms().contains(vm)) {
      fail("VM " + std::to_string(vm.value) + " both hosted and reserved");
    }
    vcpus[spec.level.ratio()] += spec.vcpus;
    mem += spec.mem_mib;
  }
  core::CoreCount cores = 0;
  for (std::uint8_t ratio = 1; ratio <= core::OversubLevel::kMaxRatio; ++ratio) {
    const core::OversubLevel level{ratio};
    if (host.committed_vcpus(level) != vcpus[ratio]) {
      fail("level " + core::to_string(level) + " commitment " +
           std::to_string(host.committed_vcpus(level)) + " != recomputed " +
           std::to_string(vcpus[ratio]));
    }
    if (vcpus[ratio] == 0) {
      continue;
    }
    // Per-level oversubscription bound: an n:1 level may expose at most n
    // vCPUs per physical core of the PM.
    if (vcpus[ratio] > static_cast<core::VcpuCount>(ratio) * host.config().cores) {
      fail("level " + core::to_string(level) + " oversubscription bound broken: " +
           std::to_string(vcpus[ratio]) + " vCPUs on " +
           std::to_string(host.config().cores) + " cores");
    }
    cores += core::ceil_div<core::CoreCount>(vcpus[ratio], ratio);
  }
  if (cores != host.alloc().cores) {
    fail("core accounting drift: cached " + std::to_string(host.alloc().cores) +
         " != recomputed " + std::to_string(cores));
  }
  if (cores > host.config().cores) {
    fail("core capacity exceeded: " + std::to_string(cores) + " > " +
         std::to_string(host.config().cores));
  }
  if (mem != host.alloc().mem_mib) {
    fail("memory accounting drift: cached " + std::to_string(host.alloc().mem_mib) +
         " != recomputed " + std::to_string(mem));
  }
  if (mem > host.mem_capacity()) {
    fail("memory capacity exceeded: " + std::to_string(mem) + " > " +
         std::to_string(host.mem_capacity()));
  }

  // Interference heat: the EWMA never goes negative (set_heat clamps), and
  // the quantized bucket the scorers read must be the bucket of the raw
  // value — a drifted bucket means an epoch bump was skipped and the
  // placement index may hold stale-but-"valid" entries.
  if (host.heat() < 0.0) {
    fail("negative heat " + std::to_string(host.heat()));
  }
  const std::uint32_t expected_bucket =
      host.heat_bucket_width() > 0.0
          ? static_cast<std::uint32_t>(host.heat() / host.heat_bucket_width())
          : 0;
  if (host.heat_bucket() != expected_bucket) {
    fail("heat bucket " + std::to_string(host.heat_bucket()) +
         " != quantize(" + std::to_string(host.heat()) + ", " +
         std::to_string(host.heat_bucket_width()) + ") = " +
         std::to_string(expected_bucket));
  }
}

}  // namespace

std::vector<std::string> audit(std::span<const sched::HostState> hosts) {
  std::vector<std::string> out;
  for (const sched::HostState& host : hosts) {
    audit_host(host, "", out);
  }
  return out;
}

std::vector<std::string> audit(const sched::VCluster& cluster) {
  std::vector<std::string> out;
  std::size_t hosted = 0;
  for (const sched::HostState& host : cluster.hosts()) {
    audit_host(host, cluster.name(), out);
    hosted += host.vm_count();
    for (const auto& [vm, spec] : host.vms()) {
      try {
        if (cluster.host_of(vm) != host.id()) {
          out.push_back(cluster.name() + ": VM " + std::to_string(vm.value) +
                        " on host " + std::to_string(host.id()) +
                        " but placements map says host " +
                        std::to_string(cluster.host_of(vm)));
        }
      } catch (const std::exception&) {
        out.push_back(cluster.name() + ": VM " + std::to_string(vm.value) +
                      " on host " + std::to_string(host.id()) +
                      " missing from the placements map");
      }
    }
  }
  if (hosted != cluster.vm_count()) {
    out.push_back(cluster.name() + ": hosts run " + std::to_string(hosted) +
                  " VMs but the placements map holds " +
                  std::to_string(cluster.vm_count()));
  }
  // The SoA mirror must agree with the authoritative rows field-for-field;
  // every O(1) aggregate the simulator reads comes from it.
  std::vector<std::string> arena = cluster.arena().check(cluster.hosts());
  for (std::string& violation : arena) {
    out.push_back(cluster.name() + ": " + violation);
  }
  return out;
}

std::vector<std::string> audit(const Datacenter& dc) {
  std::vector<std::string> out;
  std::size_t total = 0;
  for (const auto& cluster : dc.clusters()) {
    auto violations = audit(*cluster);
    out.insert(out.end(), violations.begin(), violations.end());
    total += cluster->vm_count();
  }
  if (total != dc.vm_count()) {
    out.push_back("datacenter: clusters run " + std::to_string(total) +
                  " VMs but the datacenter aggregate says " +
                  std::to_string(dc.vm_count()));
  }
  return out;
}

void set_debug_audit(bool enabled) noexcept {
  g_debug_audit.store(enabled, std::memory_order_relaxed);
}

bool debug_audit_enabled() noexcept {
  return g_debug_audit.load(std::memory_order_relaxed);
}

namespace {

[[noreturn]] void throw_violations(const std::vector<std::string>& violations) {
  std::string message = "sim::audit failed:";
  for (const std::string& v : violations) {
    message += "\n  " + v;
  }
  SLACKVM_THROW(message);
}

}  // namespace

void debug_audit_check(const Datacenter& dc) {
  if (!debug_audit_enabled()) {
    return;
  }
  const std::vector<std::string> violations = audit(dc);
  if (!violations.empty()) {
    throw_violations(violations);
  }
}

void debug_audit_check(const sched::VCluster& cluster) {
  if (!debug_audit_enabled()) {
    return;
  }
  const std::vector<std::string> violations = audit(cluster);
  if (!violations.empty()) {
    throw_violations(violations);
  }
}

ScopedDebugAudit::ScopedDebugAudit() noexcept : previous_(debug_audit_enabled()) {
  set_debug_audit(true);
}

ScopedDebugAudit::~ScopedDebugAudit() { set_debug_audit(previous_); }

}  // namespace slackvm::sim
