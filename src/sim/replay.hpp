// Trace replay: drive a Datacenter with a workload trace through the
// event queue and collect run metrics.
#pragma once

#include <optional>

#include "sched/rebalancer.hpp"
#include "sim/datacenter.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/usage_monitor.hpp"
#include "workload/trace.hpp"

namespace slackvm::sim {

/// Periodic live-migration consolidation during a replay (paper §VII-B2a
/// future work).
struct RebalanceOptions {
  core::SimTime interval = 6.0 * 3600;      ///< consolidation pass period
  std::size_t budget_per_pass = 64;         ///< migration cap per cluster/pass
};

/// Replay `trace` against `dc` (which must be fresh). Deterministic. With
/// `rebalance` set, a consolidation pass runs every interval; with
/// `usage_monitor` set, effective-usage samples are taken at the monitor's
/// interval throughout the run. With `faults` set (and enabled), a
/// FaultInjector drives host failures/drains/repairs and the evacuation
/// engine through the same event queue; pass the config through
/// resolve_fault_seed first when its seed should follow the workload seed.
/// While the debug-audit flag is set (sim/audit.hpp), every event is
/// followed by a full invariant audit that throws on the first violation.
[[nodiscard]] RunResult replay(Datacenter& dc, const workload::Trace& trace,
                               const std::optional<RebalanceOptions>& rebalance =
                                   std::nullopt,
                               UsageMonitor* usage_monitor = nullptr,
                               const FaultConfig* faults = nullptr);

}  // namespace slackvm::sim
