// Trace replay: drive a Datacenter with a workload trace through the
// event queue and collect run metrics.
#pragma once

#include <optional>

#include "sched/rebalancer.hpp"
#include "sim/datacenter.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/migration.hpp"
#include "sim/usage_monitor.hpp"
#include "workload/trace.hpp"

namespace slackvm::sim {

class EventSource;

/// Periodic live-migration consolidation during a replay (paper §VII-B2a
/// future work). With `migration.enabled`, each pass hands its plan to a
/// MigrationEngine and the moves become time-extended flights with
/// reservations, retry/backoff and rollback (sim/migration.hpp); otherwise
/// plans apply instantaneously — the differential reference path.
/// With `interference.enabled`, the replay additionally (a) refreshes every
/// host's heat EWMA from the usage signals each heat_interval, and (b)
/// prepends a polluter-detection pass (Rebalancer::plan_interference) to
/// every consolidation pass, evicting the heaviest contributor of each
/// over-threshold host toward a cooler one.
struct RebalanceOptions {
  core::SimTime interval = 6.0 * 3600;      ///< consolidation pass period
  std::size_t budget_per_pass = 64;         ///< migration cap per cluster/pass
  MigrationConfig migration{};              ///< time-extended flight knobs
  sched::InterferenceOptions interference{};  ///< heat + polluter-pass knobs
};

/// Drain `source` (sim/event_source.hpp) against `dc` (which must be
/// fresh). Deterministic. Rows are pulled and scheduled incrementally, so
/// resident memory is O(active window) — a multi-GB trace streams through
/// without ever being materialized. With `rebalance` set, a consolidation
/// pass runs every interval; with `usage_monitor` set, effective-usage
/// samples are taken at the monitor's interval throughout the run. With
/// `faults` set (and enabled), a FaultInjector drives host
/// failures/drains/repairs and the evacuation engine through the same
/// event queue; pass the config through resolve_fault_seed first when its
/// seed should follow the workload seed. Any of those three schedules
/// needs the horizon before the first event fires: the call throws if the
/// source has no horizon hint (pre-scan with TraceReader::scan, or
/// materialize). While the debug-audit flag is set (sim/audit.hpp), every
/// event is followed by a full invariant audit that throws on the first
/// violation.
[[nodiscard]] RunResult replay(Datacenter& dc, EventSource& source,
                               const std::optional<RebalanceOptions>& rebalance =
                                   std::nullopt,
                               UsageMonitor* usage_monitor = nullptr,
                               const FaultConfig* faults = nullptr);

/// Replay a materialized trace: wraps it in a MaterializedSource and runs
/// the engine above, so the two paths are bit-identical by construction.
[[nodiscard]] RunResult replay(Datacenter& dc, const workload::Trace& trace,
                               const std::optional<RebalanceOptions>& rebalance =
                                   std::nullopt,
                               UsageMonitor* usage_monitor = nullptr,
                               const FaultConfig* faults = nullptr);

}  // namespace slackvm::sim
