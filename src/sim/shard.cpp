#include "sim/shard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>

#include "core/error.hpp"
#include "perf/contention.hpp"
#include "sched/rebalancer.hpp"
#include "sim/audit.hpp"
#include "sim/event_queue.hpp"
#include "sim/event_source.hpp"
#include "sim/fault.hpp"
#include "sim/migration.hpp"
#include "sim/parallel.hpp"

namespace slackvm::sim {

namespace {

/// Everything one shard owns. Heap-allocated so the queue's event closures
/// can capture stable references.
struct ShardState {
  std::vector<std::size_t> clusters;  ///< owned cluster indices, ascending
  EventQueue queue;
  RunResult partial;              ///< integer counters only (summed at the end)
  std::vector<ShardSample> log;   ///< observations, drained at each barrier
  std::function<void(core::SimTime)> observe;
  std::optional<FaultInjector> injector;
  std::optional<MigrationEngine> engine;  ///< time-extended migration flights
  const sched::Rebalancer rebalancer{};
  /// Default-calibrated contention curve for the polluter pass; stateless,
  /// so per-shard instances answer identically to replay()'s single one.
  const perf::ContentionModel contention{};
  /// Demand caches for the heat ticks, indexed by *global* cluster index
  /// (only owned entries are touched, so caches stay shard-local).
  std::vector<DemandCache> heat_caches;
};

/// Streams merged samples into the single MetricsCollector. The global
/// aggregates are maintained as exact integer sums: when shard k reports a
/// new sample, only its delta against k's previous sample moves the totals,
/// so the value handed to the collector equals the sum of every shard's
/// latest aggregates — for one shard, exactly the serial observation.
class SampleMerger {
 public:
  SampleMerger(std::size_t shards, core::SimTime initial_end)
      : latest_(shards), end_time_(initial_end) {}

  void merge(std::vector<std::unique_ptr<ShardState>>& shards) {
    std::vector<std::vector<ShardSample>> logs(shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k) {
      logs[k] = std::move(shards[k]->log);
      shards[k]->log.clear();
    }
    for (const auto& [shard, index] : shard_merge_order(logs)) {
      apply(shard, logs[shard][index]);
    }
  }

  void finish(RunResult& result) const {
    result.peak_active_pms = peak_active_;
    metrics_.finish(end_time_, result);
  }

 private:
  void apply(std::size_t shard, const ShardSample& s) {
    ShardSample& prev = latest_[shard];
    alloc_cores_ += static_cast<std::int64_t>(s.alloc.cores) - prev.alloc.cores;
    alloc_mem_ += s.alloc.mem_mib - prev.alloc.mem_mib;
    config_cores_ += static_cast<std::int64_t>(s.config.cores) - prev.config.cores;
    config_mem_ += s.config.mem_mib - prev.config.mem_mib;
    vms_ += static_cast<std::int64_t>(s.vms) - static_cast<std::int64_t>(prev.vms);
    active_ +=
        static_cast<std::int64_t>(s.active) - static_cast<std::int64_t>(prev.active);
    prev = s;
    const core::Resources alloc{static_cast<core::CoreCount>(alloc_cores_),
                                alloc_mem_};
    const core::Resources config{static_cast<core::CoreCount>(config_cores_),
                                 config_mem_};
    const auto active = static_cast<std::size_t>(active_);
    metrics_.observe(s.time, alloc, config, static_cast<std::size_t>(vms_), active);
    peak_active_ = std::max(peak_active_, active);
    end_time_ = std::max(end_time_, s.time);
  }

  MetricsCollector metrics_;
  std::vector<ShardSample> latest_;  ///< last merged sample per shard
  std::int64_t alloc_cores_ = 0;
  std::int64_t alloc_mem_ = 0;
  std::int64_t config_cores_ = 0;
  std::int64_t config_mem_ = 0;
  std::int64_t vms_ = 0;
  std::int64_t active_ = 0;
  std::size_t peak_active_ = 0;
  core::SimTime end_time_;
};

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> shard_merge_order(
    std::span<const std::vector<ShardSample>> logs) {
  std::size_t total = 0;
  for (const auto& log : logs) {
    total += log.size();
  }
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(total);
  std::vector<std::size_t> pos(logs.size(), 0);
  while (order.size() < total) {
    // Lowest time wins; the strict < keeps the first (lowest-index) shard
    // on ties, and within a shard the log is consumed in order.
    std::size_t best = logs.size();
    for (std::size_t k = 0; k < logs.size(); ++k) {
      if (pos[k] < logs[k].size() &&
          (best == logs.size() || logs[k][pos[k]].time < logs[best][pos[best]].time)) {
        best = k;
      }
    }
    SLACKVM_ASSERT(best < logs.size());
    order.emplace_back(best, pos[best]++);
  }
  return order;
}

RunResult replay_sharded(Datacenter& dc, EventSource& source,
                         const ShardOptions& options) {
  const std::size_t shard_count = std::max<std::size_t>(1, options.shards);
  const std::size_t barrier_count = std::max<std::size_t>(1, options.barriers);

  // Barrier windows, the SampleMerger's end time and the fault timetable
  // all need the horizon before anything runs; an unhinted source cannot
  // be sharded.
  const std::optional<core::SimTime> horizon_hint = source.horizon_hint();
  if (!horizon_hint.has_value()) {
    SLACKVM_THROW(
        "replay_sharded: barrier windows need the trace horizon up-front, "
        "but this event source has no horizon hint; pre-scan the file "
        "(TraceReader::scan) or materialize the trace");
  }
  const core::SimTime horizon = *horizon_hint;

  if (const std::optional<std::size_t> rows = source.size_hint()) {
    dc.reserve(*rows);
  }

  // Deal clusters round-robin: shard k owns {c : c % shards == k}.
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(shard_count);
  for (std::size_t k = 0; k < shard_count; ++k) {
    shards.push_back(std::make_unique<ShardState>());
    for (std::size_t c = k; c < dc.clusters().size(); c += shard_count) {
      shards.back()->clusters.push_back(c);
    }
  }

  for (std::size_t k = 0; k < shard_count; ++k) {
    ShardState& shard = *shards[k];
    shard.observe = [&dc, &shard](core::SimTime t) {
      // Shard-local aggregates over the owned clusters only; the merger
      // turns them into the global tuples the collector sees. O(owned
      // clusters) thanks to the arena's running totals.
      ShardSample s;
      s.time = t;
      for (const std::size_t c : shard.clusters) {
        const sched::VCluster& cluster = *dc.clusters()[c];
        s.alloc += cluster.total_alloc();
        s.config += cluster.total_config();
        s.vms += cluster.vm_count();
        s.active += cluster.nonempty_hosts();
      }
      shard.log.push_back(s);
      // Per-event audits must stay shard-local (other shards' clusters are
      // mutating concurrently); the full datacenter audit runs at barriers.
      if (debug_audit_enabled()) {
        for (const std::size_t c : shard.clusters) {
          debug_audit_check(*dc.clusters()[c]);
        }
      }
    };
    if (options.faults != nullptr && options.faults->enabled()) {
      shard.injector.emplace(dc, shard.queue, *options.faults, shard.partial,
                             shard.observe, ShardScope{k, shard_count});
    }
    if (options.rebalance && options.rebalance->migration.enabled) {
      // One engine per shard, scoped like the injector: all flight state is
      // per-cluster, so the union of the shard engines evolves exactly like
      // the serial engine.
      shard.engine.emplace(dc, shard.queue, options.rebalance->migration,
                           shard.partial, shard.observe, ShardScope{k, shard_count});
      if (shard.injector.has_value()) {
        shard.injector->set_migration_engine(&*shard.engine);
      }
    }
  }

  // Serial demux: route one row to the shard owning its routed cluster,
  // arrival then departure on the workload lane. Rows are pumped in
  // arrival (row) order, so within a shard the lane-0 insertion order —
  // and hence every time tie — matches the materialized path exactly; the
  // workload lane keeps rows inserted at a late barrier winning time ties
  // against control events scheduled up-front. The row is captured by
  // value (the source's buffers are recycled long before events fire).
  const auto route_row = [&dc, &shards, shard_count](const core::VmInstance& vm) {
    const std::size_t cluster = dc.route(vm.id, vm.spec);
    ShardState& shard = *shards[cluster % shard_count];
    shard.queue.schedule_lane(
        vm.arrival, EventQueue::kLaneWorkload, [&dc, &shard, vm](core::SimTime t) {
          if (shard.injector.has_value()) {
            shard.injector->deploy_or_defer(vm.id, vm.spec, t);
          } else {
            dc.deploy(vm.id, vm.spec);
            ++shard.partial.placed_vms;
          }
          shard.observe(t);
        });
    shard.queue.schedule_lane(vm.departure, EventQueue::kLaneWorkload,
                              [&dc, &shard, cluster, id = vm.id](core::SimTime t) {
                                // Migration intents let go before the VM
                                // leaves the placement maps (see replay()).
                                if (shard.engine.has_value()) {
                                  shard.engine->on_departure(id, t);
                                }
                                if (!shard.injector.has_value() ||
                                    !shard.injector->absorb_departure(id)) {
                                  // Routed removal (not the probing
                                  // Datacenter::remove): a shard must never
                                  // read the other shards' placement maps.
                                  dc.cluster(cluster).remove(id);
                                }
                                shard.observe(t);
                              });
  };
  // Pump every row arriving before `deadline` (all its events lie in the
  // window: departures are strictly after arrivals, and events at or past
  // the deadline wait for a later window either way).
  const auto pump_until = [&source, &route_row](core::SimTime deadline) {
    while (const core::VmInstance* row = source.peek()) {
      if (row->arrival >= deadline) {
        break;
      }
      route_row(*row);
      source.advance();
    }
  };
  const auto pump_all = [&source, &route_row]() {
    while (const core::VmInstance* row = source.peek()) {
      route_row(*row);
      source.advance();
    }
  };

  const bool interference =
      options.rebalance && options.rebalance->interference.enabled;
  if (interference) {
    options.rebalance->interference.validate();
  }
  if (options.rebalance && horizon > 0) {
    const sched::InterferenceOptions& itf = options.rebalance->interference;
    for (core::SimTime t = options.rebalance->interval; t < horizon;
         t += options.rebalance->interval) {
      for (const auto& shard_ptr : shards) {
        ShardState& shard = *shard_ptr;
        if (shard.clusters.empty()) {
          continue;
        }
        if (shard.engine.has_value()) {
          // Engine mode: hand each cluster's plan to the shard's engine as
          // intents (see replay()); request() pumps and observes itself.
          // With interference on, the cluster's polluter pass goes first —
          // the same per-cluster interleaving as the serial replay.
          shard.queue.schedule(
              t, [&dc, &shard, interference, &itf,
                  budget = options.rebalance->budget_per_pass](core::SimTime now) {
                for (const std::size_t c : shard.clusters) {
                  if (interference) {
                    const sched::MigrationPlan hot = shard.rebalancer.plan_interference(
                        *dc.clusters()[c], shard.contention, itf);
                    ++shard.partial.itf_passes;
                    shard.partial.itf_hot_hosts += hot.hot_hosts;
                    shard.partial.itf_evictions += hot.migrations.size();
                    for (const sched::Migration& m : hot.migrations) {
                      shard.engine->request(c, m, now);
                      ++shard.partial.itf_requested;
                    }
                  }
                  const sched::MigrationPlan plan =
                      shard.rebalancer.plan(*dc.clusters()[c], budget);
                  for (const sched::Migration& m : plan.migrations) {
                    shard.engine->request(c, m, now);
                  }
                }
              });
        } else {
          shard.queue.schedule(
              t, [&dc, &shard, interference, &itf,
                  budget = options.rebalance->budget_per_pass](core::SimTime now) {
                for (const std::size_t c : shard.clusters) {
                  if (interference) {
                    const sched::MigrationPlan hot = shard.rebalancer.plan_interference(
                        *dc.clusters()[c], shard.contention, itf);
                    ++shard.partial.itf_passes;
                    shard.partial.itf_hot_hosts += hot.hot_hosts;
                    shard.partial.itf_evictions += hot.migrations.size();
                    const std::size_t applied =
                        sched::Rebalancer::apply_plan(dc.cluster(c), hot);
                    shard.partial.itf_applied += applied;
                    shard.partial.itf_skipped += hot.migrations.size() - applied;
                    shard.partial.migrations += applied;
                  }
                  const sched::MigrationPlan plan =
                      shard.rebalancer.plan(*dc.clusters()[c], budget);
                  shard.partial.migrations +=
                      sched::Rebalancer::apply_plan(dc.cluster(c), plan);
                }
                shard.observe(now);
              });
        }
      }
    }
  }
  if (interference && horizon > 0) {
    // Heat refresh schedule, per shard over its owned clusters. Scheduled
    // after the rebalance events so a coincident tick resolves the same
    // way as replay(): rebalance first (against the previous window's
    // heat), then the EWMA refresh. Heat is cluster-local state, so the
    // update is race-free while shards run in parallel, and no observe()
    // fires — the sample stream matches a heat-free run exactly.
    const sched::InterferenceOptions& itf = options.rebalance->interference;
    for (core::SimTime t = itf.heat_interval; t < horizon; t += itf.heat_interval) {
      for (const auto& shard_ptr : shards) {
        ShardState& shard = *shard_ptr;
        if (shard.clusters.empty()) {
          continue;
        }
        shard.heat_caches.resize(dc.clusters().size());
        shard.queue.schedule(t, [&dc, &shard, &itf](core::SimTime now) {
          for (const std::size_t c : shard.clusters) {
            DemandCache* cache = dc.cluster(c).index_enabled()
                                     ? &shard.heat_caches[c]
                                     : nullptr;
            shard.partial.heat_updates += update_cluster_heat(
                dc.cluster(c), now, itf.heat_alpha, itf.heat_bucket, cache);
          }
          if (debug_audit_enabled()) {
            for (const std::size_t c : shard.clusters) {
              debug_audit_check(*dc.clusters()[c]);
            }
          }
        });
      }
    }
  }

  // Armed last so a fault colliding with a workload event fires after it
  // (insertion-order ties), matching the serial replay.
  for (const auto& shard : shards) {
    if (shard->injector.has_value()) {
      shard->injector->arm(horizon);
    }
  }

  SampleMerger merger(shard_count, horizon);
  ParallelRunner runner(options.threads);

  // Bounded-wait barrier watchdog: a shard that stops draining its window
  // turns into a per-shard progress dump on stderr (and an abort when
  // fatal) instead of an undiagnosable hang.
  WatchdogConfig watchdog;
  watchdog.timeout = std::chrono::milliseconds(options.watchdog_ms);
  watchdog.fatal = options.watchdog_fatal;
  watchdog.on_stall = [&shards] {
    std::ostringstream os;
    os << "replay_sharded: barrier stalled; per-shard progress:\n";
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const ShardState& shard = *shards[k];
      os << "  shard " << k << ": " << shard.clusters.size() << " clusters, "
         << shard.queue.fired_count() << " events fired, sim time "
         << shard.queue.approx_now();
      if (shard.engine.has_value()) {
        os << ", " << shard.engine->in_flight() << " migrations in flight";
      }
      os << '\n';
    }
    std::fputs(os.str().c_str(), stderr);
    std::fflush(stderr);
  };
  const WatchdogConfig* dog = options.watchdog_ms > 0 ? &watchdog : nullptr;

  // Windowed execution: parallel stretches separated by serial barriers.
  // Each window's arrivals are demuxed serially before the window runs, so
  // the shards only ever pull from their own queues while in parallel.
  for (std::size_t b = 1; b < barrier_count; ++b) {
    const core::SimTime deadline =
        horizon * static_cast<double>(b) / static_cast<double>(barrier_count);
    pump_until(deadline);
    runner.for_each(
        shard_count,
        [&shards, deadline](std::size_t k) { shards[k]->queue.run_until(deadline); },
        dog);
    // Barrier (serial): merge + drop the window's samples, replay every
    // placement index's dirty log in one linear batch, and — in tests —
    // audit the whole datacenter.
    merger.merge(shards);
    for (std::size_t c = 0; c < dc.clusters().size(); ++c) {
      dc.cluster(c).flush_index();
    }
    debug_audit_check(dc);
  }
  // Final window: demux the remaining rows (arrivals at exactly the last
  // deadline, or past a 0 horizon), then drain completely (fault
  // repairs/retries may fire past the horizon).
  pump_all();
  runner.for_each(
      shard_count, [&shards](std::size_t k) { shards[k]->queue.run(); }, dog);
  merger.merge(shards);
  debug_audit_check(dc);

  RunResult result;
  for (const auto& shard : shards) {
    if (shard->engine.has_value()) {
      // Drained queues mean every intent is terminal; re-derive the counter
      // identity and the reservation <-> flight bijection per shard.
      SLACKVM_ASSERT(shard->engine->in_flight() == 0 &&
                     shard->engine->pending_intents() == 0);
      const std::vector<std::string> violations = shard->engine->audit();
      if (!violations.empty()) {
        std::string message = "replay_sharded: migration audit failed:";
        for (const std::string& v : violations) {
          message += "\n  " + v;
        }
        SLACKVM_THROW(message);
      }
    }
    const RunResult& p = shard->partial;
    result.migrations += p.migrations;
    result.placed_vms += p.placed_vms;
    result.host_failures += p.host_failures;
    result.host_repairs += p.host_repairs;
    result.drained_hosts += p.drained_hosts;
    result.evacuated_vms += p.evacuated_vms;
    result.evac_replaced += p.evac_replaced;
    result.evac_migrated += p.evac_migrated;
    result.evac_retries += p.evac_retries;
    result.evac_departed += p.evac_departed;
    result.degraded_vms += p.degraded_vms;
    result.deferred_arrivals += p.deferred_arrivals;
    result.arrivals_dropped += p.arrivals_dropped;
    result.mig_planned += p.mig_planned;
    result.mig_committed += p.mig_committed;
    result.mig_cancelled += p.mig_cancelled;
    result.mig_rolled_back += p.mig_rolled_back;
    result.mig_timed_out += p.mig_timed_out;
    result.mig_degraded += p.mig_degraded;
    result.mig_retries += p.mig_retries;
    result.heat_updates += p.heat_updates;
    result.itf_passes += p.itf_passes;
    result.itf_hot_hosts += p.itf_hot_hosts;
    result.itf_evictions += p.itf_evictions;
    result.itf_applied += p.itf_applied;
    result.itf_requested += p.itf_requested;
    result.itf_skipped += p.itf_skipped;
  }
  result.opened_pms = dc.opened_pms();
  result.opened_per_cluster = dc.opened_per_cluster();
  merger.finish(result);
  return result;
}

RunResult replay_sharded(Datacenter& dc, const workload::Trace& trace,
                         const ShardOptions& options) {
  MaterializedSource source(trace);
  return replay_sharded(dc, source, options);
}

}  // namespace slackvm::sim
