// Discrete-event simulation core: a time-ordered event queue with a
// monotonic clock. Ties are broken first by *lane*, then by insertion
// order, which makes every simulation fully deterministic.
//
// Lanes are a coarse priority band compared before the insertion-order
// tie-break. They exist for the streaming replay (sim/event_source.hpp):
// the materialized replay schedules every workload event before any
// control event (rebalance passes, usage samples, the fault timetable), so
// at equal timestamps workload events always fired first purely by
// insertion order. A streaming replay inserts workload events lazily —
// mid-run, after the control events — and the workload lane (kLaneWorkload
// < kLaneControl) preserves the exact same firing order without knowing
// the trace length up front. Within one lane the insertion-order tie-break
// applies unchanged, and a queue whose events all share a lane behaves
// exactly like the historical (time, insertion) ordering.
//
// That tie-break is queue-local: it totally orders events *within* one
// queue, but says nothing about events in different queues. The sharded
// engine (sim/shard.hpp) runs one EventQueue per shard, so cross-shard
// ordering needs its own rule — samples are merged by ascending time, ties
// across queues to the lowest shard index, within a queue in fire order
// (shard_merge_order). Regression-tested in tests/sim_event_queue_test.cpp
// and tests/sim_shard_test.cpp.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::sim {

/// Callback invoked when an event fires; receives the simulation time.
using EventAction = std::function<void(core::SimTime)>;

class EventQueue {
 public:
  /// Workload lane: trace arrivals/departures. Fires before kLaneControl at
  /// equal timestamps regardless of insertion order.
  static constexpr std::uint8_t kLaneWorkload = 0;
  /// Control lane (the default): rebalance passes, usage samples, fault
  /// timetables and their dynamically scheduled repairs/retries.
  static constexpr std::uint8_t kLaneControl = 1;

  /// Schedule `action` at absolute time `time` (>= now()) on the control
  /// lane.
  void schedule(core::SimTime time, EventAction action) {
    schedule_lane(time, kLaneControl, std::move(action));
  }

  /// Schedule on an explicit lane (see the lane constants above).
  void schedule_lane(core::SimTime time, std::uint8_t lane, EventAction action);

  /// Fire the earliest event; returns false when the queue is empty.
  bool step();

  /// Fire everything until the queue drains.
  void run();

  /// Fire everything scheduled strictly before `deadline`, then set the
  /// clock to `deadline`.
  void run_until(core::SimTime deadline);

  [[nodiscard]] core::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Timestamp of the earliest pending event; the queue must not be empty.
  [[nodiscard]] core::SimTime next_time() const {
    SLACKVM_ASSERT(!heap_.empty());
    return heap_.top().time;
  }

  // --- cross-thread progress probes (the stall watchdog reads these from
  // another thread while the owner is mid-run; everything else on this class
  // stays single-owner). Relaxed: the probes are diagnostics, not sync.

  /// Events fired so far over the queue's lifetime.
  [[nodiscard]] std::uint64_t fired_count() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

  /// Clock as of the most recently fired event (may trail now() while the
  /// owner sits between events; exact once the owner blocks).
  [[nodiscard]] core::SimTime approx_now() const noexcept {
    return std::bit_cast<core::SimTime>(now_bits_.load(std::memory_order_relaxed));
  }

 private:
  struct Entry {
    core::SimTime time;
    std::uint8_t lane;
    std::uint64_t seq;
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.lane != b.lane) {
        return a.lane > b.lane;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  core::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  // The atomics make EventQueue immovable; every owner holds it in place
  // (replay locals, heap-allocated shard states).
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> now_bits_{0};
};

}  // namespace slackvm::sim
