// Discrete-event simulation core: a time-ordered event queue with a
// monotonic clock. Ties are broken by insertion order, which makes every
// simulation fully deterministic.
//
// That tie-break is queue-local: it totally orders events *within* one
// queue, but says nothing about events in different queues. The sharded
// engine (sim/shard.hpp) runs one EventQueue per shard, so cross-shard
// ordering needs its own rule — samples are merged by ascending time, ties
// across queues to the lowest shard index, within a queue in fire order
// (shard_merge_order). Regression-tested in tests/sim_event_queue_test.cpp
// and tests/sim_shard_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::sim {

/// Callback invoked when an event fires; receives the simulation time.
using EventAction = std::function<void(core::SimTime)>;

class EventQueue {
 public:
  /// Schedule `action` at absolute time `time` (>= now()).
  void schedule(core::SimTime time, EventAction action);

  /// Fire the earliest event; returns false when the queue is empty.
  bool step();

  /// Fire everything until the queue drains.
  void run();

  /// Fire everything scheduled strictly before `deadline`, then set the
  /// clock to `deadline`.
  void run_until(core::SimTime deadline);

  [[nodiscard]] core::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Entry {
    core::SimTime time;
    std::uint64_t seq;
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  core::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace slackvm::sim
