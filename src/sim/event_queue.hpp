// Discrete-event simulation core: a time-ordered event queue with a
// monotonic clock. Ties are broken by insertion order, which makes every
// simulation fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::sim {

/// Callback invoked when an event fires; receives the simulation time.
using EventAction = std::function<void(core::SimTime)>;

class EventQueue {
 public:
  /// Schedule `action` at absolute time `time` (>= now()).
  void schedule(core::SimTime time, EventAction action);

  /// Fire the earliest event; returns false when the queue is empty.
  bool step();

  /// Fire everything until the queue drains.
  void run();

  /// Fire everything scheduled strictly before `deadline`, then set the
  /// clock to `deadline`.
  void run_until(core::SimTime deadline);

  [[nodiscard]] core::SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Entry {
    core::SimTime time;
    std::uint64_t seq;
    EventAction action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  core::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace slackvm::sim
