// Run-level metrics of a trace replay.
#pragma once

#include <map>
#include <string>

#include "core/resources.hpp"
#include "core/stats.hpp"

namespace slackvm::sim {

/// Result of replaying one trace against one Datacenter.
struct RunResult {
  std::size_t opened_pms = 0;  ///< minimal cluster size under the policy
  std::size_t peak_active_pms = 0;  ///< peak concurrently non-empty PMs
  std::size_t migrations = 0;       ///< live migrations performed (if enabled)
  std::map<std::string, std::size_t> opened_per_cluster;

  std::size_t placed_vms = 0;
  std::size_t peak_vms = 0;  ///< peak concurrently running VMs

  /// Time-weighted mean share of unallocated CPU (resp. memory) over the
  /// opened PMs, across the whole run — the Fig. 3 quantities.
  double avg_unalloc_cpu_share = 0.0;
  double avg_unalloc_mem_share = 0.0;

  /// Snapshot of the unallocated shares at the moment of peak CPU
  /// allocation (the "full datacenter" view).
  double peak_unalloc_cpu_share = 0.0;
  double peak_unalloc_mem_share = 0.0;

  /// Inputs of the energy model (sim/power.hpp).
  core::SimTime duration = 0.0;      ///< observed span of the run
  double avg_active_pms = 0.0;       ///< time-weighted non-empty PMs
  double avg_alloc_cores = 0.0;      ///< time-weighted allocated cores

  // --- fault injection (sim/fault.hpp); all zero with faults disabled ----
  // Once the queue drains, every evicted VM is accounted exactly once:
  // evacuated_vms == evac_replaced + evac_departed + degraded_vms.
  std::size_t host_failures = 0;     ///< failures applied to a live host
  std::size_t host_repairs = 0;      ///< hosts brought back to UP
  std::size_t drained_hosts = 0;     ///< UP -> DRAINING transitions applied
  std::size_t evacuated_vms = 0;     ///< VMs evicted by host failures
  std::size_t evac_replaced = 0;     ///< victims re-placed (now or on retry)
  std::size_t evac_migrated = 0;     ///< VMs moved off draining hosts pre-failure
  std::size_t evac_retries = 0;      ///< backoff retry attempts for victims
  std::size_t evac_departed = 0;     ///< victims departing while still waiting
  std::size_t degraded_vms = 0;      ///< victims parked in the degraded queue
  std::size_t deferred_arrivals = 0; ///< arrivals deferred for lack of capacity
  std::size_t arrivals_dropped = 0;  ///< deferred arrivals never placed

  // --- time-extended migrations (sim/migration.hpp); zero in instant mode --
  // Once the queue drains, every accepted rebalance intent is terminal in
  // exactly one bucket:
  //   mig_planned == mig_committed + mig_cancelled + mig_rolled_back
  //                  + mig_timed_out + mig_degraded.
  std::size_t mig_planned = 0;      ///< rebalance intents accepted by the engine
  std::size_t mig_committed = 0;    ///< flights that completed and moved the VM
  std::size_t mig_cancelled = 0;    ///< intents overtaken by departure/failure/drain of the source
  std::size_t mig_rolled_back = 0;  ///< flights aborted by dest failure/drain, retries exhausted
  std::size_t mig_timed_out = 0;    ///< flights aborted by the pre-copy timeout
  std::size_t mig_degraded = 0;     ///< intents parked after no destination was found
  std::size_t mig_retries = 0;      ///< backoff retry attempts (not part of the identity)

  // --- interference loop (sched/rebalancer.hpp polluter pass + the heat
  // feeder in sim/usage_monitor.hpp); all zero with interference disabled.
  // Every planned eviction lands in exactly one terminal bucket:
  //   itf_evictions == itf_applied + itf_requested + itf_skipped
  // (instant mode splits between applied and skipped; engine mode hands
  // every eviction over as an intent, which then also shows up in the
  // mig_* identity above).
  std::size_t heat_updates = 0;   ///< per-host heat EWMA refreshes
  std::size_t itf_passes = 0;     ///< polluter-detection passes run
  std::size_t itf_hot_hosts = 0;  ///< hosts found above the inflation threshold
  std::size_t itf_evictions = 0;  ///< polluter evictions planned
  std::size_t itf_applied = 0;    ///< evictions applied instantly
  std::size_t itf_requested = 0;  ///< evictions handed to the MigrationEngine
  std::size_t itf_skipped = 0;    ///< planned evictions no longer applicable
};

/// Streaming collector driven by the replay loop.
class MetricsCollector {
 public:
  /// Record cluster state after an event at `time`.
  void observe(core::SimTime time, const core::Resources& alloc,
               const core::Resources& config, std::size_t running_vms,
               std::size_t active_pms);

  /// Finalize at `end_time` into `result` (fills the share/peak fields).
  void finish(core::SimTime end_time, RunResult& result) const;

 private:
  core::TimeWeightedMean unalloc_cpu_;
  core::TimeWeightedMean unalloc_mem_;
  core::TimeWeightedMean active_pms_;
  core::TimeWeightedMean alloc_cores_;
  std::size_t peak_vms_ = 0;
  core::CoreCount peak_alloc_cores_ = 0;
  double peak_cpu_share_ = 0.0;
  double peak_mem_share_ = 0.0;
};

}  // namespace slackvm::sim
