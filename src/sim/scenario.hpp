// Scenario files: declarative experiment configurations.
//
// A scenario is a small "key value" text file describing one
// baseline-vs-SlackVM comparison (provider, distribution, scale, knobs), so
// experiments can be versioned and shared instead of encoded in shell
// flags. Used by `slackvm run-scenario` and the shipped scenarios/ files.
//
// Format (lines starting with '#' and blanks ignored):
//
//   name         f-at-scale
//   provider     ovhcloud          # azure | ovhcloud
//   distribution F                 # A..O
//   population   500
//   seed         42
//   repetitions  3
//   parallelism  1                 # worker threads (0 = all cores); results
//                                  # are identical at every value
//   shards       1                 # sharded datacenter engine (sim/shard.hpp):
//                                  # 1 = serial reference; > 1 = cell-partitioned
//                                  # sharded replay (bit-identical across
//                                  # parallelism/index for a given value)
//   index        on                # incremental placement index (on|off);
//                                  # results identical, off = naive scan
//   mem_oversub  1.0
//   horizon_days 7
//   lifetime_days 2
//   diurnal      0.0
//   trace        traces/sap_month.csv   # optional: stream this CSV
//                                  # (workload::TraceReader, native or real
//                                  # format) instead of generating a
//                                  # workload; population/seed/horizon then
//                                  # only shape the fault seeds
//
// Fault injection (sim/fault.hpp) — all optional, default off:
//
//   faults        100               # seed-derived host failures over the run
//   fault_seed    0                 # 0 = derive from the workload seed
//   repair_delay_s 14400            # FAILED -> UP delay for seeded failures
//   drain_lead_s  0                 # grace drain before each seeded failure
//   evac_retries  5                 # evacuation retry budget per victim
//   evac_backoff_s 60               # base of the exponential retry backoff
//   fail   host=3 at=86400          # explicit events (cluster=N optional);
//   repair host=3 at=90000          # explicit failures never auto-repair
//   drain  host=7 at=43200
//
// Continuous rebalance / live migration (sim/migration.hpp) — optional:
//
//   rebalance_s     21600            # consolidation cadence (0 = off)
//   rebalance_budget 64              # migrations planned per cluster/pass
//   migration       engine           # engine = time-extended flights with
//                                    # retry/rollback; instant = legacy
//                                    # apply_plan teleport
//   mig_bw_mibps    1024             # pre-copy bandwidth (flight duration =
//                                    # VM mem / bandwidth)
//   mig_cap         2                # concurrent flights per host (src+dst)
//   mig_in_flight   16               # concurrent flights per cluster
//   mig_timeout_s   0                # per-flight deadline (0 = none)
//   mig_retries     3                # rollback retry budget per VM
//   mig_backoff_s   60               # base of the exponential retry backoff
//
// Interference loop (sched/rebalancer.hpp, needs rebalance_s > 0) — optional:
//
//   interference    on               # arm the heat EWMA + polluter pass
//                                    # (and heat-aware shared-policy scoring)
//   heat_interval_s 900              # seconds between heat EWMA refreshes
//   heat_alpha      0.3              # EWMA smoothing factor in (0, 1]
//   heat_bucket     0.25             # heat quantization bucket width
//   heat_weight     4.0              # scorer penalty per unit quantized heat
//   itf_threshold   1.25             # polluter pass fires above this
//                                    # contention inflation (1.0 = none)
//   itf_evictions   4                # polluter evictions per pass
//
// Every scalar key may appear at most once (duplicates are parse errors),
// and takes exactly one value (trailing tokens are parse errors);
// fail/drain/repair directives may repeat.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/experiment.hpp"

namespace slackvm::sim {

struct Scenario {
  std::string name = "unnamed";
  std::string provider = "ovhcloud";
  char distribution = 'F';
  ExperimentConfig config;

  /// The catalog the scenario refers to; throws on unknown providers.
  [[nodiscard]] const workload::Catalog& catalog() const;

  /// The level mix; throws on distributions outside A..O.
  [[nodiscard]] const workload::LevelMix& mix() const;

  /// Execute the scenario's comparison.
  [[nodiscard]] PackingComparison run() const;
};

/// Parse a scenario file; throws core::SlackError with a line-numbered
/// message on malformed input or unknown keys.
[[nodiscard]] Scenario parse_scenario(std::istream& input);

/// Serialize (round-trips with the parser).
void write_scenario(const Scenario& scenario, std::ostream& output);

}  // namespace slackvm::sim
