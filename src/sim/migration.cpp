#include "sim/migration.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace slackvm::sim {

MigrationEngine::MigrationEngine(Datacenter& dc, EventQueue& queue,
                                 const MigrationConfig& config, RunResult& result,
                                 std::function<void(core::SimTime)> observe,
                                 ShardScope scope)
    : dc_(dc),
      queue_(queue),
      config_(config),
      scope_(scope),
      result_(result),
      observe_(std::move(observe)),
      scorer_(std::make_unique<sched::ProgressScorer>()),
      lanes_(dc.clusters().size()) {
  SLACKVM_ASSERT(config_.bandwidth_mibps > 0.0);
  SLACKVM_ASSERT(config_.max_concurrent_per_host > 0);
  SLACKVM_ASSERT(config_.max_in_flight > 0);
  SLACKVM_ASSERT(observe_ != nullptr);
}

bool MigrationEngine::request(std::size_t cluster, const sched::Migration& migration,
                              core::SimTime now) {
  if (!scope_.owns(cluster)) {
    return false;
  }
  const core::VmId vm = migration.vm;
  if (parked_.contains(vm) || intents_.contains(vm)) {
    return false;
  }
  sched::VCluster& cl = dc_.cluster(cluster);
  if (!cl.contains(vm) || cl.host_of(vm) == migration.to) {
    return false;
  }
  ++result_.mig_planned;
  Intent intent;
  intent.cluster = cluster;
  intent.hint = migration.to;
  intents_.emplace(vm, intent);
  lanes_[cluster].waiting.push_back(vm);
  pump(cluster, now);
  return true;
}

void MigrationEngine::pump(std::size_t cluster, core::SimTime now) {
  Lane& lane = lanes_[cluster];
  bool moved = false;
  while (lane.in_flight < config_.max_in_flight && !lane.waiting.empty()) {
    if (!launch_head(cluster, now)) {
      break;  // head blocked on its saturated source; a completion re-pumps
    }
    moved = true;
  }
  if (moved) {
    // Reservations double-book arena aggregates, so launches (and parked /
    // cancelled heads) change what the metrics see.
    observe_(now);
  }
}

bool MigrationEngine::launch_head(std::size_t cluster, core::SimTime now) {
  Lane& lane = lanes_[cluster];
  const core::VmId vm = lane.waiting.front();
  const auto it = intents_.find(vm);
  SLACKVM_ASSERT(it != intents_.end() && it->second.phase == Phase::kWaiting);
  sched::VCluster& cl = dc_.cluster(cluster);
  if (!cl.contains(vm)) {
    // Belt and braces: departures/failures cancel eagerly, so a vanished VM
    // here means a missed notification — still terminal, still counted.
    lane.waiting.pop_front();
    ++result_.mig_cancelled;
    intents_.erase(it);
    return true;
  }
  const sched::HostId source = cl.host_of(vm);
  if (src_slot(cluster, source) >= config_.max_concurrent_per_host) {
    // Head-of-line block keeps the FIFO strict (no overtaking, so the launch
    // order cannot depend on queue-scan details). Progress is safe: a
    // saturated source implies flights in the air whose completion pumps.
    return false;
  }
  const core::VmSpec spec = cl.hosts()[source].spec_of(vm);
  Intent& intent = it->second;
  const auto dest = pick_dest(cl, lane, source, intent.hint, spec);
  lane.waiting.pop_front();
  if (!dest) {
    retry_or_degrade(vm, intent, now);
    return true;
  }
  const bool reserved = cl.try_reserve(*dest, vm, spec);
  SLACKVM_ASSERT(reserved);  // pick_dest checked can_host inside this event
  intent.phase = Phase::kInFlight;
  intent.source = source;
  intent.dest = *dest;
  intent.spec = spec;
  intent.ticket = ++next_ticket_;
  ++lane.in_flight;
  ++src_slot(cluster, source);
  ++dst_slot(cluster, *dest);
  in_flight_total_.fetch_add(1, std::memory_order_relaxed);
  const core::SimTime duration =
      static_cast<core::SimTime>(spec.mem_mib) / config_.bandwidth_mibps;
  const std::uint64_t ticket = intent.ticket;
  // Completion first, timeout second: at an exact tie the insertion-order
  // tie-break lets the flight land. A timeout >= duration can never fire
  // meaningfully, so it is not scheduled at all.
  queue_.schedule(now + duration,
                  [this, vm, ticket](core::SimTime at) { complete(vm, ticket, at); });
  if (config_.timeout > 0 && config_.timeout < duration) {
    queue_.schedule(now + config_.timeout, [this, vm, ticket](core::SimTime at) {
      flight_timeout(vm, ticket, at);
    });
  }
  return true;
}

std::optional<sched::HostId> MigrationEngine::pick_dest(const sched::VCluster& cl,
                                                        const Lane& lane,
                                                        sched::HostId source,
                                                        sched::HostId hint,
                                                        const core::VmSpec& spec) const {
  const auto sink_free = [&](sched::HostId host) {
    return host >= lane.dst_busy.size() ||
           lane.dst_busy[host] < config_.max_concurrent_per_host;
  };
  const std::vector<sched::HostState>& hosts = cl.hosts();
  const auto viable = [&](sched::HostId host) {
    return host != source && sink_free(host) && hosts[host].can_host(spec);
  };
  // The planner's choice stands whenever it is still viable — the plan was
  // computed against reservation-aware state, so this is the common case.
  if (hint < hosts.size() && viable(hint)) {
    return hint;
  }
  // Re-pick: best scorer value among viable hosts, ties to the lowest
  // HostId (ascending scan + strict improvement).
  std::optional<sched::HostId> best;
  double best_score = 0.0;
  for (const sched::HostState& host : hosts) {
    if (!viable(host.id())) {
      continue;
    }
    const double score = scorer_->score(host, spec);
    if (!best || score > best_score) {
      best = host.id();
      best_score = score;
    }
  }
  return best;
}

void MigrationEngine::complete(core::VmId vm, std::uint64_t ticket, core::SimTime now) {
  const auto it = intents_.find(vm);
  if (it == intents_.end() || it->second.phase != Phase::kInFlight ||
      it->second.ticket != ticket) {
    return;  // stale: the flight was aborted after this event was scheduled
  }
  Intent& intent = it->second;
  const std::size_t cluster = intent.cluster;
  dc_.cluster(cluster).commit_migration(vm, intent.dest);
  Lane& lane = lanes_[cluster];
  --lane.in_flight;
  --src_slot(cluster, intent.source);
  --dst_slot(cluster, intent.dest);
  in_flight_total_.fetch_sub(1, std::memory_order_relaxed);
  ++result_.mig_committed;
  ++result_.migrations;
  intents_.erase(it);
  observe_(now);
  pump(cluster, now);
}

void MigrationEngine::flight_timeout(core::VmId vm, std::uint64_t ticket,
                                     core::SimTime now) {
  const auto it = intents_.find(vm);
  if (it == intents_.end() || it->second.phase != Phase::kInFlight ||
      it->second.ticket != ticket) {
    return;  // stale
  }
  Intent& intent = it->second;
  const std::size_t cluster = intent.cluster;
  abort_flight(vm, intent);
  // Terminal, not retried: durations are deterministic functions of the
  // spec, so the retry would hit the same timeout.
  ++result_.mig_timed_out;
  parked_.insert(vm);
  intents_.erase(it);
  observe_(now);
  pump(cluster, now);
}

void MigrationEngine::retry(core::VmId vm, std::uint64_t ticket, core::SimTime now) {
  const auto it = intents_.find(vm);
  if (it == intents_.end() || it->second.phase != Phase::kBackoff ||
      it->second.ticket != ticket) {
    return;  // stale: cancelled (departure / source failure) while backing off
  }
  it->second.phase = Phase::kWaiting;
  lanes_[it->second.cluster].waiting.push_back(vm);
  pump(it->second.cluster, now);
}

void MigrationEngine::abort_flight(core::VmId vm, Intent& intent) {
  SLACKVM_ASSERT(intent.phase == Phase::kInFlight);
  dc_.cluster(intent.cluster).release_reservation(intent.dest, vm);
  Lane& lane = lanes_[intent.cluster];
  --lane.in_flight;
  --src_slot(intent.cluster, intent.source);
  --dst_slot(intent.cluster, intent.dest);
  in_flight_total_.fetch_sub(1, std::memory_order_relaxed);
}

namespace {

core::SimTime backoff_delay(core::SimTime base, std::size_t attempts) {
  // attempts >= 1; cap the shift so the doubling cannot overflow.
  const std::size_t shift = std::min<std::size_t>(attempts - 1, 62);
  return base * static_cast<core::SimTime>(std::uint64_t{1} << shift);
}

}  // namespace

void MigrationEngine::retry_or_roll_back(core::VmId vm, Intent& intent,
                                         core::SimTime now) {
  ++intent.attempts;
  if (intent.attempts > config_.max_retries) {
    ++result_.mig_rolled_back;
    parked_.insert(vm);
    intents_.erase(vm);
    return;
  }
  ++result_.mig_retries;
  intent.phase = Phase::kBackoff;
  intent.ticket = ++next_ticket_;
  const std::uint64_t ticket = intent.ticket;
  queue_.schedule(now + backoff_delay(config_.backoff_base, intent.attempts),
                  [this, vm, ticket](core::SimTime at) { retry(vm, ticket, at); });
}

void MigrationEngine::retry_or_degrade(core::VmId vm, Intent& intent,
                                       core::SimTime now) {
  ++intent.attempts;
  if (intent.attempts > config_.max_retries) {
    ++result_.mig_degraded;
    parked_.insert(vm);
    intents_.erase(vm);
    return;
  }
  ++result_.mig_retries;
  intent.phase = Phase::kBackoff;
  intent.ticket = ++next_ticket_;
  const std::uint64_t ticket = intent.ticket;
  queue_.schedule(now + backoff_delay(config_.backoff_base, intent.attempts),
                  [this, vm, ticket](core::SimTime at) { retry(vm, ticket, at); });
}

void MigrationEngine::on_host_failing(std::size_t cluster, sched::HostId host,
                                      core::SimTime now) {
  on_host_draining(cluster, host, now);
}

void MigrationEngine::on_host_draining(std::size_t cluster, sched::HostId host,
                                       core::SimTime now) {
  if (!scope_.owns(cluster)) {
    return;
  }
  sched::VCluster& cl = dc_.cluster(cluster);
  // Classify first, mutate second: intents_ is ordered by VmId, so this scan
  // (and therefore the retry/cancel event order) is deterministic.
  enum class Action : std::uint8_t { kCancel, kReroute };
  std::vector<std::pair<core::VmId, Action>> touched;
  for (const auto& [vm, intent] : intents_) {
    if (intent.cluster != cluster) {
      continue;
    }
    const sched::HostId source =
        intent.phase == Phase::kInFlight ? intent.source : cl.host_of(vm);
    if (source == host) {
      // The source is going away: a failure evicts the VM into the PR 3
      // evacuation path, a drain hands it to migrate_off. Either way this
      // intent no longer owns the VM.
      touched.emplace_back(vm, Action::kCancel);
    } else if (intent.phase == Phase::kInFlight && intent.dest == host) {
      touched.emplace_back(vm, Action::kReroute);
    }
  }
  bool lane_dirty = false;
  for (const auto& [vm, action] : touched) {
    Intent& intent = intents_.at(vm);
    if (action == Action::kCancel) {
      switch (intent.phase) {
        case Phase::kInFlight:
          abort_flight(vm, intent);
          lane_dirty = true;
          break;
        case Phase::kWaiting:
          erase_waiting(cluster, vm);
          break;
        case Phase::kBackoff:
          break;  // the pending retry event goes stale with the intent
      }
      ++result_.mig_cancelled;
      intents_.erase(vm);
    } else {
      abort_flight(vm, intent);
      lane_dirty = true;
      retry_or_roll_back(vm, intent, now);
    }
  }
  if (lane_dirty && !lanes_[cluster].waiting.empty()) {
    // Refill the freed slots *after* the caller's phase transition lands —
    // pumping now could reserve on the very host that is about to leave UP.
    queue_.schedule(now,
                    [this, cluster](core::SimTime at) { pump(cluster, at); });
  }
}

void MigrationEngine::on_departure(core::VmId id, core::SimTime now) {
  parked_.erase(id);
  const auto it = intents_.find(id);
  if (it == intents_.end()) {
    return;
  }
  Intent& intent = it->second;
  const std::size_t cluster = intent.cluster;
  bool freed_slot = false;
  switch (intent.phase) {
    case Phase::kInFlight:
      abort_flight(id, intent);
      freed_slot = true;
      break;
    case Phase::kWaiting:
      erase_waiting(cluster, id);
      break;
    case Phase::kBackoff:
      break;  // the pending retry event goes stale with the intent
  }
  ++result_.mig_cancelled;
  intents_.erase(it);
  if (freed_slot && !lanes_[cluster].waiting.empty()) {
    // Deferred for the same reason as the fault hooks: let the departure
    // itself land before the freed slot is refilled.
    queue_.schedule(now,
                    [this, cluster](core::SimTime at) { pump(cluster, at); });
  }
}

void MigrationEngine::erase_waiting(std::size_t cluster, core::VmId vm) {
  auto& waiting = lanes_[cluster].waiting;
  const auto pos = std::find(waiting.begin(), waiting.end(), vm);
  SLACKVM_ASSERT(pos != waiting.end());
  waiting.erase(pos);
}

std::size_t& MigrationEngine::src_slot(std::size_t cluster, sched::HostId host) {
  auto& busy = lanes_[cluster].src_busy;
  if (host >= busy.size()) {
    busy.resize(host + 1, 0);
  }
  return busy[host];
}

std::size_t& MigrationEngine::dst_slot(std::size_t cluster, sched::HostId host) {
  auto& busy = lanes_[cluster].dst_busy;
  if (host >= busy.size()) {
    busy.resize(host + 1, 0);
  }
  return busy[host];
}

std::vector<std::string> MigrationEngine::audit() const {
  std::vector<std::string> out;
  const auto fail = [&](const std::string& message) {
    out.push_back("migration: " + message);
  };

  // Counter identity, with the still-active intents as the balancing term;
  // once the queue drains intents_ is empty and the identity is exact.
  const std::size_t terminal = result_.mig_committed + result_.mig_cancelled +
                               result_.mig_rolled_back + result_.mig_timed_out +
                               result_.mig_degraded;
  if (result_.mig_planned != terminal + intents_.size()) {
    std::ostringstream os;
    os << "counter identity broken: planned " << result_.mig_planned
       << " != committed " << result_.mig_committed << " + cancelled "
       << result_.mig_cancelled << " + rolled_back " << result_.mig_rolled_back
       << " + timed_out " << result_.mig_timed_out << " + degraded "
       << result_.mig_degraded << " + active " << intents_.size();
    fail(os.str());
  }

  // Flight <-> reservation bijection and per-lane bookkeeping.
  std::vector<std::size_t> flights_per_cluster(lanes_.size(), 0);
  for (const auto& [vm, intent] : intents_) {
    if (intent.phase != Phase::kInFlight) {
      continue;
    }
    ++flights_per_cluster[intent.cluster];
    const sched::VCluster& cl = dc_.cluster(intent.cluster);
    if (intent.dest >= cl.hosts().size() ||
        !cl.hosts()[intent.dest].has_reservation(vm)) {
      fail("VM " + std::to_string(vm.value) + " in flight but host " +
           std::to_string(intent.dest) + " holds no reservation");
    }
  }
  std::size_t total_flights = 0;
  for (std::size_t c = 0; c < lanes_.size(); ++c) {
    if (!scope_.owns(c)) {
      continue;
    }
    const Lane& lane = lanes_[c];
    total_flights += lane.in_flight;
    if (lane.in_flight != flights_per_cluster[c]) {
      fail("cluster " + std::to_string(c) + " lane counts " +
           std::to_string(lane.in_flight) + " flights but " +
           std::to_string(flights_per_cluster[c]) + " intents are in flight");
    }
    std::size_t reserved = 0;
    for (const sched::HostState& h : dc_.cluster(c).hosts()) {
      reserved += h.reservation_count();
    }
    if (reserved != flights_per_cluster[c]) {
      fail("cluster " + std::to_string(c) + " hosts hold " +
           std::to_string(reserved) + " reservations but " +
           std::to_string(flights_per_cluster[c]) + " flights are in the air");
    }
    const auto sum = [](const std::vector<std::size_t>& v) {
      std::size_t s = 0;
      for (const std::size_t x : v) {
        s += x;
      }
      return s;
    };
    if (sum(lane.src_busy) != lane.in_flight || sum(lane.dst_busy) != lane.in_flight) {
      fail("cluster " + std::to_string(c) + " per-host busy counts diverge from " +
           std::to_string(lane.in_flight) + " flights");
    }
  }
  if (total_flights != in_flight()) {
    fail("atomic in-flight total " + std::to_string(in_flight()) +
         " != lane sum " + std::to_string(total_flights));
  }
  return out;
}

}  // namespace slackvm::sim
