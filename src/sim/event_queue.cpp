#include "sim/event_queue.hpp"

#include <utility>

namespace slackvm::sim {

void EventQueue::schedule_lane(core::SimTime time, std::uint8_t lane,
                               EventAction action) {
  SLACKVM_ASSERT(time >= now_);
  heap_.push(Entry{time, lane, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the Entry must be moved out before
  // pop so re-entrant schedule() calls from the action are safe.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  // Publish progress before firing: a watchdog sampling mid-action sees the
  // event that is (possibly) stuck, not the one before it.
  fired_.fetch_add(1, std::memory_order_relaxed);
  now_bits_.store(std::bit_cast<std::uint64_t>(now_), std::memory_order_relaxed);
  entry.action(now_);
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(core::SimTime deadline) {
  while (!heap_.empty() && heap_.top().time < deadline) {
    step();
  }
  SLACKVM_ASSERT(deadline >= now_);
  now_ = deadline;
}

}  // namespace slackvm::sim
