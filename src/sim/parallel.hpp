// Parallel experiment engine.
//
// The paper's evaluation protocols (Fig. 3 sweep, Fig. 4 heatmap, Table 4
// response times) are embarrassingly parallel grids of independently seeded
// trace replays. This header provides the machinery to fan those grids out
// over a work-stealing thread pool while keeping results bit-identical to a
// serial run:
//
//  * every task is addressed by a stable index; anything stochastic inside
//    a task derives its stream via core::derive_seed(base, index), never
//    from pool scheduling order;
//  * results are collected into an index-addressed vector, so reductions
//    happen in task-index order regardless of completion order;
//  * with parallelism <= 1 no threads are created at all — the tasks run
//    inline on the calling thread, in index order.
//
// Determinism guarantee: for a pure task function f(i), ParallelRunner::map
// returns exactly the vector {f(0), f(1), ..., f(n-1)} for every thread
// count, so serial and parallel experiment results are interchangeable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/rng.hpp"

namespace slackvm::sim {

/// Resolve a parallelism knob: 0 means "all hardware threads", anything
/// else is taken literally (including 1 = serial).
[[nodiscard]] std::size_t resolve_parallelism(std::size_t requested) noexcept;

/// Bounded-wait stall watchdog for a task batch. A lost worker (deadlocked
/// event handler, livelocked barrier) turns a hang into a diagnosed abort:
/// whenever the batch has made no progress for `timeout`, `on_stall` runs
/// on the waiting thread (dump per-shard progress, in-flight state, ...)
/// and, when `fatal`, the process aborts — a stack-producing crash beats an
/// infinite CI hang. Non-fatal watchdogs keep waiting after the dump (the
/// testable path). timeout <= 0 disables the watchdog entirely.
struct WatchdogConfig {
  std::chrono::milliseconds timeout{0};
  std::function<void()> on_stall;  ///< may be empty; called once per expiry
  bool fatal = true;
};

/// Work-stealing thread pool over indexed task batches (std::thread +
/// std::mutex/std::condition_variable only, no external dependencies).
///
/// A batch of n tasks is dealt block-wise into per-worker deques; each
/// worker drains its own deque LIFO and, when empty, steals FIFO from the
/// most loaded victim. Stealing moves whole indices, so which thread runs a
/// task never changes what the task computes — only when.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). Workers idle on a condition
  /// variable between batches.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run task(0) .. task(count-1), blocking until every index completed.
  /// The first exception thrown by any task is rethrown here (remaining
  /// tasks still run to completion, keeping the pool reusable). A watchdog
  /// (optional) bounds the completion wait: it covers work executing on the
  /// pool's workers, not the indices the calling thread drains itself
  /// first.
  void run(std::size_t count, const std::function<void(std::size_t)>& task,
           const WatchdogConfig* watchdog = nullptr);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::size_t> indices;
  };

  void worker_loop(std::size_t self);
  [[nodiscard]] bool try_pop(std::size_t self, std::size_t& index);
  void execute(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;  ///< workers wait here between batches
  std::condition_variable done_cv_;   ///< run() waits here for completion
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t batch_epoch_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

/// Front end used by the experiment protocols: an ordered parallel map with
/// a serial fast path.
class ParallelRunner {
 public:
  /// `parallelism` as in resolve_parallelism(); <= 1 runs everything inline
  /// on the calling thread (no pool is created).
  explicit ParallelRunner(std::size_t parallelism);

  [[nodiscard]] std::size_t parallelism() const noexcept { return parallelism_; }

  /// The canonical per-task seed for task `index` under base seed `base`
  /// (stable: independent of thread count and scheduling order).
  [[nodiscard]] static std::uint64_t task_seed(std::uint64_t base,
                                               std::size_t index) noexcept {
    return core::derive_seed(base, index);
  }

  /// Ordered map: returns {fn(0), ..., fn(count-1)}. R must be default- and
  /// move-constructible. fn must not depend on execution order.
  template <typename R>
  [[nodiscard]] std::vector<R> map(std::size_t count,
                                   const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(count);
    for_each(count, [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Indexed for-each with the same ordering/determinism contract as map().
  /// The watchdog (optional) is forwarded to ThreadPool::run; the serial
  /// fast path ignores it (an inline loop cannot lose a worker).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn,
                const WatchdogConfig* watchdog = nullptr);

 private:
  std::size_t parallelism_;
  std::unique_ptr<ThreadPool> pool_;  ///< null on the serial fast path
};

}  // namespace slackvm::sim
