// Fault injection: host failures, drains and repairs driven through the
// discrete-event simulator, with a deterministic evacuation engine.
//
// The paper's packing claim is only useful if every oversubscription
// level's constraint survives the events a production fleet actually sees —
// capacity loss above all (cf. Coach's mitigation planning and the SAP
// dataset's failure-driven rescheduling churn). This subsystem adds that
// dimension to the simulator:
//
//  * *Schedules* — faults come from two sources, freely mixed: a
//    seed-derived timetable (`count` failures at times uniform over the
//    horizon, host slots resolved against the live fleet at fire time; all
//    randomness flows through core::derive_seed so a schedule depends only
//    on (seed, k)) and explicit scenario directives
//    (`fail host=3 at=86400`). Seeded failures auto-repair after
//    `repair_delay`; explicit ones repair only when a directive says so.
//  * *Evacuation* — failing a host evicts its VMs (ascending VmId order)
//    and re-places each through the exact policy/index path every other
//    placement takes. A victim with no feasible target enters a bounded
//    exponential-backoff retry loop (`backoff_base * 2^k`, `max_retries`
//    attempts); when retries are exhausted it is parked in the *degraded
//    queue* — counted in RunResult::degraded_vms — instead of aborting the
//    run. Arrivals that find no capacity (fixed fleets) take the same
//    graceful path.
//  * *Drains* — with `drain_lead > 0`, each seeded failure is preceded by a
//    graceful drain: admission stops and VMs are live-migrated off through
//    the policy path; whatever could not move is evacuated by the failure.
//
// Everything is replayed through the EventQueue (ties break by insertion
// order), so a fault-heavy run is bit-identical across --parallelism
// settings and --index=on|off — proven by tests/sim_fault_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/rng.hpp"
#include "core/vm.hpp"
#include "sim/datacenter.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace slackvm::sim {

class MigrationEngine;

/// One explicit fault event (a scenario `fail|drain|repair` directive).
struct FaultDirective {
  enum class Kind : std::uint8_t { kFail, kDrain, kRepair };
  Kind kind = Kind::kFail;
  core::SimTime at = 0;
  sched::HostId host = 0;
  std::size_t cluster = 0;  ///< cluster index (0 in shared mode)

  friend bool operator==(const FaultDirective&, const FaultDirective&) = default;
};

/// Fault-injection knobs (ExperimentConfig::faults; scenario keys in
/// sim/scenario.hpp). Default-constructed == fault injection off.
struct FaultConfig {
  /// Seed-derived host failures spread uniformly over the trace horizon.
  std::size_t count = 0;
  /// Base seed of the fault timetable; 0 = derive from the workload seed
  /// (resolve_fault_seed), so repetitions see independent schedules.
  std::uint64_t seed = 0;
  /// FAILED → UP delay for seeded failures (default 4 h).
  core::SimTime repair_delay = 4.0 * 3600;
  /// Grace period before each seeded failure during which the host drains
  /// (admission stops, VMs migrate off). 0 = hard kill.
  core::SimTime drain_lead = 0.0;
  /// Bounded retry/backoff of the evacuation engine: a victim is retried at
  /// backoff_base, 2x, 4x, ... after its immediate re-place attempt fails,
  /// at most max_retries times, then degrades.
  std::size_t max_retries = 5;
  core::SimTime backoff_base = 60.0;
  /// Explicit events, applied in addition to the seeded timetable.
  std::vector<FaultDirective> directives;

  [[nodiscard]] bool enabled() const noexcept {
    return count > 0 || !directives.empty();
  }
};

/// Stable stream index separating the fault timetable from every other
/// consumer of the workload seed (same pinning rationale as
/// core::derive_seed's golden constants).
inline constexpr std::uint64_t kFaultSeedStream = 0xFA173EED;

/// Copy of `config` with seed 0 resolved to derive_seed(workload_seed,
/// kFaultSeedStream); explicit seeds pass through untouched.
[[nodiscard]] FaultConfig resolve_fault_seed(FaultConfig config,
                                             std::uint64_t workload_seed) noexcept;

/// Which slice of the datacenter a FaultInjector drives: clusters whose
/// index is `shard` modulo `of`. The default ({0, 1}) is the whole
/// datacenter — the serial replay. The sharded engine (sim/shard.hpp) gives
/// each shard its own injector scoped to its clusters; every injector arms
/// the full seeded timetable and keeps exactly the events it owns, so the
/// union across shards is the serial timetable, split without overlap.
struct ShardScope {
  std::size_t shard = 0;
  std::size_t of = 1;

  [[nodiscard]] bool owns(std::size_t cluster) const noexcept {
    return cluster % of == shard;
  }
};

/// Drives one replay's fault timetable and evacuation queue. Owned by
/// replay(); all mutation happens inside queue events, so the injector is
/// exactly as deterministic as the queue.
class FaultInjector {
 public:
  /// `observe` is replay()'s metrics observation callback, invoked after
  /// every state-changing fault event. All references must outlive the
  /// injector (replay scope).
  /// `scope` restricts the injector to the clusters it owns (sharded runs);
  /// the default is the whole datacenter.
  FaultInjector(Datacenter& dc, EventQueue& queue, const FaultConfig& config,
                RunResult& result, std::function<void(core::SimTime)> observe,
                ShardScope scope = {});

  /// Schedule the whole timetable (seeded + directives) onto the queue.
  /// Call once, after the trace events are scheduled, so equal-time faults
  /// fire after the workload events that tie with them.
  void arm(core::SimTime horizon);

  /// Notify this engine (sim/migration.hpp) *before* a drain or failure
  /// mutates the fleet, so in-flight migration reservations on the dying
  /// host roll back and flights off it convert to evacuations. nullptr
  /// (the default) disarms the hook. The engine must outlive the injector.
  void set_migration_engine(MigrationEngine* engine) noexcept {
    migration_engine_ = engine;
  }

  /// Arrival path under fault injection: place now, or defer into the
  /// retry/degraded machinery when no capacity admits the VM.
  void deploy_or_defer(core::VmId id, const core::VmSpec& spec, core::SimTime now);

  /// Departure of a VM that is not currently placed (waiting for a retry or
  /// parked in the degraded queue): account for it and return true. Returns
  /// false when the VM is unknown here and the caller must remove it from
  /// the datacenter as usual.
  bool absorb_departure(core::VmId id);

  /// VMs currently waiting for a retry (0 once the queue has drained).
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

  /// VMs parked in the degraded queue right now (metrics count admissions,
  /// this counts current occupancy: departures leave the queue).
  [[nodiscard]] std::size_t degraded() const noexcept { return degraded_.size(); }

 private:
  struct Pending {
    core::VmSpec spec;
    std::size_t attempts = 0;    ///< failed placement attempts so far
    bool from_failure = false;   ///< evacuation victim vs deferred arrival
  };

  void schedule_seeded(std::size_t k, core::SimTime horizon);
  void schedule_directive(const FaultDirective& directive);

  /// Resolve a seeded host slot against the cluster's live fleet; the fault
  /// fizzles when the cluster has no UP host to hit.
  void fire_seeded_begin(std::size_t cluster, std::uint64_t host_slot,
                         core::SimTime fail_at, core::SimTime now);
  void fire_drain(std::size_t cluster, sched::HostId host, core::SimTime now);
  void fire_fail(std::size_t cluster, sched::HostId host, bool auto_repair,
                 core::SimTime now);
  void fire_repair(std::size_t cluster, sched::HostId host, core::SimTime now);

  /// Immediate re-place attempt; on failure enters the retry queue.
  void place_or_queue(core::VmId id, const core::VmSpec& spec, bool from_failure,
                      core::SimTime now);
  void schedule_retry(core::VmId id, std::size_t attempts, core::SimTime now);
  void retry(core::VmId id, core::SimTime now);

  Datacenter& dc_;
  EventQueue& queue_;
  FaultConfig config_;
  ShardScope scope_;
  RunResult& result_;
  std::function<void(core::SimTime)> observe_;
  MigrationEngine* migration_engine_ = nullptr;  ///< unowned; see setter
  std::unordered_map<core::VmId, Pending> pending_;
  std::unordered_set<core::VmId> degraded_;
};

}  // namespace slackvm::sim
