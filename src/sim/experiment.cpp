#include "sim/experiment.hpp"

#include "core/oversub.hpp"
#include "sched/policy.hpp"
#include "sim/replay.hpp"

namespace slackvm::sim {

namespace {

std::vector<core::OversubLevel> levels_present(const workload::LevelMix& mix) {
  std::vector<core::OversubLevel> levels;
  for (std::uint8_t ratio : core::kPaperLevelRatios) {
    const core::OversubLevel level{ratio};
    if (mix.share(level) > 0.0) {
      levels.push_back(level);
    }
  }
  return levels;
}

/// Average accumulator over repetitions.
struct Averager {
  double opened = 0;
  double placed = 0;
  double peak = 0;
  double cpu = 0;
  double mem = 0;
  double peak_cpu = 0;
  double peak_mem = 0;
  double duration = 0;
  double active = 0;
  double alloc_cores = 0;
  double peak_active = 0;

  void add(const RunResult& r) {
    opened += static_cast<double>(r.opened_pms);
    placed += static_cast<double>(r.placed_vms);
    peak += static_cast<double>(r.peak_vms);
    cpu += r.avg_unalloc_cpu_share;
    mem += r.avg_unalloc_mem_share;
    peak_cpu += r.peak_unalloc_cpu_share;
    peak_mem += r.peak_unalloc_mem_share;
    duration += r.duration;
    active += r.avg_active_pms;
    alloc_cores += r.avg_alloc_cores;
    peak_active += static_cast<double>(r.peak_active_pms);
  }

  [[nodiscard]] RunResult mean(std::size_t n) const {
    const double d = static_cast<double>(n);
    RunResult out;
    out.opened_pms = static_cast<std::size_t>(opened / d + 0.5);
    out.placed_vms = static_cast<std::size_t>(placed / d + 0.5);
    out.peak_vms = static_cast<std::size_t>(peak / d + 0.5);
    out.avg_unalloc_cpu_share = cpu / d;
    out.avg_unalloc_mem_share = mem / d;
    out.peak_unalloc_cpu_share = peak_cpu / d;
    out.peak_unalloc_mem_share = peak_mem / d;
    out.duration = duration / d;
    out.avg_active_pms = active / d;
    out.avg_alloc_cores = alloc_cores / d;
    out.peak_active_pms = static_cast<std::size_t>(peak_active / d + 0.5);
    return out;
  }
};

}  // namespace

double PackingComparison::pm_saving_pct() const {
  if (baseline.opened_pms == 0) {
    return 0.0;
  }
  const double base = static_cast<double>(baseline.opened_pms);
  const double ours = static_cast<double>(slackvm.opened_pms);
  return 100.0 * (base - ours) / base;
}

PackingComparison compare_packing(const workload::Catalog& catalog,
                                  const workload::LevelMix& mix,
                                  const ExperimentConfig& config) {
  PackingComparison out;
  out.provider = catalog.provider();
  out.distribution = mix.name;

  Averager base_avg;
  Averager slack_avg;
  const std::size_t reps = config.repetitions == 0 ? 1 : config.repetitions;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    workload::GeneratorConfig gen_cfg = config.generator;
    gen_cfg.seed = config.generator.seed + rep;
    const workload::Trace trace =
        workload::Generator(catalog, mix, gen_cfg).generate();

    // Baseline: dedicated First-Fit clusters, one per level present.
    Datacenter baseline =
        Datacenter::dedicated(config.host_config, levels_present(mix),
                              sched::make_first_fit, config.mem_oversub);
    base_avg.add(replay(baseline, trace));

    // SlackVM: one shared cluster, Algorithm-2 progress scoring.
    Datacenter slackvm = Datacenter::shared(
        config.host_config, sched::make_progress_policy, config.mem_oversub);
    slack_avg.add(replay(slackvm, trace));
  }
  out.baseline = base_avg.mean(reps);
  out.slackvm = slack_avg.mean(reps);
  return out;
}

std::vector<PackingComparison> run_distribution_sweep(const workload::Catalog& catalog,
                                                      const ExperimentConfig& config) {
  std::vector<PackingComparison> out;
  out.reserve(workload::paper_distributions().size());
  for (const workload::LevelMix& mix : workload::paper_distributions()) {
    out.push_back(compare_packing(catalog, mix, config));
  }
  return out;
}

std::vector<HeatmapCell> run_savings_heatmap(const workload::Catalog& catalog,
                                             const ExperimentConfig& config) {
  std::vector<HeatmapCell> cells;
  for (const workload::LevelMix& mix : workload::paper_distributions()) {
    const PackingComparison cmp = compare_packing(catalog, mix, config);
    HeatmapCell cell;
    cell.pct_1to1 = static_cast<int>(mix.share_1to1 * 100.0 + 0.5);
    cell.pct_2to1 = static_cast<int>(mix.share_2to1 * 100.0 + 0.5);
    cell.saving_pct = cmp.pm_saving_pct();
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace slackvm::sim
