#include "sim/experiment.hpp"

#include <map>
#include <memory>
#include <optional>

#include "core/oversub.hpp"
#include "sched/policy.hpp"
#include "sim/event_source.hpp"
#include "sim/parallel.hpp"
#include "sim/replay.hpp"
#include "sim/shard.hpp"
#include "workload/trace_reader.hpp"

namespace slackvm::sim {

namespace {

std::vector<core::OversubLevel> levels_present(const workload::LevelMix& mix) {
  std::vector<core::OversubLevel> levels;
  for (std::uint8_t ratio : core::kPaperLevelRatios) {
    const core::OversubLevel level{ratio};
    if (mix.share(level) > 0.0) {
      levels.push_back(level);
    }
  }
  return levels;
}

std::size_t effective_repetitions(const ExperimentConfig& config) {
  return config.repetitions == 0 ? 1 : config.repetitions;
}

/// One (distribution, repetition) cell of the experiment grid: a freshly
/// generated trace replayed against both cluster organisations. Pure in
/// (catalog, mix, config, rep) — safe to run from any pool thread.
struct CellResult {
  RunResult baseline;
  RunResult slackvm;
};

CellResult run_cell(const workload::Catalog& catalog, const workload::LevelMix& mix,
                    const ExperimentConfig& config, std::size_t rep) {
  workload::GeneratorConfig gen_cfg = config.generator;
  gen_cfg.seed = config.generator.seed + rep;

  // Workload: either a freshly generated (materialized) trace, or a real
  // trace file streamed through TraceReader — one scan pre-pass for the
  // horizon, then each replay pulls rows with O(chunk) resident memory.
  // The streamed trace is the same for every repetition; only the fault
  // timetable (seeded per repetition below) varies across reps then.
  const bool streamed = !config.trace_path.empty();
  workload::Trace trace;
  std::optional<workload::TraceReader::ScanInfo> scan;
  if (streamed) {
    scan = workload::TraceReader::scan(config.trace_path);
  } else {
    trace = workload::Generator(catalog, mix, gen_cfg).generate();
  }
  const auto open_source = [&]() -> std::unique_ptr<EventSource> {
    if (streamed) {
      return std::make_unique<StreamingTraceSource>(
          workload::TraceReader(config.trace_path), scan);
    }
    return std::make_unique<MaterializedSource>(trace);
  };
  // Dedicated baseline clusters: for a generated workload the mix dictates
  // the levels; a real trace's levels emerge row-by-row from the
  // classifier, so cover all three paper levels (absent ones just stay
  // empty).
  std::vector<core::OversubLevel> levels;
  if (streamed) {
    for (const std::uint8_t ratio : core::kPaperLevelRatios) {
      levels.push_back(core::OversubLevel{ratio});
    }
  } else {
    levels = levels_present(mix);
  }

  // Both organisations replay the same fault timetable (seed resolved from
  // the cell's workload seed), so the comparison stays apples-to-apples.
  const FaultConfig faults = resolve_fault_seed(config.faults, gen_cfg.seed);
  const FaultConfig* fault_ptr = faults.enabled() ? &faults : nullptr;

  // Same story for the rebalance loop: both organisations consolidate on
  // the same cadence with the same migration semantics (instant or
  // time-extended flights).
  std::optional<RebalanceOptions> rebalance;
  if (config.rebalance_interval > 0) {
    rebalance.emplace();
    rebalance->interval = config.rebalance_interval;
    rebalance->budget_per_pass = config.rebalance_budget;
    rebalance->migration = config.migration;
    rebalance->interference = config.interference;
  }

  // With interference armed the shared organisation also scores placements
  // heat-aware; the dedicated baseline keeps First-Fit (it has no scoring
  // stage to stack the penalty onto) but still runs the same heat/polluter
  // schedules, so the comparison stays apples-to-apples on the loop cost.
  const bool interference =
      rebalance.has_value() && rebalance->interference.enabled;
  const auto shared_policy = [&]() -> std::unique_ptr<sched::PlacementPolicy> {
    if (interference) {
      return sched::make_interference_policy(config.interference.heat_weight);
    }
    return sched::make_progress_policy();
  };

  CellResult cell;
  if (config.shards <= 1) {
    // Baseline: dedicated First-Fit clusters.
    Datacenter baseline = Datacenter::dedicated(config.host_config, levels,
                                                sched::make_first_fit, config.mem_oversub);
    baseline.set_index_enabled(config.use_index);
    {
      const std::unique_ptr<EventSource> source = open_source();
      cell.baseline = replay(baseline, *source, rebalance, nullptr, fault_ptr);
    }

    // SlackVM: one shared cluster, Algorithm-2 progress scoring (heat-aware
    // when the interference loop is armed).
    Datacenter slackvm =
        Datacenter::shared(config.host_config, shared_policy, config.mem_oversub);
    slackvm.set_index_enabled(config.use_index);
    {
      const std::unique_ptr<EventSource> source = open_source();
      cell.slackvm = replay(slackvm, *source, rebalance, nullptr, fault_ptr);
    }
    return cell;
  }

  // Sharded engine. Threads stay at 1 here: the experiment grid is already
  // fanned out across cells by ParallelRunner, so nesting pools would
  // oversubscribe; the sharded run is bit-identical at any thread count.
  ShardOptions shard_options;
  shard_options.shards = config.shards;
  shard_options.threads = 1;
  shard_options.faults = fault_ptr;
  shard_options.rebalance = rebalance;
  Datacenter baseline = Datacenter::dedicated(config.host_config, levels,
                                              sched::make_first_fit, config.mem_oversub);
  baseline.set_index_enabled(config.use_index);
  {
    const std::unique_ptr<EventSource> source = open_source();
    cell.baseline = replay_sharded(baseline, *source, shard_options);
  }

  Datacenter slackvm = Datacenter::shared_sharded(
      config.host_config, shared_policy, config.shards, config.mem_oversub);
  slackvm.set_index_enabled(config.use_index);
  {
    const std::unique_ptr<EventSource> source = open_source();
    cell.slackvm = replay_sharded(slackvm, *source, shard_options);
  }
  return cell;
}

/// Reduce one distribution's repetition cells (in repetition order) into a
/// comparison row.
PackingComparison reduce_cells(const workload::Catalog& catalog,
                               const workload::LevelMix& mix,
                               std::span<const CellResult> cells) {
  std::vector<RunResult> baseline;
  std::vector<RunResult> slackvm;
  baseline.reserve(cells.size());
  slackvm.reserve(cells.size());
  for (const CellResult& cell : cells) {
    baseline.push_back(cell.baseline);
    slackvm.push_back(cell.slackvm);
  }
  PackingComparison out;
  out.provider = catalog.provider();
  out.distribution = mix.name;
  out.baseline = mean_result(baseline);
  out.slackvm = mean_result(slackvm);
  return out;
}

std::size_t round_to_count(double sum, double n) {
  return static_cast<std::size_t>(sum / n + 0.5);
}

}  // namespace

RunResult mean_result(std::span<const RunResult> results) {
  if (results.empty()) {
    return {};
  }
  // Plain left-to-right sums: reducing in repetition order keeps the
  // floating-point results bit-stable across thread counts.
  double opened = 0;
  double peak_active = 0;
  double migrations = 0;
  double placed = 0;
  double peak = 0;
  double cpu = 0;
  double mem = 0;
  double peak_cpu = 0;
  double peak_mem = 0;
  double duration = 0;
  double active = 0;
  double alloc_cores = 0;
  double host_failures = 0;
  double host_repairs = 0;
  double drained = 0;
  double evacuated = 0;
  double replaced = 0;
  double evac_migrated = 0;
  double retries = 0;
  double evac_departed = 0;
  double degraded = 0;
  double deferred = 0;
  double dropped = 0;
  double mig_planned = 0;
  double mig_committed = 0;
  double mig_cancelled = 0;
  double mig_rolled_back = 0;
  double mig_timed_out = 0;
  double mig_degraded = 0;
  double mig_retries = 0;
  double heat_updates = 0;
  double itf_passes = 0;
  double itf_hot_hosts = 0;
  double itf_evictions = 0;
  double itf_applied = 0;
  double itf_requested = 0;
  double itf_skipped = 0;
  std::map<std::string, double> per_cluster;
  for (const RunResult& r : results) {
    opened += static_cast<double>(r.opened_pms);
    peak_active += static_cast<double>(r.peak_active_pms);
    migrations += static_cast<double>(r.migrations);
    placed += static_cast<double>(r.placed_vms);
    peak += static_cast<double>(r.peak_vms);
    cpu += r.avg_unalloc_cpu_share;
    mem += r.avg_unalloc_mem_share;
    peak_cpu += r.peak_unalloc_cpu_share;
    peak_mem += r.peak_unalloc_mem_share;
    duration += r.duration;
    active += r.avg_active_pms;
    alloc_cores += r.avg_alloc_cores;
    host_failures += static_cast<double>(r.host_failures);
    host_repairs += static_cast<double>(r.host_repairs);
    drained += static_cast<double>(r.drained_hosts);
    evacuated += static_cast<double>(r.evacuated_vms);
    replaced += static_cast<double>(r.evac_replaced);
    evac_migrated += static_cast<double>(r.evac_migrated);
    retries += static_cast<double>(r.evac_retries);
    evac_departed += static_cast<double>(r.evac_departed);
    degraded += static_cast<double>(r.degraded_vms);
    deferred += static_cast<double>(r.deferred_arrivals);
    dropped += static_cast<double>(r.arrivals_dropped);
    mig_planned += static_cast<double>(r.mig_planned);
    mig_committed += static_cast<double>(r.mig_committed);
    mig_cancelled += static_cast<double>(r.mig_cancelled);
    mig_rolled_back += static_cast<double>(r.mig_rolled_back);
    mig_timed_out += static_cast<double>(r.mig_timed_out);
    mig_degraded += static_cast<double>(r.mig_degraded);
    mig_retries += static_cast<double>(r.mig_retries);
    heat_updates += static_cast<double>(r.heat_updates);
    itf_passes += static_cast<double>(r.itf_passes);
    itf_hot_hosts += static_cast<double>(r.itf_hot_hosts);
    itf_evictions += static_cast<double>(r.itf_evictions);
    itf_applied += static_cast<double>(r.itf_applied);
    itf_requested += static_cast<double>(r.itf_requested);
    itf_skipped += static_cast<double>(r.itf_skipped);
    for (const auto& [cluster, pms] : r.opened_per_cluster) {
      per_cluster[cluster] += static_cast<double>(pms);
    }
  }
  const double d = static_cast<double>(results.size());
  RunResult out;
  out.opened_pms = round_to_count(opened, d);
  out.peak_active_pms = round_to_count(peak_active, d);
  out.migrations = round_to_count(migrations, d);
  out.placed_vms = round_to_count(placed, d);
  out.peak_vms = round_to_count(peak, d);
  out.avg_unalloc_cpu_share = cpu / d;
  out.avg_unalloc_mem_share = mem / d;
  out.peak_unalloc_cpu_share = peak_cpu / d;
  out.peak_unalloc_mem_share = peak_mem / d;
  out.duration = duration / d;
  out.avg_active_pms = active / d;
  out.avg_alloc_cores = alloc_cores / d;
  out.host_failures = round_to_count(host_failures, d);
  out.host_repairs = round_to_count(host_repairs, d);
  out.drained_hosts = round_to_count(drained, d);
  out.evacuated_vms = round_to_count(evacuated, d);
  out.evac_replaced = round_to_count(replaced, d);
  out.evac_migrated = round_to_count(evac_migrated, d);
  out.evac_retries = round_to_count(retries, d);
  out.evac_departed = round_to_count(evac_departed, d);
  out.degraded_vms = round_to_count(degraded, d);
  out.deferred_arrivals = round_to_count(deferred, d);
  out.arrivals_dropped = round_to_count(dropped, d);
  out.mig_planned = round_to_count(mig_planned, d);
  out.mig_committed = round_to_count(mig_committed, d);
  out.mig_cancelled = round_to_count(mig_cancelled, d);
  out.mig_rolled_back = round_to_count(mig_rolled_back, d);
  out.mig_timed_out = round_to_count(mig_timed_out, d);
  out.mig_degraded = round_to_count(mig_degraded, d);
  out.mig_retries = round_to_count(mig_retries, d);
  out.heat_updates = round_to_count(heat_updates, d);
  out.itf_passes = round_to_count(itf_passes, d);
  out.itf_hot_hosts = round_to_count(itf_hot_hosts, d);
  out.itf_evictions = round_to_count(itf_evictions, d);
  out.itf_applied = round_to_count(itf_applied, d);
  out.itf_requested = round_to_count(itf_requested, d);
  out.itf_skipped = round_to_count(itf_skipped, d);
  for (const auto& [cluster, sum] : per_cluster) {
    out.opened_per_cluster[cluster] = round_to_count(sum, d);
  }
  return out;
}

double PackingComparison::pm_saving_pct() const {
  if (baseline.opened_pms == 0) {
    return 0.0;
  }
  const double base = static_cast<double>(baseline.opened_pms);
  const double ours = static_cast<double>(slackvm.opened_pms);
  return 100.0 * (base - ours) / base;
}

PackingComparison compare_packing(const workload::Catalog& catalog,
                                  const workload::LevelMix& mix,
                                  const ExperimentConfig& config) {
  const std::size_t reps = effective_repetitions(config);
  ParallelRunner runner(config.parallelism);
  const std::vector<CellResult> cells = runner.map<CellResult>(
      reps, [&](std::size_t rep) { return run_cell(catalog, mix, config, rep); });
  return reduce_cells(catalog, mix, cells);
}

std::vector<PackingComparison> run_distribution_sweep(const workload::Catalog& catalog,
                                                      const ExperimentConfig& config) {
  const std::vector<workload::LevelMix>& mixes = workload::paper_distributions();
  const std::size_t reps = effective_repetitions(config);

  // Fan the whole (distribution, repetition) grid out at once: task index
  // t = mix * reps + rep, so each cell's seed and its slot in the reduction
  // depend only on its grid position, never on scheduling order.
  ParallelRunner runner(config.parallelism);
  const std::vector<CellResult> cells =
      runner.map<CellResult>(mixes.size() * reps, [&](std::size_t t) {
        return run_cell(catalog, mixes[t / reps], config, t % reps);
      });

  std::vector<PackingComparison> out;
  out.reserve(mixes.size());
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    out.push_back(reduce_cells(catalog, mixes[m],
                               std::span(cells).subspan(m * reps, reps)));
  }
  return out;
}

std::vector<HeatmapCell> run_savings_heatmap(const workload::Catalog& catalog,
                                             const ExperimentConfig& config) {
  std::vector<HeatmapCell> cells;
  for (const PackingComparison& cmp : run_distribution_sweep(catalog, config)) {
    const workload::LevelMix& mix = workload::distribution(cmp.distribution[0]);
    HeatmapCell cell;
    cell.pct_1to1 = static_cast<int>(mix.share_1to1 * 100.0 + 0.5);
    cell.pct_2to1 = static_cast<int>(mix.share_2to1 * 100.0 + 0.5);
    cell.saving_pct = cmp.pm_saving_pct();
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace slackvm::sim
