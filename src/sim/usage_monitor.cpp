#include "sim/usage_monitor.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "perf/contention.hpp"
#include "workload/usage.hpp"

namespace slackvm::sim {

UsageSample sample_usage(const Datacenter& dc, core::SimTime t) {
  UsageSample sample;
  sample.time = t;
  for (const auto& cluster : dc.clusters()) {
    for (const sched::HostState& host : cluster->hosts()) {
      ++sample.opened_hosts;
      sample.capacity_cores += host.config().cores;
      sample.alloc_cores += host.alloc().cores;
      double host_demand = 0.0;
      for (const auto& [vm, spec] : host.vms()) {
        const workload::UsageSignal signal(vm, spec.usage);
        host_demand += static_cast<double>(spec.vcpus) * signal.at(t);
      }
      sample.demand_cores += host_demand;
      sample.host_q.push_back(host_demand /
                              static_cast<double>(host.config().cores));
      if (host_demand > static_cast<double>(host.config().cores)) {
        ++sample.overloaded_hosts;
      }
    }
  }
  return sample;
}

std::vector<HostUsage> sample_host_usage(const sched::VCluster& cluster,
                                         core::SimTime t) {
  // Take the host vector once; hosts() is not free and the loop below is
  // the hot path of every heat tick.
  const std::vector<sched::HostState>& hosts = cluster.hosts();
  std::vector<HostUsage> out;
  out.reserve(hosts.size());
  std::vector<core::VmId> vms;
  for (const sched::HostState& host : hosts) {
    HostUsage usage;
    usage.capacity_cores = host.config().cores;
    // Ascending-VmId summation: the heat this feeds steers placement, so
    // the float result must not depend on unordered_map iteration order.
    vms.clear();
    for (const auto& [vm, spec] : host.vms()) {
      vms.push_back(vm);
    }
    std::ranges::sort(vms);
    for (const core::VmId vm : vms) {
      const core::VmSpec& spec = host.spec_of(vm);
      usage.demand_cores += static_cast<double>(spec.vcpus) *
                            workload::UsageSignal(vm, spec.usage).at(t);
    }
    out.push_back(usage);
  }
  return out;
}

void DemandCache::apply(const sched::MembershipDelta& delta) {
  if (delta.host >= entries_.size() || !entries_[delta.host].present) {
    // No cached view to patch (fresh opening, post-wipe, or a rolled-back
    // opening's id reused): the rebuild pass re-derives it from scratch.
    return;
  }
  Entry& entry = entries_[delta.host];
  switch (delta.op) {
    case sched::MembershipDelta::Op::kAdd: {
      const auto pos = std::ranges::lower_bound(entry.terms, delta.vm, {},
                                                &Term::vm);
      entry.terms.insert(
          pos, Term{delta.vm, static_cast<double>(delta.spec.vcpus),
                    workload::UsageSignal(delta.vm, delta.spec.usage)});
      break;
    }
    case sched::MembershipDelta::Op::kRemove: {
      const auto pos = std::ranges::lower_bound(entry.terms, delta.vm, {},
                                                &Term::vm);
      SLACKVM_ASSERT(pos != entry.terms.end() && pos->vm == delta.vm);
      entry.terms.erase(pos);
      break;
    }
    case sched::MembershipDelta::Op::kWipe:
      entry.terms.clear();
      entry.present = false;
      break;
  }
}

const std::vector<HostUsage>& DemandCache::sample(sched::VCluster& cluster,
                                                  core::SimTime t) {
  const std::vector<sched::HostState>& hosts = cluster.hosts();
  // A shrink (rolled-back openings) destroys the tail entries, so a later
  // regrow at the same ids starts present=false and rebuilds cleanly.
  entries_.resize(hosts.size());
  usage_.resize(hosts.size());
  cluster.arm_membership_log();
  // With a complete journal the term lists are patched in place and the
  // epoch check is skipped entirely — membership epochs drifted since the
  // last restamp exactly because those mutations were journaled. A lossy
  // round (overflow, pre-arming history) degrades to the epoch protocol:
  // rebuild every host whose epoch moved since the last tick.
  const bool exact = cluster.take_membership_log(log_);
  if (exact) {
    for (const sched::MembershipDelta& delta : log_) {
      apply(delta);
    }
  }
  for (sched::HostId h = 0; h < hosts.size(); ++h) {
    const sched::HostState& host = hosts[h];
    Entry& entry = entries_[h];
    if (!entry.present || (!exact && entry.epoch != host.epoch())) {
      // Re-derive the term list exactly as the naive sample does —
      // ascending-VmId — but with the specs captured in the same map walk
      // that lists the ids (spec_of would be a second hash probe per VM).
      entry.terms.clear();
      vms_.clear();
      for (const auto& [vm, spec] : host.vms()) {
        vms_.emplace_back(vm, &spec);
      }
      std::ranges::sort(vms_, {},
                        &std::pair<core::VmId, const core::VmSpec*>::first);
      for (const auto& [vm, spec] : vms_) {
        entry.terms.push_back(Term{vm, static_cast<double>(spec->vcpus),
                                   workload::UsageSignal(vm, spec->usage)});
      }
      entry.present = true;
      ++rebuilds_;
    }
    entry.epoch = host.epoch();
    HostUsage usage;
    usage.capacity_cores = host.config().cores;
    // Same terms, same order, same ops as the naive sum: bit-identical.
    for (const Term& term : entry.terms) {
      usage.demand_cores += term.vcpus * term.signal.at(t);
    }
    usage_[h] = usage;
  }
  return usage_;
}

void DemandCache::restamp(const sched::VCluster& cluster) {
  const std::vector<sched::HostState>& hosts = cluster.hosts();
  const std::size_t n = std::min(entries_.size(), hosts.size());
  for (sched::HostId h = 0; h < n; ++h) {
    if (entries_[h].present) {
      entries_[h].epoch = hosts[h].epoch();
    }
  }
}


std::size_t update_cluster_heat(sched::VCluster& cluster, core::SimTime t,
                                double alpha, double bucket_width,
                                DemandCache* cache) {
  if (cache == nullptr) {
    const std::vector<HostUsage> usage = sample_host_usage(cluster, t);
    for (sched::HostId h = 0; h < usage.size(); ++h) {
      const double q =
          usage[h].capacity_cores > 0
              ? usage[h].demand_cores / static_cast<double>(usage[h].capacity_cores)
              : 0.0;
      cluster.set_host_heat(
          h, alpha * q + (1.0 - alpha) * cluster.host_heat(h), bucket_width);
    }
    return usage.size();
  }
  const std::vector<HostUsage>& usage = cache->sample(cluster, t);
  for (sched::HostId h = 0; h < usage.size(); ++h) {
    const double q =
        usage[h].capacity_cores > 0
            ? usage[h].demand_cores / static_cast<double>(usage[h].capacity_cores)
            : 0.0;
    cluster.set_host_heat(
        h, alpha * q + (1.0 - alpha) * cluster.host_heat(h), bucket_width);
  }
  // The EWMA writes bumped epochs on bucket crossings; adopt them now so a
  // later lossy journal round does not mistake heat churn for membership
  // churn.
  cache->restamp(cluster);
  return usage.size();
}

UsageMonitor::UsageMonitor(core::SimTime interval) : interval_(interval) {
  SLACKVM_ASSERT(interval > 0);
}

void UsageMonitor::record(const UsageSample& sample) {
  ++report_.samples;
  if (sample.capacity_cores > 0) {
    const double fleet =
        sample.demand_cores / static_cast<double>(sample.capacity_cores);
    fleet_sum_ += fleet;
    report_.peak_fleet_utilization = std::max(report_.peak_fleet_utilization, fleet);
  }
  if (sample.alloc_cores > 0) {
    heat_sum_ += sample.demand_cores / static_cast<double>(sample.alloc_cores);
    ++heat_samples_;
  }
  report_.overload_host_hours +=
      static_cast<double>(sample.overloaded_hosts) * interval_ / 3600.0;
  if (model_ != nullptr) {
    for (const double q : sample.host_q) {
      inflations_.push_back(model_->contention_inflation(q));
    }
  }
}

UsageReport UsageMonitor::report() const {
  UsageReport out = report_;
  if (out.samples > 0) {
    out.avg_fleet_utilization = fleet_sum_ / static_cast<double>(out.samples);
  }
  if (heat_samples_ > 0) {
    out.avg_alloc_heat = heat_sum_ / static_cast<double>(heat_samples_);
  }
  out.inflation_samples = inflations_.size();
  if (!inflations_.empty()) {
    out.p90_inflation = core::percentile(inflations_, 90.0);
  }
  return out;
}

}  // namespace slackvm::sim
