#include "sim/usage_monitor.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "workload/usage.hpp"

namespace slackvm::sim {

UsageSample sample_usage(const Datacenter& dc, core::SimTime t) {
  UsageSample sample;
  sample.time = t;
  for (const auto& cluster : dc.clusters()) {
    for (const sched::HostState& host : cluster->hosts()) {
      ++sample.opened_hosts;
      sample.capacity_cores += host.config().cores;
      sample.alloc_cores += host.alloc().cores;
      double host_demand = 0.0;
      for (const auto& [vm, spec] : host.vms()) {
        const workload::UsageSignal signal(vm, spec.usage);
        host_demand += static_cast<double>(spec.vcpus) * signal.at(t);
      }
      sample.demand_cores += host_demand;
      if (host_demand > static_cast<double>(host.config().cores)) {
        ++sample.overloaded_hosts;
      }
    }
  }
  return sample;
}

UsageMonitor::UsageMonitor(core::SimTime interval) : interval_(interval) {
  SLACKVM_ASSERT(interval > 0);
}

void UsageMonitor::record(const UsageSample& sample) {
  ++report_.samples;
  if (sample.capacity_cores > 0) {
    const double fleet =
        sample.demand_cores / static_cast<double>(sample.capacity_cores);
    fleet_sum_ += fleet;
    report_.peak_fleet_utilization = std::max(report_.peak_fleet_utilization, fleet);
  }
  if (sample.alloc_cores > 0) {
    heat_sum_ += sample.demand_cores / static_cast<double>(sample.alloc_cores);
    ++heat_samples_;
  }
  report_.overload_host_hours +=
      static_cast<double>(sample.overloaded_hosts) * interval_ / 3600.0;
}

UsageReport UsageMonitor::report() const {
  UsageReport out = report_;
  if (out.samples > 0) {
    out.avg_fleet_utilization = fleet_sum_ / static_cast<double>(out.samples);
  }
  if (heat_samples_ > 0) {
    out.avg_alloc_heat = heat_sum_ / static_cast<double>(heat_samples_);
  }
  return out;
}

}  // namespace slackvm::sim
