#include "sim/usage_monitor.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/stats.hpp"
#include "perf/contention.hpp"
#include "workload/usage.hpp"

namespace slackvm::sim {

UsageSample sample_usage(const Datacenter& dc, core::SimTime t) {
  UsageSample sample;
  sample.time = t;
  for (const auto& cluster : dc.clusters()) {
    for (const sched::HostState& host : cluster->hosts()) {
      ++sample.opened_hosts;
      sample.capacity_cores += host.config().cores;
      sample.alloc_cores += host.alloc().cores;
      double host_demand = 0.0;
      for (const auto& [vm, spec] : host.vms()) {
        const workload::UsageSignal signal(vm, spec.usage);
        host_demand += static_cast<double>(spec.vcpus) * signal.at(t);
      }
      sample.demand_cores += host_demand;
      sample.host_q.push_back(host_demand /
                              static_cast<double>(host.config().cores));
      if (host_demand > static_cast<double>(host.config().cores)) {
        ++sample.overloaded_hosts;
      }
    }
  }
  return sample;
}

std::vector<HostUsage> sample_host_usage(const sched::VCluster& cluster,
                                         core::SimTime t) {
  std::vector<HostUsage> out;
  out.reserve(cluster.hosts().size());
  std::vector<core::VmId> vms;
  for (const sched::HostState& host : cluster.hosts()) {
    HostUsage usage;
    usage.capacity_cores = host.config().cores;
    // Ascending-VmId summation: the heat this feeds steers placement, so
    // the float result must not depend on unordered_map iteration order.
    vms.clear();
    for (const auto& [vm, spec] : host.vms()) {
      vms.push_back(vm);
    }
    std::ranges::sort(vms);
    for (const core::VmId vm : vms) {
      const core::VmSpec& spec = host.spec_of(vm);
      usage.demand_cores += static_cast<double>(spec.vcpus) *
                            workload::UsageSignal(vm, spec.usage).at(t);
    }
    out.push_back(usage);
  }
  return out;
}

std::size_t update_cluster_heat(sched::VCluster& cluster, core::SimTime t,
                                double alpha, double bucket_width) {
  const std::vector<HostUsage> usage = sample_host_usage(cluster, t);
  for (sched::HostId h = 0; h < usage.size(); ++h) {
    const double q =
        usage[h].capacity_cores > 0
            ? usage[h].demand_cores / static_cast<double>(usage[h].capacity_cores)
            : 0.0;
    cluster.set_host_heat(
        h, alpha * q + (1.0 - alpha) * cluster.host_heat(h), bucket_width);
  }
  return usage.size();
}

UsageMonitor::UsageMonitor(core::SimTime interval) : interval_(interval) {
  SLACKVM_ASSERT(interval > 0);
}

void UsageMonitor::record(const UsageSample& sample) {
  ++report_.samples;
  if (sample.capacity_cores > 0) {
    const double fleet =
        sample.demand_cores / static_cast<double>(sample.capacity_cores);
    fleet_sum_ += fleet;
    report_.peak_fleet_utilization = std::max(report_.peak_fleet_utilization, fleet);
  }
  if (sample.alloc_cores > 0) {
    heat_sum_ += sample.demand_cores / static_cast<double>(sample.alloc_cores);
    ++heat_samples_;
  }
  report_.overload_host_hours +=
      static_cast<double>(sample.overloaded_hosts) * interval_ / 3600.0;
  if (model_ != nullptr) {
    for (const double q : sample.host_q) {
      inflations_.push_back(model_->contention_inflation(q));
    }
  }
}

UsageReport UsageMonitor::report() const {
  UsageReport out = report_;
  if (out.samples > 0) {
    out.avg_fleet_utilization = fleet_sum_ / static_cast<double>(out.samples);
  }
  if (heat_samples_ > 0) {
    out.avg_alloc_heat = heat_sum_ / static_cast<double>(heat_samples_);
  }
  out.inflation_samples = inflations_.size();
  if (!inflations_.empty()) {
    out.p90_inflation = core::percentile(inflations_, 90.0);
  }
  return out;
}

}  // namespace slackvm::sim
