// Energy and carbon accounting.
//
// The paper motivates SlackVM by DC power consumption and the carbon
// footprint of ICT (§I) and concludes that fewer PMs "has a positive impact
// on the energy consumption and carbon footprint of the Cloud ecosystem"
// (§VIII). This module turns a replay's PM-time and allocation integrals
// into kWh and kgCO2e with the standard linear server power model.
#pragma once

#include "core/units.hpp"
#include "sim/metrics.hpp"

namespace slackvm::sim {

/// Linear server power model: a powered PM draws idle_watts plus a share of
/// (peak - idle) proportional to its CPU allocation; facility overhead is
/// applied as a PUE multiplier.
struct PowerModel {
  double idle_watts = 110.0;   ///< typical 2-socket server at idle
  double peak_watts = 420.0;   ///< at full allocation
  double pue = 1.3;            ///< power usage effectiveness of the facility
  double carbon_g_per_kwh = 300.0;  ///< grid intensity (EU-average-ish)
};

struct EnergyReport {
  double pm_hours = 0.0;    ///< powered PM-hours over the run
  double kwh = 0.0;         ///< facility energy (PUE applied)
  double carbon_kg = 0.0;   ///< kgCO2e at the configured grid intensity
};

/// Estimate the energy of a replay. Powered PMs are the *opened* PMs when
/// `power_down_idle` is false (the provisioned fleet stays on — the paper's
/// operating assumption), or the time-average of *active* PMs when true
/// (emptied PMs are suspended, the consolidation upside).
[[nodiscard]] EnergyReport estimate_energy(const RunResult& result,
                                           core::CoreCount pm_cores,
                                           const PowerModel& model = {},
                                           bool power_down_idle = false);

}  // namespace slackvm::sim
