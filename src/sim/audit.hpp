// Invariant audit of simulated cluster state (the fault-injection test
// harness's ground truth).
//
// audit() recomputes every derived quantity of a Datacenter / VCluster /
// host set from first principles — the per-VM spec maps — and reports any
// disagreement with the cached accounting as a human-readable violation:
//
//  * no VM runs on a FAILED host;
//  * per-level oversubscription bounds hold (committed vCPUs at level n
//    never exceed n x physical cores, and the ceil-rounded vNode cores sum
//    to the cached allocation, within the PM's core budget);
//  * memory is conserved and within the (possibly oversubscribed) bound;
//  * in-flight migration reservations double-book coherently: they feed the
//    same per-level/memory recomputation as hosted VMs, never overlap the
//    hosted set, and only UP hosts hold them;
//  * VM membership is conserved across host maps, cluster placements, and
//    the per-cluster counts the datacenter aggregates;
//  * the cluster's struct-of-arrays mirror (sched/host_arena.hpp) agrees
//    field-for-field with the authoritative host rows.
//
// An empty result means the state is coherent. The audit is O(VMs) and
// cheap enough to run after every event in tests: replay() does exactly
// that when the process-wide debug-audit flag is set (ScopedDebugAudit),
// which lets the pre-fault sweep tests assert the same invariants on the
// old code paths for free.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sched/host_state.hpp"
#include "sched/vcluster.hpp"
#include "sim/datacenter.hpp"

namespace slackvm::sim {

/// Host-level invariants only (phase/emptiness, per-level bounds,
/// allocation and memory conservation against the per-host VM map).
[[nodiscard]] std::vector<std::string> audit(std::span<const sched::HostState> hosts);

/// Host invariants plus cluster-level membership conservation (every hosted
/// VM maps back to its host, counts agree).
[[nodiscard]] std::vector<std::string> audit(const sched::VCluster& cluster);

/// Cluster invariants across every cluster plus datacenter-level VM-count
/// conservation.
[[nodiscard]] std::vector<std::string> audit(const Datacenter& dc);

/// Process-wide debug-audit flag: while set, replay() runs audit() after
/// every simulation event and throws core::SlackError on the first
/// violation. Off by default (the audit is for tests, not production runs).
void set_debug_audit(bool enabled) noexcept;
[[nodiscard]] bool debug_audit_enabled() noexcept;

/// Throws core::SlackError listing all violations when the debug-audit flag
/// is set and `dc` fails the audit; no-op otherwise.
void debug_audit_check(const Datacenter& dc);

/// Single-cluster variant: the sharded engine audits only the clusters a
/// shard owns after its events (other shards' clusters are concurrently
/// mutating); the full datacenter audit runs at barriers.
void debug_audit_check(const sched::VCluster& cluster);

/// RAII enabling of the debug-audit flag for one test scope.
class ScopedDebugAudit {
 public:
  ScopedDebugAudit() noexcept;
  ~ScopedDebugAudit();
  ScopedDebugAudit(const ScopedDebugAudit&) = delete;
  ScopedDebugAudit& operator=(const ScopedDebugAudit&) = delete;

 private:
  bool previous_;
};

}  // namespace slackvm::sim
