#include "sim/metrics.hpp"

#include <algorithm>

namespace slackvm::sim {

namespace {

double share(double part, double whole) { return whole > 0 ? part / whole : 0.0; }

}  // namespace

void MetricsCollector::observe(core::SimTime time, const core::Resources& alloc,
                               const core::Resources& config, std::size_t running_vms,
                               std::size_t active_pms) {
  const double cpu_share = share(static_cast<double>(config.cores - alloc.cores),
                                 static_cast<double>(config.cores));
  const double mem_share = share(static_cast<double>(config.mem_mib - alloc.mem_mib),
                                 static_cast<double>(config.mem_mib));
  unalloc_cpu_.record(time, cpu_share);
  unalloc_mem_.record(time, mem_share);
  active_pms_.record(time, static_cast<double>(active_pms));
  alloc_cores_.record(time, static_cast<double>(alloc.cores));
  peak_vms_ = std::max(peak_vms_, running_vms);
  if (alloc.cores >= peak_alloc_cores_) {
    peak_alloc_cores_ = alloc.cores;
    peak_cpu_share_ = cpu_share;
    peak_mem_share_ = mem_share;
  }
}

void MetricsCollector::finish(core::SimTime end_time, RunResult& result) const {
  result.avg_unalloc_cpu_share = unalloc_cpu_.finish(end_time);
  result.avg_unalloc_mem_share = unalloc_mem_.finish(end_time);
  result.duration = end_time;
  result.avg_active_pms = active_pms_.finish(end_time);
  result.avg_alloc_cores = alloc_cores_.finish(end_time);
  result.peak_vms = peak_vms_;
  result.peak_unalloc_cpu_share = peak_cpu_share_;
  result.peak_unalloc_mem_share = peak_mem_share_;
}

}  // namespace slackvm::sim
