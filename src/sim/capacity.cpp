#include "sim/capacity.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "sim/replay.hpp"

namespace slackvm::sim {

bool feasible_with(const DatacenterFactory& factory, const workload::Trace& trace,
                   std::size_t max_hosts) {
  SLACKVM_ASSERT(max_hosts >= 1);
  Datacenter dc = factory();
  dc.set_max_hosts_per_cluster(max_hosts);
  // Chronological sweep; a single rejection aborts the probe.
  struct Ev {
    core::SimTime t;
    bool arrival;
    const core::VmInstance* vm;
  };
  std::vector<Ev> events;
  events.reserve(trace.size() * 2);
  for (const core::VmInstance& vm : trace.vms()) {
    events.push_back({vm.arrival, true, &vm});
    events.push_back({vm.departure, false, &vm});
  }
  std::ranges::stable_sort(events, [](const Ev& a, const Ev& b) { return a.t < b.t; });
  for (const Ev& ev : events) {
    if (ev.arrival) {
      if (!dc.try_deploy(ev.vm->id, ev.vm->spec)) {
        return false;
      }
    } else {
      dc.remove(ev.vm->id);
    }
  }
  return true;
}

MinFleetResult find_min_fleet(const DatacenterFactory& factory,
                              const workload::Trace& trace) {
  MinFleetResult result;
  {
    Datacenter elastic = factory();
    result.elastic_pms = replay(elastic, trace).opened_pms;
  }
  if (trace.empty()) {
    return result;
  }
  // Bisect below the elastic count. Online packing is not perfectly
  // monotone in the cap for score-based policies (more candidate hosts can
  // change choices), so the bisection result is verified and nudged upward
  // if an anomaly made it infeasible.
  std::size_t lo = 1;
  std::size_t hi = std::max<std::size_t>(result.elastic_pms, 1);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++result.probes;
    if (feasible_with(factory, trace, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ++result.probes;
  while (!feasible_with(factory, trace, lo)) {
    ++lo;
    ++result.probes;
  }
  result.min_pms = lo;
  return result;
}

}  // namespace slackvm::sim
