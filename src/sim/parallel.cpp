#include "sim/parallel.hpp"

#include <algorithm>
#include <cstdlib>

namespace slackvm::sim {

std::size_t resolve_parallelism(std::size_t requested) noexcept {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    stop_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& task,
                     const WatchdogConfig* watchdog) {
  if (count == 0) {
    return;
  }
  // Publish the task before any index becomes poppable: a worker still
  // draining the tail of the previous batch can pop a fresh index the moment
  // it lands in a queue, without ever passing through the epoch wait.
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    task_ = &task;
    remaining_ = count;
  }
  // Deal indices block-wise: worker w owns [w*chunk, min((w+1)*chunk, n)).
  // Contiguous blocks keep each worker on neighbouring cells of the
  // experiment grid; stealing rebalances the tail.
  const std::size_t workers = workers_.size();
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = std::min(w * chunk, count);
    const std::size_t hi = std::min(lo + chunk, count);
    const std::lock_guard<std::mutex> lock(queues_[w]->mutex);
    for (std::size_t i = lo; i < hi; ++i) {
      queues_[w]->indices.push_back(i);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    ++batch_epoch_;
  }
  batch_cv_.notify_all();

  // The calling thread works too, so run(n) with a 1-thread pool cannot
  // deadlock and small batches finish without a context switch.
  std::size_t index = 0;
  while (try_pop(0, index)) {
    execute(index);
  }
  {
    std::unique_lock<std::mutex> lock(batch_mutex_);
    if (watchdog == nullptr || watchdog->timeout.count() <= 0) {
      done_cv_.wait(lock, [this] { return remaining_ == 0; });
    } else {
      // Bounded wait: every `timeout` without completion is a stall. The
      // dump runs unlocked so on_stall may take its own locks (or block on
      // stderr) without deadlocking workers finishing behind its back.
      while (!done_cv_.wait_for(lock, watchdog->timeout,
                                [this] { return remaining_ == 0; })) {
        lock.unlock();
        if (watchdog->on_stall) {
          watchdog->on_stall();
        }
        if (watchdog->fatal) {
          // A crash with the dump on stderr beats an undiagnosable hang.
          std::abort();
        }
        lock.lock();
      }
    }
    task_ = nullptr;
  }
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    std::swap(error, first_error_);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

bool ThreadPool::try_pop(std::size_t self, std::size_t& index) {
  // Own queue first: LIFO keeps the hot tail of the block local.
  {
    const std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->indices.empty()) {
      index = queues_[self]->indices.back();
      queues_[self]->indices.pop_back();
      return true;
    }
  }
  // Steal FIFO from the most loaded victim (victims keep their tail).
  std::size_t victim = queues_.size();
  std::size_t victim_load = 0;
  for (std::size_t other = 0; other < queues_.size(); ++other) {
    if (other == self) {
      continue;
    }
    const std::lock_guard<std::mutex> lock(queues_[other]->mutex);
    if (queues_[other]->indices.size() > victim_load) {
      victim_load = queues_[other]->indices.size();
      victim = other;
    }
  }
  if (victim == queues_.size()) {
    return false;
  }
  const std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
  if (queues_[victim]->indices.empty()) {
    return false;  // raced with the owner; caller re-checks remaining_
  }
  index = queues_[victim]->indices.front();
  queues_[victim]->indices.pop_front();
  return true;
}

void ThreadPool::execute(std::size_t index) {
  // Holding an index guarantees task_ is this batch's task (run() sets it
  // before pushing, and cannot clear it until remaining_ — which includes
  // this index — hits zero), but the read still needs the mutex.
  const std::function<void(std::size_t)>* task = nullptr;
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    task = task_;
  }
  try {
    (*task)(index);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }
  bool last = false;
  {
    const std::lock_guard<std::mutex> lock(batch_mutex_);
    last = --remaining_ == 0;
  }
  if (last) {
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batch_mutex_);
      batch_cv_.wait(lock,
                     [this, seen_epoch] { return stop_ || batch_epoch_ != seen_epoch; });
      if (stop_) {
        return;
      }
      seen_epoch = batch_epoch_;
    }
    std::size_t index = 0;
    while (try_pop(self, index)) {
      execute(index);
    }
    // All queues drained (no tasks are added mid-batch): back to waiting
    // for the next epoch while in-flight tasks on other workers finish.
  }
}

ParallelRunner::ParallelRunner(std::size_t parallelism)
    : parallelism_(resolve_parallelism(parallelism)) {
  if (parallelism_ > 1) {
    // The caller participates in run(), so spawn one fewer worker.
    pool_ = std::make_unique<ThreadPool>(parallelism_ - 1);
  }
}

void ParallelRunner::for_each(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              const WatchdogConfig* watchdog) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  pool_->run(count, fn, watchdog);
}

}  // namespace slackvm::sim
