// Pull-based workload event sources: the seam between trace ingestion and
// the replay engines.
//
// Historically replay()/replay_sharded() took a materialized
// workload::Trace and scheduled every arrival/departure up-front — O(trace)
// events resident before the first one fired. EventSource inverts that: the
// engine *pulls* rows one at a time (peek/advance, arrivals nondecreasing)
// and schedules them lazily on the workload lane
// (EventQueue::kLaneWorkload), so only the active window of the trace is
// ever in memory. Three implementations cover the workload zoo:
//
//  * MaterializedSource  — wraps a Trace; exact size and horizon hints.
//    replay(dc, trace, ...) is now sugar for this, so the materialized and
//    streaming paths run the identical engine (bit-identical RunResults,
//    pinned by tests/sim_stream_test.cpp).
//  * StreamingTraceSource — owns a workload::TraceReader; O(chunk) memory
//    for arbitrarily large files. Horizon/size hints come from an optional
//    TraceReader::scan() pre-pass (a cheap O(1)-memory sweep); without one
//    the source advertises no hints.
//  * GeneratorSource — wraps workload::Generator::Stream (synthetic rows,
//    never materialized). Advertises *no* horizon hint: generated
//    departures can exceed GeneratorConfig::horizon (the arrival+1 bump at
//    the edge), so the true horizon is data-dependent.
//
// Hint contract: hints are optional. Engines use size_hint() purely as a
// container reserve (never a decision input), and horizon_hint() to lay out
// periodic control schedules (rebalance passes, usage samples, the fault
// timetable) and barrier windows. Configurations that need the horizon
// up-front throw when the source cannot provide it — pre-scan or
// materialize in that case. When present, horizon_hint() must equal the
// latest departure of the full row stream (Trace::horizon()).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/units.hpp"
#include "core/vm.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"
#include "workload/trace_reader.hpp"

namespace slackvm::sim {

/// Arrival-ordered stream of VM lifecycle rows, pulled by the replay
/// engines. Implementations must yield rows with nondecreasing arrival
/// times; equal-arrival rows define the deterministic tie order.
class EventSource {
 public:
  EventSource() = default;
  EventSource(const EventSource&) = delete;
  EventSource& operator=(const EventSource&) = delete;
  virtual ~EventSource() = default;

  /// The next row without consuming it; nullptr once the stream is
  /// exhausted. The pointer is invalidated by advance().
  [[nodiscard]] virtual const core::VmInstance* peek() = 0;

  /// Consume the row returned by the last peek() (which must have been
  /// non-null).
  virtual void advance() = 0;

  /// Total rows in the stream, when known up-front. A pure reserve hint:
  /// engines must produce bit-identical results with or without it.
  [[nodiscard]] virtual std::optional<std::size_t> size_hint() const = 0;

  /// Latest departure across the whole stream (== Trace::horizon()), when
  /// known up-front. Required by replay_sharded (barrier windows) and by
  /// replay configurations with periodic control schedules.
  [[nodiscard]] virtual std::optional<core::SimTime> horizon_hint() const = 0;
};

/// EventSource over an already-materialized Trace (not owned; must outlive
/// the source). Exact hints.
class MaterializedSource final : public EventSource {
 public:
  explicit MaterializedSource(const workload::Trace& trace)
      : trace_(&trace), horizon_(trace.horizon()) {}

  [[nodiscard]] const core::VmInstance* peek() override {
    return pos_ < trace_->size() ? &trace_->vms()[pos_] : nullptr;
  }
  void advance() override {
    SLACKVM_ASSERT(pos_ < trace_->size());
    ++pos_;
  }
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return trace_->size();
  }
  [[nodiscard]] std::optional<core::SimTime> horizon_hint() const override {
    return horizon_;
  }

 private:
  const workload::Trace* trace_;
  core::SimTime horizon_;
  std::size_t pos_ = 0;
};

/// EventSource over a streaming TraceReader (owned). Pass the result of a
/// TraceReader::scan() pre-pass to provide the hints sharded/periodic
/// replays need; without it the source works for plain serial replays only.
class StreamingTraceSource final : public EventSource {
 public:
  explicit StreamingTraceSource(
      workload::TraceReader reader,
      std::optional<workload::TraceReader::ScanInfo> scan = std::nullopt)
      : reader_(std::move(reader)), scan_(scan) {}

  /// Convenience: open `path` and (optionally) pre-scan it first. The scan
  /// streams the file once with O(chunk) memory.
  static StreamingTraceSource open(const std::string& path,
                                   workload::TraceReaderOptions options = {},
                                   bool pre_scan = false) {
    std::optional<workload::TraceReader::ScanInfo> scan;
    if (pre_scan) {
      scan = workload::TraceReader::scan(path, options);
    }
    return StreamingTraceSource(workload::TraceReader(path, options), scan);
  }

  [[nodiscard]] const core::VmInstance* peek() override { return reader_.peek(); }
  void advance() override { reader_.advance(); }
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    if (!scan_.has_value()) {
      return std::nullopt;
    }
    return scan_->rows;
  }
  [[nodiscard]] std::optional<core::SimTime> horizon_hint() const override {
    if (!scan_.has_value()) {
      return std::nullopt;
    }
    return scan_->horizon;
  }

 private:
  workload::TraceReader reader_;
  std::optional<workload::TraceReader::ScanInfo> scan_;
};

/// EventSource over the synthetic generator's row stream. The generator
/// (and its catalog) must outlive the source. No horizon hint — see the
/// file comment — so this pairs with plain serial replays; materialize via
/// Generator::generate() when a horizon is needed.
class GeneratorSource final : public EventSource {
 public:
  explicit GeneratorSource(const workload::Generator& gen) : stream_(gen.stream()) {}

  [[nodiscard]] const core::VmInstance* peek() override {
    if (!have_ && !done_) {
      if (stream_.next(current_)) {
        have_ = true;
      } else {
        done_ = true;
      }
    }
    return have_ ? &current_ : nullptr;
  }
  void advance() override {
    SLACKVM_ASSERT(have_);
    have_ = false;
  }
  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return std::nullopt;
  }
  [[nodiscard]] std::optional<core::SimTime> horizon_hint() const override {
    return std::nullopt;
  }

 private:
  workload::Generator::Stream stream_;
  core::VmInstance current_{};
  bool have_ = false;
  bool done_ = false;
};

}  // namespace slackvm::sim
