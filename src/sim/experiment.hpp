// Evaluation protocols of the paper's §VII-B: baseline-vs-SlackVM packing
// comparisons across oversubscription distributions and providers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/datacenter.hpp"
#include "sim/fault.hpp"
#include "sim/metrics.hpp"
#include "sim/migration.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"

namespace slackvm::sim {

/// Protocol parameters; defaults mirror §VII-B1 (32-core / 128 GiB PMs,
/// target of 500 VMs over one simulated week).
struct ExperimentConfig {
  core::Resources host_config{32, core::gib(128)};
  /// DRAM oversubscription ratio applied to every PM (1.0 = none; OpenStack
  /// defaults to 1.5, paper footnote 2).
  double mem_oversub = 1.0;
  workload::GeneratorConfig generator{};
  /// Number of independently seeded workloads averaged per cell; seeds are
  /// generator.seed, +1, +2, ...
  std::size_t repetitions = 1;
  /// Worker threads for the experiment grid (sim/parallel.hpp): 1 = serial,
  /// 0 = all hardware threads. Each (distribution, repetition) cell is an
  /// independent replay whose seed depends only on its grid position, and
  /// results are reduced in grid order, so every value of this knob yields
  /// bit-identical results — it only changes wall-clock time.
  std::size_t parallelism = 1;
  /// Shard count for the sharded datacenter engine (sim/shard.hpp): 1 runs
  /// the serial replay() reference; > 1 replays through replay_sharded with
  /// this many shards — in shared mode the datacenter becomes the
  /// cell-partitioned Datacenter::shared_sharded organisation (VMs routed
  /// by id across `shards` shared clusters), in dedicated mode the level
  /// clusters are dealt round-robin across shards. A given shard count is
  /// bit-identical across parallelism and index settings (CLI/scenario:
  /// --shards).
  std::size_t shards = 1;
  /// Consult the incremental placement index (sched/placement_index.hpp)
  /// during replays. Host selection is provably identical either way
  /// (differential-tested), so like `parallelism` this knob only changes
  /// wall-clock time; off is the escape hatch that runs the exact naive
  /// scan (CLI/scenario: --index=on|off).
  bool use_index = true;
  /// Fault injection (sim/fault.hpp); disabled by default. A zero fault
  /// seed derives per repetition from the cell's workload seed, so each
  /// repetition sees an independent (but reproducible) fault timetable; an
  /// explicit seed pins one timetable across the grid.
  FaultConfig faults{};
  /// Continuous rebalance cadence in simulated seconds; 0 disables the
  /// loop. When > 0 every replay runs with RebalanceOptions{interval,
  /// budget} — instantly applied plans by default, or time-extended
  /// flights when `migration.enabled` (CLI/scenario: rebalance_s=,
  /// rebalance_budget=).
  core::SimTime rebalance_interval = 0;
  /// Per-pass migration budget handed to sched::Rebalancer::plan.
  std::size_t rebalance_budget = 64;
  /// Live-migration engine knobs (sim/migration.hpp). Only consulted when
  /// rebalance_interval > 0; `migration.enabled` switches the rebalance
  /// loop from instant apply_plan to MigrationEngine flights
  /// (CLI/scenario: migration=engine|instant, mig_*).
  MigrationConfig migration{};
  /// Interference loop knobs (sched/rebalancer.hpp). Only consulted when
  /// rebalance_interval > 0; `interference.enabled` arms the heat EWMA
  /// schedule and the polluter pass in every replay, and switches the
  /// shared organisation's policy from plain progress scoring to
  /// sched::make_interference_policy(heat_weight) (CLI/scenario:
  /// interference=on|off, heat_*, itf_*).
  sched::InterferenceOptions interference{};
  /// Replay a real trace file instead of generating a workload. When
  /// non-empty, every cell streams this CSV through workload::TraceReader
  /// (native or real format, auto-detected; one O(chunk)-memory scan
  /// pre-pass per replay provides the horizon) and the generator/mix are
  /// ignored for workload purposes — the dedicated baseline then builds a
  /// cluster for each of the three paper levels, since the level
  /// population is decided row-by-row by the classifier. The trace is
  /// fixed across repetitions, so with faults disabled every repetition is
  /// identical; repetitions still matter with faults enabled because the
  /// per-repetition fault seed varies the timetable (CLI/scenario: trace=).
  std::string trace_path;
};

/// One baseline-vs-SlackVM comparison (a Fig. 3 bar pair / Fig. 4 cell).
struct PackingComparison {
  std::string provider;
  std::string distribution;  ///< "A".."O"
  RunResult baseline;        ///< dedicated clusters, First-Fit
  RunResult slackvm;         ///< shared cluster, progress score

  /// PMs saved by SlackVM, in percent of the baseline cluster size.
  [[nodiscard]] double pm_saving_pct() const;
};

/// Field-wise mean of RunResults over repetitions: counts are rounded to
/// the nearest integer, shares/durations averaged, and per-cluster PM
/// counts averaged per cluster name. Results must be reduced in repetition
/// order for bit-stable floating-point sums (the parallel runner guarantees
/// this). Empty input yields a default RunResult.
[[nodiscard]] RunResult mean_result(std::span<const RunResult> results);

/// Run one comparison: the same trace replayed against (a) dedicated
/// First-Fit clusters and (b) a shared progress-score cluster. With
/// repetitions > 1 the PM counts and shares are averaged.
[[nodiscard]] PackingComparison compare_packing(const workload::Catalog& catalog,
                                                const workload::LevelMix& mix,
                                                const ExperimentConfig& config);

/// Fig. 3 protocol: all 15 distributions for one provider.
[[nodiscard]] std::vector<PackingComparison> run_distribution_sweep(
    const workload::Catalog& catalog, const ExperimentConfig& config);

/// A cell of the Fig. 4 heatmap.
struct HeatmapCell {
  int pct_1to1 = 0;
  int pct_2to1 = 0;
  double saving_pct = 0.0;
};

/// Fig. 4 protocol: the (share 1:1, share 2:1) grid in 25% steps for one
/// provider. Cells are rows of the lower-triangular heatmap.
[[nodiscard]] std::vector<HeatmapCell> run_savings_heatmap(
    const workload::Catalog& catalog, const ExperimentConfig& config);

}  // namespace slackvm::sim
