// Simulated datacenter: the CloudSimPlus substitute (paper §VII-B).
//
// Two provisioning modes:
//  * Dedicated — the baseline: one elastic VCluster per oversubscription
//    level (each PM adheres to a single level), First-Fit placement;
//  * Shared — SlackVM: a single elastic VCluster whose PMs co-host all
//    levels through vNode accounting, progress-score placement.
// Both modes open a PM only when no open PM fits, so the number of opened
// PMs is the minimal cluster size under the policy.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/oversub.hpp"
#include "sched/rebalancer.hpp"
#include "sched/vcluster.hpp"

namespace slackvm::sim {

/// Creates a fresh placement policy; a factory (not an instance) because the
/// dedicated mode needs one policy object per level cluster.
using PolicyFactory = std::function<std::unique_ptr<sched::PlacementPolicy>()>;

class Datacenter {
 public:
  /// Baseline: dedicated clusters, one per level in `levels`. A
  /// `mem_oversub` > 1 enables limited DRAM oversubscription on every PM.
  static Datacenter dedicated(core::Resources host_config,
                              std::vector<core::OversubLevel> levels,
                              const PolicyFactory& factory, double mem_oversub = 1.0);

  /// SlackVM: one shared multi-oversubscription cluster.
  static Datacenter shared(core::Resources host_config, const PolicyFactory& factory,
                           double mem_oversub = 1.0);

  /// Cell-partitioned SlackVM: `shards` independent shared clusters, VMs
  /// routed by id (VmId % shards). This is the shared-fleet organisation the
  /// sharded simulator (sim/shard.hpp) runs concurrently — each cell is an
  /// isolated placement domain, mirroring production cell/zone partitioning.
  /// With shards == 1 it is exactly shared(). Note that for shards > 1 the
  /// packing itself differs from the single shared cluster (cells cannot
  /// borrow capacity from each other); the determinism guarantee is that a
  /// given shard count packs bit-identically at every thread count.
  static Datacenter shared_sharded(core::Resources host_config,
                                   const PolicyFactory& factory, std::size_t shards,
                                   double mem_oversub = 1.0);

  /// Heterogeneous-fleet variants (paper §VI: Algorithm 2 computes the
  /// target ratio per PM, accommodating mixed hardware generations).
  static Datacenter dedicated_fleet(const sched::FleetSpec& fleet,
                                    std::vector<core::OversubLevel> levels,
                                    const PolicyFactory& factory,
                                    double mem_oversub = 1.0);
  static Datacenter shared_fleet(const sched::FleetSpec& fleet,
                                 const PolicyFactory& factory,
                                 double mem_oversub = 1.0);
  static Datacenter shared_sharded_fleet(const sched::FleetSpec& fleet,
                                         const PolicyFactory& factory,
                                         std::size_t shards, double mem_oversub = 1.0);

  /// Cluster index a deployment of (id, spec) routes to: the level's
  /// dedicated cluster, cluster 0 (single shared), or VmId % clusters
  /// (shared_sharded). Pure in (id, spec) and the fixed cluster layout, so
  /// concurrent shards may call it freely; throws for a level no dedicated
  /// cluster serves.
  [[nodiscard]] std::size_t route(core::VmId id, const core::VmSpec& spec) const;

  /// Deploy a VM (routes to the level's cluster in dedicated mode).
  /// Throws when the spec cannot fit on an empty PM.
  sched::HostId deploy(core::VmId id, const core::VmSpec& spec);

  /// Like deploy() but returns std::nullopt instead of throwing when the VM
  /// cannot be placed (fixed-fleet mode).
  std::optional<sched::HostId> try_deploy(core::VmId id, const core::VmSpec& spec);

  /// Cap every cluster's fleet size (fixed-fleet mode). In dedicated mode
  /// the cap applies per level cluster.
  void set_max_hosts_per_cluster(std::size_t max_hosts);

  /// Toggle every cluster's incremental placement index (the --index=on|off
  /// experiment knob). Selection is identical either way; off preserves the
  /// exact naive-scan code path.
  void set_index_enabled(bool enabled);

  /// Pre-size per-cluster containers for an expected number of VM
  /// deployments (trace-size hint). Purely a performance hint.
  void reserve(std::size_t expected_vms);

  /// Remove a deployed VM; throws for unknown ids. Resolved by probing the
  /// clusters (there are at most a handful) — the serial convenience path;
  /// the sharded engine removes through route() + cluster() instead.
  void remove(core::VmId id);

  /// Fail one host of one cluster (sim/fault.hpp): evicts every VM it ran —
  /// returned in ascending VmId order, already detached from the datacenter
  /// — and marks the host FAILED until VCluster::repair_host. Draining,
  /// repairing and drain-time migration keep VMs inside their cluster, so
  /// the fault injector drives those directly through cluster(); only
  /// failure changes VM membership and needs this datacenter-level hook.
  [[nodiscard]] std::vector<std::pair<core::VmId, core::VmSpec>> fail_host(
      std::size_t cluster_index, sched::HostId host);

  [[nodiscard]] bool is_shared() const noexcept { return shared_; }

  /// Total PMs ever opened across clusters (the headline metric).
  [[nodiscard]] std::size_t opened_pms() const;

  /// PMs currently hosting at least one VM (can shrink after departures or
  /// migration-driven consolidation; emptied PMs could be powered down).
  [[nodiscard]] std::size_t active_pms() const;

  /// Run one rebalancing pass (live migration, §VII-B2a future work) over
  /// every cluster; returns the number of migrations performed.
  std::size_t rebalance(const sched::Rebalancer& rebalancer,
                        std::size_t max_migrations_per_cluster);

  /// Opened PMs per cluster, keyed by cluster name. Cluster names are fixed
  /// at construction, so the returned map is a member cache whose counts are
  /// refreshed in place — calling this in a per-tick metric loop allocates
  /// nothing after the first call. The reference stays valid for the
  /// datacenter's lifetime (contents refresh on each call).
  [[nodiscard]] const std::map<std::string, std::size_t>& opened_per_cluster() const;

  /// Aggregate allocation / capacity over all opened PMs.
  [[nodiscard]] core::Resources total_alloc() const;
  [[nodiscard]] core::Resources total_config() const;

  /// Currently running VMs.
  [[nodiscard]] std::size_t vm_count() const;

  [[nodiscard]] const std::vector<std::unique_ptr<sched::VCluster>>& clusters() const {
    return clusters_;
  }

  /// Mutable cluster access (e.g. to install placement filters).
  [[nodiscard]] sched::VCluster& cluster(std::size_t index) {
    return *clusters_.at(index);
  }

 private:
  Datacenter() = default;

  bool shared_ = false;
  std::vector<std::unique_ptr<sched::VCluster>> clusters_;
  /// level ratio -> index into clusters_ (dedicated mode only).
  std::map<std::uint8_t, std::size_t> level_to_cluster_;
  /// opened_per_cluster() cache: keys seeded once, counts refreshed in place.
  mutable std::map<std::string, std::size_t> opened_cache_;
};

}  // namespace slackvm::sim
