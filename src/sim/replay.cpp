#include "sim/replay.hpp"

#include <algorithm>
#include <optional>

#include "sim/audit.hpp"

namespace slackvm::sim {

RunResult replay(Datacenter& dc, const workload::Trace& trace,
                 const std::optional<RebalanceOptions>& rebalance,
                 UsageMonitor* usage_monitor, const FaultConfig* faults) {
  EventQueue queue;
  MetricsCollector metrics;
  RunResult result;

  // Trace-size hint: pre-size placement maps/host vectors before the churn.
  dc.reserve(trace.size());

  // Fault events (repairs, backoff retries) may legitimately fire past the
  // trace horizon; the run ends at the later of the two.
  core::SimTime end_time = trace.empty() ? 0.0 : trace.horizon();

  auto observe = [&dc, &metrics, &result, &end_time](core::SimTime t) {
    end_time = std::max(end_time, t);
    const std::size_t active = dc.active_pms();
    metrics.observe(t, dc.total_alloc(), dc.total_config(), dc.vm_count(), active);
    result.peak_active_pms = std::max(result.peak_active_pms, active);
    // No-op unless the debug-audit flag is set (tests): every event is then
    // followed by a full invariant audit, throwing on the first violation.
    debug_audit_check(dc);
  };

  std::optional<FaultInjector> injector;
  if (faults != nullptr && faults->enabled()) {
    injector.emplace(dc, queue, *faults, result, observe);
  }

  for (const core::VmInstance& vm : trace.vms()) {
    // Both events are scheduled up-front; at equal timestamps the queue
    // falls back to insertion order, so the replay is fully deterministic.
    queue.schedule(vm.arrival, [&dc, &result, &vm, &observe, &injector](core::SimTime t) {
      if (injector.has_value()) {
        // Under fault injection capacity can be transiently exhausted;
        // arrivals defer into the retry/degraded machinery instead of
        // aborting the run.
        injector->deploy_or_defer(vm.id, vm.spec, t);
      } else {
        dc.deploy(vm.id, vm.spec);
        ++result.placed_vms;
      }
      observe(t);
    });
    queue.schedule(vm.departure, [&dc, &observe, &injector, id = vm.id](core::SimTime t) {
      // A VM still waiting for a retry (or parked degraded) is not in the
      // datacenter; the injector absorbs its departure.
      if (!injector.has_value() || !injector->absorb_departure(id)) {
        dc.remove(id);
      }
      observe(t);
    });
  }
  // Must outlive queue.run(): the periodic events below capture it.
  const sched::Rebalancer rebalancer;
  if (rebalance && !trace.empty()) {
    const core::SimTime horizon = trace.horizon();
    for (core::SimTime t = rebalance->interval; t < horizon; t += rebalance->interval) {
      queue.schedule(t, [&dc, &result, &rebalancer, &rebalance,
                         &observe](core::SimTime now) {
        result.migrations += dc.rebalance(rebalancer, rebalance->budget_per_pass);
        observe(now);
      });
    }
  }
  if (usage_monitor != nullptr && !trace.empty()) {
    const core::SimTime horizon = trace.horizon();
    for (core::SimTime t = usage_monitor->interval() / 2; t < horizon;
         t += usage_monitor->interval()) {
      queue.schedule(t, [&dc, usage_monitor](core::SimTime now) {
        usage_monitor->record(sample_usage(dc, now));
      });
    }
  }
  // Armed last so that a fault colliding with a workload event fires after
  // it (insertion-order ties) — the same order on every run.
  if (injector.has_value()) {
    injector->arm(trace.empty() ? 0.0 : trace.horizon());
  }
  queue.run();

  result.opened_pms = dc.opened_pms();
  result.opened_per_cluster = dc.opened_per_cluster();
  metrics.finish(end_time, result);
  return result;
}

}  // namespace slackvm::sim
