#include "sim/replay.hpp"

#include <algorithm>
#include <optional>

#include "perf/contention.hpp"
#include "sim/audit.hpp"
#include "sim/event_source.hpp"

namespace slackvm::sim {

RunResult replay(Datacenter& dc, EventSource& source,
                 const std::optional<RebalanceOptions>& rebalance,
                 UsageMonitor* usage_monitor, const FaultConfig* faults) {
  EventQueue queue;
  MetricsCollector metrics;
  RunResult result;

  // Row-count hint: pre-size placement maps/host vectors before the churn.
  // Purely a performance hint — absent for unscanned streams.
  if (const std::optional<std::size_t> rows = source.size_hint()) {
    dc.reserve(*rows);
  }

  // Periodic control schedules (consolidation passes, usage samples, the
  // fault timetable) must be laid out before the first event fires, which
  // needs the horizon up-front. A plain replay converges to the horizon by
  // observation instead (the last departure is the latest event).
  const std::optional<core::SimTime> horizon_hint = source.horizon_hint();
  const bool wants_horizon = rebalance.has_value() || usage_monitor != nullptr ||
                             (faults != nullptr && faults->enabled());
  if (wants_horizon && !horizon_hint.has_value()) {
    SLACKVM_THROW(
        "replay: rebalance/usage-monitor/fault schedules need the trace "
        "horizon up-front, but this event source has no horizon hint; "
        "pre-scan the file (TraceReader::scan) or materialize the trace");
  }
  const core::SimTime horizon = horizon_hint.value_or(0.0);

  // Fault events (repairs, backoff retries) may legitimately fire past the
  // trace horizon; the run ends at the later of the two.
  core::SimTime end_time = horizon;

  auto observe = [&dc, &metrics, &result, &end_time](core::SimTime t) {
    end_time = std::max(end_time, t);
    const std::size_t active = dc.active_pms();
    metrics.observe(t, dc.total_alloc(), dc.total_config(), dc.vm_count(), active);
    result.peak_active_pms = std::max(result.peak_active_pms, active);
    // No-op unless the debug-audit flag is set (tests): every event is then
    // followed by a full invariant audit, throwing on the first violation.
    debug_audit_check(dc);
  };

  std::optional<FaultInjector> injector;
  if (faults != nullptr && faults->enabled()) {
    injector.emplace(dc, queue, *faults, result, observe);
  }
  std::optional<MigrationEngine> engine;
  if (rebalance && rebalance->migration.enabled) {
    engine.emplace(dc, queue, rebalance->migration, result, observe);
    if (injector.has_value()) {
      // Faults must abort/reroute the flights they touch *before* they
      // mutate the fleet (sim/migration.hpp failure semantics).
      injector->set_migration_engine(&*engine);
    }
  }

  // Lazily schedule one trace row: arrival then departure, both on the
  // workload lane so a row inserted mid-run still wins time ties against
  // control events exactly as the historical schedule-everything-first
  // replay did. The row is captured by value — the source's buffers are
  // long recycled by the time the events fire.
  const auto schedule_row = [&queue, &dc, &result, &observe, &injector,
                             &engine](const core::VmInstance& vm) {
    queue.schedule_lane(
        vm.arrival, EventQueue::kLaneWorkload,
        [&dc, &result, vm, &observe, &injector](core::SimTime t) {
          if (injector.has_value()) {
            // Under fault injection capacity can be transiently exhausted;
            // arrivals defer into the retry/degraded machinery instead of
            // aborting the run.
            injector->deploy_or_defer(vm.id, vm.spec, t);
          } else {
            dc.deploy(vm.id, vm.spec);
            ++result.placed_vms;
          }
          observe(t);
        });
    queue.schedule_lane(vm.departure, EventQueue::kLaneWorkload,
                        [&dc, &observe, &injector, &engine, id = vm.id](core::SimTime t) {
                          // A departing VM first cancels any migration intent
                          // it carries (rolling back an in-flight
                          // reservation) — the engine must let go before the
                          // VM leaves the placement maps.
                          if (engine.has_value()) {
                            engine->on_departure(id, t);
                          }
                          // A VM still waiting for a retry (or parked
                          // degraded) is not in the datacenter; the injector
                          // absorbs its departure.
                          if (!injector.has_value() || !injector->absorb_departure(id)) {
                            dc.remove(id);
                          }
                          observe(t);
                        });
  };

  // The pump invariant: before any event at time T fires, every row with
  // arrival <= T is scheduled. Rows arrive in nondecreasing order and
  // depart strictly after they arrive, so pulling until the next row
  // arrives after the queue's earliest pending event maintains it — and
  // the queue never holds more than the trace's active window.
  const auto pump = [&queue, &source, &schedule_row]() {
    while (const core::VmInstance* row = source.peek()) {
      if (!queue.empty() && row->arrival > queue.next_time()) {
        break;
      }
      schedule_row(*row);
      source.advance();
    }
  };
  pump();

  // Must outlive queue.run(): the periodic events below capture them.
  const sched::Rebalancer rebalancer;
  const perf::ContentionModel contention;
  // Per-cluster demand caches for the heat ticks; handed to
  // update_cluster_heat only when the cluster's index machinery is on, so
  // --index=off keeps the naive sample as the live differential reference.
  std::vector<DemandCache> heat_caches(dc.clusters().size());
  const bool interference = rebalance && rebalance->interference.enabled;
  if (interference) {
    rebalance->interference.validate();
  }
  if (rebalance && horizon > 0) {
    for (core::SimTime t = rebalance->interval; t < horizon; t += rebalance->interval) {
      if (engine.has_value()) {
        // Continuous rebalance loop: plan per cluster against the live
        // (reservation-aware) state and hand every move to the engine as an
        // intent. Flights already in the air make request() reject repeats,
        // and the per-cluster in-flight budget bounds the launch rate. With
        // interference on, each cluster's polluter pass runs first so its
        // evictions claim in-flight slots before consolidation fills them.
        queue.schedule(t, [&dc, &result, &rebalancer, &rebalance, &engine,
                           &contention, interference](core::SimTime now) {
          for (std::size_t c = 0; c < dc.clusters().size(); ++c) {
            if (interference) {
              const sched::MigrationPlan hot = rebalancer.plan_interference(
                  dc.cluster(c), contention, rebalance->interference);
              ++result.itf_passes;
              result.itf_hot_hosts += hot.hot_hosts;
              result.itf_evictions += hot.migrations.size();
              for (const sched::Migration& m : hot.migrations) {
                engine->request(c, m, now);
                ++result.itf_requested;
              }
            }
            const sched::MigrationPlan plan =
                rebalancer.plan(dc.cluster(c), rebalance->budget_per_pass);
            for (const sched::Migration& m : plan.migrations) {
              engine->request(c, m, now);
            }
          }
        });
      } else if (interference) {
        // Instant mode, interference on: interleave polluter pass and
        // consolidation per cluster — the exact order replay_sharded()'s
        // per-shard pass uses, so both paths stay bit-identical.
        queue.schedule(t, [&dc, &result, &rebalancer, &rebalance, &contention,
                           &observe](core::SimTime now) {
          for (std::size_t c = 0; c < dc.clusters().size(); ++c) {
            const sched::MigrationPlan hot = rebalancer.plan_interference(
                dc.cluster(c), contention, rebalance->interference);
            ++result.itf_passes;
            result.itf_hot_hosts += hot.hot_hosts;
            result.itf_evictions += hot.migrations.size();
            const std::size_t applied =
                sched::Rebalancer::apply_plan(dc.cluster(c), hot);
            result.itf_applied += applied;
            result.itf_skipped += hot.migrations.size() - applied;
            result.migrations += applied;
            const sched::MigrationPlan plan =
                rebalancer.plan(dc.cluster(c), rebalance->budget_per_pass);
            result.migrations += sched::Rebalancer::apply_plan(dc.cluster(c), plan);
          }
          observe(now);
        });
      } else {
        queue.schedule(t, [&dc, &result, &rebalancer, &rebalance,
                           &observe](core::SimTime now) {
          result.migrations += dc.rebalance(rebalancer, rebalance->budget_per_pass);
          observe(now);
        });
      }
    }
  }
  if (interference && horizon > 0) {
    // Heat refresh schedule: one event per heat_interval updates every
    // host's EWMA through the index-safe funnel. Scheduled after the
    // rebalance events so a coincident tick rebalances against the
    // *previous* window's heat — the same relative order replay_sharded()
    // uses. The metric sample stream is untouched (no observe()): a run
    // only differs from a heat-free run through actual placement changes.
    const sched::InterferenceOptions& itf = rebalance->interference;
    for (core::SimTime t = itf.heat_interval; t < horizon; t += itf.heat_interval) {
      queue.schedule(t, [&dc, &result, &itf, &heat_caches](core::SimTime now) {
        for (std::size_t c = 0; c < dc.clusters().size(); ++c) {
          DemandCache* cache =
              dc.cluster(c).index_enabled() ? &heat_caches[c] : nullptr;
          result.heat_updates += update_cluster_heat(
              dc.cluster(c), now, itf.heat_alpha, itf.heat_bucket, cache);
        }
        debug_audit_check(dc);
      });
    }
  }
  if (usage_monitor != nullptr && horizon > 0) {
    for (core::SimTime t = usage_monitor->interval() / 2; t < horizon;
         t += usage_monitor->interval()) {
      queue.schedule(t, [&dc, usage_monitor](core::SimTime now) {
        usage_monitor->record(sample_usage(dc, now));
      });
    }
  }
  // Armed last so that control-lane ties between the timetable and the
  // schedules above resolve the same way on every run. Workload events win
  // time ties regardless via their lane.
  if (injector.has_value()) {
    injector->arm(horizon);
  }

  while (true) {
    pump();
    if (queue.empty()) {
      break;
    }
    queue.step();
  }

  if (engine.has_value()) {
    // A drained queue means every intent reached a terminal bucket; the
    // engine re-derives the counter identity and the reservation <-> flight
    // bijection from first principles.
    SLACKVM_ASSERT(engine->in_flight() == 0 && engine->pending_intents() == 0);
    const std::vector<std::string> violations = engine->audit();
    if (!violations.empty()) {
      std::string message = "replay: migration audit failed:";
      for (const std::string& v : violations) {
        message += "\n  " + v;
      }
      SLACKVM_THROW(message);
    }
  }

  result.opened_pms = dc.opened_pms();
  result.opened_per_cluster = dc.opened_per_cluster();
  metrics.finish(end_time, result);
  return result;
}

RunResult replay(Datacenter& dc, const workload::Trace& trace,
                 const std::optional<RebalanceOptions>& rebalance,
                 UsageMonitor* usage_monitor, const FaultConfig* faults) {
  MaterializedSource source(trace);
  return replay(dc, source, rebalance, usage_monitor, faults);
}

}  // namespace slackvm::sim
