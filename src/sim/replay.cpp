#include "sim/replay.hpp"

#include <algorithm>

namespace slackvm::sim {

RunResult replay(Datacenter& dc, const workload::Trace& trace,
                 const std::optional<RebalanceOptions>& rebalance,
                 UsageMonitor* usage_monitor) {
  EventQueue queue;
  MetricsCollector metrics;
  RunResult result;

  // Trace-size hint: pre-size placement maps/host vectors before the churn.
  dc.reserve(trace.size());

  auto observe = [&dc, &metrics, &result](core::SimTime t) {
    const std::size_t active = dc.active_pms();
    metrics.observe(t, dc.total_alloc(), dc.total_config(), dc.vm_count(), active);
    result.peak_active_pms = std::max(result.peak_active_pms, active);
  };

  for (const core::VmInstance& vm : trace.vms()) {
    // Both events are scheduled up-front; at equal timestamps the queue
    // falls back to insertion order, so the replay is fully deterministic.
    queue.schedule(vm.arrival, [&dc, &result, &vm, &observe](core::SimTime t) {
      dc.deploy(vm.id, vm.spec);
      ++result.placed_vms;
      observe(t);
    });
    queue.schedule(vm.departure, [&dc, &observe, id = vm.id](core::SimTime t) {
      dc.remove(id);
      observe(t);
    });
  }
  // Must outlive queue.run(): the periodic events below capture it.
  const sched::Rebalancer rebalancer;
  if (rebalance && !trace.empty()) {
    const core::SimTime horizon = trace.horizon();
    for (core::SimTime t = rebalance->interval; t < horizon; t += rebalance->interval) {
      queue.schedule(t, [&dc, &result, &rebalancer, &rebalance,
                         &observe](core::SimTime now) {
        result.migrations += dc.rebalance(rebalancer, rebalance->budget_per_pass);
        observe(now);
      });
    }
  }
  if (usage_monitor != nullptr && !trace.empty()) {
    const core::SimTime horizon = trace.horizon();
    for (core::SimTime t = usage_monitor->interval() / 2; t < horizon;
         t += usage_monitor->interval()) {
      queue.schedule(t, [&dc, usage_monitor](core::SimTime now) {
        usage_monitor->record(sample_usage(dc, now));
      });
    }
  }
  queue.run();

  result.opened_pms = dc.opened_pms();
  result.opened_per_cluster = dc.opened_per_cluster();
  metrics.finish(trace.empty() ? 0.0 : trace.horizon(), result);
  return result;
}

}  // namespace slackvm::sim
