#include "sim/power.hpp"

#include "core/error.hpp"

namespace slackvm::sim {

EnergyReport estimate_energy(const RunResult& result, core::CoreCount pm_cores,
                             const PowerModel& model, bool power_down_idle) {
  SLACKVM_ASSERT(pm_cores > 0);
  SLACKVM_ASSERT(model.peak_watts >= model.idle_watts && model.idle_watts >= 0);
  SLACKVM_ASSERT(model.pue >= 1.0);

  EnergyReport report;
  const double hours = result.duration / 3600.0;
  const double powered_pms = power_down_idle
                                 ? result.avg_active_pms
                                 : static_cast<double>(result.opened_pms);
  report.pm_hours = powered_pms * hours;

  // Fleet power: idle floor per powered PM plus the dynamic share driven by
  // the aggregate core allocation (each allocated core contributes
  // (peak - idle) / pm_cores watts on its PM).
  const double dynamic_watts =
      (model.peak_watts - model.idle_watts) *
      (result.avg_alloc_cores / static_cast<double>(pm_cores));
  const double it_watts = powered_pms * model.idle_watts + dynamic_watts;
  report.kwh = it_watts * model.pue * hours / 1000.0;
  report.carbon_kg = report.kwh * model.carbon_g_per_kwh / 1000.0;
  return report;
}

}  // namespace slackvm::sim
