#include "sim/fault.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "sim/migration.hpp"

namespace slackvm::sim {

FaultConfig resolve_fault_seed(FaultConfig config, std::uint64_t workload_seed) noexcept {
  if (config.seed == 0) {
    config.seed = core::derive_seed(workload_seed, kFaultSeedStream);
  }
  return config;
}

FaultInjector::FaultInjector(Datacenter& dc, EventQueue& queue, const FaultConfig& config,
                             RunResult& result, std::function<void(core::SimTime)> observe,
                             ShardScope scope)
    : dc_(dc),
      queue_(queue),
      config_(config),
      scope_(scope),
      result_(result),
      observe_(std::move(observe)) {
  SLACKVM_ASSERT(observe_ != nullptr);
  SLACKVM_ASSERT(scope_.of >= 1 && scope_.shard < scope_.of);
}

void FaultInjector::arm(core::SimTime horizon) {
  // Seeded faults first, directives second, both in stable order: at equal
  // timestamps the queue falls back to insertion order, so the timetable is
  // deterministic even when events collide.
  for (std::size_t k = 0; k < config_.count; ++k) {
    schedule_seeded(k, horizon);
  }
  for (const FaultDirective& directive : config_.directives) {
    schedule_directive(directive);
  }
}

void FaultInjector::schedule_seeded(std::size_t k, core::SimTime horizon) {
  // The k-th fault depends only on (seed, k), so the timetable is stable
  // under count changes and identical across index/parallelism settings.
  core::SplitMix64 rng(core::derive_seed(config_.seed, k));
  const core::SimTime fail_at = rng.uniform(0.0, std::max(horizon, 0.0));
  const std::uint64_t cluster_slot = rng();
  const std::uint64_t host_slot = rng();
  // The target cluster is fixed at schedule time (the cluster count never
  // changes during a run), so a sharded injector can drop the events it
  // does not own here and the per-shard timetables partition the serial one.
  const auto cluster = static_cast<std::size_t>(cluster_slot % dc_.clusters().size());
  if (!scope_.owns(cluster)) {
    return;
  }
  const core::SimTime begin_at = std::max(0.0, fail_at - config_.drain_lead);
  queue_.schedule(begin_at, [this, cluster, host_slot, fail_at](core::SimTime now) {
    fire_seeded_begin(cluster, host_slot, fail_at, now);
  });
}

void FaultInjector::schedule_directive(const FaultDirective& directive) {
  // Out-of-range directives stay with shard 0 so the range error below is
  // still raised exactly once.
  const bool in_range = directive.cluster < dc_.clusters().size();
  if (in_range ? !scope_.owns(directive.cluster) : scope_.shard != 0) {
    return;
  }
  queue_.schedule(directive.at, [this, d = directive](core::SimTime now) {
    if (d.cluster >= dc_.clusters().size()) {
      SLACKVM_THROW("FaultInjector: directive cluster " + std::to_string(d.cluster) +
                    " out of range");
    }
    if (d.host >= dc_.cluster(d.cluster).opened_hosts()) {
      return;  // the fleet never grew this far; the directive fizzles
    }
    switch (d.kind) {
      case FaultDirective::Kind::kDrain:
        fire_drain(d.cluster, d.host, now);
        return;
      case FaultDirective::Kind::kFail:
        // Explicit failures do not auto-repair: the scenario author pairs
        // them with explicit `repair` directives (or leaves the host down).
        fire_fail(d.cluster, d.host, /*auto_repair=*/false, now);
        return;
      case FaultDirective::Kind::kRepair:
        fire_repair(d.cluster, d.host, now);
        return;
    }
  });
}

void FaultInjector::fire_seeded_begin(std::size_t cluster, std::uint64_t host_slot,
                                      core::SimTime fail_at, core::SimTime now) {
  // Resolve the host against the cluster's live fleet at fire time.
  // Placement selection is bit-identical across index on/off and
  // parallelism settings, so the fleet — and therefore this resolution —
  // is too.
  sched::VCluster& cl = dc_.cluster(cluster);
  if (cl.opened_hosts() == 0) {
    return;  // nothing opened yet; the fault fizzles
  }
  const auto host = static_cast<sched::HostId>(host_slot % cl.opened_hosts());
  if (cl.host_phase(host) != sched::HostPhase::kUp) {
    return;  // already draining or down from an overlapping fault
  }
  if (config_.drain_lead > 0.0 && fail_at > now) {
    fire_drain(cluster, host, now);
    queue_.schedule(fail_at, [this, cluster, host](core::SimTime t) {
      fire_fail(cluster, host, /*auto_repair=*/true, t);
    });
    return;
  }
  fire_fail(cluster, host, /*auto_repair=*/true, now);
}

void FaultInjector::fire_drain(std::size_t cluster, sched::HostId host,
                               core::SimTime now) {
  sched::VCluster& cl = dc_.cluster(cluster);
  if (cl.host_phase(host) != sched::HostPhase::kUp) {
    return;
  }
  if (migration_engine_ != nullptr) {
    // Flights must let go of the host before migrate_off moves its VMs and
    // before the phase change strands destination reservations.
    migration_engine_->on_host_draining(cluster, host, now);
  }
  cl.drain_host(host);
  ++result_.drained_hosts;
  result_.evac_migrated += cl.migrate_off(host);
  observe_(now);
}

void FaultInjector::fire_fail(std::size_t cluster, sched::HostId host, bool auto_repair,
                              core::SimTime now) {
  sched::VCluster& cl = dc_.cluster(cluster);
  if (cl.host_phase(host) == sched::HostPhase::kFailed) {
    return;  // double failure (overlapping schedules); the repair is pending
  }
  if (migration_engine_ != nullptr) {
    // Cancel flights sourced here (the eviction below re-places their VMs)
    // and roll back reservations targeting the dying host — all before any
    // fleet mutation, so the engine classifies against pre-failure state.
    migration_engine_->on_host_failing(cluster, host, now);
  }
  ++result_.host_failures;
  const auto victims = dc_.fail_host(cluster, host);
  result_.evacuated_vms += victims.size();
  for (const auto& [vm, spec] : victims) {
    place_or_queue(vm, spec, /*from_failure=*/true, now);
  }
  observe_(now);
  if (auto_repair) {
    queue_.schedule(now + config_.repair_delay, [this, cluster, host](core::SimTime t) {
      fire_repair(cluster, host, t);
    });
  }
}

void FaultInjector::fire_repair(std::size_t cluster, sched::HostId host,
                                core::SimTime now) {
  sched::VCluster& cl = dc_.cluster(cluster);
  if (cl.host_phase(host) == sched::HostPhase::kUp) {
    return;  // an explicit directive repaired it earlier
  }
  cl.repair_host(host);
  ++result_.host_repairs;
  observe_(now);
}

void FaultInjector::deploy_or_defer(core::VmId id, const core::VmSpec& spec,
                                    core::SimTime now) {
  place_or_queue(id, spec, /*from_failure=*/false, now);
}

void FaultInjector::place_or_queue(core::VmId id, const core::VmSpec& spec,
                                   bool from_failure, core::SimTime now) {
  if (dc_.try_deploy(id, spec).has_value()) {
    if (from_failure) {
      ++result_.evac_replaced;
    } else {
      ++result_.placed_vms;
    }
    return;
  }
  if (!from_failure) {
    ++result_.deferred_arrivals;
  }
  const auto [it, inserted] = pending_.emplace(id, Pending{spec, 1, from_failure});
  SLACKVM_ASSERT(inserted);
  static_cast<void>(it);
  schedule_retry(id, 1, now);
}

void FaultInjector::schedule_retry(core::VmId id, std::size_t attempts,
                                   core::SimTime now) {
  // Exponential backoff keyed to the number of failed attempts so far:
  // base, 2x, 4x, ... (shift clamped only to dodge UB; max_retries keeps
  // real runs far below it).
  const double delay =
      config_.backoff_base *
      static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(attempts - 1, 62));
  queue_.schedule(now + delay, [this, id](core::SimTime t) { retry(id, t); });
}

void FaultInjector::retry(core::VmId id, core::SimTime now) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;  // departed while waiting
  }
  Pending& entry = it->second;
  if (entry.from_failure) {
    ++result_.evac_retries;
  }
  if (dc_.try_deploy(id, entry.spec).has_value()) {
    if (entry.from_failure) {
      ++result_.evac_replaced;
    } else {
      ++result_.placed_vms;
    }
    pending_.erase(it);
    observe_(now);
    return;
  }
  ++entry.attempts;
  if (entry.attempts > config_.max_retries) {
    if (entry.from_failure) {
      ++result_.degraded_vms;
    } else {
      ++result_.arrivals_dropped;
    }
    degraded_.insert(id);
    pending_.erase(it);
    return;
  }
  schedule_retry(id, entry.attempts, now);
}

bool FaultInjector::absorb_departure(core::VmId id) {
  const auto it = pending_.find(id);
  if (it != pending_.end()) {
    if (it->second.from_failure) {
      ++result_.evac_departed;
    } else {
      // A deferred arrival whose lifetime ran out before capacity appeared
      // counts as dropped: it was never placed.
      ++result_.arrivals_dropped;
    }
    pending_.erase(it);
    return true;
  }
  return degraded_.erase(id) > 0;
}

}  // namespace slackvm::sim
