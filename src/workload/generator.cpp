#include "workload/generator.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace slackvm::workload {

Generator::Generator(const Catalog& catalog, LevelMix mix, GeneratorConfig config)
    : catalog_(catalog),
      oversub_catalog_(catalog.truncated(kOversubMemCap)),
      mix_(std::move(mix)),
      config_(config) {
  SLACKVM_ASSERT(mix_.valid());
  SLACKVM_ASSERT(config_.target_population > 0);
  SLACKVM_ASSERT(config_.horizon > 0 && config_.mean_lifetime > 0);
  SLACKVM_ASSERT(config_.idle_share + config_.steady_share + config_.bursty_share <= 1.0);
  SLACKVM_ASSERT(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
}

core::VmSpec Generator::sample_spec(core::SplitMix64& rng) const {
  core::VmSpec spec;
  spec.level = mix_.sample(rng);
  // Oversubscribed offers are capped at 8 GB (§III-A); premium VMs draw from
  // the full catalog.
  const Catalog& source = spec.level.oversubscribed() ? oversub_catalog_ : catalog_;
  const Flavor& flavor = source.sample(rng);
  spec.vcpus = flavor.vcpus;
  spec.mem_mib = flavor.mem_mib;

  const double u = rng.uniform();
  if (u < config_.idle_share) {
    spec.usage = core::UsageClass::kIdle;
  } else if (u < config_.idle_share + config_.steady_share) {
    spec.usage = core::UsageClass::kSteady;
  } else if (u < config_.idle_share + config_.steady_share + config_.bursty_share) {
    spec.usage = core::UsageClass::kBursty;
  } else {
    spec.usage = core::UsageClass::kInteractive;
  }
  return spec;
}

Generator::Stream::Stream(const Generator& gen)
    : gen_(&gen), rng_(gen.config_.seed), spec_rng_(rng_.fork()) {}

bool Generator::Stream::next(core::VmInstance& out) {
  const GeneratorConfig& config = gen_->config_;
  // Little's law: arrival rate lambda = N / E[lifetime] keeps the
  // steady-state population at the target once the ramp-up completes. With
  // a diurnal amplitude the rate is modulated around that mean via Lewis &
  // Shedler thinning (candidates at the peak rate, accepted with
  // probability lambda(t)/lambda_max).
  const double lambda =
      static_cast<double>(config.target_population) / config.mean_lifetime;
  const double lambda_max = lambda * (1.0 + config.diurnal_amplitude);
  constexpr double kDay = 24.0 * 3600.0;
  while (true) {
    t_ += rng_.exponential(1.0 / lambda_max);
    if (t_ >= config.horizon) {
      return false;
    }
    if (config.diurnal_amplitude > 0.0) {
      const double rate_now =
          lambda * (1.0 + config.diurnal_amplitude *
                              std::sin(2.0 * std::numbers::pi * t_ / kDay));
      if (rng_.uniform() >= rate_now / lambda_max) {
        continue;  // thinned-out candidate
      }
    }
    out.id = core::VmId{next_id_++};
    out.spec = gen_->sample_spec(spec_rng_);
    out.arrival = t_;
    // Lifetimes are clipped to the horizon: the paper's experiment measures
    // the week window, so VMs alive at the end simply depart at the horizon.
    // (The +1.0 bump near the edge means the latest departure can slightly
    // exceed config.horizon — the true horizon is data-dependent, which is
    // why GeneratorSource advertises no horizon hint.)
    out.departure =
        std::min(t_ + rng_.exponential(config.mean_lifetime), config.horizon);
    if (out.departure <= out.arrival) {
      out.departure = out.arrival + 1.0;
    }
    return true;
  }
}

Trace Generator::generate() const {
  Stream stream(*this);
  std::vector<core::VmInstance> vms;
  core::VmInstance vm;
  while (stream.next(vm)) {
    vms.push_back(vm);
  }
  return Trace(std::move(vms));
}

}  // namespace slackvm::workload
