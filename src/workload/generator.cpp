#include "workload/generator.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace slackvm::workload {

Generator::Generator(const Catalog& catalog, LevelMix mix, GeneratorConfig config)
    : catalog_(catalog),
      oversub_catalog_(catalog.truncated(kOversubMemCap)),
      mix_(std::move(mix)),
      config_(config) {
  SLACKVM_ASSERT(mix_.valid());
  SLACKVM_ASSERT(config_.target_population > 0);
  SLACKVM_ASSERT(config_.horizon > 0 && config_.mean_lifetime > 0);
  SLACKVM_ASSERT(config_.idle_share + config_.steady_share + config_.bursty_share <= 1.0);
  SLACKVM_ASSERT(config_.diurnal_amplitude >= 0.0 && config_.diurnal_amplitude < 1.0);
}

core::VmSpec Generator::sample_spec(core::SplitMix64& rng) const {
  core::VmSpec spec;
  spec.level = mix_.sample(rng);
  // Oversubscribed offers are capped at 8 GB (§III-A); premium VMs draw from
  // the full catalog.
  const Catalog& source = spec.level.oversubscribed() ? oversub_catalog_ : catalog_;
  const Flavor& flavor = source.sample(rng);
  spec.vcpus = flavor.vcpus;
  spec.mem_mib = flavor.mem_mib;

  const double u = rng.uniform();
  if (u < config_.idle_share) {
    spec.usage = core::UsageClass::kIdle;
  } else if (u < config_.idle_share + config_.steady_share) {
    spec.usage = core::UsageClass::kSteady;
  } else if (u < config_.idle_share + config_.steady_share + config_.bursty_share) {
    spec.usage = core::UsageClass::kBursty;
  } else {
    spec.usage = core::UsageClass::kInteractive;
  }
  return spec;
}

Trace Generator::generate() const {
  core::SplitMix64 rng(config_.seed);
  core::SplitMix64 spec_rng = rng.fork();

  // Little's law: arrival rate lambda = N / E[lifetime] keeps the
  // steady-state population at the target once the ramp-up completes. With
  // a diurnal amplitude the rate is modulated around that mean via Lewis &
  // Shedler thinning (candidates at the peak rate, accepted with
  // probability lambda(t)/lambda_max).
  const double lambda =
      static_cast<double>(config_.target_population) / config_.mean_lifetime;
  const double lambda_max = lambda * (1.0 + config_.diurnal_amplitude);

  std::vector<core::VmInstance> vms;
  std::uint64_t next_id = 1;
  core::SimTime t = 0;
  constexpr double kDay = 24.0 * 3600.0;
  while (true) {
    t += rng.exponential(1.0 / lambda_max);
    if (t >= config_.horizon) {
      break;
    }
    if (config_.diurnal_amplitude > 0.0) {
      const double rate_now =
          lambda * (1.0 + config_.diurnal_amplitude *
                              std::sin(2.0 * std::numbers::pi * t / kDay));
      if (rng.uniform() >= rate_now / lambda_max) {
        continue;  // thinned-out candidate
      }
    }
    core::VmInstance vm;
    vm.id = core::VmId{next_id++};
    vm.spec = sample_spec(spec_rng);
    vm.arrival = t;
    // Lifetimes are clipped to the horizon: the paper's experiment measures
    // the week window, so VMs alive at the end simply depart at the horizon.
    vm.departure = std::min(t + rng.exponential(config_.mean_lifetime), config_.horizon);
    if (vm.departure <= vm.arrival) {
      vm.departure = vm.arrival + 1.0;
    }
    vms.push_back(vm);
  }
  return Trace(std::move(vms));
}

}  // namespace slackvm::workload
