#include "workload/analysis.hpp"

#include <algorithm>
#include <map>

namespace slackvm::workload {

namespace {

/// First instant at which the concurrent population peaks. Departures at a
/// timestamp free their slot before arrivals at the same timestamp are
/// counted (consistent with Trace::peak_population).
core::SimTime find_peak_time(const Trace& trace, std::size_t peak) {
  std::map<core::SimTime, long> delta;
  for (const core::VmInstance& vm : trace.vms()) {
    delta[vm.arrival] += 1;
    delta[vm.departure] -= 1;
  }
  long current = 0;
  for (const auto& [time, d] : delta) {
    current += d;
    if (current == static_cast<long>(peak)) {
      return time;
    }
  }
  return 0;
}

}  // namespace

TraceStats analyze(const Trace& trace) {
  TraceStats stats;
  stats.vm_count = trace.size();
  if (trace.empty()) {
    return stats;
  }
  double vcpus = 0.0;
  double mem = 0.0;
  double lifetime = 0.0;
  std::array<std::size_t, 4> level_counts{};
  for (const core::VmInstance& vm : trace.vms()) {
    vcpus += vm.spec.vcpus;
    mem += core::mib_to_gib(vm.spec.mem_mib);
    lifetime += vm.lifetime();
    if (vm.spec.level.ratio() < level_counts.size()) {
      ++level_counts[vm.spec.level.ratio()];
    }
  }
  const double n = static_cast<double>(trace.size());
  stats.avg_vcpus = vcpus / n;
  stats.avg_mem_gib = mem / n;
  stats.avg_lifetime_hours = lifetime / n / 3600.0;
  for (std::size_t ratio = 1; ratio < level_counts.size(); ++ratio) {
    stats.level_share[ratio] = static_cast<double>(level_counts[ratio]) / n;
  }

  stats.peak_population = trace.peak_population();
  stats.peak_time = find_peak_time(trace, stats.peak_population);
  for (const core::VmSpec& spec : peak_snapshot(trace)) {
    stats.peak_frac_cores += static_cast<double>(spec.vcpus) / spec.level.ratio();
    stats.peak_mem_mib += spec.mem_mib;
  }
  return stats;
}

std::vector<core::VmSpec> peak_snapshot(const Trace& trace) {
  if (trace.empty()) {
    return {};
  }
  const std::size_t peak = trace.peak_population();
  const core::SimTime t = find_peak_time(trace, peak);
  std::vector<core::VmSpec> alive;
  for (const core::VmInstance& vm : trace.vms()) {
    // Alive at t: arrived at or before t, departs strictly after t.
    if (vm.arrival <= t && vm.departure > t) {
      alive.push_back(vm.spec);
    }
  }
  return alive;
}

}  // namespace slackvm::workload
