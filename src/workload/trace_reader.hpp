// Streaming trace frontend: zero-copy CSV ingestion of multi-GB traces.
//
// Trace::read_csv materializes the whole file through istream/getline and
// per-field std::string temporaries — fine for tests, hopeless for real
// datacenter traces (the paper's SAP Cloud Infrastructure month is tens of
// millions of rows). TraceReader is the production path:
//
//  * input is either mmap'ed (MADV_SEQUENTIAL, with the processed prefix
//    periodically dropped via MADV_DONTNEED) or read in fixed-size chunks
//    with a partial-line carry, so resident memory stays O(chunk), not
//    O(file);
//  * rows are tokenized as std::string_view slices of the input buffer —
//    no per-row or per-field allocation;
//  * integers use a hand-rolled overflow-checked u64 parser and times use
//    an exact-fast-path double parser (mantissa < 2^53 and |exp10| <= 22
//    resolve with a single rounding; everything else falls back to
//    std::from_chars) — both produce bit-identical values to the
//    stoull/stod calls in read_csv, which stays in the tree verbatim as
//    the differential reference;
//  * iteration is pull-based with one row of lookahead (peek/advance), the
//    shape sim::EventSource needs, so a replay never holds more than the
//    active window of the trace in memory.
//
// Two on-disk formats are supported (auto-detected from the header line):
//
//   native  id,vcpus,mem_mib,level,usage,arrival,departure
//           — the Trace::write_csv round-trip format;
//   real    id,vcpus,mem_mib,arrival,departure
//           — real-provider style (SAP/Azure traces carry sizes and
//             lifetimes but no oversubscription contract): the level is
//             inferred from the requested memory-per-vCPU ratio via
//             core::classify_level and the usage class defaults to
//             kSteady.
//
// Validation matches read_csv exactly (same rejections, same semantics);
// error messages additionally carry the byte offset of the offending row so
// a multi-GB file can be inspected with dd/tail instead of counting lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/units.hpp"
#include "core/vm.hpp"

namespace slackvm::workload {

class Trace;

/// On-disk trace flavour; see the file comment.
enum class TraceFormat : std::uint8_t {
  kAuto,    ///< resolve from the header line (constructor-time detection)
  kNative,  ///< 7-column Trace::write_csv format
  kReal,    ///< 5-column real-provider format (level classified, usage steady)
};

struct TraceReaderOptions {
  /// Expected format; kAuto matches the header against both known layouts.
  TraceFormat format = TraceFormat::kAuto;
  /// Chunked-read buffer size (also the resident-memory bound in that mode).
  /// Lines longer than the buffer grow it transparently.
  std::size_t chunk_bytes = std::size_t{1} << 20;
  /// Map the file instead of chunked reads. Faster on warm page cache; the
  /// reader still drops the processed prefix so the resident set stays
  /// bounded on cold multi-GB files.
  bool use_mmap = false;
};

/// Pull-based streaming reader for trace CSVs. Not copyable; movable.
class TraceReader {
 public:
  /// Open `path`. The header line is consumed (and the format resolved)
  /// lazily on the first row access, so constructing is cheap.
  explicit TraceReader(const std::string& path, TraceReaderOptions options = {});

  /// Parse from an in-memory buffer (tests, synthetic round-trips).
  [[nodiscard]] static TraceReader from_string(std::string text,
                                               TraceReaderOptions options = {});

  TraceReader(TraceReader&&) noexcept;
  TraceReader& operator=(TraceReader&&) noexcept;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  /// Copy the next row into `out`; false once the input is exhausted.
  /// Throws SlackError (line, column, byte offset, raw row) on malformed
  /// input, exactly where Trace::read_csv would.
  bool next(core::VmInstance& out);

  /// One-row lookahead: the next row without consuming it, or nullptr at
  /// end of input. The pointer stays valid until the next advance()/next().
  [[nodiscard]] const core::VmInstance* peek();

  /// Consume the row returned by the last peek(). peek() must have
  /// returned non-null since the last consumption.
  void advance();

  /// Resolved format. Forces header detection if no row was read yet.
  [[nodiscard]] TraceFormat format();

  /// Rows successfully parsed so far.
  [[nodiscard]] std::size_t rows_read() const noexcept;

  /// Byte offset just past the last parsed row (diagnostics / progress).
  [[nodiscard]] std::uint64_t bytes_consumed() const noexcept;

  /// Cheap O(chunk)-memory pre-pass over a whole file: row count and
  /// horizon (latest departure). replay_sharded and the fault/rebalance
  /// machinery need the horizon before the first event fires; scan()
  /// provides it without materializing the trace.
  struct ScanInfo {
    std::size_t rows = 0;
    core::SimTime horizon = 0;  ///< 0 for an empty trace
  };
  [[nodiscard]] static ScanInfo scan(const std::string& path,
                                     TraceReaderOptions options = {});

  /// Drain the remaining rows into a materialized Trace (convenience for
  /// tools and tests; defeats the O(window) property by construction).
  [[nodiscard]] Trace read_all();

 private:
  struct Impl;
  explicit TraceReader(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Fast CSV serializer: std::to_chars into a chunked buffer instead of
/// ostream operator<< per field. Times are written in shortest
/// round-trip form, so (unlike write_csv's default 6-significant-digit
/// precision) reading the output back reproduces every timestamp
/// bit-exactly. `format` selects the native 7-column or real 5-column
/// layout (kAuto is invalid here). Shared by tools/trace_synth and
/// bench/micro_trace.
void write_csv_fast(const Trace& trace, std::ostream& os,
                    TraceFormat format = TraceFormat::kNative);

}  // namespace slackvm::workload
