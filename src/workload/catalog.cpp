#include "workload/catalog.hpp"

#include <span>

#include "core/error.hpp"

namespace slackvm::workload {

Catalog::Catalog(std::string provider, std::vector<Flavor> flavors,
                 std::vector<double> weights)
    : provider_(std::move(provider)),
      flavors_(std::move(flavors)),
      weights_(std::move(weights)),
      sampler_(std::span<const double>(weights_)) {
  SLACKVM_ASSERT(!flavors_.empty());
  SLACKVM_ASSERT(flavors_.size() == weights_.size());
  for (const Flavor& f : flavors_) {
    SLACKVM_ASSERT(f.vcpus > 0 && f.mem_mib > 0);
  }
}

const Flavor& Catalog::sample(core::SplitMix64& rng) const {
  return flavors_[sampler_.sample(rng)];
}

CatalogStats Catalog::stats() const {
  double total_w = 0.0;
  double vcpus = 0.0;
  double mem = 0.0;
  for (std::size_t i = 0; i < flavors_.size(); ++i) {
    total_w += weights_[i];
    vcpus += weights_[i] * static_cast<double>(flavors_[i].vcpus);
    mem += weights_[i] * core::mib_to_gib(flavors_[i].mem_mib);
  }
  return CatalogStats{vcpus / total_w, mem / total_w};
}

Catalog Catalog::truncated(core::MemMib max_mem) const {
  std::vector<Flavor> flavors;
  std::vector<double> weights;
  for (std::size_t i = 0; i < flavors_.size(); ++i) {
    if (flavors_[i].mem_mib <= max_mem) {
      flavors.push_back(flavors_[i]);
      weights.push_back(weights_[i]);
    }
  }
  if (flavors.empty()) {
    SLACKVM_THROW("Catalog::truncated: no flavor fits the cap");
  }
  return Catalog(provider_, std::move(flavors), std::move(weights));
}

double Catalog::expected_mc_ratio(core::OversubLevel level) const {
  // Table II methodology (§III-A): non-oversubscribed VMs come from the full
  // catalog; oversubscribed offers are capped at 8 GB. At n:1 each vCPU
  // consumes 1/n physical core, so the provisioned GiB-per-core ratio is
  // n * (avg mem / avg vCPUs) over the applicable catalog.
  const CatalogStats s =
      level.oversubscribed() ? truncated(kOversubMemCap).stats() : stats();
  return static_cast<double>(level.ratio()) * s.mem_per_vcpu();
}

namespace {

Catalog make_azure() {
  // Shares calibrated against Table I / Table II (see file header and
  // DESIGN.md §5 "Calibration, not curve-fitting").
  std::vector<Flavor> flavors{
      {"A1 (1c/1G)", 1, core::gib(1)},    {"B1 (1c/2G)", 1, core::gib(2)},
      {"B1m (1c/4G)", 1, core::gib(4)},   {"F2 (2c/2G)", 2, core::gib(2)},
      {"D2 (2c/4G)", 2, core::gib(4)},    {"E2 (2c/8G)", 2, core::gib(8)},
      {"D4 (4c/8G)", 4, core::gib(8)},    {"E4 (4c/16G)", 4, core::gib(16)},
      {"E8 (8c/32G)", 8, core::gib(32)},  {"E16 (16c/64G)", 16, core::gib(64)},
  };
  std::vector<double> weights{0.1459, 0.2048, 0.0249, 0.3911, 0.1062,
                              0.0096, 0.0727, 0.0092, 0.0048, 0.0309};
  return Catalog("azure", std::move(flavors), std::move(weights));
}

Catalog make_ovhcloud() {
  std::vector<Flavor> flavors{
      {"c2-2 (2c/2G)", 2, core::gib(2)},     {"s1-2 (1c/2G)", 1, core::gib(2)},
      {"b2-4 (2c/4G)", 2, core::gib(4)},     {"r2-8 (2c/8G)", 2, core::gib(8)},
      {"b2-8 (4c/8G)", 4, core::gib(8)},     {"r2-16 (4c/16G)", 4, core::gib(16)},
      {"b2-16 (8c/16G)", 8, core::gib(16)},  {"r2-32 (8c/32G)", 8, core::gib(32)},
      {"r2-64 (16c/64G)", 16, core::gib(64)},{"r2-128 (32c/128G)", 32, core::gib(128)},
  };
  std::vector<double> weights{0.3331, 0.1312, 0.1512, 0.1456, 0.0009,
                              0.1583, 0.0023, 0.0338, 0.0295, 0.0141};
  return Catalog("ovhcloud", std::move(flavors), std::move(weights));
}

}  // namespace

const Catalog& azure_catalog() {
  static const Catalog catalog = make_azure();
  return catalog;
}

const Catalog& ovhcloud_catalog() {
  static const Catalog catalog = make_ovhcloud();
  return catalog;
}

const Catalog& catalog_by_name(const std::string& name) {
  if (name == "azure") {
    return azure_catalog();
  }
  if (name == "ovhcloud") {
    return ovhcloud_catalog();
  }
  SLACKVM_THROW("unknown catalog: " + name);
}

}  // namespace slackvm::workload
