// Provider VM-size catalogs (CloudFactory substitute).
//
// The paper's workload generator (CloudFactory, IC2E'23) samples VM sizes
// from the published Azure and OVHcloud distributions. We embed synthetic
// power-of-two catalogs calibrated so that:
//   * the full-catalog averages match Table I
//       Azure: 2.25 vCPU / 4.8 GB per VM; OVHcloud: 3.24 vCPU / 10.05 GB;
//   * the <= 8 GB truncation (the paper's oversubscribed-offer catalog cut,
//     §III-A) reproduces Table II's M/C ratios:
//       Azure 2.1 / 3.0 / 4.5 and OVH 3.1 / 3.9 / 5.8 GB/core at 1:1/2:1/3:1.
// Calibration is asserted by tests/workload_catalog_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "core/vm.hpp"

namespace slackvm::workload {

/// One catalog entry (a VM size offer).
struct Flavor {
  std::string name;
  core::VcpuCount vcpus = 1;
  core::MemMib mem_mib = core::gib(1);
};

/// Average request sizes of a catalog (Table I row).
struct CatalogStats {
  double avg_vcpus = 0.0;
  double avg_mem_gib = 0.0;
  /// Requested memory per vCPU in GiB (the 1:1 M/C ratio).
  [[nodiscard]] double mem_per_vcpu() const { return avg_mem_gib / avg_vcpus; }
};

/// Weighted set of flavors with deterministic sampling.
class Catalog {
 public:
  Catalog(std::string provider, std::vector<Flavor> flavors, std::vector<double> weights);

  [[nodiscard]] const std::string& provider() const noexcept { return provider_; }
  [[nodiscard]] const std::vector<Flavor>& flavors() const noexcept { return flavors_; }
  [[nodiscard]] double weight(std::size_t i) const { return weights_.at(i); }

  [[nodiscard]] const Flavor& sample(core::SplitMix64& rng) const;

  [[nodiscard]] CatalogStats stats() const;

  /// Catalog restricted to flavors with mem <= max_mem (the oversubscribed
  /// offer cut; the paper uses 8 GB). Weights are renormalized implicitly.
  [[nodiscard]] Catalog truncated(core::MemMib max_mem) const;

  /// Expected M/C ratio (provisioned GiB per physical core) of VMs drawn
  /// from this catalog at oversubscription `level` — the Table II entries.
  [[nodiscard]] double expected_mc_ratio(core::OversubLevel level) const;

 private:
  std::string provider_;
  std::vector<Flavor> flavors_;
  std::vector<double> weights_;
  core::DiscreteSampler sampler_;
};

/// Memory cap of oversubscribed offers (paper §III-A: OVHcloud does not
/// offer oversubscribed VMs above 8 GB).
inline constexpr core::MemMib kOversubMemCap = core::gib(8);

/// Calibrated Azure catalog (Table I row 1).
[[nodiscard]] const Catalog& azure_catalog();

/// Calibrated OVHcloud catalog (Table I row 2).
[[nodiscard]] const Catalog& ovhcloud_catalog();

/// Lookup by name ("azure" | "ovhcloud"); throws on anything else.
[[nodiscard]] const Catalog& catalog_by_name(const std::string& name);

}  // namespace slackvm::workload
