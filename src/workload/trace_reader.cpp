#include "workload/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <limits>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/mc_ratio.hpp"
#include "core/oversub.hpp"
#include "workload/trace.hpp"

namespace slackvm::workload {

namespace {

constexpr std::string_view kNativeHeader =
    "id,vcpus,mem_mib,level,usage,arrival,departure";
constexpr std::string_view kRealHeader = "id,vcpus,mem_mib,arrival,departure";

constexpr std::size_t kNativeColumns = 7;
constexpr std::size_t kRealColumns = 5;

/// mmap mode: drop the processed prefix every this many bytes (page-aligned
/// below, so any multiple of the page size works).
constexpr std::size_t kDropStride = std::size_t{32} << 20;

/// 10^0 .. 10^22 are exactly representable in a double (5^22 < 2^53), the
/// largest powers usable for the single-rounding fast path below.
constexpr std::array<double, 23> kPow10 = {
    1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
    1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};

std::string preview(std::string_view line) {
  constexpr std::size_t kMax = 160;
  if (line.size() <= kMax) {
    return std::string(line);
  }
  return std::string(line.substr(0, kMax)) + "...";
}

/// Eight ASCII digits at once (SWAR): true iff all of chunk's bytes are
/// '0'..'9'. Little-endian load — the first character is the low byte.
bool all_digits8(std::uint64_t chunk) noexcept {
  return ((chunk & 0xF0F0F0F0F0F0F0F0ULL) |
          (((chunk + 0x0606060606060606ULL) & 0xF0F0F0F0F0F0F0F0ULL) >> 4)) ==
         0x3333333333333333ULL;
}

/// Fold eight little-endian ASCII digits into their decimal value (the
/// classic pairwise 10/100/10000 reduction). Callers must have checked
/// all_digits8 first.
std::uint32_t fold_digits8(std::uint64_t chunk) noexcept {
  chunk -= 0x3030303030303030ULL;
  chunk = (chunk * 10) + (chunk >> 8);  // adjacent pairs -> two-digit bytes
  chunk = (((chunk & 0x000000FF000000FFULL) * 0x000F424000000064ULL) +
           (((chunk >> 16) & 0x000000FF000000FFULL) * 0x0000271000000001ULL)) >>
          32;
  return static_cast<std::uint32_t>(chunk);
}

/// Consume as many digits as possible from [q, lend), eight at a time
/// while the 19-digit mantissa budget allows, then singly. Updates the
/// accumulated mantissa/digit count and flags budget overflow into `big`.
void eat_digits(const char*& q, const char* lend, std::uint64_t& mantissa,
                int& digits, bool& any, bool& big) noexcept {
  while (lend - q >= 8 && digits <= 11) {  // 11 + 8 = 19-digit budget
    std::uint64_t chunk = 0;
    std::memcpy(&chunk, q, 8);
    if (!all_digits8(chunk)) {
      break;
    }
    mantissa = mantissa * 100000000 + fold_digits8(chunk);
    digits += 8;
    any = true;
    q += 8;
  }
  while (q != lend && *q >= '0' && *q <= '9') {
    any = true;
    if (digits < 19) {
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(*q - '0');
      ++digits;
    } else {
      big = true;
    }
    ++q;
  }
}

bool parse_double_slow(std::string_view field, double& out) noexcept {
  double value = 0;
  const char* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), last, value);
  if (ptr != last || ec != std::errc{}) {
    return false;
  }
  out = value;
  return true;
}

}  // namespace

struct TraceReader::Impl {
  TraceReaderOptions options;
  std::string source;  ///< path, or "<memory>" for from_string

  // Contiguous backing: mmap'ed file or owned string. The cursor walks
  // [data, data + size) at `pos`.
  std::string owned;
  char* map_base = nullptr;
  std::size_t map_len = 0;
  std::size_t map_dropped = 0;  ///< prefix already MADV_DONTNEEDed
  int fd = -1;
  bool contiguous = false;
  const char* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;

  // Chunked-stream backing: [begin, end) of `buf` holds unconsumed bytes;
  // a line split across chunks is compacted to the front and the buffer
  // refilled behind it (the partial-line carry).
  std::vector<char> buf;
  std::size_t begin = 0;
  std::size_t end = 0;
  bool stream_eof = false;
  std::uint64_t base_offset = 0;  ///< file offset of buf[0]

  // Parse state.
  bool header_done = false;
  TraceFormat fmt = TraceFormat::kAuto;
  std::size_t line_no = 0;
  std::size_t rows = 0;
  std::uint64_t consumed = 0;
  core::SimTime last_arrival = 0;
  core::VmInstance lookahead{};
  bool have_lookahead = false;

  Impl() = default;
  Impl(const Impl&) = delete;
  Impl& operator=(const Impl&) = delete;

  ~Impl() {
    if (map_base != nullptr) {
      ::munmap(map_base, map_len);
    }
    if (fd >= 0) {
      ::close(fd);
    }
  }

  [[noreturn]] void fail(std::uint64_t offset, std::string_view column,
                         std::string_view line, const std::string& why) const {
    SLACKVM_THROW("TraceReader(" + source + "): line " + std::to_string(line_no) +
                  ", column '" + std::string(column) + "', byte " +
                  std::to_string(offset) + ": " + why + " (row: \"" +
                  preview(line) + "\")");
  }

  /// mmap mode: advise away clean pages of the already-parsed prefix so the
  /// resident set stays bounded on files larger than memory. Best-effort;
  /// MAP_PRIVATE read-only pages are refetched on (never-happening)
  /// re-access.
  void drop_processed_prefix() {
    if (map_base == nullptr || pos < map_dropped + kDropStride) {
      return;
    }
    const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t aligned = pos - (pos % page);
    if (aligned > map_dropped) {
      ::madvise(map_base + map_dropped, aligned - map_dropped, MADV_DONTNEED);
      map_dropped = aligned;
    }
  }

  /// Yield the next line (without its newline) and the byte offset of its
  /// first character; false at end of input. The view aliases the backing
  /// buffer and is invalidated by the next call.
  bool next_line(std::string_view& line, std::uint64_t& offset) {
    if (contiguous) {
      if (pos >= size) {
        return false;
      }
      const char* start = data + pos;
      const std::size_t remain = size - pos;
      const void* nl = std::memchr(start, '\n', remain);
      const std::size_t len =
          nl != nullptr ? static_cast<std::size_t>(static_cast<const char*>(nl) - start)
                        : remain;
      line = std::string_view(start, len);
      offset = pos;
      pos += len + (nl != nullptr ? 1 : 0);
      drop_processed_prefix();
      return true;
    }
    for (;;) {
      if (begin < end) {
        const char* start = buf.data() + begin;
        if (const void* nl = std::memchr(start, '\n', end - begin)) {
          const auto len =
              static_cast<std::size_t>(static_cast<const char*>(nl) - start);
          line = std::string_view(start, len);
          offset = base_offset + begin;
          begin += len + 1;
          return true;
        }
      }
      if (stream_eof) {
        if (begin >= end) {
          return false;
        }
        line = std::string_view(buf.data() + begin, end - begin);  // no final \n
        offset = base_offset + begin;
        begin = end;
        return true;
      }
      if (begin > 0) {
        std::memmove(buf.data(), buf.data() + begin, end - begin);
        base_offset += begin;
        end -= begin;
        begin = 0;
      }
      if (end == buf.size()) {
        buf.resize(buf.size() * 2);  // a single line longer than the buffer
      }
      const ssize_t got = ::read(fd, buf.data() + end, buf.size() - end);
      if (got < 0) {
        if (errno == EINTR) {
          continue;
        }
        SLACKVM_THROW("TraceReader(" + source +
                      "): read failed: " + std::strerror(errno));
      }
      if (got == 0) {
        stream_eof = true;
      } else {
        end += static_cast<std::size_t>(got);
      }
    }
  }

  void ensure_header() {
    if (header_done) {
      return;
    }
    std::string_view line;
    std::uint64_t offset = 0;
    if (!next_line(line, offset)) {
      SLACKVM_THROW("TraceReader(" + source + "): empty input");
    }
    line_no = 1;
    consumed = offset + line.size();
    std::string_view header = line;
    if (!header.empty() && header.back() == '\r') {
      header.remove_suffix(1);
    }
    if (options.format == TraceFormat::kAuto) {
      if (header == kNativeHeader) {
        fmt = TraceFormat::kNative;
      } else if (header == kRealHeader) {
        fmt = TraceFormat::kReal;
      } else {
        SLACKVM_THROW("TraceReader(" + source + "): unrecognized header \"" +
                      preview(header) + "\"; expected \"" +
                      std::string(kNativeHeader) + "\" (native) or \"" +
                      std::string(kRealHeader) + "\" (real)");
      }
    } else {
      // An explicit format skips the header unvalidated, like read_csv.
      fmt = options.format;
    }
    header_done = true;
  }

  /// Fused split + parse: one left-to-right cursor pass over the row, no
  /// per-field tokenization. Each field parser scans up to its terminating
  /// comma itself; error messages still name the column and quote the field.
  /// Doubles use Clinger's exact fast path — mantissa m < 2^53 from at most
  /// 19 digits and |exp10| <= 22 resolve as one correctly-rounded multiply/
  /// divide, bit-identical to the strtod/stod read_csv uses; everything
  /// else defers to std::from_chars (correctly rounded by specification).
  void parse_row(std::string_view line, std::uint64_t offset,
                 core::VmInstance& out) {
    const bool native = fmt == TraceFormat::kNative;
    const std::size_t want = native ? kNativeColumns : kRealColumns;
    const char* p = line.data();
    const char* const lend = p + line.size();
    bool more = true;  // a field starts at p

    // Cold path only: materialize the rest of the current field for an
    // error message.
    const auto rest_of_field = [&]() -> std::string {
      const void* comma = std::memchr(p, ',', static_cast<std::size_t>(lend - p));
      const char* stop = comma != nullptr ? static_cast<const char*>(comma) : lend;
      return std::string(p, stop);
    };
    const auto need_field = [&](const char* col) {
      if (!more) {
        fail(offset, col, line,
             "row has too few columns (expected " + std::to_string(want) + ")");
      }
    };
    // q points at the ',' terminating the field, or at line end.
    const auto advance_past = [&](const char* q) {
      more = q != lend;
      p = more ? q + 1 : q;
    };

    const auto u64_field = [&](const char* col) -> std::uint64_t {
      need_field(col);
      std::uint64_t value = 0;
      const char* q = p;
      while (q != lend && *q >= '0' && *q <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(*q - '0');
        ++q;
      }
      if (q == p || (q != lend && *q != ',')) {
        fail(offset, col, line,
             "expected a non-negative integer, got '" + rest_of_field() + "'");
      }
      if (q - p >= 20) {
        // Only a 20+-digit field can wrap the unchecked accumulation above;
        // redo it digit-by-digit with the overflow guard (leading zeros can
        // still make such a field valid).
        value = 0;
        for (const char* r = p; r != q; ++r) {
          const auto digit = static_cast<std::uint64_t>(*r - '0');
          if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
            fail(offset, col, line,
                 "integer out of range: '" + rest_of_field() + "'");
          }
          value = value * 10 + digit;
        }
      }
      advance_past(q);
      return value;
    };
    const auto time_field = [&](const char* col) -> core::SimTime {
      need_field(col);
      const char* q = p;
      std::uint64_t mantissa = 0;
      int digits = 0;
      int exp10 = 0;
      bool any = false;
      bool big = false;  // mantissa would exceed 19 digits: fall back
      eat_digits(q, lend, mantissa, digits, any, big);
      if (q != lend && *q == '.') {
        ++q;
        const int whole_digits = digits;
        eat_digits(q, lend, mantissa, digits, any, big);
        exp10 -= digits - whole_digits;  // fraction digits shift the point
      }
      bool malformed = !any;
      if (!malformed && q != lend && (*q == 'e' || *q == 'E')) {
        ++q;
        bool neg = false;
        if (q != lend && (*q == '+' || *q == '-')) {
          neg = *q == '-';
          ++q;
        }
        if (q == lend || *q < '0' || *q > '9') {
          malformed = true;
        }
        int e = 0;
        while (q != lend && *q >= '0' && *q <= '9') {
          if (e < 10000) {
            e = e * 10 + (*q - '0');
          }
          ++q;
        }
        exp10 += neg ? -e : e;
      }
      if (malformed || (q != lend && *q != ',')) {
        fail(offset, col, line,
             "expected a number, got '" + rest_of_field() + "'");
      }
      double value = 0;
      if (!big && mantissa < (std::uint64_t{1} << 53) && exp10 >= -22 &&
          exp10 <= 22) {
        const auto m = static_cast<double>(mantissa);
        value = exp10 >= 0 ? m * kPow10[static_cast<std::size_t>(exp10)]
                           : m / kPow10[static_cast<std::size_t>(-exp10)];
      } else if (!parse_double_slow(
                     std::string_view(p, static_cast<std::size_t>(q - p)),
                     value)) {
        fail(offset, col, line,
             "expected a number, got '" + rest_of_field() + "'");
      }
      if (!(value >= 0) || !(value <= 1e300)) {  // also rejects NaN/inf
        fail(offset, col, line,
             "time must be finite and >= 0, got '" + rest_of_field() + "'");
      }
      advance_past(q);
      return value;
    };

    out.id.value = u64_field("id");
    out.spec.vcpus = static_cast<core::VcpuCount>(u64_field("vcpus"));
    if (out.spec.vcpus == 0) {
      fail(offset, "vcpus", line, "vcpus must be >= 1");
    }
    out.spec.mem_mib = static_cast<core::MemMib>(u64_field("mem_mib"));
    if (native) {
      const std::uint64_t ratio = u64_field("level");
      if (ratio < 1 || ratio > core::OversubLevel::kMaxRatio) {
        fail(offset, "level", line,
             "oversubscription ratio must be in [1, " +
                 std::to_string(core::OversubLevel::kMaxRatio) + "], got '" +
                 std::to_string(ratio) + "'");
      }
      out.spec.level = core::OversubLevel{static_cast<std::uint8_t>(ratio)};
      need_field("usage");
      // Match the four known usage words in place (prefix + terminator),
      // skipping the find-the-comma scan on the hot path.
      const auto usage_is = [&](std::string_view word) {
        if (static_cast<std::size_t>(lend - p) < word.size() ||
            std::memcmp(p, word.data(), word.size()) != 0) {
          return false;
        }
        const char* q = p + word.size();
        if (q != lend && *q != ',') {
          return false;
        }
        advance_past(q);
        return true;
      };
      if (usage_is("steady")) {
        out.spec.usage = core::UsageClass::kSteady;
      } else if (usage_is("idle")) {
        out.spec.usage = core::UsageClass::kIdle;
      } else if (usage_is("bursty")) {
        out.spec.usage = core::UsageClass::kBursty;
      } else if (usage_is("interactive")) {
        out.spec.usage = core::UsageClass::kInteractive;
      } else {
        fail(offset, "usage", line, "unknown usage class: " + rest_of_field());
      }
    } else {
      // Real traces carry no oversubscription contract: classify from the
      // requested memory-per-vCPU ratio (see core::classify_level).
      out.spec.level = core::classify_level(core::mib_to_gib(out.spec.mem_mib) /
                                            static_cast<double>(out.spec.vcpus));
      out.spec.usage = core::UsageClass::kSteady;
    }
    out.arrival = time_field("arrival");
    out.departure = time_field("departure");
    if (more) {
      fail(offset, "trailing", line,
           "row has too many columns (expected " + std::to_string(want) + ")");
    }
    if (!(out.departure > out.arrival)) {
      fail(offset, "departure", line, "departure must be strictly after arrival");
    }
    if (out.arrival < last_arrival) {
      fail(offset, "arrival", line,
           "rows must be sorted by arrival (write_csv emits them sorted); this "
           "row arrives before the previous one");
    }
    last_arrival = out.arrival;
  }

  bool read_row(core::VmInstance& out) {
    ensure_header();
    std::string_view line;
    std::uint64_t offset = 0;
    while (next_line(line, offset)) {
      ++line_no;
      consumed = offset + line.size();
      if (line.empty()) {
        continue;
      }
      parse_row(line, offset, out);
      ++rows;
      return true;
    }
    return false;
  }
};

TraceReader::TraceReader(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

TraceReader::TraceReader(const std::string& path, TraceReaderOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  impl_->source = path;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);  // NOLINT
  if (fd < 0) {
    SLACKVM_THROW("TraceReader: cannot open '" + path +
                  "': " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    SLACKVM_THROW("TraceReader: cannot stat '" + path +
                  "': " + std::strerror(err));
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (options.use_mmap && file_size > 0) {
    void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::madvise(map, file_size, MADV_SEQUENTIAL);
      impl_->fd = fd;
      impl_->map_base = static_cast<char*>(map);
      impl_->map_len = file_size;
      impl_->contiguous = true;
      impl_->data = impl_->map_base;
      impl_->size = file_size;
      return;
    }
    // mmap can fail on exotic filesystems; chunked reads always work.
  }
  impl_->fd = fd;
  impl_->buf.resize(std::max<std::size_t>(options.chunk_bytes, 4096));
}

TraceReader TraceReader::from_string(std::string text, TraceReaderOptions options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->source = "<memory>";
  impl->owned = std::move(text);
  impl->contiguous = true;
  impl->data = impl->owned.data();
  impl->size = impl->owned.size();
  return TraceReader(std::move(impl));
}

TraceReader::TraceReader(TraceReader&&) noexcept = default;
TraceReader& TraceReader::operator=(TraceReader&&) noexcept = default;
TraceReader::~TraceReader() = default;

bool TraceReader::next(core::VmInstance& out) {
  if (impl_->have_lookahead) {
    out = impl_->lookahead;
    impl_->have_lookahead = false;
    return true;
  }
  return impl_->read_row(out);
}

const core::VmInstance* TraceReader::peek() {
  if (!impl_->have_lookahead) {
    if (!impl_->read_row(impl_->lookahead)) {
      return nullptr;
    }
    impl_->have_lookahead = true;
  }
  return &impl_->lookahead;
}

void TraceReader::advance() {
  SLACKVM_ASSERT(impl_->have_lookahead);
  impl_->have_lookahead = false;
}

TraceFormat TraceReader::format() {
  impl_->ensure_header();
  return impl_->fmt;
}

std::size_t TraceReader::rows_read() const noexcept { return impl_->rows; }

std::uint64_t TraceReader::bytes_consumed() const noexcept {
  return impl_->consumed;
}

TraceReader::ScanInfo TraceReader::scan(const std::string& path,
                                        TraceReaderOptions options) {
  TraceReader reader(path, options);
  ScanInfo info;
  core::VmInstance vm;
  while (reader.next(vm)) {
    ++info.rows;
    info.horizon = std::max(info.horizon, vm.departure);
  }
  return info;
}

Trace TraceReader::read_all() {
  std::vector<core::VmInstance> vms;
  // Same sizing heuristic as Trace::read_csv (~45 bytes/row) to avoid
  // growth reallocations; the input size is known for every backing.
  std::uint64_t input_bytes = 0;
  if (impl_->contiguous) {
    input_bytes = impl_->size;
  } else if (impl_->fd >= 0) {
    struct stat st = {};
    if (::fstat(impl_->fd, &st) == 0 && st.st_size > 0) {
      input_bytes = static_cast<std::uint64_t>(st.st_size);
    }
  }
  if (input_bytes > 0) {
    vms.reserve(static_cast<std::size_t>(input_bytes / 45) + 1);
  }
  core::VmInstance vm;
  while (next(vm)) {
    vms.push_back(vm);
  }
  return Trace(std::move(vms));
}

void write_csv_fast(const Trace& trace, std::ostream& os, TraceFormat format) {
  SLACKVM_ASSERT(format != TraceFormat::kAuto);
  const bool native = format == TraceFormat::kNative;
  constexpr std::size_t kFlush = std::size_t{1} << 20;
  std::string out;
  out.reserve(kFlush + 256);
  const auto put_u64 = [&out](std::uint64_t v) {
    std::array<char, 20> tmp{};
    const auto res = std::to_chars(tmp.data(), tmp.data() + tmp.size(), v);
    out.append(tmp.data(), res.ptr);
  };
  const auto put_time = [&out](double v) {
    std::array<char, 32> tmp{};
    // Shortest round-trip form: reading the file back reproduces the exact
    // double, unlike write_csv's default 6-significant-digit truncation.
    const auto res = std::to_chars(tmp.data(), tmp.data() + tmp.size(), v);
    out.append(tmp.data(), res.ptr);
  };
  out += native ? kNativeHeader : kRealHeader;
  out.push_back('\n');
  for (const core::VmInstance& vm : trace.vms()) {
    put_u64(vm.id.value);
    out.push_back(',');
    put_u64(vm.spec.vcpus);
    out.push_back(',');
    put_u64(static_cast<std::uint64_t>(vm.spec.mem_mib));
    out.push_back(',');
    if (native) {
      put_u64(vm.spec.level.ratio());
      out.push_back(',');
      out += core::to_string(vm.spec.usage);
      out.push_back(',');
    }
    put_time(vm.arrival);
    out.push_back(',');
    put_time(vm.departure);
    out.push_back('\n');
    if (out.size() >= kFlush) {
      os.write(out.data(), static_cast<std::streamsize>(out.size()));
      out.clear();
    }
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

}  // namespace slackvm::workload
