// CloudFactory-like workload generator (paper §VII).
//
// Generates a one-week IAAS trace as an M/G/inf-style birth-death process:
// Poisson arrivals with rate chosen so the steady-state population matches
// `target_population`, exponential lifetimes, VM sizes sampled from the
// provider catalog (full catalog at 1:1, <= 8 GB truncation for
// oversubscribed offers), level sampled from a LevelMix, and usage classes
// matching the paper's physical-experiment mix (10% idle / 60% CPU-bound /
// 30% interactive).
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/level_mix.hpp"
#include "workload/trace.hpp"

namespace slackvm::workload {

/// Generator parameters; defaults mirror §VII-B1.
struct GeneratorConfig {
  std::size_t target_population = 500;       ///< steady-state concurrent VMs
  core::SimTime horizon = 7.0 * 24 * 3600;   ///< one week in seconds
  core::SimTime mean_lifetime = 2.0 * 24 * 3600;  ///< mean VM lifetime
  double idle_share = 0.10;                  ///< §VII-A1 usage mix
  double steady_share = 0.60;
  double bursty_share = 0.0;
  // remaining share -> interactive
  /// Diurnal arrival modulation in [0, 1): the instantaneous arrival rate
  /// is lambda * (1 + amplitude * sin(2*pi*t/day)). 0 = homogeneous
  /// Poisson (the default protocol).
  double diurnal_amplitude = 0.0;
  std::uint64_t seed = 42;
};

class Generator {
 public:
  Generator(const Catalog& catalog, LevelMix mix, GeneratorConfig config = {});

  /// Resumable row-at-a-time view of the generated trace. Arrivals are
  /// emitted in nondecreasing order (the Poisson clock only moves forward),
  /// so the stream satisfies the sorted-arrival contract of
  /// sim::EventSource without any buffering. generate() is implemented on
  /// top of this, so the stream and the materialized trace contain
  /// identical rows by construction. The Generator (and its catalog) must
  /// outlive the stream.
  class Stream {
   public:
    explicit Stream(const Generator& gen);

    /// Produce the next VM; false once the arrival clock passes the horizon.
    bool next(core::VmInstance& out);

   private:
    const Generator* gen_;
    core::SplitMix64 rng_;
    core::SplitMix64 spec_rng_;
    std::uint64_t next_id_ = 1;
    core::SimTime t_ = 0;
  };

  /// Start a fresh stream from the configured seed.
  [[nodiscard]] Stream stream() const { return Stream(*this); }

  /// Generate the full trace. Deterministic for a given (catalog, mix, seed).
  [[nodiscard]] Trace generate() const;

  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LevelMix& mix() const noexcept { return mix_; }

 private:
  [[nodiscard]] core::VmSpec sample_spec(core::SplitMix64& rng) const;

  const Catalog& catalog_;
  Catalog oversub_catalog_;  ///< catalog truncated at kOversubMemCap
  LevelMix mix_;
  GeneratorConfig config_;
};

}  // namespace slackvm::workload
