// VM lifecycle traces: the "workload" fed to both evaluation platforms.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/vm.hpp"

namespace slackvm::workload {

/// A workload trace: VM instances with arrival/departure times, sorted by
/// arrival. Events are derived on demand by the simulator.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<core::VmInstance> vms);

  [[nodiscard]] const std::vector<core::VmInstance>& vms() const noexcept { return vms_; }
  [[nodiscard]] std::size_t size() const noexcept { return vms_.size(); }
  [[nodiscard]] bool empty() const noexcept { return vms_.empty(); }

  /// Horizon: the latest departure time (0 for an empty trace).
  [[nodiscard]] core::SimTime horizon() const;

  /// Peak number of concurrently alive VMs.
  [[nodiscard]] std::size_t peak_population() const;

  /// Restrict to VMs at one oversubscription level (dedicated-cluster
  /// baseline input).
  [[nodiscard]] Trace filter_level(core::OversubLevel level) const;

  /// CSV round-trip: header "id,vcpus,mem_mib,level,usage,arrival,departure".
  void write_csv(std::ostream& os) const;

  /// Strict parser for the write_csv format. Malformed input throws a
  /// SlackError naming the 1-based line, the offending column, and the raw
  /// row: rows with too few or too many columns, non-numeric or
  /// partially-numeric fields, out-of-range levels, non-finite or negative
  /// times, departures not after arrivals, and rows out of arrival order
  /// (files must be sorted, as write_csv emits them) are all rejected
  /// rather than silently skewing an experiment.
  [[nodiscard]] static Trace read_csv(std::istream& is);

 private:
  std::vector<core::VmInstance> vms_;
};

}  // namespace slackvm::workload
