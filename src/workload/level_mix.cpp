#include "workload/level_mix.hpp"

#include <cmath>

#include "core/error.hpp"

namespace slackvm::workload {

double LevelMix::share(core::OversubLevel level) const {
  switch (level.ratio()) {
    case 1:
      return share_1to1;
    case 2:
      return share_2to1;
    case 3:
      return share_3to1;
    default:
      return 0.0;
  }
}

core::OversubLevel LevelMix::sample(core::SplitMix64& rng) const {
  const double u = rng.uniform();
  if (u < share_1to1) {
    return core::OversubLevel{1};
  }
  if (u < share_1to1 + share_2to1) {
    return core::OversubLevel{2};
  }
  return core::OversubLevel{3};
}

bool LevelMix::valid() const {
  if (share_1to1 < 0 || share_2to1 < 0 || share_3to1 < 0) {
    return false;
  }
  return std::abs(share_1to1 + share_2to1 + share_3to1 - 1.0) < 1e-9;
}

LevelMix make_mix(double pct_1to1, double pct_2to1, double pct_3to1, std::string name) {
  if (name.empty()) {
    name = std::to_string(static_cast<int>(pct_1to1)) + "/" +
           std::to_string(static_cast<int>(pct_2to1)) + "/" +
           std::to_string(static_cast<int>(pct_3to1));
  }
  LevelMix mix{std::move(name), pct_1to1 / 100.0, pct_2to1 / 100.0, pct_3to1 / 100.0};
  SLACKVM_ASSERT(mix.valid());
  return mix;
}

const std::vector<LevelMix>& paper_distributions() {
  static const std::vector<LevelMix> dists = [] {
    std::vector<LevelMix> out;
    char letter = 'A';
    // Least oversubscribed first: descending share of 1:1, then of 2:1.
    for (int s1 = 100; s1 >= 0; s1 -= 25) {
      for (int s2 = 100 - s1; s2 >= 0; s2 -= 25) {
        out.push_back(make_mix(s1, s2, 100 - s1 - s2, std::string(1, letter)));
        ++letter;
      }
    }
    SLACKVM_ASSERT(out.size() == 15);
    return out;
  }();
  return dists;
}

const LevelMix& distribution(char letter) {
  const auto& dists = paper_distributions();
  if (letter < 'A' || letter >= static_cast<char>('A' + dists.size())) {
    SLACKVM_THROW("distribution letter outside A..O");
  }
  return dists[static_cast<std::size_t>(letter - 'A')];
}

}  // namespace slackvm::workload
