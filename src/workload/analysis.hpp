// Trace analytics: aggregate statistics and peak snapshots of a workload,
// used by the offline-packing bench (optimality gaps need the peak-time VM
// set) and by operators inspecting generated traces.
#pragma once

#include <array>
#include <vector>

#include "core/resources.hpp"
#include "workload/trace.hpp"

namespace slackvm::workload {

/// Aggregate statistics of one trace.
struct TraceStats {
  std::size_t vm_count = 0;
  std::size_t peak_population = 0;
  core::SimTime peak_time = 0;  ///< first instant reaching the peak

  double avg_vcpus = 0.0;
  double avg_mem_gib = 0.0;
  double avg_lifetime_hours = 0.0;

  /// Share of VMs per level ratio (index = ratio; 0 unused).
  std::array<double, 4> level_share{};

  /// Aggregate demand of the peak-time population, with vCPUs translated to
  /// fractional physical cores per the VM's level.
  double peak_frac_cores = 0.0;
  core::MemMib peak_mem_mib = 0;

  /// Blended provisioned M/C ratio of the peak population (GiB per
  /// fractional core); comparing it to the PM target ratio predicts which
  /// resource strands first (§III-B).
  [[nodiscard]] double peak_mc_ratio() const {
    return peak_frac_cores > 0 ? core::mib_to_gib(peak_mem_mib) / peak_frac_cores : 0.0;
  }
};

/// Compute trace statistics in one pass.
[[nodiscard]] TraceStats analyze(const Trace& trace);

/// The VM specs alive at the trace's (first) peak-population instant — the
/// hardest static packing instance the trace contains.
[[nodiscard]] std::vector<core::VmSpec> peak_snapshot(const Trace& trace);

}  // namespace slackvm::workload
