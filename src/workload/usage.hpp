// Per-VM CPU usage signals.
//
// CloudFactory pairs every generated VM with a CPU usage pattern; the
// physical experiment translates those into application loads (§VII-A1).
// Here the same role is played by deterministic usage functions u(t) in
// [0, 1] per vCPU, consumed by the perf:: QoS model and by utilization
// reports.
#pragma once

#include "core/rng.hpp"
#include "core/units.hpp"
#include "core/vm.hpp"

namespace slackvm::workload {

/// Deterministic usage signal for one VM. Two VMs with the same class get
/// decorrelated signals through their per-VM phase/level parameters.
class UsageSignal {
 public:
  /// Derive a signal for `vm` of class `usage`; randomness comes from the
  /// VM id so signals are stable across runs.
  UsageSignal(core::VmId vm, core::UsageClass usage);

  /// CPU demand per vCPU in [0, 1] at absolute time t (seconds).
  [[nodiscard]] double at(core::SimTime t) const;

  [[nodiscard]] core::UsageClass usage_class() const noexcept { return usage_; }

  /// Long-run average demand of the signal.
  [[nodiscard]] double mean() const;

 private:
  core::UsageClass usage_;
  double base_ = 0.0;    ///< baseline demand
  double swing_ = 0.0;   ///< amplitude of the periodic component
  double period_ = 0.0;  ///< seconds
  double phase_ = 0.0;   ///< radians
};

}  // namespace slackvm::workload
