// Oversubscription-level distributions A..O (paper Fig. 3 / Fig. 4).
//
// The evaluation explores every mix of the three levels {1:1, 2:1, 3:1} in
// steps of 25%. Enumerating (s1, s2) over {0,25,50,75,100} with s1+s2 <= 100
// and s3 = 100-s1-s2, ordered from least to most oversubscribed, yields the
// paper's 15 distributions: A=100/0/0 ... F=50/0/50 ... O=0/0/100 (A, B, D,
// G, K carry no 3:1 VMs, matching the paper's remark about them).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/oversub.hpp"
#include "core/rng.hpp"

namespace slackvm::workload {

/// Shares of VMs per oversubscription level; they sum to 1.
struct LevelMix {
  std::string name;     ///< "A".."O" for grid members, free-form otherwise
  double share_1to1 = 0;
  double share_2to1 = 0;
  double share_3to1 = 0;

  [[nodiscard]] double share(core::OversubLevel level) const;

  /// Sample a level according to the shares.
  [[nodiscard]] core::OversubLevel sample(core::SplitMix64& rng) const;

  /// Validate shares (non-negative, sum to 1 within 1e-9).
  [[nodiscard]] bool valid() const;
};

/// Build a mix from percentages (0..100); name defaults to "p1/p2/p3".
[[nodiscard]] LevelMix make_mix(double pct_1to1, double pct_2to1, double pct_3to1,
                                std::string name = "");

/// The paper's 15 distributions A..O, in order.
[[nodiscard]] const std::vector<LevelMix>& paper_distributions();

/// Lookup by letter; throws when outside A..O.
[[nodiscard]] const LevelMix& distribution(char letter);

}  // namespace slackvm::workload
