#include "workload/trace.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace slackvm::workload {

namespace {

core::UsageClass usage_from_string(const std::string& s) {
  if (s == "idle") {
    return core::UsageClass::kIdle;
  }
  if (s == "steady") {
    return core::UsageClass::kSteady;
  }
  if (s == "bursty") {
    return core::UsageClass::kBursty;
  }
  if (s == "interactive") {
    return core::UsageClass::kInteractive;
  }
  SLACKVM_THROW("unknown usage class: " + s);
}

}  // namespace

Trace::Trace(std::vector<core::VmInstance> vms) : vms_(std::move(vms)) {
  for (const core::VmInstance& vm : vms_) {
    SLACKVM_ASSERT(vm.departure > vm.arrival);
  }
  std::ranges::sort(vms_, {}, [](const core::VmInstance& vm) { return vm.arrival; });
}

core::SimTime Trace::horizon() const {
  core::SimTime latest = 0;
  for (const core::VmInstance& vm : vms_) {
    latest = std::max(latest, vm.departure);
  }
  return latest;
}

std::size_t Trace::peak_population() const {
  // Sweep over +1/-1 deltas ordered by time; departures before arrivals at
  // equal timestamps (a slot freed at t is available at t).
  std::map<core::SimTime, long> delta;
  for (const core::VmInstance& vm : vms_) {
    delta[vm.arrival] += 1;
    delta[vm.departure] -= 1;
  }
  long current = 0;
  long peak = 0;
  for (const auto& [time, d] : delta) {
    current += d;
    peak = std::max(peak, current);
  }
  return static_cast<std::size_t>(peak);
}

Trace Trace::filter_level(core::OversubLevel level) const {
  std::vector<core::VmInstance> filtered;
  for (const core::VmInstance& vm : vms_) {
    if (vm.spec.level == level) {
      filtered.push_back(vm);
    }
  }
  return Trace(std::move(filtered));
}

void Trace::write_csv(std::ostream& os) const {
  os << "id,vcpus,mem_mib,level,usage,arrival,departure\n";
  for (const core::VmInstance& vm : vms_) {
    os << vm.id.value << ',' << vm.spec.vcpus << ',' << vm.spec.mem_mib << ','
       << static_cast<int>(vm.spec.level.ratio()) << ',' << core::to_string(vm.spec.usage)
       << ',' << vm.arrival << ',' << vm.departure << '\n';
  }
}

Trace Trace::read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    SLACKVM_THROW("Trace::read_csv: empty input");
  }
  std::vector<core::VmInstance> vms;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string field;
    core::VmInstance vm;
    auto next = [&]() -> std::string {
      if (!std::getline(fields, field, ',')) {
        SLACKVM_THROW("Trace::read_csv: truncated row: " + line);
      }
      return field;
    };
    vm.id.value = std::stoull(next());
    vm.spec.vcpus = static_cast<core::VcpuCount>(std::stoul(next()));
    vm.spec.mem_mib = std::stoll(next());
    vm.spec.level = core::OversubLevel{static_cast<std::uint8_t>(std::stoul(next()))};
    vm.spec.usage = usage_from_string(next());
    vm.arrival = std::stod(next());
    vm.departure = std::stod(next());
    vms.push_back(vm);
  }
  return Trace(std::move(vms));
}

}  // namespace slackvm::workload
