#include "workload/trace.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/error.hpp"

namespace slackvm::workload {

namespace {

core::UsageClass usage_from_string(const std::string& s) {
  if (s == "idle") {
    return core::UsageClass::kIdle;
  }
  if (s == "steady") {
    return core::UsageClass::kSteady;
  }
  if (s == "bursty") {
    return core::UsageClass::kBursty;
  }
  if (s == "interactive") {
    return core::UsageClass::kInteractive;
  }
  SLACKVM_THROW("unknown usage class: " + s);
}

/// Context-carrying parse failure: every malformed row reports its 1-based
/// line number, the offending column, and the raw text.
[[noreturn]] void row_fail(std::size_t line_no, const std::string& column,
                           const std::string& line, const std::string& why) {
  SLACKVM_THROW("Trace::read_csv: line " + std::to_string(line_no) + ", column '" +
                column + "': " + why + " (row: \"" + line + "\")");
}

/// Full-string unsigned parse — rejects partial matches ("12x"), empty
/// fields, signs, and whitespace that std::stoull would silently accept.
std::uint64_t parse_u64(std::size_t line_no, const std::string& column,
                        const std::string& line, const std::string& field) {
  if (field.empty() || field.find_first_not_of("0123456789") != std::string::npos) {
    row_fail(line_no, column, line, "expected a non-negative integer, got '" + field + "'");
  }
  try {
    return std::stoull(field);
  } catch (const std::out_of_range&) {
    row_fail(line_no, column, line, "integer out of range: '" + field + "'");
  }
}

/// Full-string finite-double parse with the same strictness.
double parse_time(std::size_t line_no, const std::string& column,
                  const std::string& line, const std::string& field) {
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    row_fail(line_no, column, line, "expected a number, got '" + field + "'");
  }
  if (consumed != field.size()) {
    row_fail(line_no, column, line, "trailing junk in number '" + field + "'");
  }
  if (!(value >= 0) || !(value <= 1e300)) {  // also rejects NaN/inf
    row_fail(line_no, column, line, "time must be finite and >= 0, got '" + field + "'");
  }
  return value;
}

}  // namespace

Trace::Trace(std::vector<core::VmInstance> vms) : vms_(std::move(vms)) {
  for (const core::VmInstance& vm : vms_) {
    SLACKVM_ASSERT(vm.departure > vm.arrival);
  }
  // Stable: VMs sharing an arrival timestamp (possible after a CSV
  // round-trip truncates precision) keep their input order, so a
  // materialized trace replays the exact event sequence the streaming
  // frontend (TraceReader) produces from the same file.
  std::ranges::stable_sort(vms_, {},
                           [](const core::VmInstance& vm) { return vm.arrival; });
}

core::SimTime Trace::horizon() const {
  core::SimTime latest = 0;
  for (const core::VmInstance& vm : vms_) {
    latest = std::max(latest, vm.departure);
  }
  return latest;
}

std::size_t Trace::peak_population() const {
  // Sweep over +1/-1 deltas ordered by time; departures before arrivals at
  // equal timestamps (a slot freed at t is available at t).
  std::map<core::SimTime, long> delta;
  for (const core::VmInstance& vm : vms_) {
    delta[vm.arrival] += 1;
    delta[vm.departure] -= 1;
  }
  long current = 0;
  long peak = 0;
  for (const auto& [time, d] : delta) {
    current += d;
    peak = std::max(peak, current);
  }
  return static_cast<std::size_t>(peak);
}

Trace Trace::filter_level(core::OversubLevel level) const {
  std::vector<core::VmInstance> filtered;
  for (const core::VmInstance& vm : vms_) {
    if (vm.spec.level == level) {
      filtered.push_back(vm);
    }
  }
  return Trace(std::move(filtered));
}

void Trace::write_csv(std::ostream& os) const {
  os << "id,vcpus,mem_mib,level,usage,arrival,departure\n";
  for (const core::VmInstance& vm : vms_) {
    os << vm.id.value << ',' << vm.spec.vcpus << ',' << vm.spec.mem_mib << ','
       << static_cast<int>(vm.spec.level.ratio()) << ',' << core::to_string(vm.spec.usage)
       << ',' << vm.arrival << ',' << vm.departure << '\n';
  }
}

Trace Trace::read_csv(std::istream& is) {
  // Stream-size heuristic: seekable inputs reveal their byte count, and a
  // row of the write_csv format averages ~45 bytes, so one reservation
  // replaces the geometric growth's O(log n) reallocations (and their
  // copies) with a single allocation. Non-seekable streams skip the hint.
  std::size_t reserve_hint = 0;
  if (const std::istream::pos_type at = is.tellg(); at != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios_base::end);
    if (const std::istream::pos_type end = is.tellg();
        end != std::istream::pos_type(-1) && end > at) {
      constexpr std::size_t kAvgRowBytes = 45;
      reserve_hint = static_cast<std::size_t>(end - at) / kAvgRowBytes;
    }
    is.seekg(at);
  }
  std::string line;
  if (!std::getline(is, line)) {
    SLACKVM_THROW("Trace::read_csv: empty input");
  }
  std::vector<core::VmInstance> vms;
  vms.reserve(reserve_hint);
  std::size_t line_no = 1;  // header was line 1
  core::SimTime last_arrival = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string field;
    core::VmInstance vm;
    auto next = [&](const char* column) -> std::string {
      if (!std::getline(fields, field, ',')) {
        row_fail(line_no, column, line, "row has too few columns (expected 7)");
      }
      return field;
    };
    vm.id.value = parse_u64(line_no, "id", line, next("id"));
    vm.spec.vcpus =
        static_cast<core::VcpuCount>(parse_u64(line_no, "vcpus", line, next("vcpus")));
    if (vm.spec.vcpus == 0) {
      row_fail(line_no, "vcpus", line, "vcpus must be >= 1");
    }
    vm.spec.mem_mib =
        static_cast<core::MemMib>(parse_u64(line_no, "mem_mib", line, next("mem_mib")));
    const std::uint64_t ratio = parse_u64(line_no, "level", line, next("level"));
    if (ratio < 1 || ratio > core::OversubLevel::kMaxRatio) {
      row_fail(line_no, "level", line,
               "oversubscription ratio must be in [1, " +
                   std::to_string(core::OversubLevel::kMaxRatio) + "], got '" + field +
                   "'");
    }
    vm.spec.level = core::OversubLevel{static_cast<std::uint8_t>(ratio)};
    vm.spec.usage = usage_from_string(next("usage"));
    vm.arrival = parse_time(line_no, "arrival", line, next("arrival"));
    vm.departure = parse_time(line_no, "departure", line, next("departure"));
    if (std::getline(fields, field, ',')) {
      row_fail(line_no, "trailing", line, "row has too many columns (expected 7)");
    }
    if (!(vm.departure > vm.arrival)) {
      row_fail(line_no, "departure", line,
               "departure must be strictly after arrival");
    }
    if (vm.arrival < last_arrival) {
      row_fail(line_no, "arrival", line,
               "rows must be sorted by arrival (write_csv emits them sorted); this "
               "row arrives before the previous one");
    }
    last_arrival = vm.arrival;
    vms.push_back(vm);
  }
  return Trace(std::move(vms));
}

}  // namespace slackvm::workload
