#include "workload/usage.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace slackvm::workload {

UsageSignal::UsageSignal(core::VmId vm, core::UsageClass usage) : usage_(usage) {
  core::SplitMix64 rng(vm.value ^ 0xa5a5a5a5a5a5a5a5ULL);
  switch (usage) {
    case core::UsageClass::kIdle:
      base_ = rng.uniform(0.01, 0.04);
      swing_ = 0.0;
      period_ = 3600.0;
      break;
    case core::UsageClass::kSteady:
      // stress-ng style: high, roughly constant demand.
      base_ = rng.uniform(0.55, 0.80);
      swing_ = rng.uniform(0.0, 0.05);
      period_ = rng.uniform(1800.0, 7200.0);
      break;
    case core::UsageClass::kBursty:
      base_ = rng.uniform(0.25, 0.45);
      swing_ = rng.uniform(0.30, 0.50);
      period_ = rng.uniform(600.0, 3600.0);
      break;
    case core::UsageClass::kInteractive:
      // request-driven with a diurnal swing.
      base_ = rng.uniform(0.25, 0.45);
      swing_ = rng.uniform(0.15, 0.30);
      period_ = 24.0 * 3600.0;
      break;
  }
  phase_ = rng.uniform(0.0, 2.0 * std::numbers::pi);
}

double UsageSignal::at(core::SimTime t) const {
  const double value =
      base_ + swing_ * std::sin(2.0 * std::numbers::pi * t / period_ + phase_);
  return std::clamp(value, 0.0, 1.0);
}

double UsageSignal::mean() const { return base_; }

}  // namespace slackvm::workload
