// Dynamic bitset over hardware threads (CPUs) of one physical machine.
//
// This is the library's equivalent of a Linux cpuset/affinity mask: vNodes
// own CpuSets, VMs are pinned to the CpuSet of their vNode.
#pragma once

#include <bit>
#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace slackvm::topo {

/// Hardware thread identifier within one PM.
using CpuId = std::uint16_t;

/// Fixed-universe dynamic bitset. All binary operations require operands of
/// the same universe size.
///
/// Hot paths iterate members without materializing them: range-for over the
/// set (word-wise ctz iterator) and `for_each_cpu` are allocation-free;
/// `as_vector()` remains for call sites that genuinely need a list.
class CpuSet {
 public:
  CpuSet() = default;

  /// Empty set over a universe of `universe` CPUs.
  explicit CpuSet(std::size_t universe);

  /// Universe size (number of addressable CPUs).
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  void set(CpuId cpu);
  void reset(CpuId cpu);
  /// Remove every member; keeps the universe (allocation-free).
  void clear() noexcept;
  [[nodiscard]] bool test(CpuId cpu) const;

  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] bool intersects(const CpuSet& other) const;
  [[nodiscard]] bool contains(const CpuSet& other) const;

  CpuSet& operator|=(const CpuSet& other);
  CpuSet& operator&=(const CpuSet& other);
  /// Set difference: remove every CPU present in `other`.
  CpuSet& operator-=(const CpuSet& other);

  friend CpuSet operator|(CpuSet lhs, const CpuSet& rhs) { return lhs |= rhs; }
  friend CpuSet operator&(CpuSet lhs, const CpuSet& rhs) { return lhs &= rhs; }
  friend CpuSet operator-(CpuSet lhs, const CpuSet& rhs) { return lhs -= rhs; }

  friend bool operator==(const CpuSet&, const CpuSet&) = default;

  /// Full set over the universe.
  [[nodiscard]] static CpuSet full(std::size_t universe);

  /// Ascending list of member CPU ids.
  [[nodiscard]] std::vector<CpuId> as_vector() const;

  /// Lowest member; throws on empty set.
  [[nodiscard]] CpuId first() const;

  /// Render as a compressed range list, e.g. "0-3,8,12-15".
  [[nodiscard]] std::string to_string() const;

  /// Forward iterator over member CPU ids in ascending order. Walks one
  /// word at a time with countr_zero; never touches the heap.
  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = CpuId;
    using difference_type = std::ptrdiff_t;
    using pointer = const CpuId*;
    using reference = CpuId;

    Iterator() = default;

    [[nodiscard]] CpuId operator*() const noexcept {
      return static_cast<CpuId>(word_index_ * kWordBits +
                                static_cast<std::size_t>(std::countr_zero(word_)));
    }

    Iterator& operator++() noexcept {
      word_ &= word_ - 1;  // clear the bit just visited
      skip_empty_words();
      return *this;
    }

    Iterator operator++(int) noexcept {
      Iterator copy = *this;
      ++*this;
      return copy;
    }

    friend bool operator==(const Iterator& a, const Iterator& b) noexcept {
      return a.word_index_ == b.word_index_ && a.word_ == b.word_;
    }

   private:
    friend class CpuSet;

    Iterator(const std::uint64_t* words, std::size_t word_count) noexcept
        : words_(words), word_count_(word_count),
          word_(word_count > 0 ? words[0] : 0) {
      skip_empty_words();
    }

    void skip_empty_words() noexcept {
      while (word_ == 0 && word_index_ + 1 < word_count_) {
        ++word_index_;
        word_ = words_[word_index_];
      }
      if (word_ == 0) {
        // Exhausted: normalize to the end() state.
        word_index_ = word_count_;
      }
    }

    const std::uint64_t* words_ = nullptr;
    std::size_t word_count_ = 0;
    std::size_t word_index_ = 0;
    std::uint64_t word_ = 0;
  };

  [[nodiscard]] Iterator begin() const noexcept {
    return Iterator{bits_.data(), bits_.size()};
  }
  [[nodiscard]] Iterator end() const noexcept {
    Iterator it;
    it.word_count_ = bits_.size();
    it.word_index_ = bits_.size();
    return it;
  }

  /// Allocation-free ascending visit: `fn(CpuId)` for every member.
  template <typename Fn>
  void for_each_cpu(Fn&& fn) const {
    for (std::size_t w = 0; w < bits_.size(); ++w) {
      std::uint64_t word = bits_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        fn(static_cast<CpuId>(w * kWordBits + bit));
        word &= word - 1;
      }
    }
  }

 private:
  static constexpr std::size_t kWordBits = 64;

  [[nodiscard]] std::size_t words() const noexcept { return bits_.size(); }
  void check_same_universe(const CpuSet& other) const;

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> bits_;
};

std::ostream& operator<<(std::ostream& os, const CpuSet& set);

}  // namespace slackvm::topo
