// Dynamic bitset over hardware threads (CPUs) of one physical machine.
//
// This is the library's equivalent of a Linux cpuset/affinity mask: vNodes
// own CpuSets, VMs are pinned to the CpuSet of their vNode.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace slackvm::topo {

/// Hardware thread identifier within one PM.
using CpuId = std::uint16_t;

/// Fixed-universe dynamic bitset. All binary operations require operands of
/// the same universe size.
class CpuSet {
 public:
  CpuSet() = default;

  /// Empty set over a universe of `universe` CPUs.
  explicit CpuSet(std::size_t universe);

  /// Universe size (number of addressable CPUs).
  [[nodiscard]] std::size_t universe() const noexcept { return universe_; }

  void set(CpuId cpu);
  void reset(CpuId cpu);
  [[nodiscard]] bool test(CpuId cpu) const;

  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] bool intersects(const CpuSet& other) const;
  [[nodiscard]] bool contains(const CpuSet& other) const;

  CpuSet& operator|=(const CpuSet& other);
  CpuSet& operator&=(const CpuSet& other);
  /// Set difference: remove every CPU present in `other`.
  CpuSet& operator-=(const CpuSet& other);

  friend CpuSet operator|(CpuSet lhs, const CpuSet& rhs) { return lhs |= rhs; }
  friend CpuSet operator&(CpuSet lhs, const CpuSet& rhs) { return lhs &= rhs; }
  friend CpuSet operator-(CpuSet lhs, const CpuSet& rhs) { return lhs -= rhs; }

  friend bool operator==(const CpuSet&, const CpuSet&) = default;

  /// Full set over the universe.
  [[nodiscard]] static CpuSet full(std::size_t universe);

  /// Ascending list of member CPU ids.
  [[nodiscard]] std::vector<CpuId> as_vector() const;

  /// Lowest member; throws on empty set.
  [[nodiscard]] CpuId first() const;

  /// Render as a compressed range list, e.g. "0-3,8,12-15".
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t words() const noexcept { return bits_.size(); }
  void check_same_universe(const CpuSet& other) const;

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> bits_;
};

std::ostream& operator<<(std::ostream& os, const CpuSet& set);

}  // namespace slackvm::topo
