// Topology builders for the machines used across the evaluation, plus a
// generic parameterized builder.
#pragma once

#include <cstdint>

#include "core/units.hpp"
#include "topology/cpu_topology.hpp"

namespace slackvm::topo {

/// Parameters of a synthetic machine. Thread ids are assigned socket-major
/// with SMT siblings adjacent: cpu = ((socket*cores_per_socket)+core)*smt + t.
struct GenericSpec {
  std::uint32_t sockets = 1;
  std::uint32_t cores_per_socket = 8;   ///< physical cores
  std::uint32_t smt = 1;                ///< threads per core
  std::uint32_t cores_per_l3 = 0;       ///< 0 = one L3 per socket (monolithic)
  std::uint32_t cores_per_l2 = 1;       ///< physical cores sharing an L2
  std::uint32_t numa_per_socket = 1;    ///< NUMA nodes per socket (NPS mode)
  std::uint32_t remote_numa_distance = 32;
  std::uint32_t intra_socket_numa_distance = 12;  ///< between NPS nodes of one socket
  core::MemMib total_mem = core::gib(64);
  std::string name = "generic";
};

/// Build a topology from a GenericSpec.
[[nodiscard]] CpuTopology make_generic(const GenericSpec& spec);

/// The paper's testbed (Table III): 2x AMD EPYC 7662, 64 cores each, SMT2
/// (256 threads), 1 TB RAM, Zen2 CCX of 4 cores sharing an L3, NPS1.
/// Hardware M/C ratio: 4 GiB per thread.
[[nodiscard]] CpuTopology make_dual_epyc_7662();

/// A dual-socket Intel Xeon with monolithic L3 per socket: 2x 20 cores, SMT2,
/// 384 GiB. Used to exercise Algorithm 1 on a non-segmented cache topology.
[[nodiscard]] CpuTopology make_dual_xeon_6230();

/// The simulator worker (§VII-B1): 32 cores, 128 GiB, M/C = 4, flat
/// single-socket topology without SMT.
[[nodiscard]] CpuTopology make_sim_worker();

/// Minimal machine for unit tests: 1 socket, `cores` cores, no SMT, shared
/// L3, `mem` memory.
[[nodiscard]] CpuTopology make_flat(std::uint32_t cores, core::MemMib mem);

}  // namespace slackvm::topo
