#include "topology/builders.hpp"

#include <vector>

#include "core/error.hpp"

namespace slackvm::topo {

CpuTopology make_generic(const GenericSpec& spec) {
  SLACKVM_ASSERT(spec.sockets >= 1 && spec.cores_per_socket >= 1 && spec.smt >= 1);
  SLACKVM_ASSERT(spec.numa_per_socket >= 1);
  SLACKVM_ASSERT(spec.cores_per_socket % spec.numa_per_socket == 0);
  const std::uint32_t cores_per_l3 =
      spec.cores_per_l3 == 0 ? spec.cores_per_socket : spec.cores_per_l3;
  SLACKVM_ASSERT(spec.cores_per_l2 >= 1);

  std::vector<CpuInfo> cpus;
  cpus.reserve(static_cast<std::size_t>(spec.sockets) * spec.cores_per_socket * spec.smt);
  const std::uint32_t cores_per_numa = spec.cores_per_socket / spec.numa_per_socket;
  // Cache zones never span sockets: each socket owns a contiguous block of
  // zone ids at every level.
  const std::uint32_t l2_zones_per_socket =
      core::ceil_div(spec.cores_per_socket, spec.cores_per_l2);
  const std::uint32_t l3_zones_per_socket =
      core::ceil_div(spec.cores_per_socket, cores_per_l3);

  for (std::uint32_t socket = 0; socket < spec.sockets; ++socket) {
    for (std::uint32_t core = 0; core < spec.cores_per_socket; ++core) {
      const std::uint32_t global_core = socket * spec.cores_per_socket + core;
      for (std::uint32_t t = 0; t < spec.smt; ++t) {
        CpuInfo info;
        info.id = static_cast<CpuId>(global_core * spec.smt + t);
        info.physical_core = global_core;
        info.l1 = global_core;  // L1 private to the core (shared by its threads)
        info.l2 = socket * l2_zones_per_socket + core / spec.cores_per_l2;
        info.l3 = socket * l3_zones_per_socket + core / cores_per_l3;
        info.numa = socket * spec.numa_per_socket + core / cores_per_numa;
        info.socket = socket;
        cpus.push_back(info);
      }
    }
  }

  const std::size_t numa_count =
      static_cast<std::size_t>(spec.sockets) * spec.numa_per_socket;
  std::vector<std::uint32_t> numa_distance(numa_count * numa_count, 10);
  for (std::size_t a = 0; a < numa_count; ++a) {
    for (std::size_t b = 0; b < numa_count; ++b) {
      if (a == b) {
        continue;
      }
      const bool same_socket = (a / spec.numa_per_socket) == (b / spec.numa_per_socket);
      numa_distance[a * numa_count + b] =
          same_socket ? spec.intra_socket_numa_distance : spec.remote_numa_distance;
    }
  }

  return CpuTopology(spec.name, std::move(cpus), std::move(numa_distance), spec.total_mem);
}

CpuTopology make_dual_epyc_7662() {
  GenericSpec spec;
  spec.name = "2x AMD EPYC 7662";
  spec.sockets = 2;
  spec.cores_per_socket = 64;
  spec.smt = 2;
  spec.cores_per_l3 = 4;  // Zen2 CCX: 4 cores share an L3 slice
  spec.cores_per_l2 = 1;
  spec.numa_per_socket = 1;  // NPS1
  spec.remote_numa_distance = 32;
  spec.total_mem = core::gib(1024);
  return make_generic(spec);
}

CpuTopology make_dual_xeon_6230() {
  GenericSpec spec;
  spec.name = "2x Intel Xeon Gold 6230";
  spec.sockets = 2;
  spec.cores_per_socket = 20;
  spec.smt = 2;
  spec.cores_per_l3 = 0;  // monolithic L3 per socket
  spec.cores_per_l2 = 1;
  spec.remote_numa_distance = 21;
  spec.total_mem = core::gib(384);
  return make_generic(spec);
}

CpuTopology make_sim_worker() {
  GenericSpec spec;
  spec.name = "sim-worker 32c/128GiB";
  spec.cores_per_socket = 32;
  spec.total_mem = core::gib(128);
  return make_generic(spec);
}

CpuTopology make_flat(std::uint32_t cores, core::MemMib mem) {
  GenericSpec spec;
  spec.name = "flat-" + std::to_string(cores);
  spec.cores_per_socket = cores;
  spec.total_mem = mem;
  return make_generic(spec);
}

}  // namespace slackvm::topo
