// Core distance metric — paper Algorithm 1.
//
// The metric extends the NUMA distance notion with cache-sharing awareness:
// walking the sharing hierarchy from the thread outwards, every level at
// which the two CPUs do NOT share a zone adds 10 (the same order of magnitude
// as SLIT NUMA distances); if no cache level is shared at all, the NUMA
// distance between the two nodes is added on top.
//
// Resulting scale on a dual-socket EPYC (thread/L1/L2/L3 hierarchy):
//   same thread            -> 0
//   SMT sibling (same L1)  -> 10
//   same CCX (same L3)     -> 30
//   same socket, other CCX -> 40 + 10 (local NUMA)  = 50
//   other socket           -> 40 + 32 (remote NUMA) = 72
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "topology/cpu_topology.hpp"

namespace slackvm::topo {

/// Algorithm 1: distance between two hardware threads.
[[nodiscard]] std::uint32_t core_distance(const CpuTopology& topo, CpuId a, CpuId b);

/// Precomputed symmetric distance matrix for hot paths (vNode resizing
/// evaluates candidate-to-set distances repeatedly).
class DistanceMatrix {
 public:
  explicit DistanceMatrix(const CpuTopology& topo);

  [[nodiscard]] std::uint32_t operator()(CpuId a, CpuId b) const {
    SLACKVM_ASSERT(a < n_ && b < n_);
    return d_[static_cast<std::size_t>(a) * n_ + b];
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Contiguous row of distances from `cpu` to every CPU of the machine —
  /// the access pattern of the incremental placement frontiers
  /// (local/placement.cpp), which relax against one row per step.
  [[nodiscard]] std::span<const std::uint32_t> row(CpuId cpu) const {
    SLACKVM_ASSERT(cpu < n_);
    return {d_.data() + static_cast<std::size_t>(cpu) * n_, n_};
  }

  /// Smallest distance from `cpu` to any member of `set`; returns
  /// `kUnreachable` for an empty set.
  [[nodiscard]] std::uint32_t min_distance_to(CpuId cpu, const CpuSet& set) const;

  /// Sum of distances from `cpu` to all members of `set` (compactness
  /// objective used when picking cores to release).
  [[nodiscard]] std::uint64_t total_distance_to(CpuId cpu, const CpuSet& set) const;

  static constexpr std::uint32_t kUnreachable = 0xffffffff;

 private:
  std::size_t n_;
  std::vector<std::uint32_t> d_;
};

/// Process-wide interning cache for distance matrices, keyed by structural
/// topology identity. A fleet of identical PMs shares one hardware model, so
/// every VNodeManager building its own O(n²) matrix (256 KiB on the dual-EPYC
/// testbed) is pure waste: `shared()` builds the matrix once per distinct
/// topology and hands out refcounted references. Thread-safe; entries live
/// for the process lifetime (hardware model counts are tiny).
class DistanceMatrixCache {
 public:
  /// The interned matrix for `topo`, building it on first use.
  [[nodiscard]] static std::shared_ptr<const DistanceMatrix> shared(
      const CpuTopology& topo);

  /// Number of distinct topologies interned so far (tests/diagnostics).
  [[nodiscard]] static std::size_t interned_count();
};

}  // namespace slackvm::topo
