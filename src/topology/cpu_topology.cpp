#include "topology/cpu_topology.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/error.hpp"

namespace slackvm::topo {

CpuTopology::CpuTopology(std::string name, std::vector<CpuInfo> cpus,
                         std::vector<std::uint32_t> numa_distance, core::MemMib total_mem)
    : name_(std::move(name)),
      cpus_(std::move(cpus)),
      numa_distance_(std::move(numa_distance)),
      total_mem_(total_mem) {
  SLACKVM_ASSERT(!cpus_.empty());
  SLACKVM_ASSERT(total_mem_ > 0);
  std::uint32_t max_numa = 0;
  std::uint32_t max_socket = 0;
  std::unordered_map<std::uint32_t, std::uint32_t> threads_per_core;
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    SLACKVM_ASSERT(cpus_[i].id == i);
    max_numa = std::max(max_numa, cpus_[i].numa);
    max_socket = std::max(max_socket, cpus_[i].socket);
    ++threads_per_core[cpus_[i].physical_core];
  }
  numa_count_ = max_numa + 1;
  socket_count_ = max_socket + 1;
  for (const auto& [core, threads] : threads_per_core) {
    smt_width_ = std::max(smt_width_, threads);
  }
  SLACKVM_ASSERT(numa_distance_.size() == numa_count_ * numa_count_);
  for (std::size_t n = 0; n < numa_count_; ++n) {
    SLACKVM_ASSERT(numa_distance_[n * numa_count_ + n] == 10);
  }
}

const CpuInfo& CpuTopology::cpu(CpuId id) const {
  SLACKVM_ASSERT(id < cpus_.size());
  return cpus_[id];
}

std::uint32_t CpuTopology::numa_distance(std::uint32_t a, std::uint32_t b) const {
  SLACKVM_ASSERT(a < numa_count_ && b < numa_count_);
  return numa_distance_[a * numa_count_ + b];
}

std::uint32_t CpuTopology::cache_id(ShareLevel level, CpuId cpu_id) const {
  const CpuInfo& info = cpu(cpu_id);
  switch (level) {
    case ShareLevel::kThread:
      return info.id;
    case ShareLevel::kL1:
      return info.l1;
    case ShareLevel::kL2:
      return info.l2;
    case ShareLevel::kL3:
      return info.l3;
  }
  SLACKVM_THROW("invalid ShareLevel");
}

double CpuTopology::target_ratio() const { return core::mc_ratio_gib_per_core(config()); }

CpuSet CpuTopology::socket_cpus(std::uint32_t socket) const {
  CpuSet out(cpu_count());
  for (const CpuInfo& info : cpus_) {
    if (info.socket == socket) {
      out.set(info.id);
    }
  }
  return out;
}

CpuSet CpuTopology::smt_siblings(CpuId cpu_id) const {
  const std::uint32_t core = cpu(cpu_id).physical_core;
  CpuSet out(cpu_count());
  for (const CpuInfo& info : cpus_) {
    if (info.physical_core == core) {
      out.set(info.id);
    }
  }
  return out;
}

}  // namespace slackvm::topo
