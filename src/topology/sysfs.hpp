// Linux sysfs-style topology ingestion.
//
// On a live host SlackVM's local scheduler reads the cache-zone IDs Linux
// exposes per CPU ("Linux system exposes an ID for each core to identify
// the cache zone. We collect this information", §V-A). This module parses a
// portable textual dump of that information — one line per hardware thread
// plus a NUMA distance table — into a CpuTopology, so real machines can be
// described without recompiling.
//
// Format (lines starting with '#' and blank lines are ignored):
//
//   machine <name>
//   mem_mib <total memory in MiB>
//   # cpu <id> core <physical-core> l1 <id> l2 <id> l3 <id> numa <n> socket <s>
//   cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0
//   cpu 1 core 0 l1 0 l2 0 l3 0 numa 0 socket 0
//   ...
//   # numa_distance <from> <to> <distance>, diagonal must be 10
//   numa_distance 0 0 10
//   numa_distance 0 1 32
//   ...
//
// CPUs may appear in any order but must form a dense 0..n-1 id range.
#pragma once

#include <iosfwd>
#include <string>

#include "topology/cpu_topology.hpp"

namespace slackvm::topo {

/// Parse a topology dump; throws core::SlackError with a line-numbered
/// message on malformed input.
[[nodiscard]] CpuTopology parse_topology_dump(std::istream& input);

/// Serialize a topology into the dump format (round-trips with the parser).
void write_topology_dump(const CpuTopology& topo, std::ostream& output);

}  // namespace slackvm::topo
