#include "topology/sysfs.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/error.hpp"

namespace slackvm::topo {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  SLACKVM_THROW("topology dump line " + std::to_string(line_no) + ": " + message);
}

/// Read "<key> <value>" pairs from the rest of a cpu line.
std::map<std::string, std::uint32_t> parse_fields(std::istringstream& in,
                                                  std::size_t line_no) {
  std::map<std::string, std::uint32_t> fields;
  std::string key;
  while (in >> key) {
    std::uint32_t value = 0;
    if (!(in >> value)) {
      fail(line_no, "missing value for field '" + key + "'");
    }
    if (!fields.emplace(key, value).second) {
      fail(line_no, "duplicate field '" + key + "'");
    }
  }
  return fields;
}

}  // namespace

CpuTopology parse_topology_dump(std::istream& input) {
  std::string name = "imported";
  core::MemMib mem = 0;
  std::map<CpuId, CpuInfo> cpus;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> distances;
  std::uint32_t max_numa = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string keyword;
    in >> keyword;
    if (keyword == "machine") {
      std::getline(in >> std::ws, name);
      if (name.empty()) {
        fail(line_no, "machine needs a name");
      }
    } else if (keyword == "mem_mib") {
      if (!(in >> mem) || mem <= 0) {
        fail(line_no, "mem_mib needs a positive value");
      }
    } else if (keyword == "cpu") {
      std::uint32_t id = 0;
      if (!(in >> id)) {
        fail(line_no, "cpu needs an id");
      }
      const auto fields = parse_fields(in, line_no);
      for (const char* required : {"core", "l1", "l2", "l3", "numa", "socket"}) {
        if (!fields.contains(required)) {
          fail(line_no, std::string("cpu missing field '") + required + "'");
        }
      }
      CpuInfo info;
      info.id = static_cast<CpuId>(id);
      info.physical_core = fields.at("core");
      info.l1 = fields.at("l1");
      info.l2 = fields.at("l2");
      info.l3 = fields.at("l3");
      info.numa = fields.at("numa");
      info.socket = fields.at("socket");
      if (!cpus.emplace(info.id, info).second) {
        fail(line_no, "duplicate cpu id " + std::to_string(id));
      }
      max_numa = std::max(max_numa, info.numa);
    } else if (keyword == "numa_distance") {
      std::uint32_t from = 0;
      std::uint32_t to = 0;
      std::uint32_t distance = 0;
      if (!(in >> from >> to >> distance)) {
        fail(line_no, "numa_distance needs <from> <to> <distance>");
      }
      distances[{from, to}] = distance;
    } else {
      fail(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (cpus.empty()) {
    SLACKVM_THROW("topology dump: no cpu lines");
  }
  if (mem <= 0) {
    SLACKVM_THROW("topology dump: missing mem_mib");
  }
  std::vector<CpuInfo> dense;
  dense.reserve(cpus.size());
  for (const auto& [id, info] : cpus) {
    if (id != dense.size()) {
      SLACKVM_THROW("topology dump: cpu ids must be dense 0..n-1 (missing " +
                    std::to_string(dense.size()) + ")");
    }
    dense.push_back(info);
  }

  const std::size_t numa_count = max_numa + 1;
  std::vector<std::uint32_t> matrix(numa_count * numa_count, 0);
  for (std::size_t a = 0; a < numa_count; ++a) {
    for (std::size_t b = 0; b < numa_count; ++b) {
      const auto it = distances.find({static_cast<std::uint32_t>(a),
                                      static_cast<std::uint32_t>(b)});
      if (it != distances.end()) {
        matrix[a * numa_count + b] = it->second;
      } else if (a == b) {
        matrix[a * numa_count + b] = 10;  // implicit local distance
      } else {
        SLACKVM_THROW("topology dump: missing numa_distance " + std::to_string(a) +
                      " -> " + std::to_string(b));
      }
    }
  }
  return CpuTopology(name, std::move(dense), std::move(matrix), mem);
}

void write_topology_dump(const CpuTopology& topo, std::ostream& output) {
  output << "machine " << topo.name() << '\n';
  output << "mem_mib " << topo.total_mem() << '\n';
  for (std::size_t id = 0; id < topo.cpu_count(); ++id) {
    const CpuInfo& info = topo.cpu(static_cast<CpuId>(id));
    output << "cpu " << info.id << " core " << info.physical_core << " l1 " << info.l1
           << " l2 " << info.l2 << " l3 " << info.l3 << " numa " << info.numa
           << " socket " << info.socket << '\n';
  }
  for (std::size_t a = 0; a < topo.numa_count(); ++a) {
    for (std::size_t b = 0; b < topo.numa_count(); ++b) {
      output << "numa_distance " << a << ' ' << b << ' '
             << topo.numa_distance(static_cast<std::uint32_t>(a),
                                   static_cast<std::uint32_t>(b))
             << '\n';
    }
  }
}

}  // namespace slackvm::topo
