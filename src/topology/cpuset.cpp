#include "topology/cpuset.hpp"

#include <bit>
#include <ostream>
#include <sstream>

namespace slackvm::topo {

CpuSet::CpuSet(std::size_t universe)
    : universe_(universe), bits_((universe + kWordBits - 1) / kWordBits, 0) {}

void CpuSet::set(CpuId cpu) {
  SLACKVM_ASSERT(cpu < universe_);
  bits_[cpu / kWordBits] |= (std::uint64_t{1} << (cpu % kWordBits));
}

void CpuSet::reset(CpuId cpu) {
  SLACKVM_ASSERT(cpu < universe_);
  bits_[cpu / kWordBits] &= ~(std::uint64_t{1} << (cpu % kWordBits));
}

void CpuSet::clear() noexcept {
  for (std::uint64_t& word : bits_) {
    word = 0;
  }
}

bool CpuSet::test(CpuId cpu) const {
  SLACKVM_ASSERT(cpu < universe_);
  return (bits_[cpu / kWordBits] >> (cpu % kWordBits)) & 1;
}

std::size_t CpuSet::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t word : bits_) {
    total += static_cast<std::size_t>(std::popcount(word));
  }
  return total;
}

bool CpuSet::empty() const noexcept {
  for (std::uint64_t word : bits_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

bool CpuSet::intersects(const CpuSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words(); ++i) {
    if ((bits_[i] & other.bits_[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool CpuSet::contains(const CpuSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words(); ++i) {
    if ((other.bits_[i] & ~bits_[i]) != 0) {
      return false;
    }
  }
  return true;
}

CpuSet& CpuSet::operator|=(const CpuSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words(); ++i) {
    bits_[i] |= other.bits_[i];
  }
  return *this;
}

CpuSet& CpuSet::operator&=(const CpuSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words(); ++i) {
    bits_[i] &= other.bits_[i];
  }
  return *this;
}

CpuSet& CpuSet::operator-=(const CpuSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words(); ++i) {
    bits_[i] &= ~other.bits_[i];
  }
  return *this;
}

CpuSet CpuSet::full(std::size_t universe) {
  CpuSet s(universe);
  if (universe == 0) {
    return s;
  }
  for (std::uint64_t& word : s.bits_) {
    word = ~std::uint64_t{0};
  }
  // Mask the tail of the last word so membership never exceeds the universe.
  const std::size_t tail = universe % kWordBits;
  if (tail != 0) {
    s.bits_.back() = (std::uint64_t{1} << tail) - 1;
  }
  return s;
}

std::vector<CpuId> CpuSet::as_vector() const {
  std::vector<CpuId> out;
  out.reserve(count());
  for (std::size_t w = 0; w < words(); ++w) {
    std::uint64_t word = bits_[w];
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      out.push_back(static_cast<CpuId>(w * kWordBits + bit));
      word &= word - 1;
    }
  }
  return out;
}

CpuId CpuSet::first() const {
  for (std::size_t w = 0; w < words(); ++w) {
    if (bits_[w] != 0) {
      return static_cast<CpuId>(w * kWordBits +
                                static_cast<std::size_t>(std::countr_zero(bits_[w])));
    }
  }
  SLACKVM_THROW("CpuSet::first on empty set");
}

std::string CpuSet::to_string() const {
  const auto cpus = as_vector();
  std::ostringstream os;
  std::size_t i = 0;
  bool first_range = true;
  while (i < cpus.size()) {
    std::size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) {
      ++j;
    }
    if (!first_range) {
      os << ',';
    }
    first_range = false;
    if (j == i) {
      os << cpus[i];
    } else {
      os << cpus[i] << '-' << cpus[j];
    }
    i = j + 1;
  }
  return os.str();
}

void CpuSet::check_same_universe(const CpuSet& other) const {
  SLACKVM_ASSERT(universe_ == other.universe_);
}

std::ostream& operator<<(std::ostream& os, const CpuSet& set) {
  return os << set.to_string();
}

}  // namespace slackvm::topo
