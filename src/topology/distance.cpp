#include "topology/distance.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <unordered_map>

namespace slackvm::topo {

std::uint32_t core_distance(const CpuTopology& topo, CpuId a, CpuId b) {
  // Algorithm 1: walk levels 0..height; the first shared zone stops the
  // walk, otherwise fall through to the NUMA distance.
  std::uint32_t distance = 0;
  for (std::uint8_t level = 0; level < kShareLevels; ++level) {
    if (topo.cache_id(static_cast<ShareLevel>(level), a) ==
        topo.cache_id(static_cast<ShareLevel>(level), b)) {
      return distance;
    }
    distance += 10;
  }
  return distance + topo.numa_distance(topo.cpu(a).numa, topo.cpu(b).numa);
}

DistanceMatrix::DistanceMatrix(const CpuTopology& topo) : n_(topo.cpu_count()) {
  d_.resize(n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a; b < n_; ++b) {
      const auto dist = core_distance(topo, static_cast<CpuId>(a), static_cast<CpuId>(b));
      d_[a * n_ + b] = dist;
      d_[b * n_ + a] = dist;
    }
  }
}

std::uint32_t DistanceMatrix::min_distance_to(CpuId cpu, const CpuSet& set) const {
  const std::span<const std::uint32_t> r = row(cpu);
  std::uint32_t best = kUnreachable;
  set.for_each_cpu([&](CpuId member) { best = std::min(best, r[member]); });
  return best;
}

std::uint64_t DistanceMatrix::total_distance_to(CpuId cpu, const CpuSet& set) const {
  const std::span<const std::uint32_t> r = row(cpu);
  std::uint64_t total = 0;
  set.for_each_cpu([&](CpuId member) { total += r[member]; });
  return total;
}

namespace {

void append_u32(std::string& key, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    key.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

/// Serialization of exactly the fields the matrix is a function of: the
/// cache/NUMA zone structure. Name and memory size are deliberately left out
/// so structurally identical machines (a homogeneous fleet) share one entry.
std::string structural_key(const CpuTopology& topo) {
  std::string key;
  key.reserve(topo.cpu_count() * 24 + topo.numa_count() * topo.numa_count() * 4 + 8);
  append_u32(key, static_cast<std::uint32_t>(topo.cpu_count()));
  for (std::size_t i = 0; i < topo.cpu_count(); ++i) {
    const CpuInfo& cpu = topo.cpu(static_cast<CpuId>(i));
    append_u32(key, cpu.physical_core);
    append_u32(key, cpu.l1);
    append_u32(key, cpu.l2);
    append_u32(key, cpu.l3);
    append_u32(key, cpu.numa);
    append_u32(key, cpu.socket);
  }
  append_u32(key, static_cast<std::uint32_t>(topo.numa_count()));
  for (std::uint32_t a = 0; a < topo.numa_count(); ++a) {
    for (std::uint32_t b = 0; b < topo.numa_count(); ++b) {
      append_u32(key, topo.numa_distance(a, b));
    }
  }
  return key;
}

std::mutex& cache_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::unordered_map<std::string, std::shared_ptr<const DistanceMatrix>>& cache_map() {
  static auto* map =
      new std::unordered_map<std::string, std::shared_ptr<const DistanceMatrix>>();
  return *map;
}

}  // namespace

std::shared_ptr<const DistanceMatrix> DistanceMatrixCache::shared(
    const CpuTopology& topo) {
  const std::string key = structural_key(topo);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex());
    const auto it = cache_map().find(key);
    if (it != cache_map().end()) {
      return it->second;
    }
  }
  // Build outside the lock: construction is the expensive part, and two
  // threads racing on a new topology at worst build it twice.
  auto matrix = std::make_shared<const DistanceMatrix>(topo);
  const std::lock_guard<std::mutex> lock(cache_mutex());
  return cache_map().emplace(key, std::move(matrix)).first->second;
}

std::size_t DistanceMatrixCache::interned_count() {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  return cache_map().size();
}

}  // namespace slackvm::topo
