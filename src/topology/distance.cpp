#include "topology/distance.hpp"

namespace slackvm::topo {

std::uint32_t core_distance(const CpuTopology& topo, CpuId a, CpuId b) {
  // Algorithm 1: walk levels 0..height; the first shared zone stops the
  // walk, otherwise fall through to the NUMA distance.
  std::uint32_t distance = 0;
  for (std::uint8_t level = 0; level < kShareLevels; ++level) {
    if (topo.cache_id(static_cast<ShareLevel>(level), a) ==
        topo.cache_id(static_cast<ShareLevel>(level), b)) {
      return distance;
    }
    distance += 10;
  }
  return distance + topo.numa_distance(topo.cpu(a).numa, topo.cpu(b).numa);
}

DistanceMatrix::DistanceMatrix(const CpuTopology& topo) : n_(topo.cpu_count()) {
  d_.resize(n_ * n_);
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a; b < n_; ++b) {
      const auto dist = core_distance(topo, static_cast<CpuId>(a), static_cast<CpuId>(b));
      d_[a * n_ + b] = dist;
      d_[b * n_ + a] = dist;
    }
  }
}

std::uint32_t DistanceMatrix::min_distance_to(CpuId cpu, const CpuSet& set) const {
  std::uint32_t best = kUnreachable;
  for (CpuId member : set.as_vector()) {
    best = std::min(best, (*this)(cpu, member));
  }
  return best;
}

std::uint64_t DistanceMatrix::total_distance_to(CpuId cpu, const CpuSet& set) const {
  std::uint64_t total = 0;
  for (CpuId member : set.as_vector()) {
    total += (*this)(cpu, member);
  }
  return total;
}

}  // namespace slackvm::topo
