// Physical machine CPU topology model.
//
// The model mirrors what SlackVM's local scheduler reads from Linux sysfs on
// a real host: for each hardware thread, the identifiers of the cache zones
// it belongs to at each level, its physical core, NUMA node and socket, plus
// the ACPI SLIT-style NUMA distance matrix. Algorithm 1 (distance.hpp) and
// the vNode placement policies consume only this graph, so a synthetic
// topology exercises the exact same code path as a live machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resources.hpp"
#include "core/units.hpp"
#include "topology/cpuset.hpp"

namespace slackvm::topo {

/// Per-hardware-thread attributes.
struct CpuInfo {
  CpuId id = 0;
  std::uint32_t physical_core = 0;  ///< SMT siblings share this id
  std::uint32_t l1 = 0;             ///< L1 cache zone (== physical core on x86)
  std::uint32_t l2 = 0;             ///< L2 cache zone
  std::uint32_t l3 = 0;             ///< L3 cache zone (CCX on EPYC, socket on Xeon)
  std::uint32_t numa = 0;           ///< NUMA node
  std::uint32_t socket = 0;         ///< physical package
};

/// Cache hierarchy levels walked by Algorithm 1, from the closest sharing
/// domain to the farthest. Level 0 is the thread itself so that identical
/// CPUs have distance zero.
enum class ShareLevel : std::uint8_t { kThread = 0, kL1 = 1, kL2 = 2, kL3 = 3 };

inline constexpr std::uint8_t kShareLevels = 4;  ///< thread, L1, L2, L3

/// Immutable topology of one physical machine.
class CpuTopology {
 public:
  /// `cpus` must be a contiguous sequence with cpus[i].id == i;
  /// `numa_distance` is a row-major n×n matrix with 10 on the diagonal.
  CpuTopology(std::string name, std::vector<CpuInfo> cpus,
              std::vector<std::uint32_t> numa_distance, core::MemMib total_mem);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t cpu_count() const noexcept { return cpus_.size(); }
  [[nodiscard]] const CpuInfo& cpu(CpuId id) const;
  [[nodiscard]] core::MemMib total_mem() const noexcept { return total_mem_; }
  [[nodiscard]] std::size_t numa_count() const noexcept { return numa_count_; }
  [[nodiscard]] std::size_t socket_count() const noexcept { return socket_count_; }

  /// ACPI SLIT-style distance between two NUMA nodes (10 = local).
  [[nodiscard]] std::uint32_t numa_distance(std::uint32_t a, std::uint32_t b) const;

  /// The id of the cache zone `cpu` belongs to at `level` — Algorithm 1's
  /// CACHE(level, core) oracle. Level kThread returns the cpu id itself.
  [[nodiscard]] std::uint32_t cache_id(ShareLevel level, CpuId cpu) const;

  /// PM hardware configuration as a resource vector: one "core" per hardware
  /// thread (the paper counts threads: 256 threads / 1 TB -> M/C = 4).
  [[nodiscard]] core::Resources config() const noexcept {
    return core::Resources{static_cast<core::CoreCount>(cpus_.size()), total_mem_};
  }

  /// Hardware memory-per-thread target ratio in GiB.
  [[nodiscard]] double target_ratio() const;

  /// All CPUs of the machine.
  [[nodiscard]] CpuSet all_cpus() const { return CpuSet::full(cpus_.size()); }

  /// All CPUs belonging to the given socket.
  [[nodiscard]] CpuSet socket_cpus(std::uint32_t socket) const;

  /// SMT siblings of `cpu` (including itself).
  [[nodiscard]] CpuSet smt_siblings(CpuId cpu) const;

  /// Number of hardware threads per physical core (1 = no SMT). Topologies
  /// with non-uniform SMT report the maximum.
  [[nodiscard]] std::uint32_t smt_width() const noexcept { return smt_width_; }

 private:
  std::string name_;
  std::vector<CpuInfo> cpus_;
  std::vector<std::uint32_t> numa_distance_;
  std::size_t numa_count_ = 0;
  std::size_t socket_count_ = 0;
  std::uint32_t smt_width_ = 1;
  core::MemMib total_mem_ = 0;
};

}  // namespace slackvm::topo
