#include "core/units.hpp"

#include <gtest/gtest.h>

namespace slackvm::core {
namespace {

TEST(Units, GibConvertsToMib) {
  EXPECT_EQ(gib(0), 0);
  EXPECT_EQ(gib(1), 1024);
  EXPECT_EQ(gib(128), 131072);
  EXPECT_EQ(gib(1024), 1048576);  // 1 TiB
}

TEST(Units, MibToGibRoundTrips) {
  EXPECT_DOUBLE_EQ(mib_to_gib(gib(4)), 4.0);
  EXPECT_DOUBLE_EQ(mib_to_gib(512), 0.5);
  EXPECT_DOUBLE_EQ(mib_to_gib(0), 0.0);
}

TEST(Units, CeilDivExactDivision) {
  EXPECT_EQ(ceil_div(8U, 2U), 4U);
  EXPECT_EQ(ceil_div(9U, 3U), 3U);
}

TEST(Units, CeilDivRoundsUp) {
  EXPECT_EQ(ceil_div(1U, 2U), 1U);
  EXPECT_EQ(ceil_div(7U, 3U), 3U);
  EXPECT_EQ(ceil_div(10U, 3U), 4U);
}

TEST(Units, CeilDivZeroNumerator) { EXPECT_EQ(ceil_div(0U, 4U), 0U); }

TEST(Units, CeilDivZeroDenominatorIsZero) { EXPECT_EQ(ceil_div(5U, 0U), 0U); }

// Property: ceil_div(n, d) is the least k with k*d >= n.
TEST(Units, CeilDivIsLeastUpperMultiple) {
  for (unsigned n = 0; n <= 50; ++n) {
    for (unsigned d = 1; d <= 7; ++d) {
      const unsigned k = ceil_div(n, d);
      EXPECT_GE(k * d, n) << n << "/" << d;
      if (k > 0) {
        EXPECT_LT((k - 1) * d, n) << n << "/" << d;
      }
    }
  }
}

}  // namespace
}  // namespace slackvm::core
