#include "core/peak_prediction.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace slackvm::core {
namespace {

const std::vector<double> kRamp{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
const std::vector<double> kFlat{0.25, 0.25, 0.25, 0.25};

TEST(MaxPredictorTest, ReturnsWindowMaximum) {
  const MaxPredictor p;
  EXPECT_DOUBLE_EQ(p.predict(kRamp), 1.0);
  EXPECT_DOUBLE_EQ(p.predict(kFlat), 0.25);
}

TEST(MaxPredictorTest, EmptyWindowFailsSafe) {
  const MaxPredictor p;
  EXPECT_DOUBLE_EQ(p.predict({}), 1.0);
}

TEST(PercentilePredictorTest, TracksRequestedQuantile) {
  const PercentilePredictor p90(90.0);
  EXPECT_NEAR(p90.predict(kRamp), 0.91, 1e-9);
  const PercentilePredictor p50(50.0);
  EXPECT_NEAR(p50.predict(kRamp), 0.55, 1e-9);
}

TEST(PercentilePredictorTest, BelowMaxForSkewedWindows) {
  // A p95 predictor discounts a single outlier, the max predictor does not.
  std::vector<double> window(100, 0.2);
  window.back() = 1.0;
  const PercentilePredictor p95(95.0);
  const MaxPredictor max;
  EXPECT_LT(p95.predict(window), max.predict(window));
}

TEST(PercentilePredictorTest, InvalidQuantileRejected) {
  EXPECT_THROW(PercentilePredictor{0.0}, SlackError);
  EXPECT_THROW(PercentilePredictor{101.0}, SlackError);
}

TEST(MeanStdDevPredictorTest, FlatSignalPredictsMean) {
  const MeanStdDevPredictor p(3.0);
  EXPECT_DOUBLE_EQ(p.predict(kFlat), 0.25);
}

TEST(MeanStdDevPredictorTest, VariabilityRaisesPrediction) {
  const MeanStdDevPredictor p(2.0);
  const std::vector<double> noisy{0.1, 0.4, 0.1, 0.4, 0.1, 0.4};
  EXPECT_GT(p.predict(noisy), 0.25);  // mean 0.25 + 2 sd
}

TEST(MeanStdDevPredictorTest, ClampedToUnitInterval) {
  const MeanStdDevPredictor p(10.0);
  const std::vector<double> wild{0.0, 1.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(p.predict(wild), 1.0);
}

TEST(PredictorNames, AreDescriptive) {
  EXPECT_EQ(MaxPredictor{}.name(), "max");
  EXPECT_EQ(PercentilePredictor{95.0}.name(), "p95");
  EXPECT_EQ(MeanStdDevPredictor{3.0}.name(), "mean+3sd");
}

TEST(SafeRatio, InverseOfPeak) {
  EXPECT_EQ(safe_ratio_for_peak(1.0, 4), 1);
  EXPECT_EQ(safe_ratio_for_peak(0.5, 4), 2);
  EXPECT_EQ(safe_ratio_for_peak(0.34, 4), 2);  // floor(1/0.34) = 2
  EXPECT_EQ(safe_ratio_for_peak(0.33, 4), 3);
  EXPECT_EQ(safe_ratio_for_peak(0.25, 4), 4);
}

TEST(SafeRatio, ClampedToContract) {
  EXPECT_EQ(safe_ratio_for_peak(0.05, 3), 3);  // 20:1 would be safe but contract is 3
  EXPECT_EQ(safe_ratio_for_peak(0.0, 5), 5);   // idle pool -> contract maximum
}

TEST(SafeRatio, HighPeakForcesPremium) {
  EXPECT_EQ(safe_ratio_for_peak(0.95, 8), 1);
}

}  // namespace
}  // namespace slackvm::core
