// Property tests for the struct-of-arrays HostState arena: randomized
// add/remove/fail/drain/repair/migrate sequences driven through VCluster
// must keep every mirrored column — epoch, phase, alloc, capacity, per-level
// vCPUs, vm_count — field-for-field equal to the authoritative HostState
// vector, and the running totals exactly equal to a fresh recomputation.
#include "sched/host_arena.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "sched/policy.hpp"
#include "sched/vcluster.hpp"
#include "workload/catalog.hpp"
#include "workload/level_mix.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

const core::Resources kWorker{32, gib(128)};

/// Catalog-shaped random spec (same scheme as the placement-index tests).
VmSpec random_spec(core::SplitMix64& rng) {
  const workload::LevelMix mix = workload::make_mix(34, 33, 33);
  VmSpec spec;
  spec.level = mix.sample(rng);
  const workload::Catalog& catalog =
      spec.level.oversubscribed()
          ? workload::azure_catalog().truncated(workload::kOversubMemCap)
          : workload::azure_catalog();
  const workload::Flavor& flavor = catalog.sample(rng);
  spec.vcpus = flavor.vcpus;
  spec.mem_mib = flavor.mem_mib;
  return spec;
}

/// Field-for-field mirror equality via the arena's own checker, plus the
/// O(1) totals against an explicit recomputation over the host vector.
void expect_exact_mirror(const VCluster& cluster, std::size_t event) {
  const auto violations = cluster.arena().check(cluster.hosts());
  ASSERT_TRUE(violations.empty())
      << "event " << event << ": " << violations.front();
  core::Resources alloc;
  core::Resources config;
  std::size_t nonempty = 0;
  for (const HostState& host : cluster.hosts()) {
    alloc += host.alloc();
    config += host.config();
    if (!host.empty()) {
      ++nonempty;
    }
  }
  EXPECT_EQ(cluster.total_alloc(), alloc) << "event " << event;
  EXPECT_EQ(cluster.total_config(), config) << "event " << event;
  EXPECT_EQ(cluster.nonempty_hosts(), nonempty) << "event " << event;
}

void run_property(std::uint64_t seed, std::size_t events, bool use_index) {
  VCluster cluster("arena-prop", kWorker, make_progress_policy());
  cluster.set_index_enabled(use_index);
  core::SplitMix64 rng(seed);
  std::vector<VmId> live;
  std::vector<HostId> down;
  std::uint64_t next_id = 1;

  for (std::size_t e = 0; e < events; ++e) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 45 || live.empty()) {
      // Arrival (may open a host, may be rejected — both must re-mirror).
      const VmId vm{next_id++};
      if (cluster.try_place(vm, random_spec(rng)).has_value()) {
        live.push_back(vm);
      }
    } else if (roll < 70) {
      // Departure.
      const std::size_t pick = rng.below(live.size());
      cluster.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 80 && !live.empty()) {
      // Targeted migration (both the success and the no-op path bump epochs
      // on the success side only; the mirror must agree either way).
      const VmId vm = live[rng.below(live.size())];
      const auto to = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      (void)cluster.migrate(vm, to);
    } else if (roll < 88 && cluster.opened_hosts() > 0) {
      // Failure: evict and re-place each victim through the policy path.
      const auto host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      for (const auto& [vm, spec] : cluster.fail_host(host)) {
        if (!cluster.try_place(vm, spec).has_value()) {
          std::erase(live, vm);
        }
      }
      down.push_back(host);
    } else if (roll < 94 && cluster.opened_hosts() > 0) {
      // Graceful drain + migrate_off.
      const auto host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      if (cluster.host_phase(host) == HostPhase::kUp) {
        cluster.drain_host(host);
        (void)cluster.migrate_off(host);
        down.push_back(host);
      }
    } else if (!down.empty()) {
      // Repair.
      cluster.repair_host(down.back());
      down.pop_back();
    }
    expect_exact_mirror(cluster, e);
  }
  EXPECT_GT(cluster.opened_hosts(), 0U);
}

TEST(HostArenaProperty, MirrorsNaiveClusterExactly) {
  run_property(/*seed=*/1, /*events=*/4000, /*use_index=*/false);
}

TEST(HostArenaProperty, MirrorsIndexedClusterExactly) {
  run_property(/*seed=*/2, /*events=*/4000, /*use_index=*/true);
}

TEST(HostArenaProperty, ManySeedsShortSequences) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    run_property(seed, 600, seed % 2 == 0);
  }
}

// Epoch semantics: the arena row carries the exact epoch of the host it
// mirrors, so an index entry validated against the arena epoch is validated
// against the host's.
TEST(HostArenaProperty, EpochTracksEveryMutation) {
  VCluster cluster("arena-epoch", kWorker, make_first_fit());
  const VmSpec spec = [] {
    VmSpec s;
    s.vcpus = 4;
    s.mem_mib = gib(8);
    s.level = OversubLevel{2};
    return s;
  }();
  ASSERT_TRUE(cluster.try_place(VmId{1}, spec).has_value());
  const HostArena& arena = cluster.arena();
  EXPECT_EQ(arena.epoch(0), cluster.hosts()[0].epoch());
  ASSERT_TRUE(cluster.try_place(VmId{2}, spec).has_value());
  EXPECT_EQ(arena.epoch(0), cluster.hosts()[0].epoch());
  cluster.remove(VmId{1});
  EXPECT_EQ(arena.epoch(0), cluster.hosts()[0].epoch());
}

// Rollback of a failed opening: try_place opening a host and then failing
// to fit (memory cap) must pop the arena row too, keeping sizes equal.
TEST(HostArenaProperty, FeasibilityMatchesHostState) {
  VCluster cluster("arena-feas", kWorker, make_first_fit());
  core::SplitMix64 rng(99);
  std::uint64_t next_id = 1;
  for (int i = 0; i < 400; ++i) {
    (void)cluster.try_place(VmId{next_id++}, random_spec(rng));
  }
  const HostArena& arena = cluster.arena();
  ASSERT_EQ(arena.size(), cluster.hosts().size());
  for (int i = 0; i < 200; ++i) {
    const VmSpec probe = random_spec(rng);
    for (const HostState& host : cluster.hosts()) {
      EXPECT_EQ(arena.can_host(host.id(), probe), host.can_host(probe))
          << "host " << host.id() << " probe " << i;
    }
  }
}

}  // namespace
}  // namespace slackvm::sched
