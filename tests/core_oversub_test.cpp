#include "core/oversub.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace slackvm::core {
namespace {

TEST(OversubLevel, DefaultIsPremium) {
  const OversubLevel level;
  EXPECT_EQ(level.ratio(), 1);
  EXPECT_FALSE(level.oversubscribed());
}

TEST(OversubLevel, RatioRangeEnforced) {
  EXPECT_THROW(OversubLevel{0}, SlackError);
  EXPECT_THROW(OversubLevel{17}, SlackError);
  EXPECT_NO_THROW(OversubLevel{1});
  EXPECT_NO_THROW(OversubLevel{16});
}

TEST(OversubLevel, CoresForCeilRounds) {
  const OversubLevel two{2};
  EXPECT_EQ(two.cores_for(0), 0U);
  EXPECT_EQ(two.cores_for(1), 1U);
  EXPECT_EQ(two.cores_for(2), 1U);
  EXPECT_EQ(two.cores_for(3), 2U);
  const OversubLevel three{3};
  EXPECT_EQ(three.cores_for(7), 3U);
  EXPECT_EQ(three.cores_for(9), 3U);
}

TEST(OversubLevel, VcpusForScalesLinearly) {
  // A 32-core PM exposes 32 / 64 / 96 vCPUs at 1:1 / 2:1 / 3:1.
  EXPECT_EQ(OversubLevel{1}.vcpus_for(32), 32U);
  EXPECT_EQ(OversubLevel{2}.vcpus_for(32), 64U);
  EXPECT_EQ(OversubLevel{3}.vcpus_for(32), 96U);
}

TEST(OversubLevel, StricterMeansLowerRatio) {
  const OversubLevel premium{1};
  const OversubLevel two{2};
  const OversubLevel three{3};
  EXPECT_TRUE(premium.stricter_than(two));
  EXPECT_TRUE(two.stricter_than(three));
  EXPECT_FALSE(three.stricter_than(two));
  EXPECT_FALSE(two.stricter_than(two));
}

TEST(OversubLevel, OrderingFollowsRatio) {
  EXPECT_LT(OversubLevel{1}, OversubLevel{2});
  EXPECT_GT(OversubLevel{3}, OversubLevel{2});
  EXPECT_EQ(OversubLevel{2}, OversubLevel{2});
}

TEST(OversubLevel, ToStringFormat) {
  EXPECT_EQ(to_string(OversubLevel{1}), "1:1");
  EXPECT_EQ(to_string(OversubLevel{3}), "3:1");
}

// Property over all supported ratios: cores_for/vcpus_for are adjoint —
// vcpus fit in the cores they require, and removing a core breaks it.
class OversubAllRatios : public ::testing::TestWithParam<int> {};

TEST_P(OversubAllRatios, CoresForIsMinimal) {
  const OversubLevel level{static_cast<std::uint8_t>(GetParam())};
  for (VcpuCount vcpus = 1; vcpus <= 100; ++vcpus) {
    const CoreCount cores = level.cores_for(vcpus);
    EXPECT_GE(level.vcpus_for(cores), vcpus);
    EXPECT_LT(level.vcpus_for(cores - 1), vcpus);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRatios, OversubAllRatios, ::testing::Range(1, 17));

}  // namespace
}  // namespace slackvm::core
