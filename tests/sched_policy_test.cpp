#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

const core::Resources kWorker{32, gib(128)};

std::vector<HostState> make_hosts(std::size_t n) {
  std::vector<HostState> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    hosts.emplace_back(static_cast<HostId>(i), kWorker);
  }
  return hosts;
}

TEST(FirstFit, PicksLowestFeasibleIndex) {
  auto hosts = make_hosts(3);
  hosts[0].add(VmId{1}, spec(32, gib(32), 1));  // full on CPU
  const FirstFitPolicy policy;
  const auto chosen = policy.select(hosts, spec(4, gib(4), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 1U);
}

TEST(FirstFit, NulloptWhenNothingFits) {
  auto hosts = make_hosts(2);
  hosts[0].add(VmId{1}, spec(32, gib(1), 1));
  hosts[1].add(VmId{2}, spec(32, gib(1), 1));
  const FirstFitPolicy policy;
  EXPECT_FALSE(policy.select(hosts, spec(1, gib(1), 1)).has_value());
}

TEST(FirstFit, EmptyClusterReturnsNullopt) {
  const std::vector<HostState> hosts;
  const FirstFitPolicy policy;
  EXPECT_FALSE(policy.select(hosts, spec(1, gib(1), 1)).has_value());
}

TEST(ScorePolicyTest, PicksHighestScore) {
  auto hosts = make_hosts(3);
  // Make host 2 CPU-heavy so a memory-heavy VM scores best there.
  hosts[2].add(VmId{1}, spec(16, gib(16), 1));
  const ScorePolicy policy(std::make_unique<ProgressScorer>());
  const auto chosen = policy.select(hosts, spec(1, gib(8), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 2U);
}

TEST(ScorePolicyTest, TieBreaksOnLowestIndex) {
  auto hosts = make_hosts(4);
  const ScorePolicy policy(std::make_unique<ProgressScorer>());
  // All hosts empty -> identical scores -> lowest id wins.
  const auto chosen = policy.select(hosts, spec(2, gib(8), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 0U);
}

// The tie-break is a documented contract (policy.hpp): among the hosts with
// the maximal score, the LOWEST HostId wins. The placement index reproduces
// it via its heap ordering, so every scorer must obey it on the naive path.
TEST(ScorePolicyTest, BestFitTieBreaksOnLowestIndex) {
  auto hosts = make_hosts(4);
  // Hosts 1 and 3 equally loaded (identical best-fit score and feasible);
  // hosts 0 and 2 empty score strictly worse for best-fit.
  hosts[1].add(VmId{1}, spec(8, gib(32), 1));
  hosts[3].add(VmId{2}, spec(8, gib(32), 1));
  const auto policy = make_best_fit();
  const auto chosen = policy->select(hosts, spec(1, gib(4), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 1U);  // not 3: lowest id among the tied maximum
}

TEST(ScorePolicyTest, WorstFitTieBreaksOnLowestIndex) {
  auto hosts = make_hosts(4);
  // Empty hosts 0..3 all tie at the maximal worst-fit score.
  const auto policy = make_worst_fit();
  const auto chosen = policy->select(hosts, spec(1, gib(4), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 0U);
}

TEST(ScorePolicyTest, SlackVmCompositeTieBreaksOnLowestIndex) {
  auto hosts = make_hosts(3);
  // Identical load on every host -> identical composite score everywhere.
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    hosts[i].add(VmId{i + 1}, spec(4, gib(16), 2));
  }
  const auto policy = make_slackvm_policy();
  const auto chosen = policy->select(hosts, spec(2, gib(8), 2));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 0U);
}

TEST(ScorePolicyTest, SkipsInfeasibleEvenIfBestScoring) {
  auto hosts = make_hosts(2);
  hosts[0].add(VmId{1}, spec(16, gib(8), 1));    // CPU heavy, would score best
  hosts[0].add(VmId{2}, spec(1, gib(118), 1));   // ...but memory-full
  const ScorePolicy policy(std::make_unique<ProgressScorer>());
  const auto chosen = policy.select(hosts, spec(1, gib(8), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 1U);
}

TEST(ScorePolicyTest, BestFitConsolidates) {
  auto hosts = make_hosts(2);
  hosts[1].add(VmId{1}, spec(8, gib(32), 1));
  const auto policy = make_best_fit();
  const auto chosen = policy->select(hosts, spec(1, gib(4), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 1U);  // fuller host preferred
}

TEST(ScorePolicyTest, WorstFitSpreads) {
  auto hosts = make_hosts(2);
  hosts[1].add(VmId{1}, spec(8, gib(32), 1));
  const auto policy = make_worst_fit();
  const auto chosen = policy->select(hosts, spec(1, gib(4), 1));
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 0U);  // emptier host preferred
}

TEST(PolicyFactories, NamesAreDescriptive) {
  EXPECT_EQ(make_first_fit()->name(), "first-fit");
  EXPECT_EQ(make_progress_policy()->name(), "score(progress-to-target-ratio)");
  EXPECT_EQ(make_best_fit()->name(), "score(best-fit)");
}

TEST(ScorePolicyTest, NullScorerRejected) {
  EXPECT_THROW(ScorePolicy{nullptr}, core::SlackError);
}

}  // namespace
}  // namespace slackvm::sched
