#include "core/log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace slackvm::core {
namespace {

/// Captures std::clog for the duration of a test.
class ClogCapture {
 public:
  ClogCapture() : old_(std::clog.rdbuf(buffer_.rdbuf())) {}
  ~ClogCapture() { std::clog.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

/// Restores the global log level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

 private:
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, DefaultThresholdSuppressesInfo) {
  set_log_level(LogLevel::kWarn);
  ClogCapture capture;
  SLACKVM_LOG(kInfo) << "hidden";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, ErrorsAlwaysEmit) {
  set_log_level(LogLevel::kError);
  ClogCapture capture;
  SLACKVM_LOG(kError) << "boom " << 42;
  EXPECT_NE(capture.text().find("boom 42"), std::string::npos);
  EXPECT_NE(capture.text().find("ERROR"), std::string::npos);
}

TEST_F(LogTest, RaisingLevelEnablesDebug) {
  set_log_level(LogLevel::kDebug);
  ClogCapture capture;
  SLACKVM_LOG(kDebug) << "verbose";
  EXPECT_NE(capture.text().find("verbose"), std::string::npos);
  EXPECT_NE(capture.text().find("DEBUG"), std::string::npos);
}

TEST_F(LogTest, MessagesCarryTagAndNewline) {
  set_log_level(LogLevel::kInfo);
  ClogCapture capture;
  SLACKVM_LOG(kInfo) << "first";
  SLACKVM_LOG(kInfo) << "second";
  const std::string text = capture.text();
  EXPECT_NE(text.find("[slackvm INFO ] first\n"), std::string::npos);
  EXPECT_NE(text.find("[slackvm INFO ] second\n"), std::string::npos);
}

TEST_F(LogTest, SuppressedStatementDoesNotEvaluateStream) {
  set_log_level(LogLevel::kError);
  ClogCapture capture;
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  SLACKVM_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits below the threshold
  EXPECT_TRUE(capture.text().empty());
}

}  // namespace
}  // namespace slackvm::core
