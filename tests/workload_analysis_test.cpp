#include "workload/analysis.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace slackvm::workload {
namespace {

core::VmInstance make_vm(std::uint64_t id, core::SimTime arrival, core::SimTime departure,
                         core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = vcpus;
  vm.spec.mem_mib = mem;
  vm.spec.level = core::OversubLevel{ratio};
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

TEST(AnalysisTest, EmptyTrace) {
  const TraceStats stats = analyze(Trace{});
  EXPECT_EQ(stats.vm_count, 0U);
  EXPECT_EQ(stats.peak_population, 0U);
  EXPECT_DOUBLE_EQ(stats.peak_mc_ratio(), 0.0);
  EXPECT_TRUE(peak_snapshot(Trace{}).empty());
}

TEST(AnalysisTest, AveragesAndShares) {
  const Trace trace({
      make_vm(1, 0, 7200, 2, core::gib(4), 1),
      make_vm(2, 0, 3600, 4, core::gib(8), 3),
  });
  const TraceStats stats = analyze(trace);
  EXPECT_EQ(stats.vm_count, 2U);
  EXPECT_DOUBLE_EQ(stats.avg_vcpus, 3.0);
  EXPECT_DOUBLE_EQ(stats.avg_mem_gib, 6.0);
  EXPECT_DOUBLE_EQ(stats.avg_lifetime_hours, 1.5);
  EXPECT_DOUBLE_EQ(stats.level_share[1], 0.5);
  EXPECT_DOUBLE_EQ(stats.level_share[3], 0.5);
  EXPECT_DOUBLE_EQ(stats.level_share[2], 0.0);
}

TEST(AnalysisTest, PeakDemandUsesFractionalCores) {
  const Trace trace({
      make_vm(1, 0, 100, 2, core::gib(4), 1),   // 2 fractional cores
      make_vm(2, 10, 100, 6, core::gib(4), 3),  // 2 fractional cores
  });
  const TraceStats stats = analyze(trace);
  EXPECT_EQ(stats.peak_population, 2U);
  EXPECT_DOUBLE_EQ(stats.peak_frac_cores, 4.0);
  EXPECT_EQ(stats.peak_mem_mib, core::gib(8));
  EXPECT_DOUBLE_EQ(stats.peak_mc_ratio(), 2.0);
  EXPECT_DOUBLE_EQ(stats.peak_time, 10.0);
}

TEST(AnalysisTest, PeakSnapshotContainsExactlyAliveVms) {
  // Population peaks at 2 first at t=40 (VMs 1 and 2); the snapshot is
  // taken at that first peak instant, so VM 3 (arriving later) is absent.
  const Trace trace({
      make_vm(1, 0, 50, 1, core::gib(1), 1),
      make_vm(2, 40, 200, 2, core::gib(2), 1),
      make_vm(3, 60, 200, 4, core::gib(4), 1),
  });
  EXPECT_EQ(trace.peak_population(), 2U);
  const auto snapshot = peak_snapshot(trace);
  ASSERT_EQ(snapshot.size(), 2U);
  core::VcpuCount vcpus = 0;
  for (const auto& spec : snapshot) {
    vcpus += spec.vcpus;
  }
  EXPECT_EQ(vcpus, 3U);
}

TEST(AnalysisTest, DepartureAtPeakInstantExcluded) {
  // VM 1 departs exactly when VM 2 arrives: the snapshot at that instant
  // holds only VM 2 (slot freed at t is free at t).
  const Trace trace({
      make_vm(1, 0, 10, 8, core::gib(1), 1),
      make_vm(2, 10, 20, 2, core::gib(1), 1),
  });
  const auto snapshot = peak_snapshot(trace);
  ASSERT_EQ(snapshot.size(), 1U);
  // peak population 1 is reached first at t=0 by VM 1.
  EXPECT_EQ(snapshot.front().vcpus, 8U);
}

TEST(AnalysisTest, GeneratedTraceStatsMatchCatalog) {
  const Trace trace =
      Generator(azure_catalog(), distribution('A'),
                {.target_population = 300,
                 .horizon = 3.0 * 24 * 3600,
                 .mean_lifetime = 1.0 * 24 * 3600,
                 .seed = 3})
          .generate();
  const TraceStats stats = analyze(trace);
  // All 1:1 VMs from the full Azure catalog (Table I averages).
  EXPECT_DOUBLE_EQ(stats.level_share[1], 1.0);
  EXPECT_NEAR(stats.avg_vcpus, 2.25, 0.15);
  EXPECT_NEAR(stats.avg_mem_gib, 4.8, 0.5);
  // Blended 1:1 M/C ratio ~ 2.1 (Table II).
  EXPECT_NEAR(stats.peak_mc_ratio(), 2.13, 0.4);
}

}  // namespace
}  // namespace slackvm::workload
