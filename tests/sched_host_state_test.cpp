#include "sched/host_state.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

const core::Resources kWorker{32, gib(128)};

TEST(HostStateTest, StartsEmpty) {
  const HostState host(0, kWorker);
  EXPECT_TRUE(host.empty());
  EXPECT_EQ(host.alloc(), (core::Resources{}));
  EXPECT_EQ(host.unallocated(), kWorker);
}

TEST(HostStateTest, AddCommitsIntegerCores) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(4, gib(8), 3));  // ceil(4/3) = 2 cores
  EXPECT_EQ(host.alloc(), (core::Resources{2, gib(8)}));
  host.add(VmId{2}, spec(2, gib(4), 3));  // 6 vcpus at 3:1 -> 2 cores still
  EXPECT_EQ(host.alloc().cores, 2U);
  host.add(VmId{3}, spec(1, gib(1), 3));  // 7 vcpus -> 3 cores
  EXPECT_EQ(host.alloc().cores, 3U);
}

TEST(HostStateTest, LevelsAccountSeparately) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(3, gib(4), 2));  // 2 cores @2:1
  host.add(VmId{2}, spec(3, gib(4), 3));  // 1 core @3:1
  EXPECT_EQ(host.alloc().cores, 3U);
  EXPECT_EQ(host.committed_vcpus(OversubLevel{2}), 3U);
  EXPECT_EQ(host.committed_vcpus(OversubLevel{3}), 3U);
  EXPECT_EQ(host.committed_vcpus(OversubLevel{1}), 0U);
  const auto commitments = host.level_commitments();
  EXPECT_EQ(commitments.size(), 2U);
}

TEST(HostStateTest, CanHostChecksBothDimensions) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(30, gib(8), 1));
  EXPECT_TRUE(host.can_host(spec(2, gib(8), 1)));
  EXPECT_FALSE(host.can_host(spec(3, gib(8), 1)));     // 33 cores
  EXPECT_FALSE(host.can_host(spec(1, gib(121), 1)));   // memory
}

TEST(HostStateTest, OversubVmMayBeAbsorbedBySlack) {
  HostState host(0, core::Resources{2, gib(128)});
  host.add(VmId{1}, spec(3, gib(1), 2));  // 2 cores (ceil 3/2), host full on CPU
  // One more vCPU at 2:1 fits the existing rounding slack: ceil(4/2) = 2.
  EXPECT_TRUE(host.can_host(spec(1, gib(1), 2)));
  // But a 1:1 vCPU needs a new core.
  EXPECT_FALSE(host.can_host(spec(1, gib(1), 1)));
}

TEST(HostStateTest, RemoveRestoresState) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(4, gib(16), 2));
  host.add(VmId{2}, spec(2, gib(8), 1));
  host.remove(VmId{1});
  EXPECT_EQ(host.alloc(), (core::Resources{2, gib(8)}));
  host.remove(VmId{2});
  EXPECT_TRUE(host.empty());
  EXPECT_EQ(host.alloc(), (core::Resources{}));
}

TEST(HostStateTest, RemoveUnknownThrows) {
  HostState host(0, kWorker);
  EXPECT_THROW(host.remove(VmId{1}), core::SlackError);
}

TEST(HostStateTest, DuplicateAddThrows) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(1, gib(1), 1));
  EXPECT_THROW(host.add(VmId{1}, spec(1, gib(1), 1)), core::SlackError);
}

TEST(HostStateTest, CoresWithMatchesAddRemove) {
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(5, gib(4), 3));
  const VmSpec candidate = spec(2, gib(2), 3);
  const core::CoreCount predicted = host.cores_with(candidate);
  host.add(VmId{2}, candidate);
  EXPECT_EQ(host.alloc().cores, predicted);
}

TEST(HostStateTest, VcpuBudgetAtSingleLevelMatchesRatio) {
  // A dedicated 3:1 host accepts up to 96 vCPUs on 32 cores.
  HostState host(0, kWorker);
  for (std::uint64_t i = 0; i < 96; ++i) {
    ASSERT_TRUE(host.can_host(spec(1, gib(1), 3))) << i;
    host.add(VmId{i + 1}, spec(1, gib(1), 3));
  }
  EXPECT_FALSE(host.can_host(spec(1, gib(1), 3)));
  EXPECT_EQ(host.alloc().cores, 32U);
}

}  // namespace
}  // namespace slackvm::sched
