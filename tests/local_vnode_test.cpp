#include "local/vnode.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace slackvm::local {
namespace {

using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

TEST(VNodeTest, StartsEmpty) {
  const VNode node(0, OversubLevel{2}, 16);
  EXPECT_TRUE(node.empty());
  EXPECT_EQ(node.committed_vcpus(), 0U);
  EXPECT_EQ(node.committed_mem(), 0);
  EXPECT_EQ(node.required_cores(), 0U);
  EXPECT_TRUE(node.capacity_ok());
}

TEST(VNodeTest, AddVmAccumulatesCommitments) {
  VNode node(0, OversubLevel{2}, 16);
  node.add_vm(VmId{1}, spec(4, core::gib(8), 2));
  node.add_vm(VmId{2}, spec(2, core::gib(4), 2));
  EXPECT_EQ(node.committed_vcpus(), 6U);
  EXPECT_EQ(node.committed_mem(), core::gib(12));
  EXPECT_EQ(node.vm_count(), 2U);
  EXPECT_EQ(node.required_cores(), 3U);  // ceil(6/2)
}

TEST(VNodeTest, RemoveVmReleasesCommitments) {
  VNode node(0, OversubLevel{3}, 16);
  node.add_vm(VmId{1}, spec(3, core::gib(2), 3));
  node.add_vm(VmId{2}, spec(3, core::gib(2), 3));
  node.remove_vm(VmId{1});
  EXPECT_EQ(node.committed_vcpus(), 3U);
  EXPECT_EQ(node.committed_mem(), core::gib(2));
  EXPECT_FALSE(node.hosts(VmId{1}));
  EXPECT_TRUE(node.hosts(VmId{2}));
}

TEST(VNodeTest, DuplicateAddThrows) {
  VNode node(0, OversubLevel{1}, 8);
  node.add_vm(VmId{1}, spec(1, core::gib(1), 1));
  EXPECT_THROW(node.add_vm(VmId{1}, spec(1, core::gib(1), 1)), core::SlackError);
}

TEST(VNodeTest, RemoveUnknownThrows) {
  VNode node(0, OversubLevel{1}, 8);
  EXPECT_THROW(node.remove_vm(VmId{9}), core::SlackError);
}

TEST(VNodeTest, StricterVmRejected) {
  // A 1:1 VM must never land in a 3:1 node (the node's guarantee is weaker).
  VNode node(0, OversubLevel{3}, 8);
  EXPECT_THROW(node.add_vm(VmId{1}, spec(1, core::gib(1), 1)), core::SlackError);
}

TEST(VNodeTest, PooledLaxerVmAccepted) {
  // §V-B: a 3:1 VM may be upgraded into a 2:1 node.
  VNode node(0, OversubLevel{2}, 8);
  node.add_vm(VmId{1}, spec(2, core::gib(1), 3));
  EXPECT_EQ(node.strictest_hosted_level(), OversubLevel{2});
}

TEST(VNodeTest, CapacityInvariant) {
  VNode node(0, OversubLevel{2}, 8);
  topo::CpuSet cpus(8);
  cpus.set(0);
  cpus.set(1);
  node.assign_cpus(cpus);
  node.add_vm(VmId{1}, spec(4, core::gib(1), 2));
  EXPECT_TRUE(node.capacity_ok());  // 4 vCPUs on 2 cores at 2:1
  node.add_vm(VmId{2}, spec(1, core::gib(1), 2));
  EXPECT_FALSE(node.capacity_ok());  // 5 > 2*2
}

TEST(VNodeTest, RequiredCoresWithExtraVcpus) {
  VNode node(0, OversubLevel{3}, 8);
  node.add_vm(VmId{1}, spec(2, core::gib(1), 3));
  EXPECT_EQ(node.required_cores_with(1), 1U);  // 3 vCPUs / 3
  EXPECT_EQ(node.required_cores_with(2), 2U);  // 4 vCPUs / 3
}

TEST(VNodeTest, VmIdsAndSpecLookup) {
  VNode node(0, OversubLevel{1}, 8);
  node.add_vm(VmId{5}, spec(2, core::gib(4), 1));
  const auto ids = node.vm_ids();
  ASSERT_EQ(ids.size(), 1U);
  EXPECT_EQ(ids[0], VmId{5});
  EXPECT_EQ(node.spec_of(VmId{5}).vcpus, 2U);
  EXPECT_THROW((void)node.spec_of(VmId{6}), core::SlackError);
}

}  // namespace
}  // namespace slackvm::local
