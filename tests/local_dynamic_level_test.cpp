#include "local/dynamic_level.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "topology/builders.hpp"

namespace slackvm::local {
namespace {

using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

TEST(VNodeEffectiveLevel, DefaultsToContract) {
  VNode node(0, OversubLevel{3}, 8);
  EXPECT_EQ(node.effective_level(), OversubLevel{3});
}

TEST(VNodeEffectiveLevel, TighteningGrowsRequiredCores) {
  VNode node(0, OversubLevel{3}, 16);
  node.add_vm(VmId{1}, spec(6, core::gib(1), 3));
  EXPECT_EQ(node.required_cores(), 2U);  // 6 vcpus at 3:1
  node.set_effective_level(OversubLevel{2});
  EXPECT_EQ(node.required_cores(), 3U);  // 6 vcpus at 2:1
  node.set_effective_level(OversubLevel{1});
  EXPECT_EQ(node.required_cores(), 6U);
}

TEST(VNodeEffectiveLevel, LaxerThanContractRejected) {
  VNode node(0, OversubLevel{2}, 8);
  EXPECT_THROW(node.set_effective_level(OversubLevel{3}), core::SlackError);
}

TEST(ManagerRetune, TighteningGrowsCpuSet) {
  const topo::CpuTopology machine = topo::make_flat(8, core::gib(64));
  VNodeManager manager(machine);
  const auto deployed = manager.deploy(VmId{1}, spec(6, core::gib(4), 3));
  ASSERT_TRUE(deployed.has_value());
  EXPECT_EQ(manager.alloc().cores, 2U);

  const auto repins = manager.retune(deployed->vnode, OversubLevel{1});
  ASSERT_TRUE(repins.has_value());
  EXPECT_EQ(manager.alloc().cores, 6U);
  ASSERT_EQ(repins->size(), 1U);
  EXPECT_EQ(repins->front().cpus.count(), 6U);
  manager.check_invariants();
}

TEST(ManagerRetune, RelaxingShrinksCpuSet) {
  const topo::CpuTopology machine = topo::make_flat(8, core::gib(64));
  VNodeManager manager(machine);
  const auto deployed = manager.deploy(VmId{1}, spec(6, core::gib(4), 3));
  ASSERT_TRUE(deployed.has_value());
  ASSERT_TRUE(manager.retune(deployed->vnode, OversubLevel{1}).has_value());
  ASSERT_TRUE(manager.retune(deployed->vnode, OversubLevel{3}).has_value());
  EXPECT_EQ(manager.alloc().cores, 2U);
  manager.check_invariants();
}

TEST(ManagerRetune, FailsWithoutFreeCpusAndKeepsState) {
  const topo::CpuTopology machine = topo::make_flat(4, core::gib(64));
  VNodeManager manager(machine);
  const auto n3 = manager.deploy(VmId{1}, spec(6, core::gib(4), 3));  // 2 cores
  ASSERT_TRUE(n3.has_value());
  ASSERT_TRUE(manager.deploy(VmId{2}, spec(2, core::gib(4), 1)));     // 2 cores -> full
  EXPECT_FALSE(manager.retune(n3->vnode, OversubLevel{1}).has_value());
  // State unchanged: still 3:1 effective, still 2 cores.
  EXPECT_EQ(manager.vnodes().at(n3->vnode).effective_level(), OversubLevel{3});
  EXPECT_EQ(manager.vnodes().at(n3->vnode).core_count(), 2U);
  manager.check_invariants();
}

TEST(ManagerRetune, UnknownNodeOrLaxerLevelThrows) {
  const topo::CpuTopology machine = topo::make_flat(4, core::gib(64));
  VNodeManager manager(machine);
  EXPECT_THROW((void)manager.retune(7, OversubLevel{1}), core::SlackError);
  const auto n2 = manager.deploy(VmId{1}, spec(2, core::gib(2), 2));
  ASSERT_TRUE(n2.has_value());
  EXPECT_THROW((void)manager.retune(n2->vnode, OversubLevel{3}), core::SlackError);
}

TEST(ManagerRetune, DeploymentsRespectEffectiveLevel) {
  const topo::CpuTopology machine = topo::make_flat(8, core::gib(64));
  VNodeManager manager(machine);
  const auto n3 = manager.deploy(VmId{1}, spec(3, core::gib(2), 3));  // 1 core
  ASSERT_TRUE(n3.has_value());
  ASSERT_TRUE(manager.retune(n3->vnode, OversubLevel{2}).has_value());  // 2 cores now
  // A new 3:1 VM joins the node but is sized at the effective 2:1 ratio.
  ASSERT_TRUE(manager.deploy(VmId{2}, spec(3, core::gib(2), 3)));
  EXPECT_EQ(manager.vnodes().at(n3->vnode).core_count(), 3U);  // ceil(6/2)
  manager.check_invariants();
}

class ControllerTest : public ::testing::Test {
 protected:
  const topo::CpuTopology machine_ = topo::make_flat(16, core::gib(64));
  VNodeManager manager_{machine_};
  core::MaxPredictor predictor_;
  DynamicLevelController controller_{predictor_};
};

TEST_F(ControllerTest, RecommendTightensUnderHighUsage) {
  const std::vector<double> busy{0.9, 0.95, 0.85};
  EXPECT_EQ(controller_.recommend(busy, OversubLevel{3}), OversubLevel{1});
  const std::vector<double> medium{0.4, 0.45, 0.5};
  EXPECT_EQ(controller_.recommend(medium, OversubLevel{3}), OversubLevel{2});
  const std::vector<double> idle{0.05, 0.1, 0.08};
  EXPECT_EQ(controller_.recommend(idle, OversubLevel{3}), OversubLevel{3});
}

TEST_F(ControllerTest, RetuneAllSkipsPremiumNodes) {
  ASSERT_TRUE(manager_.deploy(core::VmId{1}, spec(2, core::gib(2), 1)));
  ASSERT_TRUE(manager_.deploy(core::VmId{2}, spec(6, core::gib(2), 3)));
  const auto outcomes = controller_.retune_all(
      manager_, [](const VNode&) { return std::vector<double>{0.9}; });
  ASSERT_EQ(outcomes.size(), 1U);  // only the 3:1 node is considered
  EXPECT_EQ(outcomes.front().contract, OversubLevel{3});
  EXPECT_EQ(outcomes.front().target, OversubLevel{1});
  EXPECT_TRUE(outcomes.front().applied);
  // The 3:1 node now owns 6 cores.
  EXPECT_EQ(manager_.vnodes().at(outcomes.front().vnode).core_count(), 6U);
  manager_.check_invariants();
}

TEST_F(ControllerTest, RetuneAllRelaxesWhenUsageDrops) {
  ASSERT_TRUE(manager_.deploy(core::VmId{1}, spec(6, core::gib(2), 3)));
  const auto busy = controller_.retune_all(
      manager_, [](const VNode&) { return std::vector<double>{0.9}; });
  ASSERT_TRUE(busy.front().applied);
  const auto relaxed = controller_.retune_all(
      manager_, [](const VNode&) { return std::vector<double>{0.1}; });
  ASSERT_EQ(relaxed.size(), 1U);
  EXPECT_EQ(relaxed.front().previous, OversubLevel{1});
  EXPECT_EQ(relaxed.front().target, OversubLevel{3});
  EXPECT_TRUE(relaxed.front().applied);
  EXPECT_EQ(manager_.alloc().cores, 2U);
  manager_.check_invariants();
}

TEST_F(ControllerTest, RetuneAllReportsUnappliedWhenFull) {
  // Fill the PM so tightening is impossible.
  ASSERT_TRUE(manager_.deploy(core::VmId{1}, spec(12, core::gib(2), 1)));
  ASSERT_TRUE(manager_.deploy(core::VmId{2}, spec(12, core::gib(2), 3)));  // 4 cores
  const auto outcomes = controller_.retune_all(
      manager_, [](const VNode&) { return std::vector<double>{0.95}; });
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_FALSE(outcomes.front().applied);
  manager_.check_invariants();
}

TEST_F(ControllerTest, EmptyUsageWindowFailsSafeToPremium) {
  ASSERT_TRUE(manager_.deploy(core::VmId{1}, spec(3, core::gib(2), 3)));
  const auto outcomes = controller_.retune_all(
      manager_, [](const VNode&) { return std::vector<double>{}; });
  ASSERT_EQ(outcomes.size(), 1U);
  EXPECT_EQ(outcomes.front().target, OversubLevel{1});
  EXPECT_TRUE(outcomes.front().applied);
}

}  // namespace
}  // namespace slackvm::local
