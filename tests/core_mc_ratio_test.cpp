// Unit tests for Algorithm 2 (progress towards target ratio).
#include "core/mc_ratio.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace slackvm::core {
namespace {

// The simulator worker used throughout the evaluation: M/C target = 4.
const Resources kWorker{32, gib(128)};

ProgressInputs make(Resources alloc, Resources vm) {
  return ProgressInputs{kWorker, alloc, vm};
}

TEST(ProgressScore, BalancingVmScoresPositive) {
  // Host is CPU-heavy (ratio 2 < target 4); a memory-heavy VM helps.
  const double score = progress_towards_target_ratio(
      make(Resources{8, gib(16)}, Resources{1, gib(16)}));
  EXPECT_GT(score, 0.0);
}

TEST(ProgressScore, WorseningVmScoresNegative) {
  // Host is already CPU-heavy; a pure-CPU VM makes it worse.
  const double score = progress_towards_target_ratio(
      make(Resources{8, gib(16)}, Resources{4, gib(1)}));
  EXPECT_LT(score, 0.0);
}

TEST(ProgressScore, IdlePmTreatedAsIdealRatio) {
  // Line 6: on an empty PM currentRatio = targetRatio, so progress is
  // -|vmRatio - target| * factor <= 0, and it is 0 only for a perfectly
  // balanced VM.
  const double balanced = progress_towards_target_ratio(
      make(Resources{}, Resources{2, gib(8)}));  // ratio 4 == target
  EXPECT_DOUBLE_EQ(balanced, 0.0);

  const double unbalanced = progress_towards_target_ratio(
      make(Resources{}, Resources{4, gib(4)}));  // ratio 1
  EXPECT_LT(unbalanced, 0.0);
}

TEST(ProgressScore, BusyPmPreferredOverIdleForCorrectiveVm) {
  // A memory-heavy VM on a CPU-heavy busy PM must outscore the same VM on
  // an idle PM: this is what makes the scorer consolidate.
  const Resources vm{1, gib(12)};
  const double busy =
      progress_towards_target_ratio(make(Resources{8, gib(8)}, vm));  // ratio 1
  const double idle = progress_towards_target_ratio(make(Resources{}, vm));
  EXPECT_GT(busy, idle);
}

TEST(ProgressScore, NegativeProgressAmplifiedByLoad) {
  // Lines 12-15: for the same ratio trajectory (current 4 -> next 2.5, i.e.
  // identical raw delta), the worsening deployment hurts more on a loaded
  // PM because the load factor amplifies negative progress.
  const double lightly_loaded = progress_towards_target_ratio(
      make(Resources{4, gib(16)}, Resources{4, gib(4)}));
  const double heavily_loaded = progress_towards_target_ratio(
      make(Resources{28, gib(112)}, Resources{28, gib(28)}));
  ASSERT_LT(lightly_loaded, 0.0);
  ASSERT_LT(heavily_loaded, 0.0);
  EXPECT_LT(heavily_loaded, lightly_loaded);  // more negative
}

TEST(ProgressScore, PositiveProgressNotAmplified) {
  // The load factor (lines 12-15) only applies to negative progress.
  const Resources vm{1, gib(16)};  // strongly corrective on a CPU-heavy host
  const double light =
      progress_towards_target_ratio(make(Resources{4, gib(4)}, vm));
  ASSERT_GT(light, 0.0);
  // Score equals the plain delta difference: recompute by hand.
  const double current_delta = std::abs(1.0 - 4.0);
  const double next_delta = std::abs((4.0 + 16.0) / (4.0 + 1.0) - 4.0);
  EXPECT_DOUBLE_EQ(light, current_delta - next_delta);
}

TEST(ProgressScore, PerfectFinishScoresMaximal) {
  // Host at 24c/120GiB allocated; a VM bringing it exactly to 32c/128GiB
  // target ratio 4 achieves next_delta == 0, the best possible outcome.
  const Resources alloc{24, gib(120)};
  const Resources vm{8, gib(8)};
  const double score = progress_towards_target_ratio(make(alloc, vm));
  const double current_delta = std::abs(5.0 - 4.0);
  EXPECT_DOUBLE_EQ(score, current_delta);
}

TEST(ProgressScore, MemoryOnlyVmHandled) {
  // A VM whose cores were absorbed by vNode slack (delta cores == 0).
  const double score = progress_towards_target_ratio(
      make(Resources{8, gib(16)}, Resources{0, gib(8)}));
  EXPECT_GT(score, 0.0);  // raises ratio 2 -> 3, closer to 4
}

TEST(ProgressScore, HeterogeneousHardwareUsesOwnTarget) {
  // A memory-rich PM (target 8) scores the same VM differently from the
  // standard worker: Algorithm 2 is per-PM.
  const Resources fat_config{32, gib(256)};
  const Resources alloc{8, gib(32)};  // ratio 4
  const Resources vm{2, gib(4)};      // ratio 2, pulls away from 8
  const double fat = progress_towards_target_ratio({fat_config, alloc, vm});
  const double std_worker = progress_towards_target_ratio({kWorker, alloc, vm});
  EXPECT_LT(fat, 0.0);        // moves away from 8
  EXPECT_LT(std_worker, 0.0); // ratio 4 was perfect; any VM below 4 hurts
  EXPECT_NE(fat, std_worker);
}

TEST(RatioDelta, ZeroWhenEmptyOrOnTarget) {
  EXPECT_DOUBLE_EQ(ratio_delta(Resources{}, kWorker), 0.0);
  EXPECT_DOUBLE_EQ(ratio_delta(Resources{16, gib(64)}, kWorker), 0.0);
  EXPECT_DOUBLE_EQ(ratio_delta(Resources{16, gib(32)}, kWorker), 2.0);
}

// Parameterized property sweep: for any current allocation, a VM that moves
// the ratio strictly toward the target never scores negative, and a VM that
// moves it strictly away never scores positive.
struct AllocCase {
  CoreCount cores;
  std::int64_t mem_gib;
};

class ProgressDirectionProperty : public ::testing::TestWithParam<AllocCase> {};

TEST_P(ProgressDirectionProperty, SignMatchesDirection) {
  const auto [cores, mem_gib] = GetParam();
  const Resources alloc{cores, gib(mem_gib)};
  const double target = 4.0;
  const double current = mib_to_gib(alloc.mem_mib) / cores;

  for (CoreCount vc = 1; vc <= 4; ++vc) {
    for (std::int64_t vm_gib = 1; vm_gib <= 32; vm_gib *= 2) {
      const Resources vm{vc, gib(vm_gib)};
      const Resources next_alloc = alloc + vm;
      const double next = mib_to_gib(next_alloc.mem_mib) / next_alloc.cores;
      const double score = progress_towards_target_ratio(make(alloc, vm));
      if (std::abs(next - target) < std::abs(current - target)) {
        EXPECT_GE(score, 0.0) << "alloc " << to_string(alloc) << " vm " << to_string(vm);
      } else if (std::abs(next - target) > std::abs(current - target)) {
        EXPECT_LE(score, 0.0) << "alloc " << to_string(alloc) << " vm " << to_string(vm);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProgressDirectionProperty,
                         ::testing::Values(AllocCase{4, 4}, AllocCase{4, 32},
                                           AllocCase{8, 32}, AllocCase{16, 64},
                                           AllocCase{16, 16}, AllocCase{24, 120},
                                           AllocCase{1, 1}, AllocCase{31, 124}));

}  // namespace
}  // namespace slackvm::core
