#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/error.hpp"

namespace slackvm::workload {
namespace {

GeneratorConfig small_config(std::uint64_t seed = 1) {
  GeneratorConfig cfg;
  cfg.target_population = 100;
  cfg.horizon = 3.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  return cfg;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const Generator gen_a(azure_catalog(), distribution('F'), small_config(7));
  const Generator gen_b(azure_catalog(), distribution('F'), small_config(7));
  const Trace a = gen_a.generate();
  const Trace b = gen_b.generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.vms()[i].id, b.vms()[i].id);
    EXPECT_EQ(a.vms()[i].spec, b.vms()[i].spec);
    EXPECT_DOUBLE_EQ(a.vms()[i].arrival, b.vms()[i].arrival);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Trace a = Generator(azure_catalog(), distribution('F'), small_config(1)).generate();
  const Trace b = Generator(azure_catalog(), distribution('F'), small_config(2)).generate();
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a.vms().front().spec, b.vms().front().spec);
}

TEST(GeneratorTest, PopulationApproachesTarget) {
  const Trace trace =
      Generator(azure_catalog(), distribution('E'), small_config(3)).generate();
  // After the ramp-up the concurrent population should hover near the
  // target; the peak must be within a factor band.
  EXPECT_GT(trace.peak_population(), 70U);
  EXPECT_LT(trace.peak_population(), 160U);
}

TEST(GeneratorTest, EventsWithinHorizon) {
  const GeneratorConfig cfg = small_config(4);
  const Trace trace = Generator(ovhcloud_catalog(), distribution('H'), cfg).generate();
  for (const auto& vm : trace.vms()) {
    EXPECT_GE(vm.arrival, 0.0);
    EXPECT_LT(vm.arrival, cfg.horizon);
    EXPECT_LE(vm.departure, cfg.horizon);
    EXPECT_GT(vm.departure, vm.arrival);
  }
}

TEST(GeneratorTest, LevelSharesRespected) {
  const Trace trace =
      Generator(azure_catalog(), distribution('E'), small_config(5)).generate();
  std::array<std::size_t, 4> counts{};
  for (const auto& vm : trace.vms()) {
    ++counts[vm.spec.level.ratio()];
  }
  const double n = static_cast<double>(trace.size());
  ASSERT_GT(n, 100);
  // E = 50/25/25.
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.50, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.06);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.25, 0.06);
}

TEST(GeneratorTest, OversubscribedVmsRespectMemoryCap) {
  const Trace trace =
      Generator(ovhcloud_catalog(), distribution('O'), small_config(6)).generate();
  for (const auto& vm : trace.vms()) {
    ASSERT_TRUE(vm.spec.level.oversubscribed());
    EXPECT_LE(vm.spec.mem_mib, kOversubMemCap);
  }
}

TEST(GeneratorTest, PremiumVmsUseFullCatalog) {
  const Trace trace =
      Generator(ovhcloud_catalog(), distribution('A'), small_config(8)).generate();
  bool saw_large = false;
  for (const auto& vm : trace.vms()) {
    if (vm.spec.mem_mib > kOversubMemCap) {
      saw_large = true;
    }
  }
  EXPECT_TRUE(saw_large);  // the full OVH catalog includes > 8 GiB flavors
}

TEST(GeneratorTest, UsageMixMatchesConfiguredShares) {
  GeneratorConfig cfg = small_config(9);
  cfg.target_population = 400;
  const Trace trace = Generator(azure_catalog(), distribution('E'), cfg).generate();
  std::size_t idle = 0;
  std::size_t steady = 0;
  std::size_t interactive = 0;
  for (const auto& vm : trace.vms()) {
    switch (vm.spec.usage) {
      case core::UsageClass::kIdle:
        ++idle;
        break;
      case core::UsageClass::kSteady:
        ++steady;
        break;
      case core::UsageClass::kInteractive:
        ++interactive;
        break;
      default:
        break;
    }
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(idle) / n, 0.10, 0.03);
  EXPECT_NEAR(static_cast<double>(steady) / n, 0.60, 0.04);
  EXPECT_NEAR(static_cast<double>(interactive) / n, 0.30, 0.04);
}

TEST(GeneratorTest, ArrivalRateMatchesLittlesLaw) {
  const GeneratorConfig cfg = small_config(10);
  const Trace trace = Generator(azure_catalog(), distribution('E'), cfg).generate();
  const double expected =
      static_cast<double>(cfg.target_population) / cfg.mean_lifetime * cfg.horizon;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.15);
}

TEST(GeneratorTest, DiurnalAmplitudeModulatesArrivals) {
  GeneratorConfig cfg = small_config(11);
  cfg.target_population = 600;
  cfg.horizon = 4.0 * 24 * 3600;
  cfg.diurnal_amplitude = 0.8;
  const Trace trace = Generator(azure_catalog(), distribution('E'), cfg).generate();

  // Arrivals in the sine peak window (hours 3-9 of each day) must outnumber
  // those in the trough (hours 15-21) by roughly (1+A)/(1-A).
  std::size_t peak = 0;
  std::size_t trough = 0;
  for (const auto& vm : trace.vms()) {
    const double hour = std::fmod(vm.arrival / 3600.0, 24.0);
    if (hour >= 3.0 && hour < 9.0) {
      ++peak;
    } else if (hour >= 15.0 && hour < 21.0) {
      ++trough;
    }
  }
  ASSERT_GT(trough, 0U);
  const double ratio = static_cast<double>(peak) / static_cast<double>(trough);
  EXPECT_GT(ratio, 2.0);  // (1+0.8)/(1-0.8) = 9 in the extreme bins
}

TEST(GeneratorTest, DiurnalPreservesMeanRate) {
  GeneratorConfig flat = small_config(12);
  flat.horizon = 4.0 * 24 * 3600;
  GeneratorConfig wavy = flat;
  wavy.diurnal_amplitude = 0.5;
  const std::size_t flat_n =
      Generator(azure_catalog(), distribution('E'), flat).generate().size();
  const std::size_t wavy_n =
      Generator(azure_catalog(), distribution('E'), wavy).generate().size();
  EXPECT_NEAR(static_cast<double>(wavy_n), static_cast<double>(flat_n),
              static_cast<double>(flat_n) * 0.15);
}

TEST(GeneratorTest, InvalidAmplitudeRejected) {
  GeneratorConfig cfg = small_config(13);
  cfg.diurnal_amplitude = 1.0;
  EXPECT_THROW(Generator(azure_catalog(), distribution('E'), cfg), core::SlackError);
}

}  // namespace
}  // namespace slackvm::workload
