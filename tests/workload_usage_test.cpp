#include "workload/usage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace slackvm::workload {
namespace {

TEST(UsageSignalTest, BoundedToUnitInterval) {
  for (const auto usage : {core::UsageClass::kIdle, core::UsageClass::kSteady,
                           core::UsageClass::kBursty, core::UsageClass::kInteractive}) {
    const UsageSignal signal(core::VmId{42}, usage);
    for (core::SimTime t = 0; t < 48 * 3600; t += 613) {
      const double u = signal.at(t);
      ASSERT_GE(u, 0.0);
      ASSERT_LE(u, 1.0);
    }
  }
}

TEST(UsageSignalTest, IdleStaysNearZero) {
  const UsageSignal signal(core::VmId{1}, core::UsageClass::kIdle);
  for (core::SimTime t = 0; t < 24 * 3600; t += 997) {
    EXPECT_LT(signal.at(t), 0.06);
  }
}

TEST(UsageSignalTest, SteadyIsHighAndFlat) {
  const UsageSignal signal(core::VmId{2}, core::UsageClass::kSteady);
  double lo = 1.0;
  double hi = 0.0;
  for (core::SimTime t = 0; t < 24 * 3600; t += 311) {
    const double u = signal.at(t);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(lo, 0.45);
  EXPECT_LT(hi - lo, 0.15);  // near constant
}

TEST(UsageSignalTest, BurstySwingsWidely) {
  const UsageSignal signal(core::VmId{3}, core::UsageClass::kBursty);
  double lo = 1.0;
  double hi = 0.0;
  for (core::SimTime t = 0; t < 24 * 3600; t += 97) {
    const double u = signal.at(t);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi - lo, 0.4);
}

TEST(UsageSignalTest, InteractiveIsDiurnal) {
  const UsageSignal signal(core::VmId{4}, core::UsageClass::kInteractive);
  // Samples 12 hours apart sit on opposite sides of the diurnal swing.
  const double morning = signal.at(6 * 3600);
  const double evening = signal.at(18 * 3600);
  EXPECT_GT(std::abs(morning - evening), 0.1);
}

TEST(UsageSignalTest, DeterministicPerVmId) {
  const UsageSignal a(core::VmId{5}, core::UsageClass::kBursty);
  const UsageSignal b(core::VmId{5}, core::UsageClass::kBursty);
  for (core::SimTime t = 0; t < 3600; t += 60) {
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
  }
}

TEST(UsageSignalTest, DifferentVmsDecorrelated) {
  const UsageSignal a(core::VmId{6}, core::UsageClass::kInteractive);
  const UsageSignal b(core::VmId{7}, core::UsageClass::kInteractive);
  bool differs = false;
  for (core::SimTime t = 0; t < 3600 && !differs; t += 60) {
    differs = std::abs(a.at(t) - b.at(t)) > 1e-6;
  }
  EXPECT_TRUE(differs);
}

TEST(UsageSignalTest, MeanReflectsClass) {
  EXPECT_LT(UsageSignal(core::VmId{8}, core::UsageClass::kIdle).mean(), 0.05);
  EXPECT_GT(UsageSignal(core::VmId{9}, core::UsageClass::kSteady).mean(), 0.5);
}

}  // namespace
}  // namespace slackvm::workload
