#include "workload/level_mix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/error.hpp"

namespace slackvm::workload {
namespace {

TEST(LevelMixTest, PaperGridHasFifteenDistributions) {
  const auto& dists = paper_distributions();
  ASSERT_EQ(dists.size(), 15U);
  EXPECT_EQ(dists.front().name, "A");
  EXPECT_EQ(dists.back().name, "O");
}

TEST(LevelMixTest, EndpointsMatchPaper) {
  // A = only 1:1, O = only 3:1 (§VII-B2).
  const LevelMix& a = distribution('A');
  EXPECT_DOUBLE_EQ(a.share_1to1, 1.0);
  EXPECT_DOUBLE_EQ(a.share_3to1, 0.0);
  const LevelMix& o = distribution('O');
  EXPECT_DOUBLE_EQ(o.share_3to1, 1.0);
  EXPECT_DOUBLE_EQ(o.share_1to1, 0.0);
}

TEST(LevelMixTest, FIsTheHeadlineSplit) {
  // Distribution F: 50% at 1:1 and 50% at 3:1 — the 9.6% saving scenario.
  const LevelMix& f = distribution('F');
  EXPECT_DOUBLE_EQ(f.share_1to1, 0.5);
  EXPECT_DOUBLE_EQ(f.share_2to1, 0.0);
  EXPECT_DOUBLE_EQ(f.share_3to1, 0.5);
}

TEST(LevelMixTest, No3to1SetMatchesPaper) {
  // The paper notes A, B, D, G, K carry no 3:1 VMs.
  for (char letter : {'A', 'B', 'D', 'G', 'K'}) {
    EXPECT_DOUBLE_EQ(distribution(letter).share_3to1, 0.0) << letter;
  }
  for (char letter : {'C', 'E', 'F', 'H', 'I', 'J', 'L', 'M', 'N', 'O'}) {
    EXPECT_GT(distribution(letter).share_3to1, 0.0) << letter;
  }
}

TEST(LevelMixTest, AllDistributionsValid) {
  for (const LevelMix& mix : paper_distributions()) {
    EXPECT_TRUE(mix.valid()) << mix.name;
  }
}

TEST(LevelMixTest, ShareLookupByLevel) {
  const LevelMix mix = make_mix(25, 50, 25);
  EXPECT_DOUBLE_EQ(mix.share(core::OversubLevel{1}), 0.25);
  EXPECT_DOUBLE_EQ(mix.share(core::OversubLevel{2}), 0.50);
  EXPECT_DOUBLE_EQ(mix.share(core::OversubLevel{3}), 0.25);
  EXPECT_DOUBLE_EQ(mix.share(core::OversubLevel{4}), 0.0);
}

TEST(LevelMixTest, DefaultNameEncodesShares) {
  EXPECT_EQ(make_mix(50, 25, 25).name, "50/25/25");
  EXPECT_EQ(make_mix(50, 25, 25, "custom").name, "custom");
}

TEST(LevelMixTest, InvalidSharesRejected) {
  EXPECT_THROW((void)make_mix(50, 50, 50), core::SlackError);
}

TEST(LevelMixTest, OutOfRangeLetterThrows) {
  EXPECT_THROW((void)distribution('P'), core::SlackError);
  EXPECT_THROW((void)distribution('a'), core::SlackError);
}

TEST(LevelMixTest, SamplingFollowsShares) {
  const LevelMix mix = make_mix(20, 30, 50);
  core::SplitMix64 rng(3);
  std::array<int, 4> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[mix.sample(rng).ratio()];
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.20, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.30, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.50, 0.01);
}

TEST(LevelMixTest, DegenerateMixAlwaysSamplesItsLevel) {
  const LevelMix mix = make_mix(0, 0, 100);
  core::SplitMix64 rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mix.sample(rng), core::OversubLevel{3});
  }
}

// Property: every grid distribution sums shares to 1 and steps by 25%.
class GridProperty : public ::testing::TestWithParam<int> {};

TEST_P(GridProperty, SharesAreQuarters) {
  const LevelMix& mix = paper_distributions()[static_cast<std::size_t>(GetParam())];
  for (double share : {mix.share_1to1, mix.share_2to1, mix.share_3to1}) {
    const double quarters = share * 4.0;
    EXPECT_NEAR(quarters, std::round(quarters), 1e-9) << mix.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, GridProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace slackvm::workload
