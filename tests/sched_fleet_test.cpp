#include "sched/fleet.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sched/policy.hpp"
#include "sched/vcluster.hpp"
#include "sim/datacenter.hpp"
#include "sim/replay.hpp"
#include "workload/generator.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

TEST(FleetSpecTest, UniformCycles) {
  const FleetSpec fleet = FleetSpec::uniform({32, gib(128)});
  EXPECT_FALSE(fleet.heterogeneous());
  for (HostId id = 0; id < 5; ++id) {
    EXPECT_EQ(fleet.config_for(id), (core::Resources{32, gib(128)}));
  }
}

TEST(FleetSpecTest, CyclesRoundRobin) {
  const FleetSpec fleet({{16, gib(64)}, {32, gib(256)}});
  EXPECT_TRUE(fleet.heterogeneous());
  EXPECT_EQ(fleet.config_for(0).cores, 16U);
  EXPECT_EQ(fleet.config_for(1).cores, 32U);
  EXPECT_EQ(fleet.config_for(2).cores, 16U);
  EXPECT_EQ(fleet.config_for(7).cores, 32U);
}

TEST(FleetSpecTest, MaxConfigTakesComponentWiseMax) {
  const FleetSpec fleet({{16, gib(256)}, {48, gib(64)}});
  EXPECT_EQ(fleet.max_config(), (core::Resources{48, gib(256)}));
}

TEST(FleetSpecTest, EmptyOrDegenerateRejected) {
  EXPECT_THROW(FleetSpec({}), core::SlackError);
  EXPECT_THROW(FleetSpec({{0, gib(1)}}), core::SlackError);
}

TEST(FleetSpecTest, ToStringListsCycle) {
  const FleetSpec fleet({{16, gib(64)}, {32, gib(128)}});
  EXPECT_EQ(fleet.to_string(), "fleet[16c/64GiB, 32c/128GiB]");
}

TEST(FleetVCluster, OpensFleetConfigsInOrder) {
  VCluster cluster("het", FleetSpec({{8, gib(32)}, {32, gib(128)}}),
                   make_first_fit());
  cluster.place(VmId{1}, spec(8, gib(8), 1));   // fills PM 0 (8 cores)
  cluster.place(VmId{2}, spec(8, gib(8), 1));   // opens PM 1 (32 cores)
  ASSERT_EQ(cluster.opened_hosts(), 2U);
  EXPECT_EQ(cluster.hosts()[0].config().cores, 8U);
  EXPECT_EQ(cluster.hosts()[1].config().cores, 32U);
}

TEST(FleetVCluster, SkipsTooSmallPmInCycle) {
  // A VM needing 16 cores cannot use the 8-core generation: the cluster
  // keeps opening PMs until the cycle supplies one that fits.
  VCluster cluster("het", FleetSpec({{8, gib(32)}, {32, gib(128)}}),
                   make_first_fit());
  const HostId host = cluster.place(VmId{1}, spec(16, gib(8), 1));
  EXPECT_EQ(cluster.hosts()[host].config().cores, 32U);
}

TEST(FleetVCluster, ImpossibleVmThrows) {
  VCluster cluster("het", FleetSpec({{8, gib(32)}, {16, gib(64)}}),
                   make_first_fit());
  EXPECT_THROW(cluster.place(VmId{1}, spec(17, gib(8), 1)), core::SlackError);
}

TEST(FleetVCluster, ProgressScoreRoutesByTargetRatio) {
  // One CPU-rich PM (M/C 2) and one memory-rich PM (M/C 8) are open. The
  // progress score sends a CPU-bound VM to the CPU-rich PM and a
  // memory-bound VM to the memory-rich one; First-Fit sends both to PM 0.
  const FleetSpec fleet({{32, gib(64)}, {32, gib(256)}});
  VCluster progress("p", fleet, make_progress_policy());
  // Open both PMs: the second seed VM exceeds PM 0's remaining memory.
  // PM 0 (target 2) ends up memory-heavy (ratio 10.25), PM 1 (target 8)
  // CPU-heavy (ratio 3) — each needs the opposite kind of VM.
  progress.place(VmId{1}, spec(4, gib(41), 1));
  progress.place(VmId{2}, spec(8, gib(24), 1));
  ASSERT_EQ(progress.opened_hosts(), 2U);

  // A CPU-bound VM corrects PM 0 toward its low target.
  const HostId cpu_vm = progress.place(VmId{3}, spec(4, gib(1), 1));
  EXPECT_EQ(cpu_vm, 0U);
  // A memory-bound VM corrects PM 1 toward its high target.
  const HostId mem_vm = progress.place(VmId{4}, spec(1, gib(16), 1));
  EXPECT_EQ(mem_vm, 1U);
}

TEST(FleetDatacenter, SharedFleetReplaysWholeTrace) {
  const workload::Trace trace =
      workload::Generator(workload::ovhcloud_catalog(), workload::distribution('E'),
                          {.target_population = 80,
                           .horizon = 2.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 5})
          .generate();
  const FleetSpec fleet({{32, core::gib(96)}, {32, core::gib(192)}});
  sim::Datacenter dc = sim::Datacenter::shared_fleet(fleet, make_progress_policy);
  const sim::RunResult result = sim::replay(dc, trace);
  EXPECT_EQ(result.placed_vms, trace.size());
  EXPECT_GT(result.opened_pms, 0U);
}

TEST(FleetDatacenter, SlackVmPolicyMatchesFirstFitOnMixedFleet) {
  // The composite policy (progress + packing pressure, §VII-B2's "weighted
  // alongside other criteria") must never lose to plain First-Fit.
  const workload::Trace trace =
      workload::Generator(workload::ovhcloud_catalog(), workload::distribution('F'),
                          {.target_population = 120,
                           .horizon = 3.0 * 24 * 3600,
                           .mean_lifetime = 1.5 * 24 * 3600,
                           .seed = 9})
          .generate();
  const FleetSpec fleet({{32, core::gib(96)}, {32, core::gib(192)}});
  sim::Datacenter ff = sim::Datacenter::shared_fleet(fleet, make_first_fit);
  sim::Datacenter slack = sim::Datacenter::shared_fleet(
      fleet, [] { return make_slackvm_policy(); });
  const auto ff_result = sim::replay(ff, trace);
  const auto slack_result = sim::replay(slack, trace);
  EXPECT_LE(slack_result.opened_pms, ff_result.opened_pms);
}

TEST(SlackVmPolicy, NameReflectsComposition) {
  EXPECT_EQ(make_slackvm_policy(0.25)->name(),
            "score(composite(1*progress-to-target-ratio+0.25*best-fit))");
}

}  // namespace
}  // namespace slackvm::sched
