#include "sim/datacenter.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sched/policy.hpp"

namespace slackvm::sim {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

const core::Resources kWorker{32, gib(128)};

std::vector<OversubLevel> all_levels() {
  return {OversubLevel{1}, OversubLevel{2}, OversubLevel{3}};
}

TEST(DatacenterTest, DedicatedRoutesByLevel) {
  Datacenter dc = Datacenter::dedicated(kWorker, all_levels(), sched::make_first_fit);
  dc.deploy(VmId{1}, spec(2, gib(4), 1));
  dc.deploy(VmId{2}, spec(2, gib(4), 2));
  dc.deploy(VmId{3}, spec(2, gib(4), 3));
  const auto opened = dc.opened_per_cluster();
  EXPECT_EQ(opened.at("dedicated-1:1"), 1U);
  EXPECT_EQ(opened.at("dedicated-2:1"), 1U);
  EXPECT_EQ(opened.at("dedicated-3:1"), 1U);
  EXPECT_EQ(dc.opened_pms(), 3U);
}

TEST(DatacenterTest, DedicatedRejectsUnknownLevel) {
  Datacenter dc = Datacenter::dedicated(kWorker, {OversubLevel{1}}, sched::make_first_fit);
  EXPECT_THROW(dc.deploy(VmId{1}, spec(1, gib(1), 2)), core::SlackError);
}

TEST(DatacenterTest, SharedCoHostsAllLevels) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  dc.deploy(VmId{1}, spec(2, gib(4), 1));
  dc.deploy(VmId{2}, spec(2, gib(4), 2));
  dc.deploy(VmId{3}, spec(2, gib(4), 3));
  EXPECT_EQ(dc.opened_pms(), 1U);
  EXPECT_TRUE(dc.is_shared());
}

TEST(DatacenterTest, RemoveFreesResources) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  dc.deploy(VmId{1}, spec(4, gib(8), 1));
  EXPECT_EQ(dc.vm_count(), 1U);
  dc.remove(VmId{1});
  EXPECT_EQ(dc.vm_count(), 0U);
  EXPECT_EQ(dc.total_alloc(), (core::Resources{0, 0}));
}

TEST(DatacenterTest, RemoveUnknownThrows) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  EXPECT_THROW(dc.remove(VmId{12}), core::SlackError);
}

TEST(DatacenterTest, TotalsAggregateAcrossClusters) {
  Datacenter dc = Datacenter::dedicated(kWorker, all_levels(), sched::make_first_fit);
  dc.deploy(VmId{1}, spec(4, gib(8), 1));   // 4 cores
  dc.deploy(VmId{2}, spec(4, gib(8), 2));   // 2 cores
  EXPECT_EQ(dc.total_alloc(), (core::Resources{6, gib(16)}));
  EXPECT_EQ(dc.total_config(), (core::Resources{64, gib(256)}));
}

TEST(DatacenterTest, ThresholdEffectOfDedicatedClusters) {
  // The structural inefficiency SlackVM removes: three half-empty dedicated
  // PMs where a single shared PM would do.
  Datacenter dedicated =
      Datacenter::dedicated(kWorker, all_levels(), sched::make_first_fit);
  Datacenter shared = Datacenter::shared(kWorker, sched::make_progress_policy);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const VmSpec s = spec(4, gib(8), static_cast<std::uint8_t>(i + 1));
    dedicated.deploy(VmId{i * 2 + 1}, s);
    shared.deploy(VmId{i * 2 + 2}, s);
  }
  EXPECT_EQ(dedicated.opened_pms(), 3U);
  EXPECT_EQ(shared.opened_pms(), 1U);
}

}  // namespace
}  // namespace slackvm::sim
