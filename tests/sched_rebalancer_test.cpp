#include "sched/rebalancer.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sched/policy.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

const core::Resources kWorker{32, gib(128)};

TEST(VClusterMigrate, MovesVmBetweenHosts) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(30, gib(8), 1));  // host 0 nearly full
  cluster.place(VmId{2}, spec(4, gib(8), 1));   // overflows to host 1
  ASSERT_EQ(cluster.opened_hosts(), 2U);
  ASSERT_EQ(cluster.host_of(VmId{2}), 1U);
  // After VM 1 departs, VM 2 can migrate back to host 0.
  cluster.remove(VmId{1});
  EXPECT_TRUE(cluster.migrate(VmId{2}, 0));
  EXPECT_EQ(cluster.host_of(VmId{2}), 0U);
  EXPECT_TRUE(cluster.hosts()[1].empty());
}

TEST(VClusterMigrate, RejectedMoveLeavesStateIntact) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(30, gib(8), 1));
  cluster.place(VmId{2}, spec(4, gib(8), 1));
  EXPECT_FALSE(cluster.migrate(VmId{2}, 0));  // host 0 cannot take 4 more cores
  EXPECT_EQ(cluster.host_of(VmId{2}), 1U);
  EXPECT_EQ(cluster.hosts()[1].vm_count(), 1U);
}

TEST(VClusterMigrate, SelfMigrationIsNoop) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(2, gib(2), 1));
  EXPECT_TRUE(cluster.migrate(VmId{1}, 0));
  EXPECT_EQ(cluster.host_of(VmId{1}), 0U);
}

TEST(VClusterMigrate, UnknownVmOrHostThrows) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(2, gib(2), 1));
  EXPECT_THROW(cluster.migrate(VmId{9}, 0), core::SlackError);
  EXPECT_THROW(cluster.migrate(VmId{1}, 5), core::SlackError);
}

TEST(RebalancerTest, DrainsStragglerHost) {
  // Build the post-churn pattern the paper's future work targets: two
  // lightly used hosts that fit onto one.
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(30, gib(8), 1));
  cluster.place(VmId{2}, spec(8, gib(8), 1));  // host 1
  cluster.place(VmId{3}, spec(4, gib(8), 1));  // host 1
  cluster.remove(VmId{1});                     // host 0 now empty-ish
  cluster.place(VmId{4}, spec(2, gib(2), 1));  // lands on host 0 (first fit)
  ASSERT_EQ(cluster.host_of(VmId{4}), 0U);

  const Rebalancer rebalancer;
  const MigrationPlan plan = rebalancer.plan(cluster, 10);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.hosts_emptied, 1U);
  const std::size_t applied = Rebalancer::apply_plan(cluster, plan);
  EXPECT_EQ(applied, plan.migrations.size());
  // One of the two hosts is now empty.
  const bool host0_empty = cluster.hosts()[0].empty();
  const bool host1_empty = cluster.hosts()[1].empty();
  EXPECT_TRUE(host0_empty || host1_empty);
}

TEST(RebalancerTest, RespectsMigrationBudget) {
  VCluster cluster("c", kWorker, make_first_fit());
  // Host 0 full; host 1 has 3 VMs that would all need to move.
  cluster.place(VmId{1}, spec(20, gib(8), 1));
  for (std::uint64_t i = 2; i <= 4; ++i) {
    cluster.place(VmId{i}, spec(16, gib(8), 1));  // forces extra hosts
  }
  const Rebalancer rebalancer;
  const MigrationPlan plan = rebalancer.plan(cluster, 0);
  EXPECT_TRUE(plan.empty());
}

TEST(RebalancerTest, NoPlanOnWellPackedCluster) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(32, gib(8), 1));
  cluster.place(VmId{2}, spec(32, gib(8), 1));
  const Rebalancer rebalancer;
  EXPECT_TRUE(rebalancer.plan(cluster, 10).empty());
}

TEST(RebalancerTest, PlanDoesNotMutateCluster) {
  VCluster cluster("c", kWorker, make_first_fit());
  cluster.place(VmId{1}, spec(4, gib(8), 1));
  cluster.place(VmId{2}, spec(30, gib(8), 1));  // host 1
  const Rebalancer rebalancer;
  (void)rebalancer.plan(cluster, 10);
  EXPECT_EQ(cluster.host_of(VmId{1}), 0U);
  EXPECT_EQ(cluster.host_of(VmId{2}), 1U);
}

TEST(RebalancerTest, MultiLevelDrainKeepsVNodeAccounting) {
  // Mixed-level VMs migrate with their oversubscription semantics intact.
  VCluster cluster("c", kWorker, make_progress_policy());
  cluster.place(VmId{1}, spec(24, gib(24), 1));
  cluster.place(VmId{2}, spec(12, gib(12), 3));   // 4 cores, same host
  cluster.place(VmId{3}, spec(30, gib(30), 1));   // host 1
  cluster.place(VmId{4}, spec(3, gib(4), 3));     // host 1 (1 core)
  cluster.remove(VmId{1});
  cluster.remove(VmId{2});
  // Host 0 nearly empty now; place a small VM there.
  cluster.place(VmId{5}, spec(2, gib(2), 2));
  const Rebalancer rebalancer;
  const MigrationPlan plan = rebalancer.plan(cluster, 10);
  Rebalancer::apply_plan(cluster, plan);
  // All VMs still placed; totals consistent.
  EXPECT_EQ(cluster.vm_count(), 3U);
  core::Resources total;
  for (const HostState& host : cluster.hosts()) {
    total += host.alloc();
  }
  EXPECT_EQ(total, cluster.total_alloc());
}

}  // namespace
}  // namespace slackvm::sched
