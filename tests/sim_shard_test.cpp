// Differential shard test suite: the sharded datacenter engine
// (sim/shard.hpp) must be bit-identical to itself at every thread count and
// — at one shard — to the serial replay() reference, across the full
// {shards} x {index on/off} x {faults on/off} matrix, with the invariant
// audits enabled so every event re-validates the datacenter and its SoA
// arena mirror. Also pins the documented cross-shard merge order.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/policy.hpp"
#include "sim/audit.hpp"
#include "sim/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"

namespace slackvm::sim {
namespace {

using core::gib;

constexpr std::size_t kShardCounts[] = {1, 2, 8};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

const core::Resources kWorker{32, gib(128)};

// Bit-exact equality on every RunResult field (EXPECT_EQ on the doubles is
// deliberate: the guarantee is identical bits, not approximate agreement).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.peak_active_pms, b.peak_active_pms);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.opened_per_cluster, b.opened_per_cluster);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.avg_unalloc_cpu_share, b.avg_unalloc_cpu_share);
  EXPECT_EQ(a.avg_unalloc_mem_share, b.avg_unalloc_mem_share);
  EXPECT_EQ(a.peak_unalloc_cpu_share, b.peak_unalloc_cpu_share);
  EXPECT_EQ(a.peak_unalloc_mem_share, b.peak_unalloc_mem_share);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.avg_active_pms, b.avg_active_pms);
  EXPECT_EQ(a.avg_alloc_cores, b.avg_alloc_cores);
  EXPECT_EQ(a.host_failures, b.host_failures);
  EXPECT_EQ(a.host_repairs, b.host_repairs);
  EXPECT_EQ(a.drained_hosts, b.drained_hosts);
  EXPECT_EQ(a.evacuated_vms, b.evacuated_vms);
  EXPECT_EQ(a.evac_replaced, b.evac_replaced);
  EXPECT_EQ(a.evac_migrated, b.evac_migrated);
  EXPECT_EQ(a.evac_retries, b.evac_retries);
  EXPECT_EQ(a.evac_departed, b.evac_departed);
  EXPECT_EQ(a.degraded_vms, b.degraded_vms);
  EXPECT_EQ(a.deferred_arrivals, b.deferred_arrivals);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
  EXPECT_EQ(a.mig_planned, b.mig_planned);
  EXPECT_EQ(a.mig_committed, b.mig_committed);
  EXPECT_EQ(a.mig_cancelled, b.mig_cancelled);
  EXPECT_EQ(a.mig_rolled_back, b.mig_rolled_back);
  EXPECT_EQ(a.mig_timed_out, b.mig_timed_out);
  EXPECT_EQ(a.mig_degraded, b.mig_degraded);
  EXPECT_EQ(a.mig_retries, b.mig_retries);
}

workload::Trace make_trace(std::size_t population, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.target_population = population;
  cfg.horizon = 2.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  workload::Generator gen(workload::azure_catalog(), workload::make_mix(34, 33, 33),
                          cfg);
  return gen.generate();
}

Datacenter make_dc(std::size_t shards, bool index) {
  Datacenter dc = Datacenter::shared_sharded(kWorker, sched::make_progress_policy,
                                             shards, 1.0);
  dc.set_index_enabled(index);
  return dc;
}

FaultConfig make_faults() {
  FaultConfig faults;
  faults.count = 40;
  faults.seed = 777;
  faults.repair_delay = 3600.0;
  return faults;
}

// --- the differential matrix -----------------------------------------------
//
// For every cell of shards {1,2,8} x index {on,off} x faults {on,off}: the
// reference is the sharded engine run serially (threads = 1); every other
// thread count must reproduce it bit-for-bit, with per-event shard-local
// audits and full-datacenter barrier audits throwing on any invariant or
// arena-mirror violation.
TEST(ShardDifferential, ShardedMatchesItselfAtEveryThreadCount) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(120, 42);
  const FaultConfig faults = make_faults();
  for (const std::size_t shards : kShardCounts) {
    for (const bool index : {true, false}) {
      for (const bool inject : {false, true}) {
        ShardOptions options;
        options.shards = shards;
        options.faults = inject ? &faults : nullptr;
        Datacenter reference_dc = make_dc(shards, index);
        const RunResult reference = replay_sharded(reference_dc, trace, options);
        if (inject) {
          EXPECT_GT(reference.host_failures, 0U);
        }
        for (const std::size_t threads : kThreadCounts) {
          options.threads = threads;
          Datacenter dc = make_dc(shards, index);
          const RunResult result = replay_sharded(dc, trace, options);
          SCOPED_TRACE("shards " + std::to_string(shards) + " index " +
                       std::to_string(index) + " faults " + std::to_string(inject) +
                       " threads " + std::to_string(threads));
          expect_identical(reference, result);
        }
      }
    }
  }
}

// One shard is the serial reference: replay_sharded must be bit-identical
// to the legacy replay() on the identical datacenter — same event schedule,
// same observation tuples, same collector call sequence.
TEST(ShardDifferential, OneShardMatchesLegacyReplay) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(120, 7);
  const FaultConfig faults = make_faults();
  for (const bool index : {true, false}) {
    for (const bool inject : {false, true}) {
      for (const bool shared : {true, false}) {
        Datacenter legacy_dc =
            shared ? Datacenter::shared(kWorker, sched::make_progress_policy)
                   : Datacenter::dedicated(
                         kWorker,
                         {core::OversubLevel{1}, core::OversubLevel{2},
                          core::OversubLevel{3}, core::OversubLevel{4}},
                         sched::make_progress_policy);
        legacy_dc.set_index_enabled(index);
        const RunResult legacy = replay(legacy_dc, trace, std::nullopt, nullptr,
                                        inject ? &faults : nullptr);

        Datacenter sharded_dc =
            shared ? Datacenter::shared_sharded(kWorker, sched::make_progress_policy,
                                                1)
                   : Datacenter::dedicated(
                         kWorker,
                         {core::OversubLevel{1}, core::OversubLevel{2},
                          core::OversubLevel{3}, core::OversubLevel{4}},
                         sched::make_progress_policy);
        sharded_dc.set_index_enabled(index);
        ShardOptions options;  // shards = 1
        options.faults = inject ? &faults : nullptr;
        const RunResult sharded = replay_sharded(sharded_dc, trace, options);
        SCOPED_TRACE(std::string(shared ? "shared" : "dedicated") + " index " +
                     std::to_string(index) + " faults " + std::to_string(inject));
        expect_identical(legacy, sharded);
      }
    }
  }
}

// Rebalancing flows through the sharded engine too, and stays identical
// across thread counts (each shard consolidates only its own clusters).
TEST(ShardDifferential, RebalanceIsDeterministicAcrossThreads) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(100, 11);
  ShardOptions options;
  options.shards = 4;
  options.rebalance = RebalanceOptions{6.0 * 3600, 16};
  Datacenter reference_dc = make_dc(4, true);
  const RunResult reference = replay_sharded(reference_dc, trace, options);
  for (const std::size_t threads : kThreadCounts) {
    options.threads = threads;
    Datacenter dc = make_dc(4, true);
    const RunResult result = replay_sharded(dc, trace, options);
    SCOPED_TRACE("threads " + std::to_string(threads));
    expect_identical(reference, result);
  }
}

// Barrier count only batches work, never reorders it: any window split must
// reproduce the default bit-for-bit.
TEST(ShardDifferential, BarrierCountNeverChangesResults) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(80, 3);
  const FaultConfig faults = make_faults();
  ShardOptions options;
  options.shards = 8;
  options.threads = 2;
  options.faults = &faults;
  Datacenter reference_dc = make_dc(8, true);
  const RunResult reference = replay_sharded(reference_dc, trace, options);
  for (const std::size_t barriers : {std::size_t{1}, std::size_t{3}, std::size_t{32}}) {
    options.barriers = barriers;
    Datacenter dc = make_dc(8, true);
    const RunResult result = replay_sharded(dc, trace, options);
    SCOPED_TRACE("barriers " + std::to_string(barriers));
    expect_identical(reference, result);
  }
}

// The barrier watchdog is pure observation: a tiny non-fatal timeout fires
// progress dumps on slow windows (stderr noise only) and must never change
// the replay — bit-identical to the undogged reference, faults and all.
TEST(ShardDifferential, NonFatalWatchdogNeverChangesResults) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(100, 9);
  const FaultConfig faults = make_faults();
  ShardOptions options;
  options.shards = 4;
  options.threads = 4;
  options.faults = &faults;
  Datacenter reference_dc = make_dc(4, true);
  const RunResult reference = replay_sharded(reference_dc, trace, options);
  options.watchdog_ms = 1;  // virtually every barrier wait trips the dump
  options.watchdog_fatal = false;
  Datacenter dc = make_dc(4, true);
  expect_identical(reference, replay_sharded(dc, trace, options));
}

// More shards than clusters: the excess shards own nothing and the run is
// still identical across thread counts.
TEST(ShardDifferential, MoreShardsThanClustersIsHarmless) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(60, 5);
  ShardOptions options;
  options.shards = 8;
  Datacenter reference_dc = make_dc(2, true);  // 2 clusters, 8 shards
  const RunResult reference = replay_sharded(reference_dc, trace, options);
  options.threads = 8;
  Datacenter dc = make_dc(2, true);
  expect_identical(reference, replay_sharded(dc, trace, options));
}

// The ExperimentConfig::shards knob: the grid engine must produce identical
// comparisons at every parallelism for a fixed shard count (sharded
// organisation, but the same determinism discipline).
TEST(ShardDifferential, ExperimentGridHonorsShardsKnob) {
  ExperimentConfig cfg;
  cfg.generator.target_population = 60;
  cfg.generator.horizon = 2.0 * 24 * 3600;
  cfg.generator.mean_lifetime = 1.0 * 24 * 3600;
  cfg.generator.seed = 42;
  cfg.shards = 4;
  const PackingComparison serial =
      compare_packing(workload::azure_catalog(), workload::distribution('F'), cfg);
  for (const std::size_t threads : kThreadCounts) {
    cfg.parallelism = threads;
    const PackingComparison parallel =
        compare_packing(workload::azure_catalog(), workload::distribution('F'), cfg);
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(serial.provider, parallel.provider);
    expect_identical(serial.baseline, parallel.baseline);
    expect_identical(serial.slackvm, parallel.slackvm);
  }
}

// --- the documented cross-shard ordering ------------------------------------

ShardSample at(core::SimTime t) {
  ShardSample s;
  s.time = t;
  return s;
}

TEST(ShardMergeOrder, AscendingTimeAcrossShards) {
  const std::vector<std::vector<ShardSample>> logs = {
      {at(1.0), at(4.0)},
      {at(2.0), at(3.0)},
  };
  const auto order = shard_merge_order(logs);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_EQ(order, expected);
}

TEST(ShardMergeOrder, TiesGoToTheLowestShardIndex) {
  const std::vector<std::vector<ShardSample>> logs = {
      {at(5.0)},
      {at(5.0)},
      {at(5.0)},
  };
  const auto order = shard_merge_order(logs);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 0}, {1, 0}, {2, 0}};
  EXPECT_EQ(order, expected);
}

TEST(ShardMergeOrder, WithinShardLogOrderIsPreservedOnTies) {
  // A shard may log several samples at one timestamp (an arrival and a
  // fault colliding). The comparator always picks the lowest-index shard
  // among the current minima, so shard 0 drains ALL its t=5 samples (in log
  // order) before shard 1's first t=5 sample is taken.
  const std::vector<std::vector<ShardSample>> logs = {
      {at(5.0), at(5.0)},
      {at(5.0), at(6.0)},
  };
  const auto order = shard_merge_order(logs);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(order, expected);
}

TEST(ShardMergeOrder, EmptyLogsAreSkipped) {
  const std::vector<std::vector<ShardSample>> logs = {
      {},
      {at(1.0)},
      {},
      {at(0.5)},
  };
  const auto order = shard_merge_order(logs);
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {{3, 0}, {1, 0}};
  EXPECT_EQ(order, expected);
}

TEST(ShardMergeOrder, NoLogsAtAll) {
  const std::vector<std::vector<ShardSample>> logs;
  EXPECT_TRUE(shard_merge_order(logs).empty());
}

}  // namespace
}  // namespace slackvm::sim
