#include "local/numa_memory.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "topology/builders.hpp"

namespace slackvm::local {
namespace {

using core::gib;
using core::VmId;

/// 2 sockets x 4 cores, NPS1, 64 GiB -> two 32-GiB NUMA nodes.
topo::CpuTopology two_node_machine() {
  topo::GenericSpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 4;
  spec.total_mem = gib(64);
  spec.name = "numa-test";
  return topo::make_generic(spec);
}

topo::CpuSet socket_cpus(const topo::CpuTopology& topo, std::uint32_t socket) {
  return topo.socket_cpus(socket);
}

class NumaMemoryTest : public ::testing::Test {
 protected:
  const topo::CpuTopology machine_ = two_node_machine();
  NumaMemoryMap map_{machine_};
};

TEST_F(NumaMemoryTest, SplitsCapacityEvenly) {
  EXPECT_EQ(map_.capacity_of(0), gib(32));
  EXPECT_EQ(map_.capacity_of(1), gib(32));
  EXPECT_EQ(map_.total_free(), gib(64));
}

TEST_F(NumaMemoryTest, CommitPrefersLocalNode) {
  const auto placement = map_.commit(VmId{1}, gib(8), socket_cpus(machine_, 1));
  ASSERT_TRUE(placement.has_value());
  ASSERT_EQ(placement->per_node.size(), 1U);
  EXPECT_EQ(placement->per_node.at(1), gib(8));
  EXPECT_EQ(map_.free_on(1), gib(24));
  EXPECT_EQ(map_.free_on(0), gib(32));
  EXPECT_DOUBLE_EQ(map_.locality(VmId{1}, socket_cpus(machine_, 1)), 1.0);
}

TEST_F(NumaMemoryTest, SpillsToRemoteWhenLocalFull) {
  ASSERT_TRUE(map_.commit(VmId{1}, gib(28), socket_cpus(machine_, 0)));
  const auto placement = map_.commit(VmId{2}, gib(8), socket_cpus(machine_, 0));
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->per_node.at(0), gib(4));  // remaining local
  EXPECT_EQ(placement->per_node.at(1), gib(4));  // spilled
  EXPECT_DOUBLE_EQ(map_.locality(VmId{2}, socket_cpus(machine_, 0)), 0.5);
}

TEST_F(NumaMemoryTest, FailsWhenPmFull) {
  ASSERT_TRUE(map_.commit(VmId{1}, gib(60), socket_cpus(machine_, 0)));
  EXPECT_FALSE(map_.commit(VmId{2}, gib(8), socket_cpus(machine_, 1)).has_value());
  // Nothing changed for the failed VM.
  EXPECT_FALSE(map_.tracks(VmId{2}));
  EXPECT_EQ(map_.total_free(), gib(4));
}

TEST_F(NumaMemoryTest, ReleaseRestoresFreeSpace) {
  ASSERT_TRUE(map_.commit(VmId{1}, gib(20), socket_cpus(machine_, 0)));
  map_.release(VmId{1});
  EXPECT_EQ(map_.total_free(), gib(64));
  EXPECT_FALSE(map_.tracks(VmId{1}));
  EXPECT_THROW(map_.release(VmId{1}), core::SlackError);
}

TEST_F(NumaMemoryTest, RebalanceFollowsVNodeMove) {
  ASSERT_TRUE(map_.commit(VmId{1}, gib(8), socket_cpus(machine_, 0)));
  EXPECT_DOUBLE_EQ(map_.locality(VmId{1}, socket_cpus(machine_, 1)), 0.0);
  const MemPlacement moved = map_.rebalance(VmId{1}, socket_cpus(machine_, 1));
  EXPECT_EQ(moved.per_node.at(1), gib(8));
  EXPECT_DOUBLE_EQ(map_.locality(VmId{1}, socket_cpus(machine_, 1)), 1.0);
}

TEST_F(NumaMemoryTest, VNodeSpanningBothSocketsCountsBothLocal) {
  topo::CpuSet both = machine_.all_cpus();
  ASSERT_TRUE(map_.commit(VmId{1}, gib(40), both));
  EXPECT_DOUBLE_EQ(map_.locality(VmId{1}, both), 1.0);
}

TEST_F(NumaMemoryTest, EmptyCpuSetFallsBackToNodeZero) {
  const topo::CpuSet none(machine_.cpu_count());
  const auto placement = map_.commit(VmId{1}, gib(4), none);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->per_node.at(0), gib(4));
}

TEST_F(NumaMemoryTest, ZeroMemoryVmTracksWithFullLocality) {
  const auto placement = map_.commit(VmId{1}, 0, socket_cpus(machine_, 0));
  ASSERT_TRUE(placement.has_value());
  EXPECT_TRUE(placement->per_node.empty());
  EXPECT_DOUBLE_EQ(map_.locality(VmId{1}, socket_cpus(machine_, 0)), 1.0);
}

TEST(NumaMemoryNps4, SpillOrderFollowsNumaDistance) {
  // NPS2 per socket: 4 nodes; intra-socket distance 12, cross-socket 32.
  topo::GenericSpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 4;
  spec.numa_per_socket = 2;
  spec.total_mem = gib(64);  // 16 GiB per node
  const topo::CpuTopology machine = topo::make_generic(spec);
  NumaMemoryMap map(machine);

  // vNode on node 0's cores (first two cores of socket 0).
  topo::CpuSet node0(machine.cpu_count());
  node0.set(0);
  node0.set(1);
  // 36 GiB: 16 local (node 0), then 16 on node 1 (intra-socket, distance
  // 12), then 4 on node 2 (cross-socket) — never node 3 first.
  const auto placement = map.commit(VmId{1}, gib(36), node0);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->per_node.at(0), gib(16));
  EXPECT_EQ(placement->per_node.at(1), gib(16));
  EXPECT_EQ(placement->per_node.at(2), gib(4));
  EXPECT_FALSE(placement->per_node.contains(3));
}

TEST(NumaMemoryUnevenTotal, RemainderGoesToNodeZero) {
  topo::GenericSpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 2;
  spec.total_mem = gib(64) + 1;  // indivisible by 2
  const topo::CpuTopology machine = topo::make_generic(spec);
  const NumaMemoryMap map(machine);
  EXPECT_EQ(map.capacity_of(0) + map.capacity_of(1), gib(64) + 1);
  EXPECT_EQ(map.capacity_of(0), gib(32) + 1);
}

}  // namespace
}  // namespace slackvm::local
