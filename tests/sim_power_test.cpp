#include "sim/power.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sched/policy.hpp"
#include "sim/replay.hpp"

namespace slackvm::sim {
namespace {

RunResult synthetic_result() {
  RunResult r;
  r.opened_pms = 10;
  r.avg_active_pms = 6.0;
  r.avg_alloc_cores = 96.0;  // 3 PMs' worth on 32-core machines
  r.duration = 3600.0;       // one hour
  return r;
}

TEST(PowerModelTest, ProvisionedFleetEnergy) {
  const RunResult r = synthetic_result();
  PowerModel model;
  model.idle_watts = 100.0;
  model.peak_watts = 400.0;
  model.pue = 1.0;
  model.carbon_g_per_kwh = 500.0;
  const EnergyReport report = estimate_energy(r, 32, model);
  // 10 PMs x 100 W idle + 300 W x (96/32 cores) = 1000 + 900 = 1900 W for 1 h.
  EXPECT_DOUBLE_EQ(report.pm_hours, 10.0);
  EXPECT_DOUBLE_EQ(report.kwh, 1.9);
  EXPECT_DOUBLE_EQ(report.carbon_kg, 0.95);
}

TEST(PowerModelTest, PowerDownIdleUsesActivePms) {
  const RunResult r = synthetic_result();
  PowerModel model;
  model.idle_watts = 100.0;
  model.peak_watts = 400.0;
  model.pue = 1.0;
  const EnergyReport report = estimate_energy(r, 32, model, /*power_down_idle=*/true);
  // 6 active PMs x 100 W + 900 W dynamic = 1500 W for 1 h.
  EXPECT_DOUBLE_EQ(report.pm_hours, 6.0);
  EXPECT_DOUBLE_EQ(report.kwh, 1.5);
}

TEST(PowerModelTest, PueMultipliesFacilityEnergy) {
  const RunResult r = synthetic_result();
  PowerModel base;
  base.pue = 1.0;
  PowerModel lossy = base;
  lossy.pue = 1.5;
  EXPECT_DOUBLE_EQ(estimate_energy(r, 32, lossy).kwh,
                   estimate_energy(r, 32, base).kwh * 1.5);
}

TEST(PowerModelTest, InvalidInputsRejected) {
  const RunResult r = synthetic_result();
  EXPECT_THROW((void)estimate_energy(r, 0), core::SlackError);
  PowerModel inverted;
  inverted.idle_watts = 500.0;
  inverted.peak_watts = 100.0;
  EXPECT_THROW((void)estimate_energy(r, 32, inverted), core::SlackError);
  PowerModel bad_pue;
  bad_pue.pue = 0.5;
  EXPECT_THROW((void)estimate_energy(r, 32, bad_pue), core::SlackError);
}

TEST(PowerModelTest, ReplayFeedsTheModel) {
  // A single VM occupying half a PM for the whole run.
  core::VmInstance vm;
  vm.id = core::VmId{1};
  vm.spec.vcpus = 16;
  vm.spec.mem_mib = core::gib(64);
  vm.spec.level = core::OversubLevel{1};
  vm.arrival = 0;
  vm.departure = 7200;
  const workload::Trace trace({vm});

  Datacenter dc = Datacenter::shared({32, core::gib(128)}, sched::make_progress_policy);
  const RunResult result = replay(dc, trace);
  EXPECT_DOUBLE_EQ(result.duration, 7200.0);
  EXPECT_NEAR(result.avg_alloc_cores, 16.0, 1e-9);
  EXPECT_NEAR(result.avg_active_pms, 1.0, 1e-9);

  PowerModel model;
  model.idle_watts = 100.0;
  model.peak_watts = 300.0;
  model.pue = 1.0;
  const EnergyReport report = estimate_energy(result, 32, model);
  // 1 PM x 100 W + 200 W x 0.5 = 200 W for 2 h = 0.4 kWh.
  EXPECT_DOUBLE_EQ(report.kwh, 0.4);
}

TEST(PowerModelTest, ConsolidationSavesEnergyWithPowerDown) {
  // Fewer active PMs -> less idle power when idles are suspended.
  RunResult sparse = synthetic_result();
  sparse.avg_active_pms = 9.0;
  RunResult packed = synthetic_result();
  packed.avg_active_pms = 4.0;
  EXPECT_LT(estimate_energy(packed, 32, {}, true).kwh,
            estimate_energy(sparse, 32, {}, true).kwh);
}

}  // namespace
}  // namespace slackvm::sim
