// Live-migration engine suite: reservation accounting from HostState down
// to the arena and the audit, the flight lifecycle against every failure
// phase (commit, dest-fail rollback+retry, source-fail cancel, timeout,
// departure, no-destination degrade), the engine-driven rebalance loop
// under fault churn, and the acceptance matrix — a >= 100-failure replay
// bit-identical across shards x index x threads with the counter identity
// audited throughout.
#include "sim/migration.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "sched/policy.hpp"
#include "sched/rebalancer.hpp"
#include "sched/vcluster.hpp"
#include "sim/audit.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "sim/shard.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"

namespace slackvm::sim {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;
using sched::HostId;
using sched::HostPhase;
using sched::VCluster;

const core::Resources kWorker{32, gib(128)};

VmSpec make_spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

void expect_counter_identity(const RunResult& r) {
  EXPECT_EQ(r.mig_planned, r.mig_committed + r.mig_cancelled + r.mig_rolled_back +
                               r.mig_timed_out + r.mig_degraded);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.peak_active_pms, b.peak_active_pms);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.opened_per_cluster, b.opened_per_cluster);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  // Exact (not NEAR) comparisons: bit-identical is the contract.
  EXPECT_EQ(a.avg_unalloc_cpu_share, b.avg_unalloc_cpu_share);
  EXPECT_EQ(a.avg_unalloc_mem_share, b.avg_unalloc_mem_share);
  EXPECT_EQ(a.peak_unalloc_cpu_share, b.peak_unalloc_cpu_share);
  EXPECT_EQ(a.peak_unalloc_mem_share, b.peak_unalloc_mem_share);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.avg_active_pms, b.avg_active_pms);
  EXPECT_EQ(a.avg_alloc_cores, b.avg_alloc_cores);
  EXPECT_EQ(a.host_failures, b.host_failures);
  EXPECT_EQ(a.host_repairs, b.host_repairs);
  EXPECT_EQ(a.drained_hosts, b.drained_hosts);
  EXPECT_EQ(a.evacuated_vms, b.evacuated_vms);
  EXPECT_EQ(a.evac_replaced, b.evac_replaced);
  EXPECT_EQ(a.evac_migrated, b.evac_migrated);
  EXPECT_EQ(a.evac_retries, b.evac_retries);
  EXPECT_EQ(a.evac_departed, b.evac_departed);
  EXPECT_EQ(a.degraded_vms, b.degraded_vms);
  EXPECT_EQ(a.deferred_arrivals, b.deferred_arrivals);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
  EXPECT_EQ(a.mig_planned, b.mig_planned);
  EXPECT_EQ(a.mig_committed, b.mig_committed);
  EXPECT_EQ(a.mig_cancelled, b.mig_cancelled);
  EXPECT_EQ(a.mig_rolled_back, b.mig_rolled_back);
  EXPECT_EQ(a.mig_timed_out, b.mig_timed_out);
  EXPECT_EQ(a.mig_degraded, b.mig_degraded);
  EXPECT_EQ(a.mig_retries, b.mig_retries);
}

// --- reservation accounting -------------------------------------------------

TEST(MigrationReservation, HostStateBooksEveryColumnButStaysEmpty) {
  sched::HostState host(0, kWorker);
  const VmSpec spec = make_spec(8, gib(16), 1);
  host.reserve(VmId{7}, spec);
  // The booking participates in capacity accounting exactly like a hosted
  // VM...
  EXPECT_EQ(host.alloc(), (core::Resources{8, gib(16)}));
  EXPECT_FALSE(host.can_host(make_spec(25, gib(8), 1)));  // 33 cores booked
  // ...but the VM is not hosted: the host is still empty and evictable.
  EXPECT_TRUE(host.empty());
  EXPECT_EQ(host.vm_count(), 0U);
  EXPECT_EQ(host.reservation_count(), 1U);
  EXPECT_TRUE(host.has_reservation(VmId{7}));
  host.release_reservation(VmId{7});
  EXPECT_EQ(host.alloc(), (core::Resources{}));
  EXPECT_EQ(host.reservation_count(), 0U);
  EXPECT_TRUE(host.can_host(make_spec(32, gib(128), 1)));
}

TEST(MigrationReservation, VClusterBookingSteersPlacementAndCommits) {
  VCluster cl("mig", kWorker, sched::make_first_fit());
  cl.place(VmId{1}, make_spec(4, gib(8), 1));  // host 0
  // Book the rest of host 0's CPU: a booking that does not fit is refused
  // with no state change.
  EXPECT_FALSE(cl.try_reserve(0, VmId{2}, make_spec(29, gib(8), 1)));
  ASSERT_TRUE(cl.try_reserve(0, VmId{2}, make_spec(28, gib(8), 1)));
  EXPECT_TRUE(audit(cl).empty());
  // First-Fit would have taken host 0; the booking forces a new host.
  const auto placed = cl.try_place(VmId{3}, make_spec(8, gib(8), 1));
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(*placed, 1U);
  // Commit: the reservation swaps for residency atomically.
  cl.place(VmId{4}, make_spec(2, gib(4), 1));  // lands on host 1 too
  ASSERT_TRUE(cl.try_reserve(1, VmId{1}, make_spec(4, gib(8), 1)));
  cl.commit_migration(VmId{1}, 1);
  EXPECT_EQ(cl.host_of(VmId{1}), 1U);
  EXPECT_EQ(cl.hosts()[1].reservation_count(), 0U);  // swapped for residency
  EXPECT_FALSE(cl.hosts()[1].has_reservation(VmId{1}));
  EXPECT_TRUE(audit(cl).empty());
  cl.release_reservation(0, VmId{2});  // host 0's booking is untouched
  EXPECT_TRUE(audit(cl).empty());
}

TEST(MigrationReservation, AuditFlagsBookingsStrandedOnDownHosts) {
  VCluster cl("mig", kWorker, sched::make_first_fit());
  cl.place(VmId{1}, make_spec(4, gib(8), 1));
  cl.place(VmId{2}, make_spec(30, gib(8), 1));  // opens host 1
  ASSERT_TRUE(cl.try_reserve(0, VmId{3}, make_spec(2, gib(4), 1)));
  EXPECT_TRUE(audit(cl).empty());
  // The engine always rolls reservations back *before* the injector downs a
  // host; a booking that survives onto a FAILED host is exactly the bug the
  // audit must catch.
  (void)cl.fail_host(0);
  const auto violations = audit(cl);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("reservation"), std::string::npos);
}

// --- engine flight lifecycle ------------------------------------------------

/// A shared-cluster datacenter with a hand-driven queue and engine; tests
/// arrange hosts through cluster(0) and drive time with queue.run().
struct EngineHarness {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  EventQueue queue;
  RunResult result;
  std::optional<MigrationEngine> engine;

  explicit EngineHarness(MigrationConfig config = make_config()) {
    engine.emplace(dc, queue, config, result, [](core::SimTime) {});
  }

  static MigrationConfig make_config() {
    MigrationConfig config;
    config.enabled = true;
    config.bandwidth_mibps = 1024.0;  // gib(8) of guest memory = 8 s in flight
    return config;
  }

  VCluster& cl() { return dc.cluster(0); }

  void expect_drained() {
    EXPECT_EQ(engine->in_flight(), 0U);
    EXPECT_EQ(engine->pending_intents(), 0U);
    EXPECT_TRUE(engine->audit().empty());
    expect_counter_identity(result);
    EXPECT_TRUE(audit(dc).empty());
  }
};

TEST(MigrationEngine, CommitsAPlannedFlightAfterPreCopy) {
  EngineHarness h;
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));  // fills host 0's CPU
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));    // opens host 1
  h.cl().remove(VmId{1});                            // host 0 empty but open
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  EXPECT_EQ(h.result.mig_planned, 1U);
  EXPECT_EQ(h.engine->in_flight(), 1U);
  // In flight: the destination holds the booking, the VM still runs on the
  // source, and the invariants hold mid-flight.
  EXPECT_TRUE(h.cl().hosts()[0].has_reservation(VmId{2}));
  EXPECT_EQ(h.cl().host_of(VmId{2}), 1U);
  EXPECT_TRUE(audit(h.dc).empty());
  h.queue.run();
  EXPECT_EQ(h.result.mig_committed, 1U);
  EXPECT_EQ(h.result.migrations, 1U);  // committed flights are migrations too
  EXPECT_EQ(h.cl().host_of(VmId{2}), 0U);
  EXPECT_FALSE(h.cl().hosts()[0].has_reservation(VmId{2}));
  EXPECT_NEAR(h.queue.now(), 8.0, 1e-9);  // gib(8) / 1024 MiB/s
  h.expect_drained();
}

TEST(MigrationEngine, RejectsSelfMovesUnknownVmsAndDuplicates) {
  EngineHarness h;
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));
  h.cl().remove(VmId{1});
  EXPECT_FALSE(h.engine->request(0, {VmId{2}, 1, 1}, 0.0));   // onto its own host
  EXPECT_FALSE(h.engine->request(0, {VmId{99}, 1, 0}, 0.0));  // not placed here
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  EXPECT_FALSE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));  // already active
  EXPECT_EQ(h.result.mig_planned, 1U);  // rejections are never planned
  h.queue.run();
  h.expect_drained();
}

TEST(MigrationEngine, DestFailureMidFlightRollsBackAndRetriesElsewhere) {
  EngineHarness h;
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));  // host 0
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));    // host 1 (source)
  h.cl().place(VmId{3}, make_spec(32, gib(64), 1));  // opens host 2
  h.cl().remove(VmId{1});
  h.cl().remove(VmId{3});  // hosts 0 and 2 empty, open
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  // Halfway through the 8 s pre-copy the destination dies. The injector
  // contract: notify the engine first, then mutate the cluster.
  h.queue.schedule(4.0, [&](core::SimTime t) {
    h.engine->on_host_failing(0, 0, t);
    (void)h.cl().fail_host(0);
  });
  h.queue.run();
  // Rolled back, backed off 60 s (attempt 1), relaunched at t=64 onto host 2
  // (the only viable destination left), committed at t=72.
  EXPECT_EQ(h.result.mig_committed, 1U);
  EXPECT_EQ(h.result.mig_retries, 1U);
  EXPECT_EQ(h.result.mig_rolled_back, 0U);
  EXPECT_EQ(h.cl().host_of(VmId{2}), 2U);
  EXPECT_EQ(h.cl().hosts()[0].reservation_count(), 0U);
  EXPECT_NEAR(h.queue.now(), 72.0, 1e-9);
  h.expect_drained();
}

TEST(MigrationEngine, DestFailureWithNoRetriesRollsBackTerminally) {
  MigrationConfig config = EngineHarness::make_config();
  config.max_retries = 0;
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  h.queue.schedule(4.0, [&](core::SimTime t) {
    h.engine->on_host_failing(0, 0, t);
    (void)h.cl().fail_host(0);
  });
  h.queue.run();
  EXPECT_EQ(h.result.mig_rolled_back, 1U);
  EXPECT_EQ(h.result.mig_committed, 0U);
  EXPECT_EQ(h.cl().host_of(VmId{2}), 1U);  // never moved
  // Terminally failed intents park: the VM is refused until it departs.
  EXPECT_FALSE(h.engine->request(0, {VmId{2}, 1, 0}, h.queue.now()));
  h.engine->on_departure(VmId{2}, h.queue.now());
  h.cl().remove(VmId{2});
  h.queue.run();
  h.expect_drained();
}

TEST(MigrationEngine, SourceFailureMidFlightCancelsIntoEvacuation) {
  EngineHarness h;
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));  // host 1 (source)
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  h.queue.schedule(4.0, [&](core::SimTime t) {
    h.engine->on_host_failing(0, 1, t);  // the *source* dies
    (void)h.cl().fail_host(1);           // eviction owns the VM from here
  });
  h.queue.run();
  EXPECT_EQ(h.result.mig_cancelled, 1U);
  EXPECT_EQ(h.result.mig_committed, 0U);
  EXPECT_EQ(h.cl().hosts()[0].reservation_count(), 0U);  // rolled back
  EXPECT_FALSE(h.cl().contains(VmId{2}));                // evicted
  h.expect_drained();
}

TEST(MigrationEngine, SourceDrainMidFlightCancels) {
  EngineHarness h;
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  h.queue.schedule(4.0, [&](core::SimTime t) {
    h.engine->on_host_draining(0, 1, t);  // migrate_off owns the VM now
    h.cl().drain_host(1);
  });
  h.queue.run();
  EXPECT_EQ(h.result.mig_cancelled, 1U);
  EXPECT_EQ(h.cl().hosts()[0].reservation_count(), 0U);
  EXPECT_EQ(h.cl().host_of(VmId{2}), 1U);  // still on the draining source
  h.expect_drained();
}

TEST(MigrationEngine, TimeoutAbortsTerminally) {
  MigrationConfig config = EngineHarness::make_config();
  config.timeout = 4.0;  // < the 8 s pre-copy
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  h.queue.run();
  EXPECT_EQ(h.result.mig_timed_out, 1U);
  EXPECT_EQ(h.result.mig_committed, 0U);
  EXPECT_EQ(h.cl().host_of(VmId{2}), 1U);
  EXPECT_EQ(h.cl().hosts()[0].reservation_count(), 0U);
  // The stale completion event still pops at t=8 as a ticket-guarded no-op.
  EXPECT_NEAR(h.queue.now(), 8.0, 1e-9);
  // Deterministic durations: a retry would time out again, so it parks.
  EXPECT_FALSE(h.engine->request(0, {VmId{2}, 1, 0}, h.queue.now()));
  h.expect_drained();
}

TEST(MigrationEngine, TimeoutLongerThanFlightNeverFires) {
  MigrationConfig config = EngineHarness::make_config();
  config.timeout = 8.0;  // exactly the pre-copy duration: completion wins
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  h.queue.run();
  EXPECT_EQ(h.result.mig_committed, 1U);
  EXPECT_EQ(h.result.mig_timed_out, 0U);
  h.expect_drained();
}

TEST(MigrationEngine, DepartureCancelsWaitingAndInFlightIntents) {
  MigrationConfig config = EngineHarness::make_config();
  config.max_in_flight = 1;
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));  // host 0
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));    // host 1
  h.cl().place(VmId{3}, make_spec(4, gib(8), 1));    // host 1
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));  // in flight
  ASSERT_TRUE(h.engine->request(0, {VmId{3}, 1, 0}, 0.0));  // queued (budget 1)
  EXPECT_EQ(h.engine->in_flight(), 1U);
  EXPECT_EQ(h.engine->pending_intents(), 1U);
  // The queued VM departs: its intent evaporates without ever flying.
  h.engine->on_departure(VmId{3}, 0.0);
  h.cl().remove(VmId{3});
  h.queue.run();
  EXPECT_EQ(h.result.mig_cancelled, 1U);
  EXPECT_EQ(h.result.mig_committed, 1U);
  // Now an in-flight departure: the booking rolls back with the cancel.
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 0, 1}, h.queue.now()));
  EXPECT_EQ(h.engine->in_flight(), 1U);
  h.engine->on_departure(VmId{2}, h.queue.now());
  h.cl().remove(VmId{2});
  h.queue.run();
  EXPECT_EQ(h.result.mig_cancelled, 2U);
  EXPECT_EQ(h.result.mig_committed, 1U);
  h.expect_drained();
}

TEST(MigrationEngine, NoViableDestinationDegrades) {
  MigrationConfig config = EngineHarness::make_config();
  config.max_retries = 0;
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(4, gib(8), 1));      // host 0 (source)
  h.cl().place(VmId{2}, make_spec(32, gib(120), 1));   // host 1, full
  ASSERT_TRUE(h.engine->request(0, {VmId{1}, 0, 1}, 0.0));
  h.queue.run();
  // The planner's hint cannot take the spec and no other UP host can either
  // (the engine never opens hosts — packing tighter is the whole point).
  EXPECT_EQ(h.result.mig_degraded, 1U);
  EXPECT_EQ(h.result.mig_committed, 0U);
  EXPECT_EQ(h.cl().host_of(VmId{1}), 0U);
  h.expect_drained();
}

TEST(MigrationEngine, PerHostCapThrottlesConcurrentFlights) {
  MigrationConfig config = EngineHarness::make_config();
  config.max_concurrent_per_host = 1;  // one flight per NIC
  EngineHarness h(config);
  h.cl().place(VmId{1}, make_spec(32, gib(64), 1));  // host 0
  h.cl().place(VmId{2}, make_spec(4, gib(8), 1));    // host 1
  h.cl().place(VmId{3}, make_spec(4, gib(8), 1));    // host 1
  h.cl().remove(VmId{1});
  ASSERT_TRUE(h.engine->request(0, {VmId{2}, 1, 0}, 0.0));
  ASSERT_TRUE(h.engine->request(0, {VmId{3}, 1, 0}, 0.0));
  // Source host 1 may only pump one flight at a time: the second waits for
  // the first to land, so the flights serialize 8 s + 8 s.
  EXPECT_EQ(h.engine->in_flight(), 1U);
  h.queue.run();
  EXPECT_EQ(h.result.mig_committed, 2U);
  EXPECT_NEAR(h.queue.now(), 16.0, 1e-9);
  h.expect_drained();
}

// --- the rebalance loop under faults ----------------------------------------

workload::Trace make_trace(std::size_t population, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.target_population = population;
  cfg.horizon = 2.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  workload::Generator gen(workload::azure_catalog(), workload::make_mix(34, 33, 33),
                          cfg);
  return gen.generate();
}

RebalanceOptions engine_rebalance() {
  RebalanceOptions reb;
  reb.interval = 2.0 * 3600;
  reb.budget_per_pass = 16;
  reb.migration.enabled = true;
  reb.migration.bandwidth_mibps = 64.0;  // slow pre-copy: flights span faults
  reb.migration.max_retries = 2;
  reb.migration.backoff_base = 300.0;
  return reb;
}

TEST(MigrationReplay, EngineLoopCommitsFlightsAndKeepsTheIdentity) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(80, 21);
  FaultConfig faults;
  faults.count = 30;
  faults.seed = 777;
  faults.repair_delay = 3600.0;
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace, engine_rebalance(), nullptr, &faults);
  EXPECT_GT(result.mig_planned, 0U);
  EXPECT_GT(result.mig_committed, 0U);
  EXPECT_GT(result.host_failures, 0U);
  expect_counter_identity(result);
  EXPECT_TRUE(audit(dc).empty());
  // The naive-scan escape hatch replays the identical decision sequence.
  Datacenter naive = Datacenter::shared(kWorker, sched::make_progress_policy);
  naive.set_index_enabled(false);
  const RunResult unindexed = replay(naive, trace, engine_rebalance(), nullptr,
                                     &faults);
  expect_identical(result, unindexed);
}

TEST(MigrationReplay, InstantModeLeavesFlightCountersAtZero) {
  const workload::Trace trace = make_trace(80, 21);
  RebalanceOptions reb;
  reb.interval = 2.0 * 3600;
  reb.budget_per_pass = 16;  // migration.enabled stays false: PR 3 semantics
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace, reb, nullptr, nullptr);
  EXPECT_GT(result.migrations, 0U);
  EXPECT_EQ(result.mig_planned, 0U);
  EXPECT_EQ(result.mig_committed, 0U);
  EXPECT_TRUE(audit(dc).empty());
}

TEST(MigrationReplay, DirectedFaultsAtEveryPhaseStayIdenticalAndAudited) {
  // Hand-crafted fail/drain/repair directives land before, during and after
  // the rebalance passes, so flights get hit in every phase (the unit suite
  // above pins each transition; this pins the integrated replay: identical
  // across the index escape hatch, clean audits, identity intact).
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(80, 33);
  FaultConfig faults;
  for (const double at : {1.0 * 3600, 3.0 * 3600, 5.0 * 3600, 9.0 * 3600,
                          13.0 * 3600, 21.0 * 3600}) {
    FaultDirective fail;
    fail.kind = FaultDirective::Kind::kFail;
    fail.host = static_cast<HostId>(static_cast<std::size_t>(at / 3600.0) % 3);
    fail.at = at;
    faults.directives.push_back(fail);
    FaultDirective repair;
    repair.kind = FaultDirective::Kind::kRepair;
    repair.host = fail.host;
    repair.at = at + 1800.0;
    faults.directives.push_back(repair);
  }
  FaultDirective drain;
  drain.kind = FaultDirective::Kind::kDrain;
  drain.host = 0;  // open since the first placement, so the drain never fizzles
  drain.at = 7.0 * 3600;
  faults.directives.push_back(drain);
  std::optional<RunResult> reference;
  for (const bool index : {true, false}) {
    Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
    dc.set_index_enabled(index);
    const RunResult result = replay(dc, trace, engine_rebalance(), nullptr,
                                    &faults);
    EXPECT_GT(result.mig_planned, 0U);
    EXPECT_GT(result.host_failures, 0U);
    EXPECT_GT(result.drained_hosts, 0U);
    expect_counter_identity(result);
    EXPECT_TRUE(audit(dc).empty());
    if (reference) {
      expect_identical(*reference, result);
    } else {
      reference = result;
    }
  }
}

// --- differential churn: incremental consolidation vs the naive pass --------

TEST(PlanDifferential, ReservationChurnMatchesNaiveConsolidation) {
  // >= 10k randomized place/remove/fault/reserve/release/heat events; at
  // every checkpoint the incremental scratch-column plan() must reproduce
  // the verbatim naive drain-and-consolidate pass move-for-move. The
  // reservation churn is the migrate-suite angle: in-flight bookings load
  // the columns without appearing in the VM maps, and both passes must
  // respect them identically when scoring drain targets.
  VCluster cluster("resv-churn", kWorker, sched::make_slackvm_policy());
  const sched::Rebalancer rebalancer;
  core::SplitMix64 rng(0x2e5eULL);
  std::vector<VmId> live;
  std::vector<std::pair<HostId, VmId>> booked;
  std::uint64_t next_id = 1;
  for (int event = 0; event < 12000; ++event) {
    const std::uint64_t roll = rng.below(20);
    if (roll < 9 || live.empty()) {
      VmSpec spec = make_spec(
          static_cast<core::VcpuCount>(1 + rng.below(8)),
          gib(static_cast<std::int64_t>(1 + rng.below(16))),
          static_cast<std::uint8_t>(1 + rng.below(3)));
      const VmId id{next_id++};
      if (cluster.try_place(id, spec)) {
        live.push_back(id);
      }
    } else if (roll < 13) {
      const std::size_t pick = rng.below(live.size());
      const VmId id = live[pick];
      // Departing mid-flight is the engine's lifecycle to manage; here a
      // booked VM just stays put.
      bool has_booking = false;
      for (const auto& [h, vm] : booked) {
        has_booking = has_booking || vm == id;
      }
      if (!has_booking) {
        live[pick] = live.back();
        live.pop_back();
        cluster.remove(id);
      }
    } else if (roll < 15 && cluster.opened_hosts() > 1) {
      // Book a migration reservation for a live VM on another host; the
      // booking loads the target's columns until released below.
      const VmId vm = live[rng.below(live.size())];
      bool already_booked = false;
      for (const auto& [h, b] : booked) {
        already_booked = already_booked || b == vm;
      }
      const HostId from = cluster.host_of(vm);
      const HostId to = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      if (!already_booked && to != from &&
          cluster.try_reserve(to, vm, cluster.hosts()[from].spec_of(vm))) {
        booked.emplace_back(to, vm);
      }
    } else if (roll < 17 && !booked.empty()) {
      const std::size_t pick = rng.below(booked.size());
      const auto [host, vm] = booked[pick];
      booked[pick] = booked.back();
      booked.pop_back();
      cluster.release_reservation(host, vm);
    } else if (roll < 18 && cluster.opened_hosts() > 0) {
      const HostId host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      if (cluster.host_phase(host) == HostPhase::kUp) {
        // Skip hosts holding live bookings: failing them would strand the
        // reservation (a lifecycle the engine tests own); keep this churn
        // about planning against booked columns.
        bool holds_booking = false;
        for (const auto& [h, vm] : booked) {
          holds_booking = holds_booking || h == host;
        }
        for (const auto& [h, vm] : booked) {
          holds_booking = holds_booking || cluster.host_of(vm) == host;
        }
        if (!holds_booking) {
          for (const auto& [vm, spec] : cluster.fail_host(host)) {
            std::erase(live, vm);
          }
        }
      } else {
        cluster.repair_host(host);
      }
    } else if (cluster.opened_hosts() > 0) {
      const HostId host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      cluster.set_host_heat(host, rng.uniform(0.0, 2.0), 0.25);
    }
    if (event % 200 == 199) {
      ASSERT_TRUE(cluster.index_enabled());
      const sched::MigrationPlan a = rebalancer.plan(cluster, 16);
      const sched::MigrationPlan b = rebalancer.plan_naive(cluster, 16);
      ASSERT_EQ(a.migrations.size(), b.migrations.size()) << "event " << event;
      for (std::size_t i = 0; i < a.migrations.size(); ++i) {
        EXPECT_EQ(a.migrations[i].vm, b.migrations[i].vm);
        EXPECT_EQ(a.migrations[i].from, b.migrations[i].from);
        EXPECT_EQ(a.migrations[i].to, b.migrations[i].to);
      }
      EXPECT_EQ(a.hosts_emptied, b.hosts_emptied);
    }
    if (event % 2000 == 0) {
      EXPECT_TRUE(audit(cluster).empty()) << "event " << event;
    }
  }
  for (const auto& [host, vm] : booked) {
    cluster.release_reservation(host, vm);
  }
  EXPECT_TRUE(audit(cluster).empty());
}

// --- acceptance: >= 100 failures, bit-identical across the matrix -----------

TEST(MigrationAcceptance, HundredFailuresBitIdenticalAcrossShardsIndexThreads) {
  // The acceptance replay of ISSUE 8: a fault schedule applying >= 100 host
  // failures against the continuous engine-driven rebalance loop must keep
  // the counter identity, audit clean, and reproduce bit-for-bit across
  // shards {1,2,8} x index {on,off} x threads {1,2,8}.
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(120, 42);
  FaultConfig faults;
  faults.count = 250;
  faults.seed = 777;
  faults.repair_delay = 1800.0;  // quick repairs keep failure targets UP
  const RebalanceOptions reb = engine_rebalance();

  const auto make_dc = [](bool index) {
    Datacenter dc = Datacenter::shared_sharded(kWorker,
                                               sched::make_progress_policy, 4);
    dc.set_index_enabled(index);
    return dc;
  };

  // Reference: the sharded engine run serially on one shard — itself pinned
  // against the legacy replay() on the same datacenter organisation.
  ShardOptions options;
  options.rebalance = reb;
  options.faults = &faults;
  Datacenter reference_dc = make_dc(true);
  const RunResult reference = replay_sharded(reference_dc, trace, options);
  ASSERT_GE(reference.host_failures, 100U);
  ASSERT_GT(reference.mig_planned, 0U);
  ASSERT_GT(reference.mig_committed, 0U);
  expect_counter_identity(reference);
  EXPECT_TRUE(audit(reference_dc).empty());
  {
    Datacenter legacy_dc = make_dc(true);
    const RunResult legacy = replay(legacy_dc, trace, reb, nullptr, &faults);
    expect_identical(reference, legacy);
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool index : {true, false}) {
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        options.shards = shards;
        options.threads = threads;
        Datacenter dc = make_dc(index);
        const RunResult result = replay_sharded(dc, trace, options);
        SCOPED_TRACE("shards " + std::to_string(shards) + " index " +
                     std::to_string(index) + " threads " + std::to_string(threads));
        expect_identical(reference, result);
        EXPECT_TRUE(audit(dc).empty());
      }
    }
  }
}

}  // namespace
}  // namespace slackvm::sim
