#include "sim/capacity.hpp"

#include <gtest/gtest.h>

#include "sched/policy.hpp"
#include "sim/replay.hpp"
#include "workload/generator.hpp"

namespace slackvm::sim {
namespace {

using core::gib;

const core::Resources kWorker{32, gib(128)};

core::VmInstance make_vm(std::uint64_t id, core::SimTime arrival, core::SimTime departure,
                         core::VcpuCount vcpus, std::uint8_t ratio = 1) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = vcpus;
  vm.spec.mem_mib = gib(4);
  vm.spec.level = core::OversubLevel{ratio};
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

DatacenterFactory shared_factory(const sim::PolicyFactory& policy) {
  return [policy] { return Datacenter::shared(kWorker, policy); };
}

TEST(FixedFleet, TryDeployRejectsBeyondCap) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_first_fit);
  dc.set_max_hosts_per_cluster(1);
  EXPECT_TRUE(dc.try_deploy(core::VmId{1}, make_vm(1, 0, 1, 32).spec));
  EXPECT_FALSE(dc.try_deploy(core::VmId{2}, make_vm(2, 0, 1, 4).spec));
  EXPECT_EQ(dc.opened_pms(), 1U);
  EXPECT_EQ(dc.vm_count(), 1U);
}

TEST(FixedFleet, RejectionLeavesClusterUnchanged) {
  sched::VCluster cluster("capped", kWorker, sched::make_first_fit());
  cluster.set_max_hosts(1);
  ASSERT_TRUE(cluster.try_place(core::VmId{1}, make_vm(1, 0, 1, 32).spec));
  const auto before = cluster.total_alloc();
  EXPECT_FALSE(cluster.try_place(core::VmId{2}, make_vm(2, 0, 1, 1).spec).has_value());
  EXPECT_EQ(cluster.total_alloc(), before);
  EXPECT_EQ(cluster.opened_hosts(), 1U);
}

TEST(FixedFleet, FeasibilityMatchesHandComputedBound) {
  // Two concurrent 32-core VMs need 2 PMs; sequential ones need 1.
  const workload::Trace concurrent(
      {make_vm(1, 0, 100, 32), make_vm(2, 50, 150, 32)});
  EXPECT_FALSE(feasible_with(shared_factory(sched::make_first_fit), concurrent, 1));
  EXPECT_TRUE(feasible_with(shared_factory(sched::make_first_fit), concurrent, 2));

  const workload::Trace sequential(
      {make_vm(1, 0, 100, 32), make_vm(2, 100, 200, 32)});
  EXPECT_TRUE(feasible_with(shared_factory(sched::make_first_fit), sequential, 1));
}

TEST(FixedFleet, MinFleetNeverExceedsElastic) {
  const workload::Trace trace =
      workload::Generator(workload::ovhcloud_catalog(), workload::distribution('F'),
                          {.target_population = 100,
                           .horizon = 3.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 17})
          .generate();
  for (const sim::PolicyFactory& policy :
       {sim::PolicyFactory(sched::make_first_fit),
        sim::PolicyFactory(sched::make_progress_policy)}) {
    const MinFleetResult result = find_min_fleet(shared_factory(policy), trace);
    EXPECT_GE(result.elastic_pms, result.min_pms);
    EXPECT_GT(result.min_pms, 0U);
    EXPECT_GT(result.probes, 0U);
  }
}

TEST(FixedFleet, FirstFitElasticEqualsFixedMin) {
  // First-Fit never prefers a later host, so lazily-opened PMs change
  // nothing: the elastic count is already its minimal fleet.
  const workload::Trace trace =
      workload::Generator(workload::azure_catalog(), workload::distribution('E'),
                          {.target_population = 80,
                           .horizon = 2.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 23})
          .generate();
  const MinFleetResult result =
      find_min_fleet(shared_factory(sched::make_first_fit), trace);
  EXPECT_EQ(result.min_pms, result.elastic_pms);
}

TEST(FixedFleet, EmptyTraceNeedsNoFleet) {
  const MinFleetResult result =
      find_min_fleet(shared_factory(sched::make_first_fit), workload::Trace{});
  EXPECT_EQ(result.elastic_pms, 0U);
  EXPECT_EQ(result.min_pms, 0U);
}

TEST(FixedFleet, DedicatedModeCapsPerCluster) {
  const workload::Trace trace({make_vm(1, 0, 100, 32, 1), make_vm(2, 0, 100, 32, 1),
                               make_vm(3, 0, 100, 96, 3)});
  const DatacenterFactory factory = [] {
    return Datacenter::dedicated(kWorker,
                                 {core::OversubLevel{1}, core::OversubLevel{3}},
                                 sched::make_first_fit);
  };
  // Per-cluster cap 1: the two 1:1 VMs cannot coexist.
  EXPECT_FALSE(feasible_with(factory, trace, 1));
  EXPECT_TRUE(feasible_with(factory, trace, 2));
}

}  // namespace
}  // namespace slackvm::sim
