#include "core/vm.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace slackvm::core {
namespace {

TEST(VmSpec, PhysicalCoresApplyOversubscription) {
  VmSpec spec;
  spec.vcpus = 4;
  spec.mem_mib = gib(8);
  spec.level = OversubLevel{1};
  EXPECT_EQ(spec.physical_cores(), 4U);
  spec.level = OversubLevel{2};
  EXPECT_EQ(spec.physical_cores(), 2U);
  spec.level = OversubLevel{3};
  EXPECT_EQ(spec.physical_cores(), 2U);  // ceil(4/3)
}

TEST(VmSpec, FootprintCombinesCoresAndMemory) {
  VmSpec spec;
  spec.vcpus = 2;
  spec.mem_mib = gib(8);
  spec.level = OversubLevel{2};
  EXPECT_EQ(spec.footprint(), (Resources{1, gib(8)}));
}

TEST(VmSpec, MemPerVcpuRatio) {
  VmSpec spec;
  spec.vcpus = 2;
  spec.mem_mib = gib(8);
  EXPECT_DOUBLE_EQ(spec.mem_per_vcpu_gib(), 4.0);
}

TEST(VmSpec, StreamFormatIncludesLevelAndUsage) {
  VmSpec spec;
  spec.vcpus = 2;
  spec.mem_mib = gib(4);
  spec.level = OversubLevel{3};
  spec.usage = UsageClass::kInteractive;
  std::ostringstream os;
  os << spec;
  EXPECT_EQ(os.str(), "2vCPU/4GiB@3:1/interactive");
}

TEST(VmId, OrderingAndEquality) {
  EXPECT_LT(VmId{1}, VmId{2});
  EXPECT_EQ(VmId{7}, VmId{7});
  EXPECT_NE(VmId{7}, VmId{8});
}

TEST(VmId, HashableInUnorderedContainers) {
  std::unordered_set<VmId> ids;
  ids.insert(VmId{1});
  ids.insert(VmId{2});
  ids.insert(VmId{1});
  EXPECT_EQ(ids.size(), 2U);
}

TEST(VmInstance, LifetimeIsDepartureMinusArrival) {
  VmInstance vm;
  vm.arrival = 100.0;
  vm.departure = 350.0;
  EXPECT_DOUBLE_EQ(vm.lifetime(), 250.0);
}

TEST(UsageClass, AllNamesRoundTrip) {
  EXPECT_EQ(to_string(UsageClass::kIdle), "idle");
  EXPECT_EQ(to_string(UsageClass::kSteady), "steady");
  EXPECT_EQ(to_string(UsageClass::kBursty), "bursty");
  EXPECT_EQ(to_string(UsageClass::kInteractive), "interactive");
}

}  // namespace
}  // namespace slackvm::core
