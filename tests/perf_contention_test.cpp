#include "perf/contention.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace slackvm::perf {
namespace {

TEST(ContentionModelTest, InflationIsMonotoneInDemand) {
  const ContentionModel model;
  double previous = 0.0;
  for (double q = 0.0; q <= 3.4; q += 0.2) {
    const double inflation = model.contention_inflation(q);
    EXPECT_GT(inflation, previous) << "q=" << q;
    previous = inflation;
  }
}

TEST(ContentionModelTest, ZeroDemandCostsBaseService) {
  const ContentionModel model;
  EXPECT_DOUBLE_EQ(model.expected_response_ms(0.0, 0.0, false),
                   model.params().base_service_ms);
}

TEST(ContentionModelTest, CalibrationHitsTableIvBaseline) {
  // The curve was calibrated against Table IV's baseline column at the
  // per-core demands of the three dedicated scenarios (q = level * 1.02).
  const ContentionModel model;
  EXPECT_NEAR(model.expected_response_ms(1.02, 0.0, false), 1.16, 0.02);
  EXPECT_NEAR(model.expected_response_ms(2.04, 0.0, false), 1.46, 0.02);
  EXPECT_NEAR(model.expected_response_ms(3.06, 0.0, false), 3.47, 0.05);
}

TEST(ContentionModelTest, ConstrainedPenaltyReproducesTableIvFactors) {
  // Table IV overhead factors x1.09 (1:1), x1.13 (2:1), x2.21 (3:1),
  // evaluated at the operating points the shared testbed PM actually
  // realizes: (q, hetero) = (0.94, 0.4), (2.10, 1.0), (3.00, 1.0).
  const ContentionModel model;
  EXPECT_NEAR(model.constrained_penalty(0.94, 0.4), 1.09, 0.02);
  EXPECT_NEAR(model.constrained_penalty(2.10, 1.0), 1.13, 0.02);
  // The 3:1 x2.21 factor decomposes into the constrained penalty (~x1.61)
  // times the density mismatch R(3.00)/R(2.75) (~x1.37): the dedicated 3:1
  // PM is memory-capped below full vCPU density while the vNode is not.
  EXPECT_NEAR(model.constrained_penalty(3.00, 1.0), 1.61, 0.05);
  const double density_mismatch =
      model.contention_inflation(3.00) / model.contention_inflation(2.75);
  EXPECT_NEAR(model.constrained_penalty(3.00, 1.0) * density_mismatch, 2.21, 0.15);
}

TEST(ContentionModelTest, PenaltyGrowsWithSmtPressure) {
  const ContentionModel model;
  EXPECT_LT(model.constrained_penalty(1.0, 0.0), model.constrained_penalty(2.0, 0.0));
  EXPECT_LT(model.constrained_penalty(2.0, 0.0), model.constrained_penalty(3.0, 0.0));
}

TEST(ContentionModelTest, NoSmtPenaltyBelowOneRunnablePerCore) {
  const ContentionModel model;
  const double at_zero = model.constrained_penalty(0.0, 0.0);
  const double at_one = model.constrained_penalty(1.0, 0.0);
  EXPECT_DOUBLE_EQ(at_zero, at_one);  // only the flat pinning cost
  EXPECT_NEAR(at_zero, 1.0 + model.params().pinning_coeff, 1e-12);
}

TEST(ContentionModelTest, HeterogeneityAddsOverhead) {
  const ContentionModel model;
  EXPECT_GT(model.constrained_penalty(1.0, 0.5), model.constrained_penalty(1.0, 0.0));
  EXPECT_THROW((void)model.constrained_penalty(1.0, 1.5), core::SlackError);
}

TEST(ContentionModelTest, UnconstrainedIgnoresPenalty) {
  const ContentionModel model;
  EXPECT_LT(model.expected_response_ms(2.0, 0.0, false),
            model.expected_response_ms(2.0, 0.0, true));
}

TEST(ContentionModelTest, SaturationClampsInsteadOfDiverging) {
  const ContentionModel model;
  const double extreme = model.contention_inflation(10.0);
  EXPECT_TRUE(std::isfinite(extreme));
  EXPECT_GT(extreme, model.contention_inflation(3.4));
}

TEST(ContentionModelTest, NoiseMedianMatchesExpected) {
  const ContentionModel model;
  core::SplitMix64 rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(model.sample_response_ms(2.0, 0.0, false, rng));
  }
  const double expected = model.expected_response_ms(2.0, 0.0, false);
  EXPECT_NEAR(core::median(samples), expected, expected * 0.03);
}

TEST(ContentionModelTest, NoiseIsDeterministicPerSeed) {
  const ContentionModel model;
  core::SplitMix64 a(9);
  core::SplitMix64 b(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(model.sample_response_ms(1.5, 0.1, true, a),
                     model.sample_response_ms(1.5, 0.1, true, b));
  }
}

TEST(ContentionModelTest, InvalidParamsRejected) {
  CalibrationParams params;
  params.base_service_ms = 0.0;
  EXPECT_THROW(ContentionModel{params}, core::SlackError);
}

}  // namespace
}  // namespace slackvm::perf
