// End-to-end integration: workload generation -> trace -> datacenter replay
// -> metrics, plus a full-fidelity replay where every shared host runs a
// real VNodeManager next to the fast accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "local/vnode_manager.hpp"
#include "sim/audit.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "topology/builders.hpp"
#include "workload/generator.hpp"

namespace slackvm {
namespace {

workload::GeneratorConfig gen_config(std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.target_population = 120;
  cfg.horizon = 3.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  return cfg;
}

TEST(EndToEnd, GeneratedTraceSurvivesCsvAndReplaysIdentically) {
  // Debug audit on: both replays re-validate every datacenter invariant
  // after every event (sim/audit.hpp) and throw on the first violation.
  sim::ScopedDebugAudit audit_every_event;
  const workload::Trace original =
      workload::Generator(workload::ovhcloud_catalog(), workload::distribution('F'),
                          gen_config(21))
          .generate();
  std::stringstream buffer;
  original.write_csv(buffer);
  const workload::Trace restored = workload::Trace::read_csv(buffer);
  ASSERT_EQ(original.size(), restored.size());

  sim::Datacenter dc_a =
      sim::Datacenter::shared({32, core::gib(128)}, sched::make_progress_policy);
  sim::Datacenter dc_b =
      sim::Datacenter::shared({32, core::gib(128)}, sched::make_progress_policy);
  const sim::RunResult a = sim::replay(dc_a, original);
  const sim::RunResult b = sim::replay(dc_b, restored);
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
}

TEST(EndToEnd, SharedClusterPlacementsAreLocallyRealizable) {
  // Replay the shared-mode placement decisions against real per-host
  // VNodeManagers: every placement the global scheduler makes must be
  // executable by the local scheduler on that host.
  const workload::Trace trace =
      workload::Generator(workload::azure_catalog(), workload::distribution('E'),
                          gen_config(33))
          .generate();

  const core::Resources host_config{32, core::gib(128)};
  sched::VCluster cluster("shared", host_config, sched::make_progress_policy());
  const topo::CpuTopology worker = topo::make_sim_worker();
  std::map<sched::HostId, local::VNodeManager> locals;
  std::map<core::VmId, sched::HostId> placements;

  struct Ev {
    core::SimTime t;
    bool arrival;
    const core::VmInstance* vm;
  };
  std::vector<Ev> events;
  for (const core::VmInstance& vm : trace.vms()) {
    events.push_back({vm.arrival, true, &vm});
    events.push_back({vm.departure, false, &vm});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Ev& a, const Ev& b) { return a.t < b.t; });

  for (const Ev& ev : events) {
    if (ev.arrival) {
      const sched::HostId host = cluster.place(ev.vm->id, ev.vm->spec);
      auto [it, inserted] = locals.try_emplace(host, worker);
      ASSERT_TRUE(it->second.deploy(ev.vm->id, ev.vm->spec).has_value())
          << "global placement not realizable on host " << host;
      placements[ev.vm->id] = host;
    } else {
      cluster.remove(ev.vm->id);
      locals.at(placements.at(ev.vm->id)).remove(ev.vm->id);
    }
  }
  EXPECT_EQ(cluster.vm_count(), 0U);
  for (auto& [host, manager] : locals) {
    manager.check_invariants();
    EXPECT_EQ(manager.vm_count(), 0U);
  }
}

TEST(EndToEnd, ProgressPolicyNeverUsesMorePmsThanDedicatedOnF) {
  // The headline claim at small scale, across several seeds.
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    sim::ExperimentConfig cfg;
    cfg.generator = gen_config(seed);
    const sim::PackingComparison cmp = sim::compare_packing(
        workload::ovhcloud_catalog(), workload::distribution('F'), cfg);
    EXPECT_LE(cmp.slackvm.opened_pms, cmp.baseline.opened_pms) << "seed " << seed;
  }
}

TEST(EndToEnd, SharedModeDominatesAcrossMixedDistributions) {
  // Pooling levels can only remove the per-cluster threshold waste; verify
  // SlackVM never *loses* PMs on mixed distributions at small scale.
  sim::ExperimentConfig cfg;
  cfg.generator = gen_config(77);
  cfg.generator.target_population = 80;
  for (char letter : {'C', 'E', 'H', 'I', 'M'}) {
    const sim::PackingComparison cmp = sim::compare_packing(
        workload::azure_catalog(), workload::distribution(letter), cfg);
    EXPECT_LE(cmp.slackvm.opened_pms, cmp.baseline.opened_pms + 1) << letter;
  }
}

}  // namespace
}  // namespace slackvm
