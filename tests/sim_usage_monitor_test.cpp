#include "sim/usage_monitor.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "perf/contention.hpp"
#include "sched/policy.hpp"
#include "sched/vcluster.hpp"
#include "sim/replay.hpp"
#include "workload/generator.hpp"
#include "workload/usage.hpp"

namespace slackvm::sim {
namespace {

using core::gib;

core::VmInstance make_vm(std::uint64_t id, core::VcpuCount vcpus, core::MemMib mem,
                         std::uint8_t ratio, core::UsageClass usage,
                         core::SimTime arrival = 0, core::SimTime departure = 7200) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = vcpus;
  vm.spec.mem_mib = mem;
  vm.spec.level = core::OversubLevel{ratio};
  vm.spec.usage = usage;
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

TEST(UsageSampleTest, EmptyDatacenter) {
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  const UsageSample sample = sample_usage(dc, 100.0);
  EXPECT_EQ(sample.opened_hosts, 0U);
  EXPECT_DOUBLE_EQ(sample.demand_cores, 0.0);
}

TEST(UsageSampleTest, DemandMatchesSignals) {
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  const core::VmInstance vm =
      make_vm(1, 8, gib(16), 1, core::UsageClass::kSteady);
  dc.deploy(vm.id, vm.spec);
  const core::SimTime t = 500.0;
  const workload::UsageSignal signal(vm.id, vm.spec.usage);
  const UsageSample sample = sample_usage(dc, t);
  EXPECT_EQ(sample.opened_hosts, 1U);
  EXPECT_EQ(sample.alloc_cores, 8U);
  EXPECT_EQ(sample.capacity_cores, 32U);
  EXPECT_NEAR(sample.demand_cores, 8.0 * signal.at(t), 1e-12);
  EXPECT_EQ(sample.overloaded_hosts, 0U);
}

TEST(UsageSampleTest, OverloadDetectedOnOversubscribedHost) {
  // 96 steady vCPUs at 3:1 on a 32-core host: demand ~ 96 * 0.675 >> 32.
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  for (std::uint64_t i = 1; i <= 24; ++i) {
    dc.deploy(core::VmId{i}, make_vm(i, 4, gib(2), 3, core::UsageClass::kSteady).spec);
  }
  const UsageSample sample = sample_usage(dc, 1000.0);
  EXPECT_EQ(sample.opened_hosts, 1U);
  EXPECT_GT(sample.demand_cores, 32.0);
  EXPECT_EQ(sample.overloaded_hosts, 1U);
}

TEST(UsageMonitorTest, AggregatesSamples) {
  UsageMonitor monitor(3600.0);
  UsageSample a;
  a.demand_cores = 16.0;
  a.alloc_cores = 32;
  a.capacity_cores = 64;
  monitor.record(a);
  UsageSample b;
  b.demand_cores = 32.0;
  b.alloc_cores = 32;
  b.capacity_cores = 64;
  b.overloaded_hosts = 2;
  monitor.record(b);

  const UsageReport report = monitor.report();
  EXPECT_EQ(report.samples, 2U);
  EXPECT_DOUBLE_EQ(report.avg_fleet_utilization, 0.375);  // (0.25 + 0.5) / 2
  EXPECT_DOUBLE_EQ(report.avg_alloc_heat, 0.75);          // (0.5 + 1.0) / 2
  EXPECT_DOUBLE_EQ(report.overload_host_hours, 2.0);
  EXPECT_DOUBLE_EQ(report.peak_fleet_utilization, 0.5);
}

TEST(UsageMonitorTest, ZeroCapacitySamplesSkipped) {
  UsageMonitor monitor(60.0);
  monitor.record(UsageSample{});
  const UsageReport report = monitor.report();
  EXPECT_EQ(report.samples, 1U);
  EXPECT_DOUBLE_EQ(report.avg_fleet_utilization, 0.0);
  EXPECT_DOUBLE_EQ(report.avg_alloc_heat, 0.0);
}

TEST(UsageMonitorTest, InvalidIntervalRejected) {
  EXPECT_THROW(UsageMonitor{0.0}, core::SlackError);
  EXPECT_THROW(UsageMonitor{-60.0}, core::SlackError);
}

// --- per-host breakdown and the heat EWMA feeder ----------------------------

TEST(HostUsageTest, EmptyAndIdleHostsSampleToZeroDemand) {
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  EXPECT_TRUE(sample_host_usage(*dc.clusters()[0], 100.0).empty());
  dc.deploy(core::VmId{1}, make_vm(1, 4, gib(8), 1, core::UsageClass::kIdle).spec);
  const auto usage = sample_host_usage(*dc.clusters()[0], 100.0);
  ASSERT_EQ(usage.size(), 1U);
  EXPECT_EQ(usage[0].capacity_cores, 32U);
  EXPECT_LT(usage[0].demand_cores, 0.2);  // idle: 4 vcpus x ~0.01-0.04
  EXPECT_GT(usage[0].demand_cores, 0.0);
}

TEST(HostUsageTest, BreakdownSumsToTheClusterSample) {
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  for (std::uint64_t i = 1; i <= 30; ++i) {
    dc.deploy(core::VmId{i},
              make_vm(i, 4, gib(2), 3, core::UsageClass::kSteady).spec);
  }
  const core::SimTime t = 1234.0;
  const UsageSample sample = sample_usage(dc, t);
  const auto usage = sample_host_usage(*dc.clusters()[0], t);
  ASSERT_EQ(sample.host_q.size(), usage.size());
  double total = 0.0;
  for (std::size_t h = 0; h < usage.size(); ++h) {
    EXPECT_NEAR(sample.host_q[h],
                usage[h].demand_cores /
                    static_cast<double>(usage[h].capacity_cores),
                1e-12);
    total += usage[h].demand_cores;
  }
  EXPECT_NEAR(total, sample.demand_cores, 1e-9);
}

TEST(HostUsageTest, HeatEwmaMatchesHandComputedReference) {
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  const core::VmInstance vm =
      make_vm(1, 8, gib(16), 1, core::UsageClass::kSteady);
  dc.deploy(vm.id, vm.spec);
  sched::VCluster& cl = dc.cluster(0);
  const double alpha = 0.25;
  const double bucket = 0.25;
  double expected = 0.0;
  for (const core::SimTime t : {900.0, 1800.0, 2700.0, 3600.0}) {
    EXPECT_EQ(update_cluster_heat(cl, t, alpha, bucket), 1U);
    const double q =
        8.0 * workload::UsageSignal(vm.id, vm.spec.usage).at(t) / 32.0;
    expected = alpha * q + (1.0 - alpha) * expected;
    EXPECT_DOUBLE_EQ(cl.host_heat(0), expected);
  }
  // The EWMA decays toward zero once the host empties.
  dc.remove(vm.id);
  const double before = cl.host_heat(0);
  EXPECT_EQ(update_cluster_heat(cl, 4500.0, alpha, bucket), 1U);
  EXPECT_DOUBLE_EQ(cl.host_heat(0), (1.0 - alpha) * before);
}

TEST(UsageMonitorTest, TrackedInflationReportsP90OfHostSamples) {
  // 10 host-samples with q = 0.1 .. 1.0: the p90 must sit at the top of
  // the distribution (this is a regression test for the percentile scale —
  // core::percentile takes q in [0, 100], not [0, 1]).
  const perf::ContentionModel model;
  UsageMonitor monitor(60.0);
  monitor.track_inflation(&model);
  UsageSample sample;
  sample.capacity_cores = 32;
  for (int i = 1; i <= 10; ++i) {
    sample.host_q.push_back(0.1 * i);
  }
  monitor.record(sample);
  const UsageReport report = monitor.report();
  EXPECT_EQ(report.inflation_samples, 10U);
  EXPECT_GT(report.p90_inflation, model.contention_inflation(0.8));
  EXPECT_LE(report.p90_inflation, model.contention_inflation(1.0));
  // Disarmed monitors keep the report inflation-free.
  UsageMonitor plain(60.0);
  plain.record(sample);
  EXPECT_EQ(plain.report().inflation_samples, 0U);
  EXPECT_DOUBLE_EQ(plain.report().p90_inflation, 0.0);
}

TEST(UsageMonitorTest, ReplayIntegration) {
  const workload::Trace trace =
      workload::Generator(workload::azure_catalog(), workload::distribution('E'),
                          {.target_population = 60,
                           .horizon = 2.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 7})
          .generate();
  Datacenter dc = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  UsageMonitor monitor(3600.0);
  (void)replay(dc, trace, std::nullopt, &monitor);
  const UsageReport report = monitor.report();
  EXPECT_GT(report.samples, 40U);  // ~48 hourly samples
  EXPECT_GT(report.avg_fleet_utilization, 0.05);
  EXPECT_LT(report.avg_fleet_utilization, 1.0);
  // Allocated cores run hotter than the fleet average (oversubscription).
  EXPECT_GT(report.avg_alloc_heat, report.avg_fleet_utilization);
}

TEST(UsageMonitorTest, SlackVmRaisesFleetUtilization) {
  const workload::Trace trace =
      workload::Generator(workload::ovhcloud_catalog(), workload::distribution('F'),
                          {.target_population = 150,
                           .horizon = 3.0 * 24 * 3600,
                           .mean_lifetime = 1.5 * 24 * 3600,
                           .seed = 21})
          .generate();
  Datacenter dedicated = Datacenter::dedicated(
      {32, gib(128)}, {core::OversubLevel{1}, core::OversubLevel{3}},
      sched::make_first_fit);
  UsageMonitor base_monitor(3600.0);
  (void)replay(dedicated, trace, std::nullopt, &base_monitor);

  Datacenter shared = Datacenter::shared({32, gib(128)}, sched::make_progress_policy);
  UsageMonitor slack_monitor(3600.0);
  (void)replay(shared, trace, std::nullopt, &slack_monitor);

  EXPECT_GE(slack_monitor.report().avg_fleet_utilization,
            base_monitor.report().avg_fleet_utilization);
}

}  // namespace
}  // namespace slackvm::sim
