// Fault-injection test harness: differential index-vs-naive equality under
// fault-heavy churn, invariant audits after every event across randomized
// schedules, the failed-host placement-index regression, the degraded-queue
// accounting, and the acceptance replay (>= 100 injected failures,
// bit-identical across parallelism and index settings).
#include "sim/fault.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/rng.hpp"
#include "sched/filter.hpp"
#include "sched/vcluster.hpp"
#include "sim/audit.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "sim/scenario.hpp"
#include "workload/catalog.hpp"
#include "workload/level_mix.hpp"

namespace slackvm::sim {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;
using sched::HostId;
using sched::HostPhase;
using sched::VCluster;

const core::Resources kWorker{32, gib(128)};

VmSpec make_spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

/// Catalog-shaped random spec (same scheme as the placement-index tests).
VmSpec random_spec(core::SplitMix64& rng) {
  const workload::LevelMix mix = workload::make_mix(34, 33, 33);
  VmSpec spec;
  spec.level = mix.sample(rng);
  const workload::Catalog& catalog =
      spec.level.oversubscribed()
          ? workload::azure_catalog().truncated(workload::kOversubMemCap)
          : workload::azure_catalog();
  const workload::Flavor& flavor = catalog.sample(rng);
  spec.vcpus = flavor.vcpus;
  spec.mem_mib = flavor.mem_mib;
  return spec;
}

struct PolicyCase {
  const char* label;
  std::unique_ptr<sched::PlacementPolicy> (*make)();
};

std::unique_ptr<sched::PlacementPolicy> make_slackvm_default() {
  return sched::make_slackvm_policy();
}

const PolicyCase kPolicies[] = {
    {"first-fit", sched::make_first_fit},   {"best-fit", sched::make_best_fit},
    {"worst-fit", sched::make_worst_fit},   {"progress", sched::make_progress_policy},
    {"slackvm", make_slackvm_default},
};

void expect_clean_audit(const VCluster& cluster, const char* label, std::size_t event) {
  const auto violations = audit(cluster);
  ASSERT_TRUE(violations.empty()) << label << " event " << event << ": "
                                  << violations.front();
}

/// Drive `events` randomized operations — place/remove/migrate interleaved
/// with fail/evacuate/repair and drain/migrate_off — through a naive and an
/// indexed cluster in lockstep, asserting the identical decision at every
/// step and a clean invariant audit throughout.
void run_fault_differential(const PolicyCase& policy, std::uint64_t seed,
                            std::size_t events) {
  VCluster naive("naive", kWorker, policy.make());
  naive.set_index_enabled(false);
  VCluster indexed("indexed", kWorker, policy.make());
  ASSERT_TRUE(indexed.index_enabled());

  core::SplitMix64 rng(seed);
  std::vector<VmId> live;
  std::vector<HostId> down;  // failed or draining, pending repair
  std::uint64_t next_id = 1;

  const auto place_both = [&](VmId vm, const VmSpec& spec,
                              std::size_t event) -> bool {
    const auto naive_host = naive.try_place(vm, spec);
    const auto indexed_host = indexed.try_place(vm, spec);
    EXPECT_EQ(naive_host, indexed_host)
        << policy.label << ": divergence at event " << event;
    return naive_host.has_value();
  };

  for (std::size_t e = 0; e < events; ++e) {
    if (e % 101 == 37 && naive.opened_hosts() > 1) {
      // Failure: evict the victims and re-place each through the policy
      // path, asserting both sides evict and choose identically.
      const auto host = static_cast<HostId>(rng.below(naive.opened_hosts()));
      const auto naive_victims = naive.fail_host(host);
      const auto indexed_victims = indexed.fail_host(host);
      ASSERT_EQ(naive_victims, indexed_victims)
          << policy.label << ": eviction divergence at event " << e;
      for (const auto& [vm, spec] : naive_victims) {
        // Elastic fleet: re-placement always succeeds (a fresh PM fits).
        ASSERT_TRUE(place_both(vm, spec, e));
      }
      down.push_back(host);
    } else if (e % 211 == 53 && naive.opened_hosts() > 1) {
      // Graceful drain: admission stops, then both sides migrate off the
      // same set of VMs through the policy path.
      const auto host = static_cast<HostId>(rng.below(naive.opened_hosts()));
      if (naive.host_phase(host) == HostPhase::kUp) {
        naive.drain_host(host);
        indexed.drain_host(host);
        ASSERT_EQ(naive.migrate_off(host), indexed.migrate_off(host))
            << policy.label << ": migrate_off divergence at event " << e;
        down.push_back(host);
      }
    } else if (e % 67 == 11 && !down.empty()) {
      const HostId host = down.front();
      down.erase(down.begin());
      naive.repair_host(host);
      indexed.repair_host(host);
    } else if (live.empty() || rng.below(10) < 6) {
      const VmId vm{next_id++};
      if (place_both(vm, random_spec(rng), e)) {
        live.push_back(vm);
      }
    } else {
      const std::size_t victim = rng.below(live.size());
      const VmId vm = live[victim];
      naive.remove(vm);
      indexed.remove(vm);
      live[victim] = live.back();
      live.pop_back();
    }
    if (e % 97 == 0 && !live.empty() && naive.opened_hosts() > 1) {
      // Migration attempts may target failed/draining hosts: both sides
      // must reject those identically (can_host is phase-aware).
      const VmId vm = live[rng.below(live.size())];
      const auto to = static_cast<HostId>(rng.below(naive.opened_hosts()));
      ASSERT_EQ(naive.migrate(vm, to), indexed.migrate(vm, to))
          << policy.label << ": migrate divergence at event " << e;
    }
    if (e % 500 == 0) {
      expect_clean_audit(naive, policy.label, e);
      expect_clean_audit(indexed, policy.label, e);
    }
  }
  EXPECT_EQ(naive.opened_hosts(), indexed.opened_hosts()) << policy.label;
  EXPECT_EQ(naive.total_alloc(), indexed.total_alloc()) << policy.label;
  EXPECT_EQ(naive.vm_count(), indexed.vm_count()) << policy.label;
  expect_clean_audit(naive, policy.label, events);
  expect_clean_audit(indexed, policy.label, events);
}

TEST(FaultDifferential, AllPoliciesMatchNaiveUnderFaultChurn) {
  // >= 10k randomized events per policy with failures, drains, repairs and
  // evacuations interleaved into the regular churn (acceptance criterion).
  std::uint64_t seed = 2001;
  for (const PolicyCase& policy : kPolicies) {
    SCOPED_TRACE(policy.label);
    run_fault_differential(policy, seed++, 10500);
  }
}

// --- placement-index lifecycle regressions --------------------------------

TEST(FaultIndexRegression, HeapMustNotServeFailedHostOfSameSpecClass) {
  // The lazy-deletion heap caches (host, epoch, score) per spec class. A
  // host failed and repaired between two places of the same class must be
  // skipped while FAILED: set_phase bumps the epoch, so the cached entry
  // goes stale. Without the bump the index would serve the failed host.
  for (const PolicyCase& policy : kPolicies) {
    VCluster naive("naive", kWorker, policy.make());
    naive.set_index_enabled(false);
    VCluster indexed("indexed", kWorker, policy.make());

    const VmSpec spec = make_spec(2, gib(4), 1);
    // First place of the class: both open host 0 and cache it.
    ASSERT_EQ(naive.try_place(VmId{1}, spec), indexed.try_place(VmId{1}, spec));
    const HostId host = naive.host_of(VmId{1});

    // Fail the cached host; its VM evacuates to a fresh PM on both sides.
    const auto naive_victims = naive.fail_host(host);
    const auto indexed_victims = indexed.fail_host(host);
    ASSERT_EQ(naive_victims, indexed_victims);
    for (const auto& [vm, s] : naive_victims) {
      ASSERT_EQ(naive.try_place(vm, s), indexed.try_place(vm, s)) << policy.label;
    }

    // Second place of the same class while the host is FAILED: the index
    // must agree with the naive scan (which skips it via can_host).
    const auto naive_second = naive.try_place(VmId{2}, spec);
    const auto indexed_second = indexed.try_place(VmId{2}, spec);
    ASSERT_EQ(naive_second, indexed_second) << policy.label;
    ASSERT_TRUE(naive_second.has_value());
    EXPECT_NE(*indexed_second, host) << policy.label << ": placed on a FAILED host";

    // After repair the host is eligible again — still in lockstep.
    naive.repair_host(host);
    indexed.repair_host(host);
    ASSERT_EQ(naive.try_place(VmId{3}, spec), indexed.try_place(VmId{3}, spec))
        << policy.label;
    expect_clean_audit(naive, policy.label, 0);
    expect_clean_audit(indexed, policy.label, 0);
  }
}

TEST(FaultIndexRegression, RebuildAfterBypassWindowSeesLifecycleChanges) {
  // While an extra filter is installed the index is dropped (bypass window)
  // and hears no epoch bumps. Hosts failed or repaired inside the window
  // must still be classified correctly by the rebuilt index afterwards.
  VCluster naive("naive", kWorker, sched::make_progress_policy());
  naive.set_index_enabled(false);
  VCluster indexed("indexed", kWorker, sched::make_progress_policy());

  core::SplitMix64 rng(31);
  std::uint64_t id = 1;
  for (int i = 0; i < 120; ++i) {
    const VmSpec spec = random_spec(rng);
    const VmId vm{id++};
    ASSERT_EQ(naive.try_place(vm, spec), indexed.try_place(vm, spec)) << i;
  }
  ASSERT_GT(naive.opened_hosts(), 2U);

  // Enter the bypass window and flip host phases while the index is blind.
  naive.set_filter(std::make_unique<sched::MaxVmsFilter>(64));
  indexed.set_filter(std::make_unique<sched::MaxVmsFilter>(64));
  for (const HostId host : {HostId{0}, HostId{1}}) {
    const auto naive_victims = naive.fail_host(host);
    const auto indexed_victims = indexed.fail_host(host);
    ASSERT_EQ(naive_victims, indexed_victims);
    for (const auto& [vm, s] : naive_victims) {
      ASSERT_EQ(naive.try_place(vm, s), indexed.try_place(vm, s));
    }
  }
  naive.repair_host(HostId{1});  // host 0 stays FAILED across the rebuild
  indexed.repair_host(HostId{1});

  // Clearing the filter re-arms the index from live state: host 0 must be
  // excluded, host 1 eligible, and every decision identical to naive.
  naive.set_filter(nullptr);
  indexed.set_filter(nullptr);
  for (int i = 0; i < 200; ++i) {
    const VmSpec spec = random_spec(rng);
    const VmId vm{id++};
    const auto naive_host = naive.try_place(vm, spec);
    const auto indexed_host = indexed.try_place(vm, spec);
    ASSERT_EQ(naive_host, indexed_host) << "post-bypass event " << i;
    ASSERT_TRUE(indexed_host.has_value());
    EXPECT_NE(*indexed_host, HostId{0}) << "placed on the still-FAILED host";
  }
  expect_clean_audit(naive, "bypass-naive", 0);
  expect_clean_audit(indexed, "bypass-indexed", 0);
}

// --- audit ground truth ----------------------------------------------------

TEST(Audit, FlagsVmOnFailedHostAndPassesCoherentState) {
  std::vector<sched::HostState> hosts;
  hosts.emplace_back(0, kWorker);
  hosts[0].add(VmId{1}, make_spec(4, gib(8), 2));
  EXPECT_TRUE(audit(std::span<const sched::HostState>(hosts)).empty());

  hosts[0].set_phase(HostPhase::kFailed);
  const auto violations = audit(std::span<const sched::HostState>(hosts));
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("FAILED"), std::string::npos);
}

TEST(Audit, DebugAuditCheckThrowsInsideReplayOnViolation) {
  // debug_audit_check is wired into replay()'s observe path; prove the flag
  // gates it and that a violation actually throws.
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  dc.deploy(VmId{1}, make_spec(2, gib(4), 1));
  // Corrupt: mark the host FAILED while its VM is still on it. The public
  // lifecycle never does this (fail_host evicts first); reach around it.
  const_cast<sched::HostState&>(dc.clusters().front()->hosts()[0])
      .set_phase(HostPhase::kFailed);
  debug_audit_check(dc);  // flag off: no throw
  {
    ScopedDebugAudit enabled;
    EXPECT_THROW(debug_audit_check(dc), core::SlackError);
  }
  debug_audit_check(dc);  // scope restored the flag
}

// --- randomized schedules audited after every event ------------------------

TEST(FaultInvariant, RandomizedSchedulesAuditCleanAcross16Seeds) {
  // Seed-derived fault schedules over real generated workloads; the debug
  // audit runs the full invariant suite after *every* event and throws on
  // the first violation. Every victim must be accounted exactly once.
  ScopedDebugAudit audit_every_event;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    workload::GeneratorConfig gen;
    gen.target_population = 50;
    gen.horizon = 2.0 * 24 * 3600;
    gen.mean_lifetime = 1.0 * 24 * 3600;
    gen.seed = seed;
    const workload::Trace trace =
        workload::Generator(workload::ovhcloud_catalog(),
                            workload::distribution('F'), gen)
            .generate();

    FaultConfig faults;
    faults.count = 25;
    faults.seed = core::derive_seed(seed, kFaultSeedStream);
    faults.repair_delay = 6.0 * 3600;
    faults.drain_lead = (seed % 2 == 0) ? 1800.0 : 0.0;  // both fault styles
    Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
    const RunResult result = replay(dc, trace, std::nullopt, nullptr, &faults);

    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_GT(result.host_failures, 0U);
    EXPECT_EQ(result.evacuated_vms,
              result.evac_replaced + result.evac_departed + result.degraded_vms);
    EXPECT_EQ(result.degraded_vms, 0U);  // elastic fleet: nothing degrades
    EXPECT_TRUE(audit(dc).empty());
  }
}

// --- degraded queue / retry accounting --------------------------------------

TEST(FaultDegraded, ExhaustedFixedFleetParksVictimsInDegradedQueue) {
  // Two-PM fixed fleet, both full. Failing one strands its VMs: no retry
  // can succeed (no capacity, no repair), so after the bounded backoff
  // every victim must land in the degraded queue — not abort the run.
  std::vector<core::VmInstance> vms;
  for (std::uint64_t i = 0; i < 4; ++i) {
    core::VmInstance vm;
    vm.id = VmId{i + 1};
    vm.spec = make_spec(16, gib(32), 1);  // two per 32-core PM
    vm.arrival = 0.0;
    vm.departure = 100000.0;
    vms.push_back(vm);
  }
  const workload::Trace trace{std::move(vms)};

  FaultConfig faults;
  FaultDirective fail;
  fail.kind = FaultDirective::Kind::kFail;
  fail.host = 1;
  fail.at = 10.0;
  faults.directives.push_back(fail);
  faults.max_retries = 3;
  faults.backoff_base = 5.0;

  ScopedDebugAudit audit_every_event;
  Datacenter dc = Datacenter::shared(kWorker, sched::make_first_fit);
  dc.set_max_hosts_per_cluster(2);
  const RunResult result = replay(dc, trace, std::nullopt, nullptr, &faults);

  EXPECT_EQ(result.placed_vms, 4U);
  EXPECT_EQ(result.host_failures, 1U);
  EXPECT_EQ(result.evacuated_vms, 2U);
  EXPECT_EQ(result.evac_replaced, 0U);
  EXPECT_EQ(result.degraded_vms, 2U);
  EXPECT_EQ(result.evac_retries, 2U * 3U);  // both victims exhaust 3 retries
  EXPECT_EQ(result.evacuated_vms,
            result.evac_replaced + result.evac_departed + result.degraded_vms);
}

TEST(FaultDegraded, VictimDepartingBeforeRetrySucceedsIsAbsorbed) {
  // The victim's natural departure lands between backoff retries; the
  // injector must absorb it (the VM is not in the datacenter) and account
  // it as evac_departed.
  std::vector<core::VmInstance> vms;
  for (std::uint64_t i = 0; i < 4; ++i) {
    core::VmInstance vm;
    vm.id = VmId{i + 1};
    vm.spec = make_spec(16, gib(32), 1);
    vm.arrival = 0.0;
    vm.departure = (i < 2) ? 100000.0 : 50.0;  // VMs 3 and 4 depart early
    vms.push_back(vm);
  }
  const workload::Trace trace{std::move(vms)};

  FaultConfig faults;
  FaultDirective fail;
  fail.kind = FaultDirective::Kind::kFail;
  fail.host = 1;  // first-fit fills host 0 with VMs 1-2, host 1 with 3-4
  fail.at = 10.0;
  faults.directives.push_back(fail);
  faults.max_retries = 5;
  faults.backoff_base = 30.0;  // first retry at t=40, second at t=100 > 50

  ScopedDebugAudit audit_every_event;
  Datacenter dc = Datacenter::shared(kWorker, sched::make_first_fit);
  dc.set_max_hosts_per_cluster(2);
  const RunResult result = replay(dc, trace, std::nullopt, nullptr, &faults);

  EXPECT_EQ(result.evacuated_vms, 2U);
  EXPECT_EQ(result.evac_departed, 2U);
  EXPECT_EQ(result.degraded_vms, 0U);
  EXPECT_EQ(result.evacuated_vms,
            result.evac_replaced + result.evac_departed + result.degraded_vms);
}

TEST(FaultDegraded, ArrivalsDeferThenPlaceAfterRepair) {
  // Capacity is gone while the only free PM is FAILED; an arriving VM must
  // defer, then place on a backoff retry once the host is repaired.
  std::vector<core::VmInstance> vms;
  core::VmInstance first;
  first.id = VmId{1};
  first.spec = make_spec(32, gib(64), 1);
  first.arrival = 0.0;
  first.departure = 1000.0;
  core::VmInstance late;
  late.id = VmId{2};
  late.spec = make_spec(32, gib(64), 1);
  late.arrival = 20.0;  // while host 1 is down and host 0 is full
  late.departure = 1000.0;
  vms.push_back(first);
  vms.push_back(late);
  const workload::Trace trace{std::move(vms)};

  FaultConfig faults;
  FaultDirective fail;
  fail.kind = FaultDirective::Kind::kFail;
  fail.host = 1;
  fail.at = 10.0;
  FaultDirective repair;
  repair.kind = FaultDirective::Kind::kRepair;
  repair.host = 1;
  repair.at = 30.0;
  faults.directives.push_back(fail);
  faults.directives.push_back(repair);
  faults.backoff_base = 15.0;  // retry at t=35, after the repair

  ScopedDebugAudit audit_every_event;
  Datacenter dc = Datacenter::shared(kWorker, sched::make_first_fit);
  dc.set_max_hosts_per_cluster(2);
  // Open host 1 up front so the failure directive has a target: a second
  // full-PM VM forces it open, then departs before the failure.
  {
    core::VmInstance opener;
    opener.id = VmId{99};
    opener.spec = make_spec(32, gib(64), 1);
    opener.arrival = 0.0;
    opener.departure = 5.0;
    std::vector<core::VmInstance> all = trace.vms();
    all.push_back(opener);
    const workload::Trace full_trace{std::move(all)};
    const RunResult result = replay(dc, full_trace, std::nullopt, nullptr, &faults);

    EXPECT_EQ(result.host_failures, 1U);
    EXPECT_EQ(result.host_repairs, 1U);
    EXPECT_EQ(result.deferred_arrivals, 1U);
    EXPECT_EQ(result.arrivals_dropped, 0U);
    EXPECT_EQ(result.placed_vms, 3U);  // all eventually placed
  }
}

// --- acceptance: bit-identical fault-heavy replays --------------------------

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.peak_active_pms, b.peak_active_pms);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.opened_per_cluster, b.opened_per_cluster);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  // Exact (not NEAR) comparisons: bit-identical is the contract.
  EXPECT_EQ(a.avg_unalloc_cpu_share, b.avg_unalloc_cpu_share);
  EXPECT_EQ(a.avg_unalloc_mem_share, b.avg_unalloc_mem_share);
  EXPECT_EQ(a.peak_unalloc_cpu_share, b.peak_unalloc_cpu_share);
  EXPECT_EQ(a.peak_unalloc_mem_share, b.peak_unalloc_mem_share);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.avg_active_pms, b.avg_active_pms);
  EXPECT_EQ(a.avg_alloc_cores, b.avg_alloc_cores);
  EXPECT_EQ(a.host_failures, b.host_failures);
  EXPECT_EQ(a.host_repairs, b.host_repairs);
  EXPECT_EQ(a.drained_hosts, b.drained_hosts);
  EXPECT_EQ(a.evacuated_vms, b.evacuated_vms);
  EXPECT_EQ(a.evac_replaced, b.evac_replaced);
  EXPECT_EQ(a.evac_migrated, b.evac_migrated);
  EXPECT_EQ(a.evac_retries, b.evac_retries);
  EXPECT_EQ(a.evac_departed, b.evac_departed);
  EXPECT_EQ(a.degraded_vms, b.degraded_vms);
  EXPECT_EQ(a.deferred_arrivals, b.deferred_arrivals);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
  EXPECT_EQ(a.mig_planned, b.mig_planned);
  EXPECT_EQ(a.mig_committed, b.mig_committed);
  EXPECT_EQ(a.mig_cancelled, b.mig_cancelled);
  EXPECT_EQ(a.mig_rolled_back, b.mig_rolled_back);
  EXPECT_EQ(a.mig_timed_out, b.mig_timed_out);
  EXPECT_EQ(a.mig_degraded, b.mig_degraded);
  EXPECT_EQ(a.mig_retries, b.mig_retries);
}

TEST(FaultAcceptance, HundredFailuresBitIdenticalAcrossParallelismAndIndex) {
  // The acceptance replay: a schedule injecting >= 100 applied host
  // failures (with drains) must produce exactly equal metrics — fault
  // counters included — across parallelism 1/2/8 and index on/off, with
  // zero audit violations and every victim accounted for.
  ScopedDebugAudit audit_every_event;
  ExperimentConfig base;
  base.generator.target_population = 60;
  base.generator.horizon = 2.0 * 24 * 3600;
  base.generator.mean_lifetime = 1.0 * 24 * 3600;
  base.generator.seed = 42;
  base.repetitions = 2;
  base.faults.count = 90;  // per repetition; both reps together clear 100
  base.faults.repair_delay = 3.0 * 3600;
  base.faults.drain_lead = 900.0;

  const auto& catalog = workload::ovhcloud_catalog();
  const auto& mix = workload::distribution('F');

  // Direct replay of one repetition's timetable, hard kills: >= 100 applied
  // failures with real evacuations, every victim accounted exactly once.
  {
    const workload::Trace trace =
        workload::Generator(catalog, mix, base.generator).generate();
    FaultConfig hard = base.faults;
    // A long repair delay saturates the small fleet (seeded faults aimed at
    // an already-FAILED host fizzle); quick repairs keep targets available.
    hard.count = 250;
    hard.repair_delay = 1800.0;
    hard.drain_lead = 0.0;
    const FaultConfig resolved = resolve_fault_seed(hard, base.generator.seed);
    Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
    const RunResult direct = replay(dc, trace, std::nullopt, nullptr, &resolved);
    ASSERT_GE(direct.host_failures, 100U);
    ASSERT_GT(direct.evacuated_vms, 0U);
    EXPECT_EQ(direct.evacuated_vms, direct.evac_replaced + direct.evac_departed +
                                        direct.degraded_vms);
    EXPECT_TRUE(audit(dc).empty());
  }

  const PackingComparison reference = compare_packing(catalog, mix, base);
  // The graceful-drain grid bites too: with two repetitions averaged, >= 50
  // mean applied failures per run proves >= 100 injected across the cell.
  ASSERT_GE(reference.baseline.host_failures, 50U);
  ASSERT_GE(reference.slackvm.host_failures, 50U);
  ASSERT_GT(reference.slackvm.drained_hosts, 0U);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    for (const bool use_index : {true, false}) {
      ExperimentConfig cfg = base;
      cfg.parallelism = threads;
      cfg.use_index = use_index;
      const PackingComparison run = compare_packing(catalog, mix, cfg);
      SCOPED_TRACE("threads " + std::to_string(threads) + " index " +
                   (use_index ? "on" : "off"));
      EXPECT_EQ(reference.provider, run.provider);
      expect_identical(reference.baseline, run.baseline);
      expect_identical(reference.slackvm, run.slackvm);
    }
  }
}

// --- scenario round-trip -----------------------------------------------------

TEST(FaultScenario, FaultKeysAndDirectivesRoundTrip) {
  const std::string text = R"(name availability
provider ovhcloud
distribution F
population 80
seed 7
faults 12
fault_seed 99
repair_delay_s 7200
drain_lead_s 600
evac_retries 4
evac_backoff_s 30
fail host=3 at=86400
drain host=1 at=3600 cluster=0
repair host=3 at=90000
)";
  std::istringstream in(text);
  const Scenario scenario = parse_scenario(in);
  EXPECT_EQ(scenario.config.faults.count, 12U);
  EXPECT_EQ(scenario.config.faults.seed, 99U);
  EXPECT_EQ(scenario.config.faults.repair_delay, 7200.0);
  EXPECT_EQ(scenario.config.faults.drain_lead, 600.0);
  EXPECT_EQ(scenario.config.faults.max_retries, 4U);
  EXPECT_EQ(scenario.config.faults.backoff_base, 30.0);
  ASSERT_EQ(scenario.config.faults.directives.size(), 3U);
  EXPECT_EQ(scenario.config.faults.directives[0].kind, FaultDirective::Kind::kFail);
  EXPECT_EQ(scenario.config.faults.directives[0].host, 3U);
  EXPECT_EQ(scenario.config.faults.directives[0].at, 86400.0);
  EXPECT_EQ(scenario.config.faults.directives[1].kind, FaultDirective::Kind::kDrain);
  EXPECT_EQ(scenario.config.faults.directives[2].kind, FaultDirective::Kind::kRepair);

  std::ostringstream out;
  write_scenario(scenario, out);
  std::istringstream in2(out.str());
  const Scenario reparsed = parse_scenario(in2);
  EXPECT_EQ(reparsed.config.faults.count, scenario.config.faults.count);
  EXPECT_EQ(reparsed.config.faults.seed, scenario.config.faults.seed);
  EXPECT_EQ(reparsed.config.faults.repair_delay, scenario.config.faults.repair_delay);
  EXPECT_EQ(reparsed.config.faults.drain_lead, scenario.config.faults.drain_lead);
  EXPECT_EQ(reparsed.config.faults.max_retries, scenario.config.faults.max_retries);
  EXPECT_EQ(reparsed.config.faults.backoff_base, scenario.config.faults.backoff_base);
  EXPECT_EQ(reparsed.config.faults.directives, scenario.config.faults.directives);
}

TEST(FaultScenario, MalformedDirectivesAreRejectedWithLineNumbers) {
  for (const char* bad : {
           "name x\npopulation 10\nfail at=5\n",            // missing host=
           "name x\npopulation 10\nfail host=1\n",          // missing at=
           "name x\npopulation 10\nfail host=1 when=5\n",   // unknown field
           "name x\npopulation 10\nfail host1 at=5\n",      // not key=value
       }) {
    std::istringstream in(bad);
    EXPECT_THROW((void)parse_scenario(in), core::SlackError) << bad;
  }
}

TEST(FaultScenario, SeedResolutionDerivesOnlyWhenUnset) {
  FaultConfig cfg;
  cfg.count = 5;
  const FaultConfig derived = resolve_fault_seed(cfg, 42);
  EXPECT_EQ(derived.seed, core::derive_seed(42, kFaultSeedStream));
  cfg.seed = 1234;
  const FaultConfig pinned = resolve_fault_seed(cfg, 42);
  EXPECT_EQ(pinned.seed, 1234U);
}

// --- lifecycle units ---------------------------------------------------------

TEST(FaultLifecycle, DrainStopsAdmissionAndMigrateOffEmptiesTheHost) {
  VCluster cluster("c", kWorker, sched::make_first_fit());
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(cluster.try_place(VmId{i}, make_spec(8, gib(16), 1)).has_value());
  }
  ASSERT_EQ(cluster.opened_hosts(), 1U);
  cluster.drain_host(0);
  EXPECT_EQ(cluster.host_phase(0), HostPhase::kDraining);

  // Admission stopped: the next placement opens a new PM.
  ASSERT_EQ(cluster.try_place(VmId{10}, make_spec(2, gib(4), 1)),
            std::optional<HostId>{1});

  // Everything migrates off through the policy path (host 1 has room).
  EXPECT_EQ(cluster.migrate_off(0), 4U);
  EXPECT_TRUE(cluster.hosts()[0].empty());
  EXPECT_TRUE(audit(cluster).empty());

  cluster.repair_host(0);
  EXPECT_EQ(cluster.host_phase(0), HostPhase::kUp);
  EXPECT_THROW((void)cluster.migrate_off(0), core::SlackError);  // not draining
}

TEST(FaultLifecycle, DatacenterFailHostDetachesVictimsFromRouting) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_first_fit);
  dc.deploy(VmId{1}, make_spec(4, gib(8), 1));
  dc.deploy(VmId{2}, make_spec(4, gib(8), 2));
  ASSERT_EQ(dc.vm_count(), 2U);

  const auto victims = dc.fail_host(0, 0);
  ASSERT_EQ(victims.size(), 2U);
  EXPECT_EQ(victims[0].first, VmId{1});  // ascending VmId order
  EXPECT_EQ(victims[1].first, VmId{2});
  EXPECT_EQ(dc.vm_count(), 0U);
  EXPECT_THROW(dc.remove(VmId{1}), core::SlackError);  // fully detached
  EXPECT_TRUE(audit(dc).empty());

  // Victims re-deploy through the normal path onto a healthy PM.
  ASSERT_TRUE(dc.try_deploy(victims[0].first, victims[0].second).has_value());
  EXPECT_EQ(dc.vm_count(), 1U);
}

TEST(FaultLifecycle, DrainOfFailedHostThrows) {
  VCluster cluster("c", kWorker, sched::make_first_fit());
  ASSERT_TRUE(cluster.try_place(VmId{1}, make_spec(2, gib(4), 1)).has_value());
  (void)cluster.fail_host(0);
  EXPECT_THROW(cluster.drain_host(0), core::SlackError);
  cluster.repair_host(0);
  cluster.drain_host(0);  // legal again after repair
  EXPECT_EQ(cluster.host_phase(0), HostPhase::kDraining);
}

}  // namespace
}  // namespace slackvm::sim
