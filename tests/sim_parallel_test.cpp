// Determinism harness for the parallel experiment engine: the parallel
// runner must produce bit-identical results to serial execution at every
// thread count, across providers, distributions, and repetition counts.
// Also unit-tests the work-stealing ThreadPool itself.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/audit.hpp"
#include "sim/experiment.hpp"

namespace slackvm::sim {
namespace {

// Thread counts every differential case is checked at; 1 exercises the
// pool-less fast path, 8 oversubscribes small grids so stealing kicks in.
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

ExperimentConfig small_config(std::size_t repetitions) {
  ExperimentConfig cfg;
  cfg.generator.target_population = 60;
  cfg.generator.horizon = 2.0 * 24 * 3600;
  cfg.generator.mean_lifetime = 1.0 * 24 * 3600;
  cfg.generator.seed = 42;
  cfg.repetitions = repetitions;
  return cfg;
}

// Bit-exact equality on every RunResult field (EXPECT_EQ on the doubles is
// deliberate: the guarantee is identical bits, not approximate agreement).
void expect_identical(const RunResult& serial, const RunResult& parallel) {
  EXPECT_EQ(serial.opened_pms, parallel.opened_pms);
  EXPECT_EQ(serial.peak_active_pms, parallel.peak_active_pms);
  EXPECT_EQ(serial.migrations, parallel.migrations);
  EXPECT_EQ(serial.opened_per_cluster, parallel.opened_per_cluster);
  EXPECT_EQ(serial.placed_vms, parallel.placed_vms);
  EXPECT_EQ(serial.peak_vms, parallel.peak_vms);
  EXPECT_EQ(serial.avg_unalloc_cpu_share, parallel.avg_unalloc_cpu_share);
  EXPECT_EQ(serial.avg_unalloc_mem_share, parallel.avg_unalloc_mem_share);
  EXPECT_EQ(serial.peak_unalloc_cpu_share, parallel.peak_unalloc_cpu_share);
  EXPECT_EQ(serial.peak_unalloc_mem_share, parallel.peak_unalloc_mem_share);
  EXPECT_EQ(serial.duration, parallel.duration);
  EXPECT_EQ(serial.avg_active_pms, parallel.avg_active_pms);
  EXPECT_EQ(serial.avg_alloc_cores, parallel.avg_alloc_cores);
}

void expect_identical(const PackingComparison& serial,
                      const PackingComparison& parallel) {
  EXPECT_EQ(serial.provider, parallel.provider);
  EXPECT_EQ(serial.distribution, parallel.distribution);
  expect_identical(serial.baseline, parallel.baseline);
  expect_identical(serial.slackvm, parallel.slackvm);
}

TEST(ParallelDifferential, ComparePackingMatchesSerialEverywhere) {
  // Debug audit on: every replay re-validates the datacenter invariants
  // after every event (sim/audit.hpp) and throws on the first violation.
  ScopedDebugAudit audit_every_event;
  for (const workload::Catalog* catalog :
       {&workload::ovhcloud_catalog(), &workload::azure_catalog()}) {
    for (char dist : {'A', 'F', 'O'}) {
      for (std::size_t reps : {std::size_t{1}, std::size_t{3}}) {
        ExperimentConfig cfg = small_config(reps);
        const PackingComparison serial =
            compare_packing(*catalog, workload::distribution(dist), cfg);
        for (std::size_t threads : kThreadCounts) {
          cfg.parallelism = threads;
          const PackingComparison parallel =
              compare_packing(*catalog, workload::distribution(dist), cfg);
          SCOPED_TRACE(catalog->provider() + " dist " + dist + " reps " +
                       std::to_string(reps) + " threads " + std::to_string(threads));
          expect_identical(serial, parallel);
        }
      }
    }
  }
}

TEST(ParallelDifferential, DistributionSweepMatchesSerialEverywhere) {
  ScopedDebugAudit audit_every_event;
  ExperimentConfig cfg = small_config(2);
  cfg.generator.target_population = 40;
  const std::vector<PackingComparison> serial =
      run_distribution_sweep(workload::azure_catalog(), cfg);
  ASSERT_EQ(serial.size(), 15U);
  for (std::size_t threads : kThreadCounts) {
    cfg.parallelism = threads;
    const std::vector<PackingComparison> parallel =
        run_distribution_sweep(workload::azure_catalog(), cfg);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("distribution " + serial[i].distribution + " threads " +
                   std::to_string(threads));
      expect_identical(serial[i], parallel[i]);
    }
  }
}

TEST(ParallelDifferential, SavingsHeatmapMatchesSerial) {
  ExperimentConfig cfg = small_config(1);
  cfg.generator.target_population = 40;
  const std::vector<HeatmapCell> serial =
      run_savings_heatmap(workload::ovhcloud_catalog(), cfg);
  cfg.parallelism = 8;
  const std::vector<HeatmapCell> parallel =
      run_savings_heatmap(workload::ovhcloud_catalog(), cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].pct_1to1, parallel[i].pct_1to1);
    EXPECT_EQ(serial[i].pct_2to1, parallel[i].pct_2to1);
    EXPECT_EQ(serial[i].saving_pct, parallel[i].saving_pct);
  }
}

TEST(ParallelDifferential, ParallelismZeroMeansAllCoresAndStaysIdentical) {
  ExperimentConfig cfg = small_config(2);
  const PackingComparison serial =
      compare_packing(workload::ovhcloud_catalog(), workload::distribution('F'), cfg);
  cfg.parallelism = 0;  // resolve to hardware_concurrency
  const PackingComparison parallel =
      compare_packing(workload::ovhcloud_catalog(), workload::distribution('F'), cfg);
  expect_identical(serial, parallel);
}

TEST(ThreadPoolTest, ExecutesEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    ThreadPool pool(threads);
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{64}, std::size_t{257}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.run(count, [&hits](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.run(32, [&total](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 320U);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i == 7) {
                            throw std::runtime_error("cell 7 failed");
                          }
                        }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<std::size_t> total{0};
  pool.run(8, [&total](std::size_t) { ++total; });
  EXPECT_EQ(total.load(), 8U);
}

TEST(ThreadPoolTest, NonFatalWatchdogDumpsAndKeepsWaiting) {
  // A worker wedges until the watchdog's on_stall releases it: the bounded
  // wait must fire at least once, and run() must still complete the batch
  // afterwards (non-fatal watchdogs keep waiting after the dump).
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> stalls{0};
  std::atomic<bool> worker_ran{false};
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  WatchdogConfig watchdog;
  watchdog.timeout = std::chrono::milliseconds(20);
  watchdog.fatal = false;
  watchdog.on_stall = [&stalls, &release] {
    stalls.fetch_add(1);
    release.store(true);  // un-wedge the worker so the batch can finish
  };
  pool.run(
      16,
      [&](std::size_t) {
        executed.fetch_add(1);
        if (std::this_thread::get_id() == caller) {
          // The caller drains its share before it starts watching the pool;
          // keep it busy long enough for the workers to wake and grab work.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return;
        }
        worker_ran.store(true);
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      &watchdog);
  EXPECT_EQ(executed.load(), 16);
  EXPECT_TRUE(worker_ran.load());
  if (worker_ran.load()) {
    // A wedged worker can only have been released by on_stall.
    EXPECT_GE(stalls.load(), 1);
  }
}

TEST(ParallelRunnerTest, MapReturnsResultsInIndexOrder) {
  for (std::size_t threads : kThreadCounts) {
    ParallelRunner runner(threads);
    const std::vector<std::size_t> out = runner.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100U);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i * i);
    }
  }
}

TEST(ParallelRunnerTest, TaskSeedIsStableAndThreadIndependent) {
  // The per-task seed is a pure function of (base, index): compute it from
  // many threads concurrently and compare against the serial value.
  constexpr std::uint64_t kBase = 12345;
  std::vector<std::uint64_t> serial(64);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = ParallelRunner::task_seed(kBase, i);
  }
  ParallelRunner runner(8);
  const std::vector<std::uint64_t> parallel = runner.map<std::uint64_t>(
      serial.size(), [](std::size_t i) { return ParallelRunner::task_seed(kBase, i); });
  EXPECT_EQ(serial, parallel);
  // And adjacent indices must not collide.
  for (std::size_t i = 1; i < serial.size(); ++i) {
    EXPECT_NE(serial[i], serial[i - 1]);
  }
}

}  // namespace
}  // namespace slackvm::sim
