// Differential proof that the incremental local pinning engine
// (local/placement.hpp fast path + the VNodeManager bookkeeping built on
// it) is bit-identical to the naive reference: same vNode CPU sets, same
// pin updates, same pooling choices, over randomized deploy/remove/retune
// churn on several builder topologies. Mirrors the naive-vs-indexed churn
// treatment of sched::PlacementIndex (tests/sched_placement_index_test.cpp).
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "local/placement.hpp"
#include "local/vnode_manager.hpp"
#include "topology/builders.hpp"
#include "topology/distance.hpp"

namespace slackvm::local {
namespace {

using core::OversubLevel;
using core::VmId;
using core::VmSpec;

std::vector<std::pair<std::string, topo::CpuTopology>> builder_topologies() {
  topo::GenericSpec nps;
  nps.sockets = 2;
  nps.cores_per_socket = 16;
  nps.smt = 2;
  nps.cores_per_l3 = 4;
  nps.numa_per_socket = 2;
  nps.name = "generic_nps2";
  std::vector<std::pair<std::string, topo::CpuTopology>> topologies;
  topologies.emplace_back("dual_epyc_7662", topo::make_dual_epyc_7662());
  topologies.emplace_back("dual_xeon_6230", topo::make_dual_xeon_6230());
  topologies.emplace_back("generic_nps2", topo::make_generic(nps));
  topologies.emplace_back("flat_32", topo::make_flat(32, core::gib(128)));
  return topologies;
}

// ---------------------------------------------------------------------------
// Function-level differential: random pools/sets, every selection primitive.

TEST(FastpathFunctions, MatchNaiveOnRandomSets) {
  for (const auto& [name, machine] : builder_topologies()) {
    const auto dm = topo::DistanceMatrixCache::shared(machine);
    const auto n = machine.cpu_count();
    core::SplitMix64 rng(1234);
    PlacementScratch scratch;
    for (int round = 0; round < 300; ++round) {
      topo::CpuSet current(n);
      topo::CpuSet free_cpus(n);
      for (std::size_t cpu = 0; cpu < n; ++cpu) {
        const double u = rng.uniform();
        if (u < 0.25) {
          current.set(static_cast<topo::CpuId>(cpu));
        } else if (u < 0.65) {
          free_cpus.set(static_cast<topo::CpuId>(cpu));
        }
      }
      const std::size_t count = 1 + rng.below(8);

      const auto fast_ext =
          choose_extension_cpus(*dm, free_cpus, current, count, scratch);
      const auto naive_ext = naive::choose_extension_cpus(*dm, free_cpus, current, count);
      ASSERT_EQ(fast_ext.has_value(), naive_ext.has_value()) << name;
      if (fast_ext) {
        ASSERT_EQ(*fast_ext, *naive_ext) << name << " extension round " << round;
      }

      const auto fast_seed =
          choose_seed_cpus(*dm, free_cpus, current, count, scratch);
      const auto naive_seed = naive::choose_seed_cpus(*dm, free_cpus, current, count);
      ASSERT_EQ(fast_seed.has_value(), naive_seed.has_value()) << name;
      if (fast_seed) {
        ASSERT_EQ(*fast_seed, *naive_seed) << name << " seed round " << round;
      }

      if (!current.empty()) {
        const std::size_t release = 1 + rng.below(current.count());
        const auto fast_rel = choose_release_cpus(*dm, current, release, scratch);
        const auto naive_rel = naive::choose_release_cpus(*dm, current, release);
        ASSERT_EQ(fast_rel, naive_rel) << name << " release round " << round;
      }
    }
  }
}

TEST(FastpathFunctions, SeedWithEmptyOccupiedMatchesNaive) {
  for (const auto& [name, machine] : builder_topologies()) {
    const auto dm = topo::DistanceMatrixCache::shared(machine);
    const topo::CpuSet none(machine.cpu_count());
    PlacementScratch scratch;
    const auto fast = choose_seed_cpus(*dm, machine.all_cpus(), none, 4, scratch);
    const auto ref = naive::choose_seed_cpus(*dm, machine.all_cpus(), none, 4);
    ASSERT_TRUE(fast.has_value() && ref.has_value()) << name;
    EXPECT_EQ(*fast, *ref) << name;
  }
}

// ---------------------------------------------------------------------------
// Manager-level differential churn: two managers, one per engine, driven by
// the identical randomized event stream; compared decision-by-decision and
// state-by-state.

void expect_identical_state(const VNodeManager& fast, const VNodeManager& ref,
                            const std::string& context) {
  ASSERT_EQ(fast.free_cpus(), ref.free_cpus()) << context;
  ASSERT_EQ(fast.occupied_cpus(), ref.occupied_cpus()) << context;
  ASSERT_EQ(fast.committed_mem(), ref.committed_mem()) << context;
  ASSERT_EQ(fast.vnodes().size(), ref.vnodes().size()) << context;
  auto it_fast = fast.vnodes().begin();
  auto it_ref = ref.vnodes().begin();
  for (; it_fast != fast.vnodes().end(); ++it_fast, ++it_ref) {
    ASSERT_EQ(it_fast->first, it_ref->first) << context;
    const VNode& a = it_fast->second;
    const VNode& b = it_ref->second;
    ASSERT_EQ(a.level(), b.level()) << context;
    ASSERT_EQ(a.effective_level(), b.effective_level()) << context;
    ASSERT_EQ(a.cpus(), b.cpus()) << context << " vnode " << a.id();
    ASSERT_EQ(a.vm_ids(), b.vm_ids()) << context << " vnode " << a.id();
  }
}

void expect_identical_repins(const std::vector<PinUpdate>& fast,
                             const std::vector<PinUpdate>& ref,
                             const std::string& context) {
  ASSERT_EQ(fast.size(), ref.size()) << context;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_EQ(fast[i].vm, ref[i].vm) << context;
    ASSERT_EQ(fast[i].cpus, ref[i].cpus) << context;
  }
}

class FastpathChurn
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(FastpathChurn, BitIdenticalAcrossEngines) {
  const auto [seed, pooling] = GetParam();
  for (const auto& [name, machine] : builder_topologies()) {
    const PoolingPolicy policy =
        pooling ? PoolingPolicy::kUpgrade : PoolingPolicy::kNone;
    VNodeManager fast(machine, policy, 1.0, PlacementEngine::kFast);
    VNodeManager ref(machine, policy, 1.0, PlacementEngine::kNaive);
    core::SplitMix64 rng(seed);
    std::vector<VmId> alive;
    std::uint64_t next_id = 1;
    for (int event = 0; event < 3500; ++event) {
      const std::string context =
          name + " seed=" + std::to_string(seed) + " event=" + std::to_string(event);
      const double u = alive.empty() ? 0.0 : rng.uniform();
      if (u < 0.55) {
        VmSpec s;
        s.vcpus = static_cast<core::VcpuCount>(1 + rng.below(8));
        s.mem_mib = core::gib(static_cast<std::int64_t>(1 + rng.below(8)));
        s.level = OversubLevel{static_cast<std::uint8_t>(1 + rng.below(3))};
        const VmId id{next_id++};
        const bool predicted_fast = fast.can_host(s);
        const bool predicted_ref = ref.can_host(s);
        ASSERT_EQ(predicted_fast, predicted_ref) << context;
        const auto result_fast = fast.deploy(id, s);
        const auto result_ref = ref.deploy(id, s);
        ASSERT_EQ(result_fast.has_value(), result_ref.has_value()) << context;
        ASSERT_EQ(result_fast.has_value(), predicted_fast) << context;
        if (result_fast) {
          ASSERT_EQ(result_fast->vnode, result_ref->vnode) << context;
          ASSERT_EQ(result_fast->pooled, result_ref->pooled) << context;
          expect_identical_repins(result_fast->repins, result_ref->repins, context);
          alive.push_back(id);
        }
      } else if (u < 0.9) {
        const std::size_t pick = rng.below(alive.size());
        const auto repins_fast = fast.remove(alive[pick]);
        const auto repins_ref = ref.remove(alive[pick]);
        expect_identical_repins(repins_fast, repins_ref, context);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (!fast.vnodes().empty()) {
        // Retune a random vNode to a random effective level within contract.
        const std::size_t pick = rng.below(fast.vnodes().size());
        auto it = fast.vnodes().begin();
        std::advance(it, static_cast<std::ptrdiff_t>(pick));
        const VNodeId node = it->first;
        const auto contract = it->second.level();
        const OversubLevel effective{
            static_cast<std::uint8_t>(1 + rng.below(contract.ratio()))};
        const auto retune_fast = fast.retune(node, effective);
        const auto retune_ref = ref.retune(node, effective);
        ASSERT_EQ(retune_fast.has_value(), retune_ref.has_value()) << context;
        if (retune_fast) {
          expect_identical_repins(*retune_fast, *retune_ref, context);
        }
      }
      if (event % 100 == 0) {
        fast.check_invariants();
        ref.check_invariants();
        expect_identical_state(fast, ref, context);
      }
    }
    expect_identical_state(fast, ref, name + " final");
    fast.check_invariants();
    ref.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastpathChurn,
                         ::testing::Combine(::testing::Values(1, 7, 42),
                                            ::testing::Bool()));

}  // namespace
}  // namespace slackvm::local
