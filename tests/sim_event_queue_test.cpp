#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace slackvm::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30.0, [&](core::SimTime) { order.push_back(3); });
  queue.schedule(10.0, [&](core::SimTime) { order.push_back(1); });
  queue.schedule(20.0, [&](core::SimTime) { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 30.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(7.0, [&order, i](core::SimTime) { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ActionReceivesFireTime) {
  EventQueue queue;
  core::SimTime seen = -1;
  queue.schedule(42.0, [&](core::SimTime t) { seen = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(EventQueueTest, ReentrantScheduling) {
  EventQueue queue;
  std::vector<core::SimTime> fired;
  queue.schedule(1.0, [&](core::SimTime t) {
    fired.push_back(t);
    queue.schedule(t + 1.0, [&](core::SimTime t2) { fired.push_back(t2); });
  });
  queue.run();
  EXPECT_EQ(fired, (std::vector<core::SimTime>{1.0, 2.0}));
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(10.0, [](core::SimTime) {});
  queue.run();
  EXPECT_THROW(queue.schedule(5.0, [](core::SimTime) {}), core::SlackError);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.schedule(1.0, [](core::SimTime) {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(1.0, [&](core::SimTime) { fired.push_back(1); });
  queue.schedule(5.0, [&](core::SimTime) { fired.push_back(5); });
  queue.run_until(3.0);
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.pending(), 1U);
  queue.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 5}));
}

TEST(EventQueueTest, PendingCountsScheduled) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.schedule(1.0, [](core::SimTime) {});
  queue.schedule(2.0, [](core::SimTime) {});
  EXPECT_EQ(queue.pending(), 2U);
}

}  // namespace
}  // namespace slackvm::sim
