#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace slackvm::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30.0, [&](core::SimTime) { order.push_back(3); });
  queue.schedule(10.0, [&](core::SimTime) { order.push_back(1); });
  queue.schedule(20.0, [&](core::SimTime) { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 30.0);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.schedule(7.0, [&order, i](core::SimTime) { order.push_back(i); });
  }
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ActionReceivesFireTime) {
  EventQueue queue;
  core::SimTime seen = -1;
  queue.schedule(42.0, [&](core::SimTime t) { seen = t; });
  queue.run();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(EventQueueTest, ReentrantScheduling) {
  EventQueue queue;
  std::vector<core::SimTime> fired;
  queue.schedule(1.0, [&](core::SimTime t) {
    fired.push_back(t);
    queue.schedule(t + 1.0, [&](core::SimTime t2) { fired.push_back(t2); });
  });
  queue.run();
  EXPECT_EQ(fired, (std::vector<core::SimTime>{1.0, 2.0}));
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(10.0, [](core::SimTime) {});
  queue.run();
  EXPECT_THROW(queue.schedule(5.0, [](core::SimTime) {}), core::SlackError);
}

TEST(EventQueueTest, StepReturnsFalseWhenEmpty) {
  EventQueue queue;
  EXPECT_FALSE(queue.step());
  queue.schedule(1.0, [](core::SimTime) {});
  EXPECT_TRUE(queue.step());
  EXPECT_FALSE(queue.step());
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(1.0, [&](core::SimTime) { fired.push_back(1); });
  queue.schedule(5.0, [&](core::SimTime) { fired.push_back(5); });
  queue.run_until(3.0);
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.pending(), 1U);
  queue.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 5}));
}

TEST(EventQueueTest, PendingCountsScheduled) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.schedule(1.0, [](core::SimTime) {});
  queue.schedule(2.0, [](core::SimTime) {});
  EXPECT_EQ(queue.pending(), 2U);
}

// --- cross-shard ordering regressions ---------------------------------------
//
// The insertion-order tie-break is queue-local; when several queues run side
// by side (sim/shard.hpp) the documented cross-queue rule is: ascending
// time, ties to the lowest queue (shard) index, within a queue in fire
// order. These tests pin the two queue-side properties that rule builds on:
// fire order at one timestamp is exactly insertion order regardless of how
// the heap sifts, and run_until leaves every queue at the identical clock so
// windows line up across shards.

TEST(EventQueueTest, SameTimestampFireOrderSurvivesHeapChurn) {
  // Interleave many t=5 events with earlier and later ones so the heap
  // reshuffles between the tied entries; fire order at t=5 must still be
  // exactly insertion order.
  EventQueue queue;
  std::vector<int> tied;
  for (int i = 0; i < 16; ++i) {
    queue.schedule(5.0, [&tied, i](core::SimTime) { tied.push_back(i); });
    queue.schedule(1.0 + 0.1 * i, [](core::SimTime) {});
    queue.schedule(9.0 - 0.1 * i, [](core::SimTime) {});
  }
  queue.run();
  std::vector<int> expected(16);
  for (int i = 0; i < 16; ++i) {
    expected[static_cast<std::size_t>(i)] = i;
  }
  EXPECT_EQ(tied, expected);
}

TEST(EventQueueTest, TwoQueuesReplayIdenticalSchedulesIdentically) {
  // Two queues fed the same (time, payload) schedule in the same order must
  // fire in the same sequence — the per-shard half of the cross-shard
  // determinism argument: a shard's fire order depends only on its own
  // schedule, never on how other queues interleave in wall-clock time.
  const std::vector<core::SimTime> times = {3.0, 1.0, 3.0, 2.0, 3.0, 1.0};
  std::vector<int> a;
  std::vector<int> b;
  EventQueue qa;
  EventQueue qb;
  for (std::size_t i = 0; i < times.size(); ++i) {
    qa.schedule(times[i], [&a, i](core::SimTime) { a.push_back(static_cast<int>(i)); });
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    qb.schedule(times[i], [&b, i](core::SimTime) { b.push_back(static_cast<int>(i)); });
  }
  // Drive them through different window cuts: qa in one go, qb in windows.
  qa.run();
  qb.run_until(2.5);
  qb.run_until(3.0);  // strictly-before semantics: t=3 events not yet fired
  EXPECT_EQ(b.size(), 3U);
  qb.run();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (std::vector<int>{1, 5, 3, 0, 2, 4}));
}

TEST(EventQueueTest, RunUntilAlignsClocksAcrossQueues) {
  // Barrier alignment: after run_until(t) every queue reports now() == t,
  // even a queue with nothing to fire — so a post-barrier schedule at t is
  // legal on every shard.
  EventQueue busy;
  EventQueue idle;
  busy.schedule(1.0, [](core::SimTime) {});
  busy.run_until(4.0);
  idle.run_until(4.0);
  EXPECT_DOUBLE_EQ(busy.now(), 4.0);
  EXPECT_DOUBLE_EQ(idle.now(), 4.0);
  idle.schedule(4.0, [](core::SimTime) {});
  EXPECT_EQ(idle.pending(), 1U);
}

}  // namespace
}  // namespace slackvm::sim
