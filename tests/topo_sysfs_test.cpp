#include "topology/sysfs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "topology/builders.hpp"
#include "topology/distance.hpp"

namespace slackvm::topo {
namespace {

constexpr const char* kSmallDump = R"(# hand-written 2-socket toy machine
machine toy-2s
mem_mib 32768
cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0
cpu 1 core 0 l1 0 l2 0 l3 0 numa 0 socket 0
cpu 2 core 1 l1 1 l2 1 l3 0 numa 0 socket 0
cpu 3 core 1 l1 1 l2 1 l3 0 numa 0 socket 0
cpu 4 core 2 l1 2 l2 2 l3 1 numa 1 socket 1
cpu 5 core 2 l1 2 l2 2 l3 1 numa 1 socket 1
numa_distance 0 0 10
numa_distance 0 1 21
numa_distance 1 0 21
numa_distance 1 1 10
)";

TEST(SysfsParse, ReadsHandWrittenDump) {
  std::istringstream in(kSmallDump);
  const CpuTopology topo = parse_topology_dump(in);
  EXPECT_EQ(topo.name(), "toy-2s");
  EXPECT_EQ(topo.cpu_count(), 6U);
  EXPECT_EQ(topo.total_mem(), 32768);
  EXPECT_EQ(topo.socket_count(), 2U);
  EXPECT_EQ(topo.numa_count(), 2U);
  EXPECT_EQ(topo.smt_width(), 2U);
  EXPECT_EQ(topo.numa_distance(0, 1), 21U);
  // Algorithm 1 works on the imported machine: SMT sibling 10, same L3 30,
  // cross socket 40 + 21.
  EXPECT_EQ(core_distance(topo, 0, 1), 10U);
  EXPECT_EQ(core_distance(topo, 0, 2), 30U);
  EXPECT_EQ(core_distance(topo, 0, 4), 61U);
}

TEST(SysfsParse, RoundTripsBuiltTopologies) {
  const std::vector<CpuTopology> machines{make_dual_epyc_7662(), make_dual_xeon_6230(),
                                          make_sim_worker()};
  for (const CpuTopology& machine : machines) {
    std::stringstream buffer;
    write_topology_dump(machine, buffer);
    const CpuTopology restored = parse_topology_dump(buffer);
    EXPECT_EQ(restored.name(), machine.name());
    ASSERT_EQ(restored.cpu_count(), machine.cpu_count());
    EXPECT_EQ(restored.total_mem(), machine.total_mem());
    for (std::size_t cpu = 0; cpu < machine.cpu_count(); ++cpu) {
      const CpuInfo& a = machine.cpu(static_cast<CpuId>(cpu));
      const CpuInfo& b = restored.cpu(static_cast<CpuId>(cpu));
      ASSERT_EQ(a.physical_core, b.physical_core);
      ASSERT_EQ(a.l1, b.l1);
      ASSERT_EQ(a.l2, b.l2);
      ASSERT_EQ(a.l3, b.l3);
      ASSERT_EQ(a.numa, b.numa);
      ASSERT_EQ(a.socket, b.socket);
    }
  }
}

TEST(SysfsParse, ImplicitDiagonalDistance) {
  std::istringstream in(
      "mem_mib 1024\ncpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n");
  const CpuTopology topo = parse_topology_dump(in);
  EXPECT_EQ(topo.numa_distance(0, 0), 10U);
}

TEST(SysfsParse, RejectsMissingMemory) {
  std::istringstream in("cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, RejectsSparseCpuIds) {
  std::istringstream in(
      "mem_mib 1024\n"
      "cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n"
      "cpu 2 core 1 l1 1 l2 1 l3 0 numa 0 socket 0\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, RejectsDuplicateCpu) {
  std::istringstream in(
      "mem_mib 1024\n"
      "cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n"
      "cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, RejectsMissingField) {
  std::istringstream in("mem_mib 1024\ncpu 0 core 0 l1 0 l2 0 numa 0 socket 0\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, RejectsUnknownKeyword) {
  std::istringstream in("gpu 0\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, RejectsMissingCrossDistance) {
  std::istringstream in(
      "mem_mib 1024\n"
      "cpu 0 core 0 l1 0 l2 0 l3 0 numa 0 socket 0\n"
      "cpu 1 core 1 l1 1 l2 1 l3 1 numa 1 socket 1\n");
  EXPECT_THROW((void)parse_topology_dump(in), core::SlackError);
}

TEST(SysfsParse, ErrorCarriesLineNumber) {
  std::istringstream in("mem_mib 1024\nbogus keyword\n");
  try {
    (void)parse_topology_dump(in);
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace slackvm::topo
