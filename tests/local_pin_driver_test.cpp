#include "local/pin_driver.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "topology/builders.hpp"

namespace slackvm::local {
namespace {

using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

class PinDriverTest : public ::testing::Test {
 protected:
  const topo::CpuTopology machine_ = topo::make_flat(8, core::gib(64));
  VNodeManager manager_{machine_};
  RecordingPinBackend backend_;
  PinDriver driver_{manager_, backend_};
};

TEST_F(PinDriverTest, DeployPinsToVNodeCpus) {
  ASSERT_TRUE(driver_.deploy(VmId{1}, spec(2, core::gib(2), 1)));
  EXPECT_TRUE(backend_.has_pin(VmId{1}));
  EXPECT_EQ(backend_.pin_of(VmId{1}), manager_.pin_of(VmId{1}));
  EXPECT_EQ(backend_.pin_ops(), 1U);
}

TEST_F(PinDriverTest, GrowthRepinsNeighbours) {
  ASSERT_TRUE(driver_.deploy(VmId{1}, spec(2, core::gib(2), 2)));  // 1 core
  ASSERT_TRUE(driver_.deploy(VmId{2}, spec(2, core::gib(2), 2)));  // grows to 2
  // VM 1 was repinned to the grown range.
  EXPECT_EQ(backend_.pin_of(VmId{1}).count(), 2U);
  EXPECT_EQ(backend_.pin_of(VmId{1}), backend_.pin_of(VmId{2}));
}

TEST_F(PinDriverTest, SlackAbsorbedDeploySkipsRedundantRepins) {
  ASSERT_TRUE(driver_.deploy(VmId{1}, spec(3, core::gib(2), 2)));  // 2 cores
  const auto ops_before = backend_.pin_ops();
  // 1 more vCPU fits the rounding slack: the vNode does not resize, so the
  // repin of VM 1 is redundant and the backend skips it.
  ASSERT_TRUE(driver_.deploy(VmId{2}, spec(1, core::gib(2), 2)));
  EXPECT_EQ(backend_.pin_ops(), ops_before + 1);  // only the new VM
  EXPECT_GE(backend_.skipped_ops(), 1U);
}

TEST_F(PinDriverTest, RemoveClearsPinAndShrinksOthers) {
  ASSERT_TRUE(driver_.deploy(VmId{1}, spec(2, core::gib(2), 2)));
  ASSERT_TRUE(driver_.deploy(VmId{2}, spec(2, core::gib(2), 2)));
  driver_.remove(VmId{2});
  EXPECT_FALSE(backend_.has_pin(VmId{2}));
  EXPECT_EQ(backend_.pin_of(VmId{1}).count(), 1U);  // shrank back
  EXPECT_EQ(backend_.pinned_vms(), 1U);
}

TEST_F(PinDriverTest, FullPmDeployFailsWithoutPinning) {
  ASSERT_TRUE(driver_.deploy(VmId{1}, spec(8, core::gib(2), 1)));
  EXPECT_FALSE(driver_.deploy(VmId{2}, spec(1, core::gib(2), 1)));
  EXPECT_FALSE(backend_.has_pin(VmId{2}));
  EXPECT_EQ(backend_.pinned_vms(), 1U);
}

TEST_F(PinDriverTest, RetuneRepinsThroughApply) {
  const auto result = manager_.deploy(VmId{1}, spec(6, core::gib(2), 3));
  ASSERT_TRUE(result.has_value());
  driver_.apply(result->repins);
  const auto repins = manager_.retune(result->vnode, OversubLevel{1});
  ASSERT_TRUE(repins.has_value());
  driver_.apply(*repins);
  EXPECT_EQ(backend_.pin_of(VmId{1}).count(), 6U);
}

TEST(RecordingBackend, PinOfUnknownThrows) {
  RecordingPinBackend backend;
  EXPECT_THROW((void)backend.pin_of(VmId{1}), core::SlackError);
  EXPECT_THROW(backend.clear_pin(VmId{1}), core::SlackError);
}

TEST(RecordingBackend, CountsDistinctAndRedundantOps) {
  RecordingPinBackend backend;
  topo::CpuSet cpus(8);
  cpus.set(0);
  backend.apply_pin(VmId{1}, cpus);
  backend.apply_pin(VmId{1}, cpus);  // redundant
  cpus.set(1);
  backend.apply_pin(VmId{1}, cpus);  // change
  EXPECT_EQ(backend.pin_ops(), 2U);
  EXPECT_EQ(backend.skipped_ops(), 1U);
}

// The §V-A claim: repinning only happens on deploy/destroy, so the pin-op
// rate stays proportional to VM churn, not to time or VM count.
TEST(RepinVolume, BoundedByChurn) {
  const topo::CpuTopology machine = topo::make_dual_epyc_7662();
  VNodeManager manager(machine);
  RecordingPinBackend backend;
  PinDriver driver(manager, backend);
  core::SplitMix64 rng(3);
  std::vector<VmId> alive;
  std::uint64_t next_id = 1;
  std::uint64_t churn_events = 0;
  for (int step = 0; step < 300; ++step) {
    if (alive.empty() || rng.uniform() < 0.6) {
      const VmId id{next_id++};
      VmSpec s = spec(static_cast<core::VcpuCount>(1 + rng.below(4)),
                      core::gib(static_cast<std::int64_t>(1 + rng.below(8))),
                      static_cast<std::uint8_t>(1 + rng.below(3)));
      if (driver.deploy(id, s)) {
        alive.push_back(id);
        ++churn_events;
      }
    } else {
      const std::size_t pick = rng.below(alive.size());
      driver.remove(alive[pick]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
      ++churn_events;
    }
  }
  // Each churn event repins at most the VMs of one vNode; with three nodes
  // the amortized volume stays well below total_vms per event.
  EXPECT_GT(churn_events, 0U);
  EXPECT_LT(backend.pin_ops(),
            churn_events * (alive.size() + 1));  // sanity upper bound
  EXPECT_GT(backend.skipped_ops(), 0U);          // slack-absorbed deploys occurred
}

}  // namespace
}  // namespace slackvm::local
