#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "sched/policy.hpp"
#include "workload/generator.hpp"

namespace slackvm::sim {
namespace {

using core::gib;
using core::OversubLevel;

const core::Resources kWorker{32, gib(128)};

core::VmInstance make_vm(std::uint64_t id, core::SimTime arrival, core::SimTime departure,
                         core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = vcpus;
  vm.spec.mem_mib = mem;
  vm.spec.level = OversubLevel{ratio};
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

TEST(ReplayTest, PlacesEveryVm) {
  const workload::Trace trace({
      make_vm(1, 0, 100, 4, gib(8), 1),
      make_vm(2, 10, 50, 2, gib(4), 1),
      make_vm(3, 60, 90, 8, gib(16), 1),
  });
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace);
  EXPECT_EQ(result.placed_vms, 3U);
  EXPECT_EQ(result.opened_pms, 1U);
  EXPECT_EQ(result.peak_vms, 2U);  // VM 2 departs before VM 3 arrives
}

TEST(ReplayTest, DeparturesAllowReuse) {
  // Two 32-core VMs with disjoint lifetimes fit one PM sequentially.
  const workload::Trace trace({
      make_vm(1, 0, 100, 32, gib(8), 1),
      make_vm(2, 100, 200, 32, gib(8), 1),
  });
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace);
  EXPECT_EQ(result.opened_pms, 1U);
}

TEST(ReplayTest, OverlappingLifetimesOpenSecondPm) {
  const workload::Trace trace({
      make_vm(1, 0, 150, 32, gib(8), 1),
      make_vm(2, 100, 200, 32, gib(8), 1),
  });
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace);
  EXPECT_EQ(result.opened_pms, 2U);
}

TEST(ReplayTest, UnallocSharesAreSane) {
  const workload::Trace trace({make_vm(1, 0, 100, 16, gib(64), 1)});
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, trace);
  // Half of the single PM is allocated the whole time.
  EXPECT_NEAR(result.avg_unalloc_cpu_share, 0.5, 1e-9);
  EXPECT_NEAR(result.avg_unalloc_mem_share, 0.5, 1e-9);
  EXPECT_NEAR(result.peak_unalloc_cpu_share, 0.5, 1e-9);
}

TEST(ReplayTest, EmptyTraceYieldsZeroResult) {
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = replay(dc, workload::Trace{});
  EXPECT_EQ(result.opened_pms, 0U);
  EXPECT_EQ(result.placed_vms, 0U);
  EXPECT_DOUBLE_EQ(result.avg_unalloc_cpu_share, 0.0);
}

TEST(ReplayTest, DeterministicAcrossRuns) {
  const workload::Trace trace =
      workload::Generator(workload::azure_catalog(), workload::distribution('F'),
                          {.target_population = 60,
                           .horizon = 2.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 11})
          .generate();
  Datacenter a = Datacenter::shared(kWorker, sched::make_progress_policy);
  Datacenter b = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult ra = replay(a, trace);
  const RunResult rb = replay(b, trace);
  EXPECT_EQ(ra.opened_pms, rb.opened_pms);
  EXPECT_DOUBLE_EQ(ra.avg_unalloc_cpu_share, rb.avg_unalloc_cpu_share);
  EXPECT_DOUBLE_EQ(ra.avg_unalloc_mem_share, rb.avg_unalloc_mem_share);
}

TEST(ReplayTest, FirstFitAndProgressBothPlaceAll) {
  const workload::Trace trace =
      workload::Generator(workload::azure_catalog(), workload::distribution('E'),
                          {.target_population = 50,
                           .horizon = 2.0 * 24 * 3600,
                           .mean_lifetime = 1.0 * 24 * 3600,
                           .seed = 12})
          .generate();
  Datacenter ff = Datacenter::shared(kWorker, sched::make_first_fit);
  Datacenter prog = Datacenter::shared(kWorker, sched::make_progress_policy);
  EXPECT_EQ(replay(ff, trace).placed_vms, trace.size());
  EXPECT_EQ(replay(prog, trace).placed_vms, trace.size());
}

}  // namespace
}  // namespace slackvm::sim
