#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace slackvm::workload {
namespace {

core::VmInstance make_vm(std::uint64_t id, core::SimTime arrival, core::SimTime departure,
                         std::uint8_t ratio = 1) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = 2;
  vm.spec.mem_mib = core::gib(4);
  vm.spec.level = core::OversubLevel{ratio};
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

TEST(TraceTest, SortsByArrival) {
  Trace trace({make_vm(1, 50, 60), make_vm(2, 10, 20), make_vm(3, 30, 40)});
  ASSERT_EQ(trace.size(), 3U);
  EXPECT_EQ(trace.vms()[0].id, core::VmId{2});
  EXPECT_EQ(trace.vms()[1].id, core::VmId{3});
  EXPECT_EQ(trace.vms()[2].id, core::VmId{1});
}

TEST(TraceTest, RejectsNonPositiveLifetime) {
  EXPECT_THROW(Trace({make_vm(1, 10, 10)}), core::SlackError);
  EXPECT_THROW(Trace({make_vm(1, 10, 5)}), core::SlackError);
}

TEST(TraceTest, HorizonIsLatestDeparture) {
  const Trace trace({make_vm(1, 0, 100), make_vm(2, 10, 250), make_vm(3, 20, 50)});
  EXPECT_DOUBLE_EQ(trace.horizon(), 250.0);
  EXPECT_DOUBLE_EQ(Trace{}.horizon(), 0.0);
}

TEST(TraceTest, PeakPopulationCountsOverlaps) {
  // [0,100), [10,250), [20,50): all three alive in [20,50).
  const Trace trace({make_vm(1, 0, 100), make_vm(2, 10, 250), make_vm(3, 20, 50)});
  EXPECT_EQ(trace.peak_population(), 3U);
}

TEST(TraceTest, PeakPopulationDepartureFreesSlotAtSameInstant) {
  // VM 1 departs exactly when VM 2 arrives: peak stays 1.
  const Trace trace({make_vm(1, 0, 10), make_vm(2, 10, 20)});
  EXPECT_EQ(trace.peak_population(), 1U);
}

TEST(TraceTest, FilterLevelKeepsOnlyMatching) {
  const Trace trace({make_vm(1, 0, 10, 1), make_vm(2, 1, 10, 2), make_vm(3, 2, 10, 2)});
  const Trace level2 = trace.filter_level(core::OversubLevel{2});
  EXPECT_EQ(level2.size(), 2U);
  for (const auto& vm : level2.vms()) {
    EXPECT_EQ(vm.spec.level, core::OversubLevel{2});
  }
}

TEST(TraceTest, CsvRoundTrip) {
  core::VmInstance vm = make_vm(7, 12.5, 99.25, 3);
  vm.spec.usage = core::UsageClass::kInteractive;
  vm.spec.vcpus = 4;
  vm.spec.mem_mib = core::gib(8);
  const Trace original({vm, make_vm(8, 1, 2, 1)});

  std::stringstream buffer;
  original.write_csv(buffer);
  const Trace restored = Trace::read_csv(buffer);

  ASSERT_EQ(restored.size(), 2U);
  const core::VmInstance& r = restored.vms()[1];  // sorted by arrival
  EXPECT_EQ(r.id, core::VmId{7});
  EXPECT_EQ(r.spec.vcpus, 4U);
  EXPECT_EQ(r.spec.mem_mib, core::gib(8));
  EXPECT_EQ(r.spec.level, core::OversubLevel{3});
  EXPECT_EQ(r.spec.usage, core::UsageClass::kInteractive);
  EXPECT_DOUBLE_EQ(r.arrival, 12.5);
  EXPECT_DOUBLE_EQ(r.departure, 99.25);
}

TEST(TraceTest, CsvHeaderWritten) {
  std::stringstream buffer;
  Trace{}.write_csv(buffer);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "id,vcpus,mem_mib,level,usage,arrival,departure");
}

TEST(TraceTest, ReadCsvRejectsEmptyInput) {
  std::stringstream buffer;
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

TEST(TraceTest, ReadCsvRejectsTruncatedRow) {
  std::stringstream buffer("id,vcpus,mem_mib,level,usage,arrival,departure\n1,2,4096\n");
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

TEST(TraceTest, ReadCsvRejectsUnknownUsage) {
  std::stringstream buffer(
      "id,vcpus,mem_mib,level,usage,arrival,departure\n1,2,4096,1,gaming,0,10\n");
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

// --- malformed-row hardening regressions -----------------------------------

constexpr const char* kHeader = "id,vcpus,mem_mib,level,usage,arrival,departure\n";

/// Parse header + `row`, asserting a SlackError whose message contains
/// every string in `fragments` (line number, column, raw row context).
void expect_rejected(const std::string& row,
                     const std::vector<std::string>& fragments) {
  std::stringstream buffer(kHeader + row + "\n");
  try {
    (void)Trace::read_csv(buffer);
    FAIL() << "row accepted: " << row;
  } catch (const core::SlackError& e) {
    const std::string message = e.what();
    for (const std::string& fragment : fragments) {
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "missing '" << fragment << "' in: " << message;
    }
  }
}

TEST(TraceTest, ReadCsvRejectsTooManyColumns) {
  expect_rejected("1,2,4096,1,steady,0,10,extra", {"line 2", "too many columns"});
}

TEST(TraceTest, ReadCsvRejectsNonNumericFields) {
  expect_rejected("abc,2,4096,1,steady,0,10", {"line 2", "'id'", "abc"});
  expect_rejected("1,two,4096,1,steady,0,10", {"'vcpus'", "two"});
  expect_rejected("1,2,lots,1,steady,0,10", {"'mem_mib'", "lots"});
  expect_rejected("1,2,4096,one,steady,0,10", {"'level'", "one"});
  expect_rejected("1,2,4096,1,steady,noon,10", {"'arrival'", "noon"});
  expect_rejected("1,2,4096,1,steady,0,never", {"'departure'", "never"});
}

TEST(TraceTest, ReadCsvRejectsPartiallyNumericFields) {
  // std::stoull/stod would silently accept these prefixes.
  expect_rejected("12x,2,4096,1,steady,0,10", {"'id'", "12x"});
  expect_rejected("1,2,4096,1,steady,0.5h,10", {"'arrival'", "trailing junk"});
  expect_rejected("1,-2,4096,1,steady,0,10", {"'vcpus'", "-2"});
}

TEST(TraceTest, ReadCsvRejectsZeroVcpus) {
  expect_rejected("1,0,4096,1,steady,0,10", {"'vcpus'", ">= 1"});
}

TEST(TraceTest, ReadCsvRejectsOutOfRangeLevel) {
  expect_rejected("1,2,4096,0,steady,0,10", {"'level'", "[1, 16]"});
  expect_rejected("1,2,4096,17,steady,0,10", {"'level'", "[1, 16]"});
}

TEST(TraceTest, ReadCsvRejectsNonFiniteTimes) {
  expect_rejected("1,2,4096,1,steady,nan,10", {"'arrival'"});
  expect_rejected("1,2,4096,1,steady,0,inf", {"'departure'"});
  expect_rejected("1,2,4096,1,steady,-5,10", {"'arrival'"});
}

TEST(TraceTest, ReadCsvRejectsDepartureNotAfterArrival) {
  expect_rejected("1,2,4096,1,steady,10,10",
                  {"line 2", "departure must be strictly after arrival"});
  expect_rejected("1,2,4096,1,steady,10,5", {"strictly after"});
}

TEST(TraceTest, ReadCsvRejectsUnsortedArrivals) {
  std::stringstream buffer(std::string(kHeader) +
                           "1,2,4096,1,steady,50,60\n"
                           "2,2,4096,1,steady,10,20\n");
  try {
    (void)Trace::read_csv(buffer);
    FAIL() << "unsorted trace accepted";
  } catch (const core::SlackError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 3"), std::string::npos) << message;
    EXPECT_NE(message.find("sorted by arrival"), std::string::npos) << message;
  }
}

TEST(TraceTest, ReadCsvReportsLineNumberOfBadRow) {
  std::stringstream buffer(std::string(kHeader) +
                           "1,2,4096,1,steady,0,10\n"
                           "\n"
                           "2,2,4096,1,steady,1,oops\n");
  try {
    (void)Trace::read_csv(buffer);
    FAIL() << "bad row accepted";
  } catch (const core::SlackError& e) {
    // Blank lines still count toward line numbers.
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(TraceTest, ReadCsvStillAcceptsBlankLinesAndSortedInput) {
  std::stringstream buffer(std::string(kHeader) +
                           "1,2,4096,1,steady,0,10\n"
                           "\n"
                           "2,4,8192,3,bursty,0,5.5\n"
                           "3,1,1024,16,idle,7,8\n");
  const Trace trace = Trace::read_csv(buffer);
  ASSERT_EQ(trace.size(), 3U);
  EXPECT_EQ(trace.vms()[2].spec.level, core::OversubLevel{16});
}

}  // namespace
}  // namespace slackvm::workload
