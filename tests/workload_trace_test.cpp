#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace slackvm::workload {
namespace {

core::VmInstance make_vm(std::uint64_t id, core::SimTime arrival, core::SimTime departure,
                         std::uint8_t ratio = 1) {
  core::VmInstance vm;
  vm.id = core::VmId{id};
  vm.spec.vcpus = 2;
  vm.spec.mem_mib = core::gib(4);
  vm.spec.level = core::OversubLevel{ratio};
  vm.arrival = arrival;
  vm.departure = departure;
  return vm;
}

TEST(TraceTest, SortsByArrival) {
  Trace trace({make_vm(1, 50, 60), make_vm(2, 10, 20), make_vm(3, 30, 40)});
  ASSERT_EQ(trace.size(), 3U);
  EXPECT_EQ(trace.vms()[0].id, core::VmId{2});
  EXPECT_EQ(trace.vms()[1].id, core::VmId{3});
  EXPECT_EQ(trace.vms()[2].id, core::VmId{1});
}

TEST(TraceTest, RejectsNonPositiveLifetime) {
  EXPECT_THROW(Trace({make_vm(1, 10, 10)}), core::SlackError);
  EXPECT_THROW(Trace({make_vm(1, 10, 5)}), core::SlackError);
}

TEST(TraceTest, HorizonIsLatestDeparture) {
  const Trace trace({make_vm(1, 0, 100), make_vm(2, 10, 250), make_vm(3, 20, 50)});
  EXPECT_DOUBLE_EQ(trace.horizon(), 250.0);
  EXPECT_DOUBLE_EQ(Trace{}.horizon(), 0.0);
}

TEST(TraceTest, PeakPopulationCountsOverlaps) {
  // [0,100), [10,250), [20,50): all three alive in [20,50).
  const Trace trace({make_vm(1, 0, 100), make_vm(2, 10, 250), make_vm(3, 20, 50)});
  EXPECT_EQ(trace.peak_population(), 3U);
}

TEST(TraceTest, PeakPopulationDepartureFreesSlotAtSameInstant) {
  // VM 1 departs exactly when VM 2 arrives: peak stays 1.
  const Trace trace({make_vm(1, 0, 10), make_vm(2, 10, 20)});
  EXPECT_EQ(trace.peak_population(), 1U);
}

TEST(TraceTest, FilterLevelKeepsOnlyMatching) {
  const Trace trace({make_vm(1, 0, 10, 1), make_vm(2, 1, 10, 2), make_vm(3, 2, 10, 2)});
  const Trace level2 = trace.filter_level(core::OversubLevel{2});
  EXPECT_EQ(level2.size(), 2U);
  for (const auto& vm : level2.vms()) {
    EXPECT_EQ(vm.spec.level, core::OversubLevel{2});
  }
}

TEST(TraceTest, CsvRoundTrip) {
  core::VmInstance vm = make_vm(7, 12.5, 99.25, 3);
  vm.spec.usage = core::UsageClass::kInteractive;
  vm.spec.vcpus = 4;
  vm.spec.mem_mib = core::gib(8);
  const Trace original({vm, make_vm(8, 1, 2, 1)});

  std::stringstream buffer;
  original.write_csv(buffer);
  const Trace restored = Trace::read_csv(buffer);

  ASSERT_EQ(restored.size(), 2U);
  const core::VmInstance& r = restored.vms()[1];  // sorted by arrival
  EXPECT_EQ(r.id, core::VmId{7});
  EXPECT_EQ(r.spec.vcpus, 4U);
  EXPECT_EQ(r.spec.mem_mib, core::gib(8));
  EXPECT_EQ(r.spec.level, core::OversubLevel{3});
  EXPECT_EQ(r.spec.usage, core::UsageClass::kInteractive);
  EXPECT_DOUBLE_EQ(r.arrival, 12.5);
  EXPECT_DOUBLE_EQ(r.departure, 99.25);
}

TEST(TraceTest, CsvHeaderWritten) {
  std::stringstream buffer;
  Trace{}.write_csv(buffer);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "id,vcpus,mem_mib,level,usage,arrival,departure");
}

TEST(TraceTest, ReadCsvRejectsEmptyInput) {
  std::stringstream buffer;
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

TEST(TraceTest, ReadCsvRejectsTruncatedRow) {
  std::stringstream buffer("id,vcpus,mem_mib,level,usage,arrival,departure\n1,2,4096\n");
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

TEST(TraceTest, ReadCsvRejectsUnknownUsage) {
  std::stringstream buffer(
      "id,vcpus,mem_mib,level,usage,arrival,departure\n1,2,4096,1,gaming,0,10\n");
  EXPECT_THROW((void)Trace::read_csv(buffer), core::SlackError);
}

}  // namespace
}  // namespace slackvm::workload
