#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"

namespace slackvm::core {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean twm;
  twm.record(0.0, 0.5);
  twm.record(10.0, 0.5);
  EXPECT_DOUBLE_EQ(twm.finish(20.0), 0.5);
}

TEST(TimeWeightedMean, StepSignalWeightsByDuration) {
  TimeWeightedMean twm;
  twm.record(0.0, 0.0);   // 0 for 10s
  twm.record(10.0, 1.0);  // 1 for 30s
  EXPECT_DOUBLE_EQ(twm.finish(40.0), 0.75);
}

TEST(TimeWeightedMean, LateStartIgnoresPrefix) {
  TimeWeightedMean twm;
  twm.record(100.0, 2.0);
  EXPECT_DOUBLE_EQ(twm.finish(200.0), 2.0);
}

TEST(TimeWeightedMean, EmptyFinishesToZero) {
  const TimeWeightedMean twm;
  EXPECT_DOUBLE_EQ(twm.finish(100.0), 0.0);
}

TEST(TimeWeightedMean, NonMonotonicTimeThrows) {
  TimeWeightedMean twm;
  twm.record(10.0, 1.0);
  EXPECT_THROW(twm.record(5.0, 1.0), SlackError);
}

TEST(Percentile, MedianOfOddSet) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, P90OfTenSamples) {
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) {
    v.push_back(i);
  }
  EXPECT_NEAR(percentile(v, 90.0), 9.1, 1e-9);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> v{7.5};
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 7.5);
}

TEST(Percentile, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)percentile(v, 50.0), SlackError);
}

TEST(Mean, BasicAndEmpty) {
  const std::vector<double> v{1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(HistogramTest, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(15.0);  // overflow
  h.add(-1.0);  // clamped into bin 0
  EXPECT_EQ(h.total(), 5U);
  EXPECT_EQ(h.count(0), 2U);
  EXPECT_EQ(h.count(1), 1U);
  EXPECT_EQ(h.count(4), 1U);
  EXPECT_EQ(h.count(5), 1U);  // overflow bucket
}

TEST(HistogramTest, BinBounds) {
  Histogram h(2.0, 12.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 12.0);
}

}  // namespace
}  // namespace slackvm::core
