#include "sched/filter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/error.hpp"
#include "sched/policy.hpp"
#include "sched/vcluster.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

const core::Resources kWorker{32, gib(128)};

TEST(MaxVmsFilterTest, CapsPopulation) {
  const MaxVmsFilter filter(2);
  HostState host(0, kWorker);
  EXPECT_TRUE(filter.admits(host, spec(1, gib(1), 1)));
  host.add(VmId{1}, spec(1, gib(1), 1));
  host.add(VmId{2}, spec(1, gib(1), 1));
  EXPECT_FALSE(filter.admits(host, spec(1, gib(1), 1)));
}

TEST(LevelExclusiveFilterTest, EmptyHostAdmitsAnyLevel) {
  const LevelExclusiveFilter filter;
  const HostState host(0, kWorker);
  EXPECT_TRUE(filter.admits(host, spec(1, gib(1), 3)));
}

TEST(LevelExclusiveFilterTest, RejectsSecondLevel) {
  const LevelExclusiveFilter filter;
  HostState host(0, kWorker);
  host.add(VmId{1}, spec(2, gib(2), 2));
  EXPECT_TRUE(filter.admits(host, spec(1, gib(1), 2)));
  EXPECT_FALSE(filter.admits(host, spec(1, gib(1), 1)));
  EXPECT_FALSE(filter.admits(host, spec(1, gib(1), 3)));
}

TEST(HeadroomFilterTest, ReservesCapacity) {
  const HeadroomFilter filter(0.25, 0.25);  // keep a quarter free
  HostState host(0, kWorker);
  EXPECT_TRUE(filter.admits(host, spec(24, gib(96), 1)));
  EXPECT_FALSE(filter.admits(host, spec(25, gib(8), 1)));   // cpu headroom
  EXPECT_FALSE(filter.admits(host, spec(1, gib(97), 1)));   // mem headroom
}

TEST(HeadroomFilterTest, InvalidFractionsRejected) {
  EXPECT_THROW(HeadroomFilter(1.0, 0.0), core::SlackError);
  EXPECT_THROW(HeadroomFilter(0.0, -0.1), core::SlackError);
}

TEST(FilterChainTest, EmptyChainAdmitsEverything) {
  const FilterChain chain;
  const HostState host(0, kWorker);
  EXPECT_TRUE(chain.admits(host, spec(1, gib(1), 1)));
}

TEST(FilterChainTest, ConjunctionOfMembers) {
  FilterChain chain;
  chain.add(std::make_unique<MaxVmsFilter>(1)).add(
      std::make_unique<LevelExclusiveFilter>());
  HostState host(0, kWorker);
  EXPECT_TRUE(chain.admits(host, spec(1, gib(1), 2)));
  host.add(VmId{1}, spec(1, gib(1), 2));
  EXPECT_FALSE(chain.admits(host, spec(1, gib(1), 2)));  // max-vms trips
  EXPECT_EQ(chain.size(), 2U);
}

TEST(FilterChainTest, NameListsMembers) {
  FilterChain chain;
  chain.add(std::make_unique<MaxVmsFilter>(3));
  chain.add(std::make_unique<LevelExclusiveFilter>());
  EXPECT_EQ(chain.name(), "chain(max-vms(3)+level-exclusive)");
}

TEST(PolicyWithFilter, FirstFitSkipsFilteredHosts) {
  std::vector<HostState> hosts;
  hosts.emplace_back(0, kWorker);
  hosts.emplace_back(1, kWorker);
  hosts[0].add(VmId{1}, spec(1, gib(1), 2));
  const LevelExclusiveFilter filter;
  const FirstFitPolicy policy;
  // Host 0 already hosts 2:1; a 1:1 VM must land on host 1.
  const auto chosen = policy.select(hosts, spec(1, gib(1), 1), &filter);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, 1U);
}

TEST(PolicyWithFilter, VClusterFilterShapesPlacement) {
  // A shared cluster with a level-exclusive filter degenerates into
  // per-level dedicated PMs — the ablation of co-hosting.
  VCluster cluster("filtered", kWorker, make_progress_policy());
  cluster.set_filter(std::make_unique<LevelExclusiveFilter>());
  cluster.place(VmId{1}, spec(2, gib(2), 1));
  cluster.place(VmId{2}, spec(2, gib(2), 2));
  cluster.place(VmId{3}, spec(2, gib(2), 3));
  EXPECT_EQ(cluster.opened_hosts(), 3U);

  VCluster unfiltered("shared", kWorker, make_progress_policy());
  unfiltered.place(VmId{1}, spec(2, gib(2), 1));
  unfiltered.place(VmId{2}, spec(2, gib(2), 2));
  unfiltered.place(VmId{3}, spec(2, gib(2), 3));
  EXPECT_EQ(unfiltered.opened_hosts(), 1U);
}

TEST(RandomPolicyTest, DeterministicPerSeed) {
  std::vector<HostState> hosts;
  for (HostId h = 0; h < 8; ++h) {
    hosts.emplace_back(h, kWorker);
  }
  const RandomPolicy a(7);
  const RandomPolicy b(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.select(hosts, spec(1, gib(1), 1)), b.select(hosts, spec(1, gib(1), 1)));
  }
}

TEST(RandomPolicyTest, OnlyPicksFeasibleHosts) {
  std::vector<HostState> hosts;
  hosts.emplace_back(0, kWorker);
  hosts.emplace_back(1, kWorker);
  hosts[0].add(VmId{1}, spec(32, gib(8), 1));  // full
  const RandomPolicy policy(9);
  for (int i = 0; i < 20; ++i) {
    const auto chosen = policy.select(hosts, spec(4, gib(4), 1));
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, 1U);
  }
}

TEST(RandomPolicyTest, NulloptWhenNothingFits) {
  std::vector<HostState> hosts;
  hosts.emplace_back(0, kWorker);
  hosts[0].add(VmId{1}, spec(32, gib(8), 1));
  const RandomPolicy policy(1);
  EXPECT_FALSE(policy.select(hosts, spec(1, gib(121), 1)).has_value());
}

}  // namespace
}  // namespace slackvm::sched
