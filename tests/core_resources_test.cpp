#include "core/resources.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/units.hpp"

namespace slackvm::core {
namespace {

TEST(Resources, DefaultIsEmpty) {
  const Resources r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.cores, 0U);
  EXPECT_EQ(r.mem_mib, 0);
}

TEST(Resources, AdditionIsComponentWise) {
  const Resources a{4, gib(16)};
  const Resources b{2, gib(8)};
  const Resources sum = a + b;
  EXPECT_EQ(sum.cores, 6U);
  EXPECT_EQ(sum.mem_mib, gib(24));
}

TEST(Resources, SubtractionIsComponentWise) {
  const Resources a{4, gib(16)};
  const Resources b{1, gib(4)};
  const Resources diff = a - b;
  EXPECT_EQ(diff.cores, 3U);
  EXPECT_EQ(diff.mem_mib, gib(12));
}

TEST(Resources, SubtractionUnderflowThrows) {
  const Resources a{1, gib(1)};
  const Resources b{2, gib(1)};
  EXPECT_THROW(a - b, SlackError);
  const Resources c{2, gib(2)};
  EXPECT_THROW(a - c, SlackError);
}

TEST(Resources, FitsWithinRequiresBothDimensions) {
  const Resources pm{32, gib(128)};
  EXPECT_TRUE((Resources{32, gib(128)}.fits_within(pm)));
  EXPECT_TRUE((Resources{1, gib(1)}.fits_within(pm)));
  EXPECT_FALSE((Resources{33, gib(1)}.fits_within(pm)));
  EXPECT_FALSE((Resources{1, gib(129)}.fits_within(pm)));
}

TEST(Resources, McRatioMatchesHardware) {
  // Table III: 256 threads, 1 TB -> 4 GiB per thread.
  EXPECT_DOUBLE_EQ(mc_ratio_gib_per_core(Resources{256, gib(1024)}), 4.0);
  // Simulator worker (§VII-B1): 32 cores, 128 GiB -> 4.
  EXPECT_DOUBLE_EQ(mc_ratio_gib_per_core(Resources{32, gib(128)}), 4.0);
  EXPECT_DOUBLE_EQ(mc_ratio_gib_per_core(Resources{64, gib(256)}), 4.0);
  EXPECT_DOUBLE_EQ(mc_ratio_gib_per_core(Resources{10, gib(5)}), 0.5);
}

TEST(Resources, McRatioZeroCoresThrows) {
  EXPECT_THROW((void)mc_ratio_gib_per_core(Resources{0, gib(8)}), SlackError);
}

TEST(Resources, StreamFormat) {
  std::ostringstream os;
  os << Resources{16, gib(64)};
  EXPECT_EQ(os.str(), "16c/64GiB");
}

TEST(Resources, EqualityComparesBothFields) {
  EXPECT_EQ((Resources{2, 100}), (Resources{2, 100}));
  EXPECT_NE((Resources{2, 100}), (Resources{3, 100}));
  EXPECT_NE((Resources{2, 100}), (Resources{2, 101}));
}

TEST(Resources, PlusEqualsAccumulates) {
  Resources acc;
  for (int i = 0; i < 5; ++i) {
    acc += Resources{1, gib(2)};
  }
  EXPECT_EQ(acc, (Resources{5, gib(10)}));
}

}  // namespace
}  // namespace slackvm::core
