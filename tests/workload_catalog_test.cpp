// Calibration tests: the embedded catalogs must reproduce Table I and
// Table II of the paper.
#include "workload/catalog.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace slackvm::workload {
namespace {

TEST(CatalogTableI, AzureAverages) {
  const CatalogStats stats = azure_catalog().stats();
  EXPECT_NEAR(stats.avg_vcpus, 2.25, 0.01);    // Table I: 2.25 vCPUs per VM
  EXPECT_NEAR(stats.avg_mem_gib, 4.8, 0.02);   // Table I: 4.8 GB per VM
}

TEST(CatalogTableI, OvhAverages) {
  const CatalogStats stats = ovhcloud_catalog().stats();
  EXPECT_NEAR(stats.avg_vcpus, 3.24, 0.01);     // Table I: 3.24 vCPUs per VM
  EXPECT_NEAR(stats.avg_mem_gib, 10.05, 0.05);  // Table I: 10.05 GB per VM
}

TEST(CatalogTableII, AzureMcRatios) {
  const Catalog& azure = azure_catalog();
  EXPECT_NEAR(azure.expected_mc_ratio(core::OversubLevel{1}), 2.1, 0.05);
  EXPECT_NEAR(azure.expected_mc_ratio(core::OversubLevel{2}), 3.0, 0.05);
  EXPECT_NEAR(azure.expected_mc_ratio(core::OversubLevel{3}), 4.5, 0.05);
}

TEST(CatalogTableII, OvhMcRatios) {
  const Catalog& ovh = ovhcloud_catalog();
  EXPECT_NEAR(ovh.expected_mc_ratio(core::OversubLevel{1}), 3.1, 0.05);
  EXPECT_NEAR(ovh.expected_mc_ratio(core::OversubLevel{2}), 3.9, 0.05);
  EXPECT_NEAR(ovh.expected_mc_ratio(core::OversubLevel{3}), 5.8, 0.05);
}

TEST(CatalogTest, PowerOfTwoSizes) {
  // §III-A: VM configurations follow power-of-2 conventions.
  for (const Catalog* catalog : {&azure_catalog(), &ovhcloud_catalog()}) {
    for (const Flavor& f : catalog->flavors()) {
      EXPECT_EQ(f.vcpus & (f.vcpus - 1), 0U) << f.name;
      const auto gib_value = f.mem_mib / core::kMibPerGib;
      EXPECT_EQ(gib_value & (gib_value - 1), 0) << f.name;
      EXPECT_EQ(f.mem_mib % core::kMibPerGib, 0) << f.name;
    }
  }
}

TEST(CatalogTest, TruncationDropsLargeFlavors) {
  const Catalog capped = ovhcloud_catalog().truncated(kOversubMemCap);
  EXPECT_LT(capped.flavors().size(), ovhcloud_catalog().flavors().size());
  for (const Flavor& f : capped.flavors()) {
    EXPECT_LE(f.mem_mib, kOversubMemCap);
  }
}

TEST(CatalogTest, TruncationBelowSmallestThrows) {
  EXPECT_THROW((void)azure_catalog().truncated(core::gib(0)), core::SlackError);
}

TEST(CatalogTest, SamplingIsDeterministicAndWeighted) {
  const Catalog& azure = azure_catalog();
  core::SplitMix64 rng_a(5);
  core::SplitMix64 rng_b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(azure.sample(rng_a).name, azure.sample(rng_b).name);
  }
}

TEST(CatalogTest, SampleAveragesConvergeToStats) {
  const Catalog& azure = azure_catalog();
  core::SplitMix64 rng(17);
  double vcpus = 0;
  double mem = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Flavor& f = azure.sample(rng);
    vcpus += f.vcpus;
    mem += core::mib_to_gib(f.mem_mib);
  }
  EXPECT_NEAR(vcpus / n, 2.25, 0.05);
  EXPECT_NEAR(mem / n, 4.8, 0.15);
}

TEST(CatalogTest, LookupByName) {
  EXPECT_EQ(catalog_by_name("azure").provider(), "azure");
  EXPECT_EQ(catalog_by_name("ovhcloud").provider(), "ovhcloud");
  EXPECT_THROW((void)catalog_by_name("gcp"), core::SlackError);
}

TEST(CatalogTest, McRatioGrowsWithOversubscription) {
  // The core observation of §III: higher oversubscription -> higher
  // provisioned memory per physical core.
  for (const Catalog* catalog : {&azure_catalog(), &ovhcloud_catalog()}) {
    double previous = 0.0;
    for (std::uint8_t ratio : core::kPaperLevelRatios) {
      const double mc = catalog->expected_mc_ratio(core::OversubLevel{ratio});
      EXPECT_GT(mc, previous);
      previous = mc;
    }
  }
}

TEST(CatalogTest, BoundednessAroundTargetRatio) {
  // With the 4 GiB/core PM target: Azure 1:1 and 2:1 are CPU-bound
  // (< 4), 3:1 memory-bound (> 4); OVH 3:1 strongly memory-bound (§III-B).
  const double target = 4.0;
  EXPECT_LT(azure_catalog().expected_mc_ratio(core::OversubLevel{1}), target);
  EXPECT_LT(azure_catalog().expected_mc_ratio(core::OversubLevel{2}), target);
  EXPECT_GT(azure_catalog().expected_mc_ratio(core::OversubLevel{3}), target);
  EXPECT_LT(ovhcloud_catalog().expected_mc_ratio(core::OversubLevel{1}), target);
  EXPECT_GT(ovhcloud_catalog().expected_mc_ratio(core::OversubLevel{3}), target);
}

}  // namespace
}  // namespace slackvm::workload
