#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"

namespace slackvm::sim {
namespace {

TEST(ScenarioParse, ReadsAllKeys) {
  std::istringstream in(R"(# a comment
name       test-case
provider   azure
distribution E
population 250
seed       7
repetitions 2
mem_oversub 1.5
horizon_days 3
lifetime_days 1
diurnal    0.4
host_cores 64
host_mem_gib 256
)");
  const Scenario scenario = parse_scenario(in);
  EXPECT_EQ(scenario.name, "test-case");
  EXPECT_EQ(scenario.provider, "azure");
  EXPECT_EQ(scenario.distribution, 'E');
  EXPECT_EQ(scenario.config.generator.target_population, 250U);
  EXPECT_EQ(scenario.config.generator.seed, 7U);
  EXPECT_EQ(scenario.config.repetitions, 2U);
  EXPECT_DOUBLE_EQ(scenario.config.mem_oversub, 1.5);
  EXPECT_DOUBLE_EQ(scenario.config.generator.horizon, 3.0 * 24 * 3600);
  EXPECT_DOUBLE_EQ(scenario.config.generator.mean_lifetime, 1.0 * 24 * 3600);
  EXPECT_DOUBLE_EQ(scenario.config.generator.diurnal_amplitude, 0.4);
  EXPECT_EQ(scenario.config.host_config.cores, 64U);
  EXPECT_EQ(scenario.config.host_config.mem_mib, core::gib(256));
  EXPECT_EQ(&scenario.catalog(), &workload::azure_catalog());
  EXPECT_EQ(scenario.mix().name, "E");
}

TEST(ScenarioParse, DefaultsApply) {
  std::istringstream in("population 100\n");
  const Scenario scenario = parse_scenario(in);
  EXPECT_EQ(scenario.provider, "ovhcloud");
  EXPECT_EQ(scenario.distribution, 'F');
  EXPECT_EQ(scenario.config.repetitions, 1U);
}

TEST(ScenarioParse, TrailingCommentsStripped) {
  std::istringstream in("provider azure # the big one\npopulation 50\n");
  EXPECT_EQ(parse_scenario(in).provider, "azure");
}

TEST(ScenarioParse, UnknownKeyRejectedWithLineNumber) {
  std::istringstream in("population 100\nflavor big\n");
  try {
    (void)parse_scenario(in);
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ScenarioParse, BadValuesRejected) {
  std::istringstream bad_number("population many\n");
  EXPECT_THROW((void)parse_scenario(bad_number), core::SlackError);
  std::istringstream missing_value("provider\n");
  EXPECT_THROW((void)parse_scenario(missing_value), core::SlackError);
  std::istringstream bad_dist("distribution Z\npopulation 10\n");
  EXPECT_THROW((void)parse_scenario(bad_dist), core::SlackError);
  std::istringstream bad_provider("provider gcp\npopulation 10\n");
  EXPECT_THROW((void)parse_scenario(bad_provider), core::SlackError);
}

TEST(ScenarioParse, RoundTripsThroughWriter) {
  Scenario original;
  original.name = "rt";
  original.provider = "azure";
  original.distribution = 'H';
  original.config.generator.target_population = 123;
  original.config.generator.seed = 9;
  original.config.mem_oversub = 1.25;
  original.config.shards = 4;
  std::stringstream buffer;
  write_scenario(original, buffer);
  const Scenario restored = parse_scenario(buffer);
  EXPECT_EQ(restored.name, original.name);
  EXPECT_EQ(restored.provider, original.provider);
  EXPECT_EQ(restored.distribution, original.distribution);
  EXPECT_EQ(restored.config.generator.target_population, 123U);
  EXPECT_DOUBLE_EQ(restored.config.mem_oversub, 1.25);
  EXPECT_EQ(restored.config.shards, 4U);
}

TEST(ScenarioParse, TraceKeyRoundTrips) {
  std::istringstream in("population 10\ntrace traces/sap_month.csv\n");
  const Scenario scenario = parse_scenario(in);
  EXPECT_EQ(scenario.config.trace_path, "traces/sap_month.csv");

  // Defaults to empty (generated workload) and round-trips through the
  // writer when set.
  std::istringstream plain("population 10\n");
  EXPECT_TRUE(parse_scenario(plain).config.trace_path.empty());
  std::stringstream buffer;
  write_scenario(scenario, buffer);
  EXPECT_NE(buffer.str().find("trace traces/sap_month.csv"), std::string::npos);
  EXPECT_EQ(parse_scenario(buffer).config.trace_path, "traces/sap_month.csv");
}

TEST(ScenarioParse, ShardsKeyParsedAndValidated) {
  std::istringstream in("population 100\nshards 8\n");
  EXPECT_EQ(parse_scenario(in).config.shards, 8U);
  std::istringstream zero("population 100\nshards 0\n");
  EXPECT_THROW((void)parse_scenario(zero), core::SlackError);
}

TEST(ScenarioParse, DuplicateScalarKeyRejectedWithBothLines) {
  std::istringstream in("population 100\nseed 1\npopulation 200\n");
  try {
    (void)parse_scenario(in);
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key 'population'"), std::string::npos) << what;
    EXPECT_NE(what.find("first set on line 1"), std::string::npos) << what;
  }
}

TEST(ScenarioParse, DirectiveKeysMayRepeat) {
  std::istringstream in(R"(population 100
fail host=0 at=3600
fail host=1 at=7200
drain host=2 at=1800
repair host=0 at=9000
repair host=1 at=9600 cluster=1
)");
  const Scenario scenario = parse_scenario(in);
  ASSERT_EQ(scenario.config.faults.directives.size(), 5U);
  EXPECT_EQ(scenario.config.faults.directives[4].cluster, 1U);
}

TEST(ScenarioParse, TrailingTokensRejected) {
  std::istringstream in("population 100 extra\n");
  try {
    (void)parse_scenario(in);
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing token 'extra'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 1"), std::string::npos) << what;
  }
  // A trailing comment is not a trailing token.
  std::istringstream commented("population 100 # fleet size\n");
  EXPECT_EQ(parse_scenario(commented).config.generator.target_population, 100U);
}

TEST(ScenarioParse, MigrationKeysParsedValidatedAndRoundTripped) {
  std::istringstream in(R"(population 100
rebalance_s 7200
rebalance_budget 8
migration engine
mig_bw_mibps 512
mig_cap 3
mig_in_flight 24
mig_timeout_s 900
mig_retries 5
mig_backoff_s 120
)");
  const Scenario scenario = parse_scenario(in);
  EXPECT_DOUBLE_EQ(scenario.config.rebalance_interval, 7200.0);
  EXPECT_EQ(scenario.config.rebalance_budget, 8U);
  EXPECT_TRUE(scenario.config.migration.enabled);
  EXPECT_DOUBLE_EQ(scenario.config.migration.bandwidth_mibps, 512.0);
  EXPECT_EQ(scenario.config.migration.max_concurrent_per_host, 3U);
  EXPECT_EQ(scenario.config.migration.max_in_flight, 24U);
  EXPECT_DOUBLE_EQ(scenario.config.migration.timeout, 900.0);
  EXPECT_EQ(scenario.config.migration.max_retries, 5U);
  EXPECT_DOUBLE_EQ(scenario.config.migration.backoff_base, 120.0);

  std::stringstream buffer;
  write_scenario(scenario, buffer);
  const Scenario restored = parse_scenario(buffer);
  EXPECT_DOUBLE_EQ(restored.config.rebalance_interval, 7200.0);
  EXPECT_EQ(restored.config.rebalance_budget, 8U);
  EXPECT_TRUE(restored.config.migration.enabled);
  EXPECT_DOUBLE_EQ(restored.config.migration.bandwidth_mibps, 512.0);
  EXPECT_EQ(restored.config.migration.max_concurrent_per_host, 3U);
  EXPECT_EQ(restored.config.migration.max_in_flight, 24U);
  EXPECT_DOUBLE_EQ(restored.config.migration.timeout, 900.0);
  EXPECT_EQ(restored.config.migration.max_retries, 5U);
  EXPECT_DOUBLE_EQ(restored.config.migration.backoff_base, 120.0);

  std::istringstream bad_mode("population 10\nmigration teleport\n");
  EXPECT_THROW((void)parse_scenario(bad_mode), core::SlackError);
  std::istringstream bad_bw("population 10\nmig_bw_mibps 0\n");
  EXPECT_THROW((void)parse_scenario(bad_bw), core::SlackError);
  std::istringstream bad_cap("population 10\nmig_cap 0\n");
  EXPECT_THROW((void)parse_scenario(bad_cap), core::SlackError);
  std::istringstream bad_interval("population 10\nrebalance_s -1\n");
  EXPECT_THROW((void)parse_scenario(bad_interval), core::SlackError);
}

TEST(ScenarioParse, InterferenceKeysParsedValidatedAndRoundTripped) {
  std::istringstream in(R"(population 100
rebalance_s 7200
interference on
heat_interval_s 600
heat_alpha 0.5
heat_bucket 0.2
heat_weight 2.5
itf_threshold 1.1
itf_evictions 3
)");
  const Scenario scenario = parse_scenario(in);
  const sched::InterferenceOptions& itf = scenario.config.interference;
  EXPECT_TRUE(itf.enabled);
  EXPECT_DOUBLE_EQ(itf.heat_interval, 600.0);
  EXPECT_DOUBLE_EQ(itf.heat_alpha, 0.5);
  EXPECT_DOUBLE_EQ(itf.heat_bucket, 0.2);
  EXPECT_DOUBLE_EQ(itf.heat_weight, 2.5);
  EXPECT_DOUBLE_EQ(itf.threshold, 1.1);
  EXPECT_EQ(itf.evictions_per_pass, 3U);

  std::stringstream buffer;
  write_scenario(scenario, buffer);
  const Scenario restored = parse_scenario(buffer);
  const sched::InterferenceOptions& rt = restored.config.interference;
  EXPECT_TRUE(rt.enabled);
  EXPECT_DOUBLE_EQ(rt.heat_interval, 600.0);
  EXPECT_DOUBLE_EQ(rt.heat_alpha, 0.5);
  EXPECT_DOUBLE_EQ(rt.heat_bucket, 0.2);
  EXPECT_DOUBLE_EQ(rt.heat_weight, 2.5);
  EXPECT_DOUBLE_EQ(rt.threshold, 1.1);
  EXPECT_EQ(rt.evictions_per_pass, 3U);

  // Off by default; "off" parses; every knob is range-checked.
  std::istringstream plain("population 10\n");
  EXPECT_FALSE(parse_scenario(plain).config.interference.enabled);
  std::istringstream off("population 10\ninterference off\n");
  EXPECT_FALSE(parse_scenario(off).config.interference.enabled);
  std::istringstream bad_switch("population 10\ninterference maybe\n");
  EXPECT_THROW((void)parse_scenario(bad_switch), core::SlackError);
  std::istringstream bad_interval("population 10\nheat_interval_s 0\n");
  EXPECT_THROW((void)parse_scenario(bad_interval), core::SlackError);
  std::istringstream bad_alpha("population 10\nheat_alpha 1.5\n");
  EXPECT_THROW((void)parse_scenario(bad_alpha), core::SlackError);
  std::istringstream bad_bucket("population 10\nheat_bucket -0.1\n");
  EXPECT_THROW((void)parse_scenario(bad_bucket), core::SlackError);
  std::istringstream bad_weight("population 10\nheat_weight -1\n");
  EXPECT_THROW((void)parse_scenario(bad_weight), core::SlackError);
  std::istringstream bad_threshold("population 10\nitf_threshold 0.9\n");
  EXPECT_THROW((void)parse_scenario(bad_threshold), core::SlackError);
  std::istringstream bad_evictions("population 10\nitf_evictions 0\n");
  EXPECT_THROW((void)parse_scenario(bad_evictions), core::SlackError);
}

TEST(ScenarioParse, DuplicateInterferenceKeyRejected) {
  std::istringstream in("population 10\nheat_alpha 0.3\nheat_alpha 0.4\n");
  try {
    (void)parse_scenario(in);
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate key 'heat_alpha'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(ScenarioRun, SmallScenarioExecutes) {
  std::istringstream in(R"(name smoke
provider ovhcloud
distribution F
population 60
horizon_days 2
lifetime_days 1
)");
  const Scenario scenario = parse_scenario(in);
  const PackingComparison cmp = scenario.run();
  EXPECT_GT(cmp.baseline.opened_pms, 0U);
  EXPECT_LE(cmp.slackvm.opened_pms, cmp.baseline.opened_pms + 1);
}

}  // namespace
}  // namespace slackvm::sim
