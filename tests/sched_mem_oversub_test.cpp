// Memory oversubscription (paper footnote 2 / §VIII extension): a limited
// DRAM ratio raises the admission bound consistently across the fast host
// accounting, the real local scheduler, and the experiment protocol.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "local/vnode_manager.hpp"
#include "sched/host_state.hpp"
#include "sim/experiment.hpp"
#include "topology/builders.hpp"

namespace slackvm {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec mem_heavy(core::MemMib mem) {
  VmSpec s;
  s.vcpus = 1;
  s.mem_mib = mem;
  s.level = OversubLevel{1};
  return s;
}

TEST(MemOversubHost, RaisesAdmissionBound) {
  sched::HostState plain(0, {32, gib(128)});
  sched::HostState oversub(1, {32, gib(128)}, 1.5);
  EXPECT_EQ(oversub.mem_capacity(), gib(192));
  plain.add(VmId{1}, mem_heavy(gib(128)));
  EXPECT_FALSE(plain.can_host(mem_heavy(gib(1))));
  oversub.add(VmId{1}, mem_heavy(gib(128)));
  EXPECT_TRUE(oversub.can_host(mem_heavy(gib(64))));
  EXPECT_FALSE(oversub.can_host(mem_heavy(gib(65))));
}

TEST(MemOversubHost, UnallocatedClampsAtZero) {
  sched::HostState host(0, {32, gib(128)}, 1.5);
  host.add(VmId{1}, mem_heavy(gib(160)));
  EXPECT_EQ(host.unallocated().mem_mib, 0);
}

TEST(MemOversubHost, RatioBelowOneRejected) {
  EXPECT_THROW(sched::HostState(0, {32, gib(128)}, 0.9), core::SlackError);
}

TEST(MemOversubManager, MatchesHostStateBound) {
  const topo::CpuTopology machine = topo::make_flat(32, gib(128));
  local::VNodeManager manager(machine, local::PoolingPolicy::kNone, 1.5);
  sched::HostState host(0, machine.config(), 1.5);
  EXPECT_EQ(manager.mem_capacity(), host.mem_capacity());
  // Both admit up to 192 GiB of 1:1 VMs (CPU permitting).
  std::uint64_t id = 1;
  for (int i = 0; i < 24; ++i) {
    const VmSpec s = mem_heavy(gib(8));
    const bool h = host.can_host(s);
    const bool m = manager.can_host(s);
    EXPECT_EQ(h, m) << i;
    if (!h) {
      break;
    }
    host.add(VmId{id}, s);
    ASSERT_TRUE(manager.deploy(VmId{id}, s).has_value());
    ++id;
  }
  EXPECT_EQ(host.alloc().mem_mib, gib(192));
  manager.check_invariants();
}

TEST(MemOversubManager, DefaultStaysPhysical) {
  const topo::CpuTopology machine = topo::make_flat(8, gib(16));
  local::VNodeManager manager(machine);
  ASSERT_TRUE(manager.deploy(VmId{1}, mem_heavy(gib(16))));
  EXPECT_FALSE(manager.can_host(mem_heavy(gib(1))));
}

TEST(MemOversubExperiment, FewerPmsWithDramOversub) {
  // Memory-bound distributions (OVH O = all 3:1) need fewer PMs when DRAM
  // is moderately oversubscribed.
  sim::ExperimentConfig plain;
  plain.generator.target_population = 150;
  plain.generator.horizon = 3.0 * 24 * 3600;
  plain.generator.mean_lifetime = 1.5 * 24 * 3600;
  sim::ExperimentConfig oversub = plain;
  oversub.mem_oversub = 1.5;

  const auto base = sim::compare_packing(workload::ovhcloud_catalog(),
                                         workload::distribution('O'), plain);
  const auto packed = sim::compare_packing(workload::ovhcloud_catalog(),
                                           workload::distribution('O'), oversub);
  EXPECT_LT(packed.baseline.opened_pms, base.baseline.opened_pms);
  EXPECT_LE(packed.slackvm.opened_pms, base.slackvm.opened_pms);
}

TEST(MemOversubExperiment, CpuBoundWorkloadUnaffected) {
  // Azure A (all 1:1) is CPU-bound: DRAM oversubscription buys nothing.
  sim::ExperimentConfig plain;
  plain.generator.target_population = 150;
  plain.generator.horizon = 3.0 * 24 * 3600;
  plain.generator.mean_lifetime = 1.5 * 24 * 3600;
  sim::ExperimentConfig oversub = plain;
  oversub.mem_oversub = 1.5;
  const auto base = sim::compare_packing(workload::azure_catalog(),
                                         workload::distribution('A'), plain);
  const auto packed = sim::compare_packing(workload::azure_catalog(),
                                           workload::distribution('A'), oversub);
  EXPECT_EQ(packed.baseline.opened_pms, base.baseline.opened_pms);
}

}  // namespace
}  // namespace slackvm
