// HeatIndex property suite, mirroring sched_placement_index_test.cpp for
// the quantized-heat buckets: the epoch + dirty-log protocol (refile only
// on bucket crossings, epoch-match short-circuit, rolled-back-opening
// drops), the uniform-width soundness flag, the VCluster synced_heat_index
// wiring behind the --index escape hatch, and a randomized churn whose
// incrementally-synced index must match a from-scratch rebuild exactly.
#include "sched/heat_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "sched/policy.hpp"
#include "sched/vcluster.hpp"
#include "sim/audit.hpp"

namespace slackvm::sched {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

const core::Resources kWorker{32, gib(128)};

VmSpec make_spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  return s;
}

std::vector<HostState> make_hosts(std::size_t n) {
  std::vector<HostState> hosts;
  hosts.reserve(n);
  for (HostId h = 0; h < n; ++h) {
    hosts.emplace_back(h, kWorker);
  }
  return hosts;
}

// --- bucket filing and the epoch protocol -----------------------------------

TEST(HeatIndexProtocol, FilesHostsByBucketCoolestFirst) {
  std::vector<HostState> hosts = make_hosts(4);
  hosts[0].set_heat(0.1, 0.25);  // bucket 0
  hosts[1].set_heat(0.6, 0.25);  // bucket 2
  hosts[2].set_heat(0.3, 0.25);  // bucket 1
  hosts[3].set_heat(0.7, 0.25);  // bucket 2

  HeatIndex index;
  index.rebuild(hosts);
  EXPECT_EQ(index.size(), 4u);
  EXPECT_TRUE(index.uniform_width());
  EXPECT_TRUE(index.check(hosts).empty());

  const auto& buckets = index.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  auto it = buckets.begin();  // ascending == coolest first
  EXPECT_EQ(it->first, 0u);
  EXPECT_EQ(it->second, (std::set<HostId>{0}));
  ++it;
  EXPECT_EQ(it->first, 1u);
  EXPECT_EQ(it->second, (std::set<HostId>{2}));
  ++it;
  EXPECT_EQ(it->first, 2u);
  EXPECT_EQ(it->second, (std::set<HostId>{1, 3}));
}

TEST(HeatIndexProtocol, RefilesOnlyOnBucketCrossings) {
  std::vector<HostState> hosts = make_hosts(2);
  hosts[0].set_heat(0.1, 0.25);
  hosts[1].set_heat(0.6, 0.25);
  HeatIndex index;
  index.rebuild(hosts);

  // Within-bucket move: no epoch bump, nothing to sync.
  hosts[0].set_heat(0.2, 0.25);
  EXPECT_EQ(index.dirty_size(), 0u);
  EXPECT_TRUE(index.check(hosts).empty());

  // Crossing: epoch bumps, touch + sync refiles exactly that host.
  hosts[0].set_heat(0.3, 0.25);
  index.touch(hosts[0].id());
  EXPECT_EQ(index.dirty_size(), 1u);
  index.sync(hosts);
  EXPECT_EQ(index.dirty_size(), 0u);
  EXPECT_TRUE(index.check(hosts).empty());
  EXPECT_TRUE(index.buckets().contains(1));
  EXPECT_FALSE(index.buckets().contains(0));
}

TEST(HeatIndexProtocol, EpochMatchShortCircuitsStaleTouches) {
  std::vector<HostState> hosts = make_hosts(1);
  hosts[0].set_heat(0.6, 0.25);
  HeatIndex index;
  index.rebuild(hosts);
  // A touch with an unchanged epoch must leave the filing untouched (the
  // set_heat contract: the bucket cannot move without an epoch bump).
  index.touch(0);
  index.touch(0);
  index.sync(hosts);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.check(hosts).empty());
}

TEST(HeatIndexProtocol, RolledBackOpeningsAreDropped) {
  std::vector<HostState> hosts = make_hosts(2);
  HeatIndex index;
  index.rebuild(hosts);
  // A touch that outlives its host (rolled-back opening): the id is beyond
  // the vector, so sync must drop it, not file it.
  index.touch(7);
  index.sync(hosts);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.check(hosts).empty());

  // The same id later re-opens for real: a fresh touch files it.
  hosts = make_hosts(8);
  for (HostId h = 0; h < hosts.size(); ++h) {
    index.touch(h);
  }
  index.sync(hosts);
  EXPECT_EQ(index.size(), 8u);
  EXPECT_TRUE(index.check(hosts).empty());
}

// --- uniform-width soundness flag -------------------------------------------

TEST(HeatIndexWidth, MixedWidthsTripTheFlagStickily) {
  std::vector<HostState> hosts = make_hosts(2);
  hosts[0].set_heat(0.6, 0.25);
  hosts[1].set_heat(0.6, 0.5);  // different quantization: cross-bucket
                                // comparisons are no longer ordered
  HeatIndex index;
  index.rebuild(hosts);
  EXPECT_FALSE(index.uniform_width());

  // Sticky: re-quantizing everything with one width does not un-trip it
  // (conservative — only a rebuild re-evaluates).
  hosts[0].set_heat(0.7, 0.25);
  hosts[1].set_heat(0.7, 0.25);
  index.touch(0);
  index.touch(1);
  index.sync(hosts);
  EXPECT_FALSE(index.uniform_width());

  index.rebuild(hosts);
  EXPECT_TRUE(index.uniform_width());
}

TEST(HeatIndexWidth, UnquantizedNonzeroHeatTripsTheFlag) {
  std::vector<HostState> hosts = make_hosts(1);
  hosts[0].set_heat(0.6, 0.0);  // quantization disabled: bucket pinned at 0
  HeatIndex index;
  index.rebuild(hosts);
  EXPECT_FALSE(index.uniform_width());
}

TEST(HeatIndexWidth, ColdHostsAreConsistentWithAnyWidth) {
  std::vector<HostState> hosts = make_hosts(3);
  hosts[1].set_heat(0.6, 0.25);  // the only heated host sets the width
  HeatIndex index;
  index.rebuild(hosts);
  EXPECT_TRUE(index.uniform_width());
}

// --- VCluster wiring behind the escape hatch --------------------------------

TEST(HeatIndexCluster, SyncedIndexTracksHeatWritesAndHonoursTheHatch) {
  VCluster cluster("itf", kWorker, make_progress_policy());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(cluster.try_place(VmId{static_cast<std::uint64_t>(i + 1)},
                                  make_spec(8, gib(16), 2)));
  }
  const HeatIndex* index = cluster.synced_heat_index();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), cluster.opened_hosts());
  EXPECT_TRUE(index->check(cluster.hosts()).empty());

  for (HostId h = 0; h < cluster.opened_hosts(); ++h) {
    cluster.set_host_heat(h, 0.3 * static_cast<double>(h + 1), 0.25);
  }
  index = cluster.synced_heat_index();
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->check(cluster.hosts()).empty());
  EXPECT_TRUE(index->uniform_width());

  // --index=off: the planner must fall back to the naive scan.
  cluster.set_index_enabled(false);
  EXPECT_EQ(cluster.synced_heat_index(), nullptr);
}

// --- randomized churn: synced index == from-scratch rebuild -----------------

TEST(HeatIndexChurn, RandomizedChurnMatchesFreshRebuild) {
  VCluster cluster("churn", kWorker, make_progress_policy());
  core::SplitMix64 rng(0xbeefULL);
  std::vector<VmId> live;
  std::uint64_t next_id = 1;
  for (int event = 0; event < 6000; ++event) {
    const std::uint64_t roll = rng.below(10);
    if (roll < 4 || live.empty()) {
      const VmSpec spec = make_spec(
          static_cast<core::VcpuCount>(1 + rng.below(8)),
          gib(static_cast<std::int64_t>(1 + rng.below(16))),
          static_cast<std::uint8_t>(1 + rng.below(3)));
      const VmId id{next_id++};
      if (cluster.try_place(id, spec)) {
        live.push_back(id);
      }
    } else if (roll < 7) {
      const std::size_t pick = rng.below(live.size());
      const VmId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      cluster.remove(id);
    } else if (roll < 8 && cluster.opened_hosts() > 0) {
      // Fault churn: phase flips bump epochs without moving buckets — the
      // index must survive them as refile-free syncs.
      const HostId host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      if (cluster.host_phase(host) == HostPhase::kUp) {
        for (const auto& [vm, spec] : cluster.fail_host(host)) {
          std::erase(live, vm);
        }
      } else {
        cluster.repair_host(host);
      }
    } else if (cluster.opened_hosts() > 0) {
      const HostId host = static_cast<HostId>(rng.below(cluster.opened_hosts()));
      cluster.set_host_heat(host, rng.uniform(0.0, 3.0), 0.25);
    }
    if (event % 500 == 0) {
      const HeatIndex* synced = cluster.synced_heat_index();
      ASSERT_NE(synced, nullptr);
      EXPECT_TRUE(synced->check(cluster.hosts()).empty()) << "event " << event;
      HeatIndex fresh;
      fresh.rebuild(cluster.hosts());
      EXPECT_EQ(synced->buckets(), fresh.buckets()) << "event " << event;
      EXPECT_TRUE(sim::audit(cluster).empty()) << "event " << event;
    }
  }
  const HeatIndex* synced = cluster.synced_heat_index();
  ASSERT_NE(synced, nullptr);
  EXPECT_TRUE(synced->uniform_width());
  EXPECT_TRUE(synced->check(cluster.hosts()).empty());
}

}  // namespace
}  // namespace slackvm::sched
