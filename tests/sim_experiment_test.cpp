// Scaled-down versions of the Fig. 3 / Fig. 4 protocols; the full-scale
// sweeps live in the bench harness.
#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <array>

namespace slackvm::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.generator.target_population = 150;
  cfg.generator.horizon = 3.0 * 24 * 3600;
  cfg.generator.mean_lifetime = 1.5 * 24 * 3600;
  cfg.generator.seed = 42;
  return cfg;
}

TEST(ExperimentTest, HeadlineDistributionFSavesPms) {
  // F = 50% 1:1 (CPU-bound) + 50% 3:1 (memory-bound): the complementary
  // pairing where the paper reports its peak 9.6% saving.
  const PackingComparison cmp =
      compare_packing(workload::ovhcloud_catalog(), workload::distribution('F'),
                      small_config());
  EXPECT_GT(cmp.pm_saving_pct(), 2.0);
  EXPECT_LT(cmp.slackvm.opened_pms, cmp.baseline.opened_pms);
  EXPECT_EQ(cmp.provider, "ovhcloud");
  EXPECT_EQ(cmp.distribution, "F");
}

TEST(ExperimentTest, SingleLevelDistributionsSaveLittle) {
  // A (all 1:1) and O (all 3:1) have nothing to pool: savings are at most
  // the marginal threshold effect.
  for (char letter : {'A', 'O'}) {
    const PackingComparison cmp = compare_packing(
        workload::ovhcloud_catalog(), workload::distribution(letter), small_config());
    EXPECT_LE(std::abs(cmp.pm_saving_pct()), 5.0) << letter;
  }
}

TEST(ExperimentTest, BothSidesPlaceWholeTrace) {
  const PackingComparison cmp = compare_packing(
      workload::azure_catalog(), workload::distribution('E'), small_config());
  EXPECT_EQ(cmp.baseline.placed_vms, cmp.slackvm.placed_vms);
  EXPECT_GT(cmp.baseline.placed_vms, 100U);
}

TEST(ExperimentTest, UnallocSharesShiftWithOversubscription) {
  // Fig. 3 shape: distribution A (1:1 only) strands memory (CPU-bound);
  // distribution O (3:1 only) strands CPU (memory-bound).
  const ExperimentConfig cfg = small_config();
  const PackingComparison a =
      compare_packing(workload::ovhcloud_catalog(), workload::distribution('A'), cfg);
  const PackingComparison o =
      compare_packing(workload::ovhcloud_catalog(), workload::distribution('O'), cfg);
  EXPECT_GT(a.baseline.avg_unalloc_mem_share, a.baseline.avg_unalloc_cpu_share);
  EXPECT_GT(o.baseline.avg_unalloc_cpu_share, o.baseline.avg_unalloc_mem_share);
}

TEST(ExperimentTest, SlackVmReducesStrandedResourcesOnF) {
  const PackingComparison cmp = compare_packing(
      workload::ovhcloud_catalog(), workload::distribution('F'), small_config());
  const double base_stranded =
      cmp.baseline.avg_unalloc_cpu_share + cmp.baseline.avg_unalloc_mem_share;
  const double slack_stranded =
      cmp.slackvm.avg_unalloc_cpu_share + cmp.slackvm.avg_unalloc_mem_share;
  EXPECT_LT(slack_stranded, base_stranded);
}

TEST(ExperimentTest, SweepCoversAllFifteenDistributions) {
  ExperimentConfig cfg = small_config();
  cfg.generator.target_population = 60;  // keep the sweep quick
  const auto sweep = run_distribution_sweep(workload::azure_catalog(), cfg);
  ASSERT_EQ(sweep.size(), 15U);
  EXPECT_EQ(sweep.front().distribution, "A");
  EXPECT_EQ(sweep.back().distribution, "O");
}

TEST(ExperimentTest, HeatmapIsLowerTriangularGrid) {
  ExperimentConfig cfg = small_config();
  cfg.generator.target_population = 60;
  const auto cells = run_savings_heatmap(workload::azure_catalog(), cfg);
  ASSERT_EQ(cells.size(), 15U);
  for (const HeatmapCell& cell : cells) {
    EXPECT_GE(cell.pct_1to1, 0);
    EXPECT_GE(cell.pct_2to1, 0);
    EXPECT_LE(cell.pct_1to1 + cell.pct_2to1, 100);
  }
}

TEST(ExperimentTest, RepetitionsAverageDeterministically) {
  ExperimentConfig cfg = small_config();
  cfg.generator.target_population = 60;
  cfg.repetitions = 2;
  const PackingComparison first = compare_packing(
      workload::azure_catalog(), workload::distribution('F'), cfg);
  const PackingComparison second = compare_packing(
      workload::azure_catalog(), workload::distribution('F'), cfg);
  EXPECT_EQ(first.baseline.opened_pms, second.baseline.opened_pms);
  EXPECT_EQ(first.slackvm.opened_pms, second.slackvm.opened_pms);
}

TEST(ExperimentTest, MeanResultAveragesEveryField) {
  // Locks the repetition-aggregation contract: no RunResult field may be
  // dropped. migrations and opened_per_cluster were silently discarded by
  // an earlier version of the averager.
  RunResult a;
  a.opened_pms = 80;
  a.peak_active_pms = 70;
  a.migrations = 10;
  a.opened_per_cluster = {{"shared", 80}};
  a.placed_vms = 500;
  a.peak_vms = 300;
  a.avg_unalloc_cpu_share = 0.20;
  a.avg_unalloc_mem_share = 0.10;
  a.peak_unalloc_cpu_share = 0.05;
  a.peak_unalloc_mem_share = 0.02;
  a.duration = 1000.0;
  a.avg_active_pms = 60.0;
  a.avg_alloc_cores = 2000.0;

  RunResult b = a;
  b.opened_pms = 85;        // mean 82.5 -> rounds to 83
  b.peak_active_pms = 73;   // mean 71.5 -> rounds to 72
  b.migrations = 15;        // mean 12.5 -> rounds to 13
  b.opened_per_cluster = {{"shared", 85}, {"1:1", 4}};
  b.avg_unalloc_cpu_share = 0.30;
  b.duration = 2000.0;

  const RunResult m = mean_result(std::array{a, b});
  EXPECT_EQ(m.opened_pms, 83U);
  EXPECT_EQ(m.peak_active_pms, 72U);
  EXPECT_EQ(m.migrations, 13U);
  ASSERT_EQ(m.opened_per_cluster.size(), 2U);
  EXPECT_EQ(m.opened_per_cluster.at("shared"), 83U);  // (80 + 85) / 2 = 82.5
  EXPECT_EQ(m.opened_per_cluster.at("1:1"), 2U);      // (0 + 4) / 2
  EXPECT_EQ(m.placed_vms, 500U);
  EXPECT_EQ(m.peak_vms, 300U);
  EXPECT_DOUBLE_EQ(m.avg_unalloc_cpu_share, 0.25);
  EXPECT_DOUBLE_EQ(m.avg_unalloc_mem_share, 0.10);
  EXPECT_DOUBLE_EQ(m.peak_unalloc_cpu_share, 0.05);
  EXPECT_DOUBLE_EQ(m.peak_unalloc_mem_share, 0.02);
  EXPECT_DOUBLE_EQ(m.duration, 1500.0);
  EXPECT_DOUBLE_EQ(m.avg_active_pms, 60.0);
  EXPECT_DOUBLE_EQ(m.avg_alloc_cores, 2000.0);
}

TEST(ExperimentTest, MeanResultOfEmptyAndSingle) {
  const RunResult empty = mean_result({});
  EXPECT_EQ(empty.opened_pms, 0U);
  EXPECT_DOUBLE_EQ(empty.duration, 0.0);

  RunResult only;
  only.opened_pms = 7;
  only.migrations = 3;
  only.opened_per_cluster = {{"2:1", 7}};
  const RunResult m = mean_result(std::array{only});
  EXPECT_EQ(m.opened_pms, 7U);
  EXPECT_EQ(m.migrations, 3U);
  EXPECT_EQ(m.opened_per_cluster.at("2:1"), 7U);
}

TEST(ExperimentTest, SavingPctFormula) {
  PackingComparison cmp;
  cmp.baseline.opened_pms = 83;
  cmp.slackvm.opened_pms = 75;
  EXPECT_NEAR(cmp.pm_saving_pct(), 9.6, 0.1);  // the paper's headline case
  cmp.baseline.opened_pms = 0;
  EXPECT_DOUBLE_EQ(cmp.pm_saving_pct(), 0.0);
}

}  // namespace
}  // namespace slackvm::sim
