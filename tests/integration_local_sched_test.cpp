// Cross-checks between the global scheduler's fast HostState accounting and
// the real local scheduler (VNodeManager) on identical hardware: the
// simulator's capacity filter must agree with what the PM would actually do.
#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "local/vnode_manager.hpp"
#include "sched/host_state.hpp"
#include "topology/builders.hpp"

namespace slackvm {
namespace {

using core::gib;
using core::OversubLevel;
using core::VmId;
using core::VmSpec;

VmSpec random_spec(core::SplitMix64& rng) {
  VmSpec s;
  s.vcpus = static_cast<core::VcpuCount>(1 + rng.below(8));
  s.mem_mib = gib(static_cast<std::int64_t>(1 + rng.below(16)));
  s.level = OversubLevel{static_cast<std::uint8_t>(1 + rng.below(3))};
  return s;
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

// Property: on the same machine, HostState and VNodeManager agree on
// admission, core allocation, and memory commitment through arbitrary
// deploy/remove sequences (without pooling, which HostState does not model).
TEST_P(Equivalence, HostStateMatchesVNodeManager) {
  const topo::CpuTopology machine = topo::make_flat(32, gib(128));
  local::VNodeManager manager(machine, local::PoolingPolicy::kNone);
  sched::HostState host(0, machine.config());

  core::SplitMix64 rng(GetParam());
  std::vector<std::pair<VmId, VmSpec>> alive;
  std::uint64_t next_id = 1;

  for (int step = 0; step < 300; ++step) {
    if (alive.empty() || rng.uniform() < 0.6) {
      const VmSpec spec = random_spec(rng);
      const VmId id{next_id++};
      const bool host_admits = host.can_host(spec);
      const bool manager_admits = manager.can_host(spec);
      EXPECT_EQ(host_admits, manager_admits)
          << "step " << step << " spec " << spec.vcpus << "v/" << spec.mem_mib << "@"
          << int(spec.level.ratio());
      if (host_admits && manager_admits) {
        host.add(id, spec);
        ASSERT_TRUE(manager.deploy(id, spec).has_value());
        alive.emplace_back(id, spec);
      }
    } else {
      const std::size_t pick = rng.below(alive.size());
      host.remove(alive[pick].first);
      manager.remove(alive[pick].first);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    EXPECT_EQ(host.alloc(), manager.alloc()) << "step " << step;
    manager.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(1, 7, 13, 42, 99, 1234));

TEST(EquivalenceEdge, RoundingSlackAgreesAtBoundary) {
  // 2-core machine: a 3-vCPU 2:1 VM occupies both cores; one more 2:1 vCPU
  // fits the rounding slack on both models, a 1:1 vCPU fits on neither.
  const topo::CpuTopology machine = topo::make_flat(2, gib(64));
  local::VNodeManager manager(machine);
  sched::HostState host(0, machine.config());

  VmSpec big;
  big.vcpus = 3;
  big.mem_mib = gib(1);
  big.level = OversubLevel{2};
  host.add(VmId{1}, big);
  ASSERT_TRUE(manager.deploy(VmId{1}, big));

  VmSpec slack_fit = big;
  slack_fit.vcpus = 1;
  EXPECT_TRUE(host.can_host(slack_fit));
  EXPECT_TRUE(manager.can_host(slack_fit));

  VmSpec premium = slack_fit;
  premium.level = OversubLevel{1};
  EXPECT_FALSE(host.can_host(premium));
  EXPECT_FALSE(manager.can_host(premium));
}

TEST(EquivalenceEdge, PoolingAdmitsMoreThanHostState) {
  // With pooling enabled the local scheduler may accept VMs the flat
  // accounting rejects — the documented fidelity gap (DESIGN.md §5).
  const topo::CpuTopology machine = topo::make_flat(2, gib(64));
  local::VNodeManager manager(machine, local::PoolingPolicy::kUpgrade);
  sched::HostState host(0, machine.config());

  VmSpec two_to_one;
  two_to_one.vcpus = 3;
  two_to_one.mem_mib = gib(1);
  two_to_one.level = OversubLevel{2};
  host.add(VmId{1}, two_to_one);
  ASSERT_TRUE(manager.deploy(VmId{1}, two_to_one));

  VmSpec three_to_one;
  three_to_one.vcpus = 1;
  three_to_one.mem_mib = gib(1);
  three_to_one.level = OversubLevel{3};
  EXPECT_FALSE(host.can_host(three_to_one));  // would need a new core
  EXPECT_TRUE(manager.can_host(three_to_one));  // pools into the 2:1 node
}

}  // namespace
}  // namespace slackvm
