// Streaming replay differential suite: draining an EventSource
// incrementally (O(active window) memory) must be bit-identical to the
// historical materialize-then-schedule-everything path, across the full
// shards x index x faults x threads matrix, with the invariant audits
// re-validating the datacenter at every event. Also pins the
// GeneratorSource equivalence, the serial no-hint path, and the
// horizon-hint contract (configurations that need the horizon up-front
// must throw on hintless sources instead of silently mis-scheduling).
#include "sim/event_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/error.hpp"
#include "sched/policy.hpp"
#include "sim/audit.hpp"
#include "sim/experiment.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"
#include "sim/shard.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"
#include "workload/trace.hpp"
#include "workload/trace_reader.hpp"

namespace slackvm::sim {
namespace {

using core::gib;

constexpr std::size_t kShardCounts[] = {1, 2, 8};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

const core::Resources kWorker{32, gib(128)};

// Bit-exact equality on every RunResult field (EXPECT_EQ on the doubles is
// deliberate: the guarantee is identical bits, not approximate agreement).
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.peak_active_pms, b.peak_active_pms);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.opened_per_cluster, b.opened_per_cluster);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.avg_unalloc_cpu_share, b.avg_unalloc_cpu_share);
  EXPECT_EQ(a.avg_unalloc_mem_share, b.avg_unalloc_mem_share);
  EXPECT_EQ(a.peak_unalloc_cpu_share, b.peak_unalloc_cpu_share);
  EXPECT_EQ(a.peak_unalloc_mem_share, b.peak_unalloc_mem_share);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.avg_active_pms, b.avg_active_pms);
  EXPECT_EQ(a.avg_alloc_cores, b.avg_alloc_cores);
  EXPECT_EQ(a.host_failures, b.host_failures);
  EXPECT_EQ(a.host_repairs, b.host_repairs);
  EXPECT_EQ(a.drained_hosts, b.drained_hosts);
  EXPECT_EQ(a.evacuated_vms, b.evacuated_vms);
  EXPECT_EQ(a.evac_replaced, b.evac_replaced);
  EXPECT_EQ(a.evac_migrated, b.evac_migrated);
  EXPECT_EQ(a.evac_retries, b.evac_retries);
  EXPECT_EQ(a.evac_departed, b.evac_departed);
  EXPECT_EQ(a.degraded_vms, b.degraded_vms);
  EXPECT_EQ(a.deferred_arrivals, b.deferred_arrivals);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
}

workload::GeneratorConfig make_generator_config(std::size_t population,
                                                std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.target_population = population;
  cfg.horizon = 2.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  return cfg;
}

workload::Trace make_trace(std::size_t population, std::uint64_t seed) {
  workload::Generator gen(workload::azure_catalog(), workload::make_mix(34, 33, 33),
                          make_generator_config(population, seed));
  return gen.generate();
}

Datacenter make_dc(std::size_t shards, bool index) {
  Datacenter dc = Datacenter::shared_sharded(kWorker, sched::make_progress_policy,
                                             shards, 1.0);
  dc.set_index_enabled(index);
  return dc;
}

FaultConfig make_faults() {
  FaultConfig faults;
  faults.count = 40;
  faults.seed = 777;
  faults.repair_delay = 3600.0;
  return faults;
}

// Serialize with write_csv_fast (shortest round-trip times), so the rows
// the streaming reader yields are bit-exactly the rows of the in-memory
// trace the materialized reference replays.
std::string write_trace_file(const workload::Trace& trace, const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  workload::write_csv_fast(trace, out);
  out.close();
  EXPECT_TRUE(out.good());
  return path;
}

// --- the streaming differential matrix ---------------------------------------
//
// For every cell of shards {1,2,8} x index {on,off} x faults {on,off} x
// threads {1,2,8}: the reference is the materialized trace through
// replay_sharded; the candidate streams the same rows from disk through a
// pre-scanned StreamingTraceSource (the scan provides the horizon the
// barrier windows need). Per-event invariant audits stay on throughout.
TEST(StreamDifferential, StreamingMatchesMaterializedAcrossShardMatrix) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(100, 42);
  const std::string path = write_trace_file(trace, "stream_matrix.csv");
  const FaultConfig faults = make_faults();
  for (const std::size_t shards : kShardCounts) {
    for (const bool index : {true, false}) {
      for (const bool inject : {false, true}) {
        ShardOptions options;
        options.shards = shards;
        options.faults = inject ? &faults : nullptr;
        Datacenter reference_dc = make_dc(shards, index);
        const RunResult reference = replay_sharded(reference_dc, trace, options);
        if (inject) {
          EXPECT_GT(reference.host_failures, 0U);
        }
        for (const std::size_t threads : kThreadCounts) {
          options.threads = threads;
          Datacenter dc = make_dc(shards, index);
          StreamingTraceSource source =
              StreamingTraceSource::open(path, {}, /*pre_scan=*/true);
          const RunResult result = replay_sharded(dc, source, options);
          SCOPED_TRACE("shards " + std::to_string(shards) + " index " +
                       std::to_string(index) + " faults " + std::to_string(inject) +
                       " threads " + std::to_string(threads));
          expect_identical(reference, result);
        }
      }
    }
  }
  std::remove(path.c_str());
}

// A plain serial replay needs no hints at all: a hintless streaming source
// (no scan pre-pass) must still be bit-identical to the materialized path,
// with the run duration converging to the horizon through observation.
TEST(StreamDifferential, SerialStreamingWithoutHintsMatchesMaterialized) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(100, 7);
  const std::string path = write_trace_file(trace, "stream_serial.csv");
  for (const bool index : {true, false}) {
    SCOPED_TRACE("index " + std::to_string(index));
    Datacenter reference_dc = make_dc(1, index);
    const RunResult reference = replay(reference_dc, trace);
    EXPECT_EQ(reference.duration, trace.horizon());

    Datacenter dc = make_dc(1, index);
    StreamingTraceSource source =
        StreamingTraceSource::open(path, {}, /*pre_scan=*/false);
    EXPECT_FALSE(source.horizon_hint().has_value());
    expect_identical(reference, replay(dc, source));
  }
  std::remove(path.c_str());
}

// Periodic control schedules (rebalance passes, the fault timetable) are
// laid out from the horizon hint; with a scan pre-pass the streamed run
// must reproduce the materialized one bit-for-bit.
TEST(StreamDifferential, SerialControlSchedulesMatchWithScanHint) {
  ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(100, 13);
  const std::string path = write_trace_file(trace, "stream_control.csv");
  const FaultConfig faults = make_faults();
  const RebalanceOptions rebalance{.interval = 6.0 * 3600, .budget_per_pass = 64};

  Datacenter reference_dc = make_dc(1, true);
  const RunResult reference =
      replay(reference_dc, trace, rebalance, nullptr, &faults);
  EXPECT_GT(reference.host_failures, 0U);

  Datacenter dc = make_dc(1, true);
  StreamingTraceSource source =
      StreamingTraceSource::open(path, {}, /*pre_scan=*/true);
  EXPECT_EQ(source.horizon_hint(), std::optional<core::SimTime>(trace.horizon()));
  expect_identical(reference, replay(dc, source, rebalance, nullptr, &faults));
  std::remove(path.c_str());
}

// The synthetic path: pulling rows straight off Generator::Stream (never
// materialized) must equal materializing via generate() first — the stream
// is the generate() implementation, so this pins the refactor.
TEST(StreamDifferential, GeneratorSourceMatchesMaterializedGenerate) {
  ScopedDebugAudit audit_every_event;
  const workload::Generator gen(workload::azure_catalog(),
                                workload::make_mix(34, 33, 33),
                                make_generator_config(100, 21));
  Datacenter reference_dc = make_dc(1, true);
  const RunResult reference = replay(reference_dc, gen.generate());

  Datacenter dc = make_dc(1, true);
  GeneratorSource source(gen);
  expect_identical(reference, replay(dc, source));
}

// The horizon-hint contract: configurations that must know the horizon
// before the first event fires (barrier windows, rebalance passes, the
// fault timetable) throw on a hintless source instead of guessing.
TEST(StreamDifferential, HintlessSourcesThrowWhereHorizonIsRequired) {
  const workload::Trace trace = make_trace(40, 5);
  const std::string path = write_trace_file(trace, "stream_hintless.csv");
  const FaultConfig faults = make_faults();
  const RebalanceOptions rebalance{};

  {
    Datacenter dc = make_dc(2, true);
    StreamingTraceSource source = StreamingTraceSource::open(path);
    ShardOptions options;
    options.shards = 2;
    try {
      (void)replay_sharded(dc, source, options);
      FAIL() << "expected SlackError";
    } catch (const core::SlackError& e) {
      EXPECT_NE(std::string(e.what()).find("horizon"), std::string::npos)
          << e.what();
    }
  }
  {
    Datacenter dc = make_dc(1, true);
    StreamingTraceSource source = StreamingTraceSource::open(path);
    EXPECT_THROW((void)replay(dc, source, rebalance), core::SlackError);
  }
  {
    Datacenter dc = make_dc(1, true);
    StreamingTraceSource source = StreamingTraceSource::open(path);
    EXPECT_THROW((void)replay(dc, source, std::nullopt, nullptr, &faults),
                 core::SlackError);
  }
  {
    // A generator source never has a horizon; sharded replay must refuse it.
    const workload::Generator gen(workload::azure_catalog(),
                                  workload::make_mix(34, 33, 33),
                                  make_generator_config(40, 5));
    Datacenter dc = make_dc(2, true);
    GeneratorSource source(gen);
    ShardOptions options;
    options.shards = 2;
    EXPECT_THROW((void)replay_sharded(dc, source, options), core::SlackError);
  }
  std::remove(path.c_str());
}

// End-to-end: an ExperimentConfig with trace_path set streams the file for
// every cell — deterministically, with the dedicated baseline covering all
// three paper levels (the classifier decides the level population row by
// row, so all three clusters must exist up-front).
TEST(StreamDifferential, ExperimentStreamsTraceFile) {
  const workload::Trace trace = make_trace(60, 9);
  const std::string path = write_trace_file(trace, "stream_experiment.csv");

  ExperimentConfig config;
  config.trace_path = path;
  config.generator = make_generator_config(60, 9);  // ignored for workload

  const PackingComparison first =
      compare_packing(workload::azure_catalog(), workload::make_mix(34, 33, 33),
                      config);
  EXPECT_EQ(first.slackvm.placed_vms, trace.size());
  EXPECT_EQ(first.baseline.opened_per_cluster.size(), 3U);
  EXPECT_GT(first.slackvm.opened_pms, 0U);

  const PackingComparison second =
      compare_packing(workload::azure_catalog(), workload::make_mix(34, 33, 33),
                      config);
  expect_identical(first.baseline, second.baseline);
  expect_identical(first.slackvm, second.slackvm);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slackvm::sim
