// Interference-aware scoring and the polluter-eviction rebalance pass:
// heat-bucket epoch semantics down to the arena mirror, the
// InterferenceScorer contract against the PlacementIndex lazy-deletion
// protocol (stale-heap regression when heat crosses a bucket mid-window),
// plan_interference unit behaviour, a >= 10k-event naive-vs-indexed
// differential churn across policies, the full replay acceptance matrix
// (shards x index x threads, instant and engine migration modes), and the
// cache-polluter QoS comparison: interference-aware rebalance must beat
// progress-only on p90 response inflation at equal PM count.
#include "sched/rebalancer.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.hpp"
#include "perf/contention.hpp"
#include "sched/policy.hpp"
#include "sched/scorer.hpp"
#include "sched/vcluster.hpp"
#include "sim/audit.hpp"
#include "sim/replay.hpp"
#include "sim/shard.hpp"
#include "sim/usage_monitor.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"
#include "workload/usage.hpp"

namespace slackvm {
namespace {

using core::gib;
using core::OversubLevel;
using core::UsageClass;
using core::VmId;
using core::VmSpec;
using sched::HostId;
using sched::InterferenceOptions;
using sched::VCluster;
using sim::Datacenter;
using sim::RunResult;

const core::Resources kWorker{32, gib(128)};

VmSpec make_spec(core::VcpuCount vcpus, core::MemMib mem, std::uint8_t ratio,
                 UsageClass usage = UsageClass::kSteady) {
  VmSpec s;
  s.vcpus = vcpus;
  s.mem_mib = mem;
  s.level = OversubLevel{ratio};
  s.usage = usage;
  return s;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.opened_pms, b.opened_pms);
  EXPECT_EQ(a.peak_active_pms, b.peak_active_pms);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.opened_per_cluster, b.opened_per_cluster);
  EXPECT_EQ(a.placed_vms, b.placed_vms);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  // Exact (not NEAR) comparisons: bit-identical is the contract.
  EXPECT_EQ(a.avg_unalloc_cpu_share, b.avg_unalloc_cpu_share);
  EXPECT_EQ(a.avg_unalloc_mem_share, b.avg_unalloc_mem_share);
  EXPECT_EQ(a.peak_unalloc_cpu_share, b.peak_unalloc_cpu_share);
  EXPECT_EQ(a.peak_unalloc_mem_share, b.peak_unalloc_mem_share);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.avg_active_pms, b.avg_active_pms);
  EXPECT_EQ(a.avg_alloc_cores, b.avg_alloc_cores);
  EXPECT_EQ(a.mig_planned, b.mig_planned);
  EXPECT_EQ(a.mig_committed, b.mig_committed);
  EXPECT_EQ(a.mig_cancelled, b.mig_cancelled);
  EXPECT_EQ(a.mig_rolled_back, b.mig_rolled_back);
  EXPECT_EQ(a.mig_timed_out, b.mig_timed_out);
  EXPECT_EQ(a.mig_degraded, b.mig_degraded);
  EXPECT_EQ(a.mig_retries, b.mig_retries);
  EXPECT_EQ(a.heat_updates, b.heat_updates);
  EXPECT_EQ(a.itf_passes, b.itf_passes);
  EXPECT_EQ(a.itf_hot_hosts, b.itf_hot_hosts);
  EXPECT_EQ(a.itf_evictions, b.itf_evictions);
  EXPECT_EQ(a.itf_applied, b.itf_applied);
  EXPECT_EQ(a.itf_requested, b.itf_requested);
  EXPECT_EQ(a.itf_skipped, b.itf_skipped);
}

void expect_itf_identity(const RunResult& r) {
  EXPECT_EQ(r.itf_evictions, r.itf_applied + r.itf_requested + r.itf_skipped);
}

// --- heat buckets: epoch bumps only on crossings ----------------------------

TEST(HeatBucket, EpochBumpsOnlyOnBucketCrossings) {
  sched::HostState host(0, kWorker);
  const std::uint64_t e0 = host.epoch();
  host.set_heat(0.1, 0.25);  // bucket 0 -> 0: no crossing
  EXPECT_DOUBLE_EQ(host.heat(), 0.1);
  EXPECT_EQ(host.heat_bucket(), 0U);
  EXPECT_DOUBLE_EQ(host.quantized_heat(), 0.0);
  EXPECT_EQ(host.epoch(), e0);
  host.set_heat(0.24, 0.25);  // still bucket 0
  EXPECT_EQ(host.epoch(), e0);
  host.set_heat(0.3, 0.25);  // crosses into bucket 1
  EXPECT_EQ(host.heat_bucket(), 1U);
  EXPECT_DOUBLE_EQ(host.quantized_heat(), 0.25);
  EXPECT_EQ(host.epoch(), e0 + 1);
  host.set_heat(0.49, 0.25);  // within bucket 1
  EXPECT_EQ(host.epoch(), e0 + 1);
  host.set_heat(1.1, 0.25);  // jumps to bucket 4
  EXPECT_EQ(host.heat_bucket(), 4U);
  EXPECT_DOUBLE_EQ(host.quantized_heat(), 1.0);
  EXPECT_EQ(host.epoch(), e0 + 2);
  host.set_heat(0.0, 0.25);  // cools back to bucket 0
  EXPECT_EQ(host.heat_bucket(), 0U);
  EXPECT_EQ(host.epoch(), e0 + 3);
}

TEST(HeatBucket, NegativeHeatClampsAndZeroWidthDisablesQuantization) {
  sched::HostState host(0, kWorker);
  host.set_heat(-2.0, 0.25);
  EXPECT_DOUBLE_EQ(host.heat(), 0.0);
  EXPECT_EQ(host.heat_bucket(), 0U);
  host.set_heat(5.0, 0.0);  // no bucketing: everything is bucket 0
  EXPECT_DOUBLE_EQ(host.heat(), 5.0);
  EXPECT_EQ(host.heat_bucket(), 0U);
  EXPECT_DOUBLE_EQ(host.quantized_heat(), 0.0);
}

TEST(HeatBucket, VClusterMirrorsHeatIntoArenaWithoutEpochBump) {
  VCluster cl("heat", kWorker, sched::make_interference_policy(4.0));
  cl.place(VmId{1}, make_spec(4, gib(8), 1));
  const std::uint64_t e0 = cl.hosts()[0].epoch();
  cl.set_host_heat(0, 0.2, 0.25);  // within bucket 0: no epoch bump...
  EXPECT_EQ(cl.hosts()[0].epoch(), e0);
  EXPECT_DOUBLE_EQ(cl.host_heat(0), 0.2);
  // ...but the arena mirror still tracks the raw value exactly.
  EXPECT_DOUBLE_EQ(cl.arena().heat(0), 0.2);
  EXPECT_EQ(cl.arena().heat_bucket(0), 0U);
  EXPECT_TRUE(cl.arena().check(cl.hosts()).empty());
  cl.set_host_heat(0, 0.9, 0.25);  // bucket 3: epoch bumps, arena follows
  EXPECT_EQ(cl.hosts()[0].epoch(), e0 + 1);
  EXPECT_EQ(cl.arena().heat_bucket(0), 3U);
  EXPECT_TRUE(cl.arena().check(cl.hosts()).empty());
  EXPECT_TRUE(sim::audit(cl).empty());
}

TEST(HeatBucket, UnknownHostRejected) {
  VCluster cl("heat", kWorker, sched::make_progress_policy());
  EXPECT_THROW(cl.set_host_heat(0, 1.0, 0.25), core::SlackError);
}

// --- InterferenceScorer -----------------------------------------------------

TEST(InterferenceScorer, StacksQuantizedHeatPenaltyOnProgress) {
  sched::HostState host(0, kWorker);
  const VmSpec spec = make_spec(4, gib(8), 2);
  const sched::ProgressScorer progress;
  const sched::InterferenceScorer scorer(3.0);
  // Cold host: identical to Algorithm 2.
  EXPECT_DOUBLE_EQ(scorer.score(host, spec), progress.score(host, spec));
  // The penalty reads the *quantized* heat, not the raw EWMA: within a
  // bucket the score must not move (PlacementIndex lazy-deletion protocol).
  host.set_heat(0.2, 0.25);
  EXPECT_DOUBLE_EQ(scorer.score(host, spec), progress.score(host, spec));
  host.set_heat(1.1, 0.25);  // quantized to 1.0
  EXPECT_DOUBLE_EQ(scorer.score(host, spec),
                   progress.score(host, spec) - 3.0 * 1.0);
  EXPECT_EQ(scorer.name(), "interference-aware(w=3)");
}

TEST(InterferenceScorer, ZeroWeightDegeneratesToProgress) {
  sched::HostState host(0, kWorker);
  host.set_heat(7.0, 0.25);
  const VmSpec spec = make_spec(8, gib(16), 3);
  const sched::ProgressScorer progress;
  const sched::InterferenceScorer scorer(0.0);
  EXPECT_DOUBLE_EQ(scorer.score(host, spec), progress.score(host, spec));
}

// --- stale-heap regression: bucket crossings must invalidate the index ------

TEST(InterferenceIndex, BucketCrossingMidWindowSteersIndexedSelection) {
  // Two open hosts, both able to take the probe VM. A heat-bucket crossing
  // on the preferred host must re-steer the *indexed* selection exactly
  // like the naive scan: if set_heat skipped the epoch bump (or VCluster::
  // set_host_heat skipped the index touch), the heap would serve the stale
  // pre-heat score and keep picking the hot host.
  const auto drive = [](bool index) {
    VCluster cl("itf", kWorker, sched::make_interference_policy(50.0));
    cl.set_index_enabled(index);
    cl.place(VmId{1}, make_spec(17, gib(16), 1));  // host 0
    cl.place(VmId{2}, make_spec(17, gib(16), 1));  // does not fit: host 1
    // Symmetric hosts: the cold tie breaks to host 0.
    const auto cold = cl.try_place(VmId{3}, make_spec(1, gib(1), 1));
    EXPECT_EQ(cold, std::optional<HostId>{0});
    cl.remove(VmId{3});
    // Mid-window heat update crossing buckets: host 0 becomes expensive.
    cl.set_host_heat(0, 1.0, 0.25);
    const auto hot = cl.try_place(VmId{4}, make_spec(1, gib(1), 1));
    EXPECT_EQ(hot, std::optional<HostId>{1});
    cl.remove(VmId{4});
    // Within-bucket wobble must NOT change the selection (no epoch bump,
    // cached entries stay exact).
    cl.set_host_heat(0, 1.05, 0.25);
    const auto same = cl.try_place(VmId{5}, make_spec(1, gib(1), 1));
    EXPECT_EQ(same, std::optional<HostId>{1});
    // Cooling below host 1's (zero) heat restores the low-id tie-break.
    cl.set_host_heat(0, 0.0, 0.25);
    const auto cooled = cl.try_place(VmId{6}, make_spec(1, gib(1), 1));
    EXPECT_EQ(cooled, std::optional<HostId>{0});
    EXPECT_TRUE(sim::audit(cl).empty());
  };
  drive(true);
  drive(false);
}

// --- plan_interference ------------------------------------------------------

InterferenceOptions itf_options() {
  InterferenceOptions itf;
  itf.enabled = true;
  itf.threshold = 1.25;
  itf.evictions_per_pass = 4;
  return itf;
}

TEST(PlanInterference, EvictsHeaviestContributorTowardCoolHost) {
  VCluster cl("pol", kWorker, sched::make_first_fit());
  cl.place(VmId{1}, make_spec(8, gib(8), 1));    // host 0, light
  cl.place(VmId{2}, make_spec(23, gib(16), 1));  // host 0, the polluter
  cl.place(VmId{3}, make_spec(1, gib(1), 1));    // host 0 (32 cores full)
  cl.place(VmId{4}, make_spec(2, gib(2), 1));    // forces host 1
  cl.set_host_heat(0, 3.0, 0.25);  // far above any sane threshold
  cl.set_host_heat(1, 0.1, 0.25);
  const perf::ContentionModel model;
  const sched::Rebalancer reb;
  const sched::MigrationPlan plan =
      reb.plan_interference(cl, model, itf_options());
  ASSERT_EQ(plan.migrations.size(), 1U);
  EXPECT_EQ(plan.hot_hosts, 1U);
  EXPECT_EQ(plan.migrations[0].vm, VmId{2});  // max vcpus x mean usage
  EXPECT_EQ(plan.migrations[0].from, 0U);
  EXPECT_EQ(plan.migrations[0].to, 1U);
  // Planning never mutates the cluster.
  EXPECT_EQ(cl.host_of(VmId{2}), 0U);
  EXPECT_DOUBLE_EQ(cl.host_heat(0), 3.0);
  // Deterministic: replanning yields the same plan.
  const sched::MigrationPlan again =
      reb.plan_interference(cl, model, itf_options());
  ASSERT_EQ(again.migrations.size(), 1U);
  EXPECT_EQ(again.migrations[0].vm, plan.migrations[0].vm);
  EXPECT_EQ(again.migrations[0].to, plan.migrations[0].to);
}

TEST(PlanInterference, ColdClusterPlansNothing) {
  VCluster cl("pol", kWorker, sched::make_first_fit());
  cl.place(VmId{1}, make_spec(8, gib(8), 1));
  cl.place(VmId{2}, make_spec(8, gib(8), 1));
  const perf::ContentionModel model;
  const sched::Rebalancer reb;
  const sched::MigrationPlan plan =
      reb.plan_interference(cl, model, itf_options());
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.hot_hosts, 0U);
}

TEST(PlanInterference, SingleVmHostsAndMissingTargetsAreSkipped) {
  // Host 0 is hot but hosts a single VM (evicting it just moves the whole
  // load); host 1 is hotter than nothing else that could absorb: no plan.
  VCluster cl("pol", kWorker, sched::make_first_fit());
  cl.place(VmId{1}, make_spec(32, gib(16), 1));  // host 0: hot, 1 VM
  cl.set_host_heat(0, 3.0, 0.25);
  const perf::ContentionModel model;
  const sched::Rebalancer reb;
  EXPECT_TRUE(reb.plan_interference(cl, model, itf_options()).empty());
}

TEST(PlanInterference, BudgetCapsEvictions) {
  VCluster cl("pol", kWorker, sched::make_first_fit());
  // Two hot hosts whose heaviest VM (10 cores) fits on the cool host even
  // after the first eviction lands there, so an unconstrained pass plans
  // both moves.
  cl.place(VmId{1}, make_spec(8, gib(4), 1));    // host 0
  cl.place(VmId{2}, make_spec(8, gib(4), 1));    // host 0
  cl.place(VmId{3}, make_spec(10, gib(4), 1));   // host 0 (26 cores)
  cl.place(VmId{4}, make_spec(8, gib(4), 1));    // host 1
  cl.place(VmId{5}, make_spec(8, gib(4), 1));    // host 1
  cl.place(VmId{6}, make_spec(10, gib(4), 1));   // host 1 (26 cores)
  cl.place(VmId{7}, make_spec(9, gib(4), 1));    // fits neither: host 2
  cl.set_host_heat(0, 3.0, 0.25);
  cl.set_host_heat(1, 2.5, 0.25);
  cl.set_host_heat(2, 0.0, 0.25);
  const perf::ContentionModel model;
  const sched::Rebalancer reb;
  InterferenceOptions one = itf_options();
  one.evictions_per_pass = 1;
  const sched::MigrationPlan plan = reb.plan_interference(cl, model, one);
  ASSERT_EQ(plan.migrations.size(), 1U);
  EXPECT_EQ(plan.migrations[0].from, 0U);  // hottest first
  EXPECT_EQ(plan.migrations[0].vm, VmId{3});
  EXPECT_EQ(plan.migrations[0].to, 2U);
  const sched::MigrationPlan both =
      reb.plan_interference(cl, model, itf_options());
  ASSERT_EQ(both.migrations.size(), 2U);
  EXPECT_EQ(both.hot_hosts, 2U);
  // The victim is the max of vcpus x per-VM mean usage (the signal base is
  // VmId-seeded), so only the host pair is pinned here.
  EXPECT_EQ(both.migrations[1].from, 1U);
  EXPECT_EQ(both.migrations[1].to, 2U);
}

TEST(InterferenceOptionsValidate, RejectsOutOfRangeKnobs) {
  InterferenceOptions itf = itf_options();
  itf.heat_alpha = 0.0;
  EXPECT_THROW(itf.validate(), core::SlackError);
  itf = itf_options();
  itf.heat_interval = 0.0;
  EXPECT_THROW(itf.validate(), core::SlackError);
  itf = itf_options();
  itf.heat_bucket = -1.0;
  EXPECT_THROW(itf.validate(), core::SlackError);
  itf = itf_options();
  itf.threshold = 0.5;
  EXPECT_THROW(itf.validate(), core::SlackError);
  itf = itf_options();
  itf.evictions_per_pass = 0;
  EXPECT_THROW(itf.validate(), core::SlackError);
  // Disabled options never validate their knobs (defaults stay inert).
  itf.enabled = false;
  EXPECT_NO_THROW(itf.validate());
}

// --- differential churn: naive scan vs indexed InterferenceScorer -----------

TEST(InterferenceDifferential, TenThousandEventChurnMatchesNaiveScan) {
  // >= 10k randomized place/remove/heat events per policy: the indexed
  // cluster must reproduce the naive scan's host selection bit-for-bit,
  // including across heat-bucket crossings (the lazy-deletion stress).
  struct PolicyCase {
    const char* label;
    std::function<std::unique_ptr<sched::PlacementPolicy>()> make;
  };
  const std::vector<PolicyCase> policies = {
      {"progress", [] { return sched::make_progress_policy(); }},
      {"interference-w1", [] { return sched::make_interference_policy(1.0); }},
      {"interference-w8", [] { return sched::make_interference_policy(8.0); }},
  };
  for (const PolicyCase& pc : policies) {
    SCOPED_TRACE(pc.label);
    VCluster indexed("idx", kWorker, pc.make());
    VCluster naive("ref", kWorker, pc.make());
    naive.set_index_enabled(false);
    core::SplitMix64 rng(0x17feULL);
    std::vector<VmId> live;
    std::uint64_t next_id = 1;
    for (int event = 0; event < 12000; ++event) {
      const std::uint64_t roll = rng.below(10);
      if (roll < 5 || live.empty()) {
        const VmSpec spec = make_spec(
            static_cast<core::VcpuCount>(1 + rng.below(8)),
            gib(static_cast<std::int64_t>(1 + rng.below(16))),
            static_cast<std::uint8_t>(1 + rng.below(3)));
        const VmId id{next_id++};
        const auto a = indexed.try_place(id, spec);
        const auto b = naive.try_place(id, spec);
        ASSERT_EQ(a, b) << "event " << event;
        if (a) {
          live.push_back(id);
        }
      } else if (roll < 8) {
        const std::size_t pick = rng.below(live.size());
        const VmId id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        indexed.remove(id);
        naive.remove(id);
      } else {
        ASSERT_EQ(indexed.opened_hosts(), naive.opened_hosts());
        if (indexed.opened_hosts() > 0) {
          const HostId host =
              static_cast<HostId>(rng.below(indexed.opened_hosts()));
          const double heat = rng.uniform(0.0, 3.0);
          indexed.set_host_heat(host, heat, 0.25);
          naive.set_host_heat(host, heat, 0.25);
        }
      }
      if (event % 2000 == 0) {
        EXPECT_TRUE(indexed.arena().check(indexed.hosts()).empty());
        EXPECT_TRUE(sim::audit(indexed).empty());
      }
    }
    ASSERT_EQ(indexed.opened_hosts(), naive.opened_hosts());
    for (HostId h = 0; h < indexed.opened_hosts(); ++h) {
      EXPECT_EQ(indexed.hosts()[h].vm_count(), naive.hosts()[h].vm_count());
      EXPECT_DOUBLE_EQ(indexed.host_heat(h), naive.host_heat(h));
    }
    EXPECT_TRUE(sim::audit(indexed).empty());
    EXPECT_TRUE(sim::audit(naive).empty());
  }
}

// --- differential churn: incremental planner passes vs the naive bodies ----

void expect_same_plan(const sched::MigrationPlan& a,
                      const sched::MigrationPlan& b) {
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].vm, b.migrations[i].vm) << "migration " << i;
    EXPECT_EQ(a.migrations[i].from, b.migrations[i].from) << "migration " << i;
    EXPECT_EQ(a.migrations[i].to, b.migrations[i].to) << "migration " << i;
  }
  EXPECT_EQ(a.hosts_emptied, b.hosts_emptied);
  EXPECT_EQ(a.hot_hosts, b.hot_hosts);
}

TEST(PlanDifferential, TenThousandEventChurnMatchesNaivePasses) {
  // >= 10k randomized place/remove/fault/heat events on one indexed
  // cluster; at every checkpoint both planner passes must reproduce their
  // verbatim naive references move-for-move (same VMs, same sources, same
  // targets, same order) — the scratch-column / heat-bucket-streaming
  // stress for the incremental control plane.
  struct ScorerCase {
    const char* label;
    std::function<std::unique_ptr<sched::Scorer>()> make;
  };
  const std::vector<ScorerCase> scorers = {
      {"progress", [] { return std::unique_ptr<sched::Scorer>{}; }},
      {"interference-w4",
       [] { return std::make_unique<sched::InterferenceScorer>(4.0); }},
  };
  for (const ScorerCase& sc : scorers) {
    SCOPED_TRACE(sc.label);
    VCluster cluster("plan-churn", kWorker, sched::make_interference_policy(4.0));
    const sched::Rebalancer rebalancer(sc.make());
    const perf::ContentionModel contention;
    InterferenceOptions itf = itf_options();
    itf.threshold = 1.02;  // keep the polluter pass firing on mild heat
    core::SplitMix64 rng(0x51acULL);
    std::vector<VmId> live;
    std::uint64_t next_id = 1;
    for (int event = 0; event < 12000; ++event) {
      const std::uint64_t roll = rng.below(20);
      if (roll < 9 || live.empty()) {
        const VmSpec spec = make_spec(
            static_cast<core::VcpuCount>(1 + rng.below(8)),
            gib(static_cast<std::int64_t>(1 + rng.below(16))),
            static_cast<std::uint8_t>(1 + rng.below(3)));
        const VmId id{next_id++};
        if (cluster.try_place(id, spec)) {
          live.push_back(id);
        }
      } else if (roll < 14) {
        const std::size_t pick = rng.below(live.size());
        const VmId id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        cluster.remove(id);
      } else if (roll < 15 && cluster.opened_hosts() > 0) {
        // Fault churn: DOWN hosts must be skipped as polluter sources and
        // as drain targets in both paths.
        const HostId host =
            static_cast<HostId>(rng.below(cluster.opened_hosts()));
        if (cluster.host_phase(host) == sched::HostPhase::kUp) {
          for (const auto& [vm, spec] : cluster.fail_host(host)) {
            std::erase(live, vm);
          }
        } else {
          cluster.repair_host(host);
        }
      } else if (cluster.opened_hosts() > 0) {
        const HostId host =
            static_cast<HostId>(rng.below(cluster.opened_hosts()));
        cluster.set_host_heat(host, rng.uniform(0.0, 3.0), 0.25);
      }
      if (event % 200 == 199) {
        // The dispatch preconditions must hold, or this differential would
        // silently compare naive against naive.
        ASSERT_TRUE(cluster.index_enabled());
        const sched::HeatIndex* index = cluster.synced_heat_index();
        ASSERT_NE(index, nullptr);
        ASSERT_TRUE(index->uniform_width());
        expect_same_plan(rebalancer.plan(cluster, 16),
                         rebalancer.plan_naive(cluster, 16));
        expect_same_plan(rebalancer.plan_interference(cluster, contention, itf),
                         rebalancer.plan_interference_naive(cluster, contention, itf));
      }
      if (event % 2000 == 0) {
        EXPECT_TRUE(sim::audit(cluster).empty()) << "event " << event;
      }
    }
    EXPECT_TRUE(sim::audit(cluster).empty());
  }
}

TEST(HeatCacheDifferential, ChurnedHeatTicksMatchUncachedSampling) {
  // Mirror-churned clusters, one refreshing heat through the DemandCache,
  // one through the naive per-tick sampling: every host's raw heat must
  // stay bit-identical through >= 10k events of place/remove/fault churn
  // interleaved with heat ticks — and once the churn stops, a further tick
  // must rebuild nothing (heat-crossing epoch bumps are restamped away).
  VCluster cached_cl("cached", kWorker, sched::make_progress_policy());
  VCluster plain_cl("plain", kWorker, sched::make_progress_policy());
  sim::DemandCache cache;
  core::SplitMix64 rng(0x6ea7ULL);
  std::vector<VmId> live;
  std::uint64_t next_id = 1;
  double now = 0.0;
  for (int event = 0; event < 12000; ++event) {
    const std::uint64_t roll = rng.below(20);
    if (roll < 10 || live.empty()) {
      const VmSpec spec = make_spec(
          static_cast<core::VcpuCount>(1 + rng.below(8)),
          gib(static_cast<std::int64_t>(1 + rng.below(16))),
          static_cast<std::uint8_t>(1 + rng.below(4)),
          static_cast<UsageClass>(rng.below(3)));
      const VmId id{next_id++};
      const auto a = cached_cl.try_place(id, spec);
      const auto b = plain_cl.try_place(id, spec);
      ASSERT_EQ(a, b) << "event " << event;
      if (a) {
        live.push_back(id);
      }
    } else if (roll < 15) {
      const std::size_t pick = rng.below(live.size());
      const VmId id = live[pick];
      live[pick] = live.back();
      live.pop_back();
      cached_cl.remove(id);
      plain_cl.remove(id);
    } else if (roll < 16 && cached_cl.opened_hosts() > 0) {
      const HostId host =
          static_cast<HostId>(rng.below(cached_cl.opened_hosts()));
      if (cached_cl.host_phase(host) == sched::HostPhase::kUp) {
        const auto displaced = cached_cl.fail_host(host);
        const auto mirrored = plain_cl.fail_host(host);
        ASSERT_EQ(displaced.size(), mirrored.size());
        for (const auto& [vm, spec] : displaced) {
          std::erase(live, vm);
        }
      } else {
        cached_cl.repair_host(host);
        plain_cl.repair_host(host);
      }
    } else {
      now += 30.0;
      ASSERT_EQ(sim::update_cluster_heat(cached_cl, now, 0.5, 0.25, &cache),
                sim::update_cluster_heat(plain_cl, now, 0.5, 0.25));
      ASSERT_EQ(cached_cl.opened_hosts(), plain_cl.opened_hosts());
      for (HostId h = 0; h < cached_cl.opened_hosts(); ++h) {
        // Exact (not NEAR): bit-identical heat is the contract.
        ASSERT_EQ(cached_cl.host_heat(h), plain_cl.host_heat(h))
            << "event " << event << " host " << h;
      }
    }
    if (event % 2000 == 0) {
      EXPECT_TRUE(sim::audit(cached_cl).empty()) << "event " << event;
    }
  }
  // Quiet ticks: with no membership churn since the last tick, the cache
  // must replay every term list untouched.
  now += 30.0;
  sim::update_cluster_heat(cached_cl, now, 0.5, 0.25, &cache);
  const std::size_t warm = cache.rebuilds();
  now += 30.0;
  sim::update_cluster_heat(cached_cl, now, 0.5, 0.25, &cache);
  EXPECT_EQ(cache.rebuilds(), warm);
  EXPECT_TRUE(sim::audit(cached_cl).empty());
  EXPECT_TRUE(sim::audit(plain_cl).empty());
}

TEST(HeatCacheDifferential, JournalOverflowFallsBackToEpochRebuilds) {
  // More membership deltas between two ticks than the journal holds: the
  // lossy round must degrade to epoch-based rebuilds and still produce
  // bit-identical heat. Then the converse: a journal-sized trickle of
  // removals must be patched in place without a single rebuild.
  VCluster cached_cl("cached", kWorker, sched::make_progress_policy());
  VCluster plain_cl("plain", kWorker, sched::make_progress_policy());
  sim::DemandCache cache;
  std::vector<VmId> live;
  std::uint64_t next_id = 1;
  const auto churn = [&](std::size_t places, std::size_t removes) {
    for (std::size_t i = 0; i < places; ++i) {
      const VmSpec spec = make_spec(2, gib(4), 1, UsageClass::kBursty);
      const VmId id{next_id++};
      ASSERT_EQ(cached_cl.try_place(id, spec), plain_cl.try_place(id, spec));
      live.push_back(id);
    }
    for (std::size_t i = 0; i < removes && !live.empty(); ++i) {
      const VmId id = live[(i * 7) % live.size()];
      std::erase(live, id);
      cached_cl.remove(id);
      plain_cl.remove(id);
    }
  };
  const auto tick = [&](double now) {
    ASSERT_EQ(sim::update_cluster_heat(cached_cl, now, 0.5, 0.25, &cache),
              sim::update_cluster_heat(plain_cl, now, 0.5, 0.25));
    for (HostId h = 0; h < cached_cl.opened_hosts(); ++h) {
      ASSERT_EQ(cached_cl.host_heat(h), plain_cl.host_heat(h)) << "host " << h;
    }
  };
  churn(3000, 1500);
  tick(1800.0);  // first round: pre-arming history is reported lost
  churn(3000, 3000);  // 6000 deltas > the 4096-record journal: overflow
  tick(3600.0);
  // Patch-in-place round: removals alone cannot open hosts, so an exact
  // journal round must not rebuild any term list.
  churn(0, 32);
  const std::size_t warm = cache.rebuilds();
  tick(5400.0);
  EXPECT_EQ(cache.rebuilds(), warm);
  EXPECT_TRUE(sim::audit(cached_cl).empty());
}

// --- acceptance matrix: shards x index x threads, instant and engine --------

workload::Trace make_trace(std::size_t population, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.target_population = population;
  cfg.horizon = 2.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  workload::Generator gen(workload::azure_catalog(), workload::make_mix(10, 30, 60),
                          cfg);
  return gen.generate();
}

sim::RebalanceOptions itf_rebalance(bool engine) {
  sim::RebalanceOptions reb;
  reb.interval = 2.0 * 3600;
  reb.budget_per_pass = 16;
  reb.migration.enabled = engine;
  reb.interference.enabled = true;
  reb.interference.heat_interval = 1800.0;
  reb.interference.heat_alpha = 0.5;
  reb.interference.heat_bucket = 0.25;
  reb.interference.heat_weight = 4.0;
  // The generated azure workload runs cooler than the polluter scenario;
  // a low threshold keeps the pass firing so the matrix exercises it.
  reb.interference.threshold = 1.02;
  reb.interference.evictions_per_pass = 4;
  return reb;
}

TEST(InterferenceAcceptance, BitIdenticalAcrossShardsIndexThreads) {
  sim::ScopedDebugAudit audit_every_event;
  const workload::Trace trace = make_trace(120, 42);
  const auto policy = [] { return sched::make_interference_policy(4.0); };
  const auto make_dc = [&policy](bool index) {
    Datacenter dc = Datacenter::shared_sharded(kWorker, policy, 4);
    dc.set_index_enabled(index);
    return dc;
  };
  for (const bool engine : {false, true}) {
    SCOPED_TRACE(engine ? "engine" : "instant");
    const sim::RebalanceOptions reb = itf_rebalance(engine);
    sim::ShardOptions options;
    options.rebalance = reb;
    Datacenter reference_dc = make_dc(true);
    const RunResult reference = sim::replay_sharded(reference_dc, trace, options);
    ASSERT_GT(reference.heat_updates, 0U);
    ASSERT_GT(reference.itf_passes, 0U);
    ASSERT_GT(reference.itf_hot_hosts, 0U);
    ASSERT_GT(reference.itf_evictions, 0U);
    expect_itf_identity(reference);
    if (engine) {
      EXPECT_EQ(reference.itf_applied, 0U);
      EXPECT_EQ(reference.itf_requested, reference.itf_evictions);
    } else {
      EXPECT_EQ(reference.itf_requested, 0U);
    }
    EXPECT_TRUE(audit(reference_dc).empty());
    {
      // The serial replay() on the same organisation is the ground truth.
      Datacenter legacy_dc = make_dc(true);
      const RunResult legacy = sim::replay(legacy_dc, trace, reb);
      expect_identical(reference, legacy);
    }
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      for (const bool index : {true, false}) {
        for (const std::size_t threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
          options.shards = shards;
          options.threads = threads;
          Datacenter dc = make_dc(index);
          const RunResult result = sim::replay_sharded(dc, trace, options);
          SCOPED_TRACE("shards " + std::to_string(shards) + " index " +
                       std::to_string(index) + " threads " +
                       std::to_string(threads));
          expect_identical(reference, result);
          EXPECT_TRUE(audit(dc).empty());
        }
      }
    }
  }
}

TEST(InterferenceAcceptance, DisabledLoopLeavesCountersAtZero) {
  const workload::Trace trace = make_trace(60, 7);
  sim::RebalanceOptions reb;
  reb.interval = 2.0 * 3600;
  Datacenter dc = Datacenter::shared(kWorker, sched::make_progress_policy);
  const RunResult result = sim::replay(dc, trace, reb);
  EXPECT_EQ(result.heat_updates, 0U);
  EXPECT_EQ(result.itf_passes, 0U);
  EXPECT_EQ(result.itf_evictions, 0U);
}

// --- QoS: the cache-polluter scenario ---------------------------------------

// A two-day trace where long-lived steady "victim" VMs share 3:1 hosts with
// heavyweight polluters arriving once the fleet is warm. Mirrors
// scenarios/polluter_rebalance.scn.
workload::Trace polluter_trace(std::uint64_t seed) {
  core::SplitMix64 rng(seed);
  std::vector<core::VmInstance> vms;
  std::uint64_t id = 1;
  const core::SimTime horizon = 2.0 * 24 * 3600;
  for (int i = 0; i < 28; ++i) {  // victims: small steady 3:1
    core::VmInstance vm;
    vm.id = VmId{id++};
    vm.spec = make_spec(4, gib(4), 3, UsageClass::kSteady);
    vm.arrival = rng.uniform(0.0, 1800.0);
    vm.departure = horizon - rng.uniform(0.0, 1800.0);
    vms.push_back(vm);
  }
  for (int i = 0; i < 6; ++i) {  // polluters: heavy steady 3:1, arrive warm
    core::VmInstance vm;
    vm.id = VmId{id++};
    vm.spec = make_spec(16, gib(8), 3, UsageClass::kSteady);
    vm.arrival = 3600.0 + rng.uniform(0.0, 1800.0);
    vm.departure = horizon - rng.uniform(0.0, 1800.0);
    vms.push_back(vm);
  }
  return workload::Trace(std::move(vms));
}

TEST(InterferenceQoS, PolluterRebalanceBeatsProgressOnlyOnP90Inflation) {
  // Equal PM count is enforced with a hard fleet cap, so the comparison is
  // purely about *where* load sits, not about buying more hardware. The
  // interference-aware run must strictly beat the progress-only run on p90
  // response inflation, for every seed.
  const std::size_t fleet_cap = 4;
  const perf::ContentionModel model;
  const auto run = [&](const workload::Trace& trace, bool interference) {
    Datacenter dc =
        interference
            ? Datacenter::shared(kWorker,
                                 [] { return sched::make_interference_policy(4.0); })
            : Datacenter::shared(kWorker, sched::make_progress_policy);
    dc.set_max_hosts_per_cluster(fleet_cap);
    sim::RebalanceOptions reb;
    reb.interval = 2.0 * 3600;
    reb.budget_per_pass = 16;
    if (interference) {
      reb.interference.enabled = true;
      reb.interference.heat_interval = 900.0;
      reb.interference.heat_alpha = 0.5;
      reb.interference.heat_bucket = 0.25;
      reb.interference.heat_weight = 4.0;
      reb.interference.threshold = 1.05;
      reb.interference.evictions_per_pass = 4;
    }
    sim::UsageMonitor monitor(900.0);
    monitor.track_inflation(&model);
    const RunResult result = sim::replay(dc, trace, reb, &monitor);
    return std::pair<RunResult, sim::UsageReport>(result, monitor.report());
  };
  for (const std::uint64_t seed : {11ULL, 23ULL, 47ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const workload::Trace trace = polluter_trace(seed);
    const auto [base, base_report] = run(trace, false);
    const auto [itf, itf_report] = run(trace, true);
    EXPECT_EQ(base.opened_pms, itf.opened_pms);  // equal PM count
    ASSERT_GT(base_report.inflation_samples, 0U);
    ASSERT_GT(itf_report.inflation_samples, 0U);
    EXPECT_GT(itf.itf_evictions, 0U);
    EXPECT_LT(itf_report.p90_inflation, base_report.p90_inflation);
    // Determinism: the same seed reproduces the exact same comparison.
    const auto [base2, base_report2] = run(trace, false);
    const auto [itf2, itf_report2] = run(trace, true);
    EXPECT_EQ(base_report2.p90_inflation, base_report.p90_inflation);
    EXPECT_EQ(itf_report2.p90_inflation, itf_report.p90_inflation);
    expect_identical(base, base2);
    expect_identical(itf, itf2);
  }
}

}  // namespace
}  // namespace slackvm
