// Tests for Algorithm 1 (core distance) and the distance matrix.
#include "topology/distance.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/builders.hpp"

namespace slackvm::topo {
namespace {

class EpycDistance : public ::testing::Test {
 protected:
  const CpuTopology epyc_ = make_dual_epyc_7662();
};

TEST_F(EpycDistance, SameThreadIsZero) { EXPECT_EQ(core_distance(epyc_, 7, 7), 0U); }

TEST_F(EpycDistance, SmtSiblingSharesL1) {
  // Threads 0 and 1 are siblings of core 0 -> first shared level is L1.
  EXPECT_EQ(core_distance(epyc_, 0, 1), 10U);
}

TEST_F(EpycDistance, SameCcxSharesL3) {
  // Threads 0 and 2 are different cores of CCX 0: thread, L1, L2 all
  // differ (+30), L3 shared -> 30.
  EXPECT_EQ(core_distance(epyc_, 0, 2), 30U);
}

TEST_F(EpycDistance, SameSocketDifferentCcx) {
  // Cores 0 and 4 are in different CCX of socket 0: no cache shared
  // (+40), NUMA local (10) -> 50.
  EXPECT_EQ(core_distance(epyc_, 0, 8), 50U);
}

TEST_F(EpycDistance, CrossSocket) {
  // Thread 128 lives on socket 1: no shared cache (+40), remote NUMA 32.
  EXPECT_EQ(core_distance(epyc_, 0, 128), 72U);
}

TEST_F(EpycDistance, DistanceHierarchyIsMonotone) {
  // Closer sharing domains yield strictly smaller distances.
  const auto same_thread = core_distance(epyc_, 0, 0);
  const auto sibling = core_distance(epyc_, 0, 1);
  const auto same_ccx = core_distance(epyc_, 0, 2);
  const auto same_socket = core_distance(epyc_, 0, 8);
  const auto cross_socket = core_distance(epyc_, 0, 128);
  EXPECT_LT(same_thread, sibling);
  EXPECT_LT(sibling, same_ccx);
  EXPECT_LT(same_ccx, same_socket);
  EXPECT_LT(same_socket, cross_socket);
}

TEST(XeonDistance, MonolithicL3KeepsSocketClose) {
  const CpuTopology xeon = make_dual_xeon_6230();
  // Any two cores of one socket share the L3 -> distance 30, while cross
  // socket costs 40 + 21.
  EXPECT_EQ(core_distance(xeon, 0, 38), 30U);
  EXPECT_EQ(core_distance(xeon, 0, 40), 61U);
}

TEST(FlatDistance, NoSmtMeansNoTenDistance) {
  const CpuTopology flat = make_flat(4, core::gib(8));
  // Different cores share only L3: thread, L1, L2 differ -> 30.
  EXPECT_EQ(core_distance(flat, 0, 1), 30U);
}

// Metric-style properties over several topologies.
class DistanceProperty : public ::testing::TestWithParam<int> {
 protected:
  CpuTopology make() const {
    switch (GetParam()) {
      case 0:
        return make_dual_epyc_7662();
      case 1:
        return make_dual_xeon_6230();
      case 2:
        return make_sim_worker();
      default:
        return make_flat(16, core::gib(64));
    }
  }
};

TEST_P(DistanceProperty, SymmetricAndZeroOnDiagonal) {
  const CpuTopology topo = make();
  const std::size_t n = std::min<std::size_t>(topo.cpu_count(), 48);
  for (std::size_t a = 0; a < n; ++a) {
    EXPECT_EQ(core_distance(topo, static_cast<CpuId>(a), static_cast<CpuId>(a)), 0U);
    for (std::size_t b = a + 1; b < n; ++b) {
      EXPECT_EQ(core_distance(topo, static_cast<CpuId>(a), static_cast<CpuId>(b)),
                core_distance(topo, static_cast<CpuId>(b), static_cast<CpuId>(a)));
    }
  }
}

TEST_P(DistanceProperty, MatrixMatchesDirectComputation) {
  const CpuTopology topo = make();
  const DistanceMatrix dm(topo);
  ASSERT_EQ(dm.size(), topo.cpu_count());
  const std::size_t n = std::min<std::size_t>(topo.cpu_count(), 40);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_EQ(dm(static_cast<CpuId>(a), static_cast<CpuId>(b)),
                core_distance(topo, static_cast<CpuId>(a), static_cast<CpuId>(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistanceProperty, ::testing::Range(0, 4));

TEST(DistanceMatrixTest, MinDistanceToSet) {
  const CpuTopology epyc = make_dual_epyc_7662();
  const DistanceMatrix dm(epyc);
  CpuSet set(epyc.cpu_count());
  set.set(0);
  set.set(128);
  EXPECT_EQ(dm.min_distance_to(1, set), 10U);    // sibling of 0
  EXPECT_EQ(dm.min_distance_to(130, set), 30U);  // same CCX as 128
}

TEST(DistanceMatrixTest, MinDistanceToEmptySetIsUnreachable) {
  const CpuTopology flat = make_flat(4, core::gib(8));
  const DistanceMatrix dm(flat);
  const CpuSet empty(flat.cpu_count());
  EXPECT_EQ(dm.min_distance_to(0, empty), DistanceMatrix::kUnreachable);
}

TEST(DistanceMatrixTest, TotalDistanceSums) {
  const CpuTopology flat = make_flat(4, core::gib(8));
  const DistanceMatrix dm(flat);
  CpuSet set(flat.cpu_count());
  set.set(1);
  set.set(2);
  // Each pair of distinct flat cores is 30 apart.
  EXPECT_EQ(dm.total_distance_to(0, set), 60U);
}

TEST(DistanceMatrixTest, RowSpanMatchesElementAccess) {
  const CpuTopology epyc = make_dual_epyc_7662();
  const DistanceMatrix dm(epyc);
  for (const CpuId from : {CpuId{0}, CpuId{17}, CpuId{255}}) {
    const auto row = dm.row(from);
    ASSERT_EQ(row.size(), dm.size());
    for (std::size_t to = 0; to < dm.size(); ++to) {
      EXPECT_EQ(row[to], dm(from, static_cast<CpuId>(to)));
    }
  }
}

// ---------------------------------------------------------------------------
// DistanceMatrixCache: one immutable interned matrix per hardware model.

TEST(DistanceMatrixCacheTest, SameTopologySharesOneMatrix) {
  const CpuTopology epyc = make_dual_epyc_7662();
  const auto a = DistanceMatrixCache::shared(epyc);
  const auto b = DistanceMatrixCache::shared(epyc);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a.get(), b.get());
  // Two independent builds of the same hardware model also share.
  const auto c = DistanceMatrixCache::shared(make_dual_epyc_7662());
  EXPECT_EQ(a.get(), c.get());
}

TEST(DistanceMatrixCacheTest, KeyIsStructuralNotNominal) {
  // Name and memory size do not change Algorithm-1 distances, so two
  // machines differing only in those fields intern to the same matrix.
  GenericSpec spec;
  spec.sockets = 2;
  spec.cores_per_socket = 4;
  spec.smt = 2;
  spec.name = "model_a";
  spec.total_mem = core::gib(64);
  const auto a = DistanceMatrixCache::shared(make_generic(spec));
  spec.name = "model_b";
  spec.total_mem = core::gib(512);
  const auto b = DistanceMatrixCache::shared(make_generic(spec));
  EXPECT_EQ(a.get(), b.get());
  // A genuinely different cache layout gets its own matrix.
  spec.cores_per_l3 = 2;
  const auto c = DistanceMatrixCache::shared(make_generic(spec));
  EXPECT_NE(a.get(), c.get());
}

TEST(DistanceMatrixCacheTest, InternedMatrixMatchesDirectBuild) {
  const CpuTopology xeon = make_dual_xeon_6230();
  const auto before = DistanceMatrixCache::interned_count();
  const auto shared = DistanceMatrixCache::shared(xeon);
  EXPECT_GE(DistanceMatrixCache::interned_count(), before);
  const DistanceMatrix direct(xeon);
  ASSERT_EQ(shared->size(), direct.size());
  for (std::size_t a = 0; a < direct.size(); a += 7) {
    for (std::size_t b = 0; b < direct.size(); b += 5) {
      EXPECT_EQ((*shared)(static_cast<CpuId>(a), static_cast<CpuId>(b)),
                direct(static_cast<CpuId>(a), static_cast<CpuId>(b)));
    }
  }
}

}  // namespace
}  // namespace slackvm::topo
