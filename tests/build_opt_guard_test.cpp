// Build-tree optimization guard.
//
// Benchmarks have been recorded from trees that were silently configured
// at -O0 (an empty CMAKE_BUILD_TYPE drops every optimization flag), which
// skews any number by 5-20x and has caused documented bench results to
// drift from the checked-in JSON artifacts. The top-level CMakeLists
// defaults CMAKE_BUILD_TYPE to RelWithDebInfo and the asan/tsan presets
// pin it explicitly, so every supported configuration compiles with
// optimization on — this test fails fast on any tree where that default
// was overridden away.
#include <gtest/gtest.h>

TEST(BuildOptGuard, TreeIsCompiledWithOptimization) {
#ifndef __OPTIMIZE__
  FAIL() << "this build tree is compiled without optimization (-O0); "
            "configure with CMAKE_BUILD_TYPE=RelWithDebInfo (the default) "
            "or a preset before trusting tests or benchmarks";
#endif
}
