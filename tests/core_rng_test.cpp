#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/error.hpp"

namespace slackvm::core {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(SplitMix64, KnownVector) {
  // Reference value of SplitMix64 seeded with 0 (Steele et al.).
  SplitMix64 rng(0);
  EXPECT_EQ(rng(), 0xe220a8397b1dcdafULL);
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitMix64, UniformRangeRespectsBounds) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    ASSERT_GE(u, 3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(SplitMix64, BelowStaysInRange) {
  SplitMix64 rng(11);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5U);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // roughly uniform
  }
}

TEST(SplitMix64, ExponentialMeanConverges) {
  SplitMix64 rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(10.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(SplitMix64, ForkIsIndependent) {
  SplitMix64 parent(5);
  SplitMix64 child = parent.fork();
  // Child stream differs from the continued parent stream.
  EXPECT_NE(parent(), child());
}

TEST(SplitMix64, WeightedIndexFollowsWeights) {
  SplitMix64 rng(17);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(DeriveSeed, GoldenConstantsPinned) {
  // Seed-stability regression guard: derive_seed(base, i) is the canonical
  // per-task stream derivation of the parallel experiment engine. These
  // values are load-bearing — changing the mapping silently shifts every
  // benchmark number produced from derived streams, so a refactor that
  // trips this test must be a deliberate, called-out break.
  EXPECT_EQ(derive_seed(0, 0), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_seed(0, 1), 0x06c45d188009454fULL);
  EXPECT_EQ(derive_seed(0, 2), 0xf88bb8a8724c81ecULL);
  EXPECT_EQ(derive_seed(0, 7), 0x3ee5789041c98ac3ULL);
  EXPECT_EQ(derive_seed(42, 0), 0x28efe333b266f103ULL);
  EXPECT_EQ(derive_seed(42, 1), 0x5fd30d2fcbef75e3ULL);
  EXPECT_EQ(derive_seed(42, 2), 0x6545d3b48b05c974ULL);
  EXPECT_EQ(derive_seed(42, 7), 0xcc868f8d9bd23f76ULL);
  EXPECT_EQ(derive_seed(0xdeadbeef, 0), 0xe8cdc1bbdfed5d41ULL);
  EXPECT_EQ(derive_seed(0xdeadbeef, 1), 0xbec198114b7e9ed9ULL);
  EXPECT_EQ(derive_seed(0xdeadbeef, 2), 0xa7927fd9ee23e4d8ULL);
  EXPECT_EQ(derive_seed(0xdeadbeef, 7), 0x6e0d1418aee0ddc1ULL);
}

TEST(DeriveSeed, IsConstexprAndIndexSensitive) {
  static_assert(derive_seed(1, 0) != derive_seed(1, 1));
  static_assert(derive_seed(1, 0) != derive_seed(2, 0));
  // Streams seeded from adjacent indices diverge immediately.
  SplitMix64 a(derive_seed(9, 0));
  SplitMix64 b(derive_seed(9, 1));
  EXPECT_NE(a(), b());
}

TEST(DiscreteSampler, ProbabilitiesNormalized) {
  const std::vector<double> weights{2.0, 6.0, 2.0};
  const DiscreteSampler sampler{std::span<const double>(weights)};
  EXPECT_DOUBLE_EQ(sampler.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(sampler.probability(1), 0.6);
  EXPECT_NEAR(sampler.probability(2), 0.2, 1e-12);
}

TEST(DiscreteSampler, SampleDistributionMatches) {
  const std::vector<double> weights{1.0, 1.0, 2.0};
  const DiscreteSampler sampler{std::span<const double>(weights)};
  SplitMix64 rng(23);
  std::array<int, 3> counts{};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[sampler.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.50, 0.02);
}

TEST(DiscreteSampler, RejectsAllZeroWeights) {
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(weights)}, SlackError);
}

TEST(DiscreteSampler, SingleWeightAlwaysSampled) {
  const std::vector<double> weights{3.5};
  const DiscreteSampler sampler{std::span<const double>(weights)};
  SplitMix64 rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0U);
  }
}

}  // namespace
}  // namespace slackvm::core
