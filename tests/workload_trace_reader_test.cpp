// Streaming trace frontend differential suite: workload::TraceReader must
// accept exactly what Trace::read_csv accepts, reject exactly what it
// rejects, and produce bit-identical VmInstances — across the contiguous
// (from_string), chunked (tiny buffers forcing partial-line carries) and
// mmap backings. Also pins the real-format level classifier, the
// peek/advance lookahead contract, the scan() pre-pass, the byte-offset
// error messages, and the exactness of the hand-rolled double parser
// against std::stod.
#include "workload/trace_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/level_mix.hpp"
#include "workload/trace.hpp"

namespace slackvm::workload {
namespace {

constexpr std::string_view kNativeHeader =
    "id,vcpus,mem_mib,level,usage,arrival,departure";
constexpr std::string_view kRealHeader = "id,vcpus,mem_mib,arrival,departure";

Trace make_trace(std::size_t population, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.target_population = population;
  cfg.horizon = 2.0 * 24 * 3600;
  cfg.mean_lifetime = 1.0 * 24 * 3600;
  cfg.seed = seed;
  Generator gen(azure_catalog(), make_mix(34, 33, 33), cfg);
  return gen.generate();
}

// Bit-exact equality on every field (EXPECT_EQ on the time doubles is
// deliberate: the parsers must agree on bits, not approximately).
void expect_same_rows(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    const core::VmInstance& x = a.vms()[i];
    const core::VmInstance& y = b.vms()[i];
    EXPECT_EQ(x.id.value, y.id.value);
    EXPECT_EQ(x.spec.vcpus, y.spec.vcpus);
    EXPECT_EQ(x.spec.mem_mib, y.spec.mem_mib);
    EXPECT_EQ(x.spec.level.ratio(), y.spec.level.ratio());
    EXPECT_EQ(x.spec.usage, y.spec.usage);
    EXPECT_EQ(x.arrival, y.arrival);
    EXPECT_EQ(x.departure, y.departure);
  }
}

std::string fast_csv(const Trace& trace, TraceFormat format = TraceFormat::kNative) {
  std::ostringstream os;
  write_csv_fast(trace, os, format);
  return os.str();
}

std::string write_temp_file(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.close();
  EXPECT_TRUE(out.good());
  return path;
}

// --- parser equivalence ------------------------------------------------------

// On write_csv output (6-significant-digit times) the streaming parser must
// produce exactly what the istream reference produces.
TEST(TraceReader, NativeMatchesReadCsvBitExact) {
  const Trace trace = make_trace(200, 42);
  std::ostringstream os;
  trace.write_csv(os);
  const std::string text = os.str();

  std::istringstream is(text);
  const Trace reference = Trace::read_csv(is);
  Trace streamed = TraceReader::from_string(text).read_all();
  expect_same_rows(reference, streamed);
}

// write_csv_fast emits shortest-round-trip times: reading them back must
// reproduce the original trace bit-exactly, and the streaming parser must
// still agree with read_csv on that text.
TEST(TraceReader, FastWriterRoundTripsTimestampsExactly) {
  const Trace trace = make_trace(150, 7);
  const std::string text = fast_csv(trace);

  Trace streamed = TraceReader::from_string(text).read_all();
  expect_same_rows(trace, streamed);

  std::istringstream is(text);
  const Trace reference = Trace::read_csv(is);
  expect_same_rows(reference, streamed);
}

// The chunked backing (with buffers far smaller than a row, forcing
// partial-line carries and buffer growth) and the mmap backing must agree
// with the contiguous in-memory parse.
TEST(TraceReader, ChunkedAndMmapBackingsMatchContiguous) {
  const Trace trace = make_trace(600, 3);  // ~1.2k rows, many buffer refills
  const std::string text = fast_csv(trace);
  const std::string path = write_temp_file("trace_reader_backings.csv", text);

  const Trace reference = TraceReader::from_string(text).read_all();

  TraceReaderOptions tiny;
  tiny.chunk_bytes = 16;  // floored to 4 KiB internally — still dozens of
                          // refills with a partial-line carry at each seam
  Trace chunked = TraceReader(path, tiny).read_all();
  expect_same_rows(reference, chunked);

  TraceReaderOptions mapped;
  mapped.use_mmap = true;
  Trace mmapped = TraceReader(path, mapped).read_all();
  expect_same_rows(reference, mmapped);

  std::remove(path.c_str());
}

// The fast-path/fallback split of the hand-rolled double parser must be
// invisible: every accepted time literal parses to the exact bits stod
// produces. The list crosses the fast-path boundaries (19-digit mantissas,
// |exp10| = 22, 2^53) in both directions.
TEST(TraceReader, HandRolledDoubleParserMatchesStod) {
  const std::vector<std::string> literals = {
      "1", "0.5", "5.269484217085177", "56435.36923582795",
      "123456.789", "1e22", "9.999999999999999e21", "1e-22", "1.5e-22",
      "9007199254740992", "9007199254740993",        // 2^53, 2^53 + 1
      "1234567890123456789", "12345678901234567890",  // 19 then 20 digits
      "12345678901234567890.5", "1.7976931348623157e299",
      "2.2250738585072014e-308", "1e300"};  // (no subnormals: stod — the
                                            // reference here — raises
                                            // out_of_range on ERANGE)
  for (const std::string& lit : literals) {
    SCOPED_TRACE(lit);
    const std::string text =
        std::string(kNativeHeader) + "\n1,1,1024,2,steady,0," + lit + "\n";
    Trace parsed = TraceReader::from_string(text).read_all();
    ASSERT_EQ(parsed.size(), 1U);
    EXPECT_EQ(parsed.vms()[0].departure, std::stod(lit));
  }
}

// --- formats -----------------------------------------------------------------

TEST(TraceReader, RealFormatClassifiesLevelsFromRatio) {
  const std::string text = std::string(kRealHeader) +
                           "\n"
                           "1,1,4096,0,10\n"    // 4 GiB/vCPU -> 1:1
                           "2,1,2048,1,10\n"    // 2 GiB/vCPU -> 2:1
                           "3,2,2048,2,10\n"    // 1 GiB/vCPU -> 3:1
                           "4,2,16384,3,10\n";  // 8 GiB/vCPU -> 1:1
  TraceReader reader = TraceReader::from_string(text);
  EXPECT_EQ(reader.format(), TraceFormat::kReal);
  const Trace trace = reader.read_all();
  ASSERT_EQ(trace.size(), 4U);
  EXPECT_EQ(trace.vms()[0].spec.level.ratio(), 1);
  EXPECT_EQ(trace.vms()[1].spec.level.ratio(), 2);
  EXPECT_EQ(trace.vms()[2].spec.level.ratio(), 3);
  EXPECT_EQ(trace.vms()[3].spec.level.ratio(), 1);
  for (const core::VmInstance& vm : trace.vms()) {
    EXPECT_EQ(vm.spec.usage, core::UsageClass::kSteady);
  }
}

TEST(TraceReader, AutoDetectsBothHeaders) {
  TraceReader native =
      TraceReader::from_string(std::string(kNativeHeader) + "\n");
  EXPECT_EQ(native.format(), TraceFormat::kNative);
  EXPECT_TRUE(native.read_all().empty());

  // CRLF headers (real traces exported from Windows tooling) are tolerated.
  TraceReader real = TraceReader::from_string(std::string(kRealHeader) + "\r\n");
  EXPECT_EQ(real.format(), TraceFormat::kReal);

  EXPECT_THROW((void)TraceReader::from_string("who,knows\n1,2\n").format(),
               core::SlackError);
}

// Like read_csv, an explicit format consumes the header line without
// validating it.
TEST(TraceReader, ExplicitFormatSkipsHeaderUnvalidated) {
  TraceReaderOptions options;
  options.format = TraceFormat::kNative;
  const Trace trace =
      TraceReader::from_string("not,a,header,at,all\n1,1,1024,2,steady,0,5\n",
                               options)
          .read_all();
  ASSERT_EQ(trace.size(), 1U);
  EXPECT_EQ(trace.vms()[0].id.value, 1U);
}

TEST(TraceReader, EmptyInputThrowsLikeReadCsv) {
  std::istringstream empty("");
  EXPECT_THROW((void)Trace::read_csv(empty), core::SlackError);
  EXPECT_THROW((void)TraceReader::from_string("").read_all(), core::SlackError);
}

// Header-only files, blank lines between rows, and a missing trailing
// newline are all fine — matching read_csv.
TEST(TraceReader, ToleratesBlanksAndMissingFinalNewline) {
  EXPECT_TRUE(TraceReader::from_string(std::string(kNativeHeader) + "\n")
                  .read_all()
                  .empty());
  const std::string text = std::string(kNativeHeader) +
                           "\n\n1,1,1024,2,steady,0,5\n\n2,1,1024,2,steady,1,6";
  const Trace trace = TraceReader::from_string(text).read_all();
  ASSERT_EQ(trace.size(), 2U);
  EXPECT_EQ(trace.vms()[1].id.value, 2U);
  EXPECT_EQ(trace.vms()[1].departure, 6.0);
}

// --- lookahead contract ------------------------------------------------------

TEST(TraceReader, PeekAdvanceSemantics) {
  const std::string text = std::string(kNativeHeader) +
                           "\n1,1,1024,2,steady,0,5\n2,2,2048,3,idle,1,6\n";
  TraceReader reader = TraceReader::from_string(text);

  const core::VmInstance* first = reader.peek();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id.value, 1U);
  EXPECT_EQ(reader.peek(), first);  // repeated peek: same row, no consumption
  reader.advance();

  core::VmInstance vm;
  ASSERT_TRUE(reader.next(vm));  // next() after advance() reads row 2
  EXPECT_EQ(vm.id.value, 2U);
  EXPECT_EQ(reader.rows_read(), 2U);
  EXPECT_GT(reader.bytes_consumed(), kNativeHeader.size());

  EXPECT_EQ(reader.peek(), nullptr);
  EXPECT_FALSE(reader.next(vm));
}

// --- scan pre-pass -----------------------------------------------------------

TEST(TraceReader, ScanReportsRowsAndHorizon) {
  const Trace trace = make_trace(80, 11);
  const std::string path =
      write_temp_file("trace_reader_scan.csv", fast_csv(trace));
  const TraceReader::ScanInfo info = TraceReader::scan(path);
  EXPECT_EQ(info.rows, trace.size());
  EXPECT_EQ(info.horizon, trace.horizon());  // bit-exact via write_csv_fast
  std::remove(path.c_str());
}

// --- rejection parity and diagnostics ----------------------------------------

// Every malformed row read_csv rejects, the streaming reader must reject
// too (same semantics; its messages add the byte offset).
TEST(TraceReader, RejectsEverythingReadCsvRejects) {
  const std::vector<std::string> bad_rows = {
      "1,2,3",                            // too few columns
      "1,1,1024,2,steady,0,5,9",          // too many columns
      "x,1,1024,2,steady,0,5",            // non-numeric id
      "1,-1,1024,2,steady,0,5",           // signed integer
      "1,0,1024,2,steady,0,5",            // vcpus must be >= 1
      "1,1,1024,200,steady,0,5",          // level out of range
      "1,1,1024,2,chaotic,0,5",           // unknown usage class
      "1,1,1024,2,steady,1.5x,5",         // partially-numeric time
      "1,1,1024,2,steady,nan,5",          // non-finite time
      "1,1,1024,2,steady,1e301,2e301",    // time beyond the 1e300 cap
      "1,1,1024,2,steady,5,5",            // departure not after arrival
      "99999999999999999999,1,1024,2,steady,0,5",  // u64 overflow
  };
  for (const std::string& row : bad_rows) {
    SCOPED_TRACE(row);
    const std::string text = std::string(kNativeHeader) + "\n" + row + "\n";
    std::istringstream is(text);
    EXPECT_THROW((void)Trace::read_csv(is), core::SlackError);
    EXPECT_THROW((void)TraceReader::from_string(text).read_all(),
                 core::SlackError);
  }

  // Out-of-order arrivals span two rows; both parsers reject the second.
  const std::string unsorted = std::string(kNativeHeader) +
                               "\n1,1,1024,2,steady,10,20\n2,1,1024,2,steady,5,9\n";
  std::istringstream is(unsorted);
  EXPECT_THROW((void)Trace::read_csv(is), core::SlackError);
  EXPECT_THROW((void)TraceReader::from_string(unsorted).read_all(),
               core::SlackError);
}

// Errors name the 1-based line, the offending column, the byte offset of
// the row start, and quote the raw row — so a multi-GB file can be opened
// at the exact spot with dd/tail.
TEST(TraceReader, ErrorsCarryLineColumnAndByteOffset) {
  const std::string good = "1,1,1024,2,steady,0,5";
  const std::string bad = "2,huh,1024,2,steady,1,6";
  const std::string text =
      std::string(kNativeHeader) + "\n" + good + "\n" + bad + "\n";
  const std::uint64_t offset = text.find(bad);
  try {
    (void)TraceReader::from_string(text).read_all();
    FAIL() << "expected SlackError";
  } catch (const core::SlackError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("column 'vcpus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte " + std::to_string(offset)), std::string::npos)
        << msg;
    EXPECT_NE(msg.find(bad), std::string::npos) << msg;
  }
}

// --- fast writer -------------------------------------------------------------

TEST(TraceReader, FastWriterEmitsBothFormats) {
  const Trace trace = make_trace(40, 5);
  const std::string native = fast_csv(trace, TraceFormat::kNative);
  const std::string real = fast_csv(trace, TraceFormat::kReal);
  EXPECT_EQ(native.substr(0, kNativeHeader.size()), kNativeHeader);
  EXPECT_EQ(real.substr(0, kRealHeader.size()), kRealHeader);

  // The real emission drops level/usage; reading it back re-classifies, so
  // sizes and lifecycle times survive even though levels may differ.
  const Trace back = TraceReader::from_string(real).read_all();
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.vms()[i].spec.mem_mib, trace.vms()[i].spec.mem_mib);
    EXPECT_EQ(back.vms()[i].arrival, trace.vms()[i].arrival);
    EXPECT_EQ(back.vms()[i].departure, trace.vms()[i].departure);
  }
}

}  // namespace
}  // namespace slackvm::workload
