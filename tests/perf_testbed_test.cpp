// Shape tests for the Fig. 2 / Table IV reproduction. Exact medians are
// reported by bench/table4_fig2_response_times and EXPERIMENTS.md; here we
// assert the paper's qualitative claims hold.
#include "perf/testbed.hpp"

#include <gtest/gtest.h>

namespace slackvm::perf {
namespace {

TestbedConfig quick_config() {
  TestbedConfig cfg;
  cfg.duration = 30.0 * 60;  // half an hour of windows is plenty for shape
  cfg.seed = 42;
  return cfg;
}

class TestbedShape : public ::testing::Test {
 protected:
  static const TestbedResult& result() {
    static const TestbedResult r = run_testbed(quick_config());
    return r;
  }
};

TEST_F(TestbedShape, AllThreeLevelsMeasured) {
  ASSERT_EQ(result().levels.size(), 3U);
  for (const auto& [ratio, series] : result().levels) {
    EXPECT_FALSE(series.baseline_p90_ms.empty()) << int(ratio);
    EXPECT_FALSE(series.slackvm_p90_ms.empty()) << int(ratio);
    EXPECT_GT(series.baseline_median_ms, 0.0);
    EXPECT_GT(series.slackvm_median_ms, 0.0);
  }
}

TEST_F(TestbedShape, ResponseTimeGrowsWithOversubscription) {
  // Fig. 2: each level's latency dominates the stricter one, in both
  // scenarios.
  const auto& levels = result().levels;
  EXPECT_LT(levels.at(1).baseline_median_ms, levels.at(2).baseline_median_ms);
  EXPECT_LT(levels.at(2).baseline_median_ms, levels.at(3).baseline_median_ms);
  EXPECT_LT(levels.at(1).slackvm_median_ms, levels.at(2).slackvm_median_ms);
  EXPECT_LT(levels.at(2).slackvm_median_ms, levels.at(3).slackvm_median_ms);
}

TEST_F(TestbedShape, SlackVmOverheadFallsOnOversubscribedTiers) {
  // Table IV: premium tier inflation < 10%ish; the 3:1 tier absorbs the
  // bulk of the penalty (x2.21 in the paper).
  const auto& levels = result().levels;
  EXPECT_LT(levels.at(1).overhead_factor(), 1.20);
  EXPECT_GT(levels.at(3).overhead_factor(), 1.5);
  // Overhead is monotone in the oversubscription level.
  EXPECT_LE(levels.at(1).overhead_factor(), levels.at(2).overhead_factor() + 0.05);
  EXPECT_LT(levels.at(2).overhead_factor(), levels.at(3).overhead_factor());
}

TEST_F(TestbedShape, BaselineMediansNearPaperValues) {
  // Calibration sanity: within a generous band of Table IV's baseline
  // column (the usage signals move q around the calibration point).
  const auto& levels = result().levels;
  EXPECT_NEAR(levels.at(1).baseline_median_ms, 1.16, 0.40);
  EXPECT_NEAR(levels.at(2).baseline_median_ms, 1.46, 0.50);
  EXPECT_NEAR(levels.at(3).baseline_median_ms, 3.47, 1.50);
}

TEST_F(TestbedShape, VmCountsMatchPaperScale) {
  // §VII-A1: dedicated PMs host ~131/271/356 VMs; the shared PM ~220 with
  // roughly a third per level. Our catalog sampling lands in the same range.
  const auto& levels = result().levels;
  EXPECT_GT(levels.at(1).baseline_vms, 80U);
  EXPECT_LT(levels.at(1).baseline_vms, 180U);
  EXPECT_GT(levels.at(3).baseline_vms, levels.at(1).baseline_vms);
  EXPECT_GT(result().slackvm_total_vms, 150U);
  EXPECT_LT(result().slackvm_total_vms, 300U);
  for (const auto& [ratio, series] : levels) {
    EXPECT_GT(series.slackvm_vms, 30U) << int(ratio);
  }
}

TEST_F(TestbedShape, DeterministicAcrossRuns) {
  const TestbedResult again = run_testbed(quick_config());
  for (const auto& [ratio, series] : result().levels) {
    EXPECT_DOUBLE_EQ(series.baseline_median_ms,
                     again.levels.at(ratio).baseline_median_ms);
    EXPECT_DOUBLE_EQ(series.slackvm_median_ms, again.levels.at(ratio).slackvm_median_ms);
  }
}

TEST(HeteroFraction, CompactSetScoresZero) {
  const topo::CpuTopology epyc = topo::make_dual_epyc_7662();
  topo::CpuSet one_ccx(epyc.cpu_count());
  for (topo::CpuId cpu = 0; cpu < 8; ++cpu) {
    one_ccx.set(cpu);
  }
  EXPECT_DOUBLE_EQ(hetero_fraction(epyc, one_ccx), 0.0);
}

TEST(HeteroFraction, SpreadSetScoresPositive) {
  const topo::CpuTopology epyc = topo::make_dual_epyc_7662();
  // 8 threads spread across 8 CCX: 7 zones more than necessary.
  topo::CpuSet spread(epyc.cpu_count());
  for (int zone = 0; zone < 8; ++zone) {
    spread.set(static_cast<topo::CpuId>(zone * 8));
  }
  EXPECT_GT(hetero_fraction(epyc, spread), 0.5);
}

TEST(HeteroFraction, EmptySetIsZero) {
  const topo::CpuTopology epyc = topo::make_dual_epyc_7662();
  EXPECT_DOUBLE_EQ(hetero_fraction(epyc, topo::CpuSet(epyc.cpu_count())), 0.0);
}

}  // namespace
}  // namespace slackvm::perf
